// Command prorace runs the ProRace pipeline from the command line:
//
//	prorace list                           # workloads and bugs
//	prorace run -workload mysql -period 1000
//	prorace run -bug apache-21287 -period 100 -trials 20
//	prorace run -workload mysql -workers -1 -detect-shards 8
//	prorace run -bug apache-25520 -witness-dir witnesses/
//	prorace reproduce witnesses/apache-25520-0.witness
//	prorace trace -workload apache -period 1000 -o apache.trace
//	prorace analyze -workload apache -in apache.trace -detect-shards 4
//	prorace disasm -workload pfscan | head
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"prorace"
	"prorace/internal/bugs"
	"prorace/internal/isa"
	"prorace/internal/profiling"
	"prorace/internal/report"
	"prorace/internal/telemetry"
	"prorace/internal/tracefmt"
	"prorace/internal/workload"
)

func main() {
	// A corrupt trace must fail with a diagnosis, not a stack trace: the
	// decode layers return typed errors, and this backstop catches anything
	// that still escapes as a panic.
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintln(os.Stderr, "error: internal failure:", r)
			os.Exit(1)
		}
	}()
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList()
	case "run":
		err = cmdRun(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "reproduce", "-reproduce":
		err = cmdReproduce(os.Args[2:])
	case "disasm":
		err = cmdDisasm(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: prorace <command> [flags]

commands:
  list      list built-in workloads and Table 2 bugs
  run       trace and analyze a workload or bug end to end
  trace     run the online phase only, writing the trace to a file
  analyze   run the offline phase over a trace file
  reproduce deterministically replay .witness files; non-zero exit on drift
  disasm    disassemble a workload's program`)
}

func cmdList() error {
	t := report.NewTable("workloads", "name", "threads", "class")
	for _, w := range workload.All(1) {
		t.AddRow(w.Name, w.Threads, w.Class)
	}
	fmt.Print(t.String())
	fmt.Println()
	b := report.NewTable("bugs (paper Table 2)", "id", "app", "manifestation", "access type")
	for _, bug := range bugs.All() {
		b.AddRow(bug.ID, bug.App, bug.Manifestation, bug.Type)
	}
	fmt.Print(b.String())
	return nil
}

type commonFlags struct {
	workloadName string
	bugID        string
	period       uint64
	seed         int64
	scale        int
	driverName   string
	modeName     string
	workers      int
	detectShards int
	lenient      bool
	faultSpec    string
	metricsAddr  string
	timeline     string
	metricsHold  time.Duration
	prof         profiling.Flags
}

func addCommon(fs *flag.FlagSet) *commonFlags {
	c := &commonFlags{}
	c.prof.Register(fs)
	fs.StringVar(&c.workloadName, "workload", "", "built-in workload name")
	fs.StringVar(&c.bugID, "bug", "", "Table 2 bug id (alternative to -workload)")
	fs.Uint64Var(&c.period, "period", 10000, "PEBS sampling period")
	fs.Int64Var(&c.seed, "seed", 1, "scheduler seed")
	fs.IntVar(&c.scale, "scale", 1, "workload scale factor")
	fs.StringVar(&c.driverName, "driver", "prorace", "driver model: prorace or vanilla")
	fs.StringVar(&c.modeName, "mode", "fb", "reconstruction: bb, fwd or fb")
	fs.IntVar(&c.workers, "workers", 0, "offline analysis workers (0 sequential, -1 GOMAXPROCS)")
	fs.IntVar(&c.detectShards, "detect-shards", 0, "detection shards (0/1 sequential, -1 GOMAXPROCS)")
	fs.BoolVar(&c.lenient, "lenient", false, "salvage corrupt or truncated traces instead of failing (reports degradation)")
	fs.StringVar(&c.faultSpec, "fault-spec", "", "inject trace faults before analysis, e.g. ptflip=0.01,syncgap=0.1:seed=7")
	fs.StringVar(&c.metricsAddr, "metrics-addr", "", "serve live telemetry on this address (/metrics, /debug/vars, /timeline, /debug/pprof)")
	fs.StringVar(&c.timeline, "timeline", "", "write a chrome://tracing stage-span timeline JSON to this file")
	fs.DurationVar(&c.metricsHold, "metrics-hold", 0, "keep the -metrics-addr listener alive this long after the command finishes (for scrapers)")
	return c
}

// startTelemetry enables the process-wide telemetry registry when any
// observability flag is set, so every analysis the command runs publishes
// into it without threading a registry through each call site. The
// returned stop function writes the -timeline artifact and holds the
// -metrics-addr listener open for -metrics-hold.
func (c *commonFlags) startTelemetry() (func() error, error) {
	if c.metricsAddr == "" && c.timeline == "" {
		return func() error { return nil }, nil
	}
	reg := telemetry.EnableDefault()
	telemetry.RegisterBuildInfo(reg, "prorace")
	if c.metricsAddr != "" {
		srv, err := telemetry.EnsureServer(c.metricsAddr, reg)
		if err != nil {
			return nil, fmt.Errorf("-metrics-addr: %w", err)
		}
		fmt.Fprintf(os.Stderr, "telemetry: serving http://%s/metrics\n", srv.Addr())
	}
	return func() error {
		if c.timeline != "" {
			if err := reg.WriteTimelineFile(c.timeline); err != nil {
				return fmt.Errorf("-timeline: %w", err)
			}
			fmt.Fprintf(os.Stderr, "telemetry: wrote timeline %s (open in chrome://tracing)\n", c.timeline)
		}
		if c.metricsAddr != "" && c.metricsHold > 0 {
			fmt.Fprintf(os.Stderr, "telemetry: holding http://%s/metrics for %v\n", c.metricsAddr, c.metricsHold)
			time.Sleep(c.metricsHold)
		}
		return nil
	}, nil
}

// publishSalvage folds a lenient decode's SalvageInfo into the telemetry
// registry (no-op when telemetry is off) — the CLI owns trace files, so it
// owns the prorace_trace_salvage_* series too.
func publishSalvage(sal *tracefmt.SalvageInfo) {
	reg := telemetry.Default()
	if reg == nil || sal == nil {
		return
	}
	if sal.Degraded() {
		reg.Counter("prorace_trace_salvage_runs_total", "Trace decodes that had to salvage (SalvageInfo.Degraded).").Inc()
	}
	if sal.Truncated {
		reg.Counter("prorace_trace_salvage_truncated_total", "Salvaged traces that ended before their declared contents.").Inc()
	}
	reg.Counter("prorace_trace_salvage_torn_bytes_total", "Trailing bytes that did not form a whole record (SalvageInfo.TornBytes).").AddInt(sal.TornBytes)
	reg.Counter("prorace_trace_salvage_dropped_pebs_total", "PEBS records lost to trace truncation (SalvageInfo.DroppedPEBS).").AddInt(sal.DroppedPEBS)
	reg.Counter("prorace_trace_salvage_dropped_sync_total", "Sync records lost to trace truncation (SalvageInfo.DroppedSync).").AddInt(sal.DroppedSync)
	reg.Counter("prorace_trace_salvage_dropped_pt_bytes_total", "PT stream bytes lost to trace truncation (SalvageInfo.DroppedPTBytes).").AddInt(sal.DroppedPTBytes)
}

func (c *commonFlags) resolve() (workload.Workload, *bugs.Built, error) {
	if c.bugID != "" {
		bug, err := bugs.ByID(c.bugID)
		if err != nil {
			return workload.Workload{}, nil, err
		}
		built := bug.Build(workload.Scale(c.scale))
		return built.Workload, built, nil
	}
	if c.workloadName == "" {
		return workload.Workload{}, nil, fmt.Errorf("one of -workload or -bug is required")
	}
	w, err := workload.ByName(c.workloadName, workload.Scale(c.scale))
	return w, nil, err
}

// options translates the flags into the functional-options configuration
// of the prorace package.
func (c *commonFlags) options(w workload.Workload) ([]prorace.Option, error) {
	opts := []prorace.Option{
		prorace.WithMachine(w.Machine),
		prorace.WithPeriod(c.period),
		prorace.WithSeed(c.seed),
		prorace.WithWorkers(c.workers),
		prorace.WithDetectShards(c.detectShards),
	}
	switch c.driverName {
	case "prorace":
		// The default: redesigned driver with PT enabled.
	case "vanilla":
		opts = append(opts, prorace.WithDriver(prorace.VanillaDriver), prorace.WithoutPT())
	default:
		return nil, fmt.Errorf("unknown driver %q", c.driverName)
	}
	switch c.modeName {
	case "bb":
		opts = append(opts, prorace.WithReplayMode(prorace.ReplayBasicBlock))
	case "fwd":
		opts = append(opts, prorace.WithReplayMode(prorace.ReplayForward))
	case "fb":
		// The default: full forward+backward reconstruction.
	default:
		return nil, fmt.Errorf("unknown mode %q", c.modeName)
	}
	// The CLI is strict unless -lenient: an operator inspecting a trace
	// wants corruption surfaced, not silently skipped.
	if !c.lenient {
		opts = append(opts, prorace.WithStrict())
	}
	if c.faultSpec != "" {
		spec, err := prorace.ParseFaultSpec(c.faultSpec)
		if err != nil {
			return nil, fmt.Errorf("-fault-spec: %w", err)
		}
		opts = append(opts, prorace.WithFaultInjection(spec))
	}
	return opts, nil
}

// printDegradation reports what a lenient analysis gave up.
func printDegradation(d *prorace.Degradation) {
	if s := d.Summary(); s != "" {
		fmt.Println("degradation:")
		for _, line := range strings.Split(s, "\n") {
			fmt.Println("  " + line)
		}
	}
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	c := addCommon(fs)
	trials := fs.Int("trials", 1, "number of traces (distinct seeds)")
	overhead := fs.Bool("overhead", true, "measure overhead against an untraced run")
	witnessDir := fs.String("witness-dir", "", "generate a deterministic replay witness per race and write .witness files here (see `prorace reproduce`)")
	fs.Parse(args)

	w, built, err := c.resolve()
	if err != nil {
		return err
	}
	opts, err := c.options(w)
	if err != nil {
		return err
	}
	if *witnessDir != "" {
		spec := prorace.WorkloadWitnessSpec(w.Name, c.scale)
		if c.bugID != "" {
			spec = prorace.BugWitnessSpec(c.bugID, c.scale)
		}
		opts = append(opts, prorace.WithWitnesses(spec))
		if err := os.MkdirAll(*witnessDir, 0o755); err != nil {
			return fmt.Errorf("-witness-dir: %w", err)
		}
	}
	stopProf, err := c.prof.Start()
	if err != nil {
		return err
	}
	defer stopProf()
	stopTel, err := c.startTelemetry()
	if err != nil {
		return err
	}
	if *overhead {
		opts = append(opts, prorace.WithOverheadMeasurement())
	}

	detected := 0
	// One deduplicating sink across all trials: a race re-detected under a
	// different seed prints once, not once per trial.
	printer := report.NewPrinter(w.Program, os.Stdout)
	witnessed := map[[2]uint64]bool{}
	for trial := 0; trial < *trials; trial++ {
		seed := c.seed + int64(trial)*7919
		res, err := prorace.RunWith(w.Program, append(opts, prorace.WithSeed(seed))...)
		if err != nil {
			return err
		}
		tr, ar := res.TraceResult, res.AnalysisResult
		fmt.Printf("trial %d (seed %d): %.3f ms execution, overhead %.2f%%, %d samples (%d dropped), trace %d bytes\n",
			trial+1, seed, tr.TracedStats.Seconds()*1e3, tr.Overhead*100,
			tr.Trace.SampleCount(), tr.Dropped, tr.Trace.TotalBytes())
		fmt.Printf("  reconstruction: %d sampled + %d forward + %d backward + %d bb (%.1fx); offline %v (%d workers, %d shards)\n",
			ar.ReplayStats.Sampled, ar.ReplayStats.Forward, ar.ReplayStats.Backward,
			ar.ReplayStats.BasicBlock, ar.ReplayStats.RecoveryRatio(), ar.TotalTime().Round(1000),
			ar.Workers, ar.DetectShards)
		if built != nil {
			if built.Detected(ar.Reports) {
				detected++
				fmt.Printf("  planted bug %s DETECTED\n", built.Bug.ID)
			} else {
				fmt.Printf("  planted bug %s not detected in this trace\n", built.Bug.ID)
			}
		}
		printDegradation(&ar.Degradation)
		if len(ar.Reports) == 0 {
			fmt.Println("  no data races detected")
		} else {
			fmt.Printf("  %d data race(s) in this trace:\n", len(ar.Reports))
		}
		printer.Publish(ar.Reports)
		if *witnessDir != "" {
			name := w.Name
			if c.bugID != "" {
				name = c.bugID
			}
			for i, wo := range ar.Witnesses {
				key := ar.Reports[i].Key()
				if witnessed[key] {
					continue
				}
				if wo == nil || wo.Witness == nil {
					why := "skipped"
					if wo != nil {
						why = wo.Err
					}
					fmt.Printf("  witness: pair %#x/%#x: %s\n", key[0], key[1], why)
					continue
				}
				witnessed[key] = true
				path := filepath.Join(*witnessDir, fmt.Sprintf("%s-%d.witness", name, len(witnessed)-1))
				if err := wo.Witness.WriteFile(path); err != nil {
					return err
				}
				fmt.Printf("  witness: wrote %s (rung %s, %d forced decisions, %d replays spent)\n",
					path, wo.Rung, len(wo.Witness.Forced), wo.Replays)
			}
		}
	}
	if *trials > 1 {
		fmt.Printf("\n%d distinct data race(s) across %d trials\n", printer.Printed(), *trials)
	}
	if built != nil && *trials > 1 {
		fmt.Printf("detection probability: %d/%d\n", detected, *trials)
	}
	return stopTel()
}

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	c := addCommon(fs)
	out := fs.String("o", "prorace.trace", "output trace file")
	compress := fs.Bool("compress", false, "DEFLATE-compress the trace file")
	fs.Parse(args)

	w, _, err := c.resolve()
	if err != nil {
		return err
	}
	opts, err := c.options(w)
	if err != nil {
		return err
	}
	opts = append(opts, prorace.WithOverheadMeasurement())
	stopProf, err := c.prof.Start()
	if err != nil {
		return err
	}
	defer stopProf()
	stopTel, err := c.startTelemetry()
	if err != nil {
		return err
	}
	res, err := prorace.TraceWith(w.Program, opts...)
	if err != nil {
		return err
	}
	payload := res.Trace.Encode()
	if *compress {
		payload, err = res.Trace.EncodeCompressed()
		if err != nil {
			return err
		}
	}
	if err := os.WriteFile(*out, payload, 0o644); err != nil {
		return err
	}
	fmt.Printf("traced %s at period %d: overhead %.2f%%, %d samples, wrote %s\n",
		w.Name, c.period, res.Overhead*100, res.Trace.SampleCount(), *out)
	return stopTel()
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	c := addCommon(fs)
	in := fs.String("in", "prorace.trace", "input trace file")
	fs.Parse(args)

	stopTel, err := c.startTelemetry()
	if err != nil {
		return err
	}
	raw, err := os.ReadFile(*in)
	if err != nil {
		return fmt.Errorf("reading trace: %w", err)
	}
	var tr *tracefmt.Trace
	if c.lenient {
		var sal *tracefmt.SalvageInfo
		tr, sal, err = tracefmt.DecodeTraceAutoLenient(raw)
		if err != nil {
			return fmt.Errorf("trace %s is unrecognisable even leniently: %w", *in, err)
		}
		publishSalvage(sal)
		if sal.Degraded() {
			fmt.Printf("salvaged %s: truncated=%v, %d torn bytes, dropped %d PEBS + %d sync records + %d PT bytes\n",
				*in, sal.Truncated, sal.TornBytes, sal.DroppedPEBS, sal.DroppedSync, sal.DroppedPTBytes)
		}
	} else {
		tr, err = tracefmt.DecodeTraceAuto(raw)
		if err != nil {
			return fmt.Errorf("trace %s is corrupt (re-run with -lenient to salvage): %w", *in, err)
		}
	}
	if c.workloadName == "" && c.bugID == "" {
		c.workloadName = tr.Program
	}
	w, built, err := c.resolve()
	if err != nil {
		return err
	}
	opts, err := c.options(w)
	if err != nil {
		return err
	}
	stopProf, err := c.prof.Start()
	if err != nil {
		return err
	}
	defer stopProf()
	ar, err := prorace.AnalyzeWith(w.Program, &prorace.TraceResult{Trace: tr}, opts...)
	if err != nil {
		return err
	}
	fmt.Printf("analysis of %s (%d samples): %d accesses (%.1fx recovery) in %v (%d workers, %d shards)\n",
		*in, tr.SampleCount(), ar.ReplayStats.Total(), ar.ReplayStats.RecoveryRatio(),
		ar.TotalTime().Round(1000), ar.Workers, ar.DetectShards)
	if built != nil && built.Detected(ar.Reports) {
		fmt.Printf("planted bug %s DETECTED\n", built.Bug.ID)
	}
	printDegradation(&ar.Degradation)
	fmt.Print(prorace.FormatRaces(w.Program, ar.Reports))
	return stopTel()
}

// cmdReproduce replays witness files and exits non-zero — with a
// human-readable diff — when any witnessed race no longer manifests
// exactly as recorded.
func cmdReproduce(args []string) error {
	fs := flag.NewFlagSet("reproduce", flag.ExitOnError)
	quiet := fs.Bool("q", false, "print failures only")
	fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("usage: prorace reproduce <report.witness> [...]")
	}
	rw := func(write bool) string {
		if write {
			return "write"
		}
		return "read"
	}
	failed := 0
	for _, path := range fs.Args() {
		w, err := prorace.ReadWitness(path)
		if err != nil {
			fmt.Printf("%s: FAILED — %v\n", path, err)
			failed++
			continue
		}
		out, err := w.ReplayResolved()
		if err != nil {
			fmt.Printf("%s: FAILED — %v\n", path, err)
			failed++
			continue
		}
		if !out.OK {
			fmt.Printf("%s: FAILED — %s drifted from the witnessed execution:\n%s", path, w.Prog, out.Diff())
			failed++
			continue
		}
		if !*quiet {
			e := w.Expect
			fmt.Printf("%s: reproduced %s: race on %#x between T%d %s@%#x and T%d %s@%#x (seed %d, %d forced decisions)\n",
				path, w.Prog, e.Addr,
				e.First.TID, rw(e.First.Write), e.First.PC,
				e.Second.TID, rw(e.Second.Write), e.Second.PC,
				w.Machine.Seed, len(w.Forced))
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d witness(es) failed to reproduce", failed, fs.NArg())
	}
	fmt.Printf("%d witness(es) reproduced\n", fs.NArg())
	return nil
}

func cmdDisasm(args []string) error {
	fs := flag.NewFlagSet("disasm", flag.ExitOnError)
	c := addCommon(fs)
	fs.Parse(args)
	w, _, err := c.resolve()
	if err != nil {
		return err
	}
	fmt.Print(isa.Disassemble(w.Program.Insts))
	return nil
}
