// Command experiments regenerates the paper's evaluation artifacts
// (Tables 1-2, Figures 6-12):
//
//	experiments -exp all                 # everything, quick configuration
//	experiments -exp fig6,fig10          # selected figures
//	experiments -exp table2 -full        # paper-scale (100 traces per cell)
//	experiments -exp table2 -trials 25
//	experiments -exp perf                # offline-pipeline benchmarks -> BENCH_PR6.json
//	experiments -exp fig12 -cpuprofile cpu.out -memprofile mem.out
//
// The mapping from each experiment to the paper's artifact is DESIGN.md §4;
// paper-vs-measured numbers are recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"prorace/internal/experiments"
	"prorace/internal/profiling"
	"prorace/internal/telemetry"
	"prorace/internal/workload"
)

func main() {
	expFlag := flag.String("exp", "all", "comma-separated: table1,fig6,fig7,fig8,fig9,fig10,table2,fig11,fig12,related,scaling,faults,oracle,perf,memscale,all")
	full := flag.Bool("full", false, "paper-scale configuration (slow)")
	scale := flag.Int("scale", 0, "override workload scale")
	trials := flag.Int("trials", 0, "override Table 2 traces per cell")
	seed := flag.Int64("seed", 1, "base scheduler seed")
	soak := flag.Bool("soak", false, "oracle experiment: full 200-seed soak with a dense determinism matrix")
	oracleSeeds := flag.Int("oracle-seeds", 0, "override oracle differential-sweep seed count")
	benchOut := flag.String("bench-out", "BENCH_PR6.json", "perf experiment: JSON measurement file")
	memOut := flag.String("memscale-out", "BENCH_PR8.json", "memscale experiment: JSON measurement file")
	memVars := flag.Int("memscale-vars", 0, "memscale: variable count (0 = the 1M-variable acceptance scale)")
	memThreads := flag.Int("memscale-threads", 64, "memscale: thread count")
	memBudget := flag.Float64("memscale-budget", 0, "memscale: fail if flat shadow bytes/variable exceed this (CI ratchet)")
	memReduction := flag.Float64("memscale-min-reduction", 0, "memscale: fail if heap bytes/variable reduction vs the reference representation is below this")
	metricsAddr := flag.String("metrics-addr", "", "serve live telemetry on this address (/metrics, /debug/vars, /timeline, /debug/pprof)")
	timeline := flag.String("timeline", "", "write a chrome://tracing stage-span timeline JSON to this file")
	metricsHold := flag.Duration("metrics-hold", 0, "keep the -metrics-addr listener alive this long after the experiments finish (for scrapers)")
	var prof profiling.Flags
	prof.Register(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	defer stopProf()

	// Observability flags enable the process-wide telemetry registry, so
	// every analysis the harness runs publishes into it without the
	// experiment code knowing about telemetry at all.
	var reg *telemetry.Registry
	if *metricsAddr != "" || *timeline != "" {
		reg = telemetry.EnableDefault()
		if *metricsAddr != "" {
			srv, err := telemetry.EnsureServer(*metricsAddr, reg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error: -metrics-addr:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "telemetry: serving http://%s/metrics\n", srv.Addr())
		}
		defer func() {
			if *timeline != "" {
				if err := reg.WriteTimelineFile(*timeline); err != nil {
					fmt.Fprintln(os.Stderr, "error: -timeline:", err)
					os.Exit(1)
				}
				fmt.Fprintf(os.Stderr, "telemetry: wrote timeline %s (open in chrome://tracing)\n", *timeline)
			}
			if *metricsAddr != "" && *metricsHold > 0 {
				fmt.Fprintf(os.Stderr, "telemetry: holding http://%s/metrics for %v\n", *metricsAddr, *metricsHold)
				time.Sleep(*metricsHold)
			}
		}()
	}

	cfg := experiments.Quick()
	if *full {
		cfg = experiments.Full()
	}
	if *scale > 0 {
		cfg.Scale = workload.Scale(*scale)
	}
	if *trials > 0 {
		cfg.Table2Trials = *trials
	}
	cfg.Seed = *seed
	if *soak {
		cfg.OracleSeeds = 200
		cfg.OracleDeterminismEvery = 10
	}
	if *oracleSeeds > 0 {
		cfg.OracleSeeds = *oracleSeeds
	}
	h := experiments.NewHarness(cfg)

	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	ran := 0

	run := func(name string, f func() (string, error)) {
		if !all && !want[name] {
			return
		}
		ran++
		t0 := time.Now()
		out, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Print(out)
		fmt.Printf("[%s regenerated in %v]\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	run("table1", func() (string, error) {
		return experiments.Table1(h.Config().Scale), nil
	})
	run("fig6", func() (string, error) {
		f, err := h.Figure6()
		if err != nil {
			return "", err
		}
		return f.Render(), nil
	})
	run("fig7", func() (string, error) {
		f, err := h.Figure7()
		if err != nil {
			return "", err
		}
		return f.Render(), nil
	})
	run("fig8", func() (string, error) {
		f, err := h.Figure8()
		if err != nil {
			return "", err
		}
		return f.Render(), nil
	})
	run("fig9", func() (string, error) {
		f, err := h.Figure9()
		if err != nil {
			return "", err
		}
		return f.Render(), nil
	})
	run("fig10", func() (string, error) {
		f, err := h.Figure10()
		if err != nil {
			return "", err
		}
		return f.Render(), nil
	})
	run("table2", func() (string, error) {
		f, err := h.Table2()
		if err != nil {
			return "", err
		}
		return f.Render(), nil
	})
	run("fig11", func() (string, error) {
		f, err := h.Figure11()
		if err != nil {
			return "", err
		}
		return f.Render(), nil
	})
	run("fig12", func() (string, error) {
		f, err := h.Figure12()
		if err != nil {
			return "", err
		}
		return f.Render(), nil
	})
	run("related", func() (string, error) {
		f, err := h.RelatedWork()
		if err != nil {
			return "", err
		}
		return f.Render(), nil
	})
	run("scaling", func() (string, error) {
		f, err := h.DetectScaling()
		if err != nil {
			return "", err
		}
		return f.Render(), nil
	})
	run("faults", func() (string, error) {
		f, err := h.FaultSweep()
		if err != nil {
			return "", err
		}
		return f.Render(), nil
	})
	run("oracle", func() (string, error) {
		f, err := h.Oracle()
		if f != nil && err != nil {
			// Render the table before failing so the violations are visible.
			return "", fmt.Errorf("%v\n%s", err, f.Render())
		}
		if err != nil {
			return "", err
		}
		return f.Render(), nil
	})

	// perf is opt-in only (not part of "all"): it runs auto-scaled
	// benchmarks for tens of seconds and writes a measurement file.
	if want["perf"] {
		ran++
		t0 := time.Now()
		res, err := h.Perf()
		if err != nil {
			fmt.Fprintln(os.Stderr, "perf:", err)
			os.Exit(1)
		}
		if err := res.WriteJSON(*benchOut); err != nil {
			fmt.Fprintln(os.Stderr, "perf:", err)
			os.Exit(1)
		}
		fmt.Print(res.Render())
		fmt.Printf("[perf measured in %v, wrote %s]\n\n", time.Since(t0).Round(time.Millisecond), *benchOut)
	}

	// memscale is opt-in only (not part of "all"): at the default
	// acceptance scale it feeds 2M accesses through three detector
	// representations and holds gigabyte-scale shadow state alive.
	if want["memscale"] {
		ran++
		t0 := time.Now()
		mcfg := experiments.DefaultMemScale()
		if *memVars > 0 {
			mcfg.Vars = *memVars
		}
		if *memThreads > 1 {
			mcfg.Threads = *memThreads
		}
		mcfg.BudgetBytesPerVar = *memBudget
		mcfg.MinReduction = *memReduction
		res, err := h.MemScale(mcfg)
		if res != nil {
			if werr := res.WriteJSON(*memOut); werr != nil {
				fmt.Fprintln(os.Stderr, "memscale:", werr)
				os.Exit(1)
			}
			fmt.Print(res.Render())
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "memscale:", err)
			os.Exit(1)
		}
		fmt.Printf("[memscale measured in %v, wrote %s]\n\n", time.Since(t0).Round(time.Millisecond), *memOut)
	}

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matched %q\n", *expFlag)
		os.Exit(2)
	}
}
