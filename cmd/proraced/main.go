// Command proraced is the continuous fleet-monitoring daemon: it ingests
// PRSG-framed trace segments from many tenants over HTTP, re-analyses each
// tenant's rolling window incrementally on the segment-resumable analysis
// API, and maintains a persistent deduplicating race-report store.
//
//	proraced serve -listen :7077 -store /var/lib/proraced/reports.json \
//	    -wal /var/lib/proraced/wal -fsync always
//	proraced send -addr localhost:7077 -tenant web-1 -bug apache-21287 -segments 8
//
// With -wal set, every accepted segment is journalled durably before the
// producer sees its acknowledgement; on restart the daemon replays the
// unanalysed journal suffix, so a crash (or kill -9) loses nothing that
// was acknowledged. SIGTERM/SIGINT triggers a graceful drain: ingest
// stops, in-flight windows finish, journal and store are flushed, and the
// process exits 0.
//
// The serve listener co-hosts the full observability surface: /metrics,
// /debug/vars and /debug/pprof next to /ingest, /program, /reports,
// /tenants, /statusz, /tenantz and /healthz. `proraced status` renders a
// running daemon's /statusz as a fleet table; -log-format json switches
// the daemon's event log to structured JSON; -alert-url POSTs one webhook
// alert per first-seen race.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"text/tabwriter"
	"time"

	"prorace/internal/bugs"
	"prorace/internal/core"
	"prorace/internal/monitor"
	"prorace/internal/monitor/client"
	"prorace/internal/pmu/driver"
	"prorace/internal/prog"
	"prorace/internal/progtest"
	"prorace/internal/telemetry"
	"prorace/internal/tracefmt"
	"prorace/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = cmdServe(os.Args[2:])
	case "send":
		err = cmdSend(os.Args[2:])
	case "status":
		err = cmdStatus(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: proraced <command> [flags]

commands:
  serve     run the monitoring daemon
  send      trace a workload locally and stream it to a daemon in segments
  status    render a running daemon's /statusz as a fleet table`)
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:7077", "HTTP listen address")
	store := fs.String("store", "", "persistent report store path (empty = in memory)")
	walDir := fs.String("wal", "", "write-ahead segment journal directory (empty = no journal)")
	fsync := fs.String("fsync", "always", "journal fsync policy: always, off, or interval[=DURATION]")
	window := fs.Int("window", 8, "rolling window: segments re-analysed per tenant round")
	windowAge := fs.Duration("window-age", 0, "retire window segments older than this (0 = never)")
	queueDepth := fs.Int("queue-depth", 32, "pending segments per tenant before admission rejection")
	workers := fs.Int("workers", 2, "analysis worker pool size (0 = analyse inline on ingest)")
	analysisWorkers := fs.Int("analysis-workers", 0, "replay workers per analysis round (0 sequential, -1 GOMAXPROCS)")
	detectShards := fs.Int("detect-shards", 0, "detection shards per analysis round (0/1 sequential, -1 GOMAXPROCS)")
	maxBody := fs.Int64("max-body", 0, "ingest/program HTTP body size cap in bytes (0 = default 256MiB)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget before in-flight requests are cut")
	logFormat := fs.String("log-format", "text", "structured log encoding: json or text")
	logLevel := fs.String("log-level", "info", "minimum log level: debug, info, warn, error")
	lineageDepth := fs.Int("lineage-depth", 256, "per-tenant lineage ring size (recent segments with reconstructable stage histories)")
	alertURL := fs.String("alert-url", "", "webhook POSTed one JSON alert per first-seen race (empty = off)")
	alertRate := fs.Int("alert-rate", 30, "alert webhook rate limit, deliveries per minute")
	if err := fs.Parse(args); err != nil {
		return err
	}
	policy, err := monitor.ParseFsyncPolicy(*fsync)
	if err != nil {
		return fmt.Errorf("-fsync: %w", err)
	}
	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		return err
	}
	reg := telemetry.New()
	telemetry.RegisterBuildInfo(reg, "proraced")
	m, err := monitor.New(monitor.Config{
		Window:       *window,
		QueueDepth:   *queueDepth,
		Workers:      *workers,
		StorePath:    *store,
		WALDir:       *walDir,
		Fsync:        policy,
		WindowMaxAge: *windowAge,
		MaxBodyBytes: *maxBody,
		LineageDepth: *lineageDepth,
		// Strict stays false: a degraded window is a tenant problem, not a
		// daemon problem.
		Analysis: core.AnalysisOptions{
			Workers:      *analysisWorkers,
			DetectShards: *detectShards,
		},
		Telemetry: reg,
		Alert: monitor.AlertConfig{
			URL:           *alertURL,
			RatePerMinute: *alertRate,
		},
		Logger: logger,
	})
	if err != nil {
		return err
	}
	mux := telemetry.NewMux(reg)
	m.Attach(mux)
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("-listen: %w", err)
	}
	srv := &http.Server{
		Handler: mux,
		// Slow-client protection: a producer that stalls mid-headers or
		// mid-body cannot pin a connection forever. WriteTimeout stays 0 —
		// /reports on a large store and /debug/pprof profiles are
		// legitimately slow.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	var sweepStop chan struct{}
	if *windowAge > 0 {
		// Idle tenants get no analysis rounds, so aged segments would sit
		// forever without a periodic sweep.
		sweepStop = make(chan struct{})
		interval := *windowAge / 4
		if interval < time.Second {
			interval = time.Second
		}
		go func() {
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					m.Sweep()
				case <-sweepStop:
					return
				}
			}
		}()
	}

	logger.Info("serving",
		"addr", "http://"+ln.Addr().String(),
		"store", pathLabel(*store, "in-memory"),
		"wal", pathLabel(*walDir, "off"),
		"window", *window,
		"workers", *workers,
		"alerting", *alertURL != "")
	select {
	case s := <-sig:
		logger.Info("draining", "signal", s.String())
	case err := <-done:
		m.Close()
		return err
	}
	if sweepStop != nil {
		close(sweepStop)
	}
	// Graceful drain: stop accepting connections and let in-flight requests
	// finish (bounded), then flush windows, journal cursors and the store.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Warn("drain cut short", "err", err)
		srv.Close()
	}
	if err := m.Close(); err != nil {
		return err
	}
	logger.Info("store persisted, exiting")
	return nil
}

// buildLogger assembles the daemon's structured logger from the
// -log-format/-log-level flags.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("-log-level: %w", err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("-log-format: unknown format %q (want json or text)", format)
	}
}

func pathLabel(path, empty string) string {
	if path == "" {
		return empty
	}
	return path
}

// cmdStatus fetches a running daemon's /statusz JSON and renders it as a
// fleet table — `proraced status -addr host:7077` is the operator's
// one-command overview without a browser.
func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7077", "daemon address")
	timeout := fs.Duration("timeout", 10*time.Second, "request timeout")
	raw := fs.Bool("json", false, "print the raw /statusz JSON instead of a table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	hc := &http.Client{Timeout: *timeout}
	resp, err := hc.Get("http://" + *addr + "/statusz?format=json")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("daemon returned %s: %s", resp.Status, body)
	}
	if *raw {
		_, err := os.Stdout.Write(body)
		return err
	}
	var s monitor.Statusz
	if err := json.Unmarshal(body, &s); err != nil {
		return fmt.Errorf("decoding /statusz: %w", err)
	}
	fmt.Printf("proraced %s (%s) · pid %d · up %s · %d distinct races stored\n",
		s.Version, s.GoVersion, s.PID, (time.Duration(s.UptimeSeconds * float64(time.Second))).Round(time.Second), s.StoreReports)
	fmt.Printf("config: window=%d queue=%d workers=%d fsync=%s durability=%t lineage=%d",
		s.Config.Window, s.Config.QueueDepth, s.Config.Workers, s.Config.Fsync, s.Config.Durability, s.Config.LineageDepth)
	if s.Config.AlertURL != "" {
		fmt.Printf(" alerts=%s", s.Config.AlertURL)
	}
	fmt.Println()
	if len(s.Tenants) == 0 {
		fmt.Println("(no tenants yet)")
		return nil
	}
	sort.Slice(s.Tenants, func(i, j int) bool { return s.Tenants[i].Tenant < s.Tenants[j].Tenant })
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "TENANT\tPROGRAM\tSEGS\tPEND\tWIN\tWAL B\tLAG\tANALYSES\tREPORTS\tLINEAGE\tLAST STAGE\tERROR")
	for _, t := range s.Tenants {
		lastStage := "—"
		if n := len(t.LineageTail); n > 0 {
			lastStage = t.LineageTail[n-1].Stage
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d/%d\t%s\t%s\n",
			t.Tenant, t.Program, t.Segments, t.PendingSegments, t.WindowSegments,
			t.WALBytes, t.CursorLag, t.Analyses, t.LastReports,
			t.LineageTerminal, t.LineageMinted, lastStage, t.LastError)
	}
	return tw.Flush()
}

func cmdSend(args []string) error {
	fs := flag.NewFlagSet("send", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7077", "daemon address")
	tenant := fs.String("tenant", "", "tenant tag for this stream (required)")
	workloadName := fs.String("workload", "", "built-in workload to trace")
	bugID := fs.String("bug", "", "Table 2 bug id to trace (alternative to -workload)")
	oracleSeed := fs.Int64("oracle-seed", 0, "trace an oracle-generated concurrent program with this generator seed (alternative to -workload/-bug)")
	scale := fs.Int("scale", 1, "workload scale factor")
	period := fs.Uint64("period", 10000, "PEBS sampling period")
	seed := fs.Int64("seed", 1, "scheduler seed")
	segments := fs.Int("segments", 8, "PRSG segments to split the trace into")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request HTTP timeout")
	attempts := fs.Int("attempts", 10, "max attempts per segment before giving up")
	backoff := fs.Duration("backoff", 100*time.Millisecond, "initial retry backoff (doubles per attempt, jittered)")
	maxBackoff := fs.Duration("max-backoff", 5*time.Second, "retry backoff cap")
	retryBudget := fs.Duration("retry-budget", 2*time.Minute, "total retry time per segment before giving up")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tenant == "" {
		return fmt.Errorf("-tenant is required")
	}
	if *segments < 1 {
		*segments = 1
	}

	var (
		p   *prog.Program
		mc  = workload.Workload{}.Machine
		err error
	)
	switch {
	case *oracleSeed != 0:
		p, _ = progtest.ConcurrentProgram(rand.New(rand.NewSource(*oracleSeed)))
	case *bugID != "":
		bug, err := bugs.ByID(*bugID)
		if err != nil {
			return err
		}
		built := bug.Build(workload.Scale(*scale))
		p, mc = built.Workload.Program, built.Workload.Machine
	case *workloadName != "":
		w, err := workload.ByName(*workloadName, workload.Scale(*scale))
		if err != nil {
			return err
		}
		p, mc = w.Program, w.Machine
	default:
		return fmt.Errorf("one of -workload, -bug or -oracle-seed is required")
	}

	fmt.Fprintf(os.Stderr, "proraced send: tracing %s (period %d, seed %d)\n", p.Name, *period, *seed)
	tr, err := core.TraceProgram(p, core.TraceOptions{
		Kind:     driver.ProRace,
		Period:   *period,
		Seed:     *seed,
		EnablePT: true,
		Machine:  mc,
	})
	if err != nil {
		return err
	}

	c, err := client.New(client.Config{
		BaseURL:        "http://" + *addr,
		Tenant:         *tenant,
		RequestTimeout: *timeout,
		InitialBackoff: *backoff,
		MaxBackoff:     *maxBackoff,
		MaxAttempts:    *attempts,
		RetryBudget:    *retryBudget,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "proraced send: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	if err := c.UploadProgram(prog.EncodeImage(p)); err != nil {
		return fmt.Errorf("uploading program image: %w", err)
	}
	segs := tr.Trace.Split(*segments)
	for i, seg := range segs {
		frame := tracefmt.EncodeSegment(tracefmt.SegmentHeader{
			Seq:    uint64(i),
			Tenant: *tenant,
			Final:  i == len(segs)-1,
		}, seg)
		if err := c.SendSegment(frame); err != nil {
			return fmt.Errorf("segment %d/%d: %w", i+1, len(segs), err)
		}
		fmt.Fprintf(os.Stderr, "proraced send: segment %d/%d accepted (%d bytes)\n", i+1, len(segs), len(frame))
	}
	if st := c.Stats(); st.Retries > 0 || st.Throttled > 0 {
		fmt.Fprintf(os.Stderr, "proraced send: done (%d requests, %d attempts, %d retries, %d throttled)\n",
			st.Requests, st.Attempts, st.Retries, st.Throttled)
	}
	return nil
}
