// Command proraced is the continuous fleet-monitoring daemon: it ingests
// PRSG-framed trace segments from many tenants over HTTP, re-analyses each
// tenant's rolling window incrementally on the segment-resumable analysis
// API, and maintains a persistent deduplicating race-report store.
//
//	proraced serve -listen :7077 -store /var/lib/proraced/reports.json
//	proraced send -addr localhost:7077 -tenant web-1 -bug apache-21287 -segments 8
//
// The serve listener co-hosts the full observability surface: /metrics,
// /debug/vars and /debug/pprof next to /ingest, /program, /reports,
// /tenants and /healthz.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"prorace/internal/bugs"
	"prorace/internal/core"
	"prorace/internal/monitor"
	"prorace/internal/pmu/driver"
	"prorace/internal/prog"
	"prorace/internal/progtest"
	"prorace/internal/telemetry"
	"prorace/internal/tracefmt"
	"prorace/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = cmdServe(os.Args[2:])
	case "send":
		err = cmdSend(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: proraced <command> [flags]

commands:
  serve     run the monitoring daemon
  send      trace a workload locally and stream it to a daemon in segments`)
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:7077", "HTTP listen address")
	store := fs.String("store", "", "persistent report store path (empty = in memory)")
	window := fs.Int("window", 8, "rolling window: segments re-analysed per tenant round")
	queueDepth := fs.Int("queue-depth", 32, "pending segments per tenant before admission rejection")
	workers := fs.Int("workers", 2, "analysis worker pool size (0 = analyse inline on ingest)")
	analysisWorkers := fs.Int("analysis-workers", 0, "replay workers per analysis round (0 sequential, -1 GOMAXPROCS)")
	detectShards := fs.Int("detect-shards", 0, "detection shards per analysis round (0/1 sequential, -1 GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	reg := telemetry.New()
	m, err := monitor.New(monitor.Config{
		Window:     *window,
		QueueDepth: *queueDepth,
		Workers:    *workers,
		StorePath:  *store,
		// Strict stays false: a degraded window is a tenant problem, not a
		// daemon problem.
		Analysis: core.AnalysisOptions{
			Workers:      *analysisWorkers,
			DetectShards: *detectShards,
		},
		Telemetry: reg,
	})
	if err != nil {
		return err
	}
	mux := telemetry.NewMux(reg)
	m.Attach(mux)
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("-listen: %w", err)
	}
	srv := &http.Server{Handler: mux}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "proraced: serving http://%s (store %s, window %d, %d workers)\n",
		ln.Addr(), storeLabel(*store), *window, *workers)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "proraced: %v, draining\n", s)
	case err := <-done:
		m.Close()
		return err
	}
	srv.Close()
	if err := m.Close(); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "proraced: store persisted, bye")
	return nil
}

func storeLabel(path string) string {
	if path == "" {
		return "in-memory"
	}
	return path
}

func cmdSend(args []string) error {
	fs := flag.NewFlagSet("send", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7077", "daemon address")
	tenant := fs.String("tenant", "", "tenant tag for this stream (required)")
	workloadName := fs.String("workload", "", "built-in workload to trace")
	bugID := fs.String("bug", "", "Table 2 bug id to trace (alternative to -workload)")
	oracleSeed := fs.Int64("oracle-seed", 0, "trace an oracle-generated concurrent program with this generator seed (alternative to -workload/-bug)")
	scale := fs.Int("scale", 1, "workload scale factor")
	period := fs.Uint64("period", 10000, "PEBS sampling period")
	seed := fs.Int64("seed", 1, "scheduler seed")
	segments := fs.Int("segments", 8, "PRSG segments to split the trace into")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tenant == "" {
		return fmt.Errorf("-tenant is required")
	}
	if *segments < 1 {
		*segments = 1
	}

	var (
		p   *prog.Program
		mc  = workload.Workload{}.Machine
		err error
	)
	switch {
	case *oracleSeed != 0:
		p, _ = progtest.ConcurrentProgram(rand.New(rand.NewSource(*oracleSeed)))
	case *bugID != "":
		bug, err := bugs.ByID(*bugID)
		if err != nil {
			return err
		}
		built := bug.Build(workload.Scale(*scale))
		p, mc = built.Workload.Program, built.Workload.Machine
	case *workloadName != "":
		w, err := workload.ByName(*workloadName, workload.Scale(*scale))
		if err != nil {
			return err
		}
		p, mc = w.Program, w.Machine
	default:
		return fmt.Errorf("one of -workload, -bug or -oracle-seed is required")
	}

	fmt.Fprintf(os.Stderr, "proraced send: tracing %s (period %d, seed %d)\n", p.Name, *period, *seed)
	tr, err := core.TraceProgram(p, core.TraceOptions{
		Kind:     driver.ProRace,
		Period:   *period,
		Seed:     *seed,
		EnablePT: true,
		Machine:  mc,
	})
	if err != nil {
		return err
	}

	base := "http://" + *addr
	if err := post(base+"/program", prog.EncodeImage(p)); err != nil {
		return fmt.Errorf("uploading program image: %w", err)
	}
	segs := tr.Trace.Split(*segments)
	for i, seg := range segs {
		frame := tracefmt.EncodeSegment(tracefmt.SegmentHeader{
			Seq:    uint64(i),
			Tenant: *tenant,
			Final:  i == len(segs)-1,
		}, seg)
		if err := post(base+"/ingest?tenant="+*tenant, frame); err != nil {
			return fmt.Errorf("segment %d/%d: %w", i+1, len(segs), err)
		}
		fmt.Fprintf(os.Stderr, "proraced send: segment %d/%d accepted (%d bytes)\n", i+1, len(segs), len(frame))
	}
	return nil
}

func post(url string, body []byte) error {
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return nil
}
