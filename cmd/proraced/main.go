// Command proraced is the continuous fleet-monitoring daemon: it ingests
// PRSG-framed trace segments from many tenants over HTTP, re-analyses each
// tenant's rolling window incrementally on the segment-resumable analysis
// API, and maintains a persistent deduplicating race-report store.
//
//	proraced serve -listen :7077 -store /var/lib/proraced/reports.json \
//	    -wal /var/lib/proraced/wal -fsync always
//	proraced send -addr localhost:7077 -tenant web-1 -bug apache-21287 -segments 8
//
// With -wal set, every accepted segment is journalled durably before the
// producer sees its acknowledgement; on restart the daemon replays the
// unanalysed journal suffix, so a crash (or kill -9) loses nothing that
// was acknowledged. SIGTERM/SIGINT triggers a graceful drain: ingest
// stops, in-flight windows finish, journal and store are flushed, and the
// process exits 0.
//
// The serve listener co-hosts the full observability surface: /metrics,
// /debug/vars and /debug/pprof next to /ingest, /program, /reports,
// /tenants and /healthz.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"prorace/internal/bugs"
	"prorace/internal/core"
	"prorace/internal/monitor"
	"prorace/internal/monitor/client"
	"prorace/internal/pmu/driver"
	"prorace/internal/prog"
	"prorace/internal/progtest"
	"prorace/internal/telemetry"
	"prorace/internal/tracefmt"
	"prorace/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = cmdServe(os.Args[2:])
	case "send":
		err = cmdSend(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: proraced <command> [flags]

commands:
  serve     run the monitoring daemon
  send      trace a workload locally and stream it to a daemon in segments`)
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:7077", "HTTP listen address")
	store := fs.String("store", "", "persistent report store path (empty = in memory)")
	walDir := fs.String("wal", "", "write-ahead segment journal directory (empty = no journal)")
	fsync := fs.String("fsync", "always", "journal fsync policy: always, off, or interval[=DURATION]")
	window := fs.Int("window", 8, "rolling window: segments re-analysed per tenant round")
	windowAge := fs.Duration("window-age", 0, "retire window segments older than this (0 = never)")
	queueDepth := fs.Int("queue-depth", 32, "pending segments per tenant before admission rejection")
	workers := fs.Int("workers", 2, "analysis worker pool size (0 = analyse inline on ingest)")
	analysisWorkers := fs.Int("analysis-workers", 0, "replay workers per analysis round (0 sequential, -1 GOMAXPROCS)")
	detectShards := fs.Int("detect-shards", 0, "detection shards per analysis round (0/1 sequential, -1 GOMAXPROCS)")
	maxBody := fs.Int64("max-body", 0, "ingest/program HTTP body size cap in bytes (0 = default 256MiB)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget before in-flight requests are cut")
	if err := fs.Parse(args); err != nil {
		return err
	}
	policy, err := monitor.ParseFsyncPolicy(*fsync)
	if err != nil {
		return fmt.Errorf("-fsync: %w", err)
	}
	reg := telemetry.New()
	m, err := monitor.New(monitor.Config{
		Window:       *window,
		QueueDepth:   *queueDepth,
		Workers:      *workers,
		StorePath:    *store,
		WALDir:       *walDir,
		Fsync:        policy,
		WindowMaxAge: *windowAge,
		MaxBodyBytes: *maxBody,
		// Strict stays false: a degraded window is a tenant problem, not a
		// daemon problem.
		Analysis: core.AnalysisOptions{
			Workers:      *analysisWorkers,
			DetectShards: *detectShards,
		},
		Telemetry: reg,
	})
	if err != nil {
		return err
	}
	mux := telemetry.NewMux(reg)
	m.Attach(mux)
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("-listen: %w", err)
	}
	srv := &http.Server{
		Handler: mux,
		// Slow-client protection: a producer that stalls mid-headers or
		// mid-body cannot pin a connection forever. WriteTimeout stays 0 —
		// /reports on a large store and /debug/pprof profiles are
		// legitimately slow.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	var sweepStop chan struct{}
	if *windowAge > 0 {
		// Idle tenants get no analysis rounds, so aged segments would sit
		// forever without a periodic sweep.
		sweepStop = make(chan struct{})
		interval := *windowAge / 4
		if interval < time.Second {
			interval = time.Second
		}
		go func() {
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					m.Sweep()
				case <-sweepStop:
					return
				}
			}
		}()
	}

	fmt.Fprintf(os.Stderr, "proraced: serving http://%s (store %s, wal %s, window %d, %d workers)\n",
		ln.Addr(), pathLabel(*store, "in-memory"), pathLabel(*walDir, "off"), *window, *workers)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "proraced: %v, draining\n", s)
	case err := <-done:
		m.Close()
		return err
	}
	if sweepStop != nil {
		close(sweepStop)
	}
	// Graceful drain: stop accepting connections and let in-flight requests
	// finish (bounded), then flush windows, journal cursors and the store.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "proraced: drain cut short: %v\n", err)
		srv.Close()
	}
	if err := m.Close(); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "proraced: store persisted, bye")
	return nil
}

func pathLabel(path, empty string) string {
	if path == "" {
		return empty
	}
	return path
}

func cmdSend(args []string) error {
	fs := flag.NewFlagSet("send", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7077", "daemon address")
	tenant := fs.String("tenant", "", "tenant tag for this stream (required)")
	workloadName := fs.String("workload", "", "built-in workload to trace")
	bugID := fs.String("bug", "", "Table 2 bug id to trace (alternative to -workload)")
	oracleSeed := fs.Int64("oracle-seed", 0, "trace an oracle-generated concurrent program with this generator seed (alternative to -workload/-bug)")
	scale := fs.Int("scale", 1, "workload scale factor")
	period := fs.Uint64("period", 10000, "PEBS sampling period")
	seed := fs.Int64("seed", 1, "scheduler seed")
	segments := fs.Int("segments", 8, "PRSG segments to split the trace into")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request HTTP timeout")
	attempts := fs.Int("attempts", 10, "max attempts per segment before giving up")
	backoff := fs.Duration("backoff", 100*time.Millisecond, "initial retry backoff (doubles per attempt, jittered)")
	maxBackoff := fs.Duration("max-backoff", 5*time.Second, "retry backoff cap")
	retryBudget := fs.Duration("retry-budget", 2*time.Minute, "total retry time per segment before giving up")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tenant == "" {
		return fmt.Errorf("-tenant is required")
	}
	if *segments < 1 {
		*segments = 1
	}

	var (
		p   *prog.Program
		mc  = workload.Workload{}.Machine
		err error
	)
	switch {
	case *oracleSeed != 0:
		p, _ = progtest.ConcurrentProgram(rand.New(rand.NewSource(*oracleSeed)))
	case *bugID != "":
		bug, err := bugs.ByID(*bugID)
		if err != nil {
			return err
		}
		built := bug.Build(workload.Scale(*scale))
		p, mc = built.Workload.Program, built.Workload.Machine
	case *workloadName != "":
		w, err := workload.ByName(*workloadName, workload.Scale(*scale))
		if err != nil {
			return err
		}
		p, mc = w.Program, w.Machine
	default:
		return fmt.Errorf("one of -workload, -bug or -oracle-seed is required")
	}

	fmt.Fprintf(os.Stderr, "proraced send: tracing %s (period %d, seed %d)\n", p.Name, *period, *seed)
	tr, err := core.TraceProgram(p, core.TraceOptions{
		Kind:     driver.ProRace,
		Period:   *period,
		Seed:     *seed,
		EnablePT: true,
		Machine:  mc,
	})
	if err != nil {
		return err
	}

	c, err := client.New(client.Config{
		BaseURL:        "http://" + *addr,
		Tenant:         *tenant,
		RequestTimeout: *timeout,
		InitialBackoff: *backoff,
		MaxBackoff:     *maxBackoff,
		MaxAttempts:    *attempts,
		RetryBudget:    *retryBudget,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "proraced send: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	if err := c.UploadProgram(prog.EncodeImage(p)); err != nil {
		return fmt.Errorf("uploading program image: %w", err)
	}
	segs := tr.Trace.Split(*segments)
	for i, seg := range segs {
		frame := tracefmt.EncodeSegment(tracefmt.SegmentHeader{
			Seq:    uint64(i),
			Tenant: *tenant,
			Final:  i == len(segs)-1,
		}, seg)
		if err := c.SendSegment(frame); err != nil {
			return fmt.Errorf("segment %d/%d: %w", i+1, len(segs), err)
		}
		fmt.Fprintf(os.Stderr, "proraced send: segment %d/%d accepted (%d bytes)\n", i+1, len(segs), len(frame))
	}
	if st := c.Stats(); st.Retries > 0 || st.Throttled > 0 {
		fmt.Fprintf(os.Stderr, "proraced send: done (%d requests, %d attempts, %d retries, %d throttled)\n",
			st.Requests, st.Attempts, st.Retries, st.Throttled)
	}
	return nil
}
