package progtest

import (
	"fmt"
	"math/rand"
	"testing"

	"prorace/internal/machine"
)

func TestRandomProgramsTerminate(t *testing.T) {
	for seed := int64(1); seed <= 60; seed++ {
		p := RandomProgram(rand.New(rand.NewSource(seed)))
		mac := machine.New(p, machine.Config{Seed: seed, MaxCycles: 5_000_000})
		if _, err := mac.Run(); err != nil {
			t.Fatalf("gen seed %d: program did not terminate: %v", seed, err)
		}
	}
}

// TestGoldenMatchesExecution re-runs one program with the same machine seed
// and requires the golden instruction streams to be identical, and every
// recorded step to be consistent with the program text.
func TestGoldenMatchesExecution(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		p := RandomProgram(rand.New(rand.NewSource(seed)))
		var runs [2]*Golden
		for i := range runs {
			g := NewGolden(machine.NopTracer{})
			mac := machine.New(p, machine.Config{Seed: seed, MaxCycles: 5_000_000, Tracer: g})
			if _, err := mac.Run(); err != nil {
				t.Fatalf("gen seed %d run %d: %v", seed, i, err)
			}
			runs[i] = g
		}
		if len(runs[0].Steps) != len(runs[1].Steps) {
			t.Fatalf("gen seed %d: thread counts differ: %d vs %d", seed, len(runs[0].Steps), len(runs[1].Steps))
		}
		for tid, steps := range runs[0].Steps {
			other := runs[1].Steps[tid]
			if len(steps) != len(other) {
				t.Fatalf("gen seed %d tid %d: step counts differ: %d vs %d", seed, tid, len(steps), len(other))
			}
			for i := range steps {
				if steps[i] != other[i] {
					t.Fatalf("gen seed %d tid %d step %d: %+v vs %+v", seed, tid, i, steps[i], other[i])
				}
			}
			for i, s := range steps {
				in, ok := p.InstAt(s.PC)
				if !ok {
					t.Fatalf("gen seed %d tid %d step %d: PC %#x not in program", seed, tid, i, s.PC)
				}
				if s.IsMem != in.IsMemAccess() {
					t.Fatalf("gen seed %d tid %d step %d: IsMem=%v but instruction %v", seed, tid, i, s.IsMem, in)
				}
			}
		}
	}
}

func TestConcurrentProgramsTerminate(t *testing.T) {
	genSeeds := int64(100)
	if testing.Short() {
		genSeeds = 20
	}
	for seed := int64(1); seed <= genSeeds; seed++ {
		p, info := ConcurrentProgram(rand.New(rand.NewSource(seed)))
		if info.Threads < 2 || info.Threads > 4 {
			t.Fatalf("gen seed %d: thread count %d out of range", seed, info.Threads)
		}
		for mseed := int64(1); mseed <= 3; mseed++ {
			g := NewGolden(machine.NopTracer{})
			mac := machine.New(p, machine.Config{Seed: mseed, MaxCycles: 5_000_000, Tracer: g})
			if _, err := mac.Run(); err != nil {
				t.Fatalf("gen seed %d machine seed %d: program did not terminate: %v", seed, mseed, err)
			}
			// Run returning nil means every thread exited; also check that
			// every spawned worker actually executed instructions.
			if got, want := len(g.Steps), info.Threads+1; got != want {
				t.Fatalf("gen seed %d machine seed %d: %d threads traced, want %d", seed, mseed, got, want)
			}
		}
	}
}

// TestConcurrentProgramDeterministic: a (generator seed, machine seed) pair
// must reproduce the execution exactly — the property every oracle failure
// message relies on.
func TestConcurrentProgramDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		var runs [2]*Golden
		for i := range runs {
			p, _ := ConcurrentProgram(rand.New(rand.NewSource(seed)))
			g := NewGolden(machine.NopTracer{})
			mac := machine.New(p, machine.Config{Seed: seed, MaxCycles: 5_000_000, Tracer: g})
			if _, err := mac.Run(); err != nil {
				t.Fatalf("gen seed %d run %d: %v", seed, i, err)
			}
			runs[i] = g
		}
		for tid, steps := range runs[0].Steps {
			other := runs[1].Steps[tid]
			if fmt.Sprint(steps) != fmt.Sprint(other) {
				t.Fatalf("gen seed %d tid %d: executions differ", seed, tid)
			}
		}
	}
}
