package progtest

import (
	"fmt"
	"math/rand"

	"prorace/internal/asm"
	"prorace/internal/isa"
	"prorace/internal/prog"
)

// ConcurrentInfo describes the shape of a generated concurrent program, so
// harnesses can assert structural properties (all workers joined, etc.).
type ConcurrentInfo struct {
	// Threads is the number of spawned workers (the program runs Threads+1
	// machine threads including main).
	Threads int
	// Slots is the number of 8-byte shared slots in the "shared" global.
	Slots int
	// RegSlots is the number of 8-byte slots in the "rshared" global, which
	// workers address through thread-derived registers.
	RegSlots int
	// Locks is the number of mutex globals ("lk0".."lkN-1").
	Locks int
}

// ConcurrentProgram generates a structured, always-terminating concurrent
// program for the ground-truth oracle (internal/oracle): 2-4 worker threads
// over a small set of shared global slots, with randomly placed lock/unlock
// pairs, deliberate unlock-free windows, thread create/join, and
// thread-private malloc/free traffic.
//
// Termination and decidability are by construction:
//
//   - every loop is a counted register loop with a static bound;
//   - critical sections are straight-line and never nest, so no lock order
//     can deadlock;
//   - condition variables and barriers are not emitted (their pairing
//     rules are what make generated sync programs hang);
//   - main joins every spawned worker before exiting.
//
// Racy accesses come in two recoverability classes, which is what gives
// the differential harness a real recall-vs-period curve:
//
//   - "shared" is addressed through PC-relative operands, which the replay
//     engine reconstructs from the PT path alone — recoverable at every
//     sampling period;
//   - "rshared" is addressed through a per-thread register (R14, derived
//     from the thread argument in the worker prologue and never redefined),
//     so those accesses are recoverable only in threads that got at least
//     one PEBS sample: at period=1 every thread's first memory access is
//     sampled and forward+backward replay propagates the write-once R14
//     across the whole path (100% recall), while at large periods threads
//     with no samples lose their rshared accesses and recall drops.
//
// Heap traffic stays thread-private (each worker mallocs, uses and frees
// its own object), exercising the allocation-generation machinery without
// adding races.
func ConcurrentProgram(rng *rand.Rand) (*prog.Program, ConcurrentInfo) {
	info := ConcurrentInfo{
		Threads:  2 + rng.Intn(3), // 2..4 workers
		Slots:    4 + rng.Intn(5), // 4..8 shared slots
		RegSlots: 2,
		Locks:    1 + rng.Intn(3), // 1..3 locks
	}
	b := asm.New("oracleprog")
	b.Global("shared", uint64(info.Slots)*8)
	b.Global("rshared", uint64(info.RegSlots)*8)
	b.Global("tids", uint64(info.Threads)*8)
	for l := 0; l < info.Locks; l++ {
		b.Global(fmt.Sprintf("lk%d", l), 8)
	}

	// Shared helpers: a locked update and an unlocked (racy-window) update,
	// callable from any worker — the same helper PC racing against itself
	// across threads is a pair FastTrack's epoch compression stresses.
	nHelpers := 1 + rng.Intn(2)
	for h := 0; h < nHelpers; h++ {
		f := b.Func(fmt.Sprintf("chelper%d", h))
		lk := fmt.Sprintf("lk%d", rng.Intn(info.Locks))
		locked := rng.Intn(2) == 0
		if locked {
			f.Lock(lk)
		}
		emitSharedAccesses(rng, f, info.Slots, 1+rng.Intn(3))
		if locked {
			f.Unlock(lk)
		}
		f.Ret()
	}

	// Workers. Distinct functions give distinct racy PCs; occasionally two
	// spawns share one function so the same PC races with itself.
	workerFns := make([]string, info.Threads)
	nFns := info.Threads
	if info.Threads > 2 && rng.Intn(3) == 0 {
		nFns = info.Threads - 1 // one function runs twice
	}
	for w := 0; w < nFns; w++ {
		name := fmt.Sprintf("worker%d", w)
		f := b.Func(name)
		// Prologue: R14 = &rshared[arg % RegSlots], computed from the thread
		// argument (R0) through write-once registers. No memory operand is
		// involved, so a thread's first memory access — the one period=1
		// always samples — comes after R14 is live, and replay can propagate
		// it across the entire path in both directions.
		f.Mov(isa.R13, isa.R0)
		f.AndI(isa.R13, int64(info.RegSlots-1))
		f.ShlI(isa.R13, 3)
		f.MovSym(isa.R14, "rshared", 0)
		f.Add(isa.R14, isa.R13)
		nSegs := 2 + rng.Intn(4)
		for s := 0; s < nSegs; s++ {
			switch rng.Intn(6) {
			case 0: // locked critical section (straight-line, never nested)
				lk := fmt.Sprintf("lk%d", rng.Intn(info.Locks))
				f.Lock(lk)
				emitSharedAccesses(rng, f, info.Slots, 1+rng.Intn(3))
				f.Unlock(lk)
			case 1: // unlock-free window: the racy part
				emitSharedAccesses(rng, f, info.Slots, 1+rng.Intn(2))
			case 2: // bounded local compute loop (registers only)
				emitComputeLoop(rng, f, fmt.Sprintf("w%ds%d", w, s))
			case 3: // thread-private heap object
				emitPrivateHeap(rng, f)
			case 4:
				f.Call(fmt.Sprintf("chelper%d", rng.Intn(nHelpers)))
			case 5: // register-addressed racy window (sample-dependent recovery)
				emitRegSharedAccesses(rng, f, info.RegSlots)
			}
		}
		f.Ret()
	}
	for w := 0; w < info.Threads; w++ {
		workerFns[w] = fmt.Sprintf("worker%d", w%nFns)
	}

	m := b.Func("main")
	// Initialize the shared slots before any worker exists: these writes
	// are ordered before every worker access by the create edge.
	for s := 0; s < info.Slots; s++ {
		m.MovI(isa.R2, int64(s)*3+1)
		m.Store(asm.Global("shared", int64(s)*8), isa.R2)
	}
	for s := 0; s < info.RegSlots; s++ {
		m.MovI(isa.R2, int64(s)+100)
		m.Store(asm.Global("rshared", int64(s)*8), isa.R2)
	}
	for w := 0; w < info.Threads; w++ {
		m.MovI(isa.R4, int64(w))
		m.SpawnThread(workerFns[w], isa.R4)
		m.Store(asm.Global("tids", int64(w)*8), isa.R0)
	}
	for w := 0; w < info.Threads; w++ {
		m.Load(isa.R0, asm.Global("tids", int64(w)*8))
		m.Syscall(isa.SysThreadJoin)
	}
	// Post-join reads are ordered after every worker access: clean.
	m.Load(isa.R3, asm.Global("shared", 0))
	m.Exit(0)

	p, err := b.Build()
	if err != nil {
		// As in RandomProgram: generated programs are structurally valid by
		// construction, so a build failure is a generator bug.
		panic(fmt.Sprintf("progtest: generated concurrent program failed to build: %v", err))
	}
	return p, info
}

// emitSharedAccesses emits n loads/stores to random shared slots through
// PC-relative operands (always reconstructible offline).
func emitSharedAccesses(rng *rand.Rand, f *asm.FuncBuilder, slots, n int) {
	for i := 0; i < n; i++ {
		slot := int64(rng.Intn(slots)) * 8
		r := isa.Reg(1 + rng.Intn(4)) // r1..r4 scratch
		if rng.Intn(2) == 0 {
			f.Load(r, asm.Global("shared", slot))
			f.AddI(r, 1)
		} else {
			f.MovI(r, rng.Int63n(500))
			f.Store(asm.Global("shared", slot), r)
		}
	}
}

// emitRegSharedAccesses emits unlocked accesses to the thread's rshared
// slot through the R14 base register the worker prologue computed — the
// operands replay can only resolve in threads holding at least one PEBS
// sample. A PC-relative access to a random rshared slot is mixed in so
// register-addressed accesses also race against always-recoverable ones.
func emitRegSharedAccesses(rng *rand.Rand, f *asm.FuncBuilder, regSlots int) {
	for i := 0; i < 1+rng.Intn(2); i++ {
		r := isa.Reg(1 + rng.Intn(4)) // r1..r4 scratch
		if rng.Intn(2) == 0 {
			f.Load(r, asm.Base(isa.R14, 0))
			f.AddI(r, 1)
		} else {
			f.MovI(r, rng.Int63n(500))
			f.Store(asm.Base(isa.R14, 0), r)
		}
	}
	if rng.Intn(2) == 0 {
		slot := int64(rng.Intn(regSlots)) * 8
		r := isa.Reg(1 + rng.Intn(4))
		if rng.Intn(2) == 0 {
			f.Load(r, asm.Global("rshared", slot))
		} else {
			f.MovI(r, rng.Int63n(500))
			f.Store(asm.Global("rshared", slot), r)
		}
	}
}

// emitComputeLoop emits a bounded counted loop over register arithmetic —
// no memory traffic, so it perturbs schedules without adding accesses.
func emitComputeLoop(rng *rand.Rand, f *asm.FuncBuilder, label string) {
	ctr := isa.Reg(8 + rng.Intn(4)) // r8..r11: away from scratch regs
	f.MovI(ctr, int64(1+rng.Intn(8)))
	f.Label(label)
	for i := 0; i < 1+rng.Intn(3); i++ {
		r := isa.Reg(1 + rng.Intn(4))
		f.AddI(r, rng.Int63n(10)-5)
	}
	f.SubI(ctr, 1)
	f.CmpI(ctr, 0)
	f.Jgt(label)
}

// emitPrivateHeap emits malloc → a few base-register accesses → free. The
// object is only ever touched by the allocating thread, so this adds
// allocation-generation churn (address reuse across threads) but no races.
func emitPrivateHeap(rng *rand.Rand, f *asm.FuncBuilder) {
	size := int64(16 * (1 + rng.Intn(4)))
	f.MovI(isa.R0, size)
	f.Syscall(isa.SysMalloc)
	f.Mov(isa.R5, isa.R0) // r5 = private object
	for i := 0; i < 1+rng.Intn(3); i++ {
		off := int64(rng.Intn(int(size/8))) * 8
		if rng.Intn(2) == 0 {
			f.MovI(isa.R6, rng.Int63n(100))
			f.Store(asm.Base(isa.R5, off), isa.R6)
		} else {
			f.Load(isa.R6, asm.Base(isa.R5, off))
		}
	}
	f.Mov(isa.R0, isa.R5)
	f.Syscall(isa.SysFree)
}
