// Package progtest provides shared test infrastructure: a structured
// random-program generator whose outputs always terminate, and a golden
// tracer capturing the exact executed instruction stream with memory
// addresses. The PT-decoder and replay-engine fuzz tests both check their
// output against these ground truths.
package progtest

import (
	"fmt"
	"math/rand"

	"prorace/internal/asm"
	"prorace/internal/isa"
	"prorace/internal/machine"
	"prorace/internal/prog"
)

// RandomProgram generates a structured, always-terminating program: a
// sequence of segments, each either straight-line arithmetic/memory code,
// a bounded counted loop, an if/else split on pseudo-random data, or a
// call to one of a few helper functions. It exercises every control-flow
// construct with data-dependent branch outcomes.
func RandomProgram(rng *rand.Rand) *prog.Program {
	b := asm.New("fuzz")
	b.Global("data", 1024)
	nHelpers := 1 + rng.Intn(3)
	for h := 0; h < nHelpers; h++ {
		f := b.Func(fmt.Sprintf("helper%d", h))
		emitStraight(rng, f, 2+rng.Intn(5))
		if rng.Intn(2) == 0 {
			emitLoop(rng, f, "hl", 1+rng.Intn(6))
		}
		f.Ret()
	}

	m := b.Func("main")
	nSegs := 3 + rng.Intn(6)
	for s := 0; s < nSegs; s++ {
		switch rng.Intn(4) {
		case 0:
			emitStraight(rng, m, 1+rng.Intn(8))
		case 1:
			emitLoop(rng, m, fmt.Sprintf("l%d", s), 1+rng.Intn(10))
		case 2:
			emitIfElse(rng, m, fmt.Sprintf("c%d", s))
		case 3:
			m.Call(fmt.Sprintf("helper%d", rng.Intn(nHelpers)))
		}
	}
	m.Exit(0)
	p, err := b.Build()
	if err != nil {
		// The generator only emits structurally valid programs; a build
		// failure is a bug in the generator itself, not in the caller.
		panic(fmt.Sprintf("progtest: generated program failed to build: %v", err))
	}
	return p
}

// emitStraight emits n random non-branching instructions.
func emitStraight(rng *rand.Rand, f *asm.FuncBuilder, n int) {
	for i := 0; i < n; i++ {
		rd := isa.Reg(rng.Intn(8)) // r0..r7: avoid loop counters in r8+
		switch rng.Intn(6) {
		case 0:
			f.MovI(rd, rng.Int63n(1000))
		case 1:
			f.AddI(rd, rng.Int63n(100)-50)
		case 2:
			f.XorI(rd, rng.Int63())
		case 3:
			f.Load(rd, asm.Global("data", int64(rng.Intn(120))*8))
		case 4:
			f.Store(asm.Global("data", int64(rng.Intn(120))*8), rd)
		case 5:
			f.Mov(rd, isa.Reg(rng.Intn(8)))
		}
	}
}

// emitLoop emits a bounded counted loop with a random body.
func emitLoop(rng *rand.Rand, f *asm.FuncBuilder, label string, iters int) {
	ctr := isa.Reg(8 + rng.Intn(4)) // r8..r11
	f.MovI(ctr, int64(iters))
	f.Label(label)
	emitStraight(rng, f, 1+rng.Intn(4))
	f.SubI(ctr, 1)
	f.CmpI(ctr, 0)
	f.Jgt(label)
}

// emitIfElse emits a data-dependent two-way split.
func emitIfElse(rng *rand.Rand, f *asm.FuncBuilder, label string) {
	cond := isa.Reg(rng.Intn(8))
	f.Load(cond, asm.Global("data", int64(rng.Intn(120))*8))
	f.AndI(cond, 1)
	f.CmpI(cond, 0)
	f.Jeq(label + "_else")
	emitStraight(rng, f, 1+rng.Intn(4))
	f.Jmp(label + "_end")
	f.Label(label + "_else")
	emitStraight(rng, f, 1+rng.Intn(4))
	f.Label(label + "_end")
}

// Step is one executed instruction in a golden trace.
type Step struct {
	PC    uint64
	Addr  uint64
	IsMem bool
}

// Golden wraps another tracer and records every executed instruction per
// thread (deduplicating blocked-syscall retries, which re-deliver the same
// architectural instruction).
type Golden struct {
	Inner machine.Tracer
	Steps map[int32][]Step
}

// NewGolden wraps inner.
func NewGolden(inner machine.Tracer) *Golden {
	return &Golden{Inner: inner, Steps: map[int32][]Step{}}
}

// InstRetired implements machine.Tracer.
func (g *Golden) InstRetired(ev *machine.InstEvent) uint64 {
	tid := int32(ev.TID)
	if ev.Inst.Op == isa.SYSCALL {
		if l := g.Steps[tid]; len(l) > 0 && l[len(l)-1].PC == ev.PC {
			return g.Inner.InstRetired(ev)
		}
	}
	g.Steps[tid] = append(g.Steps[tid], Step{PC: ev.PC, Addr: ev.MemAddr, IsMem: ev.IsMem})
	return g.Inner.InstRetired(ev)
}

// SyscallRetired implements machine.Tracer.
func (g *Golden) SyscallRetired(ev *machine.SyscallEvent) uint64 {
	return g.Inner.SyscallRetired(ev)
}

// ThreadStarted implements machine.Tracer.
func (g *Golden) ThreadStarted(tid machine.TID, tsc uint64) { g.Inner.ThreadStarted(tid, tsc) }

// ThreadExited implements machine.Tracer.
func (g *Golden) ThreadExited(tid machine.TID, tsc uint64) { g.Inner.ThreadExited(tid, tsc) }
