// Package stats provides the small numeric helpers the evaluation uses:
// means, geometric means (the paper reports overhead geomeans), and
// human-readable formatting.
package stats

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Geomean returns the geometric mean of xs (0 for empty input). Values
// must be positive; non-positive values are clamped to a small epsilon,
// matching how overhead factors (1+overhead) are aggregated.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x < 1e-12 {
			x = 1e-12
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// GeomeanOverhead aggregates overhead fractions the way the paper does:
// geomean of slowdown factors (1+x), returned as an overhead fraction.
func GeomeanOverhead(overheads []float64) float64 {
	factors := make([]float64, len(overheads))
	for i, x := range overheads {
		factors[i] = 1 + x
	}
	return Geomean(factors) - 1
}

// FormatOverhead renders an overhead fraction the way the paper writes
// them: percentages below 100%, slowdown factors above ("7.52x").
func FormatOverhead(x float64) string {
	if x < 1.0 {
		return fmt.Sprintf("%.1f%%", x*100)
	}
	return fmt.Sprintf("%.2fx", 1+x)
}

// FormatBytesPerSec renders a trace rate in MB/s.
func FormatBytesPerSec(mbps float64) string {
	switch {
	case mbps >= 100:
		return fmt.Sprintf("%.0f MB/s", mbps)
	case mbps >= 1:
		return fmt.Sprintf("%.1f MB/s", mbps)
	default:
		return fmt.Sprintf("%.2f MB/s", mbps)
	}
}

// Percentile returns the p-th percentile (0..100) of xs using nearest-rank
// on a copied, sorted slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	// insertion sort: inputs are small
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(cp))))
	if rank < 1 {
		rank = 1
	}
	return cp[rank-1]
}
