package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean must be 0")
	}
	if !approx(Mean([]float64{1, 2, 3}), 2) {
		t.Error("mean wrong")
	}
}

func TestGeomean(t *testing.T) {
	if Geomean(nil) != 0 {
		t.Error("empty geomean must be 0")
	}
	if !approx(Geomean([]float64{2, 8}), 4) {
		t.Errorf("geomean(2,8) = %v", Geomean([]float64{2, 8}))
	}
	// Non-positive values are clamped, not NaN.
	if g := Geomean([]float64{0, 4}); math.IsNaN(g) || math.IsInf(g, 0) {
		t.Errorf("geomean with zero = %v", g)
	}
}

func TestGeomeanOverhead(t *testing.T) {
	// Two runs at +100% and +0%: slowdown factors 2 and 1, geomean sqrt2.
	got := GeomeanOverhead([]float64{1.0, 0.0})
	want := math.Sqrt2 - 1
	if !approx(got, want) {
		t.Errorf("GeomeanOverhead = %v, want %v", got, want)
	}
}

func TestFormatOverhead(t *testing.T) {
	if FormatOverhead(0.042) != "4.2%" {
		t.Errorf("got %q", FormatOverhead(0.042))
	}
	if FormatOverhead(6.52) != "7.52x" {
		t.Errorf("got %q", FormatOverhead(6.52))
	}
}

func TestFormatBytesPerSec(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{597, "597 MB/s"}, {26.4, "26.4 MB/s"}, {0.2, "0.20 MB/s"},
	}
	for _, c := range cases {
		if got := FormatBytesPerSec(c.in); got != c.want {
			t.Errorf("FormatBytesPerSec(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 5 {
		t.Error("extremes wrong")
	}
	if Percentile(xs, 50) != 3 {
		t.Errorf("median = %v", Percentile(xs, 50))
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile must be 0")
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("percentile mutated its input")
	}
}

// Property: geomean of positive values lies between min and max.
func TestQuickGeomeanBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r) + 1
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		g := Geomean(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
