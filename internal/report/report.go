// Package report renders analysis results for humans: symbolised race
// reports and aligned text tables for the experiment harness (the rows the
// paper's tables and figures print).
package report

import (
	"fmt"
	"strings"

	"prorace/internal/prog"
	"prorace/internal/race"
)

// FormatRace renders one race report with symbol names from the program.
func FormatRace(p *prog.Program, r race.Report) string {
	return fmt.Sprintf("data race on %s (%#x):\n  %s at %s (T%d, tsc %d)\n  %s at %s (T%d, tsc %d)",
		p.SymbolizeData(r.Addr), r.Addr,
		rw(r.First.Write), p.SymbolizeAddr(r.First.PC), r.First.TID, r.First.TSC,
		rw(r.Second.Write), p.SymbolizeAddr(r.Second.PC), r.Second.TID, r.Second.TSC)
}

func rw(w bool) string {
	if w {
		return "write"
	}
	return "read "
}

// FormatRaces renders a full report list.
func FormatRaces(p *prog.Program, rs []race.Report) string {
	if len(rs) == 0 {
		return "no data races detected\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d data race(s) detected:\n", len(rs))
	for i, r := range rs {
		fmt.Fprintf(&b, "[%d] %s\n", i+1, FormatRace(p, r))
	}
	return b.String()
}

// Table builds an aligned text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends one row; cells are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	ncols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > ncols {
			ncols = len(r)
		}
	}
	widths := make([]int, ncols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}

	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(row []string) {
		for i := 0; i < ncols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
		total := 0
		for _, w := range widths {
			total += w
		}
		b.WriteString(strings.Repeat("-", total+2*(ncols-1)) + "\n")
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
