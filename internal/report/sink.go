package report

import (
	"fmt"
	"io"
	"sync"

	"prorace/internal/prog"
	"prorace/internal/race"
)

// Sink is the one interface every consumer of finished race reports
// implements: the detectors (race.Detector and race.ShardedDetector absorb
// published reports into their deduplicated sets), the daemon's persistent
// store (monitor.Store folds them into first-seen/last-seen/occurrence
// records), and the CLI's Printer below. Before this interface the three
// spoke different shapes — an event-level ReportSink, an ad-hoc store
// method, and a bare formatting call; see DESIGN.md §13 for the migration.
//
// Publish hands over a batch of finalized reports. Implementations must
// tolerate repeated publication of the same race (dedup is the sink's job,
// not the caller's) and must not retain the slice.
type Sink interface {
	Publish(rs []race.Report)
}

// The detectors satisfy Sink structurally (race cannot import report
// without a cycle); keep them honest here.
var (
	_ Sink = (*race.Detector)(nil)
	_ Sink = (*race.ShardedDetector)(nil)
	_ Sink = (*Printer)(nil)
	_ Sink = (*Collector)(nil)
)

// Printer is the CLI sink: it renders each batch with symbol names as it
// arrives, deduplicating by report key so a re-published race (a daemon
// window re-analysis, a §5.1 feedback round) prints once.
type Printer struct {
	mu   sync.Mutex
	p    *prog.Program
	w    io.Writer
	seen map[[2]uint64]bool
	n    int
}

// NewPrinter returns a Printer symbolising against p and writing to w.
func NewPrinter(p *prog.Program, w io.Writer) *Printer {
	return &Printer{p: p, w: w, seen: map[[2]uint64]bool{}}
}

// Publish renders the batch's unseen reports.
func (pr *Printer) Publish(rs []race.Report) {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	for _, r := range rs {
		if pr.seen[r.Key()] {
			continue
		}
		pr.seen[r.Key()] = true
		pr.n++
		fmt.Fprintf(pr.w, "[%d] %s\n", pr.n, FormatRace(pr.p, r))
	}
}

// Printed reports how many distinct races the printer has rendered.
func (pr *Printer) Printed() int {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	return pr.n
}

// Collector is the trivial Sink: it accumulates distinct reports in
// arrival order (tests, and callers that want a slice back).
type Collector struct {
	mu      sync.Mutex
	seen    map[[2]uint64]int
	reports []race.Report
}

// NewCollector returns an empty Collector.
func NewCollector() *Collector {
	return &Collector{seen: map[[2]uint64]int{}}
}

// Publish folds the batch into the collected set. A re-published race is
// dropped, except that a republication carrying a witness upgrades a
// witness-less collected report — reproduction recipes survive dedup.
func (c *Collector) Publish(rs []race.Report) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range rs {
		if i, ok := c.seen[r.Key()]; ok {
			if c.reports[i].Witness == "" && r.Witness != "" {
				c.reports[i].Witness = r.Witness
			}
			continue
		}
		c.seen[r.Key()] = len(c.reports)
		c.reports = append(c.reports, r)
	}
}

// Reports returns the distinct reports collected so far.
func (c *Collector) Reports() []race.Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]race.Report(nil), c.reports...)
}
