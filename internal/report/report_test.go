package report

import (
	"strings"
	"testing"

	"prorace/internal/asm"
	"prorace/internal/isa"
	"prorace/internal/prog"
	"prorace/internal/race"
)

func TestFormatRace(t *testing.T) {
	b := asm.New("rpt")
	b.Global("shared", 8)
	m := b.Func("main")
	m.Load(isa.R0, asm.Global("shared", 0))
	m.Exit(0)
	w := b.Func("writer")
	w.Store(asm.Global("shared", 0), isa.R1)
	w.Ret()
	p := mustBuild(b)

	r := race.Report{
		Addr:   p.MustLookup("shared").Addr,
		First:  race.AccessInfo{TID: 1, PC: p.MustLookup("writer").Addr, Write: true, TSC: 100},
		Second: race.AccessInfo{TID: 2, PC: p.MustLookup("main").Addr, Write: false, TSC: 200},
	}
	out := FormatRace(p, r)
	for _, want := range []string{"shared", "writer", "main", "write", "read", "T1", "T2"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatRace missing %q in:\n%s", want, out)
		}
	}

	all := FormatRaces(p, []race.Report{r, r})
	if !strings.Contains(all, "2 data race(s)") {
		t.Errorf("FormatRaces header wrong:\n%s", all)
	}
	if FormatRaces(p, nil) != "no data races detected\n" {
		t.Error("empty report list must say so")
	}
}

func TestTableAlignment(t *testing.T) {
	tab := NewTable("demo", "name", "value")
	tab.AddRow("short", 1)
	tab.AddRow("much-longer-name", 123456)
	tab.AddNote("a footnote with %d", 42)
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.HasPrefix(lines[0], "== demo ==") {
		t.Errorf("title line: %q", lines[0])
	}
	// All data rows share the header's column start for column 2.
	idx := strings.Index(lines[1], "value")
	for _, ln := range lines[3:5] {
		cell := strings.TrimLeft(ln[idx:], " ")
		if cell == "" {
			t.Errorf("misaligned row %q", ln)
		}
	}
	if !strings.Contains(out, "note: a footnote with 42") {
		t.Error("note missing")
	}
}

func TestTableRaggedRows(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow("only-one")
	tab.AddRow("x", "y", "z") // extra column beyond header
	out := tab.String()
	if !strings.Contains(out, "only-one") || !strings.Contains(out, "z") {
		t.Errorf("ragged rows mishandled:\n%s", out)
	}
}

// mustBuild finalises a test program; the inputs are static, so a build
// error means the test itself is broken.
func mustBuild(b *asm.Builder) *prog.Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
