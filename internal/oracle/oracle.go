// Package oracle is the ground-truth differential harness for the ProRace
// pipeline (the correctness backstop behind PAPER.md §6's recall claims).
//
// For each seed it generates a random concurrent program
// (progtest.ConcurrentProgram), runs it once per sampling period under the
// real PMU driver while a Recorder captures *every* memory access of that
// same execution, computes the exact happens-before race set with the
// pair-complete race.PairOracle, runs the production pipeline
// (core.Analyze) on the sampled trace, and scores the pipeline against the
// ground truth:
//
//   - precision at PC-pair granularity: every reported pair must be in the
//     oracle's pair set (zero false positives);
//   - recall at racy-address granularity: FastTrack guarantees at least
//     one report per racy variable, so at period=1 the pipeline must
//     recover every racy address, and recall must not improve as the
//     period grows.
//
// Each period gets its own ground truth because the driver's stall cycles
// perturb the deterministic scheduler: the executions at period 1 and
// period 1000 are different interleavings of the same program, and each is
// scored against the races of its own execution.
//
// Metamorphic invariants (CheckDeterminism) re-analyze one trace across
// {workers}×{detect shards}, with the path cache on and off, and in strict
// vs lenient mode, requiring byte-identical reports every time.
package oracle

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"prorace/internal/core"
	"prorace/internal/machine"
	"prorace/internal/pmu/driver"
	"prorace/internal/prog"
	"prorace/internal/progtest"
	"prorace/internal/race"
	"prorace/internal/replay"
	"prorace/internal/tracefmt"
	"prorace/internal/witness"
)

// Recorder is a machine.Tracer wrapper that captures every retired memory
// access while delegating all callbacks — stall cycles included — to the
// wrapped tracer (the PMU driver), so the recorded execution is exactly
// the one whose sampled trace the pipeline analyzes.
type Recorder struct {
	inner machine.Tracer
	// Accesses is the complete per-thread access trace, in program order.
	Accesses map[int32][]replay.Access
	steps    map[int32]int
}

// NewRecorder creates a Recorder; Wrap installs the delegate.
func NewRecorder() *Recorder {
	return &Recorder{Accesses: map[int32][]replay.Access{}, steps: map[int32]int{}}
}

// Wrap is the core.TraceOptions.WrapTracer hook.
func (r *Recorder) Wrap(inner machine.Tracer) machine.Tracer {
	r.inner = inner
	return r
}

// InstRetired implements machine.Tracer. Loads and stores retire exactly
// once (only blocked syscalls re-deliver), so no deduplication is needed.
func (r *Recorder) InstRetired(ev *machine.InstEvent) uint64 {
	tid := int32(ev.TID)
	step := r.steps[tid]
	r.steps[tid] = step + 1
	if ev.IsMem {
		r.Accesses[tid] = append(r.Accesses[tid], replay.Access{
			TID:   tid,
			PC:    ev.PC,
			Addr:  ev.MemAddr,
			Store: ev.IsStore,
			TSC:   ev.TSC,
			Step:  step,
		})
	}
	return r.inner.InstRetired(ev)
}

// SyscallRetired implements machine.Tracer.
func (r *Recorder) SyscallRetired(ev *machine.SyscallEvent) uint64 {
	return r.inner.SyscallRetired(ev)
}

// ThreadStarted implements machine.Tracer.
func (r *Recorder) ThreadStarted(tid machine.TID, tsc uint64) { r.inner.ThreadStarted(tid, tsc) }

// ThreadExited implements machine.Tracer.
func (r *Recorder) ThreadExited(tid machine.TID, tsc uint64) { r.inner.ThreadExited(tid, tsc) }

// GroundTruth computes the exact race set of a recorded execution: the
// complete access trace merged with the (unsampled, hence complete) sync
// log, through the pair-complete oracle detector.
func GroundTruth(sync []tracefmt.SyncRecord, accesses map[int32][]replay.Access) *race.PairOracle {
	o := race.NewPairOracle(race.Options{TrackAllocations: true})
	race.Feed(o, sync, accesses)
	o.Finish()
	return o
}

// PeriodScore is the differential result for one (seed, period) run.
type PeriodScore struct {
	Period uint64
	// Ground-truth sizes for this period's execution.
	GTPairs int `json:"gt_pairs"`
	GTAddrs int `json:"gt_addrs"`
	// Pipeline results: detected pairs that are true/false vs the oracle,
	// and racy addresses found/invented.
	TruePairs  int `json:"true_pairs"`
	FalsePairs int `json:"false_pairs"`
	TrueAddrs  int `json:"true_addrs"`
	FalseAddrs int `json:"false_addrs"`
	// WitnessedPairs counts true-positive pairs for which witness
	// generation produced a replay-verified reproduction (only populated
	// when Options.Witness is set; the witnessability invariant requires
	// it to equal TruePairs).
	WitnessedPairs int `json:"witnessed_pairs"`
}

// WitnessRatio is witnessed / true positives (1.0 when there were none).
func (s PeriodScore) WitnessRatio() float64 {
	if s.TruePairs == 0 {
		return 1.0
	}
	return float64(s.WitnessedPairs) / float64(s.TruePairs)
}

// AddrRecall is the fraction of ground-truth racy addresses the pipeline
// found (1.0 when the execution had no races).
func (s PeriodScore) AddrRecall() float64 {
	if s.GTAddrs == 0 {
		return 1.0
	}
	return float64(s.TrueAddrs) / float64(s.GTAddrs)
}

// SeedResult is one seed's differential run across all periods.
type SeedResult struct {
	Seed   int64
	Info   progtest.ConcurrentInfo
	Scores []PeriodScore
	// Violations lists every invariant broken by this seed, each message
	// carrying the (seed, period) needed to reproduce it.
	Violations []string
}

// Options configures a differential run.
type Options struct {
	// Periods to score; must include 1 for the recall@1 invariant.
	// Sorted ascending before use. Default {1, 10, 100, 1000}.
	Periods []uint64
	// Determinism enables the metamorphic worker/shard/cache/strict
	// matrix on this seed's period-1 trace (expensive; soak runs it on a
	// subset of seeds).
	Determinism bool
	// Witness enables the second differential axis: every true-positive
	// report must come with a replay-verified witness (internal/witness).
	// A true race the witness generator cannot reproduce is a violation —
	// either the race is not really there, or the replayer drifted from
	// the traced machine.
	Witness bool
}

// DefaultPeriods is the standard recall-vs-period sweep.
func DefaultPeriods() []uint64 { return []uint64{1, 10, 100, 1000} }

func (o *Options) setDefaults() {
	if len(o.Periods) == 0 {
		o.Periods = DefaultPeriods()
	}
	sort.Slice(o.Periods, func(i, j int) bool { return o.Periods[i] < o.Periods[j] })
}

// RunSeed generates the seed's program and scores the pipeline against the
// ground truth at every period.
func RunSeed(seed int64, opts Options) (*SeedResult, error) {
	opts.setDefaults()
	p, info := progtest.ConcurrentProgram(rand.New(rand.NewSource(seed)))
	res := &SeedResult{Seed: seed, Info: info}

	for _, period := range opts.Periods {
		score, tr, err := runPeriod(p, seed, period, opts.Witness)
		if err != nil {
			return nil, fmt.Errorf("oracle: seed %d period %d: %w", seed, period, err)
		}
		res.Scores = append(res.Scores, *score)

		if opts.Witness && score.WitnessedPairs != score.TruePairs {
			res.Violations = append(res.Violations,
				fmt.Sprintf("seed %d period %d: %d/%d true-positive pairs have no replay-verified witness",
					seed, period, score.TruePairs-score.WitnessedPairs, score.TruePairs))
		}
		if score.FalsePairs > 0 {
			res.Violations = append(res.Violations,
				fmt.Sprintf("seed %d period %d: %d reported pairs not in ground truth", seed, period, score.FalsePairs))
		}
		if score.FalseAddrs > 0 {
			res.Violations = append(res.Violations,
				fmt.Sprintf("seed %d period %d: %d racy addrs not in ground truth", seed, period, score.FalseAddrs))
		}
		if period == 1 && score.TrueAddrs != score.GTAddrs {
			res.Violations = append(res.Violations,
				fmt.Sprintf("seed %d: recall@period=1 is %d/%d racy addrs, want all", seed, score.TrueAddrs, score.GTAddrs))
		}
		if opts.Determinism && period == opts.Periods[0] {
			res.Violations = append(res.Violations, CheckDeterminism(p, tr, seed)...)
		}
	}
	return res, nil
}

// runPeriod performs one traced execution + ground truth + pipeline run;
// withWitness additionally requires a replay-verified witness per report.
func runPeriod(p *prog.Program, seed int64, period uint64, withWitness bool) (*PeriodScore, *tracefmt.Trace, error) {
	rec := NewRecorder()
	tr, err := core.TraceProgram(p, core.TraceOptions{
		Kind:       driver.ProRace,
		Period:     period,
		Seed:       seed,
		EnablePT:   true,
		WrapTracer: rec.Wrap,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("trace: %w", err)
	}

	gt := GroundTruth(tr.Trace.Sync, rec.Accesses)
	gtPairs := pairSet(gt.Reports())

	aopts := core.AnalysisOptions{Mode: replay.ModeForwardBackward}
	if withWitness {
		// The generator seed doubles as the scheduler seed in this harness,
		// so the program is rebuildable from the witness file alone.
		aopts.Witnesses = &core.WitnessOptions{
			Spec:       witness.OracleSpec(seed),
			DriverKind: driver.ProRace,
			EnablePT:   true,
		}
	}
	ar, err := core.Analyze(p, tr.Trace, aopts)
	if err != nil {
		return nil, nil, fmt.Errorf("analyze: %w", err)
	}

	score := &PeriodScore{
		Period:  period,
		GTPairs: len(gtPairs),
		GTAddrs: len(gt.RacyAddrSet()),
	}
	for i, r := range ar.Reports {
		if gtPairs[r.Key()] {
			score.TruePairs++
			if withWitness && i < len(ar.Witnesses) {
				if wo := ar.Witnesses[i]; wo != nil && wo.Witness != nil {
					score.WitnessedPairs++
				}
			}
		} else {
			score.FalsePairs++
		}
	}
	for addr := range ar.RacyAddrs {
		if gt.RacyAddrSet()[addr] {
			score.TrueAddrs++
		} else {
			score.FalseAddrs++
		}
	}
	return score, tr.Trace, nil
}

func pairSet(reports []race.Report) map[[2]uint64]bool {
	s := make(map[[2]uint64]bool, len(reports))
	for _, r := range reports {
		s[r.Key()] = true
	}
	return s
}

// FormatReports renders a report list into the canonical byte string the
// determinism invariants compare. Every field that detection computes is
// included, so any divergence — order, content, or count — shows up.
func FormatReports(reports []race.Report) string {
	var b strings.Builder
	for i, r := range reports {
		fmt.Fprintf(&b, "%d: addr=%#x first={tid=%d pc=%#x w=%v tsc=%d} second={tid=%d pc=%#x w=%v tsc=%d} gap=%v\n",
			i, r.Addr,
			r.First.TID, r.First.PC, r.First.Write, r.First.TSC,
			r.Second.TID, r.Second.PC, r.Second.Write, r.Second.TSC,
			r.GapAdjacent)
	}
	return b.String()
}

// determinismConfigs is the metamorphic matrix: every configuration must
// produce byte-identical reports on the same clean trace.
type determinismConfig struct {
	name string
	opts core.AnalysisOptions
}

func determinismConfigs() []determinismConfig {
	base := core.AnalysisOptions{Mode: replay.ModeForwardBackward}
	var out []determinismConfig
	for _, workers := range []int{0, 4} {
		for _, shards := range []int{0, 4} {
			o := base
			o.Workers, o.DetectShards = workers, shards
			out = append(out, determinismConfig{
				name: fmt.Sprintf("workers=%d shards=%d", workers, shards),
				opts: o,
			})
		}
	}
	nocache := base
	nocache.DisablePathCache = true
	out = append(out, determinismConfig{name: "path cache off", opts: nocache})
	strict := base
	strict.Strict = true
	out = append(out, determinismConfig{name: "strict", opts: strict})
	return out
}

// CheckDeterminism re-analyzes one clean trace under the metamorphic
// matrix and returns a violation message per configuration whose reports
// differ from the sequential baseline.
func CheckDeterminism(p *prog.Program, tr *tracefmt.Trace, seed int64) []string {
	var violations []string
	var want string
	for i, cfg := range determinismConfigs() {
		ar, err := core.Analyze(p, tr, cfg.opts)
		if err != nil {
			violations = append(violations,
				fmt.Sprintf("seed %d determinism [%s]: analyze failed: %v", seed, cfg.name, err))
			continue
		}
		got := FormatReports(ar.Reports)
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			violations = append(violations,
				fmt.Sprintf("seed %d determinism [%s]: reports differ from sequential baseline", seed, cfg.name))
		}
	}
	return violations
}
