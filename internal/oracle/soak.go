package oracle

import (
	"fmt"
)

// SoakConfig configures a seed-range sweep.
type SoakConfig struct {
	// StartSeed is the first generator/scheduler seed; Seeds is how many
	// consecutive seeds to run.
	StartSeed int64
	Seeds     int
	// Periods is the sampling-period sweep per seed (default
	// DefaultPeriods; must include 1 for the recall@1 invariant).
	Periods []uint64
	// DeterminismEvery runs the metamorphic worker/shard/cache/strict
	// matrix on every Nth seed (0 disables; 1 = every seed).
	DeterminismEvery int
	// Witness enables the witnessability axis on every seed: each
	// true-positive report must yield a replay-verified witness
	// (Options.Witness).
	Witness bool
}

// Aggregate is the per-period sum over all soaked seeds. Each seed's
// execution at a given period has its own ground truth (the driver's
// overhead perturbs the schedule), so recall is the ratio of summed counts.
type Aggregate struct {
	Period     uint64 `json:"period"`
	GTPairs    int    `json:"gt_pairs"`
	GTAddrs    int    `json:"gt_addrs"`
	TruePairs  int    `json:"true_pairs"`
	FalsePairs int    `json:"false_pairs"`
	TrueAddrs  int    `json:"true_addrs"`
	FalseAddrs int    `json:"false_addrs"`
	// WitnessedPairs counts true positives with a replay-verified witness
	// (only populated when SoakConfig.Witness is set).
	WitnessedPairs int `json:"witnessed_pairs"`
	// RacySeeds counts seeds whose execution had at least one true race.
	RacySeeds int `json:"racy_seeds"`
}

// WitnessRatio is aggregate witnessed / true positives (1.0 when none).
func (a Aggregate) WitnessRatio() float64 {
	if a.TruePairs == 0 {
		return 1.0
	}
	return float64(a.WitnessedPairs) / float64(a.TruePairs)
}

// AddrRecall is the aggregate per-variable recall at this period.
func (a Aggregate) AddrRecall() float64 {
	if a.GTAddrs == 0 {
		return 1.0
	}
	return float64(a.TrueAddrs) / float64(a.GTAddrs)
}

// PairRecall is the aggregate racy-PC-pair recall at this period. Unlike
// AddrRecall it is not expected to reach 1.0 even at period=1: FastTrack's
// epoch compression reports at least one pair per racy variable, not all
// of them.
func (a Aggregate) PairRecall() float64 {
	if a.GTPairs == 0 {
		return 1.0
	}
	return float64(a.TruePairs) / float64(a.GTPairs)
}

// SoakResult is the outcome of a seed-range sweep.
type SoakResult struct {
	StartSeed  int64
	Seeds      int
	Aggregates []Aggregate
	// Violations collects every broken invariant across all seeds plus
	// the aggregate monotonicity check; empty means the sweep passed.
	Violations []string
}

// Soak sweeps seeds [cfg.StartSeed, cfg.StartSeed+cfg.Seeds) through the
// differential harness and checks the cross-seed invariants:
//
//   - per seed/period: zero false positives (pairs and addresses) and
//     100% address recall at period=1 (reported by RunSeed);
//   - aggregate: address recall is monotone non-increasing as the
//     sampling period grows;
//   - on every DeterminismEvery-th seed: byte-identical reports across
//     the worker/shard/cache/strict matrix.
func Soak(cfg SoakConfig) (*SoakResult, error) {
	if cfg.Seeds <= 0 {
		cfg.Seeds = 1
	}
	periods := cfg.Periods
	if len(periods) == 0 {
		periods = DefaultPeriods()
	}
	res := &SoakResult{StartSeed: cfg.StartSeed, Seeds: cfg.Seeds}
	res.Aggregates = make([]Aggregate, len(periods))

	for i := 0; i < cfg.Seeds; i++ {
		seed := cfg.StartSeed + int64(i)
		opts := Options{Periods: periods, Witness: cfg.Witness}
		if cfg.DeterminismEvery > 0 && i%cfg.DeterminismEvery == 0 {
			opts.Determinism = true
		}
		sr, err := RunSeed(seed, opts)
		if err != nil {
			return nil, err
		}
		res.Violations = append(res.Violations, sr.Violations...)
		for j, sc := range sr.Scores {
			a := &res.Aggregates[j]
			a.Period = sc.Period
			a.GTPairs += sc.GTPairs
			a.GTAddrs += sc.GTAddrs
			a.TruePairs += sc.TruePairs
			a.FalsePairs += sc.FalsePairs
			a.TrueAddrs += sc.TrueAddrs
			a.FalseAddrs += sc.FalseAddrs
			a.WitnessedPairs += sc.WitnessedPairs
			if sc.GTAddrs > 0 {
				a.RacySeeds++
			}
		}
	}

	// Aggregate monotonicity: shrinking the period can only help recall.
	for j := 1; j < len(res.Aggregates); j++ {
		prev, cur := res.Aggregates[j-1], res.Aggregates[j]
		if cur.AddrRecall() > prev.AddrRecall() {
			res.Violations = append(res.Violations, fmt.Sprintf(
				"aggregate recall not monotone: period %d recall %.4f > period %d recall %.4f (seeds %d..%d)",
				cur.Period, cur.AddrRecall(), prev.Period, prev.AddrRecall(),
				cfg.StartSeed, cfg.StartSeed+int64(cfg.Seeds)-1))
		}
	}
	return res, nil
}
