package oracle

import (
	"testing"
)

// soakSeeds is the acceptance range: every invariant must hold on seeds
// [1, soakSeeds]. Short mode runs a prefix slice of the same range, so a CI
// quick pass exercises the identical deterministic executions.
const soakSeeds = 200

func soakConfig(t *testing.T) SoakConfig {
	t.Helper()
	cfg := SoakConfig{StartSeed: 1, Seeds: soakSeeds, DeterminismEvery: 20, Witness: true}
	if testing.Short() {
		cfg.Seeds = 40
		cfg.DeterminismEvery = 10
	}
	return cfg
}

// TestSoakInvariants is the tentpole acceptance test: across the seed
// range, the pipeline must report zero false positives (pairs and
// addresses), find every racy address at period=1, keep aggregate recall
// monotone non-increasing as the period grows, and produce byte-identical
// reports across the determinism matrix. Every violation message carries
// the (seed, period) that reproduces it.
func TestSoakInvariants(t *testing.T) {
	cfg := soakConfig(t)
	res, err := Soak(cfg)
	if err != nil {
		t.Fatalf("soak seeds %d..%d: %v", cfg.StartSeed, cfg.StartSeed+int64(cfg.Seeds)-1, err)
	}
	for _, v := range res.Violations {
		t.Errorf("invariant violated: %s", v)
	}

	// The sweep must actually exercise the interesting regimes: plenty of
	// racy executions, and a recall curve that the period genuinely moves
	// (otherwise the monotonicity invariant is vacuous).
	if len(res.Aggregates) == 0 {
		t.Fatal("soak produced no aggregates")
	}
	first, last := res.Aggregates[0], res.Aggregates[len(res.Aggregates)-1]
	if first.Period != 1 {
		t.Fatalf("first aggregate period = %d, want 1 (seeds %d..%d)", first.Period, cfg.StartSeed, cfg.StartSeed+int64(cfg.Seeds)-1)
	}
	if first.RacySeeds < cfg.Seeds/4 {
		t.Errorf("only %d/%d seeds raced at period=1; generator too tame", first.RacySeeds, cfg.Seeds)
	}
	if first.AddrRecall() != 1.0 {
		t.Errorf("aggregate recall@period=1 = %.4f, want 1.0 (seeds %d..%d)", first.AddrRecall(), cfg.StartSeed, cfg.StartSeed+int64(cfg.Seeds)-1)
	}
	if last.AddrRecall() >= first.AddrRecall() {
		t.Errorf("recall curve is flat: period %d recall %.4f, period %d recall %.4f — register-addressed accesses not degrading (seeds %d..%d)",
			first.Period, first.AddrRecall(), last.Period, last.AddrRecall(), cfg.StartSeed, cfg.StartSeed+int64(cfg.Seeds)-1)
	}

	// The witnessability axis: every true positive at every period must
	// have produced a replay-verified reproduction recipe. Also require
	// the axis to be non-vacuous — the sweep must contain true positives.
	witnessedTotal := 0
	for _, a := range res.Aggregates {
		if a.WitnessRatio() != 1.0 {
			t.Errorf("period %d: witnessed/true_positive = %d/%d, want 1.0 (seeds %d..%d)",
				a.Period, a.WitnessedPairs, a.TruePairs, cfg.StartSeed, cfg.StartSeed+int64(cfg.Seeds)-1)
		}
		witnessedTotal += a.WitnessedPairs
	}
	if witnessedTotal == 0 {
		t.Error("soak produced no witnessed true positives; witness axis is vacuous")
	}
}

// TestRunSeedDeterministic: the same seed must produce identical scores on
// repeated runs — the property every violation message relies on for
// reproduction.
func TestRunSeedDeterministic(t *testing.T) {
	const seed = 7
	var results [2]*SeedResult
	for i := range results {
		r, err := RunSeed(seed, Options{})
		if err != nil {
			t.Fatalf("seed %d run %d: %v", seed, i, err)
		}
		results[i] = r
	}
	if len(results[0].Scores) != len(results[1].Scores) {
		t.Fatalf("seed %d: score counts differ: %d vs %d", seed, len(results[0].Scores), len(results[1].Scores))
	}
	for i := range results[0].Scores {
		if results[0].Scores[i] != results[1].Scores[i] {
			t.Fatalf("seed %d period index %d: scores differ: %+v vs %+v", seed, i, results[0].Scores[i], results[1].Scores[i])
		}
	}
}

// TestDeterminismMatrix runs the full metamorphic matrix on a few seeds
// explicitly (the soak only samples it).
func TestDeterminismMatrix(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		res, err := RunSeed(seed, Options{Periods: []uint64{1}, Determinism: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, v := range res.Violations {
			t.Errorf("seed %d: %s", seed, v)
		}
	}
}
