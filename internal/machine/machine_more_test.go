package machine

import (
	"testing"

	"prorace/internal/asm"
	"prorace/internal/isa"
)

func TestYieldRotatesRunnableThreads(t *testing.T) {
	// Two threads on ONE core: without yields the first would run a full
	// quantum; with per-iteration yields they interleave finely, so both
	// make progress before either finishes.
	b := asm.New("yield")
	b.Global("marks", 16)
	m := b.Func("main")
	m.MovI(isa.R4, 0)
	m.SpawnThread("w", isa.R4)
	m.Mov(isa.R8, isa.R0)
	m.MovI(isa.R4, 1)
	m.SpawnThread("w", isa.R4)
	m.Mov(isa.R9, isa.R0)
	m.Join(isa.R8)
	m.Mov(isa.R0, isa.R9)
	m.Syscall(isa.SysThreadJoin)
	m.Exit(0)
	w := b.Func("w")
	w.Mov(isa.R7, isa.R0)
	w.MulI(isa.R7, 8)
	w.MovI(isa.R3, 50)
	w.Label("loop")
	w.Syscall(isa.SysTSC)
	w.Lea(isa.R2, asm.Global("marks", 0))
	w.Add(isa.R2, isa.R7)
	w.Store(asm.Base(isa.R2, 0), isa.R0) // marks[tid] = last tsc seen
	w.Syscall(isa.SysYield)
	w.SubI(isa.R3, 1)
	w.CmpI(isa.R3, 0)
	w.Jgt("loop")
	w.Exit(0)
	p := mustBuild(b)
	mac := New(p, Config{Seed: 1, Cores: 1})
	if _, err := mac.Run(); err != nil {
		t.Fatal(err)
	}
	m0 := mac.Mem.Load8(p.MustLookup("marks").Addr)
	m1 := mac.Mem.Load8(p.MustLookup("marks").Addr + 8)
	if m0 == 0 || m1 == 0 {
		t.Fatal("a worker never ran")
	}
	// Their last timestamps must be close: they interleaved rather than
	// running to completion back-to-back.
	diff := int64(m0) - int64(m1)
	if diff < 0 {
		diff = -diff
	}
	if diff > 2000 {
		t.Errorf("workers did not interleave under yield: last marks %d apart", diff)
	}
}

func TestSysRandDeterministicPerSeed(t *testing.T) {
	b := asm.New("rand")
	b.Global("out", 8)
	m := b.Func("main")
	m.Syscall(isa.SysRand)
	m.Store(asm.Global("out", 0), isa.R0)
	m.Exit(0)
	p := mustBuild(b)
	get := func(seed int64) uint64 {
		mac := New(p, Config{Seed: seed})
		if _, err := mac.Run(); err != nil {
			t.Fatal(err)
		}
		return mac.Mem.Load8(p.MustLookup("out").Addr)
	}
	if get(5) != get(5) {
		t.Error("same seed must reproduce SysRand")
	}
	if get(5) == get(6) {
		t.Log("warning: two seeds drew the same value (possible)")
	}
}

func TestSysLogAccumulatesBytes(t *testing.T) {
	b := asm.New("log")
	b.Global("buf", 64)
	m := b.Func("main")
	for i := 0; i < 3; i++ {
		m.Lea(isa.R0, asm.Global("buf", 0))
		m.MovI(isa.R1, 100)
		m.Syscall(isa.SysLog)
	}
	m.Exit(0)
	mac := New(mustBuild(b), Config{Seed: 1})
	st, err := mac.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.LogBytes != 300 {
		t.Errorf("log bytes = %d, want 300", st.LogBytes)
	}
}

func TestIdleCoreCyclesCounted(t *testing.T) {
	// Single thread on 4 cores: three cores idle most of the run.
	b := asm.New("idle")
	m := b.Func("main")
	m.MovI(isa.R3, 1000)
	m.Label("l")
	m.SubI(isa.R3, 1)
	m.CmpI(isa.R3, 0)
	m.Jgt("l")
	m.Exit(0)
	mac := New(mustBuild(b), Config{Seed: 1, Cores: 4})
	st, err := mac.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.IdleCoreCycles < st.Cycles {
		t.Errorf("idle cycles %d implausibly low for wall %d on 4 cores",
			st.IdleCoreCycles, st.Cycles)
	}
}

func TestHasIdleCoreAndCores(t *testing.T) {
	b := asm.New("cores")
	m := b.Func("main")
	m.Exit(0)
	mac := New(mustBuild(b), Config{Seed: 1, Cores: 3})
	if mac.Cores() != 3 {
		t.Errorf("Cores() = %d", mac.Cores())
	}
	if !mac.HasIdleCore() {
		t.Error("fresh machine must have idle cores")
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.setDefaults()
	if c.Cores != 4 || c.Quantum != 61 || c.NetLatencyCycles == 0 ||
		c.FileLatencyCycles == 0 || c.MaxCycles == 0 || c.Tracer == nil {
		t.Errorf("defaults not applied: %+v", c)
	}
}

func TestCondBroadcastWakesAll(t *testing.T) {
	b := asm.New("bcast")
	b.Global("mtx", 8)
	b.Global("cv", 8)
	b.Global("go", 8)
	b.Global("done", 8)
	b.Global("tids", 24)
	m := b.Func("main")
	for i := int64(0); i < 3; i++ {
		m.MovI(isa.R4, i)
		m.SpawnThread("waiter", isa.R4)
		m.Store(asm.Global("tids", i*8), isa.R0)
	}
	// Let the waiters reach the wait.
	m.MovI(isa.R3, 3000)
	m.Label("spin")
	m.SubI(isa.R3, 1)
	m.CmpI(isa.R3, 0)
	m.Jgt("spin")
	m.Lock("mtx")
	m.MovI(isa.R1, 1)
	m.Store(asm.Global("go", 0), isa.R1)
	m.Lea(isa.R0, asm.Global("cv", 0))
	m.Syscall(isa.SysCondBroadcast)
	m.Unlock("mtx")
	for i := int64(0); i < 3; i++ {
		m.Load(isa.R0, asm.Global("tids", i*8))
		m.Syscall(isa.SysThreadJoin)
	}
	m.Exit(0)
	w := b.Func("waiter")
	w.Lock("mtx")
	w.Label("check")
	w.Load(isa.R1, asm.Global("go", 0))
	w.CmpI(isa.R1, 1)
	w.Jeq("woken")
	w.Lea(isa.R0, asm.Global("cv", 0))
	w.Lea(isa.R1, asm.Global("mtx", 0))
	w.Syscall(isa.SysCondWait)
	w.Jmp("check")
	w.Label("woken")
	w.Load(isa.R2, asm.Global("done", 0))
	w.AddI(isa.R2, 1)
	w.Store(asm.Global("done", 0), isa.R2)
	w.Unlock("mtx")
	w.Exit(0)
	p := mustBuild(b)
	for seed := int64(0); seed < 5; seed++ {
		mac := New(p, Config{Seed: seed})
		if _, err := mac.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got := mac.Mem.Load8(p.MustLookup("done").Addr); got != 3 {
			t.Errorf("seed %d: %d waiters completed, want 3", seed, got)
		}
	}
}

func TestThreadAccessor(t *testing.T) {
	b := asm.New("thr")
	m := b.Func("main")
	m.Exit(7)
	mac := New(mustBuild(b), Config{Seed: 1})
	if mac.Thread(0) == nil || mac.Thread(99) != nil {
		t.Error("Thread accessor wrong")
	}
	if _, err := mac.Run(); err != nil {
		t.Fatal(err)
	}
	if mac.ExitCode(0) != 7 {
		t.Error("exit code lost")
	}
}
