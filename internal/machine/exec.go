package machine

import (
	"prorace/internal/isa"
)

// step retires one instruction of the thread on core ci, delivers tracer
// events, and applies quantum-based preemption.
func (m *Machine) step(ci int) {
	c := &m.cores[ci]
	t := m.threads[c.tid]
	in, ok := m.prog.InstAt(t.PC)
	if !ok {
		// Running off the text segment kills the thread, like a SIGSEGV on
		// a wild jump.
		m.exitThread(ci, ^uint64(0))
		return
	}

	ev := InstEvent{
		TID:  t.ID,
		Core: ci,
		PC:   t.PC,
		Inst: in,
		TSC:  m.cycle,
		Regs: &t.Regs,
	}
	nextPC := t.PC + isa.InstSize
	memAddr := uint64(0)
	if in.HasMemOperand() {
		memAddr = in.EffectiveAddress(func(r isa.Reg) uint64 { return t.Regs[r] }, t.PC)
	}

	switch in.Op {
	case isa.NOP:
	case isa.MOVI:
		t.Regs[in.Rd] = uint64(in.Imm)
	case isa.MOV:
		t.Regs[in.Rd] = t.Regs[in.Rs]
	case isa.LEA:
		t.Regs[in.Rd] = memAddr
	case isa.LOAD:
		t.Regs[in.Rd] = m.Mem.Load8(memAddr)
		ev.IsMem, ev.MemAddr = true, memAddr
		t.memOps++
	case isa.STORE:
		m.Mem.Store8(memAddr, t.Regs[in.Rs])
		ev.IsMem, ev.IsStore, ev.MemAddr = true, true, memAddr
		t.memOps++
	case isa.ADD, isa.SUB, isa.MUL, isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR,
		isa.ADDI, isa.SUBI, isa.MULI, isa.ANDI, isa.ORI, isa.XORI, isa.SHLI, isa.SHRI:
		t.Regs[in.Rd], _ = in.ALU(t.Regs[in.Rd], t.Regs[in.Rs])
	case isa.CMP:
		t.Flags = isa.Compare(t.Regs[in.Rd], t.Regs[in.Rs])
	case isa.CMPI:
		t.Flags = isa.Compare(t.Regs[in.Rd], uint64(in.Imm))
	case isa.JMP:
		nextPC = uint64(in.Imm)
		ev.Target = nextPC
	case isa.JEQ, isa.JNE, isa.JLT, isa.JLE, isa.JGT, isa.JGE:
		if isa.BranchTaken(in.Op, t.Flags) {
			nextPC = uint64(in.Imm)
			ev.Taken, ev.Target = true, nextPC
		}
	case isa.JMPR:
		nextPC = t.Regs[in.Rs]
		ev.Target = nextPC
	case isa.CALL:
		t.callStack = append(t.callStack, nextPC)
		nextPC = uint64(in.Imm)
		ev.Target = nextPC
	case isa.CALLR:
		t.callStack = append(t.callStack, nextPC)
		nextPC = t.Regs[in.Rs]
		ev.Target = nextPC
	case isa.RET:
		if n := len(t.callStack); n > 0 {
			nextPC = t.callStack[n-1]
			t.callStack = t.callStack[:n-1]
			ev.Target = nextPC
		} else {
			// Returning from the outermost frame ends the thread.
			t.retired++
			m.deliverInst(ci, &ev)
			m.exitThread(ci, t.Regs[isa.R0])
			return
		}
	case isa.SYSCALL:
		t.retired++
		m.deliverInst(ci, &ev)
		m.doSyscall(ci, in.Sys)
		return
	case isa.HALT:
		t.retired++
		m.deliverInst(ci, &ev)
		m.exitThread(ci, t.Regs[isa.R0])
		return
	}

	t.PC = nextPC
	t.retired++
	m.deliverInst(ci, &ev)

	// Quantum accounting and preemption.
	c.quantum--
	if c.quantum <= 0 && len(m.runq) > 0 {
		m.preempt(ci)
	}
}

// deliverInst hands the event to the tracer and charges the returned stall
// to the core.
func (m *Machine) deliverInst(ci int, ev *InstEvent) {
	if stall := m.cfg.Tracer.InstRetired(ev); stall > 0 {
		m.stallCore(ci, stall)
	}
}

func (m *Machine) stallCore(ci int, cycles uint64) {
	until := m.cycle + 1 + cycles
	if until > m.cores[ci].stallUntil {
		m.cores[ci].stallUntil = until
	}
}
