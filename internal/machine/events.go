package machine

import (
	"prorace/internal/isa"
)

// TID identifies a thread of the simulated machine. Thread 0 is the main
// thread.
type TID int32

// InstEvent describes one retired instruction, delivered to the attached
// Tracer. This is the observation point the simulated PMU (PEBS and PT)
// hangs off: PEBS counts the events with IsMem set, PT consumes the branch
// fields.
type InstEvent struct {
	TID  TID
	Core int
	// PC is the address of the retired instruction.
	PC uint64
	// Inst is the decoded instruction.
	Inst isa.Inst
	// TSC is the invariant timestamp counter at retirement.
	TSC uint64
	// MemAddr is the effective address for loads and stores.
	MemAddr uint64
	// IsMem/IsStore classify memory events.
	IsMem   bool
	IsStore bool
	// Taken is set for conditional branches that were taken.
	Taken bool
	// Target is the destination of a taken branch (conditional taken,
	// unconditional, indirect, call or return).
	Target uint64
	// Regs points at the thread's live register file. A tracer that wants
	// a snapshot (as PEBS hardware takes one) must copy it; the array is
	// overwritten by subsequent execution.
	Regs *[isa.NumRegs]uint64
}

// SyscallEvent describes a completed machine service call, delivered to the
// Tracer. The synchronization tracer (the simulation's LD_PRELOAD shim)
// records the lock/unlock/thread/malloc events from this stream.
type SyscallEvent struct {
	TID  TID
	Core int
	PC   uint64
	TSC  uint64
	Sys  isa.Sys
	// Arg0..Arg2 are the R0..R2 argument values at entry.
	Arg0, Arg1, Arg2 uint64
	// Ret is the R0 result value (e.g. the address returned by malloc, the
	// TID returned by thread_create).
	Ret uint64
}

// Tracer observes the execution. The uint64 each callback returns is the
// number of extra cycles tracing steals from the executing core — the
// mechanism by which PMU driver costs turn into measurable runtime
// overhead, reproducing the paper's Figures 6, 7 and 10.
type Tracer interface {
	// InstRetired is called after every retired instruction.
	InstRetired(ev *InstEvent) (stallCycles uint64)
	// SyscallRetired is called after every completed syscall.
	SyscallRetired(ev *SyscallEvent) (stallCycles uint64)
	// ThreadStarted is called when a thread begins execution.
	ThreadStarted(tid TID, tsc uint64)
	// ThreadExited is called when a thread terminates.
	ThreadExited(tid TID, tsc uint64)
}

// NopTracer ignores every event at zero cost. Baseline (untraced) runs use
// it; the overhead of a traced run is measured against this.
type NopTracer struct{}

// InstRetired implements Tracer.
func (NopTracer) InstRetired(*InstEvent) uint64 { return 0 }

// SyscallRetired implements Tracer.
func (NopTracer) SyscallRetired(*SyscallEvent) uint64 { return 0 }

// ThreadStarted implements Tracer.
func (NopTracer) ThreadStarted(TID, uint64) {}

// ThreadExited implements Tracer.
func (NopTracer) ThreadExited(TID, uint64) {}
