package machine

import (
	"testing"

	"prorace/internal/asm"
	"prorace/internal/isa"
	"prorace/internal/prog"
)

// buildCounter makes a program where each of `workers` threads increments a
// shared counter n times, with or without a mutex.
func buildCounter(workers, n int64, locked bool) *asm.Builder {
	b := asm.New("counter")
	b.Global("counter", 8)
	b.Global("lk", 8)
	m := b.Func("main")
	// Spawn workers, keeping TIDs in r8+.
	for i := int64(0); i < workers; i++ {
		m.MovI(isa.R4, i)
		m.SpawnThread("worker", isa.R4)
		m.Mov(isa.Reg(8+i), isa.R0)
	}
	for i := int64(0); i < workers; i++ {
		m.Join(isa.Reg(8 + i))
	}
	m.Exit(0)

	w := b.Func("worker")
	w.MovI(isa.R3, n)
	w.Label("loop")
	if locked {
		w.Lock("lk")
	}
	w.Load(isa.R1, asm.Global("counter", 0))
	w.AddI(isa.R1, 1)
	w.Store(asm.Global("counter", 0), isa.R1)
	if locked {
		w.Unlock("lk")
	}
	w.SubI(isa.R3, 1)
	w.CmpI(isa.R3, 0)
	w.Jgt("loop")
	w.Exit(0)
	return b
}

func TestLockedCounterIsExact(t *testing.T) {
	p := mustBuild(buildCounter(3, 200, true))
	for seed := int64(0); seed < 5; seed++ {
		m := New(p, Config{Seed: seed})
		st, err := m.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got := m.Mem.Load8(p.MustLookup("counter").Addr)
		if got != 600 {
			t.Errorf("seed %d: counter = %d, want 600", seed, got)
		}
		if st.Threads != 4 {
			t.Errorf("threads = %d", st.Threads)
		}
		if st.SyncOps == 0 {
			t.Error("sync ops not counted")
		}
	}
}

func TestRacyCounterLosesUpdates(t *testing.T) {
	p := mustBuild(buildCounter(4, 500, false))
	lost := false
	for seed := int64(0); seed < 10; seed++ {
		m := New(p, Config{Seed: seed, Quantum: 7})
		if _, err := m.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got := m.Mem.Load8(p.MustLookup("counter").Addr)
		if got > 2000 {
			t.Fatalf("seed %d: counter = %d > 2000, impossible", seed, got)
		}
		if got < 2000 {
			lost = true
		}
	}
	if !lost {
		t.Error("no seed lost an update; racy interleavings not occurring")
	}
}

func TestDeterminism(t *testing.T) {
	p := mustBuild(buildCounter(4, 300, false))
	run := func() (uint64, uint64) {
		m := New(p, Config{Seed: 42, Quantum: 13})
		st, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles, m.Mem.Load8(p.MustLookup("counter").Addr)
	}
	c1, v1 := run()
	c2, v2 := run()
	if c1 != c2 || v1 != v2 {
		t.Errorf("same seed diverged: cycles %d vs %d, value %d vs %d", c1, c2, v1, v2)
	}
	// A different seed should (virtually always) interleave differently.
	m := New(p, Config{Seed: 43, Quantum: 13})
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles == c1 && m.Mem.Load8(p.MustLookup("counter").Addr) == v1 {
		t.Log("warning: different seed produced identical run (unlikely but possible)")
	}
}

func TestThreadJoinExitCode(t *testing.T) {
	b := asm.New("join")
	m := b.Func("main")
	m.MovI(isa.R4, 0)
	m.SpawnThread("worker", isa.R4)
	m.Join(isa.R0) // join returns worker's exit code in r0
	m.Mov(isa.R9, isa.R0)
	m.Syscall(isa.SysExit) // exit with r0 = worker's code... r0 already set
	w := b.Func("worker")
	w.Exit(77)
	p := mustBuild(b)
	mac := New(p, Config{Seed: 1})
	if _, err := mac.Run(); err != nil {
		t.Fatal(err)
	}
	if mac.ExitCode(1) != 77 {
		t.Errorf("worker exit code = %d", mac.ExitCode(1))
	}
	if mac.ExitCode(0) != 77 {
		t.Errorf("main exit code = %d (join result not propagated)", mac.ExitCode(0))
	}
}

func TestMallocFreeReuse(t *testing.T) {
	b := asm.New("heap")
	b.Global("addr1", 8)
	b.Global("addr2", 8)
	m := b.Func("main")
	m.MovI(isa.R0, 64)
	m.Syscall(isa.SysMalloc)
	m.Store(asm.Global("addr1", 0), isa.R0)
	m.Syscall(isa.SysFree) // free the same address (still in r0)
	m.MovI(isa.R0, 64)
	m.Syscall(isa.SysMalloc)
	m.Store(asm.Global("addr2", 0), isa.R0)
	m.Exit(0)
	p := mustBuild(b)
	mac := New(p, Config{Seed: 1})
	if _, err := mac.Run(); err != nil {
		t.Fatal(err)
	}
	a1 := mac.Mem.Load8(p.MustLookup("addr1").Addr)
	a2 := mac.Mem.Load8(p.MustLookup("addr2").Addr)
	if a1 == 0 || a1 < isa.HeapBase {
		t.Fatalf("malloc returned %#x", a1)
	}
	if a1 != a2 {
		t.Errorf("freed address %#x not reused (got %#x); reuse is required for the §4.3 scenario", a1, a2)
	}
}

func TestMallocDistinctWhileLive(t *testing.T) {
	b := asm.New("heap2")
	b.Global("a1", 8)
	b.Global("a2", 8)
	m := b.Func("main")
	m.MovI(isa.R0, 32)
	m.Syscall(isa.SysMalloc)
	m.Store(asm.Global("a1", 0), isa.R0)
	m.MovI(isa.R0, 32)
	m.Syscall(isa.SysMalloc)
	m.Store(asm.Global("a2", 0), isa.R0)
	m.Exit(0)
	p := mustBuild(b)
	mac := New(p, Config{Seed: 1})
	if _, err := mac.Run(); err != nil {
		t.Fatal(err)
	}
	a1 := mac.Mem.Load8(p.MustLookup("a1").Addr)
	a2 := mac.Mem.Load8(p.MustLookup("a2").Addr)
	if a1 == a2 {
		t.Errorf("two live allocations share address %#x", a1)
	}
}

func TestBarrier(t *testing.T) {
	// Three workers spin for different lengths, meet at a barrier, then
	// each stamps its slot with the TSC; main joins and all slots must be
	// written — a lost barrier waiter would deadlock or leave a zero.
	b2 := asm.New("barrier")
	b2.Global("bar", 8)
	b2.Global("slots", 32)
	m2 := b2.Func("main")
	for i := int64(0); i < 3; i++ {
		m2.MovI(isa.R4, i)
		m2.SpawnThread("worker", isa.R4)
		m2.Mov(isa.Reg(8+i), isa.R0)
	}
	for i := int64(0); i < 3; i++ {
		m2.Join(isa.Reg(8 + i))
	}
	m2.Exit(0)
	w2 := b2.Func("worker")
	w2.Mov(isa.R7, isa.R0)
	w2.Mov(isa.R3, isa.R7)
	w2.MulI(isa.R3, 300)
	w2.Label("spin")
	w2.CmpI(isa.R3, 0)
	w2.Jle("spun")
	w2.SubI(isa.R3, 1)
	w2.Jmp("spin")
	w2.Label("spun")
	w2.Lea(isa.R0, asm.Global("bar", 0))
	w2.MovI(isa.R1, 3)
	w2.Syscall(isa.SysBarrier)
	w2.Syscall(isa.SysTSC)
	w2.Mov(isa.R2, isa.R0)
	w2.Lea(isa.R5, asm.Global("slots", 0))
	w2.Store(asm.BaseIndex(isa.R5, isa.R7, 8, 0), isa.R2)
	w2.Exit(0)
	prog2 := mustBuild(b2)
	mac := New(prog2, Config{Seed: 3})
	if _, err := mac.Run(); err != nil {
		t.Fatal(err)
	}
	slots := prog2.MustLookup("slots").Addr
	for i := uint64(0); i < 3; i++ {
		if v := mac.Mem.Load8(slots + i*8); v == 0 {
			t.Errorf("slot %d never written: barrier lost a thread", i)
		}
	}
}

func TestCondVarHandoff(t *testing.T) {
	// Producer sets a flag under a lock and signals; consumer waits for it.
	b := asm.New("cond")
	b.Global("mtx", 8)
	b.Global("cv", 8)
	b.Global("flag", 8)
	b.Global("seen", 8)
	m := b.Func("main")
	m.MovI(isa.R4, 0)
	m.SpawnThread("consumer", isa.R4)
	m.Mov(isa.R8, isa.R0)
	// Give the consumer a head start so it actually waits sometimes.
	m.MovI(isa.R3, 200)
	m.Label("spin")
	m.SubI(isa.R3, 1)
	m.CmpI(isa.R3, 0)
	m.Jgt("spin")
	m.Lock("mtx")
	m.MovI(isa.R1, 1)
	m.Store(asm.Global("flag", 0), isa.R1)
	m.Lea(isa.R0, asm.Global("cv", 0))
	m.Syscall(isa.SysCondSignal)
	m.Unlock("mtx")
	m.Join(isa.R8)
	m.Exit(0)
	c := b.Func("consumer")
	c.Lock("mtx")
	c.Label("check")
	c.Load(isa.R1, asm.Global("flag", 0))
	c.CmpI(isa.R1, 1)
	c.Jeq("done")
	c.Lea(isa.R0, asm.Global("cv", 0))
	c.Lea(isa.R1, asm.Global("mtx", 0))
	c.Syscall(isa.SysCondWait)
	c.Jmp("check")
	c.Label("done")
	c.Load(isa.R2, asm.Global("flag", 0))
	c.Store(asm.Global("seen", 0), isa.R2)
	c.Unlock("mtx")
	c.Exit(0)
	p := mustBuild(b)
	for seed := int64(0); seed < 8; seed++ {
		mac := New(p, Config{Seed: seed})
		if _, err := mac.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if v := mac.Mem.Load8(p.MustLookup("seen").Addr); v != 1 {
			t.Errorf("seed %d: consumer saw flag = %d", seed, v)
		}
	}
}

func TestDeadlockDetected(t *testing.T) {
	// Two threads acquire two mutexes in opposite order (AB-BA), with spin
	// delays to force the deadlock window.
	b2 := asm.New("dead2")
	b2.Global("a", 8)
	b2.Global("b", 8)
	m2 := b2.Func("main")
	m2.MovI(isa.R4, 0)
	m2.SpawnThread("w", isa.R4)
	m2.Mov(isa.R8, isa.R0)
	m2.Lock("a")
	// spin to let the worker take b
	m2.MovI(isa.R3, 500)
	m2.Label("s")
	m2.SubI(isa.R3, 1)
	m2.CmpI(isa.R3, 0)
	m2.Jgt("s")
	m2.Lock("b")
	m2.Exit(0)
	w2 := b2.Func("w")
	w2.Lock("b")
	w2.MovI(isa.R3, 500)
	w2.Label("s")
	w2.SubI(isa.R3, 1)
	w2.CmpI(isa.R3, 0)
	w2.Jgt("s")
	w2.Lock("a")
	w2.Exit(0)
	p2 := mustBuild(b2)
	mac := New(p2, Config{Seed: 1})
	if _, err := mac.Run(); err == nil {
		t.Fatal("AB-BA deadlock not detected")
	}
}

func TestCycleLimit(t *testing.T) {
	b := asm.New("loop")
	m := b.Func("main")
	m.Label("forever")
	m.Jmp("forever")
	p := mustBuild(b)
	mac := New(p, Config{Seed: 1, MaxCycles: 10_000})
	if _, err := mac.Run(); err == nil {
		t.Fatal("cycle limit not enforced")
	}
}

// countingTracer counts events and charges a fixed stall per memory op.
type countingTracer struct {
	insts, mems, syscalls int
	stallPerMem           uint64
	started, exited       int
}

func (c *countingTracer) InstRetired(ev *InstEvent) uint64 {
	c.insts++
	if ev.IsMem {
		c.mems++
		return c.stallPerMem
	}
	return 0
}
func (c *countingTracer) SyscallRetired(*SyscallEvent) uint64 { c.syscalls++; return 0 }
func (c *countingTracer) ThreadStarted(TID, uint64)           { c.started++ }
func (c *countingTracer) ThreadExited(TID, uint64)            { c.exited++ }

func TestTracerStallsSlowTheRun(t *testing.T) {
	p := mustBuild(buildCounter(2, 400, true))
	base := New(p, Config{Seed: 9})
	bst, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	tr := &countingTracer{stallPerMem: 50}
	traced := New(p, Config{Seed: 9, Tracer: tr})
	tst, err := traced.Run()
	if err != nil {
		t.Fatal(err)
	}
	if tst.Cycles <= bst.Cycles {
		t.Errorf("traced run (%d cycles) not slower than base (%d)", tst.Cycles, bst.Cycles)
	}
	if tr.mems == 0 || tr.insts <= tr.mems || tr.syscalls == 0 {
		t.Errorf("event counts implausible: %+v", tr)
	}
	if tr.started != 3 || tr.exited != 3 {
		t.Errorf("thread lifecycle events: started %d exited %d", tr.started, tr.exited)
	}
	if bst.MemOps == 0 || bst.Retired < bst.MemOps {
		t.Errorf("stats implausible: %+v", bst)
	}
}

func TestNetIOHidesTracerOverhead(t *testing.T) {
	// A single-threaded workload dominated by network I/O: tracer stalls
	// should vanish into the idle time, keeping overhead tiny.
	build := func() *asm.Builder {
		b := asm.New("net")
		m := b.Func("main")
		m.MovI(isa.R3, 50)
		m.Label("loop")
		m.NetIO(4096)
		m.Load(isa.R1, asm.Global("g", 0))
		m.AddI(isa.R1, 1)
		m.Store(asm.Global("g", 0), isa.R1)
		m.SubI(isa.R3, 1)
		m.CmpI(isa.R3, 0)
		m.Jgt("loop")
		m.Exit(0)
		b.Global("g", 8)
		return b
	}
	p := mustBuild(build())
	base := New(p, Config{Seed: 5})
	bst, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	tr := &countingTracer{stallPerMem: 100}
	traced := New(p, Config{Seed: 5, Tracer: tr})
	tst, err := traced.Run()
	if err != nil {
		t.Fatal(err)
	}
	overhead := float64(tst.Cycles)/float64(bst.Cycles) - 1
	if overhead > 0.02 {
		t.Errorf("network-bound overhead = %.1f%%, want < 2%%", overhead*100)
	}
}

func TestFileBusContention(t *testing.T) {
	// App file I/O must slow down when the tracer occupies the file bus.
	b := asm.New("file")
	m := b.Func("main")
	m.MovI(isa.R3, 30)
	m.Label("loop")
	m.FileIO(8192)
	m.SubI(isa.R3, 1)
	m.CmpI(isa.R3, 0)
	m.Jgt("loop")
	m.Exit(0)
	p := mustBuild(b)

	base := New(p, Config{Seed: 1})
	bst, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	// A tracer that dumps 64KB to the file bus on every syscall.
	busy := New(p, Config{Seed: 1})
	busyTracer := &busTracer{m: busy}
	busy.cfg.Tracer = busyTracer
	tst, err := busy.Run()
	if err != nil {
		t.Fatal(err)
	}
	if tst.Cycles <= bst.Cycles {
		t.Errorf("file-bus contention did not slow the run: %d vs %d", tst.Cycles, bst.Cycles)
	}
}

type busTracer struct{ m *Machine }

func (b *busTracer) InstRetired(*InstEvent) uint64 { return 0 }
func (b *busTracer) SyscallRetired(ev *SyscallEvent) uint64 {
	if ev.Sys == isa.SysFileIO {
		b.m.OccupyFileBus(65536)
	}
	return 0
}
func (b *busTracer) ThreadStarted(TID, uint64) {}
func (b *busTracer) ThreadExited(TID, uint64)  {}

func TestMemoryRoundTrip(t *testing.T) {
	mem := NewMemory()
	mem.Store8(0x1000, 0xDEADBEEFCAFE)
	if got := mem.Load8(0x1000); got != 0xDEADBEEFCAFE {
		t.Errorf("Load8 = %#x", got)
	}
	if got := mem.Load8(0x99999); got != 0 {
		t.Errorf("unmapped load = %#x, want 0", got)
	}
	// Page-straddling access.
	addr := uint64(pageSize - 3)
	mem.Store8(addr, 0x0102030405060708)
	if got := mem.Load8(addr); got != 0x0102030405060708 {
		t.Errorf("straddling load = %#x", got)
	}
	buf := make([]byte, 100)
	mem.ReadBytes(addr-10, buf)
	mem.WriteBytes(3*pageSize-50, buf)
	if mem.MappedBytes() == 0 {
		t.Error("no pages mapped")
	}
}

func TestStatsSeconds(t *testing.T) {
	s := Stats{Cycles: 4_000_000_000}
	if sec := s.Seconds(); sec != 1.0 {
		t.Errorf("4e9 cycles = %v s, want 1", sec)
	}
}

func TestWildJumpKillsThread(t *testing.T) {
	b := asm.New("wild")
	m := b.Func("main")
	m.MovI(isa.R1, 0x12345)
	m.JmpR(isa.R1)
	p := mustBuild(b)
	mac := New(p, Config{Seed: 1})
	if _, err := mac.Run(); err != nil {
		t.Fatal(err)
	}
	if mac.ExitCode(0) != ^uint64(0) {
		t.Errorf("wild jump exit code = %#x", mac.ExitCode(0))
	}
}

func TestReturnFromOutermostFrameExits(t *testing.T) {
	b := asm.New("ret")
	m := b.Func("main")
	m.MovI(isa.R0, 5)
	m.Ret()
	p := mustBuild(b)
	mac := New(p, Config{Seed: 1})
	if _, err := mac.Run(); err != nil {
		t.Fatal(err)
	}
	if mac.ExitCode(0) != 5 {
		t.Errorf("exit code = %d", mac.ExitCode(0))
	}
}

func TestCallRet(t *testing.T) {
	b := asm.New("call")
	b.Global("out", 8)
	m := b.Func("main")
	m.MovI(isa.R1, 20)
	m.Call("double")
	m.Store(asm.Global("out", 0), isa.R1)
	m.Exit(0)
	d := b.Func("double")
	d.Add(isa.R1, isa.R1)
	d.Ret()
	p := mustBuild(b)
	mac := New(p, Config{Seed: 1})
	if _, err := mac.Run(); err != nil {
		t.Fatal(err)
	}
	if v := mac.Mem.Load8(p.MustLookup("out").Addr); v != 40 {
		t.Errorf("out = %d, want 40", v)
	}
}

func TestUnlockWithoutOwnershipFails(t *testing.T) {
	b := asm.New("badunlock")
	b.Global("lk", 8)
	b.Global("r", 8)
	m := b.Func("main")
	m.Unlock("lk")
	m.Store(asm.Global("r", 0), isa.R0)
	m.Exit(0)
	p := mustBuild(b)
	mac := New(p, Config{Seed: 1})
	if _, err := mac.Run(); err != nil {
		t.Fatal(err)
	}
	if v := mac.Mem.Load8(p.MustLookup("r").Addr); v != ^uint64(0) {
		t.Errorf("bad unlock returned %#x", v)
	}
}

// mustBuild finalises a test program; the inputs are static, so a build
// error means the test itself is broken.
func mustBuild(b *asm.Builder) *prog.Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
