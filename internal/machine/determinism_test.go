package machine

import (
	"testing"
)

// digestTracer folds every observable event of a run into one FNV-1a hash,
// so two runs can be compared for byte-identical event streams without
// storing them.
type digestTracer struct {
	h      uint64
	events int
}

func newDigestTracer() *digestTracer { return &digestTracer{h: 14695981039346656037} }

func (d *digestTracer) mix(x uint64) {
	for i := 0; i < 8; i++ {
		d.h ^= x & 0xff
		d.h *= 1099511628211
		x >>= 8
	}
}

func (d *digestTracer) InstRetired(ev *InstEvent) uint64 {
	d.events++
	d.mix(uint64(uint32(ev.TID)))
	d.mix(ev.PC)
	d.mix(ev.TSC)
	if ev.IsMem {
		flag := uint64(1)
		if ev.IsStore {
			flag = 3
		}
		d.mix(ev.MemAddr<<2 | flag)
	}
	if ev.Taken {
		d.mix(ev.Target)
	}
	return 0
}

func (d *digestTracer) SyscallRetired(ev *SyscallEvent) uint64 {
	d.events++
	d.mix(uint64(uint32(ev.TID)))
	d.mix(ev.PC)
	d.mix(ev.TSC)
	d.mix(uint64(ev.Sys))
	d.mix(ev.Ret)
	return 0
}

func (d *digestTracer) ThreadStarted(tid TID, tsc uint64) { d.mix(uint64(uint32(tid))); d.mix(tsc) }
func (d *digestTracer) ThreadExited(tid TID, tsc uint64)  { d.mix(uint64(uint32(tid))); d.mix(tsc) }

// runDigest executes p once and returns the event digest, the decision log
// and the run stats.
func runDigest(t *testing.T, cfg Config, director func(pos uint64, runq []TID, pick int) int) (uint64, []SchedDecision, Stats) {
	t.Helper()
	// More threads than cores, and workers that far outlive the 2000-cycle
	// thread-create stall, so the run queue regularly holds several runnable
	// candidates and the scheduler actually makes decisions.
	p := mustBuild(buildCounter(6, 3000, false))
	if cfg.Cores == 0 {
		cfg.Cores = 2
	}
	var log []SchedDecision
	cfg.SchedObserver = func(d SchedDecision) { log = append(log, d) }
	cfg.SchedDirector = director
	dt := newDigestTracer()
	cfg.Tracer = dt
	m := New(p, cfg)
	st, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if dt.events == 0 {
		t.Fatal("tracer saw no events")
	}
	return dt.h, log, st
}

func sameDecisions(a, b []SchedDecision) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSeedDeterminism guards the property every witness depends on: the same
// program and Config.Seed must produce identical event streams, decision
// logs and statistics, run after run.
func TestSeedDeterminism(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		cfg := Config{Seed: seed, Quantum: 13}
		h1, log1, st1 := runDigest(t, cfg, nil)
		h2, log2, st2 := runDigest(t, cfg, nil)
		if h1 != h2 {
			t.Errorf("seed %d: event digests differ: %#x vs %#x", seed, h1, h2)
		}
		if !sameDecisions(log1, log2) {
			t.Errorf("seed %d: decision logs differ (%d vs %d decisions)", seed, len(log1), len(log2))
		}
		if st1 != st2 {
			t.Errorf("seed %d: stats differ: %+v vs %+v", seed, st1, st2)
		}
		if len(log1) == 0 {
			t.Errorf("seed %d: no scheduler decisions recorded", seed)
		}
		// Different seeds must actually diverge, or the digest is vacuous.
		if seed > 1 {
			hPrev, _, _ := runDigest(t, Config{Seed: seed - 1, Quantum: 13}, nil)
			if h1 == hPrev {
				t.Errorf("seeds %d and %d produced identical event streams", seed-1, seed)
			}
		}
	}
}

// TestDirectorEchoIsIdentity asserts the SchedDirector contract: a director
// that returns the seeded pick unchanged consumes the random stream exactly
// like an undirected run, so the execution is bit-identical.
func TestDirectorEchoIsIdentity(t *testing.T) {
	cfg := Config{Seed: 7, Quantum: 13}
	h1, log1, _ := runDigest(t, cfg, nil)
	h2, log2, _ := runDigest(t, cfg, func(pos uint64, runq []TID, pick int) int { return pick })
	if h1 != h2 {
		t.Fatalf("echo director changed the event stream: %#x vs %#x", h1, h2)
	}
	if !sameDecisions(log1, log2) {
		t.Fatal("echo director changed the decision log")
	}
}

// TestForcedReplayReproduces replays a run by forcing its own recorded
// decisions and requires the identical event stream — the forced-schedule
// replayer must be byte-deterministic.
func TestForcedReplayReproduces(t *testing.T) {
	cfg := Config{Seed: 11, Quantum: 13}
	h1, log1, _ := runDigest(t, cfg, nil)
	forced := make(map[uint64]TID, len(log1))
	for _, d := range log1 {
		forced[d.Pos] = d.TID
	}
	h2, log2, _ := runDigest(t, cfg, func(pos uint64, runq []TID, pick int) int {
		tid, ok := forced[pos]
		if !ok {
			return pick
		}
		for i, cand := range runq {
			if cand == tid {
				return i
			}
		}
		return pick
	})
	if h1 != h2 {
		t.Fatalf("forcing a run's own decisions changed its event stream: %#x vs %#x", h1, h2)
	}
	if !sameDecisions(log1, log2) {
		t.Fatal("forcing a run's own decisions changed the decision log")
	}
}

// TestDirectedRunIsDeterministic pins down that an overriding director —
// one that actually changes picks — still yields a fully deterministic
// execution: the rng draw happens at every decision point regardless of the
// override, so the shared scheduler/SysRand stream advances identically and
// the directed run reproduces exactly.
func TestDirectedRunIsDeterministic(t *testing.T) {
	flip := func(pos uint64, runq []TID, pick int) int { return len(runq) - 1 - pick }
	cfg := Config{Seed: 7, Quantum: 13}
	h0, _, _ := runDigest(t, cfg, nil)
	h1, log1, st1 := runDigest(t, cfg, flip)
	h2, log2, st2 := runDigest(t, cfg, flip)
	if h1 != h2 || !sameDecisions(log1, log2) || st1 != st2 {
		t.Fatalf("directed run not deterministic: digests %#x vs %#x, %d vs %d decisions", h1, h2, len(log1), len(log2))
	}
	if h1 == h0 {
		t.Fatal("pick-flipping director produced the undirected event stream; director has no effect")
	}
}
