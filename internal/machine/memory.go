package machine

import "encoding/binary"

// pageBits/pageSize define the sparse-memory granularity.
const (
	pageBits = 12
	pageSize = 1 << pageBits
	pageMask = pageSize - 1
)

type page [pageSize]byte

// Memory is the machine's byte-addressable sparse memory. Reads of unmapped
// pages return zeroes; writes allocate pages on demand. All threads share
// one Memory — data races in the workload are real races on these bytes
// (made deterministic per run by the seeded scheduler).
type Memory struct {
	pages map[uint64]*page
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

func (m *Memory) pageFor(addr uint64, create bool) *page {
	pn := addr >> pageBits
	p := m.pages[pn]
	if p == nil && create {
		p = new(page)
		m.pages[pn] = p
	}
	return p
}

// Load8 reads the 64-bit little-endian word at addr. Unaligned and
// page-straddling accesses are supported.
func (m *Memory) Load8(addr uint64) uint64 {
	if addr&pageMask <= pageSize-8 {
		p := m.pageFor(addr, false)
		if p == nil {
			return 0
		}
		return binary.LittleEndian.Uint64(p[addr&pageMask:])
	}
	var b [8]byte
	m.ReadBytes(addr, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// Store8 writes the 64-bit little-endian word at addr.
func (m *Memory) Store8(addr uint64, v uint64) {
	if addr&pageMask <= pageSize-8 {
		p := m.pageFor(addr, true)
		binary.LittleEndian.PutUint64(p[addr&pageMask:], v)
		return
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	m.WriteBytes(addr, b[:])
}

// ReadBytes copies len(dst) bytes starting at addr into dst.
func (m *Memory) ReadBytes(addr uint64, dst []byte) {
	for len(dst) > 0 {
		off := addr & pageMask
		n := pageSize - off
		if n > uint64(len(dst)) {
			n = uint64(len(dst))
		}
		p := m.pageFor(addr, false)
		if p == nil {
			for i := uint64(0); i < n; i++ {
				dst[i] = 0
			}
		} else {
			copy(dst[:n], p[off:off+n])
		}
		dst = dst[n:]
		addr += n
	}
}

// WriteBytes copies src into memory starting at addr.
func (m *Memory) WriteBytes(addr uint64, src []byte) {
	for len(src) > 0 {
		off := addr & pageMask
		n := pageSize - off
		if n > uint64(len(src)) {
			n = uint64(len(src))
		}
		p := m.pageFor(addr, true)
		copy(p[off:off+n], src[:n])
		src = src[n:]
		addr += n
	}
}

// MappedBytes returns the number of bytes in allocated pages, for tests and
// diagnostics.
func (m *Memory) MappedBytes() uint64 {
	return uint64(len(m.pages)) * pageSize
}
