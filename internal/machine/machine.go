// Package machine implements the deterministic multicore simulator on which
// the ProRace reproduction runs its workloads. It stands in for the paper's
// 4-core Skylake + Linux testbed.
//
// The machine executes programs built from the internal/isa instruction set
// on a configurable number of cores with a seeded, preemptive scheduler, so
// thread interleavings — and hence data-race manifestation — are random
// across seeds but exactly reproducible for a given seed.
//
// Time is counted in cycles of an invariant timestamp counter (TSC) shared
// by all cores, as on the paper's hardware (§4.3). One instruction retires
// per core per cycle; syscalls, lock contention, and I/O latencies charge
// additional cycles. An attached Tracer (the simulated PMU driver stack)
// may charge further stall cycles per event — that is how tracing overhead
// becomes measurable: run once with NopTracer, once with the PMU attached,
// and compare total cycles.
//
// I/O model: network I/O blocks the calling thread but occupies no core, so
// tracing work hides under it (the paper's Figure 7 observation that
// network-bound applications see <1% overhead even at period 10). File I/O
// occupies a shared file bus that trace writes also consume, so file-I/O
// heavy workloads cannot hide tracing (§7.2).
package machine

import (
	"errors"
	"fmt"
	"math/rand"

	"prorace/internal/isa"
	"prorace/internal/prog"
)

// Config parameterises a machine.
type Config struct {
	// Cores is the number of cores (default 4, as in the paper's i7-6700K).
	Cores int
	// Seed drives the scheduler and SysRand. Different seeds produce
	// different interleavings; the same seed reproduces a run exactly.
	Seed int64
	// Quantum is the number of instructions a thread may retire before it
	// can be preempted (default 61; a prime, to decorrelate from loops).
	Quantum int
	// NetLatencyCycles is the fixed latency of one network I/O operation
	// (default 60000 cycles = 15µs at 4 GHz, a LAN round trip).
	NetLatencyCycles uint64
	// NetCyclesPerByte is the per-byte network cost (default 0.35,
	// ~ gigabit ethernet at 4 GHz).
	NetCyclesPerByte float64
	// FileLatencyCycles is the fixed latency of one file I/O operation
	// (default 8000).
	FileLatencyCycles uint64
	// FileCyclesPerByte is the per-byte file-bus occupancy (default 0.01,
	// ~400 MB/s after page cache).
	FileCyclesPerByte float64
	// MaxCycles aborts runaway executions (default 2e9).
	MaxCycles uint64
	// Tracer observes the run; nil means NopTracer.
	Tracer Tracer
	// SchedObserver, when non-nil, receives every scheduler decision as it
	// is made — the decision-log hook internal/witness records through.
	// Observation never perturbs the run.
	SchedObserver func(SchedDecision)
	// SchedDirector, when non-nil, may override the scheduler's
	// seeded-random pick: it receives the decision ordinal, the runnable
	// queue and the index the seeded rng chose, and returns the index to
	// run instead. The rng is drawn exactly as in an undirected run
	// regardless of the override, so directed and undirected executions
	// consume the machine's random stream identically — a director that
	// returns pick unchanged reproduces the undirected run bit for bit.
	// Out-of-range returns fall back to pick.
	SchedDirector func(pos uint64, runq []TID, pick int) int
}

func (c *Config) setDefaults() {
	if c.Cores <= 0 {
		c.Cores = 4
	}
	if c.Quantum <= 0 {
		c.Quantum = 61
	}
	if c.NetLatencyCycles == 0 {
		c.NetLatencyCycles = 60000
	}
	if c.NetCyclesPerByte == 0 {
		c.NetCyclesPerByte = 0.35
	}
	if c.FileLatencyCycles == 0 {
		c.FileLatencyCycles = 8000
	}
	if c.FileCyclesPerByte == 0 {
		c.FileCyclesPerByte = 0.01
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 2_000_000_000
	}
	if c.Tracer == nil {
		c.Tracer = NopTracer{}
	}
}

type threadState uint8

const (
	stRunnable threadState = iota
	stRunning
	stBlocked  // waiting for a lock, cond, barrier or join
	stSleeping // waiting for an I/O completion time
	stExited
)

// Thread is one simulated thread.
type Thread struct {
	ID    TID
	Regs  [isa.NumRegs]uint64
	Flags isa.Flags
	PC    uint64

	state     threadState
	callStack []uint64
	wakeAt    uint64
	joiners   []TID
	exitCode  uint64
	retired   uint64 // instructions retired
	memOps    uint64 // loads+stores retired
}

type coreState struct {
	tid        TID // -1 when idle
	stallUntil uint64
	quantum    int
}

type lockState struct {
	owner   TID // -1 when free
	waiters []lockWaiter
}

// lockWaiter queues a thread on a mutex. cond is nonzero when the thread is
// a condition waiter re-acquiring the mutex after a signal: on hand-off the
// machine notifies the tracer with SysCondWake, the moment the user-level
// cond_wait returns.
type lockWaiter struct {
	tid  TID
	cond uint64
}

type condState struct {
	waiters []condWaiter
}

type condWaiter struct {
	tid   TID
	mutex uint64
}

type barrierState struct {
	arrived []TID
}

// Machine executes one program to completion.
type Machine struct {
	cfg  Config
	prog *prog.Program
	Mem  *Memory

	threads []*Thread
	cores   []coreState
	runq    []TID
	rng     *rand.Rand

	cycle    uint64
	liveCnt  int
	locks    map[uint64]*lockState
	conds    map[uint64]*condState
	barriers map[uint64]*barrierState

	heapNext  uint64
	allocSize map[uint64]uint64
	freeLists map[uint64][]uint64

	fileBusFree uint64
	logBytes    uint64

	schedPos uint64

	stats Stats
}

// SchedDecision describes one pick of the machine's seeded preemptive
// scheduler: at decision point Pos (the run-wide ordinal of picks made with
// more than one runnable candidate), thread TID was chosen out of Queue
// candidates and dispatched onto core Core at TSC. Single-candidate picks
// carry no scheduling freedom and are not decision points. The decision stream is the run's interleaving in compressed form:
// given the program, the Config and the Seed, forcing the same picks at the
// same ordinals (via Config.SchedDirector) reproduces the same execution —
// the mechanism behind internal/witness's deterministic race reproduction.
type SchedDecision struct {
	Pos   uint64
	TID   TID
	Core  int
	Queue int
	TSC   uint64
}

// Stats summarises a completed run.
type Stats struct {
	// Cycles is the total wall-clock duration in TSC cycles.
	Cycles uint64
	// Retired is the total retired instruction count across threads.
	Retired uint64
	// MemOps is the number of retired loads and stores — the PEBS event
	// count of the run.
	MemOps uint64
	// SyncOps counts completed synchronization syscalls.
	SyncOps uint64
	// Threads is the number of threads created (including main).
	Threads int
	// IdleCoreCycles accumulates cycles during which a core had no thread.
	IdleCoreCycles uint64
	// LogBytes is the number of bytes written via SysLog.
	LogBytes uint64
}

// Seconds converts the run duration to seconds at the paper's 4 GHz clock.
func (s Stats) Seconds() float64 { return float64(s.Cycles) / ClockHz }

// ClockHz is the simulated clock rate: 4 GHz, the paper's i7-6700K.
const ClockHz = 4e9

// New creates a machine loaded with the program: the data segment is
// materialised at isa.DataBase and thread 0 is placed at the entry point.
func New(p *prog.Program, cfg Config) *Machine {
	cfg.setDefaults()
	m := &Machine{
		cfg:       cfg,
		prog:      p,
		Mem:       NewMemory(),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		locks:     map[uint64]*lockState{},
		conds:     map[uint64]*condState{},
		barriers:  map[uint64]*barrierState{},
		heapNext:  isa.HeapBase,
		allocSize: map[uint64]uint64{},
		freeLists: map[uint64][]uint64{},
	}
	m.Mem.WriteBytes(isa.DataBase, p.Data)
	m.cores = make([]coreState, cfg.Cores)
	for i := range m.cores {
		m.cores[i].tid = -1
	}
	m.spawn(p.Entry, 0)
	return m
}

// Program returns the loaded program.
func (m *Machine) Program() *prog.Program { return m.prog }

// SetTracer attaches a tracer after construction. Drivers that need a
// reference to the machine (for the file bus and TSC) are built against the
// machine and then attached with this before Run.
func (m *Machine) SetTracer(t Tracer) {
	if t == nil {
		t = NopTracer{}
	}
	m.cfg.Tracer = t
}

// Now returns the current TSC value.
func (m *Machine) Now() uint64 { return m.cycle }

// Rand returns the machine's deterministic random stream (used by SysRand
// and by the scheduler).
func (m *Machine) Rand() *rand.Rand { return m.rng }

// Cores returns the machine's core count.
func (m *Machine) Cores() int { return len(m.cores) }

// HasIdleCore reports whether any core is currently idle. The PMU driver
// uses it to decide whether background tracing work (the perf tool's
// polling) competes with the application or runs for free — the mechanism
// behind the paper's observation that network-bound applications hide
// tracing overhead almost entirely (Figure 7).
func (m *Machine) HasIdleCore() bool {
	for i := range m.cores {
		if m.cores[i].tid < 0 && m.cores[i].stallUntil <= m.cycle {
			return true
		}
	}
	return false
}

// OccupyFileBus reserves the shared file bus for writing n bytes, returning
// the number of cycles the reservation extends past now. The PMU driver's
// perf tool calls this for trace flushes: the reservation delays the
// application's own file I/O, which is how tracing overhead shows up on
// file-I/O-bound workloads even though the trace write itself is
// asynchronous.
func (m *Machine) OccupyFileBus(n uint64) uint64 {
	start := m.fileBusFree
	if start < m.cycle {
		start = m.cycle
	}
	// Trace writes are buffered appends: they cost bandwidth, not the
	// per-operation latency the application's own file I/O pays.
	dur := 50 + uint64(float64(n)*m.cfg.FileCyclesPerByte)
	m.fileBusFree = start + dur
	return m.fileBusFree - m.cycle
}

// spawn creates a thread starting at pc with arg in R0.
func (m *Machine) spawn(pc uint64, arg uint64) TID {
	tid := TID(len(m.threads))
	t := &Thread{ID: tid, PC: pc, state: stRunnable}
	t.Regs[isa.R0] = arg
	t.Regs[isa.SP] = isa.StackTop - uint64(tid)*isa.StackStride
	m.threads = append(m.threads, t)
	m.runq = append(m.runq, tid)
	m.liveCnt++
	m.stats.Threads++
	m.cfg.Tracer.ThreadStarted(tid, m.cycle)
	return tid
}

// ErrDeadlock is returned when live threads remain but none can make
// progress.
var ErrDeadlock = errors.New("machine: deadlock: live threads but none runnable")

// ErrCycleLimit is returned when MaxCycles elapses before completion.
var ErrCycleLimit = errors.New("machine: cycle limit exceeded")

// Run executes the program until every thread exits, returning run
// statistics. It is single-shot: create a new Machine per run.
func (m *Machine) Run() (Stats, error) {
	for m.liveCnt > 0 {
		if m.cycle >= m.cfg.MaxCycles {
			return m.stats, fmt.Errorf("%w at %d", ErrCycleLimit, m.cycle)
		}
		progress := false
		for ci := range m.cores {
			c := &m.cores[ci]
			if c.stallUntil > m.cycle {
				progress = true // core busy stalling, time must advance
				continue
			}
			if c.tid < 0 {
				m.scheduleOn(ci)
			}
			if c.tid < 0 {
				m.stats.IdleCoreCycles++
				continue
			}
			m.step(ci)
			progress = true
		}
		if !progress {
			next, ok := m.nextWake()
			if !ok {
				return m.stats, ErrDeadlock
			}
			if next <= m.cycle {
				next = m.cycle + 1
			}
			m.cycle = next
			m.wakeSleepers()
			continue
		}
		m.cycle++
		m.wakeSleepers()
	}
	m.stats.Cycles = m.cycle
	m.stats.LogBytes = m.logBytes
	for _, t := range m.threads {
		m.stats.Retired += t.retired
		m.stats.MemOps += t.memOps
	}
	return m.stats, nil
}

// scheduleOn assigns a runnable thread to core ci. Selection is seeded-
// random among the run queue, which is the source of cross-run interleaving
// diversity. A SchedDirector may override the pick; the rng draw happens
// either way so the SysRand stream (which shares m.rng) is unperturbed.
func (m *Machine) scheduleOn(ci int) {
	if len(m.runq) == 0 {
		return
	}
	k := 0
	if len(m.runq) > 1 {
		// Only multi-candidate picks are decision points: with one runnable
		// thread the scheduler has no freedom, so those picks are neither
		// numbered, observed nor directable.
		k = m.rng.Intn(len(m.runq))
		pos := m.schedPos
		m.schedPos++
		if d := m.cfg.SchedDirector; d != nil {
			if fk := d(pos, m.runq, k); fk >= 0 && fk < len(m.runq) {
				k = fk
			}
		}
		if o := m.cfg.SchedObserver; o != nil {
			o(SchedDecision{Pos: pos, TID: m.runq[k], Core: ci, Queue: len(m.runq), TSC: m.cycle})
		}
	}
	tid := m.runq[k]
	m.runq = append(m.runq[:k], m.runq[k+1:]...)
	t := m.threads[tid]
	t.state = stRunning
	m.cores[ci].tid = tid
	m.cores[ci].quantum = m.cfg.Quantum
}

// preempt moves the thread running on core ci back to the run queue.
func (m *Machine) preempt(ci int) {
	c := &m.cores[ci]
	if c.tid < 0 {
		return
	}
	t := m.threads[c.tid]
	t.state = stRunnable
	m.runq = append(m.runq, c.tid)
	c.tid = -1
}

// block removes the current thread from its core without requeueing it.
func (m *Machine) blockCurrent(ci int) *Thread {
	c := &m.cores[ci]
	t := m.threads[c.tid]
	t.state = stBlocked
	c.tid = -1
	return t
}

// sleepCurrent removes the current thread and schedules a wakeup.
func (m *Machine) sleepCurrent(ci int, wakeAt uint64) {
	c := &m.cores[ci]
	t := m.threads[c.tid]
	t.state = stSleeping
	t.wakeAt = wakeAt
	c.tid = -1
}

// wake moves a blocked or sleeping thread back to the run queue.
func (m *Machine) wake(tid TID) {
	t := m.threads[tid]
	if t.state == stExited {
		return
	}
	t.state = stRunnable
	m.runq = append(m.runq, tid)
}

func (m *Machine) wakeSleepers() {
	for _, t := range m.threads {
		if t.state == stSleeping && t.wakeAt <= m.cycle {
			m.wake(t.ID)
		}
	}
}

// nextWake returns the earliest future time at which anything can run.
func (m *Machine) nextWake() (uint64, bool) {
	var next uint64
	found := false
	consider := func(c uint64) {
		if !found || c < next {
			next, found = c, true
		}
	}
	for _, t := range m.threads {
		if t.state == stSleeping {
			consider(t.wakeAt)
		}
	}
	for i := range m.cores {
		if m.cores[i].tid >= 0 && m.cores[i].stallUntil > m.cycle {
			consider(m.cores[i].stallUntil)
		}
	}
	if len(m.runq) > 0 {
		consider(m.cycle + 1)
	}
	return next, found
}

// exitThread terminates the thread on core ci.
func (m *Machine) exitThread(ci int, code uint64) {
	c := &m.cores[ci]
	t := m.threads[c.tid]
	t.state = stExited
	t.exitCode = code
	c.tid = -1
	m.liveCnt--
	for _, j := range t.joiners {
		m.wake(j)
	}
	t.joiners = nil
	m.cfg.Tracer.ThreadExited(t.ID, m.cycle)
}

// Thread returns the thread with the given ID, for tests and diagnostics.
func (m *Machine) Thread(tid TID) *Thread {
	if int(tid) < len(m.threads) {
		return m.threads[tid]
	}
	return nil
}

// ExitCode returns a thread's exit code after the run.
func (m *Machine) ExitCode(tid TID) uint64 { return m.threads[tid].exitCode }
