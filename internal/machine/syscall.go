package machine

import (
	"prorace/internal/isa"
)

// Baseline syscall costs in cycles, charged to the calling core. These are
// of the order of real glibc/kernel fast paths at 4 GHz.
var sysCost = map[isa.Sys]uint64{
	isa.SysExit:          20,
	isa.SysThreadCreate:  2000,
	isa.SysThreadJoin:    60,
	isa.SysLock:          40,
	isa.SysUnlock:        30,
	isa.SysCondWait:      80,
	isa.SysCondSignal:    60,
	isa.SysCondBroadcast: 80,
	isa.SysBarrier:       60,
	isa.SysMalloc:        120,
	isa.SysFree:          100,
	isa.SysLog:           60,
	isa.SysYield:         30,
	isa.SysTSC:           8,
	isa.SysRand:          15,
}

// isSyncOp reports whether the syscall is one the synchronization tracer
// must record for happens-before analysis (paper §4.3: sync operations plus
// malloc/free to avoid address-reuse false positives).
func isSyncOp(s isa.Sys) bool {
	switch s {
	case isa.SysThreadCreate, isa.SysThreadJoin,
		isa.SysLock, isa.SysUnlock,
		isa.SysCondWait, isa.SysCondSignal, isa.SysCondBroadcast,
		isa.SysBarrier, isa.SysMalloc, isa.SysFree:
		return true
	}
	return false
}

// doSyscall executes the service for the thread on core ci. The PC has not
// yet been advanced; each path advances it (or not, for blocking retries).
func (m *Machine) doSyscall(ci int, sys isa.Sys) {
	c := &m.cores[ci]
	t := m.threads[c.tid]
	pc := t.PC
	arg0, arg1, arg2 := t.Regs[isa.R0], t.Regs[isa.R1], t.Regs[isa.R2]
	advance := func() { t.PC = pc + isa.InstSize }
	finish := func(ret uint64) {
		t.Regs[isa.R0] = ret
		advance()
		if cost := sysCost[sys]; cost > 0 {
			m.stallCore(ci, cost)
		}
		sev := SyscallEvent{
			TID: t.ID, Core: ci, PC: pc, TSC: m.cycle, Sys: sys,
			Arg0: arg0, Arg1: arg1, Arg2: arg2, Ret: ret,
		}
		if isSyncOp(sys) {
			m.stats.SyncOps++
		}
		if stall := m.cfg.Tracer.SyscallRetired(&sev); stall > 0 {
			m.stallCore(ci, stall)
		}
	}

	switch sys {
	case isa.SysExit:
		sev := SyscallEvent{TID: t.ID, Core: ci, PC: pc, TSC: m.cycle, Sys: sys, Arg0: arg0}
		m.cfg.Tracer.SyscallRetired(&sev)
		m.exitThread(ci, arg0)

	case isa.SysThreadCreate:
		tid := m.spawn(arg0, arg1)
		finish(uint64(tid))

	case isa.SysThreadJoin:
		target := TID(arg0)
		if int(target) >= len(m.threads) || target == t.ID {
			finish(^uint64(0))
			return
		}
		tt := m.threads[target]
		if tt.state == stExited {
			finish(tt.exitCode)
			return
		}
		tt.joiners = append(tt.joiners, t.ID)
		m.blockCurrent(ci)
		// Re-execute the join on wake to pick up the exit code.

	case isa.SysLock:
		l := m.locks[arg0]
		if l == nil {
			l = &lockState{owner: -1}
			m.locks[arg0] = l
		}
		if l.owner < 0 || l.owner == t.ID {
			// Free, or ownership was transferred to us by the unlocker and
			// we are re-executing the SysLock after waking.
			l.owner = t.ID
			finish(0)
			return
		}
		l.waiters = append(l.waiters, lockWaiter{tid: t.ID})
		m.blockCurrent(ci)
		// The unlocker transfers ownership; on wake the thread re-executes
		// SysLock, finds itself the owner, and proceeds.

	case isa.SysUnlock:
		l := m.locks[arg0]
		if l == nil || l.owner != t.ID {
			finish(^uint64(0)) // unlock of unowned mutex
			return
		}
		m.handoff(ci, arg0, l)
		finish(0)

	case isa.SysCondWait:
		cv := m.conds[arg0]
		if cv == nil {
			cv = &condState{}
			m.conds[arg0] = cv
		}
		// Release the mutex in arg1.
		if l := m.locks[arg1]; l != nil && l.owner == t.ID {
			m.handoff(ci, arg1, l)
		}
		cv.waiters = append(cv.waiters, condWaiter{tid: t.ID, mutex: arg1})
		// Record the wait as completed *now* (the release edge); the wake
		// side re-acquires via the lock path below.
		t.Regs[isa.R0] = 0
		advance()
		sev := SyscallEvent{TID: t.ID, Core: ci, PC: pc, TSC: m.cycle, Sys: sys,
			Arg0: arg0, Arg1: arg1, Arg2: arg2}
		m.stats.SyncOps++
		if stall := m.cfg.Tracer.SyscallRetired(&sev); stall > 0 {
			m.stallCore(ci, stall)
		}
		m.blockCurrent(ci)

	case isa.SysCondSignal, isa.SysCondBroadcast:
		cv := m.conds[arg0]
		n := 0
		if cv != nil {
			n = len(cv.waiters)
			if sys == isa.SysCondSignal && n > 1 {
				n = 1
			}
			for i := 0; i < n; i++ {
				w := cv.waiters[i]
				m.acquireOnWake(ci, w.tid, arg0, w.mutex)
			}
			cv.waiters = cv.waiters[n:]
		}
		finish(uint64(n))

	case isa.SysBarrier:
		b := m.barriers[arg0]
		if b == nil {
			b = &barrierState{}
			m.barriers[arg0] = b
		}
		b.arrived = append(b.arrived, t.ID)
		if uint64(len(b.arrived)) >= arg1 {
			for _, w := range b.arrived {
				if w != t.ID {
					m.wake(w)
					tw := m.threads[w]
					tw.Regs[isa.R0] = 0
					tw.PC += isa.InstSize
					m.notify(ci, w, isa.SysBarrierWake, arg0, 0)
				}
			}
			b.arrived = nil
			finish(0)
			return
		}
		// Block without advancing; the releaser advances us.
		sev := SyscallEvent{TID: t.ID, Core: ci, PC: pc, TSC: m.cycle, Sys: sys,
			Arg0: arg0, Arg1: arg1}
		m.stats.SyncOps++
		if stall := m.cfg.Tracer.SyscallRetired(&sev); stall > 0 {
			m.stallCore(ci, stall)
		}
		m.blockCurrent(ci)

	case isa.SysMalloc:
		finish(m.malloc(arg0))

	case isa.SysFree:
		m.free(arg0)
		finish(0)

	case isa.SysNetIO:
		bytes := arg0
		dur := m.cfg.NetLatencyCycles + uint64(float64(bytes)*m.cfg.NetCyclesPerByte)
		finishAt := m.cycle + dur
		t.Regs[isa.R0] = 0
		advance()
		sev := SyscallEvent{TID: t.ID, Core: ci, PC: pc, TSC: m.cycle, Sys: sys, Arg0: arg0}
		if stall := m.cfg.Tracer.SyscallRetired(&sev); stall > 0 {
			m.stallCore(ci, stall)
		}
		m.sleepCurrent(ci, finishAt)

	case isa.SysFileIO:
		bytes := arg0
		start := m.fileBusFree
		if start < m.cycle {
			start = m.cycle
		}
		dur := m.cfg.FileLatencyCycles + uint64(float64(bytes)*m.cfg.FileCyclesPerByte)
		m.fileBusFree = start + dur
		t.Regs[isa.R0] = 0
		advance()
		sev := SyscallEvent{TID: t.ID, Core: ci, PC: pc, TSC: m.cycle, Sys: sys, Arg0: arg0}
		if stall := m.cfg.Tracer.SyscallRetired(&sev); stall > 0 {
			m.stallCore(ci, stall)
		}
		m.sleepCurrent(ci, start+dur)

	case isa.SysLog:
		m.logBytes += arg1
		finish(0)

	case isa.SysYield:
		finish(0)
		m.preempt(ci)

	case isa.SysTSC:
		finish(m.cycle)

	case isa.SysRand:
		finish(m.rng.Uint64())

	default:
		finish(^uint64(0))
	}
}

// handoff releases a mutex held by the current thread, transferring
// ownership to the first waiter if any, and emitting the cond-wake
// notification when the new owner is a resuming condition waiter.
func (m *Machine) handoff(ci int, lockAddr uint64, l *lockState) {
	if len(l.waiters) == 0 {
		l.owner = -1
		return
	}
	next := l.waiters[0]
	l.waiters = l.waiters[1:]
	l.owner = next.tid
	m.wake(next.tid)
	if next.cond != 0 {
		m.notify(ci, next.tid, isa.SysCondWake, next.cond, lockAddr)
	}
}

// acquireOnWake resumes a cond waiter: it must reacquire its mutex before
// becoming runnable. The waiter's PC has already been advanced past the
// SysCondWait instruction.
func (m *Machine) acquireOnWake(ci int, tid TID, cond, mutex uint64) {
	l := m.locks[mutex]
	if l == nil {
		l = &lockState{owner: -1}
		m.locks[mutex] = l
	}
	if l.owner < 0 {
		l.owner = tid
		m.wake(tid)
		m.notify(ci, tid, isa.SysCondWake, cond, mutex)
		return
	}
	l.waiters = append(l.waiters, lockWaiter{tid: tid, cond: cond})
}

// notify delivers a machine-internal wake event (SysCondWake or
// SysBarrierWake) for a resuming waiter to the tracer. It is the moment the
// user-level blocking call returns in thread tid.
func (m *Machine) notify(ci int, tid TID, sys isa.Sys, arg0, arg1 uint64) {
	t := m.threads[tid]
	sev := SyscallEvent{
		TID: tid, Core: ci, PC: t.PC, TSC: m.cycle, Sys: sys,
		Arg0: arg0, Arg1: arg1,
	}
	if stall := m.cfg.Tracer.SyscallRetired(&sev); stall > 0 {
		m.stallCore(ci, stall)
	}
}

// malloc implements a bump allocator with size-class free lists. Freed
// blocks are reused first, so the address-reuse scenario of §4.3 (an old
// object's address handed to a new object) occurs naturally and exercises
// the detector's malloc/free generation tracking.
func (m *Machine) malloc(size uint64) uint64 {
	if size == 0 {
		size = 1
	}
	cls := (size + 15) &^ 15
	if fl := m.freeLists[cls]; len(fl) > 0 {
		addr := fl[len(fl)-1]
		m.freeLists[cls] = fl[:len(fl)-1]
		m.allocSize[addr] = cls
		// Zeroing on reuse would mask stale-value bugs; real malloc does
		// not zero, and neither do we.
		return addr
	}
	addr := m.heapNext
	m.heapNext += cls
	m.allocSize[addr] = cls
	return addr
}

func (m *Machine) free(addr uint64) {
	cls, ok := m.allocSize[addr]
	if !ok {
		return // double free or wild free: ignored, as glibc may
	}
	delete(m.allocSize, addr)
	m.freeLists[cls] = append(m.freeLists[cls], addr)
}
