package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
	}{
		{R0, "r0"}, {R7, "r7"}, {R14, "r14"}, {SP, "sp"}, {NoReg, "-"}, {Reg(42), "r?42"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Reg(%d).String() = %q, want %q", uint8(c.r), got, c.want)
		}
	}
}

func TestRegValid(t *testing.T) {
	for r := Reg(0); r < NumRegs; r++ {
		if !r.Valid() {
			t.Errorf("register %v should be valid", r)
		}
	}
	if Reg(16).Valid() || NoReg.Valid() {
		t.Error("out-of-range registers must be invalid")
	}
}

func TestOpNamesComplete(t *testing.T) {
	for o := Op(0); o < numOps; o++ {
		if opNames[o] == "" {
			t.Errorf("opcode %d has no name", uint8(o))
		}
	}
	if Op(200).Valid() {
		t.Error("Op(200) must be invalid")
	}
}

func TestSysNamesComplete(t *testing.T) {
	for s := Sys(0); s < numSys; s++ {
		if sysNames[s] == "" {
			t.Errorf("syscall %d has no name", uint16(s))
		}
	}
}

func TestEffectiveAddress(t *testing.T) {
	regs := map[Reg]uint64{R1: 0x1000, R2: 3}
	rd := func(r Reg) uint64 { return regs[r] }
	cases := []struct {
		name string
		in   Inst
		pc   uint64
		want uint64
	}{
		{"base", Inst{Op: LOAD, Mode: ModeBase, Base: R1, Disp: 8}, 0, 0x1008},
		{"base-neg", Inst{Op: LOAD, Mode: ModeBase, Base: R1, Disp: -16}, 0, 0xFF0},
		{"base-index", Inst{Op: STORE, Mode: ModeBaseIndex, Base: R1, Index: R2, Scale: 8, Disp: 4}, 0, 0x1000 + 24 + 4},
		{"pcrel", Inst{Op: LOAD, Mode: ModePCRel, Disp: 0x100}, CodeBase, CodeBase + InstSize + 0x100},
		{"abs", Inst{Op: LOAD, Mode: ModeAbs, Disp: 0x600010}, 0, 0x600010},
	}
	for _, c := range cases {
		if got := c.in.EffectiveAddress(rd, c.pc); got != c.want {
			t.Errorf("%s: EffectiveAddress = %#x, want %#x", c.name, got, c.want)
		}
	}
}

func TestAddrRegs(t *testing.T) {
	i := Inst{Op: LOAD, Mode: ModeBaseIndex, Base: R3, Index: R4, Scale: 4}
	got := i.AddrRegs()
	if len(got) != 2 || got[0] != R3 || got[1] != R4 {
		t.Errorf("AddrRegs = %v, want [r3 r4]", got)
	}
	if n := len((Inst{Op: LOAD, Mode: ModePCRel}).AddrRegs()); n != 0 {
		t.Errorf("PC-relative operand must use no registers, got %d", n)
	}
	if n := len((Inst{Op: ADD, Rd: R0, Rs: R1}).AddrRegs()); n != 0 {
		t.Errorf("non-memory instruction must have no address registers, got %d", n)
	}
}

func TestUsesDefs(t *testing.T) {
	cases := []struct {
		in   Inst
		uses []Reg
		defs []Reg
	}{
		{Inst{Op: MOVI, Rd: R1, Imm: 5}, nil, []Reg{R1}},
		{Inst{Op: MOV, Rd: R1, Rs: R2}, []Reg{R2}, []Reg{R1}},
		{Inst{Op: LOAD, Rd: R1, Mode: ModeBase, Base: R2}, []Reg{R2}, []Reg{R1}},
		{Inst{Op: STORE, Rs: R1, Mode: ModeBaseIndex, Base: R2, Index: R3, Scale: 1}, []Reg{R1, R2, R3}, nil},
		{Inst{Op: ADD, Rd: R1, Rs: R2}, []Reg{R1, R2}, []Reg{R1}},
		{Inst{Op: ADDI, Rd: R1, Imm: 3}, []Reg{R1}, []Reg{R1}},
		{Inst{Op: CMP, Rd: R1, Rs: R2}, []Reg{R1, R2}, nil},
		{Inst{Op: JMPR, Rs: R5}, []Reg{R5}, nil},
		{Inst{Op: RET}, nil, nil},
	}
	for _, c := range cases {
		if got := c.in.Uses(); !regSetEqual(got, c.uses) {
			t.Errorf("%v: Uses = %v, want %v", c.in, got, c.uses)
		}
		if got := c.in.Defs(); !regSetEqual(got, c.defs) {
			t.Errorf("%v: Defs = %v, want %v", c.in, got, c.defs)
		}
	}
}

func regSetEqual(a, b []Reg) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[Reg]int{}
	for _, r := range a {
		m[r]++
	}
	for _, r := range b {
		m[r]--
	}
	for _, n := range m {
		if n != 0 {
			return false
		}
	}
	return true
}

func TestCompareAndBranchTaken(t *testing.T) {
	f := Compare(3, 5)
	if !f.LT || f.EQ {
		t.Fatalf("Compare(3,5) = %+v", f)
	}
	f2 := Compare(7, 7)
	if !f2.EQ || f2.LT {
		t.Fatalf("Compare(7,7) = %+v", f2)
	}
	// Signed comparison.
	fneg := Compare(^uint64(0), 1) // -1 < 1
	if !fneg.LT {
		t.Fatalf("Compare(-1,1) must be LT, got %+v", fneg)
	}
	cases := []struct {
		op    Op
		f     Flags
		taken bool
	}{
		{JEQ, Flags{EQ: true}, true},
		{JEQ, Flags{}, false},
		{JNE, Flags{}, true},
		{JLT, Flags{LT: true}, true},
		{JLE, Flags{EQ: true}, true},
		{JLE, Flags{}, false},
		{JGT, Flags{}, true},
		{JGT, Flags{EQ: true}, false},
		{JGE, Flags{LT: true}, false},
		{JGE, Flags{EQ: true}, true},
	}
	for _, c := range cases {
		if got := BranchTaken(c.op, c.f); got != c.taken {
			t.Errorf("BranchTaken(%v, %+v) = %v, want %v", c.op, c.f, got, c.taken)
		}
	}
}

func TestBranchTakenPanicsOnNonConditional(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("BranchTaken(JMP, ...) must panic")
		}
	}()
	BranchTaken(JMP, Flags{})
}

func TestALU(t *testing.T) {
	cases := []struct {
		in       Inst
		dst, src uint64
		want     uint64
	}{
		{Inst{Op: ADD}, 2, 3, 5},
		{Inst{Op: SUB}, 2, 3, ^uint64(0)},
		{Inst{Op: MUL}, 4, 3, 12},
		{Inst{Op: AND}, 0b1100, 0b1010, 0b1000},
		{Inst{Op: OR}, 0b1100, 0b1010, 0b1110},
		{Inst{Op: XOR}, 0b1100, 0b1010, 0b0110},
		{Inst{Op: SHL}, 1, 4, 16},
		{Inst{Op: SHR}, 16, 4, 1},
		{Inst{Op: SHL}, 1, 64, 1}, // shift counts are mod 64
		{Inst{Op: ADDI, Imm: 7}, 10, 999, 17},
		{Inst{Op: SUBI, Imm: 7}, 10, 999, 3},
		{Inst{Op: XORI, Imm: 0xFF}, 0x0F, 999, 0xF0},
	}
	for _, c := range cases {
		got, ok := c.in.ALU(c.dst, c.src)
		if !ok || got != c.want {
			t.Errorf("%v.ALU(%d,%d) = %d,%v want %d", c.in, c.dst, c.src, got, ok, c.want)
		}
	}
	if _, ok := (Inst{Op: MOV}).ALU(1, 2); ok {
		t.Error("MOV must not be an ALU op")
	}
}

func TestInvertRoundTrip(t *testing.T) {
	insts := []Inst{
		{Op: ADDI, Rd: R0, Imm: 42},
		{Op: SUBI, Rd: R0, Imm: -9},
		{Op: XORI, Rd: R0, Imm: 0x5A5A},
	}
	rng := rand.New(rand.NewSource(1))
	for _, in := range insts {
		if !in.Invertible() {
			t.Fatalf("%v must be invertible", in)
		}
		for k := 0; k < 100; k++ {
			pre := rng.Uint64()
			post, ok := in.ALU(pre, 0)
			if !ok {
				t.Fatalf("%v: ALU failed", in)
			}
			back, ok := in.Invert(post)
			if !ok || back != pre {
				t.Fatalf("%v: Invert(%d) = %d, want %d", in, post, back, pre)
			}
		}
	}
	if (Inst{Op: MULI, Imm: 2}).Invertible() {
		t.Error("MULI must not be invertible (not a bijection for even factors)")
	}
	if _, ok := (Inst{Op: ANDI}).Invert(0); ok {
		t.Error("Invert must fail on ANDI")
	}
}

func TestInvertRegPair(t *testing.T) {
	// ADD r1, r2:  post = pre + src.
	add := Inst{Op: ADD, Rd: R1, Rs: R2}
	pre, src := uint64(100), uint64(42)
	post := pre + src
	if got, ok := add.InvertRegPair(post, src, true); !ok || got != pre {
		t.Errorf("ADD recover pre: got %d,%v want %d", got, ok, pre)
	}
	if got, ok := add.InvertRegPair(post, pre, false); !ok || got != src {
		t.Errorf("ADD recover src: got %d,%v want %d", got, ok, src)
	}
	// SUB r1, r2: post = pre - src.
	sub := Inst{Op: SUB, Rd: R1, Rs: R2}
	post = pre - src
	if got, ok := sub.InvertRegPair(post, src, true); !ok || got != pre {
		t.Errorf("SUB recover pre: got %d,%v want %d", got, ok, pre)
	}
	if got, ok := sub.InvertRegPair(post, pre, false); !ok || got != src {
		t.Errorf("SUB recover src: got %d,%v want %d", got, ok, src)
	}
	if _, ok := (Inst{Op: MUL}).InvertRegPair(0, 0, true); ok {
		t.Error("InvertRegPair must fail on MUL")
	}
}

func TestClassifiers(t *testing.T) {
	if !(Inst{Op: LOAD, Mode: ModeBase, Base: R0}).IsMemAccess() {
		t.Error("LOAD must be a memory access")
	}
	if !(Inst{Op: STORE, Mode: ModeAbs}).IsStore() {
		t.Error("STORE must be a store")
	}
	if (Inst{Op: LEA, Mode: ModeBase, Base: R0}).IsMemAccess() {
		t.Error("LEA must not be a memory access")
	}
	if !(Inst{Op: LEA, Mode: ModeBase, Base: R0}).HasMemOperand() {
		t.Error("LEA must have a memory operand")
	}
	if !(Inst{Op: JEQ}).IsCondBranch() || (Inst{Op: JMP}).IsCondBranch() {
		t.Error("conditional-branch classification wrong")
	}
	if !(Inst{Op: RET}).IsIndirectBranch() || (Inst{Op: CALL}).IsIndirectBranch() {
		t.Error("indirect-branch classification wrong")
	}
	if (Inst{Op: JMP}).FallThrough() || !(Inst{Op: JEQ}).FallThrough() {
		t.Error("fall-through classification wrong")
	}
	if (Inst{Op: SYSCALL, Sys: SysExit}).FallThrough() {
		t.Error("exit must not fall through")
	}
	if !(Inst{Op: SYSCALL, Sys: SysLock}).FallThrough() {
		t.Error("lock must fall through")
	}
	if !(Inst{Op: HALT}).EndsBlock() || (Inst{Op: ADD}).EndsBlock() {
		t.Error("block-end classification wrong")
	}
}

// randomInst produces a valid random instruction for property tests.
func randomInst(rng *rand.Rand) Inst {
	for {
		i := Inst{
			Op:    Op(rng.Intn(int(numOps))),
			Rd:    Reg(rng.Intn(NumRegs)),
			Rs:    Reg(rng.Intn(NumRegs)),
			Base:  Reg(rng.Intn(NumRegs)),
			Index: Reg(rng.Intn(NumRegs)),
			Scale: []uint8{1, 2, 4, 8}[rng.Intn(4)],
			Disp:  rng.Int63n(1<<32) - 1<<31,
			Imm:   rng.Int63n(1<<32) - 1<<31,
		}
		switch i.Op {
		case LOAD, STORE, LEA:
			i.Mode = Mode(1 + rng.Intn(int(numModes)-1))
		case SYSCALL:
			i.Sys = Sys(rng.Intn(int(numSys)))
		}
		return i
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	buf := make([]byte, InstSize)
	for k := 0; k < 5000; k++ {
		in := randomInst(rng)
		in.Encode(buf)
		out, err := Decode(buf)
		if err != nil {
			t.Fatalf("Decode(%v): %v", in, err)
		}
		// Normalize: non-memory instructions carry no meaningful operand
		// fields other than what Encode wrote, so compare directly.
		if out != in {
			t.Fatalf("round trip mismatch:\n in=%#v\nout=%#v", in, out)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	buf := make([]byte, InstSize)
	if _, err := Decode(buf[:5]); err == nil {
		t.Error("short buffer must fail")
	}
	buf[0] = byte(numOps) + 10
	if _, err := Decode(buf); err == nil {
		t.Error("invalid opcode must fail")
	}
	buf[0] = byte(LOAD)
	buf[6] = byte(numModes) + 1
	if _, err := Decode(buf); err == nil {
		t.Error("invalid mode must fail")
	}
	buf[6] = byte(ModeBaseIndex)
	buf[5] = 3 // invalid scale
	if _, err := Decode(buf); err == nil {
		t.Error("invalid scale must fail")
	}
	buf[0] = byte(SYSCALL)
	buf[5] = 1
	buf[6] = byte(ModeNone)
	binary := []byte{0xFF, 0xFF}
	copy(buf[8:], binary)
	if _, err := Decode(buf); err == nil {
		t.Error("invalid syscall must fail")
	}
}

func TestEncodeDecodeProgram(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	insts := make([]Inst, 300)
	for k := range insts {
		insts[k] = randomInst(rng)
	}
	text := EncodeProgram(insts)
	if len(text) != len(insts)*int(InstSize) {
		t.Fatalf("text size %d", len(text))
	}
	back, err := DecodeProgram(text)
	if err != nil {
		t.Fatal(err)
	}
	for k := range insts {
		if back[k] != insts[k] {
			t.Fatalf("instruction %d mismatch", k)
		}
	}
	if _, err := DecodeProgram(text[:len(text)-1]); err == nil {
		t.Error("truncated text must fail")
	}
}

func TestAddrIndexConversion(t *testing.T) {
	for _, idx := range []int{0, 1, 17, 100000} {
		addr := IndexToAddr(idx)
		back, ok := AddrToIndex(addr)
		if !ok || back != idx {
			t.Errorf("round trip idx %d -> %#x -> %d,%v", idx, addr, back, ok)
		}
	}
	if _, ok := AddrToIndex(CodeBase + 1); ok {
		t.Error("unaligned address must fail")
	}
	if _, ok := AddrToIndex(CodeBase - InstSize); ok {
		t.Error("address below CodeBase must fail")
	}
}

// Property: for every instruction, Defs ⊆ {Rd, R0} and address registers
// are always in Uses.
func TestQuickUsesContainAddrRegs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for k := 0; k < 2000; k++ {
		in := randomInst(rng)
		uses := map[Reg]bool{}
		for _, r := range in.Uses() {
			uses[r] = true
		}
		for _, r := range in.AddrRegs() {
			if !uses[r] {
				t.Fatalf("%v: address register %v missing from Uses %v", in, r, in.Uses())
			}
		}
	}
}

// Property (testing/quick): ADDI/SUBI/XORI invert exactly for all inputs.
func TestQuickInvertBijection(t *testing.T) {
	f := func(pre uint64, imm int64, which uint8) bool {
		ops := []Op{ADDI, SUBI, XORI}
		in := Inst{Op: ops[int(which)%3], Rd: R0, Imm: imm}
		post, ok := in.ALU(pre, 0)
		if !ok {
			return false
		}
		back, ok := in.Invert(post)
		return ok && back == pre
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property (testing/quick): Compare is a total order discriminator.
func TestQuickCompare(t *testing.T) {
	f := func(a, b uint64) bool {
		fl := Compare(a, b)
		if a == b {
			return fl.EQ && !fl.LT
		}
		return !fl.EQ && fl.LT == (int64(a) < int64(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDisassembleStable(t *testing.T) {
	insts := []Inst{
		{Op: MOVI, Rd: R1, Imm: 42},
		{Op: LOAD, Rd: R2, Mode: ModePCRel, Disp: 0x100},
		{Op: STORE, Rs: R2, Mode: ModeBaseIndex, Base: R1, Index: R3, Scale: 8, Disp: -8},
		{Op: SYSCALL, Sys: SysLock},
		{Op: JEQ, Imm: int64(IndexToAddr(0))},
		{Op: HALT},
	}
	out := Disassemble(insts)
	for _, want := range []string{"movi r1, 42", "load r2, 256(pc)", "store -8(r1,r3,8), r2", "syscall lock", "jeq 0x400000", "halt"} {
		if !contains(out, want) {
			t.Errorf("disassembly missing %q in:\n%s", want, out)
		}
	}
}

func contains(haystack, needle string) bool {
	return len(haystack) >= len(needle) && (func() bool {
		for i := 0; i+len(needle) <= len(haystack); i++ {
			if haystack[i:i+len(needle)] == needle {
				return true
			}
		}
		return false
	})()
}
