// Package isa defines the instruction set architecture of the simulated
// machine that stands in for x86-64 in this reproduction of ProRace
// (ASPLOS 2017).
//
// The ISA is a small 64-bit load/store architecture with x86-flavoured
// memory addressing. It deliberately preserves the properties ProRace's
// offline replay engine depends on:
//
//   - base+index*scale+disp and PC-relative addressing modes, so the three
//     racy-access categories of the paper's Table 2 (memory indirect,
//     register indirect, PC relative) are expressible;
//   - a general-purpose register file whose full contents a PEBS sample
//     snapshots, so forward replay can restore architectural state;
//   - invertible arithmetic (ADD/SUB with an immediate, register moves),
//     so backward replay's reverse execution has something to invert.
//
// Instructions are fixed width (see encode.go) and addressed from
// CodeBase upward, one InstSize per instruction.
package isa

import "fmt"

// Reg names a general-purpose register. The machine has 16 of them,
// R0..R15. By convention R15 is the stack pointer and R0..R5 carry
// syscall and call arguments, but nothing in the ISA enforces this.
type Reg uint8

// General-purpose registers.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15

	// NumRegs is the size of the register file.
	NumRegs = 16

	// SP is the conventional stack pointer.
	SP = R15
)

// NoReg marks an unused register slot in an instruction.
const NoReg Reg = 0xFF

// Valid reports whether r names one of the 16 architectural registers.
func (r Reg) Valid() bool { return r < NumRegs }

// String returns the assembler name of the register ("r0".."r15", "sp").
func (r Reg) String() string {
	switch {
	case r == SP:
		return "sp"
	case r == NoReg:
		return "-"
	case r.Valid():
		return fmt.Sprintf("r%d", uint8(r))
	default:
		return fmt.Sprintf("r?%d", uint8(r))
	}
}

// Op is an instruction opcode.
type Op uint8

// Opcodes. The arithmetic group comes in register (rd = rd OP rs) and
// immediate (rd = rd OP imm) forms; the immediate forms of ADD and SUB are
// the reverse-executable ones ProRace's backward replay exploits.
const (
	NOP Op = iota

	// Data movement.
	MOVI // rd = imm
	MOV  // rd = rs
	LEA  // rd = effective address of memory operand

	// Memory access. The memory operand is described by Mode/Base/Index/
	// Scale/Disp. LOAD reads into rd; STORE writes rs.
	LOAD
	STORE

	// Arithmetic and logic, register forms: rd = rd OP rs.
	ADD
	SUB
	MUL
	AND
	OR
	XOR
	SHL
	SHR

	// Arithmetic and logic, immediate forms: rd = rd OP imm.
	ADDI
	SUBI
	MULI
	ANDI
	ORI
	XORI
	SHLI
	SHRI

	// Comparison: sets the thread's flags from (rs1 - rs2) or (rs1 - imm).
	// In instruction encoding rs1 is the Rd slot and rs2 the Rs slot.
	CMP
	CMPI

	// Control flow. Direct targets are absolute instruction addresses
	// stored in Imm; JMPR/CALLR jump through a register (Rs).
	JMP
	JEQ
	JNE
	JLT
	JLE
	JGT
	JGE
	JMPR
	CALL
	CALLR
	RET

	// SYSCALL invokes the machine service named by the Sys field.
	SYSCALL

	// HALT stops the executing thread.
	HALT

	numOps
)

var opNames = [...]string{
	NOP: "nop", MOVI: "movi", MOV: "mov", LEA: "lea",
	LOAD: "load", STORE: "store",
	ADD: "add", SUB: "sub", MUL: "mul", AND: "and", OR: "or", XOR: "xor", SHL: "shl", SHR: "shr",
	ADDI: "addi", SUBI: "subi", MULI: "muli", ANDI: "andi", ORI: "ori", XORI: "xori", SHLI: "shli", SHRI: "shri",
	CMP: "cmp", CMPI: "cmpi",
	JMP: "jmp", JEQ: "jeq", JNE: "jne", JLT: "jlt", JLE: "jle", JGT: "jgt", JGE: "jge",
	JMPR: "jmpr", CALL: "call", CALLR: "callr", RET: "ret",
	SYSCALL: "syscall", HALT: "halt",
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o < numOps }

// String returns the assembler mnemonic.
func (o Op) String() string {
	if o.Valid() {
		return opNames[o]
	}
	return fmt.Sprintf("op?%d", uint8(o))
}

// Mode selects how a LOAD/STORE/LEA computes its effective address.
type Mode uint8

const (
	// ModeNone marks instructions without a memory operand.
	ModeNone Mode = iota
	// ModeBase addresses [Base + Disp].
	ModeBase
	// ModeBaseIndex addresses [Base + Index*Scale + Disp].
	ModeBaseIndex
	// ModePCRel addresses [PC + Disp], PC being the address of the *next*
	// instruction (as on x86-64 RIP-relative addressing). The program
	// counter is always known during replay, so PC-relative accesses are
	// always reconstructible — the property behind the 100% detection
	// rows of the paper's Table 2.
	ModePCRel
	// ModeAbs addresses the absolute location Disp.
	ModeAbs

	numModes
)

// Valid reports whether m is a defined addressing mode.
func (m Mode) Valid() bool { return m < numModes }

// String names the addressing mode.
func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "none"
	case ModeBase:
		return "base"
	case ModeBaseIndex:
		return "base+index"
	case ModePCRel:
		return "pcrel"
	case ModeAbs:
		return "abs"
	default:
		return fmt.Sprintf("mode?%d", uint8(m))
	}
}

// Sys identifies a machine service invoked by SYSCALL. Arguments are passed
// in R0..R2 and results returned in R0, mirroring a conventional ABI.
type Sys uint16

const (
	// SysExit terminates the calling thread. R0 carries the exit code.
	SysExit Sys = iota
	// SysThreadCreate starts a new thread at the function whose address is
	// in R0, with R1 as its argument (delivered in the child's R0).
	// Returns the new thread ID in R0.
	SysThreadCreate
	// SysThreadJoin blocks until the thread whose ID is in R0 exits.
	SysThreadJoin
	// SysLock acquires the mutex at the address in R0 (blocking).
	SysLock
	// SysUnlock releases the mutex at the address in R0.
	SysUnlock
	// SysCondWait atomically releases the mutex in R1 and waits on the
	// condition variable at the address in R0, reacquiring on wake.
	SysCondWait
	// SysCondSignal wakes one waiter of the condition variable in R0.
	SysCondSignal
	// SysCondBroadcast wakes all waiters of the condition variable in R0.
	SysCondBroadcast
	// SysBarrier waits at the barrier in R0 until R1 threads arrive.
	SysBarrier
	// SysMalloc allocates R0 bytes; returns the address in R0.
	SysMalloc
	// SysFree releases the allocation at the address in R0.
	SysFree
	// SysNetIO performs network I/O of R0 bytes. The calling thread blocks
	// for the machine's network latency; the core is free meanwhile. This
	// is what lets tracing overhead hide under network-bound workloads
	// (paper §7.2, Figure 7).
	SysNetIO
	// SysFileIO performs file I/O of R0 bytes, consuming shared file
	// bandwidth. Trace writes consume the same bandwidth, so file-I/O
	// heavy workloads cannot hide tracing overhead.
	SysFileIO
	// SysLog appends R1 bytes from the address in R0 to the application
	// log. Used by the "corrupted log" bug workloads.
	SysLog
	// SysYield gives up the core for one scheduling quantum.
	SysYield
	// SysTSC returns the invariant timestamp counter in R0.
	SysTSC
	// SysRand returns a deterministic pseudo-random 64-bit value in R0
	// drawn from the machine's seeded stream.
	SysRand

	// SysCondWake and SysBarrierWake are machine-internal notification
	// events: the machine delivers them to the tracer when a blocked
	// condition or barrier waiter resumes, the moment the user-level
	// pthread call returns. Programs do not invoke them; they exist so
	// the synchronization trace carries the waker → waiter edge.
	SysCondWake
	SysBarrierWake

	numSys
)

var sysNames = [...]string{
	SysExit: "exit", SysThreadCreate: "thread_create", SysThreadJoin: "thread_join",
	SysLock: "lock", SysUnlock: "unlock",
	SysCondWait: "cond_wait", SysCondSignal: "cond_signal", SysCondBroadcast: "cond_broadcast",
	SysBarrier: "barrier",
	SysMalloc:  "malloc", SysFree: "free",
	SysNetIO: "net_io", SysFileIO: "file_io", SysLog: "log",
	SysYield: "yield", SysTSC: "tsc", SysRand: "rand",
	SysCondWake: "cond_wake", SysBarrierWake: "barrier_wake",
}

// Valid reports whether s is a defined syscall.
func (s Sys) Valid() bool { return s < numSys }

// String names the syscall.
func (s Sys) String() string {
	if s.Valid() {
		return sysNames[s]
	}
	return fmt.Sprintf("sys?%d", uint16(s))
}

// Memory layout constants.
const (
	// CodeBase is the address of the first instruction of a program.
	CodeBase uint64 = 0x0040_0000
	// InstSize is the size of one encoded instruction in bytes; instruction
	// addresses are CodeBase + index*InstSize.
	InstSize uint64 = 32
	// DataBase is the address of the first byte of the static data segment
	// (globals). PC-relative operands typically land here.
	DataBase uint64 = 0x0060_0000
	// HeapBase is where SysMalloc starts handing out memory.
	HeapBase uint64 = 0x1000_0000
	// StackTop is the initial stack pointer of thread 0; each subsequent
	// thread's stack is placed StackStride below the previous one.
	StackTop uint64 = 0x7FFF_0000
	// StackStride separates per-thread stacks.
	StackStride uint64 = 0x10_0000
)

// Inst is one decoded instruction. The zero value is a NOP.
type Inst struct {
	Op    Op
	Rd    Reg   // destination (or first comparand for CMP)
	Rs    Reg   // source (store value, second comparand, indirect target)
	Base  Reg   // memory operand base register
	Index Reg   // memory operand index register
	Scale uint8 // memory operand scale (1, 2, 4 or 8)
	Mode  Mode  // memory operand addressing mode
	Sys   Sys   // service for SYSCALL
	Disp  int64 // memory operand displacement
	Imm   int64 // immediate / absolute branch target
}

// HasMemOperand reports whether the instruction addresses memory.
func (i Inst) HasMemOperand() bool {
	return (i.Op == LOAD || i.Op == STORE || i.Op == LEA) && i.Mode != ModeNone
}

// IsLoad reports whether the instruction is a memory read. LEA computes an
// address but does not touch memory, so it is not a load.
func (i Inst) IsLoad() bool { return i.Op == LOAD }

// IsStore reports whether the instruction is a memory write.
func (i Inst) IsStore() bool { return i.Op == STORE }

// IsMemAccess reports whether the instruction reads or writes memory.
// These are the "retired load and store" events PEBS samples.
func (i Inst) IsMemAccess() bool { return i.Op == LOAD || i.Op == STORE }

// IsBranch reports whether the instruction can redirect control flow.
func (i Inst) IsBranch() bool {
	switch i.Op {
	case JMP, JEQ, JNE, JLT, JLE, JGT, JGE, JMPR, CALL, CALLR, RET:
		return true
	}
	return false
}

// IsCondBranch reports whether the instruction is a conditional branch,
// i.e. one PT records as a TNT (taken/not-taken) bit.
func (i Inst) IsCondBranch() bool {
	switch i.Op {
	case JEQ, JNE, JLT, JLE, JGT, JGE:
		return true
	}
	return false
}

// IsIndirectBranch reports whether the branch target comes from a register
// or the stack, i.e. one PT must record as a TIP (target IP) packet.
func (i Inst) IsIndirectBranch() bool {
	switch i.Op {
	case JMPR, CALLR, RET:
		return true
	}
	return false
}

// EffectiveAddress computes the memory operand address given the register
// read function and the address of the instruction itself. It is shared by
// the machine interpreter and the offline replay engine so the two can
// never disagree.
func (i Inst) EffectiveAddress(reg func(Reg) uint64, pc uint64) uint64 {
	switch i.Mode {
	case ModeBase:
		return reg(i.Base) + uint64(i.Disp)
	case ModeBaseIndex:
		return reg(i.Base) + reg(i.Index)*uint64(i.Scale) + uint64(i.Disp)
	case ModePCRel:
		return pc + InstSize + uint64(i.Disp)
	case ModeAbs:
		return uint64(i.Disp)
	default:
		return 0
	}
}

// AddrRegs returns the registers that participate in the effective-address
// computation. PC-relative and absolute operands need none — the property
// that makes them always reconstructible offline.
func (i Inst) AddrRegs() []Reg { return i.AppendAddrRegs(nil) }

// AppendAddrRegs appends the address registers to buf and returns it.
// With a caller-provided buffer of capacity ≥ 2 it does not allocate,
// which matters in the replay inner loops that query every instruction.
func (i Inst) AppendAddrRegs(buf []Reg) []Reg {
	if !i.HasMemOperand() {
		return buf
	}
	switch i.Mode {
	case ModeBase:
		return append(buf, i.Base)
	case ModeBaseIndex:
		return append(buf, i.Base, i.Index)
	default:
		return buf
	}
}
