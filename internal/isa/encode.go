package isa

import (
	"encoding/binary"
	"fmt"
)

// Binary instruction encoding. Instructions are a fixed InstSize (32) bytes,
// little endian:
//
//	offset 0  op     (1 byte)
//	offset 1  rd     (1 byte)
//	offset 2  rs     (1 byte)
//	offset 3  base   (1 byte)
//	offset 4  index  (1 byte)
//	offset 5  scale  (1 byte)
//	offset 6  mode   (1 byte)
//	offset 7  pad    (1 byte, zero)
//	offset 8  sys    (2 bytes)
//	offset 10 pad    (6 bytes, zero)
//	offset 16 disp   (8 bytes, signed)
//	offset 24 imm    (8 bytes, signed)
//
// A fixed width keeps address arithmetic trivial (address = CodeBase +
// index*InstSize) and lets the PT decoder and the replay engine seek into
// the text segment without a length-decoding pass.

// Encode writes the instruction into dst, which must be at least InstSize
// bytes long, and returns InstSize.
func (i Inst) Encode(dst []byte) int {
	_ = dst[InstSize-1]
	dst[0] = byte(i.Op)
	dst[1] = byte(i.Rd)
	dst[2] = byte(i.Rs)
	dst[3] = byte(i.Base)
	dst[4] = byte(i.Index)
	dst[5] = i.Scale
	dst[6] = byte(i.Mode)
	dst[7] = 0
	binary.LittleEndian.PutUint16(dst[8:], uint16(i.Sys))
	for k := 10; k < 16; k++ {
		dst[k] = 0
	}
	binary.LittleEndian.PutUint64(dst[16:], uint64(i.Disp))
	binary.LittleEndian.PutUint64(dst[24:], uint64(i.Imm))
	return int(InstSize)
}

// Decode parses one instruction from src, which must hold at least InstSize
// bytes. It returns an error for malformed encodings (unknown opcode or
// addressing mode), mirroring what a disassembler hits on garbage bytes.
func Decode(src []byte) (Inst, error) {
	if len(src) < int(InstSize) {
		return Inst{}, fmt.Errorf("isa: short instruction: %d bytes", len(src))
	}
	i := Inst{
		Op:    Op(src[0]),
		Rd:    Reg(src[1]),
		Rs:    Reg(src[2]),
		Base:  Reg(src[3]),
		Index: Reg(src[4]),
		Scale: src[5],
		Mode:  Mode(src[6]),
		Sys:   Sys(binary.LittleEndian.Uint16(src[8:])),
		Disp:  int64(binary.LittleEndian.Uint64(src[16:])),
		Imm:   int64(binary.LittleEndian.Uint64(src[24:])),
	}
	if !i.Op.Valid() {
		return Inst{}, fmt.Errorf("isa: invalid opcode %d", src[0])
	}
	if !i.Mode.Valid() {
		return Inst{}, fmt.Errorf("isa: invalid addressing mode %d", src[6])
	}
	if i.Op == SYSCALL && !i.Sys.Valid() {
		return Inst{}, fmt.Errorf("isa: invalid syscall %d", uint16(i.Sys))
	}
	if i.HasMemOperand() && i.Mode == ModeBaseIndex {
		switch i.Scale {
		case 1, 2, 4, 8:
		default:
			return Inst{}, fmt.Errorf("isa: invalid scale %d", i.Scale)
		}
	}
	return i, nil
}

// EncodeProgram concatenates the encodings of insts.
func EncodeProgram(insts []Inst) []byte {
	out := make([]byte, len(insts)*int(InstSize))
	for k, in := range insts {
		in.Encode(out[k*int(InstSize):])
	}
	return out
}

// DecodeProgram parses a text segment produced by EncodeProgram.
func DecodeProgram(text []byte) ([]Inst, error) {
	if len(text)%int(InstSize) != 0 {
		return nil, fmt.Errorf("isa: text size %d not a multiple of %d", len(text), InstSize)
	}
	insts := make([]Inst, len(text)/int(InstSize))
	for k := range insts {
		in, err := Decode(text[k*int(InstSize):])
		if err != nil {
			return nil, fmt.Errorf("isa: instruction %d: %w", k, err)
		}
		insts[k] = in
	}
	return insts, nil
}

// AddrToIndex converts an instruction address to its index in the text
// segment; ok is false if the address is unaligned or below CodeBase.
func AddrToIndex(addr uint64) (int, bool) {
	if addr < CodeBase || (addr-CodeBase)%InstSize != 0 {
		return 0, false
	}
	return int((addr - CodeBase) / InstSize), true
}

// IndexToAddr converts a text-segment index to its instruction address.
func IndexToAddr(idx int) uint64 { return CodeBase + uint64(idx)*InstSize }
