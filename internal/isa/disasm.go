package isa

import (
	"fmt"
	"strings"
)

// memOperandString renders the memory operand in a gas-like syntax.
func (i Inst) memOperandString() string {
	switch i.Mode {
	case ModeBase:
		return fmt.Sprintf("%d(%s)", i.Disp, i.Base)
	case ModeBaseIndex:
		return fmt.Sprintf("%d(%s,%s,%d)", i.Disp, i.Base, i.Index, i.Scale)
	case ModePCRel:
		return fmt.Sprintf("%d(pc)", i.Disp)
	case ModeAbs:
		return fmt.Sprintf("*0x%x", uint64(i.Disp))
	default:
		return "?"
	}
}

// String disassembles the instruction.
func (i Inst) String() string {
	switch i.Op {
	case NOP, RET, HALT:
		return i.Op.String()
	case MOVI:
		return fmt.Sprintf("movi %s, %d", i.Rd, i.Imm)
	case MOV:
		return fmt.Sprintf("mov %s, %s", i.Rd, i.Rs)
	case LEA:
		return fmt.Sprintf("lea %s, %s", i.Rd, i.memOperandString())
	case LOAD:
		return fmt.Sprintf("load %s, %s", i.Rd, i.memOperandString())
	case STORE:
		return fmt.Sprintf("store %s, %s", i.memOperandString(), i.Rs)
	case ADD, SUB, MUL, AND, OR, XOR, SHL, SHR:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Rd, i.Rs)
	case ADDI, SUBI, MULI, ANDI, ORI, XORI, SHLI, SHRI:
		return fmt.Sprintf("%s %s, %d", i.Op, i.Rd, i.Imm)
	case CMP:
		return fmt.Sprintf("cmp %s, %s", i.Rd, i.Rs)
	case CMPI:
		return fmt.Sprintf("cmpi %s, %d", i.Rd, i.Imm)
	case JMP, JEQ, JNE, JLT, JLE, JGT, JGE, CALL:
		return fmt.Sprintf("%s 0x%x", i.Op, uint64(i.Imm))
	case JMPR, CALLR:
		return fmt.Sprintf("%s %s", i.Op, i.Rs)
	case SYSCALL:
		return fmt.Sprintf("syscall %s", i.Sys)
	default:
		return fmt.Sprintf("op?%d", uint8(i.Op))
	}
}

// Disassemble renders a full text segment with addresses, one instruction
// per line, in a format suitable for debugging dumps.
func Disassemble(insts []Inst) string {
	var b strings.Builder
	for k, in := range insts {
		fmt.Fprintf(&b, "%08x:  %s\n", IndexToAddr(k), in)
	}
	return b.String()
}
