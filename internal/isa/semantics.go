package isa

// This file centralises the data-flow semantics of the ISA: which registers
// an instruction reads and writes, how its ALU result is computed, and which
// forms can be executed in reverse. Both the online interpreter
// (internal/machine) and the offline replay engine (internal/replay) are
// built on these functions, so the simulated "hardware" and the
// reconstruction can never drift apart — the same guarantee the paper gets
// from replaying the very binary that ran.

// Uses returns the registers the instruction reads. Memory-operand
// registers are included. Flags are not registers; see ReadsFlags.
func (i Inst) Uses() []Reg {
	var u []Reg
	switch i.Op {
	case MOV:
		u = append(u, i.Rs)
	case LOAD, LEA:
		// address registers only (appended below)
	case STORE:
		u = append(u, i.Rs)
	case ADD, SUB, MUL, AND, OR, XOR, SHL, SHR:
		u = append(u, i.Rd, i.Rs)
	case ADDI, SUBI, MULI, ANDI, ORI, XORI, SHLI, SHRI:
		u = append(u, i.Rd)
	case CMP:
		u = append(u, i.Rd, i.Rs)
	case CMPI:
		u = append(u, i.Rd)
	case JMPR, CALLR:
		u = append(u, i.Rs)
	case SYSCALL:
		// Conservatively: syscalls read the argument registers.
		u = append(u, R0, R1, R2)
	}
	return i.AppendAddrRegs(u)
}

// Defs returns the registers the instruction writes.
func (i Inst) Defs() []Reg { return i.AppendDefs(nil) }

// AppendDefs appends the registers the instruction writes to buf and
// returns it. The allocation-free form of Defs for hot loops.
func (i Inst) AppendDefs(buf []Reg) []Reg {
	switch i.Op {
	case MOVI, MOV, LEA, LOAD:
		return append(buf, i.Rd)
	case ADD, SUB, MUL, AND, OR, XOR, SHL, SHR,
		ADDI, SUBI, MULI, ANDI, ORI, XORI, SHLI, SHRI:
		return append(buf, i.Rd)
	case SYSCALL:
		// Result register. Syscalls with no result still clobber R0.
		return append(buf, R0)
	}
	return buf
}

// WritesFlags reports whether the instruction updates the flags.
func (i Inst) WritesFlags() bool { return i.Op == CMP || i.Op == CMPI }

// ReadsFlags reports whether the instruction's behaviour depends on flags.
func (i Inst) ReadsFlags() bool { return i.IsCondBranch() }

// Flags is the thread condition state produced by CMP/CMPI, interpreted as
// the signed comparison of the two operands.
type Flags struct {
	EQ bool // operands equal
	LT bool // first operand signed-less-than second
}

// Compare computes Flags for operands a and b.
func Compare(a, b uint64) Flags {
	return Flags{EQ: a == b, LT: int64(a) < int64(b)}
}

// BranchTaken reports whether a conditional branch with opcode op is taken
// under flags f. It panics on a non-conditional opcode.
func BranchTaken(op Op, f Flags) bool {
	switch op {
	case JEQ:
		return f.EQ
	case JNE:
		return !f.EQ
	case JLT:
		return f.LT
	case JLE:
		return f.LT || f.EQ
	case JGT:
		return !f.LT && !f.EQ
	case JGE:
		return !f.LT
	}
	panic("isa: BranchTaken on non-conditional opcode " + op.String())
}

// ALU evaluates the arithmetic/logic result of the instruction given the
// current value of Rd (dst) and the second operand (src for register forms,
// ignored for immediate forms, which use Imm). ok is false for
// non-arithmetic opcodes.
func (i Inst) ALU(dst, src uint64) (result uint64, ok bool) {
	b := src
	switch i.Op {
	case ADDI, SUBI, MULI, ANDI, ORI, XORI, SHLI, SHRI:
		b = uint64(i.Imm)
	}
	switch i.Op {
	case ADD, ADDI:
		return dst + b, true
	case SUB, SUBI:
		return dst - b, true
	case MUL, MULI:
		return dst * b, true
	case AND, ANDI:
		return dst & b, true
	case OR, ORI:
		return dst | b, true
	case XOR, XORI:
		return dst ^ b, true
	case SHL, SHLI:
		return dst << (b & 63), true
	case SHR, SHRI:
		return dst >> (b & 63), true
	}
	return 0, false
}

// Invertible reports whether the instruction's effect on Rd can be undone
// given its output — the precondition for backward replay's reverse
// execution (paper §5.2.2). ADD/SUB with an immediate and XOR with an
// immediate are bijections of the destination; MOV establishes an equality
// between two registers (handled separately by the replay engine).
func (i Inst) Invertible() bool {
	switch i.Op {
	case ADDI, SUBI, XORI:
		return true
	}
	return false
}

// Invert computes the pre-state of Rd from its post-state for an invertible
// instruction. ok is false if the instruction is not invertible.
func (i Inst) Invert(post uint64) (pre uint64, ok bool) {
	switch i.Op {
	case ADDI:
		return post - uint64(i.Imm), true
	case SUBI:
		return post + uint64(i.Imm), true
	case XORI:
		return post ^ uint64(i.Imm), true
	}
	return 0, false
}

// InvertRegPair handles the two-register reverse-execution cases of §5.2.2:
// for ADD/SUB rd, rs, knowing the post-state of rd and the value of one
// operand recovers the other. know reports which operand is known:
// the surviving rs value ("src") or the pre-state of rd ("dst").
//
// For ADD: post = pre + src, so pre = post - src and src = post - pre.
// For SUB: post = pre - src, so pre = post + src and src = pre - post.
// ok is false for other opcodes.
func (i Inst) InvertRegPair(post uint64, known uint64, knownIsSrc bool) (recovered uint64, ok bool) {
	switch i.Op {
	case ADD:
		if knownIsSrc {
			return post - known, true // recover pre-state of rd
		}
		return post - known, true // recover src
	case SUB:
		if knownIsSrc {
			return post + known, true // recover pre-state of rd
		}
		return known - post, true // recover src
	}
	return 0, false
}

// FallThrough reports whether control can reach the next sequential
// instruction after this one.
func (i Inst) FallThrough() bool {
	switch i.Op {
	case JMP, JMPR, RET, HALT:
		return false
	case SYSCALL:
		return i.Sys != SysExit
	}
	return true
}

// EndsBlock reports whether the instruction terminates a basic block.
func (i Inst) EndsBlock() bool {
	return i.IsBranch() || i.Op == HALT || (i.Op == SYSCALL && i.Sys == SysExit)
}
