// Package ptdecode reconstructs each thread's executed instruction path
// from its PT packet stream and the program binary — the offline "Decode &
// Synthesis" stage of the paper's Figure 1.
//
// The decoder walks the text segment from the stream's anchor TIP,
// consuming TNT bits at conditional branches and TIP targets at indirect
// branches, exactly as a hardware PT decoder does. TSC packets do not
// affect control flow; each becomes a Marker recording the decode position
// at which it was observed. Because the online driver injects a TSC packet
// at every stored PEBS sample (PMI-synchronised), these markers let the
// synthesis stage pin every sample onto the path.
//
// Decoding comes in two flavours. Strict decoding (the default) stops at
// the first malformed packet and returns a *tracefmt.ErrCorrupt. Lenient
// decoding survives damage: it records a Gap, scans forward to the next
// PSB sync point (tracefmt.PTReader.Resync) and resumes the walk at the
// anchor pc the PSB carries — the analogue of a real PT decoder recovering
// at a PSB after packet loss or an OVF. The region between the damage and
// the sync point is lost; everything after it is decoded normally.
package ptdecode

import (
	"fmt"

	"prorace/internal/isa"
	"prorace/internal/prog"
	"prorace/internal/tracefmt"
)

// Marker is a TSC packet observed at a decode position: every branch
// outcome retired before the packet is consumed by steps at indices
// < StepIndex, so the instruction the packet timestamps lies in the
// straight-line run ending at StepIndex.
type Marker struct {
	TSC       uint64
	StepIndex int
}

// Gap is a region of the stream a lenient decode had to skip: corrupt
// packets, a desynchronised walk, or a wild jump, healed by scanning to
// the next PSB sync point.
type Gap struct {
	// StepIndex is the decode position at which the damage was detected;
	// path steps immediately before it may belong to a desynced walk.
	StepIndex int
	// Offset is the stream byte offset of the damage.
	Offset int
	// Skipped is how many stream bytes were lost to reach the sync point.
	Skipped int
	// Reason describes the damage.
	Reason string
}

// Path is one thread's decoded execution.
type Path struct {
	TID int32
	// PCs is the sequence of executed instruction addresses.
	PCs []uint64
	// Markers are the TSC packets in decode order (ascending StepIndex).
	Markers []Marker
	// Truncated is true when decoding stopped because the stream ended
	// before the program did (normal: tracing stops at run end).
	Truncated bool
	// Gaps are the regions a lenient decode skipped (empty on a clean
	// stream or in strict mode).
	Gaps []Gap
	// CorruptPackets counts malformed packets and sync-point mismatches
	// encountered (lenient mode; strict mode stops at the first).
	CorruptPackets int
	// Packets counts the well-formed packets consumed from the stream —
	// deterministic per stream, feeding the prorace_ptdecode_packets_total
	// telemetry series.
	Packets int
	// Resyncs counts recovery events that re-anchored the walk at a PSB
	// sync point (scans after damage plus in-place PSB re-anchors).
	Resyncs int
}

// Len returns the number of decoded steps.
func (p *Path) Len() int { return len(p.PCs) }

// Degraded reports whether the decode lost any part of the stream.
func (p *Path) Degraded() bool { return len(p.Gaps) > 0 || p.CorruptPackets > 0 }

// SkippedBytes totals the stream bytes lost across all gaps.
func (p *Path) SkippedBytes() int {
	n := 0
	for _, g := range p.Gaps {
		n += g.Skipped
	}
	return n
}

// Options configures a decode.
type Options struct {
	// MaxSteps bounds runaway decodes (0 means a large default).
	MaxSteps int
	// Lenient enables gap recovery instead of first-error abort.
	Lenient bool
}

// runChunkGroups bounds how many run-length-encoded TNT groups are
// materialised per refill round. TNTRep counts are attacker-controlled in
// a corrupt stream; expanding them lazily keeps the pending-bit queue
// small no matter what the packet claims.
const runChunkGroups = 4096

// decoder state over one stream.
type decoder struct {
	prog    *prog.Program
	rdr     *tracefmt.PTReader
	path    *Path
	lenient bool
	bits    []bool   // pending TNT outcomes
	tips    []uint64 // pending TIP targets
	stack   []uint64 // call stack for RET compression
	done    bool
	lastErr error

	// pending run-length-encoded TNT state, expanded lazily.
	runPattern uint8
	runNBits   uint8
	runLeft    uint32 // groups not yet materialised
	runIdx     uint32 // next group's index within the run
	runExc     []tracefmt.TNTException
	runEi      int

	// walkPC is the pc of the instruction currently requesting a packet;
	// a PSB whose anchor disagrees with it reveals a silently desynced
	// walk (plausible-but-wrong path from flipped TNT bits).
	walkPC uint64
	// anchor is a pending resync target discovered during refill.
	anchor   uint64
	anchorOK bool
	// draining is set while collecting trailing markers after the walk
	// has stopped; recovery is pointless then.
	draining bool
	// maxSteps is the walk's step budget, used to reject TNT runs no walk
	// could consume (lenient mode only).
	maxSteps int
}

// expandRun materialises up to runChunkGroups groups of the pending run.
func (d *decoder) expandRun() {
	n := d.runLeft
	if n > runChunkGroups {
		n = runChunkGroups
	}
	for k := uint32(0); k < n; k++ {
		group := d.runPattern
		if d.runEi < len(d.runExc) && d.runExc[d.runEi].Index == d.runIdx {
			group = d.runExc[d.runEi].Bits
			d.runEi++
		}
		for i := uint8(0); i < d.runNBits; i++ {
			d.bits = append(d.bits, group&(1<<i) != 0)
		}
		d.runIdx++
	}
	d.runLeft -= n
}

// clearPending drops all queued decode state; it is poisoned once the
// stream position is known to be damaged.
func (d *decoder) clearPending() {
	d.bits = d.bits[:0]
	d.tips = d.tips[:0]
	d.stack = d.stack[:0]
	d.runLeft, d.runExc, d.runEi = 0, nil, 0
}

// refill pulls packets until at least one TNT bit or TIP is pending, a
// resync anchor is queued, or the stream ends. TSC packets become markers
// at the current position.
func (d *decoder) refill() {
	for len(d.bits) == 0 && len(d.tips) == 0 && !d.done && !d.anchorOK {
		if d.runLeft > 0 {
			if d.draining {
				d.runLeft = 0 // bits are being discarded anyway
				continue
			}
			d.expandRun()
			continue
		}
		pkt, done, err := d.rdr.Next()
		if err != nil {
			d.path.CorruptPackets++
			if !d.lenient {
				d.lastErr = err
				d.done = true
				return
			}
			off := d.rdr.Offset()
			d.stack = d.stack[:0]
			pc, skipped, ok := d.rdr.Resync()
			d.path.Gaps = append(d.path.Gaps, Gap{
				StepIndex: len(d.path.PCs), Offset: off, Skipped: skipped, Reason: err.Error(),
			})
			if !ok {
				d.done = true
				return
			}
			d.path.Resyncs++
			if !d.draining {
				d.anchor, d.anchorOK = pc, true
			}
			continue
		}
		if done {
			d.done = true
			return
		}
		d.path.Packets++
		switch pkt.Kind {
		case tracefmt.PktTNT, tracefmt.PktTNT6:
			for i := uint8(0); i < pkt.NBits; i++ {
				d.bits = append(d.bits, pkt.Bits&(1<<i) != 0)
			}
		case tracefmt.PktTNTRep, tracefmt.PktTNTRepEx:
			// Each step consumes at most one TNT bit, so a run the walk
			// could never finish within its remaining step budget cannot be
			// real control flow — it is framing damage (garbage bytes
			// parsing as a huge repeat count). Resync instead of spinning
			// the walk for millions of steps on a fiction.
			if d.lenient && !d.draining &&
				uint64(pkt.Count)*uint64(pkt.NBits) > uint64(d.maxSteps-len(d.path.PCs)) {
				d.path.CorruptPackets++
				off := d.rdr.Offset()
				d.stack = d.stack[:0]
				pc, skipped, ok := d.rdr.Resync()
				d.path.Gaps = append(d.path.Gaps, Gap{
					StepIndex: len(d.path.PCs), Offset: off, Skipped: skipped,
					Reason: fmt.Sprintf("TNT run of %d bits exceeds step budget", uint64(pkt.Count)*uint64(pkt.NBits)),
				})
				if !ok {
					d.done = true
					return
				}
				d.path.Resyncs++
				d.anchor, d.anchorOK = pc, true
				continue
			}
			d.runPattern, d.runNBits = pkt.Bits, pkt.NBits
			d.runLeft, d.runIdx = pkt.Count, 0
			d.runExc, d.runEi = pkt.Exceptions, 0
		case tracefmt.PktTIP:
			d.tips = append(d.tips, pkt.Target)
		case tracefmt.PktTSC:
			d.path.Markers = append(d.path.Markers, Marker{TSC: pkt.TSC, StepIndex: len(d.path.PCs)})
		case tracefmt.PktPSB:
			// Sync point. On a clean stream the refill that reads it is
			// requested by exactly the instruction the encoder anchored it
			// at, so a mismatch means the walk silently desynced (flipped
			// TNT bits produce a plausible but wrong path). Re-anchor.
			if d.lenient && !d.draining && d.walkPC != 0 && pkt.Target != d.walkPC {
				d.path.CorruptPackets++
				d.path.Gaps = append(d.path.Gaps, Gap{
					StepIndex: len(d.path.PCs), Offset: d.rdr.Offset(),
					Reason: fmt.Sprintf("PSB anchor %#x disagrees with walk at %#x", pkt.Target, d.walkPC),
				})
				d.stack = d.stack[:0] // the encoder reset its stack at the PSB
				d.path.Resyncs++
				d.anchor, d.anchorOK = pkt.Target, true
			}
		}
	}
}

// nextBit consumes one conditional outcome; ok is false at stream end.
func (d *decoder) nextBit() (bool, bool) {
	if len(d.bits) == 0 {
		d.refill()
	}
	if len(d.bits) == 0 {
		return false, false
	}
	b := d.bits[0]
	d.bits = d.bits[1:]
	return b, true
}

// nextTIP consumes one indirect target; ok is false at stream end.
func (d *decoder) nextTIP() (uint64, bool) {
	if len(d.tips) == 0 {
		d.refill()
	}
	if len(d.tips) == 0 {
		return 0, false
	}
	t := d.tips[0]
	d.tips = d.tips[1:]
	return t, true
}

// reanchor attempts lenient recovery after the walk failed to get the
// packet it needed (or jumped off the text segment). It consumes a pending
// resync anchor if one is queued; otherwise, if the stream has not ended,
// the pending state is untrustworthy (a desync, e.g. a TIP where a TNT bit
// was needed), so it is dropped and the reader scans to the next sync
// point. ok is false when recovery is impossible — strict mode, or no sync
// point remains — in which case the caller truncates as before.
func (d *decoder) reanchor(reason string) (uint64, bool) {
	if !d.lenient {
		return 0, false
	}
	if d.anchorOK {
		d.anchorOK = false
		return d.anchor, true
	}
	if d.done {
		return 0, false
	}
	off := d.rdr.Offset()
	d.clearPending()
	pc, skipped, ok := d.rdr.Resync()
	d.path.Gaps = append(d.path.Gaps, Gap{
		StepIndex: len(d.path.PCs), Offset: off, Skipped: skipped, Reason: reason,
	})
	if !ok {
		d.done = true
		return 0, false
	}
	d.path.Resyncs++
	return pc, true
}

// Decode reconstructs the path of one thread from its packet stream in
// strict mode. maxSteps bounds runaway decodes (0 means a large default).
func Decode(p *prog.Program, tid int32, stream []byte, maxSteps int) (*Path, error) {
	return DecodeWith(p, tid, stream, Options{MaxSteps: maxSteps})
}

// DecodeWith reconstructs the path of one thread from its packet stream.
func DecodeWith(p *prog.Program, tid int32, stream []byte, opts Options) (*Path, error) {
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 100_000_000
	}
	d := &decoder{
		prog:     p,
		rdr:      tracefmt.NewPTReader(stream),
		path:     &Path{TID: tid},
		lenient:  opts.Lenient,
		maxSteps: maxSteps,
	}
	// Anchor: the stream must start with (TSC,) TIP carrying the entry.
	pc, ok := d.nextTIP()
	if !ok {
		if pc2, ok2 := d.reanchor("missing anchor TIP"); ok2 {
			pc = pc2
		} else {
			if d.lastErr != nil {
				return nil, fmt.Errorf("ptdecode: tid %d: %w", tid, d.lastErr)
			}
			return d.path, nil // empty stream: thread traced nothing
		}
	}

	for len(d.path.PCs) < maxSteps {
		in, okInst := p.InstAt(pc)
		if !okInst {
			if pc == 0 {
				// A return from a thread's outermost frame targets address
				// 0 — the machine's thread-exit convention, encoded as a
				// TIP to 0. This is the normal end of a spawned thread's
				// trace, not a wild jump: end cleanly in both modes so a
				// lenient decode of a clean stream records no gap.
				d.finishTailMarkers()
				return d.path, d.lastErr
			}
			if pc2, okR := d.reanchor(fmt.Sprintf("wild jump to %#x", pc)); okR {
				pc = pc2
				continue
			}
			// Ran off the text segment (wild jump in the workload);
			// tracing of this thread ends here, like a real decoder losing
			// sync at an unmapped address.
			d.path.Truncated = true
			break
		}
		d.walkPC = pc
		d.path.PCs = append(d.path.PCs, pc)

		switch {
		case in.IsCondBranch():
			taken, okBit := d.nextBit()
			if !okBit {
				if pc2, okR := d.reanchor("missing TNT bit"); okR {
					pc = pc2
					continue
				}
				d.finishTailMarkers()
				d.path.Truncated = true
				return d.path, d.lastErr
			}
			if taken {
				pc = uint64(in.Imm)
			} else {
				pc += isa.InstSize
			}
		case in.Op == isa.JMP:
			pc = uint64(in.Imm)
		case in.Op == isa.CALL:
			d.stack = append(d.stack, pc+isa.InstSize)
			pc = uint64(in.Imm)
		case in.Op == isa.CALLR:
			d.stack = append(d.stack, pc+isa.InstSize)
			target, okTip := d.nextTIP()
			if !okTip {
				if pc2, okR := d.reanchor("missing TIP target"); okR {
					pc = pc2
					continue
				}
				d.finishTailMarkers()
				d.path.Truncated = true
				return d.path, d.lastErr
			}
			pc = target
		case in.Op == isa.RET:
			// RET compression: the stream carries either a taken bit
			// (target = tracked call stack top) or a TIP. Stream order
			// disambiguates: whichever the next pending item is belongs
			// to this return.
			if len(d.bits) == 0 && len(d.tips) == 0 {
				d.refill()
			}
			switch {
			case len(d.bits) > 0:
				taken, _ := d.nextBit()
				n := len(d.stack)
				if !taken || n == 0 {
					// Desync: a compressed return must be a taken bit with
					// a tracked frame.
					if pc2, okR := d.reanchor("return desync"); okR {
						pc = pc2
						continue
					}
					d.finishTailMarkers()
					d.path.Truncated = true
					return d.path, d.lastErr
				}
				pc = d.stack[n-1]
				d.stack = d.stack[:n-1]
			case len(d.tips) > 0:
				target, _ := d.nextTIP()
				pc = target
				d.stack = d.stack[:0] // encoder reset its stack too
			default:
				if pc2, okR := d.reanchor("missing return packet"); okR {
					pc = pc2
					continue
				}
				d.finishTailMarkers()
				d.path.Truncated = true
				return d.path, d.lastErr
			}
		case in.IsIndirectBranch():
			target, okTip := d.nextTIP()
			if !okTip {
				if pc2, okR := d.reanchor("missing TIP target"); okR {
					pc = pc2
					continue
				}
				d.finishTailMarkers()
				d.path.Truncated = true
				return d.path, d.lastErr
			}
			pc = target
		case in.Op == isa.HALT, in.Op == isa.SYSCALL && in.Sys == isa.SysExit:
			d.finishTailMarkers()
			return d.path, d.lastErr
		default:
			pc += isa.InstSize
		}
	}
	d.finishTailMarkers()
	return d.path, d.lastErr
}

// finishTailMarkers drains any packets left after the walk stops so trailing
// TSC markers are recorded at the final position.
func (d *decoder) finishTailMarkers() {
	d.draining = true
	d.anchorOK = false
	d.runLeft, d.runExc, d.runEi = 0, nil, 0
	for !d.done {
		d.bits = d.bits[:0]
		d.tips = d.tips[:0]
		d.refill()
	}
	d.bits = nil
	d.tips = nil
}

// DecodeAll decodes every thread stream of a trace in strict mode.
func DecodeAll(p *prog.Program, streams map[int32][]byte, maxSteps int) (map[int32]*Path, error) {
	return DecodeAllWith(p, streams, Options{MaxSteps: maxSteps})
}

// DecodeAllWith decodes every thread stream of a trace.
func DecodeAllWith(p *prog.Program, streams map[int32][]byte, opts Options) (map[int32]*Path, error) {
	out := map[int32]*Path{}
	for tid, stream := range streams {
		path, err := DecodeWith(p, tid, stream, opts)
		if err != nil {
			return nil, err
		}
		out[tid] = path
	}
	return out, nil
}
