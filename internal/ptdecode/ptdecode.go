// Package ptdecode reconstructs each thread's executed instruction path
// from its PT packet stream and the program binary — the offline "Decode &
// Synthesis" stage of the paper's Figure 1.
//
// The decoder walks the text segment from the stream's anchor TIP,
// consuming TNT bits at conditional branches and TIP targets at indirect
// branches, exactly as a hardware PT decoder does. TSC packets do not
// affect control flow; each becomes a Marker recording the decode position
// at which it was observed. Because the online driver injects a TSC packet
// at every stored PEBS sample (PMI-synchronised), these markers let the
// synthesis stage pin every sample onto the path.
package ptdecode

import (
	"fmt"

	"prorace/internal/isa"
	"prorace/internal/prog"
	"prorace/internal/tracefmt"
)

// Marker is a TSC packet observed at a decode position: every branch
// outcome retired before the packet is consumed by steps at indices
// < StepIndex, so the instruction the packet timestamps lies in the
// straight-line run ending at StepIndex.
type Marker struct {
	TSC       uint64
	StepIndex int
}

// Path is one thread's decoded execution.
type Path struct {
	TID int32
	// PCs is the sequence of executed instruction addresses.
	PCs []uint64
	// Markers are the TSC packets in decode order (ascending StepIndex).
	Markers []Marker
	// Truncated is true when decoding stopped because the stream ended
	// before the program did (normal: tracing stops at run end).
	Truncated bool
}

// Len returns the number of decoded steps.
func (p *Path) Len() int { return len(p.PCs) }

// decoder state over one stream.
type decoder struct {
	prog    *prog.Program
	rdr     *tracefmt.PTReader
	path    *Path
	bits    []bool   // pending TNT outcomes
	tips    []uint64 // pending TIP targets
	stack   []uint64 // call stack for RET compression
	done    bool
	lastErr error
}

// refill pulls packets until at least one TNT bit or TIP is pending (or the
// stream ends). TSC packets become markers at the current position.
func (d *decoder) refill() {
	for len(d.bits) == 0 && len(d.tips) == 0 && !d.done {
		pkt, done, err := d.rdr.Next()
		if err != nil {
			d.lastErr = err
			d.done = true
			return
		}
		if done {
			d.done = true
			return
		}
		switch pkt.Kind {
		case tracefmt.PktTNT, tracefmt.PktTNT6:
			for i := uint8(0); i < pkt.NBits; i++ {
				d.bits = append(d.bits, pkt.Bits&(1<<i) != 0)
			}
		case tracefmt.PktTNTRep:
			for rep := uint32(0); rep < pkt.Count; rep++ {
				for i := uint8(0); i < pkt.NBits; i++ {
					d.bits = append(d.bits, pkt.Bits&(1<<i) != 0)
				}
			}
		case tracefmt.PktTNTRepEx:
			ei := 0
			for rep := uint32(0); rep < pkt.Count; rep++ {
				group := pkt.Bits
				if ei < len(pkt.Exceptions) && pkt.Exceptions[ei].Index == rep {
					group = pkt.Exceptions[ei].Bits
					ei++
				}
				for i := uint8(0); i < tracefmt.TNTBitsPerPacket; i++ {
					d.bits = append(d.bits, group&(1<<i) != 0)
				}
			}
		case tracefmt.PktTIP:
			d.tips = append(d.tips, pkt.Target)
		case tracefmt.PktTSC:
			d.path.Markers = append(d.path.Markers, Marker{TSC: pkt.TSC, StepIndex: len(d.path.PCs)})
		}
	}
}

// nextBit consumes one conditional outcome; ok is false at stream end.
func (d *decoder) nextBit() (bool, bool) {
	if len(d.bits) == 0 {
		d.refill()
	}
	if len(d.bits) == 0 {
		return false, false
	}
	b := d.bits[0]
	d.bits = d.bits[1:]
	return b, true
}

// nextTIP consumes one indirect target; ok is false at stream end.
func (d *decoder) nextTIP() (uint64, bool) {
	if len(d.tips) == 0 {
		d.refill()
	}
	if len(d.tips) == 0 {
		return 0, false
	}
	t := d.tips[0]
	d.tips = d.tips[1:]
	return t, true
}

// Decode reconstructs the path of one thread from its packet stream.
// maxSteps bounds runaway decodes (0 means a large default).
func Decode(p *prog.Program, tid int32, stream []byte, maxSteps int) (*Path, error) {
	if maxSteps <= 0 {
		maxSteps = 100_000_000
	}
	d := &decoder{
		prog: p,
		rdr:  tracefmt.NewPTReader(stream),
		path: &Path{TID: tid},
	}
	// Anchor: the stream must start with (TSC,) TIP carrying the entry.
	pc, ok := d.nextTIP()
	if !ok {
		if d.lastErr != nil {
			return nil, fmt.Errorf("ptdecode: tid %d: %w", tid, d.lastErr)
		}
		return d.path, nil // empty stream: thread traced nothing
	}

	for len(d.path.PCs) < maxSteps {
		in, okInst := p.InstAt(pc)
		if !okInst {
			// Ran off the text segment (wild jump in the workload);
			// tracing of this thread ends here, like a real decoder losing
			// sync at an unmapped address.
			d.path.Truncated = true
			break
		}
		d.path.PCs = append(d.path.PCs, pc)

		switch {
		case in.IsCondBranch():
			taken, okBit := d.nextBit()
			if !okBit {
				d.finishTailMarkers()
				d.path.Truncated = true
				return d.path, d.lastErr
			}
			if taken {
				pc = uint64(in.Imm)
			} else {
				pc += isa.InstSize
			}
		case in.Op == isa.JMP:
			pc = uint64(in.Imm)
		case in.Op == isa.CALL:
			d.stack = append(d.stack, pc+isa.InstSize)
			pc = uint64(in.Imm)
		case in.Op == isa.CALLR:
			d.stack = append(d.stack, pc+isa.InstSize)
			target, okTip := d.nextTIP()
			if !okTip {
				d.finishTailMarkers()
				d.path.Truncated = true
				return d.path, d.lastErr
			}
			pc = target
		case in.Op == isa.RET:
			// RET compression: the stream carries either a taken bit
			// (target = tracked call stack top) or a TIP. Stream order
			// disambiguates: whichever the next pending item is belongs
			// to this return.
			if len(d.bits) == 0 && len(d.tips) == 0 {
				d.refill()
			}
			switch {
			case len(d.bits) > 0:
				taken, _ := d.nextBit()
				n := len(d.stack)
				if !taken || n == 0 {
					// Desync: a compressed return must be a taken bit with
					// a tracked frame.
					d.finishTailMarkers()
					d.path.Truncated = true
					return d.path, d.lastErr
				}
				pc = d.stack[n-1]
				d.stack = d.stack[:n-1]
			case len(d.tips) > 0:
				target, _ := d.nextTIP()
				pc = target
				d.stack = d.stack[:0] // encoder reset its stack too
			default:
				d.finishTailMarkers()
				d.path.Truncated = true
				return d.path, d.lastErr
			}
		case in.IsIndirectBranch():
			target, okTip := d.nextTIP()
			if !okTip {
				d.finishTailMarkers()
				d.path.Truncated = true
				return d.path, d.lastErr
			}
			pc = target
		case in.Op == isa.HALT, in.Op == isa.SYSCALL && in.Sys == isa.SysExit:
			d.finishTailMarkers()
			return d.path, d.lastErr
		default:
			pc += isa.InstSize
		}
	}
	d.finishTailMarkers()
	return d.path, d.lastErr
}

// finishTailMarkers drains any packets left after the walk stops so trailing
// TSC markers are recorded at the final position.
func (d *decoder) finishTailMarkers() {
	for !d.done {
		d.bits = d.bits[:0]
		d.tips = d.tips[:0]
		d.refill()
	}
	d.bits = nil
	d.tips = nil
}

// DecodeAll decodes every thread stream of a trace.
func DecodeAll(p *prog.Program, streams map[int32][]byte, maxSteps int) (map[int32]*Path, error) {
	out := map[int32]*Path{}
	for tid, stream := range streams {
		path, err := Decode(p, tid, stream, maxSteps)
		if err != nil {
			return nil, err
		}
		out[tid] = path
	}
	return out, nil
}
