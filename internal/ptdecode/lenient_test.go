package ptdecode

import (
	"errors"
	"testing"

	"prorace/internal/machine"
	"prorace/internal/pmu/driver"
	"prorace/internal/prog"
	"prorace/internal/tracefmt"
)

// tracePSBDense runs branchyProgram with a tiny PSB interval so the stream
// carries many sync points, and returns the golden execution plus streams.
func tracePSBDense(t testing.TB) (*prog.Program, *goldenTracer, map[int32][]byte) {
	t.Helper()
	p := branchyProgram()
	mac := machine.New(p, machine.Config{Seed: 4})
	d := driver.New(mac, driver.Options{
		Kind: driver.ProRace, Period: 50, Seed: 4, EnablePT: true,
		PSBIntervalCycles: 200,
	})
	g := newGolden(d)
	mac.SetTracer(g)
	if _, err := mac.Run(); err != nil {
		t.Fatal(err)
	}
	return p, g, d.Finish().PT
}

func TestLenientEqualsStrictOnCleanStream(t *testing.T) {
	p, g, streams := tracePSBDense(t)
	stream := streams[0]
	strictPath, err := Decode(p, 0, stream, 0)
	if err != nil {
		t.Fatal(err)
	}
	lenientPath, err := DecodeWith(p, 0, stream, Options{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	if lenientPath.Degraded() {
		t.Fatalf("clean stream decoded as degraded: %d corrupt, %d gaps",
			lenientPath.CorruptPackets, len(lenientPath.Gaps))
	}
	if strictPath.Len() != lenientPath.Len() {
		t.Fatalf("strict %d steps, lenient %d", strictPath.Len(), lenientPath.Len())
	}
	for i := range strictPath.PCs {
		if strictPath.PCs[i] != lenientPath.PCs[i] {
			t.Fatalf("step %d differs: strict %#x lenient %#x", i, strictPath.PCs[i], lenientPath.PCs[i])
		}
	}
	// And both match the execution exactly.
	want := g.pcs[0]
	if lenientPath.Len() != len(want) {
		t.Fatalf("decoded %d steps, executed %d", lenientPath.Len(), len(want))
	}
}

// corruptMiddle flips bits in a window in the middle of the stream.
func corruptMiddle(stream []byte) []byte {
	b := append([]byte(nil), stream...)
	lo, hi := len(b)/3, len(b)/3+24
	if hi > len(b) {
		hi = len(b)
	}
	for i := lo; i < hi; i++ {
		b[i] ^= 0xFF
	}
	return b
}

func TestLenientRecoversFromMidStreamCorruption(t *testing.T) {
	p, g, streams := tracePSBDense(t)
	bad := corruptMiddle(streams[0])

	// Strict decode must not panic; it either errors or truncates early.
	strictPath, strictErr := Decode(p, 0, bad, 0)
	if strictErr == nil && strictPath.Len() >= len(g.pcs[0]) && !strictPath.Truncated {
		t.Error("strict decode of corrupted stream reported a full clean path")
	}

	// Lenient decode must recover: no error, damage accounted, and the
	// walk resumes after the corrupt window (path longer than the strict
	// truncation point whenever a sync point followed the damage).
	path, err := DecodeWith(p, 0, bad, Options{Lenient: true})
	if err != nil {
		t.Fatalf("lenient decode errored: %v", err)
	}
	if !path.Degraded() {
		t.Fatal("corrupted stream decoded as clean")
	}
	if path.CorruptPackets == 0 {
		t.Error("no corrupt packets counted")
	}
	if len(path.Gaps) == 0 {
		t.Error("no gaps recorded")
	}
	for _, gap := range path.Gaps {
		if gap.Reason == "" {
			t.Error("gap without reason")
		}
	}
	if path.SkippedBytes() == 0 {
		t.Error("gaps recorded but no bytes skipped")
	}
	// Every decoded step must still be a real instruction: resync may skip
	// execution, but it must never fabricate PCs outside the program.
	for i, pc := range path.PCs {
		if _, ok := p.InstAt(pc); !ok {
			t.Fatalf("step %d: decoded pc %#x is not an instruction", i, pc)
		}
	}
}

func TestLenientResumeAfterGap(t *testing.T) {
	p, g, streams := tracePSBDense(t)
	stream := streams[0]
	// Cut a chunk out of the middle: framing shifts, the decoder must
	// resync at a later PSB and keep walking.
	lo, hi := len(stream)/2, len(stream)/2+17
	bad := append(append([]byte(nil), stream[:lo]...), stream[hi:]...)

	path, err := DecodeWith(p, 0, bad, Options{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	if !path.Degraded() {
		t.Fatal("gap not detected")
	}
	// The pre-damage prefix decodes exactly; after recovery the path must
	// have kept going (more steps than the first gap's position).
	first := path.Gaps[0].StepIndex
	if first == 0 {
		t.Fatal("gap at step 0: damage window swallowed the whole prefix")
	}
	for i := 0; i < first && i < len(g.pcs[0]); i++ {
		if path.PCs[i] != g.pcs[0][i] {
			t.Fatalf("pre-gap step %d diverged", i)
		}
	}
	if path.Len() <= first {
		t.Errorf("walk did not resume after the gap (%d steps, gap at %d)", path.Len(), first)
	}
}

func TestLenientHugeTNTRunRejected(t *testing.T) {
	// A framing shift can make garbage parse as a TNTRep with a count in
	// the billions; the lenient decoder must reject it (it cannot fit the
	// step budget) instead of spinning, and a small budget must hold.
	p, _, streams := tracePSBDense(t)
	stream := append([]byte(nil), streams[0]...)
	// Craft a hostile TNTRep mid-stream: a 6-bit pattern repeated 2^31
	// times, i.e. ~13 billion TNT bits.
	hostile := tracefmt.AppendTNTRep(nil, 0b10101, 1<<31)
	mid := len(stream) / 2
	bad := append(append(append([]byte(nil), stream[:mid]...), hostile...), stream[mid:]...)
	path, err := DecodeWith(p, 0, bad, Options{Lenient: true, MaxSteps: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if path.Len() >= 1<<20 {
		t.Fatalf("decoder walked the hostile run to the step cap (%d steps)", path.Len())
	}
}

func TestStrictUnchangedByLenientMachinery(t *testing.T) {
	// Strict mode on a corrupt stream still reports the typed error.
	p, _, streams := tracePSBDense(t)
	bad := corruptMiddle(streams[0])
	_, err := Decode(p, 0, bad, 0)
	if err == nil {
		// Corruption may decode as valid-but-desynced packets; then the
		// walk truncates instead. Either is acceptable strict behaviour,
		// but silent full success is checked above. Nothing to assert.
		return
	}
	var ce *tracefmt.ErrCorrupt
	if !errors.As(err, &ce) {
		t.Fatalf("strict error %v does not wrap ErrCorrupt", err)
	}
}
