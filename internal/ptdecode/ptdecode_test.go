package ptdecode

import (
	"testing"

	"prorace/internal/asm"
	"prorace/internal/isa"
	"prorace/internal/machine"
	"prorace/internal/pmu/driver"
	"prorace/internal/prog"
)

// goldenTracer records every executed PC per thread — the ground truth a
// correct PT decode must reproduce.
type goldenTracer struct {
	inner machine.Tracer
	pcs   map[int32][]uint64
}

func newGolden(inner machine.Tracer) *goldenTracer {
	return &goldenTracer{inner: inner, pcs: map[int32][]uint64{}}
}

func (g *goldenTracer) InstRetired(ev *machine.InstEvent) uint64 {
	tid := int32(ev.TID)
	// Lock retries re-deliver the same SYSCALL pc; the architectural path
	// contains it once. Collapse consecutive duplicates of blocking
	// syscalls.
	if ev.Inst.Op == isa.SYSCALL {
		if l := g.pcs[tid]; len(l) > 0 && l[len(l)-1] == ev.PC {
			return g.inner.InstRetired(ev)
		}
	}
	g.pcs[tid] = append(g.pcs[tid], ev.PC)
	return g.inner.InstRetired(ev)
}
func (g *goldenTracer) SyscallRetired(ev *machine.SyscallEvent) uint64 {
	return g.inner.SyscallRetired(ev)
}
func (g *goldenTracer) ThreadStarted(tid machine.TID, tsc uint64) { g.inner.ThreadStarted(tid, tsc) }
func (g *goldenTracer) ThreadExited(tid machine.TID, tsc uint64)  { g.inner.ThreadExited(tid, tsc) }

// branchyProgram exercises every control-flow construct: conditional
// branches both ways, direct calls, indirect calls, returns, loops.
func branchyProgram() *prog.Program {
	b := asm.New("branchy")
	b.Global("data", 512)
	b.Global("out", 8)
	m := b.Func("main")
	m.MovI(isa.R3, 40) // outer loop count
	m.MovI(isa.R5, 0)  // accumulator
	m.Label("outer")
	m.Mov(isa.R1, isa.R3)
	m.AndI(isa.R1, 3)
	m.CmpI(isa.R1, 0)
	m.Jeq("even")
	m.Call("oddwork")
	m.Jmp("next")
	m.Label("even")
	m.MovSym(isa.R2, "evenwork", 0)
	m.CallR(isa.R2) // indirect call
	m.Label("next")
	m.Add(isa.R5, isa.R0)
	m.SubI(isa.R3, 1)
	m.CmpI(isa.R3, 0)
	m.Jgt("outer")
	m.Store(asm.Global("out", 0), isa.R5)
	m.Exit(0)

	f1 := b.Func("oddwork")
	f1.MovI(isa.R0, 0)
	f1.MovI(isa.R6, 4)
	f1.Label("l")
	f1.Load(isa.R7, asm.Global("data", 0))
	f1.Add(isa.R0, isa.R7)
	f1.SubI(isa.R6, 1)
	f1.CmpI(isa.R6, 0)
	f1.Jgt("l")
	f1.Ret()

	f2 := b.Func("evenwork")
	f2.MovI(isa.R0, 7)
	f2.Store(asm.Global("data", 8), isa.R0)
	f2.Ret()
	return mustBuild(b)
}

func runWithPT(t *testing.T, p *prog.Program, period uint64) (*goldenTracer, map[int32][]byte, map[int32]*Path, *driver.Driver) {
	t.Helper()
	mac := machine.New(p, machine.Config{Seed: 4})
	d := driver.New(mac, driver.Options{Kind: driver.ProRace, Period: period, Seed: 4, EnablePT: true})
	g := newGolden(d)
	mac.SetTracer(g)
	if _, err := mac.Run(); err != nil {
		t.Fatal(err)
	}
	tr := d.Finish()
	paths, err := DecodeAll(p, tr.PT, 0)
	if err != nil {
		t.Fatal(err)
	}
	return g, tr.PT, paths, d
}

func TestDecodeMatchesExecutionExactly(t *testing.T) {
	p := branchyProgram()
	g, _, paths, _ := runWithPT(t, p, 50)
	path := paths[0]
	want := g.pcs[0]
	if path.Len() == 0 {
		t.Fatal("empty decoded path")
	}
	if path.Len() != len(want) {
		t.Fatalf("decoded %d steps, executed %d", path.Len(), len(want))
	}
	for i := range want {
		if path.PCs[i] != want[i] {
			t.Fatalf("step %d: decoded %#x, executed %#x (%v vs %v)",
				i, path.PCs[i], want[i], p.MustInstAt(path.PCs[i]), p.MustInstAt(want[i]))
		}
	}
	if path.Truncated {
		t.Error("full stream must not truncate")
	}
}

func TestDecodeMultiThreaded(t *testing.T) {
	b := asm.New("mt")
	b.Global("g", 64)
	m := b.Func("main")
	for i := int64(0); i < 3; i++ {
		m.MovI(isa.R4, i)
		m.SpawnThread("worker", isa.R4)
		m.Mov(isa.Reg(8+i), isa.R0)
	}
	for i := int64(0); i < 3; i++ {
		m.Join(isa.Reg(8 + i))
	}
	m.Exit(0)
	w := b.Func("worker")
	w.MovI(isa.R3, 30)
	w.Label("loop")
	w.Load(isa.R1, asm.Global("g", 0))
	w.AddI(isa.R1, 1)
	w.Store(asm.Global("g", 0), isa.R1)
	w.SubI(isa.R3, 1)
	w.CmpI(isa.R3, 0)
	w.Jgt("loop")
	w.Exit(0)
	p := mustBuild(b)

	g, _, paths, _ := runWithPT(t, p, 20)
	if len(paths) != 4 {
		t.Fatalf("paths for %d threads", len(paths))
	}
	for tid, path := range paths {
		want := g.pcs[tid]
		if path.Len() != len(want) {
			t.Fatalf("tid %d: decoded %d steps, executed %d", tid, path.Len(), len(want))
		}
		for i := range want {
			if path.PCs[i] != want[i] {
				t.Fatalf("tid %d step %d mismatch", tid, i)
			}
		}
	}
}

func TestMarkersPinSamples(t *testing.T) {
	p := branchyProgram()
	mac := machine.New(p, machine.Config{Seed: 9})
	d := driver.New(mac, driver.Options{Kind: driver.ProRace, Period: 17, Seed: 9, EnablePT: true})
	mac.SetTracer(d)
	if _, err := mac.Run(); err != nil {
		t.Fatal(err)
	}
	tr := d.Finish()
	paths, err := DecodeAll(p, tr.PT, 0)
	if err != nil {
		t.Fatal(err)
	}
	path := paths[0]
	// Every stored sample must have a marker with its exact TSC, and the
	// sample IP must appear in the straight-line run ending at the
	// marker's step index.
	for _, rec := range tr.PEBS[0] {
		var found *Marker
		for i := range path.Markers {
			if path.Markers[i].TSC == rec.TSC {
				found = &path.Markers[i]
				break
			}
		}
		if found == nil {
			t.Fatalf("sample at TSC %d has no marker", rec.TSC)
		}
		// Scan backward from the marker for the sample IP within the
		// current basic-block run (no intervening branch).
		idx := -1
		for i := found.StepIndex - 1; i >= 0; i-- {
			if path.PCs[i] == rec.IP {
				idx = i
				break
			}
			if p.MustInstAt(path.PCs[i]).IsBranch() && i < found.StepIndex-1 {
				break
			}
		}
		if idx < 0 {
			t.Fatalf("sample IP %#x not found before marker at step %d", rec.IP, found.StepIndex)
		}
	}
	if len(tr.PEBS[0]) == 0 {
		t.Fatal("no samples to verify")
	}
}

func TestDecodeEmptyStream(t *testing.T) {
	p := branchyProgram()
	path, err := Decode(p, 0, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if path.Len() != 0 {
		t.Error("empty stream must decode to empty path")
	}
}

func TestDecodeTruncatedStream(t *testing.T) {
	p := branchyProgram()
	_, streams, _, _ := runWithPT(t, p, 1000)
	full := streams[0]
	// Cut the stream in half: decode must stop gracefully, truncated.
	path, err := Decode(p, 0, full[:len(full)/2], 0)
	if err != nil {
		// A cut mid-packet is a legitimate decode error; either outcome
		// (error or truncated path) is acceptable, but no panic.
		return
	}
	if !path.Truncated && path.Len() > 0 {
		t.Error("half stream must truncate")
	}
}

func TestDecodeMaxSteps(t *testing.T) {
	p := branchyProgram()
	_, streams, _, _ := runWithPT(t, p, 1000)
	path, err := Decode(p, 0, streams[0], 10)
	if err != nil {
		t.Fatal(err)
	}
	if path.Len() != 10 {
		t.Errorf("maxSteps ignored: %d steps", path.Len())
	}
}

func TestDecodeWildJumpTruncates(t *testing.T) {
	b := asm.New("wild")
	m := b.Func("main")
	m.MovI(isa.R1, 0x123456)
	m.JmpR(isa.R1)
	p := mustBuild(b)
	mac := machine.New(p, machine.Config{Seed: 1})
	d := driver.New(mac, driver.Options{Kind: driver.ProRace, Period: 100, Seed: 1, EnablePT: true})
	mac.SetTracer(d)
	if _, err := mac.Run(); err != nil {
		t.Fatal(err)
	}
	tr := d.Finish()
	path, err := Decode(p, 0, tr.PT[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if !path.Truncated {
		t.Error("wild jump must truncate the decode")
	}
	if path.Len() != 2 {
		t.Errorf("decoded %d steps, want the 2 before the wild target", path.Len())
	}
}

func TestDecodeGarbageStreamErrors(t *testing.T) {
	p := branchyProgram()
	if _, err := Decode(p, 0, []byte{0xFF, 0x01, 0x02}, 0); err == nil {
		t.Error("garbage stream must error")
	}
}

// mustBuild finalises a test program; the inputs are static, so a build
// error means the test itself is broken.
func mustBuild(b *asm.Builder) *prog.Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
