package ptdecode

import (
	"testing"
)

// FuzzPTDecodeLenient throws arbitrary byte streams at both decode modes.
// Strict may error; lenient must always return a path whose every PC is a
// real instruction of the program. Neither may panic or run away past the
// step budget.
func FuzzPTDecodeLenient(f *testing.F) {
	p, _, streams := tracePSBDense(f)
	f.Add(streams[0])
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00, 0xA5, 0x5A})
	// A valid stream with its middle third inverted: the shape lenient
	// recovery is built for.
	f.Add(corruptMiddle(streams[0]))

	const budget = 1 << 14
	f.Fuzz(func(t *testing.T, data []byte) {
		if _, err := DecodeWith(p, 0, data, Options{MaxSteps: budget}); err != nil {
			_ = err // strict mode may reject; it must only not panic
		}
		path, err := DecodeWith(p, 0, data, Options{Lenient: true, MaxSteps: budget})
		if err != nil {
			t.Fatalf("lenient decode errored: %v", err)
		}
		if path.Len() > budget {
			t.Fatalf("decode exceeded step budget: %d steps", path.Len())
		}
		for i, pc := range path.PCs {
			if _, ok := p.InstAt(pc); !ok {
				t.Fatalf("step %d: pc %#x is not an instruction", i, pc)
			}
		}
	})
}
