package ptdecode

import (
	"math/rand"
	"testing"

	"prorace/internal/machine"
	"prorace/internal/pmu/driver"
	"prorace/internal/progtest"
)

// TestFuzzDecodeMatchesExecution runs random structured programs and
// checks the decoded PT path against the executed instruction sequence —
// the decoder's end-to-end correctness property.
func TestFuzzDecodeMatchesExecution(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := progtest.RandomProgram(rng)
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		mac := machine.New(p, machine.Config{Seed: seed, MaxCycles: 5_000_000})
		d := driver.New(mac, driver.Options{Kind: driver.ProRace, Period: 7, Seed: seed, EnablePT: true})
		g := progtest.NewGolden(d)
		mac.SetTracer(g)
		if _, err := mac.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		tr := d.Finish()
		paths, err := DecodeAll(p, tr.PT, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for tid, path := range paths {
			want := g.Steps[tid]
			if path.Len() != len(want) {
				t.Fatalf("seed %d tid %d: decoded %d steps, executed %d",
					seed, tid, path.Len(), len(want))
			}
			for i := range want {
				if path.PCs[i] != want[i].PC {
					t.Fatalf("seed %d tid %d step %d: %#x vs %#x",
						seed, tid, i, path.PCs[i], want[i].PC)
				}
			}
		}
		// Every stored sample's marker must exist.
		for tid, recs := range tr.PEBS {
			markers := map[uint64]bool{}
			for _, mk := range paths[tid].Markers {
				markers[mk.TSC] = true
			}
			for _, rec := range recs {
				if !markers[rec.TSC] {
					t.Fatalf("seed %d: sample at TSC %d unmarked", seed, rec.TSC)
				}
			}
		}
	}
}
