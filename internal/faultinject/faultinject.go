// Package faultinject mutates collected traces the way the production
// environment does, so the offline analysis can be tested and measured
// against realistic damage. ProRace's online phase is deliberately lossy:
// PEBS drops samples under buffer pressure, PT overflows (OVF) and loses
// packets at high bandwidth, the aux ring buffer overwrites unread
// segments, and a crash mid-flush tears the trace file. Each injector here
// models one of those, is deterministic for a given (seed, rate) pair, and
// composes with the others in declaration order.
package faultinject

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"prorace/internal/tracefmt"
)

// Kind names one injector.
type Kind string

const (
	// Trunc cuts a prefix of every PT stream — the aux ring buffer
	// overwriting the oldest data before the perf tool read it.
	Trunc Kind = "trunc"
	// PTFlip flips one random bit in each affected PT stream byte —
	// transport or storage corruption.
	PTFlip Kind = "ptflip"
	// PTDrop removes small chunks (4–64 bytes) from PT streams — packet
	// loss under bandwidth pressure, the condition real PT signals with
	// OVF packets.
	PTDrop Kind = "ptdrop"
	// PEBSLoss drops bursts of consecutive PEBS records (mean burst ~8) —
	// the kernel discarding samples while the interrupt handler is
	// throttled.
	PEBSLoss Kind = "pebsloss"
	// SyncGap drops individual synchronization records — a torn or
	// overwritten sync-log segment.
	SyncGap Kind = "syncgap"
	// Torn cuts a few bytes off the tail of PT streams, usually splitting
	// the final packet — a short write during trace shipping.
	Torn Kind = "torn"
)

// Kinds lists every injector, in canonical order.
var Kinds = []Kind{Trunc, PTFlip, PTDrop, PEBSLoss, SyncGap, Torn}

func validKind(k Kind) bool {
	for _, v := range Kinds {
		if v == k {
			return true
		}
	}
	return false
}

// Fault is one injector activation.
type Fault struct {
	Kind Kind
	// Rate is the damage intensity in [0, 1]: the fraction of bytes,
	// records, or streams affected (see each Kind's doc).
	Rate float64
}

// Spec is a deterministic, composable fault plan.
type Spec struct {
	Seed   int64
	Faults []Fault
}

// Zero reports whether the spec injects nothing.
func (sp *Spec) Zero() bool { return sp == nil || len(sp.Faults) == 0 }

// String renders the spec in the Parse format.
func (sp *Spec) String() string {
	if sp.Zero() {
		return "none"
	}
	parts := make([]string, 0, len(sp.Faults))
	for _, f := range sp.Faults {
		parts = append(parts, fmt.Sprintf("%s=%g", f.Kind, f.Rate))
	}
	return fmt.Sprintf("%s:seed=%d", strings.Join(parts, ","), sp.Seed)
}

// Parse reads a spec of the form "kind=rate,kind=rate[:seed=N]", e.g.
// "ptflip=0.1,syncgap=0.01:seed=7". The seed defaults to 1.
func Parse(s string) (*Spec, error) {
	sp := &Spec{Seed: 1}
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return sp, nil
	}
	if head, tail, ok := strings.Cut(s, ":"); ok {
		sv, found := strings.CutPrefix(strings.TrimSpace(tail), "seed=")
		if !found {
			return nil, fmt.Errorf("faultinject: bad suffix %q (want seed=N)", tail)
		}
		seed, err := strconv.ParseInt(sv, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("faultinject: bad seed %q: %v", sv, err)
		}
		sp.Seed = seed
		s = head
	}
	for _, part := range strings.Split(s, ",") {
		name, rv, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: bad fault %q (want kind=rate)", part)
		}
		k := Kind(name)
		if !validKind(k) {
			return nil, fmt.Errorf("faultinject: unknown fault kind %q", name)
		}
		rate, err := strconv.ParseFloat(rv, 64)
		if err != nil || rate < 0 || rate > 1 {
			return nil, fmt.Errorf("faultinject: bad rate %q for %s (want 0..1)", rv, name)
		}
		sp.Faults = append(sp.Faults, Fault{Kind: k, Rate: rate})
	}
	return sp, nil
}

// Summary reports what an Apply actually damaged.
type Summary struct {
	PTBytesRemoved   int
	PTBytesFlipped   int
	PEBSDropped      int
	SyncDropped      int
	StreamsTruncated int
	StreamsTorn      int
}

// String renders a one-line damage summary.
func (s Summary) String() string {
	return fmt.Sprintf("pt: -%dB ~%dB, pebs: -%d, sync: -%d, streams: %d truncated %d torn",
		s.PTBytesRemoved, s.PTBytesFlipped, s.PEBSDropped, s.SyncDropped,
		s.StreamsTruncated, s.StreamsTorn)
}

// Apply injects the spec's faults into a copy of the trace, leaving the
// original untouched, and reports the damage done. The result is a pure
// function of (trace, spec): injectors run in declaration order over a
// single seeded generator, threads in ascending TID order.
func (sp *Spec) Apply(tr *tracefmt.Trace) (*tracefmt.Trace, Summary) {
	out := cloneTrace(tr)
	var sum Summary
	if sp.Zero() {
		return out, sum
	}
	rng := rand.New(rand.NewSource(sp.Seed))
	for _, f := range sp.Faults {
		rate := f.Rate
		if rate <= 0 {
			continue
		}
		if rate > 1 {
			rate = 1
		}
		switch f.Kind {
		case Trunc:
			for _, tid := range sortedKeys(out.PT) {
				b := out.PT[tid]
				n := int(rate * float64(len(b)))
				if n <= 0 {
					continue
				}
				out.PT[tid] = b[n:]
				sum.PTBytesRemoved += n
				sum.StreamsTruncated++
			}
		case PTFlip:
			for _, tid := range sortedKeys(out.PT) {
				b := out.PT[tid]
				for i := range b {
					if rng.Float64() < rate {
						b[i] ^= 1 << rng.Intn(8)
						sum.PTBytesFlipped++
					}
				}
			}
		case PTDrop:
			for _, tid := range sortedKeys(out.PT) {
				b := out.PT[tid]
				budget := int(rate * float64(len(b)))
				removed := 0
				for removed < budget && len(b) > 0 {
					off := rng.Intn(len(b))
					sz := 4 + rng.Intn(61)
					if sz > len(b)-off {
						sz = len(b) - off
					}
					b = append(b[:off], b[off+sz:]...)
					removed += sz
				}
				out.PT[tid] = b
				sum.PTBytesRemoved += removed
			}
		case PEBSLoss:
			for _, tid := range sortedKeys(out.PEBS) {
				recs := out.PEBS[tid]
				kept := recs[:0]
				burst := 0
				for i := range recs {
					if burst > 0 {
						burst--
						sum.PEBSDropped++
						continue
					}
					// Entering a burst of mean length 8 with probability
					// rate/8 drops ≈rate of all records overall.
					if rng.Float64() < rate/8 {
						burst = rng.Intn(15) // this record plus up to 14 more
						sum.PEBSDropped++
						continue
					}
					kept = append(kept, recs[i])
				}
				out.PEBS[tid] = kept
			}
		case SyncGap:
			kept := out.Sync[:0]
			for i := range out.Sync {
				if rng.Float64() < rate {
					sum.SyncDropped++
					continue
				}
				kept = append(kept, out.Sync[i])
			}
			out.Sync = kept
		case Torn:
			for _, tid := range sortedKeys(out.PT) {
				b := out.PT[tid]
				if len(b) < 10 || rng.Float64() >= rate {
					continue
				}
				cut := 1 + rng.Intn(8) // tears the trailing packet
				out.PT[tid] = b[:len(b)-cut]
				sum.PTBytesRemoved += cut
				sum.StreamsTorn++
			}
		}
	}
	return out, sum
}

func cloneTrace(tr *tracefmt.Trace) *tracefmt.Trace {
	out := &tracefmt.Trace{
		Program:        tr.Program,
		Period:         tr.Period,
		Seed:           tr.Seed,
		WallCycles:     tr.WallCycles,
		DroppedSamples: tr.DroppedSamples,
		PEBS:           make(map[int32][]tracefmt.PEBSRecord, len(tr.PEBS)),
		PT:             make(map[int32][]byte, len(tr.PT)),
		Sync:           append([]tracefmt.SyncRecord(nil), tr.Sync...),
	}
	for tid, recs := range tr.PEBS {
		out.PEBS[tid] = append([]tracefmt.PEBSRecord(nil), recs...)
	}
	for tid, b := range tr.PT {
		out.PT[tid] = append([]byte(nil), b...)
	}
	return out
}

func sortedKeys[V any](m map[int32]V) []int32 {
	out := make([]int32, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
