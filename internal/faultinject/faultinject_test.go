package faultinject

import (
	"bytes"
	"fmt"
	"testing"

	"prorace/internal/tracefmt"
)

// sampleTrace fabricates a trace with enough substance for every injector
// to bite: two PT streams, PEBS records, and a sync log.
func sampleTrace() *tracefmt.Trace {
	tr := &tracefmt.Trace{
		Program: "fi-test",
		Period:  100,
		PEBS:    map[int32][]tracefmt.PEBSRecord{},
		PT:      map[int32][]byte{},
	}
	for tid := int32(1); tid <= 2; tid++ {
		stream := make([]byte, 4096)
		for i := range stream {
			stream[i] = byte(i * int(tid))
		}
		tr.PT[tid] = stream
		for i := 0; i < 200; i++ {
			tr.PEBS[tid] = append(tr.PEBS[tid], tracefmt.PEBSRecord{
				TID: tid, IP: uint64(i), Addr: uint64(i * 8), TSC: uint64(i * 100),
			})
		}
		tr.Sync = append(tr.Sync,
			tracefmt.SyncRecord{TID: tid, Kind: tracefmt.SyncLock, Addr: 0x100, TSC: uint64(tid)},
			tracefmt.SyncRecord{TID: tid, Kind: tracefmt.SyncUnlock, Addr: 0x100, TSC: uint64(tid) + 10},
		)
	}
	return tr
}

func traceEqual(a, b *tracefmt.Trace) bool {
	return bytes.Equal(a.Encode(), b.Encode())
}

func TestApplyDeterministic(t *testing.T) {
	tr := sampleTrace()
	for _, kind := range Kinds {
		sp := &Spec{Seed: 7, Faults: []Fault{{Kind: kind, Rate: 0.3}}}
		out1, sum1 := sp.Apply(tr)
		out2, sum2 := sp.Apply(tr)
		if !traceEqual(out1, out2) {
			t.Errorf("%s: same (seed, rate) produced different traces", kind)
		}
		if sum1 != sum2 {
			t.Errorf("%s: same (seed, rate) produced different summaries: %v vs %v", kind, sum1, sum2)
		}
	}
}

func TestApplySeedMatters(t *testing.T) {
	tr := sampleTrace()
	sp1 := &Spec{Seed: 1, Faults: []Fault{{Kind: PTFlip, Rate: 0.2}}}
	sp2 := &Spec{Seed: 2, Faults: []Fault{{Kind: PTFlip, Rate: 0.2}}}
	out1, _ := sp1.Apply(tr)
	out2, _ := sp2.Apply(tr)
	if traceEqual(out1, out2) {
		t.Error("different seeds produced identical corruption")
	}
}

func TestApplyLeavesOriginalUntouched(t *testing.T) {
	tr := sampleTrace()
	before := tr.Encode()
	sp := &Spec{Seed: 3, Faults: []Fault{
		{Kind: Trunc, Rate: 0.5}, {Kind: PTFlip, Rate: 0.5}, {Kind: PTDrop, Rate: 0.5},
		{Kind: PEBSLoss, Rate: 0.5}, {Kind: SyncGap, Rate: 0.5}, {Kind: Torn, Rate: 1},
	}}
	_, sum := sp.Apply(tr)
	if !bytes.Equal(before, tr.Encode()) {
		t.Fatal("Apply mutated the original trace")
	}
	if sum.PTBytesRemoved == 0 || sum.PTBytesFlipped == 0 || sum.PEBSDropped == 0 ||
		sum.SyncDropped == 0 || sum.StreamsTruncated == 0 {
		t.Errorf("composed injectors left some damage counter at zero: %v", sum)
	}
}

func TestApplyDamageScalesWithRate(t *testing.T) {
	tr := sampleTrace()
	low := &Spec{Seed: 5, Faults: []Fault{{Kind: PTFlip, Rate: 0.01}}}
	high := &Spec{Seed: 5, Faults: []Fault{{Kind: PTFlip, Rate: 0.5}}}
	_, sumLow := low.Apply(tr)
	_, sumHigh := high.Apply(tr)
	if sumLow.PTBytesFlipped >= sumHigh.PTBytesFlipped {
		t.Errorf("flips at 1%% (%d) should be fewer than at 50%% (%d)",
			sumLow.PTBytesFlipped, sumHigh.PTBytesFlipped)
	}
}

func TestZeroSpec(t *testing.T) {
	tr := sampleTrace()
	var nilSpec *Spec
	if !nilSpec.Zero() {
		t.Error("nil spec must be Zero")
	}
	sp := &Spec{Seed: 9}
	out, sum := sp.Apply(tr)
	if !traceEqual(out, tr) || sum != (Summary{}) {
		t.Error("zero spec must be an identity transform")
	}
	if sp.String() != "none" {
		t.Errorf("zero spec String = %q, want none", sp.String())
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	sp, err := Parse("ptflip=0.1,syncgap=0.01:seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Seed != 7 || len(sp.Faults) != 2 ||
		sp.Faults[0] != (Fault{PTFlip, 0.1}) || sp.Faults[1] != (Fault{SyncGap, 0.01}) {
		t.Fatalf("parsed %+v", sp)
	}
	back, err := Parse(sp.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", sp.String(), err)
	}
	if back.String() != sp.String() {
		t.Errorf("round trip %q -> %q", sp.String(), back.String())
	}
	for _, s := range []string{"", "none"} {
		sp, err := Parse(s)
		if err != nil || !sp.Zero() || sp.Seed != 1 {
			t.Errorf("Parse(%q) = %+v, %v; want zero spec with seed 1", s, sp, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{
		"bogus=0.1",        // unknown kind
		"ptflip",           // missing rate
		"ptflip=2",         // rate out of range
		"ptflip=-0.1",      // rate out of range
		"ptflip=x",         // unparseable rate
		"ptflip=0.1:bad",   // bad suffix
		"ptflip=0.1:seed=", // bad seed
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestEveryKindDefaultSeed(t *testing.T) {
	// Every kind at full rate on the default-seed path: no panics, and the
	// damaged trace still encodes/decodes.
	tr := sampleTrace()
	for _, kind := range Kinds {
		sp, err := Parse(fmt.Sprintf("%s=1", kind))
		if err != nil {
			t.Fatal(err)
		}
		out, _ := sp.Apply(tr)
		if _, err := tracefmt.DecodeTrace(out.Encode()); err != nil {
			t.Errorf("%s: damaged trace container no longer round-trips: %v", kind, err)
		}
	}
}
