package faultinject

// Crash points extend the trace injectors to the *process* failure model:
// where the trace injectors damage data in flight, a crash point kills the
// daemon at a seeded instruction boundary — mid journal append, before an
// fsync, between a temp-file write and its rename — so the chaos harness
// can prove that restart-and-replay reconstructs exactly the state an
// uninterrupted run would have reached.
//
// Arming is deterministic: a spec "name=N" fires the named point on its
// Nth hit (1-based) and never before, so a given spec kills a given
// workload at exactly one reproducible place. Specs come from the
// PRORACE_CRASHPOINTS environment variable ("wal.append.mid=3,
// store.rename.mid=1") so a real spawned daemon can be killed without
// test-only wiring, or from SetCrashPoints for in-process tests. A
// process with no armed points pays one mutex + map lookup per site.

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
)

// CrashEnv is the environment variable consulted for crash-point specs.
const CrashEnv = "PRORACE_CRASHPOINTS"

// CrashExitCode is the status a fired crash point exits with, so harnesses
// can tell an injected crash (restart and continue) from a clean exit.
const CrashExitCode = 3

var (
	crashMu     sync.Mutex
	crashPoints map[string]int // point -> hits remaining before firing
	crashLoaded bool
	crashExit   = func() { os.Exit(CrashExitCode) }
)

// SetCrashPoints arms the given spec ("name=N,name=M"; "" disarms all),
// replacing any previously armed points including ones read from the
// environment. N is the 1-based hit on which the point fires.
func SetCrashPoints(spec string) error {
	points, err := parseCrashSpec(spec)
	if err != nil {
		return err
	}
	crashMu.Lock()
	crashLoaded = true
	crashPoints = points
	crashMu.Unlock()
	return nil
}

// SetCrashExit overrides process termination (tests use a panic to observe
// the firing site). It returns a function restoring the previous behaviour.
func SetCrashExit(f func()) (restore func()) {
	crashMu.Lock()
	prev := crashExit
	crashExit = f
	crashMu.Unlock()
	return func() {
		crashMu.Lock()
		crashExit = prev
		crashMu.Unlock()
	}
}

func parseCrashSpec(spec string) (map[string]int, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	points := map[string]int{}
	for _, part := range strings.Split(spec, ",") {
		name, nv, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("faultinject: bad crash point %q (want name=N)", part)
		}
		n, err := strconv.Atoi(nv)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("faultinject: bad crash count %q for %s (want N >= 1)", nv, name)
		}
		points[name] = n
	}
	return points, nil
}

// crashNow consumes one hit of the named point and reports whether it
// fires. The environment spec is parsed on first use; a malformed env spec
// disarms everything (a chaos harness typo must not change production
// control flow).
func crashNow(point string) (fire bool, exit func()) {
	crashMu.Lock()
	defer crashMu.Unlock()
	if !crashLoaded {
		crashLoaded = true
		crashPoints, _ = parseCrashSpec(os.Getenv(CrashEnv))
	}
	n, ok := crashPoints[point]
	if !ok {
		return false, nil
	}
	n--
	if n <= 0 {
		delete(crashPoints, point) // disarm: relevant only when exit is overridden
		return true, crashExit
	}
	crashPoints[point] = n
	return false, nil
}

// Crash terminates the process if the named crash point is armed and this
// is its firing hit; otherwise it is a cheap no-op.
func Crash(point string) {
	if fire, exit := crashNow(point); fire {
		exit()
	}
}

// CrashWith is Crash with a pre-crash damage callback: when the point
// fires, damage runs first (e.g. writing half a journal record to model a
// torn append) and then the process exits.
func CrashWith(point string, damage func()) {
	if fire, exit := crashNow(point); fire {
		damage()
		exit()
	}
}
