package faultinject

import "testing"

func TestParseCrashSpec(t *testing.T) {
	pts, err := parseCrashSpec("wal.append.mid=3, store.rename.mid=1")
	if err != nil {
		t.Fatal(err)
	}
	if pts["wal.append.mid"] != 3 || pts["store.rename.mid"] != 1 {
		t.Fatalf("parsed %v", pts)
	}
	if pts, err := parseCrashSpec("  "); err != nil || pts != nil {
		t.Fatalf("empty spec = (%v, %v)", pts, err)
	}
	for _, bad := range []string{"noequals", "=3", "p=0", "p=-1", "p=x"} {
		if _, err := parseCrashSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestCrashFiresOnNthHit(t *testing.T) {
	if err := SetCrashPoints("p=3"); err != nil {
		t.Fatal(err)
	}
	defer SetCrashPoints("")
	fired := 0
	restore := SetCrashExit(func() { fired++ })
	defer restore()
	for i := 0; i < 5; i++ {
		Crash("p")
		Crash("other") // unarmed points are no-ops
	}
	// Fires exactly once, on the 3rd hit, then disarms.
	if fired != 1 {
		t.Fatalf("fired %d times, want 1", fired)
	}
}

func TestCrashWithRunsDamageFirst(t *testing.T) {
	if err := SetCrashPoints("q=1"); err != nil {
		t.Fatal(err)
	}
	defer SetCrashPoints("")
	var order []string
	restore := SetCrashExit(func() { order = append(order, "exit") })
	defer restore()
	CrashWith("q", func() { order = append(order, "damage") })
	if len(order) != 2 || order[0] != "damage" || order[1] != "exit" {
		t.Fatalf("order = %v, want [damage exit]", order)
	}
	// Disarmed now: neither damage nor exit runs again.
	CrashWith("q", func() { order = append(order, "damage2") })
	if len(order) != 2 {
		t.Fatalf("disarmed point still ran: %v", order)
	}
}

func TestSetCrashPointsRejectsBadSpec(t *testing.T) {
	if err := SetCrashPoints("p=1"); err != nil {
		t.Fatal(err)
	}
	defer SetCrashPoints("")
	// A bad spec is an error and must not clobber the armed points...
	if err := SetCrashPoints("bogus"); err == nil {
		t.Fatal("bad spec accepted")
	}
	fired := 0
	restore := SetCrashExit(func() { fired++ })
	defer restore()
	Crash("p")
	if fired != 1 {
		t.Fatal("good spec lost after rejected update")
	}
}
