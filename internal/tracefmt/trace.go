package tracefmt

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
)

// Trace bundles everything the online phase of ProRace produced for one
// run: per-thread PEBS sample streams, per-thread PT packet streams, and
// the synchronization log. It is the hand-off artifact between the
// production machine and the offline analysis machine (paper §3).
type Trace struct {
	// Program names the traced workload.
	Program string
	// Period is the PEBS sampling period used.
	Period uint64
	// Seed identifies the run.
	Seed int64
	// WallCycles is the traced run's duration in TSC cycles.
	WallCycles uint64
	// PEBS holds each thread's sample stream in TSC order.
	PEBS map[int32][]PEBSRecord
	// PT holds each thread's encoded PT packet stream.
	PT map[int32][]byte
	// Sync is the synchronization log (TSC-ordered within each thread).
	Sync []SyncRecord
	// DroppedSamples counts PEBS records the kernel discarded under
	// interrupt-handler overload — the effect behind the paper's
	// observation that period 10 can yield a *smaller* trace than 100.
	DroppedSamples uint64
}

// NewTrace returns an empty trace for a program.
func NewTrace(program string, period uint64, seed int64) *Trace {
	return &Trace{
		Program: program,
		Period:  period,
		Seed:    seed,
		PEBS:    map[int32][]PEBSRecord{},
		PT:      map[int32][]byte{},
	}
}

// TIDs returns the thread IDs present in the trace, ascending.
func (t *Trace) TIDs() []int32 {
	seen := map[int32]bool{}
	for tid := range t.PEBS {
		seen[tid] = true
	}
	for tid := range t.PT {
		seen[tid] = true
	}
	for i := range t.Sync {
		seen[t.Sync[i].TID] = true
	}
	out := make([]int32, 0, len(seen))
	for tid := range seen {
		out = append(out, tid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SampleCount returns the total number of PEBS samples.
func (t *Trace) SampleCount() int {
	n := 0
	for _, recs := range t.PEBS {
		n += len(recs)
	}
	return n
}

// Sizes reports the serialised size in bytes of each trace component.
// These are the numbers behind Figures 8 and 9.
func (t *Trace) Sizes() (pebsBytes, ptBytes, syncBytes uint64) {
	for _, recs := range t.PEBS {
		pebsBytes += uint64(len(recs)) * PEBSRecordSize
	}
	for _, stream := range t.PT {
		ptBytes += uint64(len(stream))
	}
	syncBytes = uint64(len(t.Sync)) * SyncRecordSize
	return
}

// TotalBytes is the full serialised payload size.
func (t *Trace) TotalBytes() uint64 {
	p, q, s := t.Sizes()
	return p + q + s
}

// MBPerSecond converts the trace volume to the paper's MB/s metric, at the
// machine's 4 GHz clock.
func (t *Trace) MBPerSecond() float64 {
	if t.WallCycles == 0 {
		return 0
	}
	seconds := float64(t.WallCycles) / 4e9
	return float64(t.TotalBytes()) / 1e6 / seconds
}

const traceMagic = "PRTR"

// Encode serialises the trace to its container format.
func (t *Trace) Encode() []byte {
	var b bytes.Buffer
	b.WriteString(traceMagic)
	wu16 := func(v uint16) { var x [2]byte; binary.LittleEndian.PutUint16(x[:], v); b.Write(x[:]) }
	wu32 := func(v uint32) { var x [4]byte; binary.LittleEndian.PutUint32(x[:], v); b.Write(x[:]) }
	wu64 := func(v uint64) { var x [8]byte; binary.LittleEndian.PutUint64(x[:], v); b.Write(x[:]) }
	wu16(uint16(len(t.Program)))
	b.WriteString(t.Program)
	wu64(t.Period)
	wu64(uint64(t.Seed))
	wu64(t.WallCycles)
	wu64(t.DroppedSamples)

	tids := t.TIDs()
	wu32(uint32(len(tids)))
	for _, tid := range tids {
		wu32(uint32(tid))
		recs := t.PEBS[tid]
		wu32(uint32(len(recs)))
		for i := range recs {
			b.Write(recs[i].Encode(nil))
		}
		stream := t.PT[tid]
		wu32(uint32(len(stream)))
		b.Write(stream)
	}
	wu32(uint32(len(t.Sync)))
	for i := range t.Sync {
		b.Write(t.Sync[i].Encode(nil))
	}
	return b.Bytes()
}

// DecodeTrace parses a container produced by Encode.
func DecodeTrace(src []byte) (*Trace, error) {
	r := &sliceReader{buf: src}
	if string(r.take(4)) != traceMagic {
		return nil, fmt.Errorf("tracefmt: bad trace magic")
	}
	t := &Trace{PEBS: map[int32][]PEBSRecord{}, PT: map[int32][]byte{}}
	t.Program = string(r.take(int(r.u16())))
	t.Period = r.u64()
	t.Seed = int64(r.u64())
	t.WallCycles = r.u64()
	t.DroppedSamples = r.u64()
	ntids := int(r.u32())
	for k := 0; k < ntids && r.err == nil; k++ {
		tid := int32(r.u32())
		nrec := int(r.u32())
		if nrec > 0 {
			recs := make([]PEBSRecord, 0, nrec)
			for i := 0; i < nrec; i++ {
				raw := r.take(PEBSRecordSize)
				if r.err != nil {
					break
				}
				rec, _, err := DecodePEBSRecord(raw)
				if err != nil {
					return nil, err
				}
				recs = append(recs, rec)
			}
			t.PEBS[tid] = recs
		}
		nstream := int(r.u32())
		if nstream > 0 {
			t.PT[tid] = append([]byte(nil), r.take(nstream)...)
		}
	}
	nsync := int(r.u32())
	for i := 0; i < nsync && r.err == nil; i++ {
		raw := r.take(SyncRecordSize)
		if r.err != nil {
			break
		}
		rec, _, err := DecodeSyncRecord(raw)
		if err != nil {
			return nil, err
		}
		t.Sync = append(t.Sync, rec)
	}
	if r.err != nil {
		return nil, fmt.Errorf("tracefmt: truncated trace: %w", r.err)
	}
	return t, nil
}

type sliceReader struct {
	buf []byte
	off int
	err error
}

func (r *sliceReader) take(n int) []byte {
	if r.err != nil || r.off+n > len(r.buf) {
		if r.err == nil {
			r.err = fmt.Errorf("need %d bytes at %d of %d", n, r.off, len(r.buf))
		}
		return make([]byte, n)
	}
	out := r.buf[r.off : r.off+n]
	r.off += n
	return out
}

func (r *sliceReader) u16() uint16 { return binary.LittleEndian.Uint16(r.take(2)) }
func (r *sliceReader) u32() uint32 { return binary.LittleEndian.Uint32(r.take(4)) }
func (r *sliceReader) u64() uint64 { return binary.LittleEndian.Uint64(r.take(8)) }
