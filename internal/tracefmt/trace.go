package tracefmt

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
)

// Trace bundles everything the online phase of ProRace produced for one
// run: per-thread PEBS sample streams, per-thread PT packet streams, and
// the synchronization log. It is the hand-off artifact between the
// production machine and the offline analysis machine (paper §3).
type Trace struct {
	// Program names the traced workload.
	Program string
	// Period is the PEBS sampling period used.
	Period uint64
	// Seed identifies the run.
	Seed int64
	// WallCycles is the traced run's duration in TSC cycles.
	WallCycles uint64
	// PEBS holds each thread's sample stream in TSC order.
	PEBS map[int32][]PEBSRecord
	// PT holds each thread's encoded PT packet stream.
	PT map[int32][]byte
	// Sync is the synchronization log (TSC-ordered within each thread).
	Sync []SyncRecord
	// DroppedSamples counts PEBS records the kernel discarded under
	// interrupt-handler overload — the effect behind the paper's
	// observation that period 10 can yield a *smaller* trace than 100.
	DroppedSamples uint64
}

// NewTrace returns an empty trace for a program.
func NewTrace(program string, period uint64, seed int64) *Trace {
	return &Trace{
		Program: program,
		Period:  period,
		Seed:    seed,
		PEBS:    map[int32][]PEBSRecord{},
		PT:      map[int32][]byte{},
	}
}

// TIDs returns the thread IDs present in the trace, ascending.
func (t *Trace) TIDs() []int32 {
	seen := map[int32]bool{}
	for tid := range t.PEBS {
		seen[tid] = true
	}
	for tid := range t.PT {
		seen[tid] = true
	}
	for i := range t.Sync {
		seen[t.Sync[i].TID] = true
	}
	out := make([]int32, 0, len(seen))
	for tid := range seen {
		out = append(out, tid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SampleCount returns the total number of PEBS samples.
func (t *Trace) SampleCount() int {
	n := 0
	for _, recs := range t.PEBS {
		n += len(recs)
	}
	return n
}

// Sizes reports the serialised size in bytes of each trace component.
// These are the numbers behind Figures 8 and 9.
func (t *Trace) Sizes() (pebsBytes, ptBytes, syncBytes uint64) {
	for _, recs := range t.PEBS {
		pebsBytes += uint64(len(recs)) * PEBSRecordSize
	}
	for _, stream := range t.PT {
		ptBytes += uint64(len(stream))
	}
	syncBytes = uint64(len(t.Sync)) * SyncRecordSize
	return
}

// TotalBytes is the full serialised payload size.
func (t *Trace) TotalBytes() uint64 {
	p, q, s := t.Sizes()
	return p + q + s
}

// MBPerSecond converts the trace volume to the paper's MB/s metric, at the
// machine's 4 GHz clock.
func (t *Trace) MBPerSecond() float64 {
	if t.WallCycles == 0 {
		return 0
	}
	seconds := float64(t.WallCycles) / 4e9
	return float64(t.TotalBytes()) / 1e6 / seconds
}

// Fingerprint returns a 64-bit FNV-1a hash of the trace's full content —
// everything Encode would serialise — without materialising the container.
// Two traces with equal content hash equal, so the offline analysis can key
// its decoded-path cache on the fingerprint: a re-analysis of the same
// trace (a §5.1 regeneration round, a repeated experiment, an ablation
// sweep over analysis knobs) reuses the decode instead of repeating it,
// while any mutation — fault injection, salvage, sanitisation — changes the
// fingerprint and misses.
func (t *Trace) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b []byte) {
		for _, c := range b {
			h = (h ^ uint64(c)) * prime64
		}
	}
	var scratch [8]byte
	mixU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		mix(scratch[:])
	}
	mix([]byte(t.Program))
	mixU64(t.Period)
	mixU64(uint64(t.Seed))
	mixU64(t.WallCycles)
	mixU64(t.DroppedSamples)

	recBuf := make([]byte, 0, PEBSRecordSize)
	for _, tid := range t.TIDs() {
		mixU64(uint64(uint32(tid)))
		recs := t.PEBS[tid]
		mixU64(uint64(len(recs)))
		for i := range recs {
			recBuf = recs[i].Encode(recBuf[:0])
			mix(recBuf)
		}
		stream := t.PT[tid]
		mixU64(uint64(len(stream)))
		mix(stream)
	}
	mixU64(uint64(len(t.Sync)))
	for i := range t.Sync {
		recBuf = t.Sync[i].Encode(recBuf[:0])
		mix(recBuf)
	}
	return h
}

const traceMagic = "PRTR"

// Encode serialises the trace to its container format.
func (t *Trace) Encode() []byte {
	var b bytes.Buffer
	b.WriteString(traceMagic)
	wu16 := func(v uint16) { var x [2]byte; binary.LittleEndian.PutUint16(x[:], v); b.Write(x[:]) }
	wu32 := func(v uint32) { var x [4]byte; binary.LittleEndian.PutUint32(x[:], v); b.Write(x[:]) }
	wu64 := func(v uint64) { var x [8]byte; binary.LittleEndian.PutUint64(x[:], v); b.Write(x[:]) }
	wu16(uint16(len(t.Program)))
	b.WriteString(t.Program)
	wu64(t.Period)
	wu64(uint64(t.Seed))
	wu64(t.WallCycles)
	wu64(t.DroppedSamples)

	tids := t.TIDs()
	wu32(uint32(len(tids)))
	for _, tid := range tids {
		wu32(uint32(tid))
		recs := t.PEBS[tid]
		wu32(uint32(len(recs)))
		for i := range recs {
			b.Write(recs[i].Encode(nil))
		}
		stream := t.PT[tid]
		wu32(uint32(len(stream)))
		b.Write(stream)
	}
	wu32(uint32(len(t.Sync)))
	for i := range t.Sync {
		b.Write(t.Sync[i].Encode(nil))
	}
	return b.Bytes()
}

// DecodeTrace parses a container produced by Encode. Malformed input
// yields an *ErrCorrupt describing the damage; it never panics, and every
// length field is validated against the remaining payload before any
// allocation, so adversarial counts cannot exhaust memory.
func DecodeTrace(src []byte) (*Trace, error) {
	t, salvage := decodeTrace(src)
	if salvage.Err != nil {
		return nil, salvage.Err
	}
	return t, nil
}

// SalvageInfo describes what a lenient container decode had to give up.
type SalvageInfo struct {
	// Truncated is true when the container ended before its declared
	// contents (torn write, short read, ring overwrite of the tail).
	Truncated bool
	// TornBytes counts trailing bytes that did not form a whole record.
	TornBytes int
	// DroppedPEBS and DroppedSync count declared records lost to the
	// truncation; DroppedPTBytes likewise for PT stream payload.
	DroppedPEBS    int
	DroppedSync    int
	DroppedPTBytes int
	// Err is the corruption that stopped the strict decode (nil if clean).
	Err error
}

// Degraded reports whether anything was lost.
func (s *SalvageInfo) Degraded() bool { return s.Err != nil || s.Truncated }

// DecodeTraceLenient parses as much of a (possibly torn or truncated)
// container as survives, returning the salvaged trace and what was lost.
// Only an unrecognisable header (bad magic) is a hard error — ProRace's
// deployment model treats partial traces as the normal case, so whatever
// prefix decodes cleanly is analysed.
func DecodeTraceLenient(src []byte) (*Trace, *SalvageInfo, error) {
	t, salvage := decodeTrace(src)
	if t == nil {
		return nil, salvage, salvage.Err
	}
	return t, salvage, nil
}

func decodeTrace(src []byte) (*Trace, *SalvageInfo) {
	sal := &SalvageInfo{}
	r := &sliceReader{buf: src}
	if string(r.take(4)) != traceMagic {
		sal.Err = &ErrCorrupt{Offset: 0, Reason: "bad trace magic"}
		return nil, sal
	}
	corrupt := func(reason string) {
		if sal.Err == nil {
			sal.Err = &ErrCorrupt{Offset: r.off, Reason: reason}
		}
		sal.Truncated = true
	}
	// remaining is the undecoded payload size, the ceiling for any
	// declared length.
	remaining := func() int { return len(r.buf) - r.off }

	t := &Trace{PEBS: map[int32][]PEBSRecord{}, PT: map[int32][]byte{}}
	nameLen := int(r.u16())
	if nameLen > remaining() {
		corrupt("program name length exceeds payload")
		return t, sal
	}
	t.Program = string(r.take(nameLen))
	t.Period = r.u64()
	t.Seed = int64(r.u64())
	t.WallCycles = r.u64()
	t.DroppedSamples = r.u64()
	if r.err != nil {
		corrupt("truncated header")
		return t, sal
	}
	ntids := int(r.u32())
	if ntids > remaining()/8 { // 8 bytes of per-thread framing minimum
		corrupt("thread count exceeds payload")
		return t, sal
	}
	for k := 0; k < ntids; k++ {
		tid := int32(r.u32())
		nrec := int(r.u32())
		if r.err != nil || nrec > remaining()/PEBSRecordSize {
			if r.err == nil {
				sal.DroppedPEBS += nrec
			}
			corrupt("PEBS record count exceeds payload")
			return t, sal
		}
		if nrec > 0 {
			recs := make([]PEBSRecord, 0, nrec)
			for i := 0; i < nrec; i++ {
				raw := r.take(PEBSRecordSize)
				if r.err != nil {
					sal.TornBytes = remaining()
					sal.DroppedPEBS += nrec - i
					corrupt("torn PEBS record")
					t.PEBS[tid] = recs
					return t, sal
				}
				rec, _, err := DecodePEBSRecord(raw)
				if err != nil {
					sal.DroppedPEBS++
					if sal.Err == nil {
						sal.Err = &ErrCorrupt{Offset: r.off - PEBSRecordSize, Reason: err.Error()}
					}
					continue
				}
				recs = append(recs, rec)
			}
			t.PEBS[tid] = recs
		}
		nstream := int(r.u32())
		if r.err != nil || nstream > remaining() {
			if r.err == nil {
				sal.DroppedPTBytes += nstream
			}
			corrupt("PT stream length exceeds payload")
			return t, sal
		}
		if nstream > 0 {
			t.PT[tid] = append([]byte(nil), r.take(nstream)...)
		}
	}
	nsync := int(r.u32())
	if r.err != nil || nsync > remaining()/SyncRecordSize {
		if r.err == nil {
			sal.DroppedSync += nsync
		}
		corrupt("sync record count exceeds payload")
		return t, sal
	}
	for i := 0; i < nsync; i++ {
		raw := r.take(SyncRecordSize)
		if r.err != nil {
			sal.TornBytes = remaining()
			sal.DroppedSync += nsync - i
			corrupt("torn sync record")
			return t, sal
		}
		rec, _, err := DecodeSyncRecord(raw)
		if err != nil {
			sal.DroppedSync++
			if sal.Err == nil {
				sal.Err = &ErrCorrupt{Offset: r.off - SyncRecordSize, Reason: err.Error()}
			}
			continue
		}
		t.Sync = append(t.Sync, rec)
	}
	return t, sal
}

type sliceReader struct {
	buf []byte
	off int
	err error
}

func (r *sliceReader) take(n int) []byte {
	if r.err != nil || r.off+n > len(r.buf) {
		if r.err == nil {
			r.err = fmt.Errorf("need %d bytes at %d of %d", n, r.off, len(r.buf))
		}
		return make([]byte, n)
	}
	out := r.buf[r.off : r.off+n]
	r.off += n
	return out
}

func (r *sliceReader) u16() uint16 { return binary.LittleEndian.Uint16(r.take(2)) }
func (r *sliceReader) u32() uint32 { return binary.LittleEndian.Uint32(r.take(4)) }
func (r *sliceReader) u64() uint64 { return binary.LittleEndian.Uint64(r.take(8)) }
