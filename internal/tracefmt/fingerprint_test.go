package tracefmt

import (
	"math/rand"
	"testing"
)

func fingerprintTrace(seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := NewTrace("apache", 10000, 7)
	tr.WallCycles = 4_000_000
	tr.DroppedSamples = 5
	for tid := int32(0); tid < 3; tid++ {
		for k := 0; k < 20; k++ {
			rec := randPEBS(rng)
			rec.TID = tid
			tr.PEBS[tid] = append(tr.PEBS[tid], rec)
		}
		stream := AppendTSC(nil, 100)
		stream, _ = AppendTNT(stream, 0b11, 2)
		tr.PT[tid] = AppendEnd(stream)
	}
	for k := 0; k < 10; k++ {
		tr.Sync = append(tr.Sync, SyncRecord{TID: int32(k % 3), Kind: SyncLock, TSC: uint64(k), Addr: 0x600000})
	}
	return tr
}

func TestFingerprintStableAcrossCopies(t *testing.T) {
	a := fingerprintTrace(3)
	b := fingerprintTrace(3)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("content-identical traces must fingerprint equal")
	}
	// The fingerprint must survive an encode/decode round trip: the cache
	// key of a trace read back from disk equals the in-memory original's.
	back, err := DecodeTrace(a.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != a.Fingerprint() {
		t.Fatal("round-tripped trace must fingerprint equal")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := fingerprintTrace(3).Fingerprint()
	mutations := map[string]func(*Trace){
		"pt byte flip":      func(tr *Trace) { tr.PT[1][2] ^= 0x01 },
		"pebs addr":         func(tr *Trace) { tr.PEBS[0][3].Addr++ },
		"sync kind":         func(tr *Trace) { tr.Sync[4].Kind = SyncUnlock },
		"dropped counter":   func(tr *Trace) { tr.DroppedSamples++ },
		"program name":      func(tr *Trace) { tr.Program = "apache2" },
		"period":            func(tr *Trace) { tr.Period++ },
		"sync record added": func(tr *Trace) { tr.Sync = append(tr.Sync, SyncRecord{TID: 1, Kind: SyncFree}) },
		"pt stream dropped": func(tr *Trace) { delete(tr.PT, 2) },
	}
	for name, mutate := range mutations {
		tr := fingerprintTrace(3)
		mutate(tr)
		if tr.Fingerprint() == base {
			t.Errorf("%s: fingerprint unchanged after mutation", name)
		}
	}
}
