package tracefmt

import (
	"encoding/binary"
	"fmt"
)

// PT packet stream. The simulated Processor Trace produces a compact binary
// stream per thread, modelled on real Intel PT:
//
//   - TNT packets pack up to 6 conditional-branch taken/not-taken bits into
//     one payload byte;
//   - TNTREP packets run-length-encode repeats of one full 6-bit TNT
//     pattern — this stands in for the very high compression hardware PT
//     achieves on loopy code, and is what keeps the PT share of the trace
//     around 1% as the paper reports (§7.3);
//   - TIP packets carry the 8-byte target of an indirect branch (JMPR,
//     CALLR, RET), which cannot be recovered statically;
//   - TSC packets carry the timestamp counter, emitted periodically so the
//     offline stage can time-align PT with PEBS and the sync log;
//   - END marks the end of a thread's stream.
//
// Packet layout: one kind byte followed by the payload.
type PTPacketKind uint8

const (
	PktTNT      PTPacketKind = iota // partial group: count byte + bits byte
	PktTNTRep                       // pattern byte + uint32 repeat count
	PktTIP                          // uint64 target
	PktTSC                          // uint64 tsc
	PktEnd                          // no payload
	PktTNT6                         // one full 6-bit group: bits byte
	PktTNTRepEx                     // repeated pattern with sparse exceptions
	PktPSB                          // sync point: 2 magic bytes + uint64 anchor pc
)

// ErrCorrupt is the typed decode error every malformed-stream condition
// reports: the byte offset at which decoding failed and why. Lenient
// consumers match on it (errors.As) and resync; strict consumers surface
// it with position information instead of a panic.
type ErrCorrupt struct {
	Offset int
	Reason string
}

func (e *ErrCorrupt) Error() string {
	return fmt.Sprintf("tracefmt: corrupt at byte %d: %s", e.Offset, e.Reason)
}

// psbMagic0/1 are the PSB payload magic. The 3-byte kind+magic pattern is
// what Resync scans for, so it is chosen to be unlikely in other payloads.
const (
	psbMagic0 = 0xA5
	psbMagic1 = 0x5A
)

// psbSize is the serialised size of a PSB packet.
const psbSize = 1 + 2 + 8

// TNTBitsPerPacket is the number of branch outcomes one TNT payload packs.
const TNTBitsPerPacket = 6

// TNTException patches one group inside a TNTRepEx run.
type TNTException struct {
	// Index is the deviating group's position within the run (0-based).
	Index uint32
	// Bits is the deviating group's actual pattern.
	Bits uint8
}

// PTPacket is one decoded packet.
type PTPacket struct {
	Kind PTPacketKind
	// Bits holds TNT outcomes, LSB = oldest branch; NBits of them are
	// valid (1..6). For TNTRep/TNTRepEx it is the repeated pattern.
	Bits  uint8
	NBits uint8
	// Count is the repeat count for TNTRep/TNTRepEx (each repeat is a
	// full 6-bit Bits pattern).
	Count uint32
	// Exceptions are TNTRepEx's deviating groups, ascending by Index.
	Exceptions []TNTException
	// Target is the TIP target address.
	Target uint64
	// TSC is the timestamp payload.
	TSC uint64
}

// AppendTNT appends a TNT packet with n (1..6) outcomes in bits. A count
// outside that range is a caller bug; dst is returned unchanged with an
// error rather than panicking, so encoder layers degrade instead of
// crashing the process.
func AppendTNT(dst []byte, bits uint8, n uint8) ([]byte, error) {
	if n == 0 || n > TNTBitsPerPacket {
		return dst, fmt.Errorf("tracefmt: bad TNT bit count %d", n)
	}
	// payload: low 6 bits = outcomes, high 2 bits... n needs 3 bits, so
	// use two bytes: n byte + bits byte? Keep it one kind byte + one count
	// byte + one bits byte for simplicity and determinism.
	return append(dst, byte(PktTNT), n, bits&0x3F), nil
}

// AppendTNTRep appends a run-length-encoded TNT packet: `count` repetitions
// of the full 6-bit pattern.
func AppendTNTRep(dst []byte, pattern uint8, count uint32) []byte {
	var b [6]byte
	b[0] = byte(PktTNTRep)
	b[1] = pattern & 0x3F
	binary.LittleEndian.PutUint32(b[2:], count)
	return append(dst, b[:]...)
}

// AppendTNT6 appends one full six-outcome group as a compact two-byte
// packet — the density of real PT's short TNT packets.
func AppendTNT6(dst []byte, bits uint8) []byte {
	return append(dst, byte(PktTNT6), bits&0x3F)
}

// MaxTNTExceptions bounds the exception list of one TNTRepEx packet.
const MaxTNTExceptions = 15

// AppendTNTRepEx appends a run of `count` groups that all match `pattern`
// except at the listed positions — how the simulated PT keeps
// almost-periodic loop branches (a bounds check that fails every k-th
// iteration) compressed.
func AppendTNTRepEx(dst []byte, pattern uint8, count uint32, exceptions []TNTException) ([]byte, error) {
	if len(exceptions) > MaxTNTExceptions {
		return dst, fmt.Errorf("tracefmt: too many TNT exceptions (%d > %d)", len(exceptions), MaxTNTExceptions)
	}
	var b [7]byte
	b[0] = byte(PktTNTRepEx)
	b[1] = pattern & 0x3F
	binary.LittleEndian.PutUint32(b[2:], count)
	b[6] = byte(len(exceptions))
	dst = append(dst, b[:]...)
	for _, e := range exceptions {
		var x [5]byte
		binary.LittleEndian.PutUint32(x[:], e.Index)
		x[4] = e.Bits & 0x3F
		dst = append(dst, x[:]...)
	}
	return dst, nil
}

// AppendPSB appends a sync-point packet carrying the anchor pc of the next
// packet-consuming instruction. The online PT unit emits one periodically;
// a corruption-tolerant decoder that loses the stream scans forward to the
// next PSB and resumes the walk at its anchor, trading the skipped region
// for continued coverage (the analogue of real PT's PSB/OVF recovery).
func AppendPSB(dst []byte, pc uint64) []byte {
	var b [psbSize]byte
	b[0] = byte(PktPSB)
	b[1], b[2] = psbMagic0, psbMagic1
	binary.LittleEndian.PutUint64(b[3:], pc)
	return append(dst, b[:]...)
}

// AppendTIP appends an indirect-branch target packet.
func AppendTIP(dst []byte, target uint64) []byte {
	var b [9]byte
	b[0] = byte(PktTIP)
	binary.LittleEndian.PutUint64(b[1:], target)
	return append(dst, b[:]...)
}

// AppendTSC appends a timestamp packet.
func AppendTSC(dst []byte, tsc uint64) []byte {
	var b [9]byte
	b[0] = byte(PktTSC)
	binary.LittleEndian.PutUint64(b[1:], tsc)
	return append(dst, b[:]...)
}

// AppendEnd appends the end-of-stream marker.
func AppendEnd(dst []byte) []byte { return append(dst, byte(PktEnd)) }

// PTReader iterates over a PT packet stream.
type PTReader struct {
	buf []byte
	off int
}

// NewPTReader wraps an encoded stream.
func NewPTReader(buf []byte) *PTReader { return &PTReader{buf: buf} }

// Offset returns the reader's current byte position. After a decode error
// it still points at the offending packet's kind byte, so callers can
// report positions and Resync past the damage.
func (r *PTReader) Offset() int { return r.off }

// Resync scans forward for the next PSB sync-point packet and positions
// the reader just past it, returning the anchor pc it carried and the
// number of bytes skipped (from the current position). ok is false when no
// further sync point exists; the reader is then at end of stream. The scan
// always advances at least one byte, so repeated corruption cannot loop.
func (r *PTReader) Resync() (pc uint64, skipped int, ok bool) {
	start := r.off
	for i := r.off + 1; i+psbSize <= len(r.buf); i++ {
		if PTPacketKind(r.buf[i]) == PktPSB && r.buf[i+1] == psbMagic0 && r.buf[i+2] == psbMagic1 {
			pc = binary.LittleEndian.Uint64(r.buf[i+3:])
			r.off = i + psbSize
			return pc, r.off - start, true
		}
	}
	r.off = len(r.buf)
	return 0, r.off - start, false
}

// Next decodes the next packet. done is true at (and after) the END marker
// or when the buffer is exhausted. Malformed input yields an *ErrCorrupt;
// the reader does not advance past it, so Offset/Resync see the damage.
func (r *PTReader) Next() (pkt PTPacket, done bool, err error) {
	if r.off >= len(r.buf) {
		return PTPacket{}, true, nil
	}
	kind := PTPacketKind(r.buf[r.off])
	need := func(n int) bool { return r.off+n <= len(r.buf) }
	switch kind {
	case PktTNT:
		if !need(3) {
			return PTPacket{}, true, &ErrCorrupt{Offset: r.off, Reason: "truncated TNT packet"}
		}
		pkt = PTPacket{Kind: PktTNT, NBits: r.buf[r.off+1], Bits: r.buf[r.off+2]}
		if pkt.NBits == 0 || pkt.NBits > TNTBitsPerPacket {
			return PTPacket{}, true, &ErrCorrupt{Offset: r.off, Reason: fmt.Sprintf("bad TNT bit count %d", pkt.NBits)}
		}
		r.off += 3
	case PktTNTRep:
		if !need(6) {
			return PTPacket{}, true, &ErrCorrupt{Offset: r.off, Reason: "truncated TNTREP packet"}
		}
		pkt = PTPacket{Kind: PktTNTRep, Bits: r.buf[r.off+1], NBits: TNTBitsPerPacket,
			Count: binary.LittleEndian.Uint32(r.buf[r.off+2:])}
		r.off += 6
	case PktTNT6:
		if !need(2) {
			return PTPacket{}, true, &ErrCorrupt{Offset: r.off, Reason: "truncated TNT6 packet"}
		}
		pkt = PTPacket{Kind: PktTNT6, Bits: r.buf[r.off+1], NBits: TNTBitsPerPacket}
		r.off += 2
	case PktTNTRepEx:
		if !need(7) {
			return PTPacket{}, true, &ErrCorrupt{Offset: r.off, Reason: "truncated TNTREPEX packet"}
		}
		pkt = PTPacket{Kind: PktTNTRepEx, Bits: r.buf[r.off+1], NBits: TNTBitsPerPacket,
			Count: binary.LittleEndian.Uint32(r.buf[r.off+2:])}
		nExc := int(r.buf[r.off+6])
		r.off += 7
		if !need(5 * nExc) {
			r.off -= 7
			return PTPacket{}, true, &ErrCorrupt{Offset: r.off, Reason: "truncated TNTREPEX exceptions"}
		}
		for k := 0; k < nExc; k++ {
			pkt.Exceptions = append(pkt.Exceptions, TNTException{
				Index: binary.LittleEndian.Uint32(r.buf[r.off:]),
				Bits:  r.buf[r.off+4],
			})
			r.off += 5
		}
	case PktTIP:
		if !need(9) {
			return PTPacket{}, true, &ErrCorrupt{Offset: r.off, Reason: "truncated TIP packet"}
		}
		pkt = PTPacket{Kind: PktTIP, Target: binary.LittleEndian.Uint64(r.buf[r.off+1:])}
		r.off += 9
	case PktTSC:
		if !need(9) {
			return PTPacket{}, true, &ErrCorrupt{Offset: r.off, Reason: "truncated TSC packet"}
		}
		pkt = PTPacket{Kind: PktTSC, TSC: binary.LittleEndian.Uint64(r.buf[r.off+1:])}
		r.off += 9
	case PktPSB:
		if !need(psbSize) {
			return PTPacket{}, true, &ErrCorrupt{Offset: r.off, Reason: "truncated PSB packet"}
		}
		if r.buf[r.off+1] != psbMagic0 || r.buf[r.off+2] != psbMagic1 {
			return PTPacket{}, true, &ErrCorrupt{Offset: r.off, Reason: "bad PSB magic"}
		}
		pkt = PTPacket{Kind: PktPSB, Target: binary.LittleEndian.Uint64(r.buf[r.off+3:])}
		r.off += psbSize
	case PktEnd:
		r.off++
		return PTPacket{Kind: PktEnd}, true, nil
	default:
		return PTPacket{}, true, &ErrCorrupt{Offset: r.off, Reason: fmt.Sprintf("unknown PT packet kind %d", kind)}
	}
	return pkt, false, nil
}
