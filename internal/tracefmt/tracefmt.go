// Package tracefmt defines the on-disk trace records ProRace's online phase
// produces and its offline phase consumes: PEBS memory-access samples, PT
// control-flow packets, and synchronization logs. All three record the
// invariant TSC, which is what lets the offline stage time-synchronise them
// (paper §4.2, §4.3).
//
// Binary encodings are defined here so trace sizes (Figures 8 and 9) are
// measured on real serialised bytes, not Go object sizes.
package tracefmt

import (
	"encoding/binary"
	"fmt"

	"prorace/internal/isa"
)

// PEBSRecord is one memory-access sample: the precise instruction address,
// the data address, and the full architectural register file at retirement.
// Register values are the *post-retirement* state, as PEBS hardware
// captures them; forward replay therefore resumes at the instruction
// following IP.
type PEBSRecord struct {
	TID   int32
	Core  int32
	TSC   uint64
	IP    uint64
	Addr  uint64
	Store bool
	Regs  [isa.NumRegs]uint64
}

// PEBSRecordSize is the serialised size of one raw PEBS record: 40 bytes of
// header plus the 128-byte register file. This is what the ProRace driver
// writes; it is in the same ballpark as a hardware PEBS v3 record.
const PEBSRecordSize = 40 + 8*isa.NumRegs

// VanillaMetadataSize is the extra per-sample metadata the stock Linux perf
// driver synthesises and copies (perf_event header, wall-clock time, sample
// period, size fields — step 2 in the paper's Figure 2). ProRace's driver
// skips it entirely.
const VanillaMetadataSize = 48

// Encode appends the record's binary form to dst and returns the result.
func (r *PEBSRecord) Encode(dst []byte) []byte {
	var b [PEBSRecordSize]byte
	binary.LittleEndian.PutUint32(b[0:], uint32(r.TID))
	binary.LittleEndian.PutUint32(b[4:], uint32(r.Core))
	binary.LittleEndian.PutUint64(b[8:], r.TSC)
	binary.LittleEndian.PutUint64(b[16:], r.IP)
	binary.LittleEndian.PutUint64(b[24:], r.Addr)
	if r.Store {
		b[32] = 1
	}
	for i := 0; i < isa.NumRegs; i++ {
		binary.LittleEndian.PutUint64(b[40+8*i:], r.Regs[i])
	}
	return append(dst, b[:]...)
}

// DecodePEBSRecord parses one record from src, returning the remaining
// bytes.
func DecodePEBSRecord(src []byte) (PEBSRecord, []byte, error) {
	if len(src) < PEBSRecordSize {
		return PEBSRecord{}, src, fmt.Errorf("tracefmt: short PEBS record: %d bytes", len(src))
	}
	var r PEBSRecord
	r.TID = int32(binary.LittleEndian.Uint32(src[0:]))
	r.Core = int32(binary.LittleEndian.Uint32(src[4:]))
	r.TSC = binary.LittleEndian.Uint64(src[8:])
	r.IP = binary.LittleEndian.Uint64(src[16:])
	r.Addr = binary.LittleEndian.Uint64(src[24:])
	r.Store = src[32] != 0
	for i := 0; i < isa.NumRegs; i++ {
		r.Regs[i] = binary.LittleEndian.Uint64(src[40+8*i:])
	}
	return r, src[PEBSRecordSize:], nil
}

// SyncKind classifies synchronization-trace records.
type SyncKind uint8

const (
	SyncLock SyncKind = iota
	SyncUnlock
	SyncCondWait // records the release edge; the reacquire is a SyncLock-like edge at wake
	SyncCondSignal
	SyncCondBroadcast
	SyncBarrier
	SyncThreadCreate // Addr = child TID
	SyncThreadBegin  // first event of a thread
	SyncThreadExit   // last event of a thread
	SyncThreadJoin   // Addr = joined TID
	SyncMalloc       // Addr = returned address, Aux = size
	SyncFree         // Addr = freed address
	// SyncCondWake marks the waiter's return from a condition wait, with
	// the mutex reacquired: Addr = condition variable, Aux = mutex. The
	// shim logs it when pthread_cond_wait returns; it carries the
	// signaller → waiter happens-before edge.
	SyncCondWake
	// SyncBarrierWake marks a blocked barrier waiter's release: Addr =
	// barrier. It carries the all-to-all happens-before edge to waiters
	// that arrived before the last thread.
	SyncBarrierWake

	numSyncKinds
)

var syncKindNames = [...]string{
	SyncLock: "lock", SyncUnlock: "unlock", SyncCondWait: "cond_wait",
	SyncCondSignal: "cond_signal", SyncCondBroadcast: "cond_broadcast",
	SyncBarrier: "barrier", SyncThreadCreate: "thread_create",
	SyncThreadBegin: "thread_begin", SyncThreadExit: "thread_exit",
	SyncThreadJoin: "thread_join", SyncMalloc: "malloc", SyncFree: "free",
	SyncCondWake: "cond_wake", SyncBarrierWake: "barrier_wake",
}

// String names the kind.
func (k SyncKind) String() string {
	if int(k) < len(syncKindNames) {
		return syncKindNames[k]
	}
	return fmt.Sprintf("sync?%d", uint8(k))
}

// SyncRecord is one synchronization-log entry, produced by the simulated
// LD_PRELOAD shim (paper §4.3). Addr identifies the synchronization object
// (lock variable address, condition variable, barrier, allocation address,
// or peer TID for thread edges).
type SyncRecord struct {
	TID  int32
	Kind SyncKind
	TSC  uint64
	PC   uint64
	Addr uint64
	Aux  uint64
}

// SyncRecordSize is the serialised size of one sync record.
const SyncRecordSize = 40

// Encode appends the record's binary form to dst.
func (r *SyncRecord) Encode(dst []byte) []byte {
	var b [SyncRecordSize]byte
	binary.LittleEndian.PutUint32(b[0:], uint32(r.TID))
	b[4] = byte(r.Kind)
	binary.LittleEndian.PutUint64(b[8:], r.TSC)
	binary.LittleEndian.PutUint64(b[16:], r.PC)
	binary.LittleEndian.PutUint64(b[24:], r.Addr)
	binary.LittleEndian.PutUint64(b[32:], r.Aux)
	return append(dst, b[:]...)
}

// DecodeSyncRecord parses one record from src, returning the rest.
func DecodeSyncRecord(src []byte) (SyncRecord, []byte, error) {
	if len(src) < SyncRecordSize {
		return SyncRecord{}, src, fmt.Errorf("tracefmt: short sync record: %d bytes", len(src))
	}
	var r SyncRecord
	r.TID = int32(binary.LittleEndian.Uint32(src[0:]))
	r.Kind = SyncKind(src[4])
	if r.Kind >= numSyncKinds {
		return SyncRecord{}, src, fmt.Errorf("tracefmt: bad sync kind %d", src[4])
	}
	r.TSC = binary.LittleEndian.Uint64(src[8:])
	r.PC = binary.LittleEndian.Uint64(src[16:])
	r.Addr = binary.LittleEndian.Uint64(src[24:])
	r.Aux = binary.LittleEndian.Uint64(src[32:])
	return r, src[SyncRecordSize:], nil
}
