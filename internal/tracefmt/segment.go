package tracefmt

import (
	"encoding/binary"
	"fmt"
)

// Trace segmentation. A production fleet does not hand the analysis machine
// one complete trace at the end of a run: traced processes stream their
// perf buffers out in bounded chunks while they keep running. A *segment*
// is exactly such a chunk — a Trace whose per-thread streams are a
// contiguous slice of the full run's streams — and the contract that makes
// segments useful is:
//
//	merge(split(t, n)) reproduces t byte-for-byte (Encode-identical)
//
// for any n, so an analysis of the merged segments is indistinguishable
// from an analysis of the original trace (core.Analyzer builds on this).
//
// Segments may cut anywhere: mid PT packet, between two PEBS records of
// one thread, in the middle of a critical section's sync records. No
// boundary alignment is required because segments are only ever analysed
// after re-concatenation.

// Split divides the trace into n segments (n < 1 is clamped to 1; n larger
// than the trace's content still yields n segments, the surplus empty).
// Every per-thread PEBS stream, per-thread PT stream and the sync log is
// cut into n contiguous chunks, chunk i going to segment i; header fields
// (Program, Period, Seed, WallCycles, DroppedSamples) are carried on every
// segment. Segment streams alias the receiver's backing arrays — treat the
// source trace as immutable while segments are live.
func (t *Trace) Split(n int) []*Trace {
	if n < 1 {
		n = 1
	}
	segs := make([]*Trace, n)
	for i := range segs {
		segs[i] = &Trace{
			Program:        t.Program,
			Period:         t.Period,
			Seed:           t.Seed,
			WallCycles:     t.WallCycles,
			DroppedSamples: t.DroppedSamples,
			PEBS:           map[int32][]PEBSRecord{},
			PT:             map[int32][]byte{},
		}
	}
	// chunk yields the [lo, hi) bounds of chunk i of a length-l stream.
	chunk := func(l, i int) (int, int) { return l * i / n, l * (i + 1) / n }
	for tid, recs := range t.PEBS {
		for i := range segs {
			lo, hi := chunk(len(recs), i)
			segs[i].PEBS[tid] = recs[lo:hi]
		}
	}
	for tid, stream := range t.PT {
		for i := range segs {
			lo, hi := chunk(len(stream), i)
			segs[i].PT[tid] = stream[lo:hi]
		}
	}
	for i := range segs {
		lo, hi := chunk(len(t.Sync), i)
		segs[i].Sync = t.Sync[lo:hi]
	}
	return segs
}

// MergeSegment appends one segment's streams onto dst. The first segment
// merged into an empty trace (no Program, no streams) establishes the
// header; every later segment must agree on (Program, Period, Seed) — a
// mismatch means the segment belongs to a different run and is refused
// with an error, dst unchanged. WallCycles and DroppedSamples are
// cumulative run counters, so the merge keeps the maximum seen.
func MergeSegment(dst, seg *Trace) error {
	if dst.Program == "" && len(dst.PEBS) == 0 && len(dst.PT) == 0 && len(dst.Sync) == 0 {
		dst.Program = seg.Program
		dst.Period = seg.Period
		dst.Seed = seg.Seed
	} else if dst.Program != seg.Program || dst.Period != seg.Period || dst.Seed != seg.Seed {
		return fmt.Errorf("tracefmt: segment of run (%q, period %d, seed %d) fed to session of run (%q, period %d, seed %d)",
			seg.Program, seg.Period, seg.Seed, dst.Program, dst.Period, dst.Seed)
	}
	if dst.PEBS == nil {
		dst.PEBS = map[int32][]PEBSRecord{}
	}
	if dst.PT == nil {
		dst.PT = map[int32][]byte{}
	}
	for tid, recs := range seg.PEBS {
		dst.PEBS[tid] = append(dst.PEBS[tid], recs...)
	}
	for tid, stream := range seg.PT {
		dst.PT[tid] = append(dst.PT[tid], stream...)
	}
	dst.Sync = append(dst.Sync, seg.Sync...)
	if seg.WallCycles > dst.WallCycles {
		dst.WallCycles = seg.WallCycles
	}
	if seg.DroppedSamples > dst.DroppedSamples {
		dst.DroppedSamples = seg.DroppedSamples
	}
	return nil
}

// CloneForMerge returns a deep copy of the trace suitable as a MergeSegment
// destination: every stream is copied into freshly owned backing arrays, so
// later appends never write into the source's (possibly aliased) memory.
func (t *Trace) CloneForMerge() *Trace {
	out := &Trace{
		Program:        t.Program,
		Period:         t.Period,
		Seed:           t.Seed,
		WallCycles:     t.WallCycles,
		DroppedSamples: t.DroppedSamples,
		PEBS:           make(map[int32][]PEBSRecord, len(t.PEBS)),
		PT:             make(map[int32][]byte, len(t.PT)),
	}
	for tid, recs := range t.PEBS {
		out.PEBS[tid] = append([]PEBSRecord(nil), recs...)
	}
	for tid, stream := range t.PT {
		out.PT[tid] = append([]byte(nil), stream...)
	}
	out.Sync = append([]SyncRecord(nil), t.Sync...)
	return out
}

// Segment wire framing. The daemon's ingest endpoint receives segments
// from the network, where half-written files and torn socket writes are
// routine, so the frame carries its own integrity check: a corrupt frame
// must be rejected at the door (degrading one tenant's window) rather than
// decoded into garbage records. Layout, little endian:
//
//	magic    "PRSG" (4 bytes)
//	version  uint16
//	flags    uint16 (bit 0: final segment of the run)
//	seq      uint64 (producer-assigned segment sequence number)
//	tenLen   uint16, tenant bytes (advisory; ingest may override)
//	payLen   uint32, payload bytes (a Trace container, Trace.Encode)
//	check    uint64 (FNV-1a of everything before it, magic included)

const (
	segmentMagic   = "PRSG"
	segmentVersion = 1

	segFlagFinal = 1 << 0
)

// SegmentHeader carries a segment's framing metadata.
type SegmentHeader struct {
	// Seq is the producer-assigned sequence number of this segment within
	// its run. The ingest layer uses it for logging and gap diagnosis; the
	// analysis itself only requires segments to arrive in order.
	Seq uint64
	// Tenant names the producing process/tenant. Advisory: the daemon's
	// ingest endpoint trusts its transport-level tenant tag over this.
	Tenant string
	// Final marks the run's last segment.
	Final bool
}

func fnv1a(h uint64, b []byte) uint64 {
	const prime64 = 1099511628211
	for _, c := range b {
		h = (h ^ uint64(c)) * prime64
	}
	return h
}

const fnvOffset64 = 14695981039346656037

// EncodeSegment frames one segment for the wire.
func EncodeSegment(h SegmentHeader, t *Trace) []byte {
	payload := t.Encode()
	out := make([]byte, 0, 4+2+2+8+2+len(h.Tenant)+4+len(payload)+8)
	out = append(out, segmentMagic...)
	out = binary.LittleEndian.AppendUint16(out, segmentVersion)
	var flags uint16
	if h.Final {
		flags |= segFlagFinal
	}
	out = binary.LittleEndian.AppendUint16(out, flags)
	out = binary.LittleEndian.AppendUint64(out, h.Seq)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(h.Tenant)))
	out = append(out, h.Tenant...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	out = binary.LittleEndian.AppendUint64(out, fnv1a(fnvOffset64, out))
	return out
}

// DecodeSegment parses and verifies a frame produced by EncodeSegment. Any
// damage — bad magic, unsupported version, truncation, trailing garbage or
// a checksum mismatch — yields an *ErrCorrupt; a verified frame's payload
// is then decoded strictly (segments are small and retransmittable, so
// unlike whole-trace files there is nothing worth salvaging from one).
func DecodeSegment(src []byte) (SegmentHeader, *Trace, error) {
	var h SegmentHeader
	fail := func(off int, reason string) (SegmentHeader, *Trace, error) {
		return SegmentHeader{}, nil, &ErrCorrupt{Offset: off, Reason: reason}
	}
	if len(src) < 4+2+2+8+2+4+8 {
		return fail(0, "segment frame shorter than fixed header")
	}
	if string(src[:4]) != segmentMagic {
		return fail(0, "bad segment magic")
	}
	if got := binary.LittleEndian.Uint64(src[len(src)-8:]); got != fnv1a(fnvOffset64, src[:len(src)-8]) {
		return fail(len(src)-8, "segment checksum mismatch")
	}
	if v := binary.LittleEndian.Uint16(src[4:]); v != segmentVersion {
		return fail(4, fmt.Sprintf("unsupported segment version %d", v))
	}
	flags := binary.LittleEndian.Uint16(src[6:])
	h.Final = flags&segFlagFinal != 0
	h.Seq = binary.LittleEndian.Uint64(src[8:])
	off := 16
	tenLen := int(binary.LittleEndian.Uint16(src[off:]))
	off += 2
	if off+tenLen+4 > len(src)-8 {
		return fail(off, "tenant length exceeds frame")
	}
	h.Tenant = string(src[off : off+tenLen])
	off += tenLen
	payLen := int(binary.LittleEndian.Uint32(src[off:]))
	off += 4
	if off+payLen != len(src)-8 {
		return fail(off, "payload length disagrees with frame size")
	}
	t, err := DecodeTrace(src[off : off+payLen])
	if err != nil {
		return SegmentHeader{}, nil, err
	}
	return h, t, nil
}
