package tracefmt

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
)

// Compressed trace container. The paper's deployment model (§3) writes
// traces over a dedicated network to analysis machines; shipping them
// compressed trades a little producer-side CPU for bandwidth. PEBS records
// compress well — the register-file snapshots of nearby samples share most
// bytes.
//
// Layout: the 4-byte magic "PRTZ" followed by a DEFLATE stream of the
// uncompressed container (Encode's output).

const compressedMagic = "PRTZ"

// EncodeCompressed serialises the trace with DEFLATE compression.
func (t *Trace) EncodeCompressed() ([]byte, error) {
	raw := t.Encode()
	var buf bytes.Buffer
	buf.WriteString(compressedMagic)
	w, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return nil, fmt.Errorf("tracefmt: %w", err)
	}
	if _, err := w.Write(raw); err != nil {
		return nil, fmt.Errorf("tracefmt: compress: %w", err)
	}
	if err := w.Close(); err != nil {
		return nil, fmt.Errorf("tracefmt: compress: %w", err)
	}
	return buf.Bytes(), nil
}

// maxDecompressedTrace bounds DEFLATE expansion so a hostile or corrupt
// compressed container cannot exhaust memory (1 GiB is far above any trace
// the simulated machine produces).
const maxDecompressedTrace = 1 << 30

// inflate decompresses a "PRTZ" payload with the expansion cap applied.
func inflate(src []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(src))
	defer r.Close()
	raw, err := io.ReadAll(io.LimitReader(r, maxDecompressedTrace+1))
	if err != nil {
		return raw, fmt.Errorf("tracefmt: decompress: %w", err)
	}
	if len(raw) > maxDecompressedTrace {
		return nil, fmt.Errorf("tracefmt: decompressed trace exceeds %d bytes", maxDecompressedTrace)
	}
	return raw, nil
}

// DecodeTraceAuto parses either container format, detecting compression by
// magic.
func DecodeTraceAuto(src []byte) (*Trace, error) {
	if len(src) >= 4 && string(src[:4]) == compressedMagic {
		raw, err := inflate(src[4:])
		if err != nil {
			return nil, err
		}
		return DecodeTrace(raw)
	}
	return DecodeTrace(src)
}

// DecodeTraceAutoLenient is DecodeTraceAuto with best-effort salvage: a
// truncated DEFLATE stream still yields whatever prefix inflated cleanly,
// which is then decoded leniently.
func DecodeTraceAutoLenient(src []byte) (*Trace, *SalvageInfo, error) {
	if len(src) >= 4 && string(src[:4]) == compressedMagic {
		raw, err := inflate(src[4:])
		if err != nil && len(raw) == 0 {
			return nil, &SalvageInfo{Truncated: true, Err: err}, err
		}
		tr, sal, derr := DecodeTraceLenient(raw)
		if err != nil && sal != nil {
			sal.Truncated = true
			if sal.Err == nil {
				sal.Err = err
			}
		}
		return tr, sal, derr
	}
	return DecodeTraceLenient(src)
}
