package tracefmt

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
)

// Compressed trace container. The paper's deployment model (§3) writes
// traces over a dedicated network to analysis machines; shipping them
// compressed trades a little producer-side CPU for bandwidth. PEBS records
// compress well — the register-file snapshots of nearby samples share most
// bytes.
//
// Layout: the 4-byte magic "PRTZ" followed by a DEFLATE stream of the
// uncompressed container (Encode's output).

const compressedMagic = "PRTZ"

// EncodeCompressed serialises the trace with DEFLATE compression.
func (t *Trace) EncodeCompressed() ([]byte, error) {
	raw := t.Encode()
	var buf bytes.Buffer
	buf.WriteString(compressedMagic)
	w, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return nil, fmt.Errorf("tracefmt: %w", err)
	}
	if _, err := w.Write(raw); err != nil {
		return nil, fmt.Errorf("tracefmt: compress: %w", err)
	}
	if err := w.Close(); err != nil {
		return nil, fmt.Errorf("tracefmt: compress: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeTraceAuto parses either container format, detecting compression by
// magic.
func DecodeTraceAuto(src []byte) (*Trace, error) {
	if len(src) >= 4 && string(src[:4]) == compressedMagic {
		r := flate.NewReader(bytes.NewReader(src[4:]))
		defer r.Close()
		raw, err := io.ReadAll(r)
		if err != nil {
			return nil, fmt.Errorf("tracefmt: decompress: %w", err)
		}
		return DecodeTrace(raw)
	}
	return DecodeTrace(src)
}
