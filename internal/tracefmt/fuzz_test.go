package tracefmt_test

import (
	"testing"

	"prorace/internal/asm"
	"prorace/internal/core"
	"prorace/internal/isa"
	"prorace/internal/prog"
	"prorace/internal/tracefmt"
)

// fuzzSeedTrace builds a small but fully populated trace so the fuzzer
// starts from valid containers rather than random bytes.
func fuzzSeedTrace() *tracefmt.Trace {
	tr := tracefmt.NewTrace("fuzz", 100, 1)
	for tid := int32(0); tid < 2; tid++ {
		var stream []byte
		stream = tracefmt.AppendPSB(stream, 0x10)
		stream, _ = tracefmt.AppendTNT(stream, 0b10110, 5)
		stream = tracefmt.AppendTIP(stream, 0x40)
		stream = tracefmt.AppendTNTRep(stream, 0b101010, 3)
		stream = tracefmt.AppendTSC(stream, 1234)
		stream = tracefmt.AppendEnd(stream)
		tr.PT[tid] = stream
		for i := 0; i < 16; i++ {
			tr.PEBS[tid] = append(tr.PEBS[tid], tracefmt.PEBSRecord{
				TID: tid, IP: uint64(0x10 + i), Addr: uint64(i * 8), TSC: uint64(i * 50),
			})
		}
	}
	tr.Sync = []tracefmt.SyncRecord{
		{TID: 0, Kind: tracefmt.SyncThreadBegin, TSC: 1},
		{TID: 0, Kind: tracefmt.SyncLock, Addr: 0x100, TSC: 2},
		{TID: 0, Kind: tracefmt.SyncUnlock, Addr: 0x100, TSC: 3},
	}
	return tr
}

// fuzzProgram is a minimal program for exercising lenient analysis on
// whatever trace the fuzzer manages to decode.
func fuzzProgram() (*prog.Program, error) {
	b := asm.New("fuzz")
	b.Global("x", 8)
	f := b.Func("main")
	f.MovI(isa.R1, 7)
	f.Store(asm.Global("x", 0), isa.R1)
	f.Load(isa.R2, asm.Global("x", 0))
	f.Ret()
	return b.Build()
}

// FuzzSegmentDecode feeds arbitrary bytes through the PRSG ingest framing
// — the daemon-facing attack surface: every producer-supplied frame goes
// through DecodeSegment before anything else. It must reject damage with
// an error, never panic, and a valid frame must round-trip.
func FuzzSegmentDecode(f *testing.F) {
	seed := fuzzSeedTrace()
	f.Add(tracefmt.EncodeSegment(tracefmt.SegmentHeader{Seq: 3, Tenant: "web-1", Final: true}, seed))
	f.Add(tracefmt.EncodeSegment(tracefmt.SegmentHeader{}, tracefmt.NewTrace("p", 1, 1)))
	f.Add([]byte("PRSG"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, tr, err := tracefmt.DecodeSegment(data)
		if err != nil {
			return
		}
		if tr == nil {
			t.Fatal("DecodeSegment returned nil trace without error")
		}
		re := tracefmt.EncodeSegment(h, tr)
		h2, _, err := tracefmt.DecodeSegment(re)
		if err != nil {
			t.Fatalf("re-encoded frame failed decoding: %v", err)
		}
		if h2 != h {
			t.Fatalf("header round trip changed: %+v vs %+v", h2, h)
		}
	})
}

// FuzzTraceDecode feeds arbitrary bytes through every container decode
// path, the PT packet reader, and a lenient end-to-end analysis. Nothing
// may panic; strict paths may only return errors.
func FuzzTraceDecode(f *testing.F) {
	seed := fuzzSeedTrace()
	f.Add(seed.Encode())
	if z, err := seed.EncodeCompressed(); err == nil {
		f.Add(z)
	}
	f.Add([]byte("PRT0"))
	f.Add([]byte("PRTZ\x00\x01\x02"))
	f.Add([]byte{})

	p, err := fuzzProgram()
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// Strict decode: error or success, never panic.
		tr, strictErr := tracefmt.DecodeTraceAuto(data)

		// Lenient decode: must always produce a trace and salvage info.
		ltr, info, lenientErr := tracefmt.DecodeTraceAutoLenient(data)
		if lenientErr == nil {
			if ltr == nil || info == nil {
				t.Fatal("lenient decode returned nil trace without error")
			}
			if strictErr != nil && !info.Degraded() {
				t.Fatalf("strict decode failed (%v) but salvage reports clean", strictErr)
			}
		}
		if strictErr == nil && tr != nil {
			// A valid container must re-encode and walk cleanly-bounded.
			for _, stream := range tr.PT {
				r := tracefmt.NewPTReader(stream)
				for i := 0; i < 1<<16; i++ {
					_, done, err := r.Next()
					if done {
						break
					}
					if err != nil {
						if _, _, ok := r.Resync(); !ok {
							break
						}
					}
				}
			}
		}
		if lenientErr == nil && ltr != nil && len(ltr.PEBS) <= 64 && len(ltr.Sync) <= 4096 {
			// Lenient end-to-end analysis of an arbitrary decoded trace:
			// must not panic; errors are not acceptable in lenient mode.
			// The size guard only keeps the fuzzer fast — huge valid
			// traces do real (slow) analysis work, which is not a bug.
			if _, err := core.Analyze(p, ltr, core.AnalysisOptions{DecodeMaxSteps: 1 << 12}); err != nil {
				t.Fatalf("lenient analysis of salvaged trace errored: %v", err)
			}
		}
	})
}
