package tracefmt

import (
	"bytes"
	"testing"
)

// segTestTrace builds a trace with uneven per-thread stream lengths so
// splits cut mid-stream everywhere: PT bytes that are not packet-aligned,
// PEBS runs of different lengths, and a sync log spanning threads.
func segTestTrace() *Trace {
	t := NewTrace("segprog", 1000, 7)
	t.WallCycles = 123456
	t.DroppedSamples = 3
	for tid := int32(0); tid < 3; tid++ {
		n := 5 + int(tid)*7
		for i := 0; i < n; i++ {
			t.PEBS[tid] = append(t.PEBS[tid], PEBSRecord{
				TID: tid, IP: uint64(0x1000 + i), Addr: uint64(0x8000 + i*8),
				TSC: uint64(100*int(tid) + i),
			})
		}
		stream := make([]byte, 13+int(tid)*29)
		for i := range stream {
			stream[i] = byte(i*7 + int(tid))
		}
		t.PT[tid] = stream
	}
	for i := 0; i < 23; i++ {
		t.Sync = append(t.Sync, SyncRecord{
			TID: int32(i % 3), Kind: SyncLock, Addr: 0x9000, TSC: uint64(i * 10),
		})
	}
	return t
}

func TestSplitMergeRoundTripsByteIdentically(t *testing.T) {
	orig := segTestTrace()
	want := orig.Encode()
	for _, n := range []int{1, 2, 3, 8, 17, 100} {
		segs := orig.Split(n)
		if len(segs) != n {
			t.Fatalf("Split(%d) yielded %d segments", n, len(segs))
		}
		merged := &Trace{}
		for i, seg := range segs {
			if err := MergeSegment(merged, seg); err != nil {
				t.Fatalf("n=%d: merge segment %d: %v", n, i, err)
			}
		}
		if got := merged.Encode(); !bytes.Equal(got, want) {
			t.Fatalf("n=%d: merged container differs from original (%d vs %d bytes)", n, len(got), len(want))
		}
		if merged.Fingerprint() != orig.Fingerprint() {
			t.Fatalf("n=%d: merged fingerprint differs", n)
		}
	}
}

func TestSplitSegmentsCarryHeader(t *testing.T) {
	orig := segTestTrace()
	for i, seg := range orig.Split(4) {
		if seg.Program != orig.Program || seg.Period != orig.Period || seg.Seed != orig.Seed {
			t.Fatalf("segment %d lost header fields: %+v", i, seg)
		}
	}
}

func TestMergeSegmentRefusesForeignRun(t *testing.T) {
	a := segTestTrace()
	dst := &Trace{}
	if err := MergeSegment(dst, a.Split(2)[0]); err != nil {
		t.Fatal(err)
	}
	foreign := NewTrace("otherprog", 1000, 7)
	if err := MergeSegment(dst, foreign); err == nil {
		t.Fatal("merging a segment of a different program must fail")
	}
	wrongSeed := NewTrace("segprog", 1000, 8)
	if err := MergeSegment(dst, wrongSeed); err == nil {
		t.Fatal("merging a segment of a different seed must fail")
	}
	// The refused merges must leave dst untouched.
	half := a.Split(2)[0]
	if dst.Fingerprint() != half.CloneForMerge().Fingerprint() {
		t.Fatal("refused merge modified the destination")
	}
}

func TestCloneForMergeOwnsItsMemory(t *testing.T) {
	orig := segTestTrace()
	clone := orig.CloneForMerge()
	if !bytes.Equal(clone.Encode(), orig.Encode()) {
		t.Fatal("clone content differs")
	}
	extra := NewTrace("segprog", 1000, 7)
	extra.PEBS[0] = []PEBSRecord{{TID: 0, IP: 0xdead, TSC: 999}}
	extra.PT[1] = []byte{0xff, 0xfe}
	extra.Sync = []SyncRecord{{TID: 2, Kind: SyncUnlock, TSC: 1000}}
	if err := MergeSegment(clone, extra); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig.Encode(), segTestTrace().Encode()) {
		t.Fatal("appending to the clone mutated the original trace")
	}
}

func TestSegmentFrameRoundTrip(t *testing.T) {
	orig := segTestTrace()
	for _, hdr := range []SegmentHeader{
		{},
		{Seq: 42, Tenant: "web-7", Final: false},
		{Seq: ^uint64(0), Tenant: "", Final: true},
	} {
		frame := EncodeSegment(hdr, orig)
		got, tr, err := DecodeSegment(frame)
		if err != nil {
			t.Fatalf("hdr %+v: %v", hdr, err)
		}
		if got != hdr {
			t.Fatalf("header mangled: got %+v want %+v", got, hdr)
		}
		if !bytes.Equal(tr.Encode(), orig.Encode()) {
			t.Fatalf("hdr %+v: payload trace differs after round trip", hdr)
		}
	}
}

func TestSegmentFrameRejectsDamage(t *testing.T) {
	frame := EncodeSegment(SegmentHeader{Seq: 1, Tenant: "t"}, segTestTrace())
	cases := map[string][]byte{
		"empty":        {},
		"short":        frame[:10],
		"bad magic":    append([]byte("XXXX"), frame[4:]...),
		"truncated":    frame[:len(frame)-9],
		"trailing":     append(append([]byte(nil), frame...), 0x00),
		"flipped byte": flipByte(frame, len(frame)/2),
		"flipped sum":  flipByte(frame, len(frame)-1),
	}
	for name, src := range cases {
		if _, _, err := DecodeSegment(src); err == nil {
			t.Errorf("%s: corrupt frame decoded without error", name)
		}
	}
}

func flipByte(src []byte, i int) []byte {
	out := append([]byte(nil), src...)
	out[i] ^= 0xa5
	return out
}
