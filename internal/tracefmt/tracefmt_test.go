package tracefmt

import (
	"math/rand"
	"testing"

	"prorace/internal/isa"
)

func randPEBS(rng *rand.Rand) PEBSRecord {
	r := PEBSRecord{
		TID:   rng.Int31n(64),
		Core:  rng.Int31n(4),
		TSC:   rng.Uint64(),
		IP:    isa.CodeBase + uint64(rng.Intn(10000))*isa.InstSize,
		Addr:  rng.Uint64(),
		Store: rng.Intn(2) == 0,
	}
	for i := range r.Regs {
		r.Regs[i] = rng.Uint64()
	}
	return r
}

func TestPEBSRecordRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for k := 0; k < 500; k++ {
		r := randPEBS(rng)
		buf := r.Encode(nil)
		if len(buf) != PEBSRecordSize {
			t.Fatalf("encoded size %d, want %d", len(buf), PEBSRecordSize)
		}
		got, rest, err := DecodePEBSRecord(buf)
		if err != nil || len(rest) != 0 {
			t.Fatalf("decode: %v rest=%d", err, len(rest))
		}
		if got != r {
			t.Fatalf("round trip mismatch:\n %+v\n %+v", r, got)
		}
	}
	if _, _, err := DecodePEBSRecord(make([]byte, 10)); err == nil {
		t.Error("short record must fail")
	}
}

func TestSyncRecordRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for k := 0; k < 500; k++ {
		r := SyncRecord{
			TID:  rng.Int31n(64),
			Kind: SyncKind(rng.Intn(int(numSyncKinds))),
			TSC:  rng.Uint64(),
			PC:   rng.Uint64(),
			Addr: rng.Uint64(),
			Aux:  rng.Uint64(),
		}
		buf := r.Encode(nil)
		if len(buf) != SyncRecordSize {
			t.Fatalf("encoded size %d", len(buf))
		}
		got, rest, err := DecodeSyncRecord(buf)
		if err != nil || len(rest) != 0 {
			t.Fatalf("decode: %v", err)
		}
		if got != r {
			t.Fatalf("round trip mismatch: %+v vs %+v", r, got)
		}
	}
	bad := make([]byte, SyncRecordSize)
	bad[4] = byte(numSyncKinds) + 1
	if _, _, err := DecodeSyncRecord(bad); err == nil {
		t.Error("bad kind must fail")
	}
	if _, _, err := DecodeSyncRecord(bad[:5]); err == nil {
		t.Error("short record must fail")
	}
}

func TestSyncKindNames(t *testing.T) {
	for k := SyncKind(0); k < numSyncKinds; k++ {
		if k.String() == "" || k.String()[0] == 's' && k.String() == "sync?0" {
			t.Errorf("kind %d unnamed", k)
		}
	}
	if SyncKind(200).String() != "sync?200" {
		t.Error("unknown kind must render as sync?N")
	}
}

func TestPTPacketRoundTrip(t *testing.T) {
	var stream []byte
	var err error
	if stream, err = AppendTNT(stream, 0b101, 3); err != nil {
		t.Fatal(err)
	}
	stream = AppendTNTRep(stream, 0b110110, 1000)
	stream = AppendTIP(stream, 0x400120)
	stream = AppendTSC(stream, 987654321)
	if stream, err = AppendTNT(stream, 0b1, 1); err != nil {
		t.Fatal(err)
	}
	stream = AppendEnd(stream)

	r := NewPTReader(stream)
	want := []PTPacket{
		{Kind: PktTNT, Bits: 0b101, NBits: 3},
		{Kind: PktTNTRep, Bits: 0b110110, NBits: 6, Count: 1000},
		{Kind: PktTIP, Target: 0x400120},
		{Kind: PktTSC, TSC: 987654321},
		{Kind: PktTNT, Bits: 0b1, NBits: 1},
	}
	for i, w := range want {
		pkt, done, err := r.Next()
		if err != nil || done {
			t.Fatalf("packet %d: done=%v err=%v", i, done, err)
		}
		if pkt.Kind != w.Kind || pkt.Bits != w.Bits || pkt.NBits != w.NBits ||
			pkt.Count != w.Count || pkt.Target != w.Target || pkt.TSC != w.TSC {
			t.Fatalf("packet %d: %+v, want %+v", i, pkt, w)
		}
	}
	pkt, done, err := r.Next()
	if err != nil || !done || pkt.Kind != PktEnd {
		t.Fatalf("end: %+v done=%v err=%v", pkt, done, err)
	}
	// Reading past the end stays done.
	if _, done, _ := r.Next(); !done {
		t.Error("reader must stay done")
	}
}

func TestPTReaderErrors(t *testing.T) {
	// Truncated TIP.
	r := NewPTReader([]byte{byte(PktTIP), 1, 2})
	if _, _, err := r.Next(); err == nil {
		t.Error("truncated TIP must fail")
	}
	// Unknown kind.
	r = NewPTReader([]byte{99})
	if _, _, err := r.Next(); err == nil {
		t.Error("unknown kind must fail")
	}
	// Bad TNT count.
	r = NewPTReader([]byte{byte(PktTNT), 9, 0})
	if _, _, err := r.Next(); err == nil {
		t.Error("bad TNT count must fail")
	}
	// AppendTNT reports bad counts as errors, leaving dst unchanged.
	if out, err := AppendTNT(nil, 0, 0); err == nil || out != nil {
		t.Errorf("AppendTNT with 0 bits: out=%v err=%v, want error and unchanged dst", out, err)
	}
	if out, err := AppendTNT(nil, 0, 7); err == nil || out != nil {
		t.Errorf("AppendTNT with 7 bits: out=%v err=%v, want error and unchanged dst", out, err)
	}
	// AppendTNTRepEx rejects oversized exception lists the same way.
	exc := make([]TNTException, MaxTNTExceptions+1)
	if out, err := AppendTNTRepEx(nil, 0, 10, exc); err == nil || out != nil {
		t.Errorf("AppendTNTRepEx overflow: out=%v err=%v, want error and unchanged dst", out, err)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := NewTrace("apache", 10000, 7)
	tr.WallCycles = 4_000_000
	tr.DroppedSamples = 5
	for tid := int32(0); tid < 3; tid++ {
		for k := 0; k < 20; k++ {
			rec := randPEBS(rng)
			rec.TID = tid
			tr.PEBS[tid] = append(tr.PEBS[tid], rec)
		}
		var stream []byte
		var err error
		stream = AppendTSC(stream, 100)
		if stream, err = AppendTNT(stream, 0b11, 2); err != nil {
			t.Fatal(err)
		}
		stream = AppendEnd(stream)
		tr.PT[tid] = stream
	}
	for k := 0; k < 10; k++ {
		tr.Sync = append(tr.Sync, SyncRecord{TID: int32(k % 3), Kind: SyncLock, TSC: uint64(k), Addr: 0x600000})
	}

	enc := tr.Encode()
	back, err := DecodeTrace(enc)
	if err != nil {
		t.Fatal(err)
	}
	if back.Program != "apache" || back.Period != 10000 || back.Seed != 7 ||
		back.WallCycles != 4_000_000 || back.DroppedSamples != 5 {
		t.Fatalf("header mismatch: %+v", back)
	}
	if back.SampleCount() != tr.SampleCount() {
		t.Fatalf("sample count %d vs %d", back.SampleCount(), tr.SampleCount())
	}
	for tid := int32(0); tid < 3; tid++ {
		if len(back.PEBS[tid]) != 20 {
			t.Fatalf("tid %d: %d records", tid, len(back.PEBS[tid]))
		}
		for i := range back.PEBS[tid] {
			if back.PEBS[tid][i] != tr.PEBS[tid][i] {
				t.Fatalf("tid %d record %d mismatch", tid, i)
			}
		}
		if string(back.PT[tid]) != string(tr.PT[tid]) {
			t.Fatalf("tid %d PT stream mismatch", tid)
		}
	}
	if len(back.Sync) != len(tr.Sync) {
		t.Fatalf("sync count %d", len(back.Sync))
	}
	// Sizes must match component arithmetic.
	p, q, s := tr.Sizes()
	if p != uint64(tr.SampleCount())*PEBSRecordSize {
		t.Errorf("pebs bytes = %d", p)
	}
	if q == 0 || s != uint64(len(tr.Sync))*SyncRecordSize {
		t.Errorf("pt=%d sync=%d", q, s)
	}
	if tr.TotalBytes() != p+q+s {
		t.Error("TotalBytes mismatch")
	}
}

func TestTraceDecodeErrors(t *testing.T) {
	tr := NewTrace("x", 100, 1)
	tr.PEBS[0] = []PEBSRecord{{TID: 0}}
	enc := tr.Encode()
	if _, err := DecodeTrace(enc[:8]); err == nil {
		t.Error("truncated trace must fail")
	}
	bad := append([]byte(nil), enc...)
	bad[0] = 'X'
	if _, err := DecodeTrace(bad); err == nil {
		t.Error("bad magic must fail")
	}
}

func TestTraceTIDsAndRates(t *testing.T) {
	tr := NewTrace("x", 100, 1)
	tr.PEBS[3] = []PEBSRecord{{TID: 3}}
	tr.PT[1] = []byte{byte(PktEnd)}
	tr.Sync = []SyncRecord{{TID: 2}}
	tids := tr.TIDs()
	if len(tids) != 3 || tids[0] != 1 || tids[1] != 2 || tids[2] != 3 {
		t.Errorf("TIDs = %v", tids)
	}
	if tr.MBPerSecond() != 0 {
		t.Error("zero wall cycles must yield 0 MB/s")
	}
	tr.WallCycles = 4_000_000_000 // 1 second
	mb := tr.MBPerSecond()
	want := float64(tr.TotalBytes()) / 1e6
	if mb < want*0.999 || mb > want*1.001 {
		t.Errorf("MBPerSecond = %v, want %v", mb, want)
	}
}

func TestCompressedTraceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := NewTrace("mysql", 1000, 3)
	tr.WallCycles = 1_000_000
	base := randPEBS(rng)
	for tid := int32(0); tid < 4; tid++ {
		for k := 0; k < 200; k++ {
			rec := base // nearby samples share most register bytes
			rec.TID = tid
			rec.TSC = uint64(k * 997)
			rec.Addr = 0x600000 + uint64(k%64)*8
			tr.PEBS[tid] = append(tr.PEBS[tid], rec)
		}
	}
	tr.Sync = append(tr.Sync, SyncRecord{TID: 1, Kind: SyncLock, TSC: 5, Addr: 0x700000})

	comp, err := tr.EncodeCompressed()
	if err != nil {
		t.Fatal(err)
	}
	raw := tr.Encode()
	if len(comp) >= len(raw) {
		t.Errorf("compression gained nothing: %d vs %d bytes", len(comp), len(raw))
	}
	back, err := DecodeTraceAuto(comp)
	if err != nil {
		t.Fatal(err)
	}
	if back.SampleCount() != tr.SampleCount() || back.Program != tr.Program ||
		len(back.Sync) != len(tr.Sync) {
		t.Error("compressed round trip lost data")
	}
	// Auto-detection also accepts the raw form.
	back2, err := DecodeTraceAuto(raw)
	if err != nil || back2.SampleCount() != tr.SampleCount() {
		t.Errorf("raw auto-decode failed: %v", err)
	}
	t.Logf("compression: %d -> %d bytes (%.1fx)", len(raw), len(comp), float64(len(raw))/float64(len(comp)))
}

func TestCompressedTraceErrors(t *testing.T) {
	if _, err := DecodeTraceAuto([]byte("PRTZgarbage-that-is-not-deflate")); err == nil {
		t.Error("garbage deflate must fail")
	}
	if _, err := DecodeTraceAuto([]byte("XX")); err == nil {
		t.Error("short input must fail")
	}
}
