package replay

import (
	"prorace/internal/isa"
)

// backwardPass implements §5.2: for each segment ending at a PEBS sample,
// walk the path backwards from the sample, propagating the sample's
// register file towards each register's last definition (backward
// propagation) and un-executing invertible instructions (reverse
// execution). Memory operands whose address registers become known are
// recovered; register facts that the forward pass lacked are recorded as
// learned facts for the next forward iteration (the paper's "yet another
// forward replay starting from the youngest instruction").
//
// It returns the number of newly recovered accesses.
func (e *Engine) backwardPass(ps *pathState) int {
	newly := 0
	samples := ps.tt.Samples
	for k := range samples {
		hi := samples[k].StepIndex
		lo := 0
		if k > 0 {
			lo = samples[k-1].StepIndex + 1
		}
		if hi-lo > e.cfg.MaxBackwardSteps {
			lo = hi - e.cfg.MaxBackwardSteps
		}
		newly += e.backwardSegment(ps, lo, hi, regFileFromSample(&samples[k].Rec))
	}
	return newly
}

// backwardSegment walks [lo, hi] in reverse. cur enters as the post-state
// of step hi (the sample's register file) and is transformed into earlier
// pre-states step by step.
func (e *Engine) backwardSegment(ps *pathState, lo, hi int, cur regFile) int {
	newly := 0
	pcs := ps.tt.Path.PCs
	var regBuf [2]isa.Reg // stack scratch for AppendDefs/AppendAddrRegs
	for i := hi; i >= lo; i-- {
		in, okInst := e.p.InstAt(pcs[i])
		if !okInst {
			break
		}

		// Derive the pre-state of step i from its post-state in cur —
		// but first record, for each register this step defines and whose
		// post-value we know, a learned fact at step i+1 (the pre-state of
		// the following step). The next forward pass restores the value
		// right where backward propagation reached its definition — the
		// paper's "yet another forward replay starting from the youngest
		// instruction", iterated to a fixed point.
		post := cur
		e.unexecute(in, &cur)
		for _, d := range in.AppendDefs(regBuf[:0]) {
			if post.has(d) && (!cur.has(d) || cur.get(d) != post.get(d)) {
				ps.learnFact(hi, i+1, d, post.get(d))
			}
		}

		// cur is now the pre-state of step i: evaluate the memory operand.
		// Step hi itself is the sample — already known.
		if i < hi && in.IsMemAccess() && !ps.known[i] {
			if addr, ok := addrOf(in, &cur, pcs[i]); ok {
				ps.known[i] = true
				ps.origin[i] = OriginBackward
				ps.addrs[i] = addr
				ps.recovered++
				newly++
			}
		}

		// Record facts the forward pass lacked, but only where they can
		// pay off: at memory operands forward could not resolve.
		if i < hi && in.HasMemOperand() {
			for _, r := range in.AppendAddrRegs(regBuf[:0]) {
				if cur.has(r) && ps.fwdAvail[i]&(1<<r) == 0 {
					ps.learnedSlot(i).set(r, cur.get(r))
				}
			}
		}
	}
	return newly
}

// learnFact records a learned fact at step for the next forward pass,
// unless the forward pass already had the register there.
func (ps *pathState) learnFact(hi, step int, r isa.Reg, v uint64) {
	if step > hi || ps.fwdAvail[step]&(1<<r) != 0 {
		return
	}
	ps.learnedSlot(step).set(r, v)
}

// unexecute transforms cur from the post-state of in to its pre-state.
// Registers the instruction does not define are unchanged. Defined
// registers are recovered where the paper's reverse execution can
// (§5.2.2): immediate add/sub/xor are bijections; MOV establishes an
// equality; two-register add/sub recover one operand from the other; LEA
// with a base-only operand is an addition by a constant.
func (e *Engine) unexecute(in isa.Inst, cur *regFile) {
	switch in.Op {
	case isa.MOV:
		// post[rd] == pre[rs]; pre[rd] is lost.
		if cur.has(in.Rd) {
			v := cur.get(in.Rd)
			cur.clear(in.Rd)
			cur.set(in.Rs, v)
		} else {
			cur.clear(in.Rd)
		}
		if in.Rd == in.Rs {
			// mov r, r: value unchanged; restore availability.
			return
		}

	case isa.ADDI, isa.SUBI, isa.XORI:
		if cur.has(in.Rd) {
			if pre, ok := in.Invert(cur.get(in.Rd)); ok {
				cur.set(in.Rd, pre)
			}
		}

	case isa.ADD, isa.SUB, isa.XOR:
		// post = pre OP src. src (Rs) is not modified, so cur[Rs] is its
		// value throughout — unless Rd == Rs.
		if in.Rd == in.Rs {
			// post = pre OP pre: the pre-state is not recoverable (ADD
			// loses a parity bit, SUB and XOR collapse to 0).
			cur.clear(in.Rd)
			return
		}
		if cur.has(in.Rd) && cur.has(in.Rs) {
			post, src := cur.get(in.Rd), cur.get(in.Rs)
			if in.Op == isa.XOR {
				cur.set(in.Rd, post^src)
				return
			}
			if pre, ok := in.InvertRegPair(post, src, true); ok {
				cur.set(in.Rd, pre)
				return
			}
		}
		cur.clear(in.Rd)

	case isa.LEA:
		// rd = base + disp (ModeBase): pre[base] = post[rd] - disp.
		if in.Mode == isa.ModeBase && cur.has(in.Rd) {
			base := cur.get(in.Rd) - uint64(in.Disp)
			if in.Rd != in.Base {
				cur.clear(in.Rd)
			}
			cur.set(in.Base, base)
			return
		}
		cur.clear(in.Rd)

	case isa.MOVI:
		// pre[rd] lost, but going backwards we could even *check* the
		// constant; availability of rd before the write is unknown.
		cur.clear(in.Rd)

	case isa.LOAD:
		cur.clear(in.Rd)

	case isa.MUL, isa.AND, isa.OR, isa.SHL, isa.SHR,
		isa.MULI, isa.ANDI, isa.ORI, isa.SHLI, isa.SHRI:
		cur.clear(in.Rd)

	case isa.SYSCALL:
		cur.clear(isa.R0)
	}
}
