package replay

import (
	"math/rand"
	"testing"

	"prorace/internal/machine"
	"prorace/internal/pmu/driver"
	"prorace/internal/progtest"
	"prorace/internal/synthesis"
)

// TestFuzzReplaySoundness runs random structured programs through the full
// online + offline pipeline at several sampling periods and verifies that
// every reconstructed access carries exactly the address the machine
// computed — the soundness property that lets races be reported from
// reconstructed accesses at all.
func TestFuzzReplaySoundness(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed + 1000))
		p := progtest.RandomProgram(rng)
		for _, period := range []uint64{5, 31, 257} {
			mac := machine.New(p, machine.Config{Seed: seed, MaxCycles: 5_000_000})
			d := driver.New(mac, driver.Options{Kind: driver.ProRace, Period: period, Seed: seed, EnablePT: true})
			g := progtest.NewGolden(d)
			mac.SetTracer(g)
			if _, err := mac.Run(); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			tts, err := synthesis.Synthesize(p, d.Finish())
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			for _, mode := range []Mode{ModeForward, ModeForwardBackward} {
				e := NewEngine(p, Config{Mode: mode})
				accesses, st := e.ReconstructAll(tts)
				for tid, accs := range accesses {
					golden := g.Steps[tid]
					for _, a := range accs {
						if a.Step < 0 {
							continue
						}
						if a.Step >= len(golden) {
							t.Fatalf("seed %d period %d: step %d beyond golden %d",
								seed, period, a.Step, len(golden))
						}
						w := golden[a.Step]
						if !w.IsMem || w.PC != a.PC || w.Addr != a.Addr {
							t.Fatalf("seed %d period %d mode %v tid %d step %d: recovered %#x@%#x, golden %#x@%#x",
								seed, period, mode, tid, a.Step, a.Addr, a.PC, w.Addr, w.PC)
						}
					}
				}
				if st.Sampled == 0 && period == 5 && st.MemSteps > 10 {
					t.Errorf("seed %d: no samples at period 5 with %d mem steps", seed, st.MemSteps)
				}
			}
		}
	}
}
