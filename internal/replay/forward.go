package replay

import (
	"prorace/internal/isa"
	"prorace/internal/synthesis"
	"prorace/internal/tracefmt"
)

// regFacts is a flat register-fact set: the backward-derived pre-state
// values to apply at one step. A fixed array instead of a nested map keeps
// the learned-fact bookkeeping allocation-free on the replay hot path.
type regFacts struct {
	avail uint16 // bit i set = a fact for register i
	val   [isa.NumRegs]uint64
}

func (f *regFacts) set(r isa.Reg, v uint64) {
	f.val[r] = v
	f.avail |= 1 << r
}

// pathState carries the per-path working arrays shared by the forward and
// backward passes across fixed-point iterations. States are pooled by the
// engine and reset per thread, so steady-state reconstruction reuses the
// slices and map buckets of earlier threads instead of reallocating them.
type pathState struct {
	tt     *synthesis.ThreadTrace
	origin []Origin // per step; originNone when unrecovered
	known  []bool   // per step; true once the address is recovered
	addrs  []uint64 // recovered address per step
	// fwdAvail records each step's pre-state register availability from
	// the latest forward pass, so the backward pass can tell which of its
	// facts are new.
	fwdAvail []uint16
	// learnedIdx/learnedFacts hold backward-derived pre-state register
	// values, applied at the given step by the next forward pass. The
	// per-step table stores 1-based indices into an arena slice (0 = no
	// facts): regFacts is larger than the runtime's 128-byte inline-map-
	// value limit, so a map[int]regFacts would heap-box every insert, and
	// per-step map lookups dominated the replay CPU profile besides.
	learnedIdx   []int32
	learnedFacts []regFacts
	// sampleAt holds each step's PEBS record, nil when unsampled.
	sampleAt []*tracefmt.PEBSRecord
	// syncAt holds each step's pinned synchronization record, nil if none.
	syncAt []*tracefmt.SyncRecord
	// mem is the forward pass's emulated-memory map, cleared at every pass
	// and reused so its buckets survive across passes and threads.
	mem map[uint64]uint64
	// recovered counts steps with known[i] set — the exact capacity the
	// access list needs (upper-bounded by Stats.MemSteps).
	recovered int
}

// resetSlice returns s resized to n and zeroed, reusing capacity.
func resetSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// reset prepares a (possibly pooled) state for one thread.
func (ps *pathState) reset(tt *synthesis.ThreadTrace) {
	n := tt.Path.Len()
	ps.tt = tt
	ps.origin = resetSlice(ps.origin, n)
	ps.known = resetSlice(ps.known, n)
	ps.addrs = resetSlice(ps.addrs, n)
	ps.fwdAvail = resetSlice(ps.fwdAvail, n)
	ps.learnedIdx = resetSlice(ps.learnedIdx, n)
	ps.sampleAt = resetSlice(ps.sampleAt, n)
	ps.syncAt = resetSlice(ps.syncAt, n)
	ps.learnedFacts = ps.learnedFacts[:0]
	if ps.mem == nil {
		ps.mem = map[uint64]uint64{}
	}
	ps.recovered = 0
	for i := range tt.Samples {
		s := &tt.Samples[i]
		if s.StepIndex >= 0 && s.StepIndex < n {
			ps.sampleAt[s.StepIndex] = &s.Rec
		}
	}
	for i := range tt.Sync {
		s := &tt.Sync[i]
		if s.StepIndex >= 0 && s.StepIndex < n {
			ps.syncAt[s.StepIndex] = &s.Rec
		}
	}
}

// learnedAt returns the facts recorded at step, or nil.
func (ps *pathState) learnedAt(step int) *regFacts {
	if j := ps.learnedIdx[step]; j != 0 {
		return &ps.learnedFacts[j-1]
	}
	return nil
}

// learnedSlot returns the step's fact slot, creating it if needed. The
// pointer is only valid until the next learnedSlot call — the arena may
// grow under it.
func (ps *pathState) learnedSlot(step int) *regFacts {
	if j := ps.learnedIdx[step]; j != 0 {
		return &ps.learnedFacts[j-1]
	}
	ps.learnedFacts = append(ps.learnedFacts, regFacts{})
	ps.learnedIdx[step] = int32(len(ps.learnedFacts))
	return &ps.learnedFacts[len(ps.learnedFacts)-1]
}

// release drops every reference into the thread's trace so a pooled state
// never pins decoded paths or samples beyond its use.
func (ps *pathState) release() {
	ps.tt = nil
	clear(ps.sampleAt)
	clear(ps.syncAt)
	clear(ps.mem)
}

// reconstructPath runs the path-guided modes (Forward, ForwardBackward).
func (e *Engine) reconstructPath(tt *synthesis.ThreadTrace) ([]Access, Stats) {
	ps := e.states.Get().(*pathState)
	if ps.origin != nil {
		e.met.recycles.Inc() // warm state: prior capacity is being reused
	}
	defer func() {
		ps.release()
		e.states.Put(ps)
	}()
	ps.reset(tt)
	var st Stats
	st.PathSteps = tt.Path.Len()
	for _, pc := range tt.Path.PCs {
		if in, ok := e.p.InstAt(pc); ok && in.IsMemAccess() {
			st.MemSteps++
		}
	}

	for iter := 0; iter < e.cfg.MaxIterations; iter++ {
		st.Iterations = iter + 1
		newly := e.forwardPass(ps, &st)
		if e.cfg.Mode == ModeForward {
			break
		}
		newly += e.backwardPass(ps)
		if newly == 0 && iter > 0 {
			break
		}
	}

	accesses := e.collect(ps, &st)

	// Samples that could not be pinned to the path still contribute. On a
	// complete path every instruction was already visited, so the
	// block-relative TSC guesses bbForRecord fabricates for a sample's
	// neighbours would only duplicate path recoveries — and a static block
	// can span a sync syscall, so a guessed timestamp can drop an access on
	// the wrong side of its own thread's acquire or release, manufacturing
	// a race the execution never had. Emit just the sampled access itself
	// (exact address, exact TSC); fall back to full block reconstruction
	// only when the path is missing or degraded and may genuinely lack the
	// sample's block.
	pathComplete := tt.Path.Len() > 0 && !tt.Path.Degraded()
	for i := range tt.UnpinnedSamples {
		rec := &tt.UnpinnedSamples[i]
		if pathComplete {
			accesses = append(accesses, e.sampleAccess(rec, &st))
			continue
		}
		accesses = append(accesses, e.bbForRecord(rec, &st)...)
	}
	return accesses, st
}

// sampleAccess converts one PEBS record into the access it directly
// witnessed, with no reconstruction around it.
func (e *Engine) sampleAccess(rec *tracefmt.PEBSRecord, st *Stats) Access {
	store := false
	if in, ok := e.p.InstAt(rec.IP); ok {
		store = in.IsStore()
	}
	st.Sampled++
	return Access{
		TID:    rec.TID,
		PC:     rec.IP,
		Addr:   rec.Addr,
		Store:  store,
		TSC:    rec.TSC,
		Step:   -1,
		Origin: OriginSampled,
	}
}

// forwardPass is the §5.1 forward replay over the whole path: registers are
// restored at every sample, availability is tracked in the program map, and
// every memory operand whose address becomes computable is recovered.
// It returns the number of newly recovered accesses.
func (e *Engine) forwardPass(ps *pathState, st *Stats) int {
	var rf regFile // all-unavailable before the first sample
	mem := ps.mem
	clear(mem) // each pass starts with no trusted emulated memory
	memDrop := func() {
		if len(mem) > 0 {
			clear(mem)
		}
	}
	// invalidAddr avoids a map probe per memory step in the common case of
	// no §5.1 invalidations yet.
	invalid := e.cfg.InvalidAddrs
	hasInvalid := len(invalid) > 0
	invalidAddr := func(addr uint64) bool { return hasInvalid && invalid[addr] }
	newly := 0

	for i, pc := range ps.tt.Path.PCs {
		// Apply backward-derived facts for this step's pre-state.
		if facts := ps.learnedAt(i); facts != nil {
			for r := isa.Reg(0); r < isa.NumRegs; r++ {
				if facts.avail&(1<<r) != 0 && !rf.has(r) {
					rf.set(r, facts.val[r])
				}
			}
		}
		ps.fwdAvail[i] = rf.avail

		in, okInst := e.p.InstAt(pc)
		if !okInst {
			break
		}

		// A sampled step: the record supplies the exact address and the
		// full post-retirement register file.
		if rec := ps.sampleAt[i]; rec != nil {
			if !ps.known[i] {
				ps.known[i] = true
				ps.origin[i] = OriginSampled
				ps.addrs[i] = rec.Addr
				ps.recovered++
			}
			rf = regFileFromSample(rec)
			if e.cfg.EmulateMemory && !invalidAddr(rec.Addr) {
				if in.Op == isa.LOAD {
					// The loaded value is the post-state of rd.
					mem[rec.Addr] = rf.get(in.Rd)
				} else if in.Op == isa.STORE {
					mem[rec.Addr] = rf.get(in.Rs)
				}
			}
			continue
		}

		switch in.Op {
		case isa.LOAD, isa.STORE, isa.LEA:
			addr, okAddr := addrOf(in, &rf, pc)
			if okAddr && in.IsMemAccess() && !ps.known[i] {
				ps.known[i] = true
				ps.origin[i] = OriginForward
				ps.addrs[i] = addr
				ps.recovered++
				newly++
			}
			switch in.Op {
			case isa.LOAD:
				if v, hit := mem[addr]; okAddr && hit && e.cfg.EmulateMemory && !invalidAddr(addr) {
					rf.set(in.Rd, v)
				} else {
					if okAddr && invalidAddr(addr) {
						st.InvalidHits++
					}
					rf.clear(in.Rd)
				}
			case isa.STORE:
				if !okAddr {
					// A store to an unknown location may clobber anything:
					// conservatively invalidate the emulated memory (§5.1).
					memDrop()
				} else if e.cfg.EmulateMemory && rf.has(in.Rs) && !invalidAddr(addr) {
					mem[addr] = rf.get(in.Rs)
				} else {
					delete(mem, addr)
				}
			case isa.LEA:
				if okAddr {
					rf.set(in.Rd, addr)
				} else {
					rf.clear(in.Rd)
				}
			}

		case isa.MOVI:
			rf.set(in.Rd, uint64(in.Imm))
		case isa.MOV:
			if rf.has(in.Rs) {
				rf.set(in.Rd, rf.get(in.Rs))
			} else {
				rf.clear(in.Rd)
			}
		case isa.ADD, isa.SUB, isa.MUL, isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR:
			if rf.has(in.Rd) && rf.has(in.Rs) {
				v, _ := in.ALU(rf.get(in.Rd), rf.get(in.Rs))
				rf.set(in.Rd, v)
			} else {
				rf.clear(in.Rd)
			}
		case isa.ADDI, isa.SUBI, isa.MULI, isa.ANDI, isa.ORI, isa.XORI, isa.SHLI, isa.SHRI:
			if rf.has(in.Rd) {
				v, _ := in.ALU(rf.get(in.Rd), 0)
				rf.set(in.Rd, v)
			} else {
				rf.clear(in.Rd)
			}
		case isa.SYSCALL:
			// Emulated memory cannot be trusted across a syscall (§5.1).
			memDrop()
			if rec := ps.syncAt[i]; rec != nil {
				switch rec.Kind {
				case tracefmt.SyncMalloc, tracefmt.SyncThreadCreate:
					// The sync log records the result, so the replay can
					// restore it — this is how heap pointers obtained from
					// malloc become available offline.
					rf.set(isa.R0, rec.Addr)
				case tracefmt.SyncThreadJoin:
					rf.clear(isa.R0) // exit code not logged
				default:
					rf.set(isa.R0, 0)
				}
			} else {
				rf.clear(isa.R0)
			}
		default:
			// CMP/CMPI set flags only; branches are path-driven.
		}
	}
	return newly
}

// collect turns the per-step recovery state into the access list. The
// slice is sized once from the recovery count (a tight version of the
// Stats.MemSteps upper bound), so appending never regrows it.
func (e *Engine) collect(ps *pathState, st *Stats) []Access {
	out := make([]Access, 0, ps.recovered)
	for i, known := range ps.known {
		if !known {
			continue
		}
		pc := ps.tt.Path.PCs[i]
		in, ok := e.p.InstAt(pc)
		if !ok {
			// A gap-recovered path can carry a few desynced steps around a
			// skipped region; an address outside the text segment yields no
			// access rather than aborting the thread.
			continue
		}
		if !in.IsMemAccess() {
			continue
		}
		a := Access{
			TID:    ps.tt.TID,
			PC:     pc,
			Addr:   ps.addrs[i],
			Store:  in.IsStore(),
			Step:   i,
			Origin: ps.origin[i],
		}
		switch ps.origin[i] {
		case OriginSampled:
			a.TSC = ps.sampleAt[i].TSC
			st.Sampled++
		case OriginForward:
			a.TSC = ps.tt.EstimateTSC(i)
			st.Forward++
		case OriginBackward:
			a.TSC = ps.tt.EstimateTSC(i)
			st.Backward++
		}
		out = append(out, a)
	}
	return out
}
