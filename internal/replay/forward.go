package replay

import (
	"prorace/internal/isa"
	"prorace/internal/synthesis"
	"prorace/internal/tracefmt"
)

// pathState carries the per-path working arrays shared by the forward and
// backward passes across fixed-point iterations.
type pathState struct {
	tt     *synthesis.ThreadTrace
	origin []Origin // per step; originNone when unrecovered
	known  []bool   // per step; true once the address is recovered
	addrs  []uint64 // recovered address per step
	// fwdAvail records each step's pre-state register availability from
	// the latest forward pass, so the backward pass can tell which of its
	// facts are new.
	fwdAvail []uint16
	// learned holds backward-derived pre-state register values, applied at
	// the given step by the next forward pass.
	learned map[int]map[isa.Reg]uint64
	// sampleAt maps a step index to its PEBS record.
	sampleAt map[int]*tracefmt.PEBSRecord
	// syncAt maps a step index to its pinned synchronization record.
	syncAt map[int]*tracefmt.SyncRecord
}

func newPathState(tt *synthesis.ThreadTrace) *pathState {
	n := tt.Path.Len()
	ps := &pathState{
		tt:       tt,
		origin:   make([]Origin, n),
		known:    make([]bool, n),
		addrs:    make([]uint64, n),
		fwdAvail: make([]uint16, n),
		learned:  map[int]map[isa.Reg]uint64{},
		sampleAt: map[int]*tracefmt.PEBSRecord{},
		syncAt:   map[int]*tracefmt.SyncRecord{},
	}
	for i := range tt.Samples {
		s := &tt.Samples[i]
		ps.sampleAt[s.StepIndex] = &s.Rec
	}
	for i := range tt.Sync {
		s := &tt.Sync[i]
		if s.StepIndex >= 0 {
			ps.syncAt[s.StepIndex] = &s.Rec
		}
	}
	return ps
}

// reconstructPath runs the path-guided modes (Forward, ForwardBackward).
func (e *Engine) reconstructPath(tt *synthesis.ThreadTrace) ([]Access, Stats) {
	ps := newPathState(tt)
	var st Stats
	st.PathSteps = tt.Path.Len()
	for _, pc := range tt.Path.PCs {
		if in, ok := e.p.InstAt(pc); ok && in.IsMemAccess() {
			st.MemSteps++
		}
	}

	for iter := 0; iter < e.cfg.MaxIterations; iter++ {
		st.Iterations = iter + 1
		newly := e.forwardPass(ps, &st)
		if e.cfg.Mode == ModeForward {
			break
		}
		newly += e.backwardPass(ps)
		if newly == 0 && iter > 0 {
			break
		}
	}

	accesses := e.collect(ps, &st)

	// Samples that could not be pinned to the path still contribute via
	// static basic-block reconstruction.
	for i := range tt.UnpinnedSamples {
		accesses = append(accesses, e.bbForRecord(&tt.UnpinnedSamples[i], &st)...)
	}
	return accesses, st
}

// forwardPass is the §5.1 forward replay over the whole path: registers are
// restored at every sample, availability is tracked in the program map, and
// every memory operand whose address becomes computable is recovered.
// It returns the number of newly recovered accesses.
func (e *Engine) forwardPass(ps *pathState, st *Stats) int {
	var rf regFile // all-unavailable before the first sample
	mem := map[uint64]uint64{}
	memDrop := func() {
		if len(mem) > 0 {
			mem = map[uint64]uint64{}
		}
	}
	newly := 0

	for i, pc := range ps.tt.Path.PCs {
		// Apply backward-derived facts for this step's pre-state.
		if facts, ok := ps.learned[i]; ok {
			for r, v := range facts {
				if !rf.has(r) {
					rf.set(r, v)
				}
			}
		}
		ps.fwdAvail[i] = rf.avail

		in, okInst := e.p.InstAt(pc)
		if !okInst {
			break
		}

		// A sampled step: the record supplies the exact address and the
		// full post-retirement register file.
		if rec := ps.sampleAt[i]; rec != nil {
			if !ps.known[i] {
				ps.known[i] = true
				ps.origin[i] = OriginSampled
				ps.addrs[i] = rec.Addr
			}
			rf = regFileFromSample(rec)
			if e.cfg.EmulateMemory && !e.cfg.InvalidAddrs[rec.Addr] {
				if in.Op == isa.LOAD {
					// The loaded value is the post-state of rd.
					mem[rec.Addr] = rf.get(in.Rd)
				} else if in.Op == isa.STORE {
					mem[rec.Addr] = rf.get(in.Rs)
				}
			}
			continue
		}

		switch in.Op {
		case isa.LOAD, isa.STORE, isa.LEA:
			addr, okAddr := addrOf(in, &rf, pc)
			if okAddr && in.IsMemAccess() && !ps.known[i] {
				ps.known[i] = true
				ps.origin[i] = OriginForward
				ps.addrs[i] = addr
				newly++
			}
			switch in.Op {
			case isa.LOAD:
				if v, hit := mem[addr]; okAddr && hit && e.cfg.EmulateMemory && !e.cfg.InvalidAddrs[addr] {
					rf.set(in.Rd, v)
				} else {
					if okAddr && e.cfg.InvalidAddrs[addr] {
						st.InvalidHits++
					}
					rf.clear(in.Rd)
				}
			case isa.STORE:
				if !okAddr {
					// A store to an unknown location may clobber anything:
					// conservatively invalidate the emulated memory (§5.1).
					memDrop()
				} else if e.cfg.EmulateMemory && rf.has(in.Rs) && !e.cfg.InvalidAddrs[addr] {
					mem[addr] = rf.get(in.Rs)
				} else {
					delete(mem, addr)
				}
			case isa.LEA:
				if okAddr {
					rf.set(in.Rd, addr)
				} else {
					rf.clear(in.Rd)
				}
			}

		case isa.MOVI:
			rf.set(in.Rd, uint64(in.Imm))
		case isa.MOV:
			if rf.has(in.Rs) {
				rf.set(in.Rd, rf.get(in.Rs))
			} else {
				rf.clear(in.Rd)
			}
		case isa.ADD, isa.SUB, isa.MUL, isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR:
			if rf.has(in.Rd) && rf.has(in.Rs) {
				v, _ := in.ALU(rf.get(in.Rd), rf.get(in.Rs))
				rf.set(in.Rd, v)
			} else {
				rf.clear(in.Rd)
			}
		case isa.ADDI, isa.SUBI, isa.MULI, isa.ANDI, isa.ORI, isa.XORI, isa.SHLI, isa.SHRI:
			if rf.has(in.Rd) {
				v, _ := in.ALU(rf.get(in.Rd), 0)
				rf.set(in.Rd, v)
			} else {
				rf.clear(in.Rd)
			}
		case isa.SYSCALL:
			// Emulated memory cannot be trusted across a syscall (§5.1).
			memDrop()
			if rec := ps.syncAt[i]; rec != nil {
				switch rec.Kind {
				case tracefmt.SyncMalloc, tracefmt.SyncThreadCreate:
					// The sync log records the result, so the replay can
					// restore it — this is how heap pointers obtained from
					// malloc become available offline.
					rf.set(isa.R0, rec.Addr)
				case tracefmt.SyncThreadJoin:
					rf.clear(isa.R0) // exit code not logged
				default:
					rf.set(isa.R0, 0)
				}
			} else {
				rf.clear(isa.R0)
			}
		default:
			// CMP/CMPI set flags only; branches are path-driven.
		}
	}
	return newly
}

// collect turns the per-step recovery state into the access list.
func (e *Engine) collect(ps *pathState, st *Stats) []Access {
	var out []Access
	for i, known := range ps.known {
		if !known {
			continue
		}
		pc := ps.tt.Path.PCs[i]
		in, ok := e.p.InstAt(pc)
		if !ok {
			// A gap-recovered path can carry a few desynced steps around a
			// skipped region; an address outside the text segment yields no
			// access rather than aborting the thread.
			continue
		}
		if !in.IsMemAccess() {
			continue
		}
		a := Access{
			TID:    ps.tt.TID,
			PC:     pc,
			Addr:   ps.addrs[i],
			Store:  in.IsStore(),
			Step:   i,
			Origin: ps.origin[i],
		}
		switch ps.origin[i] {
		case OriginSampled:
			a.TSC = ps.sampleAt[i].TSC
			st.Sampled++
		case OriginForward:
			a.TSC = ps.tt.EstimateTSC(i)
			st.Forward++
		case OriginBackward:
			a.TSC = ps.tt.EstimateTSC(i)
			st.Backward++
		}
		out = append(out, a)
	}
	return out
}
