// Package replay implements ProRace's offline memory-access reconstruction
// (paper §5): re-executing the program binary around each PEBS sample along
// the PT-decoded path to recover the addresses of unsampled loads and
// stores.
//
// Three reconstruction modes are provided, matching the paper's Figure 11
// comparison:
//
//   - ModeBasicBlock — RaceZ's approach: reconstruction confined to the
//     static basic block containing each sample, with only trivial
//     backward propagation inside that block. Needs no PT.
//   - ModeForward — ProRace's forward replay (§5.1): from each sample,
//     restore the PEBS register file and execute forward along the decoded
//     path, tracking register/memory availability in a program map,
//     until the next sample.
//   - ModeForwardBackward — full ProRace (§5.2): forward replay plus
//     backward replay (backward propagation of the next sample's register
//     file to each register's last definition, and reverse execution of
//     invertible instructions), iterated to a fixed point.
//
// PC-relative and absolute addresses are recoverable wherever the path is
// known, even with no live register — the reason the paper's Table 2 shows
// 100% detection for the PC-relative bugs.
package replay

import (
	"sync"

	"prorace/internal/isa"
	"prorace/internal/prog"
	"prorace/internal/synthesis"
	"prorace/internal/telemetry"
	"prorace/internal/tracefmt"
)

// Mode selects the reconstruction algorithm.
type Mode int

const (
	// ModeBasicBlock confines reconstruction to each sample's static basic
	// block (the RaceZ baseline).
	ModeBasicBlock Mode = iota
	// ModeForward runs path-guided forward replay only.
	ModeForward
	// ModeForwardBackward runs forward and backward replay to a fixed
	// point (full ProRace).
	ModeForwardBackward
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeBasicBlock:
		return "basicblock"
	case ModeForward:
		return "forward"
	case ModeForwardBackward:
		return "forward+backward"
	}
	return "mode?"
}

// Config parameterises the engine.
type Config struct {
	Mode Mode
	// EmulateMemory enables the program-map memory emulation of §5.1
	// (on by default in NewEngine; disable for the ablation).
	EmulateMemory bool
	// MaxBackwardSteps bounds one backward walk (default 200k).
	MaxBackwardSteps int
	// MaxIterations bounds forward/backward fixed-point rounds (default 3).
	MaxIterations int
	// InvalidAddrs are addresses whose emulated-memory contents must not
	// be trusted — the detector feeds back racy locations here and
	// reconstruction is re-run, implementing §5.1's trace regeneration.
	InvalidAddrs map[uint64]bool
	// Telemetry receives the prorace_replay_* series. Metric handles are
	// resolved once at NewEngine and flushed once per reconstructed thread;
	// nil leaves every handle nil, making the instrumented calls no-ops
	// with zero allocations (see alloc_test.go).
	Telemetry *telemetry.Registry
}

// How an access was obtained, for the Figure 11 breakdown.
type Origin uint8

const (
	// OriginSampled: directly from a PEBS record.
	OriginSampled Origin = iota
	// OriginForward: recovered by forward replay (includes PC-relative).
	OriginForward
	// OriginBackward: recovered only by backward replay.
	OriginBackward
	// OriginBB: recovered by static basic-block reconstruction.
	OriginBB
)

// Access is one memory access of the extended trace (paper Figure 1:
// "Extended Memory Trace").
type Access struct {
	TID    int32
	PC     uint64
	Addr   uint64
	Store  bool
	TSC    uint64 // exact for sampled, estimated otherwise
	Step   int    // path index; -1 when reconstructed without a path
	Origin Origin
}

// Stats summarises one thread's reconstruction.
type Stats struct {
	Sampled     int
	Forward     int
	Backward    int
	BasicBlock  int
	PathSteps   int
	MemSteps    int // memory-access instructions on the path
	Iterations  int
	InvalidHits int // accesses suppressed by InvalidAddrs feedback
}

// Merge folds another thread's stats into s: counters add, Iterations
// keeps the maximum (the fixed-point depth of the slowest thread). Every
// aggregation path must go through here so newly added fields are never
// silently dropped by a hand-rolled merge.
func (s *Stats) Merge(o Stats) {
	s.Sampled += o.Sampled
	s.Forward += o.Forward
	s.Backward += o.Backward
	s.BasicBlock += o.BasicBlock
	s.PathSteps += o.PathSteps
	s.MemSteps += o.MemSteps
	s.InvalidHits += o.InvalidHits
	if o.Iterations > s.Iterations {
		s.Iterations = o.Iterations
	}
}

// Total returns the number of accesses in the extended trace.
func (s Stats) Total() int { return s.Sampled + s.Forward + s.Backward + s.BasicBlock }

// RecoveryRatio is the paper's Figure 11 metric: recovered+sampled accesses
// normalised to sampled accesses.
func (s Stats) RecoveryRatio() float64 {
	if s.Sampled == 0 {
		return 0
	}
	return float64(s.Total()) / float64(s.Sampled)
}

// Engine reconstructs extended memory traces for one program.
type Engine struct {
	p   *prog.Program
	cfg Config
	// states pools pathState working sets across threads and calls, so
	// steady-state reconstruction reuses the per-path arrays and map
	// buckets instead of reallocating them for every thread.
	states *sync.Pool
	met    engineMetrics
}

// engineMetrics caches the engine's telemetry handles; the zero value
// (all nil) is the disabled state and every call through it is a no-op.
type engineMetrics struct {
	threads     *telemetry.Counter
	sampled     *telemetry.Counter
	forward     *telemetry.Counter
	backward    *telemetry.Counter
	bb          *telemetry.Counter
	pathSteps   *telemetry.Counter
	memSteps    *telemetry.Counter
	invalidHits *telemetry.Counter
	recycles    *telemetry.Counter
	iterations  *telemetry.Histogram
}

func newEngineMetrics(tel *telemetry.Registry) engineMetrics {
	if tel == nil {
		return engineMetrics{}
	}
	return engineMetrics{
		threads:     tel.Counter("prorace_replay_threads_total", "Threads reconstructed."),
		sampled:     tel.Counter("prorace_replay_accesses_sampled_total", "Accesses taken directly from PEBS records (replay.Stats.Sampled)."),
		forward:     tel.Counter("prorace_replay_accesses_forward_total", "Accesses recovered by forward replay (replay.Stats.Forward)."),
		backward:    tel.Counter("prorace_replay_accesses_backward_total", "Accesses recovered only by backward replay (replay.Stats.Backward)."),
		bb:          tel.Counter("prorace_replay_accesses_bb_total", "Accesses recovered by static basic-block reconstruction (replay.Stats.BasicBlock)."),
		pathSteps:   tel.Counter("prorace_replay_path_steps_total", "Decoded path steps walked (replay.Stats.PathSteps)."),
		memSteps:    tel.Counter("prorace_replay_mem_steps_total", "Memory-access instructions on walked paths (replay.Stats.MemSteps)."),
		invalidHits: tel.Counter("prorace_replay_invalid_hits_total", "Accesses suppressed by §5.1 racy-address feedback (replay.Stats.InvalidHits)."),
		recycles:    tel.Counter("prorace_replay_pool_recycles_total", "Reconstructions served by a warm pooled pathState."),
		iterations:  tel.Histogram("prorace_replay_iterations", "Forward/backward fixed-point rounds per thread (replay.Stats.Iterations).", telemetry.DepthBuckets),
	}
}

// publish flushes one thread's stats into the registry — a single batch of
// atomic adds per thread, nothing per step.
func (m *engineMetrics) publish(st *Stats) {
	m.threads.Inc()
	m.sampled.AddInt(st.Sampled)
	m.forward.AddInt(st.Forward)
	m.backward.AddInt(st.Backward)
	m.bb.AddInt(st.BasicBlock)
	m.pathSteps.AddInt(st.PathSteps)
	m.memSteps.AddInt(st.MemSteps)
	m.invalidHits.AddInt(st.InvalidHits)
	if m.iterations != nil {
		m.iterations.Observe(float64(st.Iterations))
	}
}

// NewEngine returns an engine with defaults applied.
func NewEngine(p *prog.Program, cfg Config) *Engine {
	if cfg.MaxBackwardSteps == 0 {
		cfg.MaxBackwardSteps = 200_000
	}
	if cfg.MaxIterations == 0 {
		cfg.MaxIterations = 3
	}
	if cfg.Mode != ModeBasicBlock && !cfg.EmulateMemory {
		// EmulateMemory defaults to on; Config{} from callers who did not
		// opt out gets the paper's behaviour. The ablation sets
		// EmulateMemoryOff explicitly via DisableMemoryEmulation.
		cfg.EmulateMemory = true
	}
	return &Engine{
		p:      p,
		cfg:    cfg,
		states: &sync.Pool{New: func() any { return &pathState{} }},
		met:    newEngineMetrics(cfg.Telemetry),
	}
}

// DisableMemoryEmulation returns a copy of the engine without the §5.1
// program-map memory emulation, for the ablation benchmark.
func (e *Engine) DisableMemoryEmulation() *Engine {
	cfg := e.cfg
	cfg.EmulateMemory = false
	cp := *e
	cp.cfg = cfg
	return &cp
}

// ReconstructThread produces the extended memory trace of one thread.
func (e *Engine) ReconstructThread(tt *synthesis.ThreadTrace) ([]Access, Stats) {
	var (
		acc []Access
		st  Stats
	)
	switch e.cfg.Mode {
	case ModeBasicBlock:
		acc, st = e.reconstructBB(tt)
	default:
		acc, st = e.reconstructPath(tt)
	}
	e.met.publish(&st)
	return acc, st
}

// ReconstructAll runs reconstruction over every thread, returning accesses
// keyed by thread and aggregate stats.
func (e *Engine) ReconstructAll(tts map[int32]*synthesis.ThreadTrace) (map[int32][]Access, Stats) {
	out := make(map[int32][]Access, len(tts))
	var agg Stats
	for tid, tt := range tts {
		acc, st := e.ReconstructThread(tt)
		out[tid] = acc
		agg.Merge(st)
	}
	return out, agg
}

// regFile is the replay register state: value plus availability per
// register — the register half of the paper's "program map".
type regFile struct {
	val   [isa.NumRegs]uint64
	avail uint16 // bit i set = register i available
}

func (r *regFile) has(reg isa.Reg) bool { return r.avail&(1<<reg) != 0 }
func (r *regFile) get(reg isa.Reg) uint64 {
	return r.val[reg]
}
func (r *regFile) set(reg isa.Reg, v uint64) {
	r.val[reg] = v
	r.avail |= 1 << reg
}
func (r *regFile) clear(reg isa.Reg) { r.avail &^= 1 << reg }

func regFileFromSample(rec *tracefmt.PEBSRecord) regFile {
	var rf regFile
	rf.val = rec.Regs
	rf.avail = 0xFFFF
	return rf
}

// addrOf computes a memory operand's effective address under availability
// tracking; ok is false when a required register is unavailable.
func addrOf(in isa.Inst, rf *regFile, pc uint64) (uint64, bool) {
	var regBuf [2]isa.Reg
	for _, r := range in.AppendAddrRegs(regBuf[:0]) {
		if !rf.has(r) {
			return 0, false
		}
	}
	return in.EffectiveAddress(func(r isa.Reg) uint64 { return rf.get(r) }, pc), true
}
