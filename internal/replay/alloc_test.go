package replay

import (
	"testing"

	"prorace/internal/machine"
	"prorace/internal/pmu/driver"
	"prorace/internal/synthesis"
	"prorace/internal/telemetry"
	"prorace/internal/workload"
)

// allocWorkload traces the blackscholes workload and synthesizes its
// per-thread paths — a fixed, deterministic input for allocation guards.
func allocWorkload(t *testing.T) (*workload.Workload, map[int32]*synthesis.ThreadTrace) {
	t.Helper()
	w := workload.PARSEC(1)[0]
	mcfg := w.Machine
	mcfg.Seed = 3
	mac := machine.New(w.Program, mcfg)
	d := driver.New(mac, driver.Options{Kind: driver.ProRace, Period: 1000, Seed: 3, EnablePT: true})
	mac.SetTracer(d)
	if _, err := mac.Run(); err != nil {
		t.Fatal(err)
	}
	tts, err := synthesis.Synthesize(w.Program, d.Finish())
	if err != nil {
		t.Fatal(err)
	}
	return &w, tts
}

// TestReconstructAllSteadyStateAllocs pins the allocation budget of warm
// reconstruction. With pooled path states, the dense per-step tables and
// the learned-fact arena, a steady-state ReconstructAll allocates only the
// result map and access slices — a handful of allocations for thousands of
// accesses. The bound is ~20× above the measured value (7) but ~900× under
// the pre-pooling cost (12k+), so it flags a real regression without being
// flaky across runtime versions.
func TestReconstructAllSteadyStateAllocs(t *testing.T) {
	w, tts := allocWorkload(t)
	engine := NewEngine(w.Program, Config{Mode: ModeForwardBackward})
	// Warm the state pool and count the accesses the budget amortises.
	accs, st := engine.ReconstructAll(tts)
	if st.Total() == 0 || len(accs) == 0 {
		t.Fatal("probe workload reconstructed nothing")
	}
	avg := testing.AllocsPerRun(5, func() { engine.ReconstructAll(tts) })
	const budget = 150
	if avg > budget {
		t.Errorf("steady-state ReconstructAll: %.1f allocs/run over %d accesses, budget %d",
			avg, st.Total(), budget)
	}
}

// TestTelemetryOffAddsNoAllocs pins the disabled-telemetry contract on the
// replay hot path: an engine built without a registry holds nil metric
// handles, and every instrumentation call through them — the per-thread
// publish batch and the per-reconstruction recycle/iteration calls — is
// exactly zero allocations.
func TestTelemetryOffAddsNoAllocs(t *testing.T) {
	w, _ := allocWorkload(t)
	engine := NewEngine(w.Program, Config{Mode: ModeForwardBackward})
	m := engine.met
	if m.threads != nil || m.sampled != nil || m.iterations != nil || m.recycles != nil {
		t.Fatal("engine without telemetry must hold nil metric handles")
	}
	st := Stats{Sampled: 10, Forward: 20, Backward: 5, PathSteps: 100, MemSteps: 40, Iterations: 2}
	if avg := testing.AllocsPerRun(100, func() {
		m.recycles.Inc()
		m.publish(&st)
	}); avg != 0 {
		t.Errorf("disabled-telemetry instrumentation: %.1f allocs/run, want 0", avg)
	}
}

// TestReconstructTelemetryMatchesStats cross-checks the published series
// against the returned Stats — the registry is a second read path for the
// same deterministic values, so they must agree exactly.
func TestReconstructTelemetryMatchesStats(t *testing.T) {
	w, tts := allocWorkload(t)
	reg := telemetry.New()
	engine := NewEngine(w.Program, Config{Mode: ModeForwardBackward, Telemetry: reg})
	_, st := engine.ReconstructAll(tts)
	s := reg.Snapshot()
	checks := []struct {
		name string
		want int
	}{
		{"prorace_replay_threads_total", len(tts)},
		{"prorace_replay_accesses_sampled_total", st.Sampled},
		{"prorace_replay_accesses_forward_total", st.Forward},
		{"prorace_replay_accesses_backward_total", st.Backward},
		{"prorace_replay_accesses_bb_total", st.BasicBlock},
		{"prorace_replay_path_steps_total", st.PathSteps},
		{"prorace_replay_mem_steps_total", st.MemSteps},
		{"prorace_replay_invalid_hits_total", st.InvalidHits},
	}
	for _, c := range checks {
		if got := s.Counter(c.name); got != uint64(c.want) {
			t.Errorf("%s = %d, want %d", c.name, got, c.want)
		}
	}
	if got := s.Histograms["prorace_replay_iterations"].Count; got != uint64(len(tts)) {
		t.Errorf("iterations histogram count = %d, want one observation per thread (%d)", got, len(tts))
	}
}
