package replay

import (
	"testing"

	"prorace/internal/machine"
	"prorace/internal/pmu/driver"
	"prorace/internal/synthesis"
	"prorace/internal/workload"
)

// allocWorkload traces the blackscholes workload and synthesizes its
// per-thread paths — a fixed, deterministic input for allocation guards.
func allocWorkload(t *testing.T) (*workload.Workload, map[int32]*synthesis.ThreadTrace) {
	t.Helper()
	w := workload.PARSEC(1)[0]
	mcfg := w.Machine
	mcfg.Seed = 3
	mac := machine.New(w.Program, mcfg)
	d := driver.New(mac, driver.Options{Kind: driver.ProRace, Period: 1000, Seed: 3, EnablePT: true})
	mac.SetTracer(d)
	if _, err := mac.Run(); err != nil {
		t.Fatal(err)
	}
	tts, err := synthesis.Synthesize(w.Program, d.Finish())
	if err != nil {
		t.Fatal(err)
	}
	return &w, tts
}

// TestReconstructAllSteadyStateAllocs pins the allocation budget of warm
// reconstruction. With pooled path states, the dense per-step tables and
// the learned-fact arena, a steady-state ReconstructAll allocates only the
// result map and access slices — a handful of allocations for thousands of
// accesses. The bound is ~20× above the measured value (7) but ~900× under
// the pre-pooling cost (12k+), so it flags a real regression without being
// flaky across runtime versions.
func TestReconstructAllSteadyStateAllocs(t *testing.T) {
	w, tts := allocWorkload(t)
	engine := NewEngine(w.Program, Config{Mode: ModeForwardBackward})
	// Warm the state pool and count the accesses the budget amortises.
	accs, st := engine.ReconstructAll(tts)
	if st.Total() == 0 || len(accs) == 0 {
		t.Fatal("probe workload reconstructed nothing")
	}
	avg := testing.AllocsPerRun(5, func() { engine.ReconstructAll(tts) })
	const budget = 150
	if avg > budget {
		t.Errorf("steady-state ReconstructAll: %.1f allocs/run over %d accesses, budget %d",
			avg, st.Total(), budget)
	}
}
