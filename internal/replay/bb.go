package replay

import (
	"prorace/internal/isa"
	"prorace/internal/synthesis"
	"prorace/internal/tracefmt"
)

// reconstructBB is the RaceZ baseline (paper §2, §7.5): reconstruction is
// confined to the static basic block containing each sample. Forward, the
// sample's register file is propagated with availability tracking but no
// memory emulation across blocks; backward, only trivial backward
// propagation is supported — a register whose value was not redefined
// between an earlier instruction and the sample held the sampled value.
// No PT path is needed (RaceZ does not collect one).
func (e *Engine) reconstructBB(tt *synthesis.ThreadTrace) ([]Access, Stats) {
	var st Stats
	var out []Access
	// In BB mode samples may come either pinned (if a path existed) or
	// unpinned; both reconstruct identically from the static block.
	for i := range tt.Samples {
		out = append(out, e.bbForRecord(&tt.Samples[i].Rec, &st)...)
	}
	for i := range tt.UnpinnedSamples {
		out = append(out, e.bbForRecord(&tt.UnpinnedSamples[i], &st)...)
	}
	return out, st
}

// bbForRecord reconstructs around one sample inside its basic block.
func (e *Engine) bbForRecord(rec *tracefmt.PEBSRecord, st *Stats) []Access {
	blk, ok := e.p.BlockContaining(rec.IP)
	if !ok {
		return nil
	}
	sampleIdx, _ := isa.AddrToIndex(rec.IP)

	var out []Access
	emit := func(instIdx int, addr uint64, origin Origin) {
		in := e.p.Insts[instIdx]
		if !in.IsMemAccess() {
			return
		}
		// TSC estimate: one cycle per instruction around the sample.
		tsc := rec.TSC
		if d := instIdx - sampleIdx; d >= 0 {
			tsc += uint64(d)
		} else {
			du := uint64(-d)
			if du > tsc {
				du = tsc
			}
			tsc -= du
		}
		out = append(out, Access{
			TID:    rec.TID,
			PC:     isa.IndexToAddr(instIdx),
			Addr:   addr,
			Store:  in.IsStore(),
			TSC:    tsc,
			Step:   -1,
			Origin: origin,
		})
		if origin == OriginSampled {
			st.Sampled++
		} else {
			st.BasicBlock++
		}
	}

	emit(sampleIdx, rec.Addr, OriginSampled)

	// Forward within the block from the sample's post-state.
	rf := regFileFromSample(rec)
	for idx := sampleIdx + 1; idx < blk.End; idx++ {
		in := e.p.Insts[idx]
		switch in.Op {
		case isa.LOAD, isa.STORE, isa.LEA:
			addr, okAddr := addrOf(in, &rf, isa.IndexToAddr(idx))
			if okAddr {
				emit(idx, addr, OriginBB)
			}
			switch in.Op {
			case isa.LOAD:
				rf.clear(in.Rd) // no memory emulation in RaceZ mode
			case isa.LEA:
				if okAddr {
					rf.set(in.Rd, addr)
				} else {
					rf.clear(in.Rd)
				}
			}
		case isa.MOVI:
			rf.set(in.Rd, uint64(in.Imm))
		case isa.MOV:
			if rf.has(in.Rs) {
				rf.set(in.Rd, rf.get(in.Rs))
			} else {
				rf.clear(in.Rd)
			}
		case isa.ADD, isa.SUB, isa.MUL, isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR:
			if rf.has(in.Rd) && rf.has(in.Rs) {
				v, _ := in.ALU(rf.get(in.Rd), rf.get(in.Rs))
				rf.set(in.Rd, v)
			} else {
				rf.clear(in.Rd)
			}
		case isa.ADDI, isa.SUBI, isa.MULI, isa.ANDI, isa.ORI, isa.XORI, isa.SHLI, isa.SHRI:
			if rf.has(in.Rd) {
				v, _ := in.ALU(rf.get(in.Rd), 0)
				rf.set(in.Rd, v)
			} else {
				rf.clear(in.Rd)
			}
		case isa.SYSCALL:
			rf.clear(isa.R0)
		}
	}

	// Trivial backward propagation: walking backwards, a register is known
	// as long as no instruction between it and the sample redefines it.
	// (The sampled values are post-state; un-define the sampled
	// instruction's own defs first.)
	rb := regFileFromSample(rec)
	var regBuf [2]isa.Reg
	for _, d := range e.p.Insts[sampleIdx].AppendDefs(regBuf[:0]) {
		rb.clear(d)
	}
	for idx := sampleIdx - 1; idx >= blk.Start; idx-- {
		in := e.p.Insts[idx]
		// The instruction's defs were overwritten after this point: their
		// pre-state is unknown (RaceZ has no reverse execution).
		for _, d := range in.AppendDefs(regBuf[:0]) {
			rb.clear(d)
		}
		if in.IsMemAccess() {
			if addr, okAddr := addrOf(in, &rb, isa.IndexToAddr(idx)); okAddr {
				emit(idx, addr, OriginBB)
			}
		}
	}
	return out
}
