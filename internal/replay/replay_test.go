package replay

import (
	"testing"

	"prorace/internal/asm"
	"prorace/internal/isa"
	"prorace/internal/machine"
	"prorace/internal/pmu/driver"
	"prorace/internal/prog"
	"prorace/internal/synthesis"
)

// goldenAccess is the ground truth for one executed instruction.
type goldenAccess struct {
	pc    uint64
	addr  uint64
	isMem bool
}

// goldenTracer records, per thread, every executed instruction with its
// memory address — the truth the reconstruction must agree with.
type goldenTracer struct {
	inner machine.Tracer
	steps map[int32][]goldenAccess
}

func newGolden(inner machine.Tracer) *goldenTracer {
	return &goldenTracer{inner: inner, steps: map[int32][]goldenAccess{}}
}

func (g *goldenTracer) InstRetired(ev *machine.InstEvent) uint64 {
	tid := int32(ev.TID)
	if ev.Inst.Op == isa.SYSCALL {
		if l := g.steps[tid]; len(l) > 0 && l[len(l)-1].pc == ev.PC {
			return g.inner.InstRetired(ev) // blocked-syscall retry
		}
	}
	g.steps[tid] = append(g.steps[tid], goldenAccess{pc: ev.PC, addr: ev.MemAddr, isMem: ev.IsMem})
	return g.inner.InstRetired(ev)
}
func (g *goldenTracer) SyscallRetired(ev *machine.SyscallEvent) uint64 {
	return g.inner.SyscallRetired(ev)
}
func (g *goldenTracer) ThreadStarted(tid machine.TID, tsc uint64) { g.inner.ThreadStarted(tid, tsc) }
func (g *goldenTracer) ThreadExited(tid machine.TID, tsc uint64)  { g.inner.ThreadExited(tid, tsc) }

// traceProgram runs p under the ProRace driver and returns golden steps and
// the synthesised per-thread traces.
func traceProgram(t *testing.T, p *prog.Program, period uint64, seed int64) (*goldenTracer, map[int32]*synthesis.ThreadTrace) {
	t.Helper()
	mac := machine.New(p, machine.Config{Seed: seed})
	d := driver.New(mac, driver.Options{Kind: driver.ProRace, Period: period, Seed: seed, EnablePT: true})
	g := newGolden(d)
	mac.SetTracer(g)
	if _, err := mac.Run(); err != nil {
		t.Fatal(err)
	}
	tts, err := synthesis.Synthesize(p, d.Finish())
	if err != nil {
		t.Fatal(err)
	}
	return g, tts
}

// checkSound verifies every path-pinned access against the golden trace.
func checkSound(t *testing.T, g *goldenTracer, accesses map[int32][]Access) {
	t.Helper()
	for tid, accs := range accesses {
		golden := g.steps[tid]
		for _, a := range accs {
			if a.Step < 0 {
				continue // unpinned BB reconstructions are checked elsewhere
			}
			if a.Step >= len(golden) {
				t.Fatalf("tid %d: access step %d beyond golden length %d", tid, a.Step, len(golden))
			}
			want := golden[a.Step]
			if want.pc != a.PC {
				t.Fatalf("tid %d step %d: pc %#x, golden %#x", tid, a.Step, a.PC, want.pc)
			}
			if !want.isMem {
				t.Fatalf("tid %d step %d: recovered non-memory instruction", tid, a.Step)
			}
			if want.addr != a.Addr {
				t.Fatalf("tid %d step %d (%v, origin %d): addr %#x, golden %#x",
					tid, a.Step, a.PC, a.Origin, a.Addr, want.addr)
			}
		}
	}
}

// arrayWorkload: race-free workload with register-indirect addressing:
// each worker walks a private slice of a shared array.
func arrayWorkload() *prog.Program {
	b := asm.New("arr")
	b.Global("arrays", 2048)
	m := b.Func("main")
	for i := int64(0); i < 2; i++ {
		m.MovI(isa.R4, i)
		m.SpawnThread("worker", isa.R4)
		m.Mov(isa.Reg(8+i), isa.R0)
	}
	for i := int64(0); i < 2; i++ {
		m.Join(isa.Reg(8 + i))
	}
	m.Exit(0)
	w := b.Func("worker")
	w.Mov(isa.R7, isa.R0)
	w.MulI(isa.R7, 1024)
	w.Lea(isa.R6, asm.Global("arrays", 0))
	w.Add(isa.R6, isa.R7)
	w.MovI(isa.R3, 300)
	w.MovI(isa.R2, 0)
	w.Label("loop")
	w.Load(isa.R1, asm.BaseIndex(isa.R6, isa.R2, 8, 0))
	w.AddI(isa.R1, 1)
	w.Store(asm.BaseIndex(isa.R6, isa.R2, 8, 0), isa.R1)
	w.AddI(isa.R2, 1)
	w.AndI(isa.R2, 127)
	w.SubI(isa.R3, 1)
	w.CmpI(isa.R3, 0)
	w.Jgt("loop")
	w.Exit(0)
	return mustBuild(b)
}

func TestForwardReplayIsSoundAndRecovers(t *testing.T) {
	p := arrayWorkload()
	g, tts := traceProgram(t, p, 100, 3)
	e := NewEngine(p, Config{Mode: ModeForward})
	accesses, st := e.ReconstructAll(tts)
	checkSound(t, g, accesses)
	if st.Sampled == 0 {
		t.Fatal("no sampled accesses")
	}
	if st.Forward == 0 {
		t.Fatal("forward replay recovered nothing")
	}
	ratio := st.RecoveryRatio()
	if ratio < 3 {
		t.Errorf("forward recovery ratio = %.1fx, expected substantial recovery", ratio)
	}
	t.Logf("forward: sampled %d, recovered %d, ratio %.1fx of %d mem steps",
		st.Sampled, st.Forward, ratio, st.MemSteps)
}

func TestForwardBackwardRecoversMoreAndStaysSound(t *testing.T) {
	p := arrayWorkload()
	g, tts := traceProgram(t, p, 100, 3)
	fwd := NewEngine(p, Config{Mode: ModeForward})
	_, stF := fwd.ReconstructAll(tts)
	fb := NewEngine(p, Config{Mode: ModeForwardBackward})
	accesses, stFB := fb.ReconstructAll(tts)
	checkSound(t, g, accesses)
	if stFB.Total() < stF.Total() {
		t.Errorf("forward+backward (%d) recovered fewer than forward (%d)", stFB.Total(), stF.Total())
	}
	if stFB.Backward == 0 {
		t.Error("backward replay contributed nothing on a register-indirect workload")
	}
	t.Logf("fb: sampled %d fwd %d bwd %d (ratio %.1fx) vs fwd-only %.1fx",
		stFB.Sampled, stFB.Forward, stFB.Backward, stFB.RecoveryRatio(), stF.RecoveryRatio())
}

// pcRelWorkload touches globals only through PC-relative operands.
func pcRelWorkload() *prog.Program {
	b := asm.New("pcrel")
	b.Global("flag", 8)
	b.Global("out", 8)
	m := b.Func("main")
	m.MovI(isa.R3, 200)
	m.Label("loop")
	m.Load(isa.R1, asm.Global("flag", 0))
	m.AddI(isa.R1, 1)
	m.Store(asm.Global("flag", 0), isa.R1)
	m.SubI(isa.R3, 1)
	m.CmpI(isa.R3, 0)
	m.Jgt("loop")
	m.Exit(0)
	return mustBuild(b)
}

func TestPCRelRecoveredWithoutAnySamples(t *testing.T) {
	p := pcRelWorkload()
	// Period far larger than the run's memory events: zero samples.
	g, tts := traceProgram(t, p, 10_000_000, 3)
	if len(tts[0].Samples) != 0 || len(tts[0].UnpinnedSamples) != 0 {
		t.Fatalf("expected zero samples, got %d", len(tts[0].Samples))
	}
	e := NewEngine(p, Config{Mode: ModeForwardBackward})
	accesses, st := e.ReconstructAll(tts)
	checkSound(t, g, accesses)
	// All 400 PC-relative accesses are recoverable from the path alone —
	// the property behind Table 2's 100% rows for pfscan/aget/pbzip2(9.4.1).
	if st.Forward < 400 {
		t.Errorf("recovered %d PC-relative accesses, want >= 400", st.Forward)
	}
	if st.Sampled != 0 {
		t.Errorf("sampled = %d with an impossible period", st.Sampled)
	}
}

// fig5Workload mirrors the paper's Figure 5: a pointer is loaded from
// memory (value unavailable to forward replay) and dereferenced; the
// pointer register survives to the next sample, so backward propagation
// recovers the dereference.
func fig5Workload() *prog.Program {
	b := asm.New("fig5")
	// The pointer table is initialised statically in the data segment:
	// its contents are *not* visible to the offline replay (the program
	// map starts with all memory unavailable), exactly like pointers set
	// up long before tracing started.
	words := make([]uint64, 32)
	for i := range words {
		words[i] = isa.DataBase // self-referencing: &table
	}
	b.GlobalWords("table", words) // first global: placed at DataBase
	b.Global("out", 8)
	m := b.Func("main")
	m.Lea(isa.R1, asm.Global("table", 0))
	// Hot loop: load pointer from table (memory-indirect), dereference it,
	// stash it in a callee-saved register that stays live.
	m.MovI(isa.R3, 400)
	m.MovI(isa.R2, 0)
	m.Label("loop")
	m.Load(isa.R5, asm.BaseIndex(isa.R1, isa.R2, 8, 0)) // rsi <- mem (like line 2 of Fig 5)
	m.Load(isa.R6, asm.Base(isa.R5, 8))                 // deref (like line 3)
	m.Store(asm.Global("out", 0), isa.R6)
	m.AddI(isa.R2, 1)
	m.AndI(isa.R2, 31)
	m.SubI(isa.R3, 1)
	m.CmpI(isa.R3, 0)
	m.Jgt("loop")
	m.Exit(0)
	return mustBuild(b)
}

func TestBackwardRecoversFig5Dereference(t *testing.T) {
	p := fig5Workload()
	derefPC := uint64(0)
	for i, in := range p.Insts {
		if in.Op == isa.LOAD && in.Mode == isa.ModeBase && in.Base == isa.R5 {
			derefPC = isa.IndexToAddr(i)
		}
	}
	if derefPC == 0 {
		t.Fatal("deref instruction not found")
	}
	// Sample placement depends on the seed; aggregate a few runs so the
	// property (backward strictly extends forward) is robust.
	totFwd, totFB, totBwdOrigin := 0, 0, 0
	for seed := int64(1); seed <= 4; seed++ {
		g, tts := traceProgram(t, p, 97, seed)
		count := func(mode Mode) (int, Stats) {
			e := NewEngine(p, Config{Mode: mode})
			accesses, st := e.ReconstructAll(tts)
			checkSound(t, g, accesses)
			n := 0
			for _, a := range accesses[0] {
				if a.PC == derefPC && a.Origin != OriginSampled {
					n++
				}
			}
			return n, st
		}
		nFwd, _ := count(ModeForward)
		nFB, st := count(ModeForwardBackward)
		totFwd += nFwd
		totFB += nFB
		totBwdOrigin += st.Backward
	}
	if totFB <= totFwd {
		t.Errorf("backward replay recovered %d derefs vs forward's %d; expected more", totFB, totFwd)
	}
	if totBwdOrigin == 0 {
		t.Error("no backward-origin accesses across seeds")
	}
	t.Logf("deref recoveries over 4 seeds: forward %d, forward+backward %d", totFwd, totFB)
}

// chainWorkload: a known pointer is stored to memory, reloaded, and
// dereferenced — recoverable only with memory emulation.
func chainWorkload(withSyscall bool) *prog.Program {
	b := asm.New("chain")
	b.Global("slot", 8)
	b.Global("buf", 64)
	b.Global("out", 8)
	m := b.Func("main")
	m.MovI(isa.R3, 120)
	m.Label("loop")
	m.Lea(isa.R4, asm.Global("buf", 0))
	m.Store(asm.Global("slot", 0), isa.R4) // slot <- &buf (known value)
	if withSyscall {
		m.Syscall(isa.SysYield) // invalidates emulated memory
	}
	m.Load(isa.R5, asm.Global("slot", 0)) // reload pointer
	m.Store(asm.Base(isa.R5, 8), isa.R3)  // deref: needs emulated memory
	m.SubI(isa.R3, 1)
	m.CmpI(isa.R3, 0)
	m.Jgt("loop")
	m.Exit(0)
	return mustBuild(b)
}

func derefRecoveries(t *testing.T, p *prog.Program, e *Engine, tts map[int32]*synthesis.ThreadTrace, g *goldenTracer) int {
	t.Helper()
	accesses, _ := e.ReconstructAll(tts)
	checkSound(t, g, accesses)
	var derefPC uint64
	for i, in := range p.Insts {
		if in.Op == isa.STORE && in.Mode == isa.ModeBase && in.Base == isa.R5 {
			derefPC = isa.IndexToAddr(i)
		}
	}
	n := 0
	for _, a := range accesses[0] {
		if a.PC == derefPC && a.Origin != OriginSampled {
			n++
		}
	}
	return n
}

func TestMemoryEmulationEnablesPointerChains(t *testing.T) {
	p := chainWorkload(false)
	g, tts := traceProgram(t, p, 10_000_000, 5) // no samples: pure path replay
	e := NewEngine(p, Config{Mode: ModeForwardBackward})
	withMem := derefRecoveries(t, p, e, tts, g)
	withoutMem := derefRecoveries(t, p, e.DisableMemoryEmulation(), tts, g)
	if withMem == 0 {
		t.Error("memory emulation recovered no pointer-chain derefs")
	}
	if withoutMem >= withMem {
		t.Errorf("disabling memory emulation did not reduce recoveries: %d vs %d", withoutMem, withMem)
	}
}

func TestSyscallInvalidatesEmulatedMemory(t *testing.T) {
	pClean := chainWorkload(false)
	gC, ttsC := traceProgram(t, pClean, 10_000_000, 5)
	clean := derefRecoveries(t, pClean, NewEngine(pClean, Config{Mode: ModeForwardBackward}), ttsC, gC)

	pSys := chainWorkload(true)
	gS, ttsS := traceProgram(t, pSys, 10_000_000, 5)
	sys := derefRecoveries(t, pSys, NewEngine(pSys, Config{Mode: ModeForwardBackward}), ttsS, gS)
	if sys >= clean {
		t.Errorf("syscall between store and load must reduce recoveries: %d vs %d", sys, clean)
	}
}

// heapWorkload allocates with malloc and writes through the result.
func heapWorkload() *prog.Program {
	b := asm.New("heap")
	m := b.Func("main")
	m.MovI(isa.R0, 256)
	m.Syscall(isa.SysMalloc)
	m.Mov(isa.R9, isa.R0)
	m.MovI(isa.R3, 150)
	m.MovI(isa.R2, 0)
	m.Label("loop")
	m.Store(asm.BaseIndex(isa.R9, isa.R2, 8, 0), isa.R3)
	m.AddI(isa.R2, 1)
	m.AndI(isa.R2, 31)
	m.SubI(isa.R3, 1)
	m.CmpI(isa.R3, 0)
	m.Jgt("loop")
	m.Exit(0)
	return mustBuild(b)
}

func TestMallocResultRestoredFromSyncLog(t *testing.T) {
	p := heapWorkload()
	g, tts := traceProgram(t, p, 10_000_000, 5) // no samples at all
	e := NewEngine(p, Config{Mode: ModeForwardBackward})
	accesses, st := e.ReconstructAll(tts)
	checkSound(t, g, accesses)
	// Every heap store flows from the malloc result recorded in the sync
	// log: all 150 must be recovered with zero samples.
	if st.Forward < 150 {
		t.Errorf("recovered %d heap stores from the sync log, want >= 150", st.Forward)
	}
}

func TestBBModeConfinedToBlock(t *testing.T) {
	p := arrayWorkload()
	g, tts := traceProgram(t, p, 100, 3)
	bb := NewEngine(p, Config{Mode: ModeBasicBlock})
	accesses, stBB := bb.ReconstructAll(tts)
	_ = g
	if stBB.Sampled == 0 {
		t.Fatal("BB mode lost the samples")
	}
	// Every BB access must lie in the same static block as some sample.
	for tid, accs := range accesses {
		for _, a := range accs {
			if a.Step != -1 {
				t.Fatalf("BB access pinned to a path step")
			}
			blk, ok := p.BlockContaining(a.PC)
			if !ok {
				t.Fatalf("tid %d: access outside text", tid)
			}
			found := false
			for _, s := range tts[tid].Samples {
				if blk.Contains(s.Rec.IP) {
					found = true
					break
				}
			}
			for _, r := range tts[tid].UnpinnedSamples {
				if blk.Contains(r.IP) {
					found = true
				}
			}
			if !found {
				t.Fatalf("tid %d: BB access at %#x outside any sampled block", tid, a.PC)
			}
		}
	}
	fb := NewEngine(p, Config{Mode: ModeForwardBackward})
	_, stFB := fb.ReconstructAll(tts)
	if stBB.Total() >= stFB.Total() {
		t.Errorf("BB mode (%d) must recover less than forward+backward (%d)", stBB.Total(), stFB.Total())
	}
	t.Logf("ratios: bb %.1fx fb %.1fx", stBB.RecoveryRatio(), stFB.RecoveryRatio())
}

func TestInvalidAddrFeedbackSuppressesEmulation(t *testing.T) {
	p := chainWorkload(false)
	g, tts := traceProgram(t, p, 10_000_000, 5)
	slot := p.MustLookup("slot").Addr
	e := NewEngine(p, Config{Mode: ModeForwardBackward, InvalidAddrs: map[uint64]bool{slot: true}})
	n := derefRecoveries(t, p, e, tts, g)
	eFree := NewEngine(p, Config{Mode: ModeForwardBackward})
	nFree := derefRecoveries(t, p, eFree, tts, g)
	if n >= nFree {
		t.Errorf("invalidating the racy slot must reduce recoveries: %d vs %d", n, nFree)
	}
}

func TestModeStrings(t *testing.T) {
	if ModeBasicBlock.String() == "" || ModeForward.String() == "" ||
		ModeForwardBackward.String() == "" || Mode(9).String() != "mode?" {
		t.Error("mode names wrong")
	}
}

func TestStatsRatio(t *testing.T) {
	s := Stats{Sampled: 10, Forward: 30, Backward: 20}
	if s.Total() != 60 {
		t.Error("total wrong")
	}
	if s.RecoveryRatio() != 6 {
		t.Errorf("ratio = %v", s.RecoveryRatio())
	}
	if (Stats{}).RecoveryRatio() != 0 {
		t.Error("zero samples must yield ratio 0")
	}
}

func TestStatsMergeCoversEveryField(t *testing.T) {
	a := Stats{Sampled: 1, Forward: 2, Backward: 3, BasicBlock: 4, PathSteps: 5, MemSteps: 6, Iterations: 2, InvalidHits: 7}
	b := Stats{Sampled: 10, Forward: 20, Backward: 30, BasicBlock: 40, PathSteps: 50, MemSteps: 60, Iterations: 1, InvalidHits: 70}
	a.Merge(b)
	want := Stats{Sampled: 11, Forward: 22, Backward: 33, BasicBlock: 44, PathSteps: 55, MemSteps: 66, Iterations: 2, InvalidHits: 77}
	if a != want {
		t.Fatalf("merge = %+v, want %+v", a, want)
	}
	// Iterations keeps the max, whichever side is larger.
	c := Stats{Iterations: 1}
	c.Merge(Stats{Iterations: 3})
	if c.Iterations != 3 {
		t.Fatalf("iterations = %d, want 3", c.Iterations)
	}
}

// mustBuild finalises a test program; the inputs are static, so a build
// error means the test itself is broken.
func mustBuild(b *asm.Builder) *prog.Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
