// External test package: the race-freedom test runs the full pipeline
// through internal/core, which (via the witness layer) imports this
// package — an in-package test file would form an import cycle.
package workload_test

import (
	"testing"

	"prorace/internal/core"
	"prorace/internal/machine"
	"prorace/internal/pmu/driver"
	"prorace/internal/workload"
)

func TestAllWorkloadsBuildAndValidate(t *testing.T) {
	ws := workload.All(1)
	if len(ws) != 13+8 {
		t.Fatalf("workloads = %d, want 21", len(ws))
	}
	seen := map[string]bool{}
	for _, w := range ws {
		if seen[w.Name] {
			t.Errorf("duplicate workload %q", w.Name)
		}
		seen[w.Name] = true
		if err := w.Program.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
		if w.Threads <= 0 {
			t.Errorf("%s: threads = %d", w.Name, w.Threads)
		}
	}
}

func TestAllWorkloadsRunToCompletion(t *testing.T) {
	for _, w := range workload.All(1) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			cfg := w.Machine
			cfg.Seed = 42
			m := machine.New(w.Program, cfg)
			st, err := m.Run()
			if err != nil {
				t.Fatalf("%s: %v", w.Name, err)
			}
			if st.Threads != w.Threads+1 {
				t.Errorf("%s: %d threads ran, want %d workers + main", w.Name, st.Threads, w.Threads)
			}
			if st.Retired == 0 || st.MemOps == 0 || st.SyncOps == 0 {
				t.Errorf("%s: implausible stats %+v", w.Name, st)
			}
		})
	}
}

func TestTable1ThreadCounts(t *testing.T) {
	// Table 1 of the paper.
	want := map[string]int{
		"apache": 4, "cherokee": 38, "mysql": 20, "memcached": 5,
		"transmission": 4, "pfscan": 4, "pbzip2": 4, "aget": 4,
	}
	for _, w := range workload.RealApps(1) {
		if want[w.Name] != w.Threads {
			t.Errorf("%s: %d threads, want %d", w.Name, w.Threads, want[w.Name])
		}
	}
}

func TestWorkloadsAreRaceFree(t *testing.T) {
	// The base workloads must contain no data races: the bug reproducers
	// in internal/bugs are the only place races are planted. Detection
	// over a densely sampled trace must come back clean.
	for _, w := range []workload.Workload{
		workload.PARSEC(1)[0], workload.PARSEC(1)[2], workload.MySQL(1), workload.Pbzip2(1),
	} {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			res, err := core.Run(w.Program,
				core.TraceOptions{Kind: driver.ProRace, Period: 200, Seed: 7, EnablePT: true, Machine: w.Machine},
				core.AnalysisOptions{Mode: 2 /* forward+backward */})
			if err != nil {
				t.Fatal(err)
			}
			if n := len(res.AnalysisResult.Reports); n != 0 {
				for _, r := range res.AnalysisResult.Reports[:min(n, 5)] {
					t.Logf("  %s (%s / %s)", r.String(),
						w.Program.SymbolizeAddr(r.First.PC), w.Program.SymbolizeAddr(r.Second.PC))
				}
				t.Errorf("%s: %d races reported in a race-free workload", w.Name, n)
			}
		})
	}
}

func TestClassesAndNames(t *testing.T) {
	if workload.CPUBound.String() != "cpu" || workload.NetBound.String() != "net" ||
		workload.FileBound.String() != "file" || workload.Mixed.String() != "mixed" ||
		workload.Class(9).String() != "class?" {
		t.Error("class names wrong")
	}
	if _, err := workload.ByName("mysql", 1); err != nil {
		t.Error(err)
	}
	if _, err := workload.ByName("nosuch", 1); err == nil {
		t.Error("unknown workload must fail")
	}
	if len(workload.Names()) != 21 {
		t.Errorf("names = %d", len(workload.Names()))
	}
}

func TestScaleGrowsWork(t *testing.T) {
	w1 := workload.Apache(1)
	w2 := workload.Apache(3)
	run := func(w workload.Workload) uint64 {
		cfg := w.Machine
		cfg.Seed = 1
		m := machine.New(w.Program, cfg)
		st, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st.Retired
	}
	r1, r2 := run(w1), run(w2)
	if r2 < 2*r1 {
		t.Errorf("scale 3 retired %d vs scale 1 %d; scaling broken", r2, r1)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
