// Package workload provides the programs the evaluation runs: 13
// PARSEC-like CPU-bound kernels and models of the paper's eight real
// applications (Table 1), each built from a library of compute and I/O
// kernels with the instruction mix, thread count and I/O profile that
// drives its overhead and trace-size behaviour.
//
// These are synthetic stand-ins (see DESIGN.md §2): what matters for the
// paper's experiments is each workload's rate of retired loads/stores
// (PEBS events), branchiness (PT volume), synchronization rate, and
// CPU-vs-network-vs-file balance (overhead hiding). The workloads
// reproduce those properties; they do not parse HTTP.
package workload

import (
	"fmt"

	"prorace/internal/asm"
	"prorace/internal/machine"
	"prorace/internal/prog"
)

// Class captures what bounds a workload's wall-clock time.
type Class int

const (
	// CPUBound workloads saturate the cores (PARSEC, pbzip2).
	CPUBound Class = iota
	// NetBound workloads mostly wait on network I/O (apache, cherokee,
	// memcached, aget); tracing overhead hides under the waiting.
	NetBound
	// FileBound workloads contend on the file bus (transmission, pfscan),
	// which trace writes also use.
	FileBound
	// Mixed workloads have substantial CPU and I/O phases (mysql).
	Mixed
)

// String names the class.
func (c Class) String() string {
	switch c {
	case CPUBound:
		return "cpu"
	case NetBound:
		return "net"
	case FileBound:
		return "file"
	case Mixed:
		return "mixed"
	}
	return "class?"
}

// Workload is one runnable benchmark.
type Workload struct {
	// Name identifies the workload ("apache", "blackscholes", ...).
	Name string
	// Threads is the worker thread count (Table 1 for real applications).
	Threads int
	// Class describes its bound.
	Class Class
	// Program is the built binary.
	Program *prog.Program
	// Machine holds simulator parameters appropriate for the workload.
	Machine machine.Config
}

// Scale multiplies workload iteration counts. Scale 1 builds runs of
// roughly 0.5-2 million instructions — large enough that every sampling
// period of the paper's sweep takes samples, small enough to run hundreds
// of traces in a test suite.
type Scale int

// PARSEC returns the 13 CPU-bound kernels, 4 threads each, mirroring the
// paper's PARSEC suite with simlarge inputs on a quad-core machine.
func PARSEC(scale Scale) []Workload {
	if scale <= 0 {
		scale = 1
	}
	specs := []parsecSpec{
		{"blackscholes", mixCompute, 16},
		{"bodytrack", mixBalanced, 13},
		{"canneal", mixPointer, 12},
		{"dedup", mixBalanced, 15},
		{"facesim", mixStream, 13},
		{"ferret", mixPointer, 13},
		{"fluidanimate", mixStream, 16},
		{"freqmine", mixBalanced, 15},
		{"raytrace", mixCompute, 13},
		{"streamcluster", mixStream, 17},
		{"swaptions", mixCompute, 15},
		{"vips", mixBalanced, 13},
		{"x264", mixStream, 16},
	}
	out := make([]Workload, 0, len(specs))
	for _, s := range specs {
		out = append(out, buildParsec(s, scale))
	}
	return out
}

// RealApps returns the eight real-application models of Table 1.
func RealApps(scale Scale) []Workload {
	if scale <= 0 {
		scale = 1
	}
	return []Workload{
		Apache(scale),
		Cherokee(scale),
		MySQL(scale),
		Memcached(scale),
		Transmission(scale),
		Pfscan(scale),
		Pbzip2(scale),
		Aget(scale),
	}
}

// All returns every workload.
func All(scale Scale) []Workload {
	return append(PARSEC(scale), RealApps(scale)...)
}

// ByName finds a workload in All(scale).
func ByName(name string, scale Scale) (Workload, error) {
	for _, w := range All(scale) {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workload: unknown workload %q", name)
}

// Names lists all workload names.
func Names() []string {
	var out []string
	for _, w := range All(1) {
		out = append(out, w.Name)
	}
	return out
}

// mustBuild finalises one of this package's statically-defined programs.
// The builders here encode fixed workload sources, so a build error is a
// defect in the package itself (caught by its tests), not a runtime
// condition callers could handle — it is fatal rather than threaded
// through every constructor.
func mustBuild(b *asm.Builder) *prog.Program {
	p, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("workload: static program failed to build: %v", err))
	}
	return p
}
