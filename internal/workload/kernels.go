package workload

import (
	"prorace/internal/asm"
	"prorace/internal/isa"
)

// Kernel emitters. Each emits a callable function into the builder. The
// calling convention is R0 = iteration count, R1 = thread index; kernels
// may use R1..R7 as scratch; R8+ are preserved by convention (kernels do
// not touch them), so workers can keep loop state there across calls.
//
// Two properties of real compiled code are deliberately reproduced because
// the paper's reconstruction results depend on them:
//
//   - kernels reload their working-set base pointers from a per-thread
//     control block in memory at every call (as real code reloads from the
//     stack or heap objects). Offline, those loads are unavailable unless
//     recently emulated, so forward replay's reach past a sample is
//     bounded — recovery ratios stay finite (Figure 11);
//   - inner loops make periodic data-dependent address hops, ending
//     straight-line recoverable runs the way input-dependent access
//     patterns do.
//
// Workloads built from these kernels are race-free by construction: shared
// state is either read-only, partitioned per thread, or lock-protected.
// The bug reproducers in internal/bugs are where races are planted.

// ctrlBlockSym is the per-thread kernel control block: 32 bytes per thread
// holding {array offset, spill offset, hash offset, chase start index}.
const ctrlBlockSym = "kctrl"

// AddCtrlBlock reserves the control block for `threads` threads.
func AddCtrlBlock(b *asm.Builder, threads int) {
	b.Global(ctrlBlockSym, uint64(threads)*32)
}

// EmitCtrlInit writes the worker prologue that fills the calling thread's
// control block. R8 must hold the thread index; R5..R7 are clobbered.
func EmitCtrlInit(w *asm.FuncBuilder) {
	w.Mov(isa.R7, isa.R8)
	w.MulI(isa.R7, 32)
	w.Lea(isa.R6, asm.Global(ctrlBlockSym, 0))
	w.Add(isa.R6, isa.R7) // r6 = &kctrl[tid]
	w.Mov(isa.R5, isa.R8)
	w.MulI(isa.R5, 4096)
	w.Store(asm.Base(isa.R6, 0), isa.R5) // array region offset
	w.Mov(isa.R5, isa.R8)
	w.MulI(isa.R5, 8)
	w.Store(asm.Base(isa.R6, 8), isa.R5) // spill slot offset
	w.Mov(isa.R5, isa.R8)
	w.MulI(isa.R5, 2048)
	w.Store(asm.Base(isa.R6, 16), isa.R5) // hash region offset
	w.Store(asm.Base(isa.R6, 24), isa.R8) // chase start index
}

// emitCtrlLoad emits the kernel prologue loading one control-block field
// into rd, using R7 as scratch. R1 must hold the thread index.
func emitCtrlLoad(f *asm.FuncBuilder, rd isa.Reg, field int64) {
	f.Mov(isa.R7, isa.R1)
	f.MulI(isa.R7, 32)
	f.Lea(rd, asm.Global(ctrlBlockSym, 0))
	f.Add(rd, isa.R7)
	f.Load(rd, asm.Base(rd, field))
}

// EmitMainSpawnJoin writes the standard main: spawn `threads` workers of
// `workerFn` with the worker index as argument, join them all, exit.
func EmitMainSpawnJoin(b *asm.Builder, threads int, workerFn string) {
	m := b.Func("main")
	for i := 0; i < threads; i++ {
		m.MovI(isa.R4, int64(i))
		m.SpawnThread(workerFn, isa.R4)
		m.Store(asm.Global("tids", int64(i)*8), isa.R0)
	}
	for i := 0; i < threads; i++ {
		m.Load(isa.R0, asm.Global("tids", int64(i)*8))
		m.Syscall(isa.SysThreadJoin)
	}
	m.Exit(0)
	b.Global("tids", uint64(threads)*8)
}

// EmitStreamKernel emits a streaming read-modify-write walk over a
// per-thread slice of `arraySym`: high load/store density, register-
// indirect (base+index) addressing, with a data-dependent index hop every
// 16 iterations.
func EmitStreamKernel(b *asm.Builder, fname, arraySym string, elemMask int64) {
	f := b.Func(fname)
	// R0 = iterations, R1 = thread index.
	emitCtrlLoad(f, isa.R2, 0) // region offset, from memory
	f.Lea(isa.R7, asm.Global(arraySym, 0))
	f.Add(isa.R2, isa.R7) // region base
	f.MovI(isa.R3, 0)     // element index
	f.Label("loop")
	f.Load(isa.R4, asm.BaseIndex(isa.R2, isa.R3, 8, 0))
	f.AddI(isa.R4, 0x9E3779B9)
	f.Store(asm.BaseIndex(isa.R2, isa.R3, 8, 0), isa.R4)
	// Data-dependent hop every 16 iterations.
	f.Mov(isa.R5, isa.R0)
	f.AndI(isa.R5, 15)
	f.CmpI(isa.R5, 0)
	f.Jne("linear")
	f.Mov(isa.R5, isa.R4)
	f.AndI(isa.R5, 7)
	f.Add(isa.R3, isa.R5)
	f.Label("linear")
	f.AddI(isa.R3, 1)
	// Compare-based wraparound (a masking AND would destroy backward
	// replay's ability to invert the index chain; real loop bounds are
	// compares too). The hop adds at most 8, so the index never exceeds
	// elemMask+8 before the reset catches it.
	f.CmpI(isa.R3, elemMask)
	f.Jle("inbounds")
	f.MovI(isa.R3, 0)
	f.Label("inbounds")
	f.SubI(isa.R0, 1)
	f.CmpI(isa.R0, 0)
	f.Jgt("loop")
	f.Ret()
}

// EmitComputeKernel emits an arithmetic-heavy loop with a rare spill to a
// per-thread slot whose address comes from the control block: low memory
// density, the blackscholes/swaptions profile.
func EmitComputeKernel(b *asm.Builder, fname, spillSym string) {
	f := b.Func(fname)
	// R0 = iterations, R1 = thread index.
	emitCtrlLoad(f, isa.R6, 8) // spill offset, from memory
	f.Lea(isa.R7, asm.Global(spillSym, 0))
	f.Add(isa.R6, isa.R7) // spill address
	f.MovI(isa.R2, 0x243F6A88)
	f.MovI(isa.R3, 0x85A308D3)
	f.Label("loop")
	f.Mov(isa.R4, isa.R2)
	f.Mul(isa.R4, isa.R3)
	f.XorI(isa.R4, 0x13198A2E)
	f.ShrI(isa.R4, 7)
	f.Add(isa.R2, isa.R4)
	f.Mov(isa.R5, isa.R2)
	f.AndI(isa.R5, 15)
	f.CmpI(isa.R5, 0)
	f.Jne("nospill")
	f.Store(asm.Base(isa.R6, 0), isa.R2) // one store per ~16 iterations
	f.Label("nospill")
	f.SubI(isa.R0, 1)
	f.CmpI(isa.R0, 0)
	f.Jgt("loop")
	f.Ret()
}

// EmitPointerChaseKernel emits a memory-indirect walk: each step loads the
// next node pointer from memory and dereferences it — the canneal/ferret
// profile and the access pattern that defeats forward-only replay. The
// node table must be a statically initialised ring (see AddPointerRing).
func EmitPointerChaseKernel(b *asm.Builder, fname, tableSym string, nodes int64) {
	f := b.Func(fname)
	// R0 = iterations, R1 = thread index.
	emitCtrlLoad(f, isa.R3, 24) // start index, from memory
	f.AndI(isa.R3, nodes-1)
	f.Lea(isa.R2, asm.Global(tableSym, 0))
	f.Label("loop")
	f.Mov(isa.R6, isa.R3)
	f.ShlI(isa.R6, 4)                                   // 16-byte nodes
	f.Load(isa.R4, asm.BaseIndex(isa.R2, isa.R6, 1, 0)) // node.next (pointer from memory)
	f.Load(isa.R5, asm.Base(isa.R4, 8))                 // node.next.value (memory-indirect)
	f.AddI(isa.R5, 1)
	f.Store(asm.Base(isa.R4, 8), isa.R5) // racy only if threads share nodes; indices partition it
	// Stride 64 partitions the ring into 64 residue classes: threads (all
	// workloads use < 64) start at their own index, so reads stay in class
	// tid and writes in class tid+1 — disjoint across threads.
	f.AddI(isa.R3, 64)
	f.AndI(isa.R3, nodes-1)
	f.SubI(isa.R0, 1)
	f.CmpI(isa.R0, 0)
	f.Jgt("loop")
	f.Ret()
}

// AddPointerRing places a statically initialised node table for
// EmitPointerChaseKernel: nodes of 16 bytes {next *node, value uint64},
// where node[i].next = &node[i+1 mod n]. Being data-segment constants, the
// pointers are invisible to offline replay — like any pointer structure
// built before tracing began.
func AddPointerRing(b *asm.Builder, tableSym string, nodes int64) {
	base := b.NextDataAddr()
	words := make([]uint64, nodes*2)
	for i := int64(0); i < nodes; i++ {
		next := (i + 1) & (nodes - 1)
		words[i*2] = base + uint64(next*16)
		words[i*2+1] = uint64(i)
	}
	b.GlobalWords(tableSym, words)
}

// EmitLockedCounterKernel emits a lock-protected shared counter update —
// the synchronization heartbeat that exercises the sync tracer.
func EmitLockedCounterKernel(b *asm.Builder, fname, lockSym, counterSym string) {
	f := b.Func(fname)
	// R0 = iterations.
	f.Mov(isa.R7, isa.R0)
	f.Label("loop")
	f.Lock(lockSym)
	f.Load(isa.R1, asm.Global(counterSym, 0))
	f.AddI(isa.R1, 1)
	f.Store(asm.Global(counterSym, 0), isa.R1)
	f.Unlock(lockSym)
	f.SubI(isa.R7, 1)
	f.CmpI(isa.R7, 0)
	f.Jgt("loop")
	f.Ret()
}

// EmitHashTableKernel emits memcached-style operations: hash a key, probe
// a table slot (register-indirect), update it. The hash state absorbs a
// loaded value every 8th operation, so probe addresses are data-dependent.
func EmitHashTableKernel(b *asm.Builder, fname, tableSym string, slotMask int64) {
	f := b.Func(fname)
	// R0 = iterations, R1 = thread index.
	emitCtrlLoad(f, isa.R2, 16) // region offset, from memory
	f.Lea(isa.R7, asm.Global(tableSym, 0))
	f.Add(isa.R2, isa.R7)
	f.MovI(isa.R3, 0xCBF29CE484222325>>32)
	f.Label("loop")
	f.Mov(isa.R4, isa.R0)
	f.MulI(isa.R4, 0x100000001B3)
	f.Xor(isa.R4, isa.R3)
	f.Mov(isa.R5, isa.R4)
	f.ShrI(isa.R5, 4)
	f.AndI(isa.R5, slotMask)
	f.Load(isa.R6, asm.BaseIndex(isa.R2, isa.R5, 8, 0))
	f.Add(isa.R6, isa.R4)
	f.Store(asm.BaseIndex(isa.R2, isa.R5, 8, 0), isa.R6)
	f.Mov(isa.R5, isa.R0)
	f.AndI(isa.R5, 7)
	f.CmpI(isa.R5, 0)
	f.Jne("nomix")
	f.Xor(isa.R3, isa.R6)
	f.Label("nomix")
	f.SubI(isa.R0, 1)
	f.CmpI(isa.R0, 0)
	f.Jgt("loop")
	f.Ret()
}
