package workload

import (
	"prorace/internal/asm"
	"prorace/internal/isa"
	"prorace/internal/machine"
)

// ServerSpec describes a real-application model as a per-request recipe:
// network receive → CPU kernels over per-thread state → synchronized
// bookkeeping → log/file traffic → network send. The profiles reproduce
// Table 1's setups and the I/O balance that gives Figure 7 its two
// regimes (network-bound apps hide tracing; CPU/file-bound ones do not).
type ServerSpec struct {
	Name    string
	Threads int
	Class   Class
	// Requests per worker at scale 1.
	Requests int64
	// Network bytes per request (0 disables the call).
	RecvBytes, SendBytes int64
	// Kernel iterations per request.
	Stream, Compute, Chase, Hash int64
	// Locked shared-counter updates per request.
	Ticks int64
	// Application log bytes per request.
	LogBytes int64
	// File I/O bytes per request.
	FileBytes int64
}

// InjectHooks lets the bug reproducers (internal/bugs) plant code into an
// application model: globals and helper functions via Setup, main-thread
// initialisation via MainPrologue, and per-request code via PerRequest.
// The worker's thread index is in R8 and its remaining-request counter in
// R11 when PerRequest runs; R8..R12 must be preserved.
type InjectHooks struct {
	Setup        func(b *asm.Builder)
	MainPrologue func(m *asm.FuncBuilder)
	PerRequest   func(w *asm.FuncBuilder)
}

// Apache models the apache web server: 4 threads serving 128 KB files to
// 8 clients (Table 1) — network-send dominated, light CPU, access logging.
func Apache(scale Scale) Workload { return BuildServer(ApacheSpec(), scale, nil) }

// ApacheSpec returns apache's model parameters.
func ApacheSpec() ServerSpec {
	return ServerSpec{
		Name: "apache", Threads: 4, Class: NetBound, Requests: 30,
		RecvBytes: 512, SendBytes: 131072,
		Stream: 160, Compute: 80, Ticks: 1, LogBytes: 96,
	}
}

// Cherokee models the cherokee web server: 38 threads (Table 1), the same
// serving profile as apache at higher concurrency.
func Cherokee(scale Scale) Workload { return BuildServer(CherokeeSpec(), scale, nil) }

// CherokeeSpec returns cherokee's model parameters.
func CherokeeSpec() ServerSpec {
	return ServerSpec{
		Name: "cherokee", Threads: 38, Class: NetBound, Requests: 6,
		RecvBytes: 512, SendBytes: 131072,
		Stream: 128, Compute: 64, Ticks: 1, LogBytes: 96,
	}
}

// MySQL models the mysql database server: 20 threads, SysBench OLTP over
// 10 M records (Table 1) — index walks (pointer chasing), record streaming,
// lock-contended bookkeeping, binlog file writes. CPU-heavy: 20 workers on
// 4 cores cannot hide tracing.
func MySQL(scale Scale) Workload { return BuildServer(MySQLSpec(), scale, nil) }

// MySQLSpec returns mysql's model parameters.
func MySQLSpec() ServerSpec {
	return ServerSpec{
		Name: "mysql", Threads: 20, Class: Mixed, Requests: 12,
		RecvBytes: 128, SendBytes: 1024,
		Stream: 360, Compute: 160, Chase: 480, Hash: 160, Ticks: 1,
		FileBytes: 256,
	}
}

// Memcached models memcached under YCSB (Table 1): 5 threads, hash-table
// gets/puts, small packets — network-bound.
func Memcached(scale Scale) Workload {
	return BuildServer(ServerSpec{
		Name: "memcached", Threads: 5, Class: NetBound, Requests: 60,
		RecvBytes: 128, SendBytes: 512,
		Hash: 120, Compute: 32, Ticks: 1,
	}, scale, nil)
}

// Transmission models the BitTorrent client on a 4.48 GB transfer
// (Table 1): piece download, checksum, piece write — file-bus heavy.
func Transmission(scale Scale) Workload {
	return BuildServer(ServerSpec{
		Name: "transmission", Threads: 4, Class: FileBound, Requests: 24,
		RecvBytes: 16384,
		Stream:    640, Compute: 160, Ticks: 1,
		FileBytes: 16384,
	}, scale, nil)
}

// Pfscan models the parallel file scanner over a 6.8 GB tree (Table 1):
// large reads and a dense scan loop — file plus CPU bound, the workload
// with the paper's worst trace-volume-to-runtime ratio.
func Pfscan(scale Scale) Workload { return BuildServer(PfscanSpec(), scale, nil) }

// PfscanSpec returns pfscan's model parameters.
func PfscanSpec() ServerSpec {
	return ServerSpec{
		Name: "pfscan", Threads: 4, Class: FileBound, Requests: 25,
		Stream: 2400, Compute: 120,
		FileBytes: 65536, Ticks: 1,
	}
}

// Pbzip2 models the parallel compressor on a 1 GB file (Table 1):
// block read, heavy compute, block write — CPU bound.
func Pbzip2(scale Scale) Workload { return BuildServer(Pbzip2Spec(), scale, nil) }

// Pbzip2Spec returns pbzip2's model parameters.
func Pbzip2Spec() ServerSpec {
	return ServerSpec{
		Name: "pbzip2", Threads: 4, Class: CPUBound, Requests: 15,
		Stream: 1600, Compute: 3200, Hash: 320, Ticks: 1,
		FileBytes: 8192,
	}
}

// Aget models the parallel downloader on a 2.1 GB file (Table 1): network
// chunks written straight to disk with a shared progress record.
func Aget(scale Scale) Workload { return BuildServer(AgetSpec(), scale, nil) }

// AgetSpec returns aget's model parameters.
func AgetSpec() ServerSpec {
	return ServerSpec{
		Name: "aget", Threads: 4, Class: NetBound, Requests: 25,
		RecvBytes: 32768,
		Compute:   64, Ticks: 2,
		FileBytes: 32768,
	}
}

// BuildServer assembles a server-model workload, optionally with injected
// bug code.
func BuildServer(s ServerSpec, scale Scale, hooks *InjectHooks) Workload {
	if scale <= 0 {
		scale = 1
	}
	b := asm.New(s.Name)
	if hooks != nil && hooks.Setup != nil {
		hooks.Setup(b)
	}
	AddPointerRing(b, "ring", 256)
	AddCtrlBlock(b, s.Threads)
	b.Global("array", uint64(s.Threads)*4096)
	b.Global("table", uint64(s.Threads)*2048)
	b.Global("spill", uint64(s.Threads)*8)
	b.Global("lk", 8)
	b.Global("stats", 8)
	b.Global("logbuf", 128)

	emitMain(b, s.Threads, "worker", hooks)
	if s.Stream > 0 {
		EmitStreamKernel(b, "stream", "array", 511)
	}
	if s.Compute > 0 {
		EmitComputeKernel(b, "compute", "spill")
	}
	if s.Chase > 0 {
		EmitPointerChaseKernel(b, "chase", "ring", 256)
	}
	if s.Hash > 0 {
		EmitHashTableKernel(b, "hash", "table", 255)
	}
	if s.Ticks > 0 {
		EmitLockedCounterKernel(b, "tick", "lk", "stats")
	}

	w := b.Func("worker")
	w.Mov(isa.R8, isa.R0) // thread index
	EmitCtrlInit(w)
	w.MovI(isa.R11, s.Requests*int64(scale))
	w.Label("request")

	if s.RecvBytes > 0 {
		w.NetIO(s.RecvBytes)
	}
	call := func(fn string, iters int64) {
		if iters <= 0 {
			return
		}
		w.MovI(isa.R0, iters)
		w.Mov(isa.R1, isa.R8)
		w.Call(fn)
	}
	call("chase", s.Chase)
	call("stream", s.Stream)
	if hooks != nil && hooks.PerRequest != nil {
		hooks.PerRequest(w)
	}
	call("hash", s.Hash)
	call("compute", s.Compute)
	if s.Ticks > 0 {
		w.MovI(isa.R0, s.Ticks)
		w.Call("tick")
	}
	if s.LogBytes > 0 {
		w.Lea(isa.R0, asm.Global("logbuf", 0))
		w.MovI(isa.R1, s.LogBytes)
		w.Syscall(isa.SysLog)
	}
	if s.FileBytes > 0 {
		w.FileIO(s.FileBytes)
	}
	if s.SendBytes > 0 {
		w.NetIO(s.SendBytes)
	}

	w.SubI(isa.R11, 1)
	w.CmpI(isa.R11, 0)
	w.Jgt("request")
	w.Exit(0)

	return Workload{
		Name:    s.Name,
		Threads: s.Threads,
		Class:   s.Class,
		Program: mustBuild(b),
		Machine: machine.Config{Cores: 4},
	}
}

// emitMain is EmitMainSpawnJoin with an optional prologue (run by the main
// thread before any worker starts — bug reproducers use it to allocate and
// publish shared objects).
func emitMain(b *asm.Builder, threads int, workerFn string, hooks *InjectHooks) {
	m := b.Func("main")
	if hooks != nil && hooks.MainPrologue != nil {
		hooks.MainPrologue(m)
	}
	for i := 0; i < threads; i++ {
		m.MovI(isa.R4, int64(i))
		m.SpawnThread(workerFn, isa.R4)
		m.Store(asm.Global("tids", int64(i)*8), isa.R0)
	}
	for i := 0; i < threads; i++ {
		m.Load(isa.R0, asm.Global("tids", int64(i)*8))
		m.Syscall(isa.SysThreadJoin)
	}
	m.Exit(0)
	b.Global("tids", uint64(threads)*8)
}
