package workload

import (
	"prorace/internal/asm"
	"prorace/internal/isa"
	"prorace/internal/machine"
)

// mix selects a PARSEC kernel composition. The per-mix iteration weights
// reproduce each benchmark family's load/store density, which is what
// determines its PEBS event rate and hence the overhead/trace-size curves
// of Figures 6 and 8.
type mix int

const (
	mixStream   mix = iota // fluidanimate/streamcluster/x264: dense streaming access
	mixCompute             // blackscholes/swaptions/raytrace: arithmetic heavy
	mixPointer             // canneal/ferret: pointer chasing
	mixBalanced            // bodytrack/dedup/freqmine/vips: a bit of everything
)

type parsecSpec struct {
	name  string
	m     mix
	iters int64 // outer iterations per worker (thousands of instructions)
}

const parsecThreads = 4 // paper: thread count equals the four cores

// buildParsec assembles one PARSEC-like workload: four workers run the
// mix's kernels over partitioned data with a lock-protected progress
// counter, joining at the end — race-free by construction.
func buildParsec(s parsecSpec, scale Scale) Workload {
	b := asm.New(s.name)
	AddPointerRing(b, "ring", 256)
	AddCtrlBlock(b, parsecThreads)
	b.Global("array", 4*4096) // 4 KB per thread
	b.Global("spill", uint64(parsecThreads)*8)
	b.Global("lk", 8)
	b.Global("progress", 8)

	EmitMainSpawnJoin(b, parsecThreads, "worker")
	EmitStreamKernel(b, "stream", "array", 511)
	EmitComputeKernel(b, "compute", "spill")
	EmitPointerChaseKernel(b, "chase", "ring", 256)
	EmitLockedCounterKernel(b, "tick", "lk", "progress")

	// Worker: R0 = thread index. Loop `iters` times over the mix.
	w := b.Func("worker")
	w.Mov(isa.R8, isa.R0) // thread index
	EmitCtrlInit(w)
	w.MovI(isa.R11, s.iters*int64(scale))
	w.Label("frame")

	emitCall := func(fn string, iters int64) {
		w.MovI(isa.R0, iters)
		w.Mov(isa.R1, isa.R8)
		w.Call(fn)
	}
	switch s.m {
	case mixStream:
		emitCall("stream", 1760)
		emitCall("compute", 240)
	case mixCompute:
		emitCall("compute", 1600)
		emitCall("stream", 200)
	case mixPointer:
		emitCall("chase", 960)
		emitCall("compute", 480)
	case mixBalanced:
		emitCall("stream", 720)
		emitCall("compute", 640)
		emitCall("chase", 320)
	}
	// Heartbeat: one locked progress tick every fourth frame — roughly the
	// synchronization density (one sync op per tens of thousands of
	// instructions) of a real PARSEC run.
	w.Mov(isa.R5, isa.R11)
	w.AndI(isa.R5, 3)
	w.CmpI(isa.R5, 0)
	w.Jne("notick")
	w.MovI(isa.R0, 1)
	w.Call("tick")
	w.Label("notick")

	w.SubI(isa.R11, 1)
	w.CmpI(isa.R11, 0)
	w.Jgt("frame")
	w.Exit(0)

	return Workload{
		Name:    s.name,
		Threads: parsecThreads,
		Class:   CPUBound,
		Program: mustBuild(b),
		Machine: machine.Config{Cores: 4},
	}
}
