package experiments

import (
	"fmt"

	"prorace/internal/bugs"
	"prorace/internal/core"
	"prorace/internal/pmu/driver"
	"prorace/internal/replay"
	"prorace/internal/report"
	"prorace/internal/stats"
)

// figure11Apps picks one buggy workload per application, as §7.5 evaluates
// "the six buggy applications".
var figure11Apps = []string{
	"apache-25520", "mysql-3596", "cherokee-0.9.2",
	"pbzip2-0.9.4", "pfscan", "aget-bug2",
}

// figure11List applies the BugSubset filter to the per-app bug list.
func (h *Harness) figure11List() []string {
	if len(h.cfg.BugSubset) == 0 {
		return figure11Apps
	}
	keep := map[string]bool{}
	for _, id := range h.cfg.BugSubset {
		keep[id] = true
	}
	var out []string
	for _, id := range figure11Apps {
		if keep[id] {
			out = append(out, id)
		}
	}
	return out
}

// RecoveryRow is one application's memory-recovery ratios.
type RecoveryRow struct {
	App string
	// Ratios: recovered+sampled accesses normalised to sampled accesses,
	// per reconstruction mode.
	BasicBlock      float64
	Forward         float64
	ForwardBackward float64
}

// Figure11Result reproduces "Memory Recovery Ratio" (§7.5): basic-block
// (RaceZ) vs forward vs forward+backward reconstruction at period 10K.
// Paper anchors: basic-block averages ~5.4x (apache 9.53x, mysql 1.6x);
// forward ~34x; forward+backward ~64x.
type Figure11Result struct {
	Rows []RecoveryRow
	// Averages (arithmetic mean, as the paper reports).
	AvgBB, AvgFwd, AvgFB float64
}

// Render produces the text table.
func (f *Figure11Result) Render() string {
	t := report.NewTable("Figure 11: memory recovery ratio (period 10K)",
		"application", "basic-block", "forward", "forward+backward")
	for _, r := range f.Rows {
		t.AddRow(r.App, ratio(r.BasicBlock), ratio(r.Forward), ratio(r.ForwardBackward))
	}
	t.AddRow("(average)", ratio(f.AvgBB), ratio(f.AvgFwd), ratio(f.AvgFB))
	return t.String()
}

func ratio(x float64) string { return fmt.Sprintf("%.1fx", x) }

// Figure11 traces each buggy application once at period 10K and
// reconstructs the trace under all three modes.
func (h *Harness) Figure11() (*Figure11Result, error) {
	res := &Figure11Result{}
	var bbs, fwds, fbs []float64
	for _, id := range h.figure11List() {
		bug, err := bugs.ByID(id)
		if err != nil {
			return nil, err
		}
		built := bug.Build(h.cfg.Scale)
		tr, err := core.TraceProgram(built.Workload.Program, core.TraceOptions{
			Kind: driver.ProRace, Period: 10000, Seed: h.cfg.Seed,
			EnablePT: true, Machine: built.Workload.Machine,
		})
		if err != nil {
			return nil, fmt.Errorf("figure11 %s: %w", id, err)
		}
		row := RecoveryRow{App: bug.App}
		for _, mode := range []replay.Mode{replay.ModeBasicBlock, replay.ModeForward, replay.ModeForwardBackward} {
			ar, err := core.Analyze(built.Workload.Program, tr.Trace, core.AnalysisOptions{
				Mode: mode, DisableRaceFeedback: true,
			})
			if err != nil {
				return nil, fmt.Errorf("figure11 %s %v: %w", id, mode, err)
			}
			r := ar.ReplayStats.RecoveryRatio()
			switch mode {
			case replay.ModeBasicBlock:
				row.BasicBlock = r
			case replay.ModeForward:
				row.Forward = r
			case replay.ModeForwardBackward:
				row.ForwardBackward = r
			}
		}
		res.Rows = append(res.Rows, row)
		bbs = append(bbs, row.BasicBlock)
		fwds = append(fwds, row.Forward)
		fbs = append(fbs, row.ForwardBackward)
	}
	res.AvgBB = stats.Mean(bbs)
	res.AvgFwd = stats.Mean(fwds)
	res.AvgFB = stats.Mean(fbs)
	return res, nil
}
