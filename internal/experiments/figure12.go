package experiments

import (
	"fmt"
	"time"

	"prorace/internal/bugs"
	"prorace/internal/core"
	"prorace/internal/pmu/driver"
	"prorace/internal/replay"
	"prorace/internal/report"
)

// OfflineCostRow is one application's offline-analysis cost.
type OfflineCostRow struct {
	App string
	// ExecSeconds is the traced run's duration in simulated seconds.
	ExecSeconds float64
	// Decode/Reconstruct/Detect are real analysis-machine times.
	Decode, Reconstruct, Detect time.Duration
	// PerExecSecond is total analysis seconds per second of execution —
	// the paper's Figure 12 metric.
	PerExecSecond float64
}

// Figure12Result reproduces "Offline analysis overhead" (§7.6): analysis
// time per second of traced execution, and the phase breakdown.
// Paper anchors: apache 54.5 s/s, mysql 35.3 s/s, pfscan worst; breakdown
// PT decoding 33.7%, trace reconstruction 64.7%, race detection 1.6%.
type Figure12Result struct {
	Rows []OfflineCostRow
	// Breakdown fractions over all rows.
	DecodeFrac, ReconstructFrac, DetectFrac float64
}

// Render produces the text table.
func (f *Figure12Result) Render() string {
	t := report.NewTable("Figure 12: offline analysis cost (period 10K)",
		"application", "exec (s)", "decode", "reconstruct", "detect", "s per exec-s")
	for _, r := range f.Rows {
		t.AddRow(r.App,
			fmt.Sprintf("%.4f", r.ExecSeconds),
			r.Decode.Round(time.Microsecond),
			r.Reconstruct.Round(time.Microsecond),
			r.Detect.Round(time.Microsecond),
			fmt.Sprintf("%.1f", r.PerExecSecond))
	}
	t.AddNote("breakdown: decode %.1f%%, reconstruction %.1f%%, detection %.1f%% (paper: 33.7 / 64.7 / 1.6)",
		f.DecodeFrac*100, f.ReconstructFrac*100, f.DetectFrac*100)
	return t.String()
}

// Figure12 measures offline analysis cost on the buggy applications at
// period 10K. Execution time is simulated (4 GHz virtual clock); analysis
// time is real time on the analysis machine, as in the paper's setup where
// dedicated analysis machines process traces (§3).
func (h *Harness) Figure12() (*Figure12Result, error) {
	res := &Figure12Result{}
	var dec, rec, det time.Duration
	for _, id := range h.figure11List() {
		bug, err := bugs.ByID(id)
		if err != nil {
			return nil, err
		}
		built := bug.Build(h.cfg.Scale)
		tr, err := core.TraceProgram(built.Workload.Program, core.TraceOptions{
			Kind: driver.ProRace, Period: 10000, Seed: h.cfg.Seed,
			EnablePT: true, Machine: built.Workload.Machine,
		})
		if err != nil {
			return nil, fmt.Errorf("figure12 %s: %w", id, err)
		}
		ar, err := core.Analyze(built.Workload.Program, tr.Trace, core.AnalysisOptions{
			Mode: replay.ModeForwardBackward,
		})
		if err != nil {
			return nil, fmt.Errorf("figure12 %s: %w", id, err)
		}
		execSec := tr.TracedStats.Seconds()
		row := OfflineCostRow{
			App:         bug.App,
			ExecSeconds: execSec,
			Decode:      ar.DecodeTime,
			Reconstruct: ar.ReconstructTime,
			Detect:      ar.DetectTime,
		}
		if execSec > 0 {
			row.PerExecSecond = ar.TotalTime().Seconds() / execSec
		}
		res.Rows = append(res.Rows, row)
		dec += ar.DecodeTime
		rec += ar.ReconstructTime
		det += ar.DetectTime
	}
	total := dec + rec + det
	if total > 0 {
		res.DecodeFrac = float64(dec) / float64(total)
		res.ReconstructFrac = float64(rec) / float64(total)
		res.DetectFrac = float64(det) / float64(total)
	}
	return res, nil
}
