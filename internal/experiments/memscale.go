package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"prorace/internal/race"
	"prorace/internal/replay"
	"prorace/internal/report"
)

// The memscale experiment measures the detector's shadow-memory footprint
// at production trace scale: a synthetic million-variable, 64-thread
// read-shared workload — the array-scan shape that made the map-based
// shadow state the pipeline's memory ceiling — run through the frozen
// reference representation (map[varKey]*varState, heap vector clocks, two
// provenance maps per shared variable), the flat slab shadow table, and
// the striped sharded detector. Every variable inflates to read-shared,
// the worst case for per-variable state. The workload is race-free so the
// measurement isolates shadow state from report machinery, which is
// identical across representations.
//
// Two memory views are recorded per detector: the Go-heap delta around
// the run (GC-settled, the honest whole-process number) and, for the flat
// representations, the detector's own ShadowStats accounting (table +
// interner + provenance slabs — the stable number CI budgets ratchet on).

// MemScaleConfig sizes the workload and sets the assertion thresholds.
type MemScaleConfig struct {
	// Vars and Threads shape the synthetic trace: Vars distinct addresses,
	// each read by one of Threads/2 thread pairs.
	Vars    int `json:"vars"`
	Threads int `json:"threads"`
	// Shards and Workers configure the striped run.
	Shards  int `json:"shards"`
	Workers int `json:"workers"`
	// BudgetBytesPerVar, when > 0, fails the experiment if the flat
	// detector's self-reported peak shadow bytes per variable exceed it —
	// the CI ratchet.
	BudgetBytesPerVar float64 `json:"budget_bytes_per_var,omitempty"`
	// MinReduction, when > 0, fails the experiment if the reference-heap
	// over flat-heap bytes-per-variable ratio falls below it.
	MinReduction float64 `json:"min_reduction,omitempty"`
}

// DefaultMemScale is the acceptance-scale configuration: ≥1M variables,
// 64 threads.
func DefaultMemScale() MemScaleConfig {
	return MemScaleConfig{Vars: 1 << 20, Threads: 64, Shards: 8, Workers: 4}
}

// MemScaleRow is one detector's measurements.
type MemScaleRow struct {
	Detector  string `json:"detector"`
	Variables int    `json:"variables"`
	// HeapBytes is the GC-settled Go-heap growth across the run;
	// HeapBytesPerVar divides by Variables.
	HeapBytes       uint64  `json:"heap_bytes"`
	HeapBytesPerVar float64 `json:"heap_bytes_per_var"`
	// ShadowBytes/ShadowPeakBytes are the detector's own accounting (flat
	// representations only; zero for the reference).
	ShadowBytes       uint64  `json:"shadow_bytes,omitempty"`
	ShadowPeakBytes   uint64  `json:"shadow_peak_bytes,omitempty"`
	ShadowBytesPerVar float64 `json:"shadow_bytes_per_var,omitempty"`
	// InternedVCs counts distinct pooled vectors (flat only): the dedup
	// factor is Variables/InternedVCs.
	InternedVCs int `json:"interned_vcs,omitempty"`
	// AllocsPerVar is cumulative mallocs across the run per variable
	// (includes the shared feed machinery, identical across rows).
	AllocsPerVar float64 `json:"allocs_per_var"`
	WallMS       float64 `json:"wall_ms"`
}

// MemScaleResult is the full experiment: per-detector rows plus the
// headline reduction factors.
type MemScaleResult struct {
	Config MemScaleConfig `json:"config"`
	Rows   []MemScaleRow  `json:"rows"`
	// HeapReduction is reference heap-bytes-per-var over flat; WallRatio is
	// flat wall-clock over reference (≤ 1 means the lean layout is also no
	// slower).
	HeapReduction float64 `json:"heap_reduction"`
	WallRatio     float64 `json:"wall_ratio"`
}

// memScaleInput builds the synthetic trace: variable i is read by thread
// pair (2k+1, 2k+2), k = i mod Threads/2, both reads mutually unordered
// (no synchronization at all), so every variable's read state inflates to
// a two-reader vector. Per-thread access streams are TSC-ordered as the
// feed layer requires.
func memScaleInput(cfg MemScaleConfig) map[int32][]replay.Access {
	pairs := cfg.Threads / 2
	perPair := (cfg.Vars + pairs - 1) / pairs
	accs := make(map[int32][]replay.Access, cfg.Threads)
	for t := int32(1); t <= int32(cfg.Threads); t++ {
		accs[t] = make([]replay.Access, 0, perPair)
	}
	for i := 0; i < cfg.Vars; i++ {
		k := i % pairs
		a, b := int32(2*k+1), int32(2*k+2)
		addr := 0x10000000 + uint64(i)*8
		accs[a] = append(accs[a], replay.Access{TID: a, PC: 0x400100, Addr: addr, TSC: uint64(2*i + 1), Step: -1})
		accs[b] = append(accs[b], replay.Access{TID: b, PC: 0x400200, Addr: addr, TSC: uint64(2*i + 2), Step: -1})
	}
	return accs
}

// MemScale runs the experiment.
func (h *Harness) MemScale(cfg MemScaleConfig) (*MemScaleResult, error) {
	if cfg.Vars == 0 {
		cfg = DefaultMemScale()
	}
	if cfg.Threads < 2 {
		cfg.Threads = 2
	}
	accs := memScaleInput(cfg)

	res := &MemScaleResult{Config: cfg}
	// build runs inside the measured window so pre-sized tables are charged
	// to the representation that allocates them.
	measure := func(name string, build func() (race.ReportSink, func() race.ShadowStats)) MemScaleRow {
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		sink, stats := build()
		race.Feed(sink, nil, accs)
		sink.Finish()
		wall := time.Since(t0)
		runtime.GC()
		runtime.ReadMemStats(&m1)
		row := MemScaleRow{
			Detector:     name,
			HeapBytes:    m1.HeapAlloc - m0.HeapAlloc,
			AllocsPerVar: float64(m1.Mallocs-m0.Mallocs) / float64(cfg.Vars),
			WallMS:       float64(wall.Microseconds()) / 1000,
		}
		if len(sink.Reports()) != 0 {
			// The workload is race-free by construction; reports mean the
			// representations diverged and the memory numbers are invalid.
			panic(fmt.Sprintf("memscale: %s reported %d races on a race-free trace", name, len(sink.Reports())))
		}
		if stats != nil {
			st := stats()
			row.Variables = st.Variables
			row.ShadowBytes = st.Bytes()
			row.ShadowPeakBytes = st.PeakBytes()
			row.ShadowBytesPerVar = float64(st.PeakBytes()) / float64(st.Variables)
			row.InternedVCs = st.InternedVCs
		}
		row.HeapBytesPerVar = float64(row.HeapBytes) / float64(cfg.Vars)
		runtime.KeepAlive(sink)
		return row
	}

	var ref *race.ReferenceDetector
	refRow := measure("reference (map + heap VCs)", func() (race.ReportSink, func() race.ShadowStats) {
		ref = race.NewReferenceDetector(race.Options{})
		return ref, nil
	})
	refRow.Variables = ref.Variables()
	ref = nil
	res.Rows = append(res.Rows, refRow)

	flatRow := measure("flat slab table", func() (race.ReportSink, func() race.ShadowStats) {
		flat := race.NewDetector(race.Options{ShadowCapacityHint: cfg.Vars})
		return flat, flat.ShadowStats
	})
	res.Rows = append(res.Rows, flatRow)

	stripedRow := measure(fmt.Sprintf("striped (%d stripes × %d workers)", cfg.Shards, cfg.Workers),
		func() (race.ReportSink, func() race.ShadowStats) {
			striped := race.NewShardedDetector(cfg.Shards, race.Options{
				Workers: cfg.Workers, ShadowCapacityHint: cfg.Vars})
			return striped, striped.ShadowStats
		})
	res.Rows = append(res.Rows, stripedRow)

	if flatRow.HeapBytesPerVar > 0 {
		res.HeapReduction = refRow.HeapBytesPerVar / flatRow.HeapBytesPerVar
	}
	if refRow.WallMS > 0 {
		res.WallRatio = flatRow.WallMS / refRow.WallMS
	}

	if cfg.BudgetBytesPerVar > 0 && flatRow.ShadowBytesPerVar > cfg.BudgetBytesPerVar {
		return res, fmt.Errorf("memscale: flat shadow bytes/variable %.1f exceeds the %.1f budget",
			flatRow.ShadowBytesPerVar, cfg.BudgetBytesPerVar)
	}
	if cfg.MinReduction > 0 && res.HeapReduction < cfg.MinReduction {
		return res, fmt.Errorf("memscale: heap reduction %.2fx below the required %.2fx",
			res.HeapReduction, cfg.MinReduction)
	}
	return res, nil
}

// WriteJSON records the experiment at path, indented for diffing.
func (r *MemScaleResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render formats the measurement table.
func (r *MemScaleResult) Render() string {
	t := report.NewTable(
		fmt.Sprintf("shadow-memory scale: %d variables, %d threads, all read-shared",
			r.Config.Vars, r.Config.Threads),
		"representation", "variables", "heap B/var", "shadow B/var", "interned VCs", "allocs/var", "wall ms")
	for _, row := range r.Rows {
		shadow, interned := "-", "-"
		if row.ShadowBytesPerVar > 0 {
			shadow = fmt.Sprintf("%.1f", row.ShadowBytesPerVar)
			interned = fmt.Sprintf("%d", row.InternedVCs)
		}
		t.AddRow(row.Detector, row.Variables,
			fmt.Sprintf("%.1f", row.HeapBytesPerVar), shadow, interned,
			fmt.Sprintf("%.2f", row.AllocsPerVar), fmt.Sprintf("%.1f", row.WallMS))
	}
	out := t.String()
	out += fmt.Sprintf("heap bytes/variable reduction: %.2fx, wall-clock ratio (flat/reference): %.2f\n",
		r.HeapReduction, r.WallRatio)
	return out
}
