package experiments

import (
	"fmt"
	"runtime"
	"time"

	"prorace/internal/core"
	"prorace/internal/pmu/driver"
	"prorace/internal/race"
	"prorace/internal/replay"
	"prorace/internal/report"
	"prorace/internal/synthesis"
	"prorace/internal/workload"
)

// ScalingRow is one detector configuration's timing over a fixed
// extended trace.
type ScalingRow struct {
	// Shards is the detection shard count; 0 is the sequential detector.
	Shards  int
	Detect  time.Duration
	Speedup float64
	Reports int
}

// DetectScalingResult measures the address-sharded parallel detector
// (§7.6's parallelisation observation applied to the detection phase):
// the same reconstructed trace pushed through sequential FastTrack and
// through 1..8 shard workers. The report list is identical in every row;
// only the wall clock may differ.
type DetectScalingResult struct {
	App      string
	Accesses int
	GoMaxPro int
	Rows     []ScalingRow
}

// Render produces the text table.
func (f *DetectScalingResult) Render() string {
	t := report.NewTable(
		fmt.Sprintf("Detection scaling: %s, %d accesses (GOMAXPROCS %d)", f.App, f.Accesses, f.GoMaxPro),
		"configuration", "detect time", "speedup", "reports")
	for _, r := range f.Rows {
		name := "sequential"
		if r.Shards > 0 {
			name = fmt.Sprintf("%d shards", r.Shards)
		}
		t.AddRow(name, r.Detect.Round(time.Microsecond),
			fmt.Sprintf("%.2fx", r.Speedup), r.Reports)
	}
	t.AddNote("identical race reports in every configuration; speedup is bounded by GOMAXPROCS")
	return t.String()
}

// DetectScaling prepares one extended trace from the 20-thread mysql
// model and times detection at each shard count. Each configuration is
// run detectTrials times and the minimum is kept, since individual
// detect passes are short.
func (h *Harness) DetectScaling() (*DetectScalingResult, error) {
	const detectTrials = 3
	w := workload.MySQL(h.cfg.Scale)
	tr, err := core.TraceProgram(w.Program, core.TraceOptions{
		Kind: driver.ProRace, Period: 500, Seed: h.cfg.Seed,
		EnablePT: true, Machine: w.Machine,
	})
	if err != nil {
		return nil, fmt.Errorf("scaling: %w", err)
	}
	tts, err := synthesis.Synthesize(w.Program, tr.Trace)
	if err != nil {
		return nil, fmt.Errorf("scaling: %w", err)
	}
	engine := replay.NewEngine(w.Program, replay.Config{Mode: replay.ModeForwardBackward})
	accesses, _ := engine.ReconstructAll(tts)

	res := &DetectScalingResult{App: w.Name, GoMaxPro: runtime.GOMAXPROCS(0)}
	for _, a := range accesses {
		res.Accesses += len(a)
	}
	opts := race.Options{TrackAllocations: true}

	time1 := func(detect func() int) (time.Duration, int) {
		best := time.Duration(-1)
		reports := 0
		for i := 0; i < detectTrials; i++ {
			t0 := time.Now()
			reports = detect()
			if d := time.Since(t0); best < 0 || d < best {
				best = d
			}
		}
		return best, reports
	}

	seqTime, seqReports := time1(func() int {
		return len(race.Detect(tr.Trace.Sync, accesses, opts).Reports())
	})
	res.Rows = append(res.Rows, ScalingRow{Shards: 0, Detect: seqTime, Speedup: 1, Reports: seqReports})

	for _, shards := range []int{1, 2, 4, 8} {
		d, n := time1(func() int {
			return len(race.DetectSharded(tr.Trace.Sync, accesses, shards, opts).Reports())
		})
		if n != seqReports {
			return nil, fmt.Errorf("scaling: %d shards reported %d races, sequential %d", shards, n, seqReports)
		}
		row := ScalingRow{Shards: shards, Detect: d, Reports: n}
		if d > 0 {
			row.Speedup = float64(seqTime) / float64(d)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
