package experiments

import (
	"fmt"

	"prorace/internal/report"
	"prorace/internal/stats"
	"prorace/internal/workload"
)

// OverheadFigure is the result of Figures 6, 7 and 10: per-workload
// overhead across the sampling-period sweep plus geomeans.
type OverheadFigure struct {
	Name string
	// Periods is the sweep, ascending.
	Periods []uint64
	// PerWorkload maps workload -> overhead per period (Periods order).
	PerWorkload map[string][]float64
	// Geomean per period (Periods order).
	Geomean []float64
	// Points is the raw data.
	Points []Point
}

// Render produces the text table.
func (f *OverheadFigure) Render() string {
	t := report.NewTable(f.Name, append([]string{"workload"}, periodHeaders(f.Periods)...)...)
	for _, name := range sortedKeys(f.PerWorkload) {
		row := []any{name}
		for _, o := range f.PerWorkload[name] {
			row = append(row, stats.FormatOverhead(o))
		}
		t.AddRow(row...)
	}
	row := []any{"geomean"}
	for _, o := range f.Geomean {
		row = append(row, stats.FormatOverhead(o))
	}
	t.AddRow(row...)
	return t.String()
}

func (h *Harness) overheadFigure(name string, pts []Point) *OverheadFigure {
	fig := &OverheadFigure{
		Name:        name,
		Periods:     h.cfg.Periods,
		PerWorkload: map[string][]float64{},
		Points:      pts,
	}
	idx := map[uint64]int{}
	for i, p := range h.cfg.Periods {
		idx[p] = i
	}
	for _, p := range pts {
		row := fig.PerWorkload[p.Workload]
		if row == nil {
			row = make([]float64, len(h.cfg.Periods))
			fig.PerWorkload[p.Workload] = row
		}
		row[idx[p.Period]] = p.Overhead
	}
	for _, period := range h.cfg.Periods {
		var os []float64
		for _, p := range pts {
			if p.Period == period {
				os = append(os, p.Overhead)
			}
		}
		fig.Geomean = append(fig.Geomean, stats.GeomeanOverhead(os))
	}
	return fig
}

// Figure6 reproduces "Performance overhead for PARSEC benchmarks": ProRace
// driver + PT over the 13 CPU-bound kernels across sampling periods.
// Paper geomeans: 4%, 7%, 13%, 2.85x, 7.52x for 100K..10.
func (h *Harness) Figure6() (*OverheadFigure, error) {
	pts, err := h.parsecSweep()
	if err != nil {
		return nil, err
	}
	return h.overheadFigure("Figure 6: performance overhead, PARSEC", pts), nil
}

// Figure7 reproduces "Performance overhead for real applications".
// Paper geomeans: 0.8%, 2.6%, 8%, 34%, 80% for 100K..10; network-bound
// applications stay under 1% even at period 10.
func (h *Harness) Figure7() (*OverheadFigure, error) {
	pts, err := h.realSweep()
	if err != nil {
		return nil, err
	}
	return h.overheadFigure("Figure 7: performance overhead, real applications", pts), nil
}

// TraceSizeFigure is the result of Figures 8 and 9: trace MB/s.
type TraceSizeFigure struct {
	Name        string
	Periods     []uint64
	PerWorkload map[string][]float64 // MB/s
	Geomean     []float64
	// PTShare is PT bytes / total bytes per period (geomean-free mean),
	// checking the paper's "PEBS dominates (~99%)" claim.
	PTShare []float64
	Points  []Point
}

// Render produces the text table.
func (f *TraceSizeFigure) Render() string {
	t := report.NewTable(f.Name, append([]string{"workload"}, periodHeaders(f.Periods)...)...)
	for _, name := range sortedKeys(f.PerWorkload) {
		row := []any{name}
		for _, m := range f.PerWorkload[name] {
			row = append(row, stats.FormatBytesPerSec(m))
		}
		t.AddRow(row...)
	}
	row := []any{"geomean"}
	for _, m := range f.Geomean {
		row = append(row, stats.FormatBytesPerSec(m))
	}
	t.AddRow(row...)
	share := []any{"PT share"}
	for _, s := range f.PTShare {
		share = append(share, fmt.Sprintf("%.1f%%", s*100))
	}
	t.AddRow(share...)
	return t.String()
}

func (h *Harness) traceSizeFigure(name string, pts []Point) *TraceSizeFigure {
	fig := &TraceSizeFigure{
		Name:        name,
		Periods:     h.cfg.Periods,
		PerWorkload: map[string][]float64{},
		Points:      pts,
	}
	idx := map[uint64]int{}
	for i, p := range h.cfg.Periods {
		idx[p] = i
	}
	for _, p := range pts {
		row := fig.PerWorkload[p.Workload]
		if row == nil {
			row = make([]float64, len(h.cfg.Periods))
			fig.PerWorkload[p.Workload] = row
		}
		row[idx[p.Period]] = p.MBps
	}
	for _, period := range h.cfg.Periods {
		var ms []float64
		var pebs, pt uint64
		for _, p := range pts {
			if p.Period == period {
				ms = append(ms, p.MBps)
				pebs += p.PEBSBytes
				pt += p.PTBytes
			}
		}
		fig.Geomean = append(fig.Geomean, stats.Geomean(ms))
		if pebs+pt > 0 {
			fig.PTShare = append(fig.PTShare, float64(pt)/float64(pebs+pt))
		} else {
			fig.PTShare = append(fig.PTShare, 0)
		}
	}
	return fig
}

// Figure8 reproduces "Space overhead for PARSEC benchmarks": trace MB/s
// across periods. Paper geomeans: 26, 69, 132, 597, 463 MB/s for 100K..10 —
// note the inversion at period 10, caused by kernel-side sample drops.
func (h *Harness) Figure8() (*TraceSizeFigure, error) {
	pts, err := h.parsecSweep()
	if err != nil {
		return nil, err
	}
	return h.traceSizeFigure("Figure 8: trace generation rate, PARSEC", pts), nil
}

// Figure9 reproduces "Space overhead for real applications".
// Paper geomeans: 0.2, 1.2, 7.9, 40.8, 99.5 MB/s for 100K..10.
func (h *Harness) Figure9() (*TraceSizeFigure, error) {
	pts, err := h.realSweep()
	if err != nil {
		return nil, err
	}
	return h.traceSizeFigure("Figure 9: trace generation rate, real applications", pts), nil
}

// DriverComparison is Figure 10: vanilla vs ProRace driver overhead
// geomeans, for PARSEC and the real applications.
type DriverComparison struct {
	Periods                      []uint64
	ParsecVanilla, ParsecProRace []float64
	RealVanilla, RealProRace     []float64
}

// Render produces the text table.
func (f *DriverComparison) Render() string {
	t := report.NewTable("Figure 10: driver overhead comparison (geomean)",
		append([]string{"configuration"}, periodHeaders(f.Periods)...)...)
	add := func(name string, xs []float64) {
		row := []any{name}
		for _, x := range xs {
			row = append(row, stats.FormatOverhead(x))
		}
		t.AddRow(row...)
	}
	add("PARSEC vanilla", f.ParsecVanilla)
	add("PARSEC prorace", f.ParsecProRace)
	add("real vanilla", f.RealVanilla)
	add("real prorace", f.RealProRace)
	return t.String()
}

// Figure10 reproduces the driver comparison. Paper anchors: at period 10
// the vanilla driver costs ~50x vs ProRace's 7.5x on PARSEC; at 100K, 20%
// vs 4%.
func (h *Harness) Figure10() (*DriverComparison, error) {
	pv, err := h.parsecVanillaSweep()
	if err != nil {
		return nil, err
	}
	pp, err := h.parsecSweep()
	if err != nil {
		return nil, err
	}
	rv, err := h.realVanillaSweep()
	if err != nil {
		return nil, err
	}
	rp, err := h.realSweep()
	if err != nil {
		return nil, err
	}
	geo := func(pts []Point) []float64 {
		var out []float64
		for _, period := range h.cfg.Periods {
			var os []float64
			for _, p := range pts {
				if p.Period == period {
					os = append(os, p.Overhead)
				}
			}
			out = append(out, stats.GeomeanOverhead(os))
		}
		return out
	}
	return &DriverComparison{
		Periods:       h.cfg.Periods,
		ParsecVanilla: geo(pv),
		ParsecProRace: geo(pp),
		RealVanilla:   geo(rv),
		RealProRace:   geo(rp),
	}, nil
}

// Table1 renders the evaluation setup table (the paper's Table 1).
func Table1(scale workload.Scale) string {
	t := report.NewTable("Table 1: evaluation setup", "application", "threads", "class", "description")
	desc := map[string]string{
		"apache":       "ApacheBench, 128KB responses, 8 clients",
		"cherokee":     "ApacheBench, 128KB responses, 8 clients",
		"mysql":        "SysBench OLTP, 32 clients, 10M records",
		"memcached":    "YCSB, workloads A-E",
		"transmission": "4.48GB BitTorrent transfer",
		"pfscan":       "6.8GB parallel file scan",
		"pbzip2":       "1GB parallel compression",
		"aget":         "2.1GB parallel download",
	}
	for _, w := range workload.RealApps(scale) {
		t.AddRow(w.Name, w.Threads, w.Class, desc[w.Name])
	}
	return t.String()
}

func periodHeaders(periods []uint64) []string {
	var out []string
	for _, p := range periods {
		out = append(out, fmt.Sprintf("P=%d", p))
	}
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
