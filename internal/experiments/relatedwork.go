package experiments

import (
	"fmt"

	"prorace/internal/baselines"
	"prorace/internal/bugs"
	"prorace/internal/core"
	"prorace/internal/pmu/driver"
	"prorace/internal/report"
	"prorace/internal/stats"
	"prorace/internal/workload"
)

// RelatedWorkRow is one detector's measurements.
type RelatedWorkRow struct {
	System string
	// CPUOverhead is the slowdown on a CPU-bound workload (geomean over
	// the PARSEC subset) — the production-viability axis of §2.
	CPUOverhead float64
	// ServerOverhead is the slowdown on the apache model.
	ServerOverhead float64
	// Detection is the probability of catching the reference bug
	// (apache-21287, register indirect) over the trial count.
	Detection float64
}

// RelatedWorkResult reproduces the quantitative comparison of §2: the
// prior sampling detectors (LiteRace, Pacer, DataCollider), the RaceZ
// baseline, and ProRace, measured on the same simulated machine. Paper
// anchors: LiteRace 1.47x average (2-4% on apache), Pacer 1.86x at 3%,
// DataCollider low overhead but coverage limited to sampled accesses,
// ProRace 2.6% at period 10K with far higher coverage.
type RelatedWorkResult struct {
	Trials int
	Rows   []RelatedWorkRow
}

// Render produces the text table.
func (r *RelatedWorkResult) Render() string {
	t := report.NewTable(fmt.Sprintf("Related-work comparison (§2; %d trials)", r.Trials),
		"system", "cpu overhead", "apache overhead", "detection")
	for _, row := range r.Rows {
		t.AddRow(row.System,
			stats.FormatOverhead(row.CPUOverhead),
			stats.FormatOverhead(row.ServerOverhead),
			fmt.Sprintf("%.0f%%", row.Detection*100))
	}
	t.AddNote("detection: apache-21287 (register indirect) caught per trace")
	t.AddNote("ProRace/RaceZ at sampling period 1K; Pacer at 3%%; DataCollider period 20K")
	return t.String()
}

// RelatedWork runs the five-system comparison.
func (h *Harness) RelatedWork() (*RelatedWorkResult, error) {
	res := &RelatedWorkResult{Trials: h.cfg.Table2Trials}

	cpuW := h.filterWorkloads(workload.PARSEC(h.cfg.Scale))
	if len(cpuW) == 0 {
		cpuW = workload.PARSEC(h.cfg.Scale)[:1]
	}
	webW := workload.Apache(h.cfg.Scale)
	bug, err := bugs.ByID("apache-21287")
	if err != nil {
		return nil, err
	}
	built := bug.Build(h.cfg.Scale)

	// Baseline systems.
	for _, kind := range []baselines.Kind{baselines.LiteRace, baselines.Pacer, baselines.DataCollider} {
		row := RelatedWorkRow{System: kind.String()}
		var cpuOvh []float64
		for _, w := range cpuW {
			r, err := baselines.Run(w.Program, w.Machine, baselines.Options{
				Kind: kind, Seed: h.cfg.Seed, MeasureOverhead: true})
			if err != nil {
				return nil, fmt.Errorf("relatedwork %s on %s: %w", kind, w.Name, err)
			}
			cpuOvh = append(cpuOvh, r.Overhead)
		}
		row.CPUOverhead = stats.GeomeanOverhead(cpuOvh)
		wr, err := baselines.Run(webW.Program, webW.Machine, baselines.Options{
			Kind: kind, Seed: h.cfg.Seed, MeasureOverhead: true})
		if err != nil {
			return nil, err
		}
		row.ServerOverhead = wr.Overhead
		hits := 0
		for trial := 0; trial < res.Trials; trial++ {
			r, err := baselines.Run(built.Workload.Program, built.Workload.Machine,
				baselines.Options{Kind: kind, Seed: h.cfg.Seed + int64(trial)*7919})
			if err != nil {
				return nil, err
			}
			if built.Detected(r.Reports) {
				hits++
			}
		}
		row.Detection = float64(hits) / float64(res.Trials)
		res.Rows = append(res.Rows, row)
	}

	// RaceZ and ProRace at period 10K.
	for _, prorace := range []bool{false, true} {
		name := "racez"
		if prorace {
			name = "prorace"
		}
		row := RelatedWorkRow{System: name}
		var cpuOvh []float64
		for _, w := range cpuW {
			o, err := pipelineOverhead(w, prorace, h.cfg.Seed)
			if err != nil {
				return nil, err
			}
			cpuOvh = append(cpuOvh, o)
		}
		row.CPUOverhead = stats.GeomeanOverhead(cpuOvh)
		o, err := pipelineOverhead(webW, prorace, h.cfg.Seed)
		if err != nil {
			return nil, err
		}
		row.ServerOverhead = o
		hits := 0
		for trial := 0; trial < res.Trials; trial++ {
			ok, err := detectOnce(built, 1000, h.cfg.Seed+int64(trial)*7919, prorace)
			if err != nil {
				return nil, err
			}
			if ok {
				hits++
			}
		}
		row.Detection = float64(hits) / float64(res.Trials)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func pipelineOverhead(w workload.Workload, prorace bool, seed int64) (float64, error) {
	kind := driver.Vanilla
	if prorace {
		kind = driver.ProRace
	}
	r, err := core.TraceProgram(w.Program, core.TraceOptions{
		Kind: kind, Period: 1000, Seed: seed, EnablePT: prorace,
		MeasureOverhead: true, Machine: w.Machine,
	})
	if err != nil {
		return 0, err
	}
	return r.Overhead, nil
}
