// Package experiments regenerates every table and figure of the paper's
// evaluation (§7). Each experiment returns both raw data and a rendered
// text table; cmd/experiments prints them and the root benchmark suite
// reports their headline metrics.
//
// The per-experiment index mapping each function to the paper's artifact
// lives in DESIGN.md §4; paper-vs-measured numbers are recorded in
// EXPERIMENTS.md.
package experiments

import (
	"fmt"

	"prorace/internal/core"
	"prorace/internal/pmu/driver"
	"prorace/internal/workload"
)

// Config sizes the experiments. The zero value is usable: Quick() for test
// and benchmark runs, Full() for the paper-scale regeneration.
type Config struct {
	// Scale multiplies workload iteration counts.
	Scale workload.Scale
	// Periods is the PEBS sampling-period sweep (paper: 10..100K).
	Periods []uint64
	// Seed is the base scheduler seed.
	Seed int64
	// Table2Trials is the number of traces per bug per period (paper: 100).
	Table2Trials int
	// Table2Periods is Table 2's period set (paper: 100, 1K, 10K).
	Table2Periods []uint64
	// Workloads restricts the overhead/trace sweeps to the named
	// workloads (empty = all). The benchmark suite uses it to regenerate
	// each figure's series on a representative subset quickly.
	Workloads []string
	// BugSubset restricts Table 2 / Figures 11-12 to the named bugs
	// (empty = all).
	BugSubset []string
	// FaultTrials is the number of clean traces per bug the fault sweep
	// re-analyses under each injected corruption.
	FaultTrials int
	// FaultRates is the fault sweep's injection-rate axis.
	FaultRates []float64
	// OracleSeeds is the number of generated programs the ground-truth
	// differential sweep scores (seeds Seed..Seed+OracleSeeds-1).
	OracleSeeds int
	// OraclePeriods is the oracle sweep's sampling-period axis; it must
	// include 1 for the recall@1 invariant.
	OraclePeriods []uint64
	// OracleDeterminismEvery runs the metamorphic determinism matrix on
	// every Nth oracle seed (0 disables).
	OracleDeterminismEvery int
}

// Quick returns a configuration small enough for tests and benchmarks.
func Quick() Config {
	return Config{
		Scale:         1,
		Periods:       []uint64{10, 100, 1000, 10000, 100000},
		Seed:          1,
		Table2Trials:  10,
		Table2Periods: []uint64{100, 1000, 10000},
	}
}

// Full returns the paper-scale configuration.
func Full() Config {
	c := Quick()
	c.Scale = 3
	c.Table2Trials = 100
	c.OracleSeeds = 200
	c.OracleDeterminismEvery = 10
	return c
}

func (c *Config) setDefaults() {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if len(c.Periods) == 0 {
		c.Periods = []uint64{10, 100, 1000, 10000, 100000}
	}
	if c.Table2Trials <= 0 {
		c.Table2Trials = 10
	}
	if len(c.Table2Periods) == 0 {
		c.Table2Periods = []uint64{100, 1000, 10000}
	}
	if c.FaultTrials <= 0 {
		c.FaultTrials = 3
	}
	if len(c.FaultRates) == 0 {
		c.FaultRates = []float64{0.01, 0.1, 0.25, 0.5}
	}
	if c.OracleSeeds <= 0 {
		c.OracleSeeds = 50
	}
	if len(c.OraclePeriods) == 0 {
		c.OraclePeriods = []uint64{1, 10, 100, 1000}
	}
	if c.OracleDeterminismEvery == 0 {
		c.OracleDeterminismEvery = 25
	}
}

// Point is one measurement of the overhead/trace-size sweeps: one workload
// traced at one period under one driver.
type Point struct {
	Workload string
	Class    workload.Class
	Period   uint64
	Driver   driver.Kind
	// Overhead is traced/untraced - 1.
	Overhead float64
	// MBps is the trace generation rate over the traced run.
	MBps float64
	// Samples and Dropped count stored and discarded PEBS records.
	Samples int
	Dropped uint64
	// PEBSBytes/PTBytes/SyncBytes decompose the trace volume.
	PEBSBytes, PTBytes, SyncBytes uint64
}

// Harness runs and caches the sweeps shared by several figures (Figures 6
// and 8 use the same PARSEC runs; 7 and 9 the same real-app runs).
type Harness struct {
	cfg   Config
	cache map[string][]Point
}

// NewHarness creates a harness for a configuration.
func NewHarness(cfg Config) *Harness {
	cfg.setDefaults()
	return &Harness{cfg: cfg, cache: map[string][]Point{}}
}

// Config returns the (defaulted) configuration.
func (h *Harness) Config() Config { return h.cfg }

// filterWorkloads applies the Workloads subset.
func (h *Harness) filterWorkloads(ws []workload.Workload) []workload.Workload {
	if len(h.cfg.Workloads) == 0 {
		return ws
	}
	keep := map[string]bool{}
	for _, n := range h.cfg.Workloads {
		keep[n] = true
	}
	var out []workload.Workload
	for _, w := range ws {
		if keep[w.Name] {
			out = append(out, w)
		}
	}
	return out
}

// sweep traces every workload at every period under one driver setup.
func (h *Harness) sweep(key string, ws []workload.Workload, kind driver.Kind, enablePT bool) ([]Point, error) {
	if pts, ok := h.cache[key]; ok {
		return pts, nil
	}
	ws = h.filterWorkloads(ws)
	var out []Point
	for _, w := range ws {
		for _, period := range h.cfg.Periods {
			res, err := core.TraceProgram(w.Program, core.TraceOptions{
				Kind:            kind,
				Period:          period,
				Seed:            h.cfg.Seed,
				EnablePT:        enablePT,
				MeasureOverhead: true,
				Machine:         w.Machine,
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: %s @%d: %w", w.Name, period, err)
			}
			pebsB, ptB, syncB := res.Trace.Sizes()
			out = append(out, Point{
				Workload:  w.Name,
				Class:     w.Class,
				Period:    period,
				Driver:    kind,
				Overhead:  res.Overhead,
				MBps:      res.Trace.MBPerSecond(),
				Samples:   res.Trace.SampleCount(),
				Dropped:   res.Dropped,
				PEBSBytes: pebsB,
				PTBytes:   ptB,
				SyncBytes: syncB,
			})
		}
	}
	h.cache[key] = out
	return out, nil
}

// parsecSweep traces the PARSEC suite under the ProRace driver.
func (h *Harness) parsecSweep() ([]Point, error) {
	return h.sweep("parsec-prorace", workload.PARSEC(h.cfg.Scale), driver.ProRace, true)
}

// realSweep traces the real applications under the ProRace driver.
func (h *Harness) realSweep() ([]Point, error) {
	return h.sweep("real-prorace", workload.RealApps(h.cfg.Scale), driver.ProRace, true)
}

// parsecVanillaSweep traces PARSEC under the stock driver (Figure 10).
func (h *Harness) parsecVanillaSweep() ([]Point, error) {
	return h.sweep("parsec-vanilla", workload.PARSEC(h.cfg.Scale), driver.Vanilla, false)
}

// realVanillaSweep traces real applications under the stock driver.
func (h *Harness) realVanillaSweep() ([]Point, error) {
	return h.sweep("real-vanilla", workload.RealApps(h.cfg.Scale), driver.Vanilla, false)
}

// byPeriod groups points by sampling period, preserving Periods order.
func (h *Harness) byPeriod(pts []Point) map[uint64][]Point {
	out := map[uint64][]Point{}
	for _, p := range pts {
		out[p.Period] = append(out[p.Period], p)
	}
	return out
}
