package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"prorace/internal/core"
	"prorace/internal/pmu/driver"
	"prorace/internal/ptdecode"
	"prorace/internal/race"
	"prorace/internal/replay"
	"prorace/internal/report"
	"prorace/internal/synthesis"
	"prorace/internal/telemetry"
	"prorace/internal/workload"
)

// The perf experiment re-runs the offline pipeline's key benchmarks —
// the same bodies as the root package's BenchmarkParallelAnalysis,
// BenchmarkReplayForwardBackward, BenchmarkPTDecode and
// BenchmarkShardedDetection — through testing.Benchmark, and writes the
// measurements next to a pinned pre-optimisation baseline so the
// allocation-lean work (decoded-path cache, pooled replay state, batched
// access streaming) stays accountable: ns/op and allocs/op, current vs
// baseline, with the speedup factors computed.

// PerfBench is one benchmark measurement.
type PerfBench struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// PerfRow pairs a current measurement with its pre-optimisation baseline.
type PerfRow struct {
	Current PerfBench `json:"current"`
	// Baseline is the same benchmark at the commit before the
	// allocation-lean rework, measured on the development machine
	// (Xeon @ 2.10GHz); zero when no baseline was pinned.
	Baseline *PerfBench `json:"baseline,omitempty"`
	// Speedup is baseline ns/op over current ns/op (>1 means faster).
	Speedup float64 `json:"speedup,omitempty"`
	// AllocReduction is baseline allocs/op over current allocs/op.
	AllocReduction float64 `json:"alloc_reduction,omitempty"`
}

// PerfResult is the full suite: one row per benchmark, in run order.
type PerfResult struct {
	Rows []PerfRow `json:"benchmarks"`
}

// perfBaselines pins the pre-optimisation numbers (benchtime=5x on the
// development machine) the speedup columns divide against.
var perfBaselines = map[string]PerfBench{
	"parallel_analysis/sequential":     {NsPerOp: 527029049, BytesPerOp: 254526369, AllocsPerOp: 190447},
	"parallel_analysis/workers":        {NsPerOp: 547211853, BytesPerOp: 254526376, AllocsPerOp: 190447},
	"parallel_analysis/workers+shards": {NsPerOp: 556615601, BytesPerOp: 254518996, AllocsPerOp: 190446},
	"replay_forward_backward":          {NsPerOp: 168230746, BytesPerOp: 19228368, AllocsPerOp: 12543},
	"pt_decode":                        {NsPerOp: 24869778, BytesPerOp: 67692408, AllocsPerOp: 3394},
	"sharded_detection/sequential":     {NsPerOp: 14550595, BytesPerOp: 3527972, AllocsPerOp: 4133},
	"sharded_detection/shards=4":       {NsPerOp: 16448801, BytesPerOp: 6690992, AllocsPerOp: 5487},
}

// Perf runs the suite. Each benchmark is auto-scaled by testing.Benchmark
// (about a second each), so a full run takes tens of seconds.
func (h *Harness) Perf() (*PerfResult, error) {
	res := &PerfResult{}
	add := func(name string, f func(b *testing.B)) {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			f(b)
		})
		row := PerfRow{Current: PerfBench{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}}
		if base, ok := perfBaselines[name]; ok {
			base.Name = name
			row.Baseline = &base
			if row.Current.NsPerOp > 0 {
				row.Speedup = base.NsPerOp / row.Current.NsPerOp
			}
			if row.Current.AllocsPerOp > 0 {
				row.AllocReduction = float64(base.AllocsPerOp) / float64(row.Current.AllocsPerOp)
			}
		}
		res.Rows = append(res.Rows, row)
	}

	// parallel_analysis — BenchmarkParallelAnalysis: the full offline
	// pipeline over the 20-thread mysql trace, sequential vs fanned out.
	// Iterations past the first hit the decoded-path cache, exactly as
	// repeated analyses of one trace do in production use.
	mysql := workload.MySQL(1)
	mysqlTrace, err := core.TraceProgram(mysql.Program, core.TraceOptions{
		Kind: driver.ProRace, Period: 1000, Seed: 3, EnablePT: true, Machine: mysql.Machine})
	if err != nil {
		return nil, err
	}
	analysis := func(opts core.AnalysisOptions) func(b *testing.B) {
		return func(b *testing.B) {
			opts.PathCache = synthesis.NewCache(synthesis.DefaultCacheCapacity)
			for i := 0; i < b.N; i++ {
				if _, err := core.Analyze(mysql.Program, mysqlTrace.Trace, opts); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	add("parallel_analysis/sequential", analysis(core.AnalysisOptions{Mode: replay.ModeForwardBackward}))
	add("parallel_analysis/workers", analysis(core.AnalysisOptions{Mode: replay.ModeForwardBackward, Workers: -1}))
	add("parallel_analysis/workers+shards", analysis(core.AnalysisOptions{
		Mode: replay.ModeForwardBackward, Workers: -1, DetectShards: -1}))

	// segmented_analysis — the session API's cost contract: feeding the
	// trace as 8 segments through an Analyzer (merge + one deferred
	// analysis at Finish) vs the identical one-shot Analyze. The results
	// are byte-identical (the equivalence matrix proves it); this row
	// prices the segment accounting and re-merge the daemon path adds.
	add("segmented_analysis/oneshot", analysis(core.AnalysisOptions{Mode: replay.ModeForwardBackward}))
	segSize := int(mysqlTrace.Trace.TotalBytes()/8) + 1
	add("segmented_analysis/segments=8", analysis(core.AnalysisOptions{
		Mode: replay.ModeForwardBackward, SegmentSize: segSize}))

	// analyze_telemetry — BenchmarkAnalyzeTelemetryOff/On: the same full
	// analysis with telemetry disabled (nil registry — must match
	// parallel_analysis/sequential, the 0-extra-cost contract) vs
	// publishing every stage's series into a live registry (the enabled
	// overhead, dominated by one snapshot per analysis).
	add("analyze_telemetry/off", analysis(core.AnalysisOptions{Mode: replay.ModeForwardBackward}))
	add("analyze_telemetry/on", analysis(core.AnalysisOptions{
		Mode: replay.ModeForwardBackward, Telemetry: telemetry.New()}))

	// replay_forward_backward — BenchmarkReplayForwardBackward: the
	// reconstruction engine alone, synthesis prebuilt.
	bs := workload.PARSEC(1)[0]
	bsTrace, err := core.TraceProgram(bs.Program, core.TraceOptions{
		Kind: driver.ProRace, Period: 1000, Seed: 3, EnablePT: true, Machine: bs.Machine})
	if err != nil {
		return nil, err
	}
	bsTTS, err := synthesis.Synthesize(bs.Program, bsTrace.Trace)
	if err != nil {
		return nil, err
	}
	engine := replay.NewEngine(bs.Program, replay.Config{Mode: replay.ModeForwardBackward})
	add("replay_forward_backward", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, st := engine.ReconstructAll(bsTTS)
			if st.Total() == 0 {
				b.Fatal("nothing reconstructed")
			}
		}
	})

	// pt_decode — BenchmarkPTDecode: raw decode throughput, uncached.
	add("pt_decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ptdecode.DecodeAll(bs.Program, bsTrace.Trace.PT, 0); err != nil {
				b.Fatal(err)
			}
		}
	})

	// sharded_detection — BenchmarkShardedDetection: the detect phase over
	// a prepared extended trace, sequential FastTrack vs 4 shards.
	detTrace, err := core.TraceProgram(mysql.Program, core.TraceOptions{
		Kind: driver.ProRace, Period: 500, Seed: 3, EnablePT: true, Machine: mysql.Machine})
	if err != nil {
		return nil, err
	}
	detTTS, err := synthesis.Synthesize(mysql.Program, detTrace.Trace)
	if err != nil {
		return nil, err
	}
	detEngine := replay.NewEngine(mysql.Program, replay.Config{Mode: replay.ModeForwardBackward})
	accesses, _ := detEngine.ReconstructAll(detTTS)
	add("sharded_detection/sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			race.Detect(detTrace.Trace.Sync, accesses, race.Options{TrackAllocations: true})
		}
	})
	add("sharded_detection/shards=4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			race.DetectSharded(detTrace.Trace.Sync, accesses, 4, race.Options{TrackAllocations: true})
		}
	})
	return res, nil
}

// WriteJSON records the suite at path, indented for diffing.
func (r *PerfResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render formats the measurements against their baselines.
func (r *PerfResult) Render() string {
	t := report.NewTable("offline pipeline performance (vs pre-optimisation baseline)",
		"benchmark", "ns/op", "allocs/op", "base ns/op", "base allocs", "speedup", "allocs÷")
	for _, row := range r.Rows {
		c := row.Current
		if row.Baseline == nil {
			t.AddRow(c.Name, fmt.Sprintf("%.0f", c.NsPerOp), c.AllocsPerOp, "-", "-", "-", "-")
			continue
		}
		t.AddRow(c.Name, fmt.Sprintf("%.0f", c.NsPerOp), c.AllocsPerOp,
			fmt.Sprintf("%.0f", row.Baseline.NsPerOp), row.Baseline.AllocsPerOp,
			fmt.Sprintf("%.2fx", row.Speedup), fmt.Sprintf("%.2fx", row.AllocReduction))
	}
	return t.String()
}
