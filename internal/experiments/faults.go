package experiments

import (
	"fmt"

	"prorace/internal/core"
	"prorace/internal/faultinject"
	"prorace/internal/pmu/driver"
	"prorace/internal/replay"
	"prorace/internal/report"
)

// FaultCell is one (fault kind, rate) point of the robustness sweep.
type FaultCell struct {
	Kind faultinject.Kind
	Rate float64
	// Detected counts trials (across all bugs) where the planted race
	// survived the injected corruption.
	Detected int
	// CoverageLossPct is the mean PT coverage loss the decoder reported.
	CoverageLossPct float64
	// SyncAnomalies is the mean sync-log anomaly count per trial.
	SyncAnomalies float64
}

// FaultSweepResult measures detection recall under injected trace
// corruption: every Table 2 bug is traced cleanly, then analysed leniently
// with each fault kind at each rate. The clean row is the same lenient
// analysis with no faults — the recall ceiling the degraded cells are
// compared against.
type FaultSweepResult struct {
	Rates  []float64
	Trials int
	// Total is bugs x trials, the denominator for every recall figure.
	Total int
	// CleanDetected is the no-fault lenient baseline.
	CleanDetected int
	Cells         []FaultCell
}

// Recall returns a cell's detection fraction.
func (f *FaultSweepResult) Recall(kind faultinject.Kind, rate float64) float64 {
	for _, c := range f.Cells {
		if c.Kind == kind && c.Rate == rate {
			return float64(c.Detected) / float64(f.Total)
		}
	}
	return 0
}

// Render produces the recall-vs-loss table.
func (f *FaultSweepResult) Render() string {
	header := []string{"fault"}
	for _, r := range f.Rates {
		header = append(header, fmt.Sprintf("recall@%g%%", r*100))
	}
	header = append(header, "mean PT loss", "mean sync anomalies")
	tab := report.NewTable(fmt.Sprintf("Fault tolerance: detection recall under injected corruption (%d bug-trials per cell, clean baseline %.0f%%)",
		f.Total, 100*float64(f.CleanDetected)/float64(f.Total)), header...)
	for _, kind := range faultinject.Kinds {
		row := []any{string(kind)}
		var loss, anom float64
		for _, rate := range f.Rates {
			row = append(row, fmt.Sprintf("%.0f%%", 100*f.Recall(kind, rate)))
			for _, c := range f.Cells {
				if c.Kind == kind && c.Rate == rate {
					loss += c.CoverageLossPct
					anom += c.SyncAnomalies
				}
			}
		}
		row = append(row, fmt.Sprintf("%.1f%%", loss/float64(len(f.Rates))),
			fmt.Sprintf("%.1f", anom/float64(len(f.Rates))))
		tab.AddRow(row...)
	}
	return tab.String()
}

// FaultSweep runs the robustness experiment: how much trace corruption can
// the lenient offline analysis absorb before the planted Table 2 races stop
// being found? Each bug is traced once per trial (clean, period 100 — the
// paper's best-detection period) and the same trace is re-analysed under
// every fault kind and rate, so the only variable per cell is the injected
// damage.
func (h *Harness) FaultSweep() (*FaultSweepResult, error) {
	res := &FaultSweepResult{Rates: h.cfg.FaultRates, Trials: h.cfg.FaultTrials}
	type cellKey struct {
		kind faultinject.Kind
		rate float64
	}
	detected := map[cellKey]int{}
	loss := map[cellKey]float64{}
	anom := map[cellKey]float64{}

	const period = 100
	bugList := h.bugList()
	for _, bug := range bugList {
		built := bug.Build(h.cfg.Scale)
		for trial := 0; trial < res.Trials; trial++ {
			seed := h.cfg.Seed + int64(trial)*7919
			topts := core.TraceOptions{
				Kind: driver.ProRace, EnablePT: true,
				Period: period, Seed: seed, Machine: built.Workload.Machine,
			}
			tres, err := core.TraceProgram(built.Workload.Program, topts)
			if err != nil {
				return nil, fmt.Errorf("faults %s trace: %w", bug.ID, err)
			}
			analyze := func(spec *faultinject.Spec) (*core.AnalysisResult, error) {
				// The decode budget keeps resynced walks over heavily
				// corrupted streams from wandering for minutes; the bugs'
				// clean paths are far below it, so the baseline is unaffected.
				aopts := core.AnalysisOptions{
					Mode: replay.ModeForwardBackward, FaultSpec: spec,
					DecodeMaxSteps: 1_000_000,
				}
				return core.Analyze(built.Workload.Program, tres.Trace, aopts)
			}
			ar, err := analyze(nil)
			if err != nil {
				return nil, fmt.Errorf("faults %s clean analyze: %w", bug.ID, err)
			}
			if built.Detected(ar.Reports) {
				res.CleanDetected++
			}
			for _, kind := range faultinject.Kinds {
				for _, rate := range res.Rates {
					spec := &faultinject.Spec{Seed: seed, Faults: []faultinject.Fault{{Kind: kind, Rate: rate}}}
					ar, err := analyze(spec)
					if err != nil {
						return nil, fmt.Errorf("faults %s %s@%g: %w", bug.ID, kind, rate, err)
					}
					k := cellKey{kind, rate}
					if built.Detected(ar.Reports) {
						detected[k]++
					}
					loss[k] += ar.Degradation.CoverageLossPct()
					anom[k] += float64(ar.Degradation.SyncAnomalies)
				}
			}
		}
	}

	res.Total = len(bugList) * res.Trials
	for _, kind := range faultinject.Kinds {
		for _, rate := range res.Rates {
			k := cellKey{kind, rate}
			res.Cells = append(res.Cells, FaultCell{
				Kind: kind, Rate: rate, Detected: detected[k],
				CoverageLossPct: loss[k] / float64(res.Total),
				SyncAnomalies:   anom[k] / float64(res.Total),
			})
		}
	}
	return res, nil
}
