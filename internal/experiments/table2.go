package experiments

import (
	"fmt"

	"prorace/internal/bugs"
	"prorace/internal/core"
	"prorace/internal/pmu/driver"
	"prorace/internal/replay"
	"prorace/internal/report"
)

// Table2Row is one bug's detection counts.
type Table2Row struct {
	Bug bugs.Bug
	// RaceZ and ProRace map sampling period -> detections (out of Trials).
	RaceZ   map[uint64]int
	ProRace map[uint64]int
}

// Table2Result reproduces the paper's Table 2: per-bug detection
// probability under RaceZ and ProRace at periods 100/1K/10K, estimated
// over Trials traces per cell with uncontrolled (seed-varied) schedules.
type Table2Result struct {
	Periods []uint64
	Trials  int
	Rows    []Table2Row
}

// Average returns the arithmetic-mean detection probability per period for
// one system ("racez" or "prorace") — the paper's bottom row.
func (t *Table2Result) Average(system string) map[uint64]float64 {
	out := map[uint64]float64{}
	for _, period := range t.Periods {
		sum := 0.0
		for _, r := range t.Rows {
			m := r.ProRace
			if system == "racez" {
				m = r.RaceZ
			}
			sum += float64(m[period]) / float64(t.Trials)
		}
		out[period] = sum / float64(len(t.Rows))
	}
	return out
}

// Render produces the text table in the paper's layout.
func (t *Table2Result) Render() string {
	header := []string{"bug", "manifestation", "access type"}
	for _, p := range t.Periods {
		header = append(header, fmt.Sprintf("RaceZ@%d", p))
	}
	for _, p := range t.Periods {
		header = append(header, fmt.Sprintf("ProRace@%d", p))
	}
	tab := report.NewTable(fmt.Sprintf("Table 2: data race detection (%d traces per cell)", t.Trials), header...)
	for _, r := range t.Rows {
		row := []any{r.Bug.ID, r.Bug.Manifestation, r.Bug.Type.String()}
		for _, p := range t.Periods {
			row = append(row, r.RaceZ[p])
		}
		for _, p := range t.Periods {
			row = append(row, r.ProRace[p])
		}
		tab.AddRow(row...)
	}
	avgZ, avgP := t.Average("racez"), t.Average("prorace")
	row := []any{"(average)", "", ""}
	for _, p := range t.Periods {
		row = append(row, fmt.Sprintf("%.1f%%", avgZ[p]*100))
	}
	for _, p := range t.Periods {
		row = append(row, fmt.Sprintf("%.1f%%", avgP[p]*100))
	}
	tab.AddRow(row...)
	return tab.String()
}

// Table2 runs the detection experiment. Each trial uses a distinct
// scheduler seed — the "we did not control the thread schedules" of §7.4 —
// and both systems see the same seeds.
func (h *Harness) Table2() (*Table2Result, error) {
	res := &Table2Result{Periods: h.cfg.Table2Periods, Trials: h.cfg.Table2Trials}
	for _, bug := range h.bugList() {
		built := bug.Build(h.cfg.Scale)
		row := Table2Row{Bug: bug, RaceZ: map[uint64]int{}, ProRace: map[uint64]int{}}
		for _, period := range res.Periods {
			for trial := 0; trial < res.Trials; trial++ {
				seed := h.cfg.Seed + int64(trial)*7919
				ok, err := detectOnce(built, period, seed, true)
				if err != nil {
					return nil, fmt.Errorf("table2 %s prorace @%d: %w", bug.ID, period, err)
				}
				if ok {
					row.ProRace[period]++
				}
				ok, err = detectOnce(built, period, seed, false)
				if err != nil {
					return nil, fmt.Errorf("table2 %s racez @%d: %w", bug.ID, period, err)
				}
				if ok {
					row.RaceZ[period]++
				}
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// bugList applies the BugSubset filter to Table 2's bugs.
func (h *Harness) bugList() []bugs.Bug {
	all := bugs.All()
	if len(h.cfg.BugSubset) == 0 {
		return all
	}
	keep := map[string]bool{}
	for _, id := range h.cfg.BugSubset {
		keep[id] = true
	}
	var out []bugs.Bug
	for _, b := range all {
		if keep[b.ID] {
			out = append(out, b)
		}
	}
	return out
}

// detectOnce runs one trace + analysis and checks the planted race.
func detectOnce(built *bugs.Built, period uint64, seed int64, prorace bool) (bool, error) {
	topts := core.TraceOptions{Period: period, Seed: seed, Machine: built.Workload.Machine}
	var aopts core.AnalysisOptions
	if prorace {
		topts.Kind = driver.ProRace
		topts.EnablePT = true
		aopts.Mode = replay.ModeForwardBackward
	} else {
		topts.Kind = driver.Vanilla
		aopts.Mode = replay.ModeBasicBlock
	}
	res, err := core.Run(built.Workload.Program, topts, aopts)
	if err != nil {
		return false, err
	}
	return built.Detected(res.AnalysisResult.Reports), nil
}
