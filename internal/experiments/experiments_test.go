package experiments

import (
	"strings"
	"testing"

	"prorace/internal/faultinject"
)

// tinyConfig keeps experiment tests fast: two workloads, two periods.
func tinyConfig() Config {
	return Config{
		Scale:         1,
		Periods:       []uint64{1000, 10000},
		Seed:          1,
		Table2Trials:  3,
		Table2Periods: []uint64{100, 1000},
		Workloads:     []string{"blackscholes", "apache"},
		BugSubset:     []string{"pfscan", "apache-21287"},
	}
}

func TestQuickAndFullConfigs(t *testing.T) {
	q := Quick()
	if q.Table2Trials != 10 || len(q.Periods) != 5 {
		t.Errorf("quick config: %+v", q)
	}
	f := Full()
	if f.Table2Trials != 100 || f.Scale <= q.Scale {
		t.Errorf("full config: %+v", f)
	}
}

func TestFigure6And8ShareRuns(t *testing.T) {
	h := NewHarness(tinyConfig())
	f6, err := h.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	f8, err := h.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	// Only blackscholes matched the PARSEC subset.
	if len(f6.PerWorkload) != 1 || len(f8.PerWorkload) != 1 {
		t.Fatalf("subset filter failed: %v %v", f6.PerWorkload, f8.PerWorkload)
	}
	// Both figures come from the same cached sweep: identical Points.
	if len(f6.Points) != len(f8.Points) {
		t.Error("figures 6 and 8 did not share the sweep")
	}
	// Overhead grows as the period shrinks.
	bs := f6.PerWorkload["blackscholes"]
	if bs[0] < bs[1] {
		t.Errorf("overhead at P=1000 (%v) below P=10000 (%v)", bs[0], bs[1])
	}
	// Renders include the geomean row.
	if !strings.Contains(f6.Render(), "geomean") || !strings.Contains(f8.Render(), "PT share") {
		t.Error("render incomplete")
	}
}

func TestFigure7And9RealApps(t *testing.T) {
	h := NewHarness(tinyConfig())
	f7, err := h.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	f9, err := h.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f7.PerWorkload["apache"]; !ok {
		t.Fatal("apache missing")
	}
	// apache is network-bound: tiny overhead at both periods.
	for _, o := range f7.PerWorkload["apache"] {
		if o > 0.05 {
			t.Errorf("apache overhead %.2f%% too high for a net-bound app", o*100)
		}
	}
	// Trace rate grows with sampling density.
	mb := f9.PerWorkload["apache"]
	if mb[0] < mb[1] {
		t.Errorf("trace rate at P=1000 (%v) below P=10000 (%v)", mb[0], mb[1])
	}
}

func TestFigure10VanillaDominatesProRace(t *testing.T) {
	h := NewHarness(tinyConfig())
	f10, err := h.Figure10()
	if err != nil {
		t.Fatal(err)
	}
	for i := range f10.Periods {
		if f10.ParsecVanilla[i] <= f10.ParsecProRace[i] {
			t.Errorf("P=%d: vanilla %.3f <= prorace %.3f",
				f10.Periods[i], f10.ParsecVanilla[i], f10.ParsecProRace[i])
		}
	}
	if !strings.Contains(f10.Render(), "vanilla") {
		t.Error("render incomplete")
	}
}

func TestTable2SubsetAndAverages(t *testing.T) {
	h := NewHarness(tinyConfig())
	res, err := h.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (subset)", len(res.Rows))
	}
	// The pcrel bug must be detected by ProRace in every trial.
	for _, row := range res.Rows {
		if row.Bug.ID != "pfscan" {
			continue
		}
		for _, p := range res.Periods {
			if row.ProRace[p] != res.Trials {
				t.Errorf("pfscan @%d: %d/%d", p, row.ProRace[p], res.Trials)
			}
		}
	}
	avgP := res.Average("prorace")
	avgZ := res.Average("racez")
	for _, p := range res.Periods {
		if avgP[p] < avgZ[p] {
			t.Errorf("P=%d: prorace average %.2f below racez %.2f", p, avgP[p], avgZ[p])
		}
		if avgP[p] < 0 || avgP[p] > 1 {
			t.Errorf("average out of range: %v", avgP[p])
		}
	}
	out := res.Render()
	if !strings.Contains(out, "(average)") || !strings.Contains(out, "pfscan") {
		t.Error("render incomplete")
	}
}

func TestFigure11Ordering(t *testing.T) {
	cfg := tinyConfig()
	cfg.BugSubset = []string{"pfscan", "mysql-3596"}
	h := NewHarness(cfg)
	res, err := h.Figure11()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The paper's ordering: basic-block < forward <= forward+backward.
	if !(res.AvgBB < res.AvgFwd) {
		t.Errorf("bb %.1f not below forward %.1f", res.AvgBB, res.AvgFwd)
	}
	if res.AvgFB < res.AvgFwd {
		t.Errorf("fwd+bwd %.1f below forward %.1f", res.AvgFB, res.AvgFwd)
	}
	if !strings.Contains(res.Render(), "(average)") {
		t.Error("render incomplete")
	}
}

func TestFigure12Breakdown(t *testing.T) {
	cfg := tinyConfig()
	cfg.BugSubset = []string{"pfscan"}
	h := NewHarness(cfg)
	res, err := h.Figure12()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	total := res.DecodeFrac + res.ReconstructFrac + res.DetectFrac
	if total < 0.999 || total > 1.001 {
		t.Errorf("breakdown fractions sum to %v", total)
	}
	// Reconstruction dominates, detection is small (paper: 64.7% / 1.6%).
	if res.ReconstructFrac < res.DetectFrac {
		t.Errorf("reconstruction (%.2f) below detection (%.2f)", res.ReconstructFrac, res.DetectFrac)
	}
	if res.Rows[0].PerExecSecond <= 0 {
		t.Error("per-exec-second cost missing")
	}
	if !strings.Contains(res.Render(), "breakdown") {
		t.Error("render incomplete")
	}
}

func TestTable1Rendering(t *testing.T) {
	out := Table1(1)
	for _, app := range []string{"apache", "cherokee", "mysql", "memcached",
		"transmission", "pfscan", "pbzip2", "aget"} {
		if !strings.Contains(out, app) {
			t.Errorf("Table 1 missing %s", app)
		}
	}
	if !strings.Contains(out, "38") {
		t.Error("cherokee's 38 threads missing")
	}
}

func TestRelatedWorkComparison(t *testing.T) {
	cfg := tinyConfig()
	cfg.Workloads = []string{"streamcluster"}
	cfg.Table2Trials = 4
	h := NewHarness(cfg)
	res, err := h.RelatedWork()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 systems", len(res.Rows))
	}
	byName := map[string]RelatedWorkRow{}
	for _, r := range res.Rows {
		byName[r.System] = r
	}
	// The §2 story: ProRace's CPU overhead is far below the
	// instrumentation-based samplers'.
	if byName["prorace"].CPUOverhead >= byName["literace"].CPUOverhead {
		t.Errorf("prorace %.2f not below literace %.2f",
			byName["prorace"].CPUOverhead, byName["literace"].CPUOverhead)
	}
	if byName["prorace"].CPUOverhead >= byName["pacer"].CPUOverhead {
		t.Errorf("prorace %.2f not below pacer %.2f",
			byName["prorace"].CPUOverhead, byName["pacer"].CPUOverhead)
	}
	// And its detection beats the equally-cheap samplers.
	if byName["prorace"].Detection <= byName["datacollider"].Detection &&
		byName["prorace"].Detection <= byName["racez"].Detection {
		t.Errorf("prorace detection %.2f shows no advantage", byName["prorace"].Detection)
	}
	// LiteRace on the network-bound server stays at a few percent
	// (paper: 2-4%).
	if byName["literace"].ServerOverhead > 0.10 {
		t.Errorf("literace apache overhead %.1f%%", byName["literace"].ServerOverhead*100)
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}

func TestFaultSweepQuick(t *testing.T) {
	cfg := Quick()
	cfg.BugSubset = []string{"apache-25520"}
	cfg.FaultTrials = 1
	cfg.FaultRates = []float64{0.1}
	h := NewHarness(cfg)
	f, err := h.FaultSweep()
	if err != nil {
		t.Fatal(err)
	}
	if f.Total != 1 {
		t.Fatalf("total = %d, want 1", f.Total)
	}
	if f.CleanDetected != 1 {
		t.Fatalf("clean baseline missed the planted race")
	}
	if len(f.Cells) != len(faultinject.Kinds) {
		t.Fatalf("cells = %d, want %d", len(f.Cells), len(faultinject.Kinds))
	}
	out := f.Render()
	if !strings.Contains(out, "ptflip") || !strings.Contains(out, "recall@10%") {
		t.Fatalf("render missing expected columns:\n%s", out)
	}
}
