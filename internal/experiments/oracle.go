package experiments

import (
	"fmt"

	"prorace/internal/oracle"
	"prorace/internal/report"
)

// OracleResult is the ground-truth differential sweep: generated concurrent
// programs scored against the exact happens-before oracle at each sampling
// period (DESIGN.md §11).
type OracleResult struct {
	StartSeed  int64
	Seeds      int
	Aggregates []oracle.Aggregate
	Violations []string
}

// Render produces the recall-vs-period table for EXPERIMENTS.md.
func (o *OracleResult) Render() string {
	tab := report.NewTable(
		fmt.Sprintf("Ground-truth oracle: recall and precision vs sampling period (%d seeded programs, seeds %d..%d)",
			o.Seeds, o.StartSeed, o.StartSeed+int64(o.Seeds)-1),
		"period", "racy execs", "GT racy addrs", "addr recall", "GT racy pairs", "pair recall", "false pairs", "false addrs", "witnessed/true_positive")
	for _, a := range o.Aggregates {
		tab.AddRow(
			fmt.Sprintf("%d", a.Period),
			fmt.Sprintf("%d", a.RacySeeds),
			fmt.Sprintf("%d", a.GTAddrs),
			fmt.Sprintf("%.1f%%", 100*a.AddrRecall()),
			fmt.Sprintf("%d", a.GTPairs),
			fmt.Sprintf("%.1f%%", 100*a.PairRecall()),
			fmt.Sprintf("%d", a.FalsePairs),
			fmt.Sprintf("%d", a.FalseAddrs),
			fmt.Sprintf("%d/%d (%.2f)", a.WitnessedPairs, a.TruePairs, a.WitnessRatio()),
		)
	}
	s := tab.String()
	if len(o.Violations) == 0 {
		s += fmt.Sprintf("invariants: all hold (zero false positives, recall@1=100%%, monotone recall, deterministic reports, every true positive witnessed)\n")
	} else {
		s += fmt.Sprintf("INVARIANT VIOLATIONS (%d):\n", len(o.Violations))
		for _, v := range o.Violations {
			s += "  " + v + "\n"
		}
	}
	return s
}

// Oracle runs the differential soak at the configured scale. Violations are
// reported in the rendered table and returned as an error, so a CI smoke
// run fails loudly.
func (h *Harness) Oracle() (*OracleResult, error) {
	cfg := h.cfg
	sr, err := oracle.Soak(oracle.SoakConfig{
		StartSeed:        cfg.Seed,
		Seeds:            cfg.OracleSeeds,
		Periods:          cfg.OraclePeriods,
		DeterminismEvery: cfg.OracleDeterminismEvery,
		Witness:          true,
	})
	if err != nil {
		return nil, err
	}
	res := &OracleResult{
		StartSeed:  sr.StartSeed,
		Seeds:      sr.Seeds,
		Aggregates: sr.Aggregates,
		Violations: sr.Violations,
	}
	if len(sr.Violations) > 0 {
		return res, fmt.Errorf("oracle: %d invariant violations (first: %s)", len(sr.Violations), sr.Violations[0])
	}
	return res, nil
}
