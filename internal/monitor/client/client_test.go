package client

import (
	"errors"
	"fmt"
	mrand "math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"prorace/internal/telemetry"
)

// flakyServer fails the first n requests per URL+body identity with the
// given status before finally accepting, and records every body it
// ingested (202 only).
type flakyServer struct {
	mu         sync.Mutex
	failures   int
	status     int
	retryAfter string
	seen       map[string]int // request key -> attempts
	ingested   []string       // keys that got a 202
}

func (s *flakyServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := r.URL.String()
	s.seen[key]++
	if s.seen[key] <= s.failures {
		if s.retryAfter != "" {
			w.Header().Set("Retry-After", s.retryAfter)
		}
		http.Error(w, "induced failure", s.status)
		return
	}
	s.ingested = append(s.ingested, key)
	w.WriteHeader(http.StatusAccepted)
}

func newTestClient(t *testing.T, url string, reg *telemetry.Registry) (*Client, *[]time.Duration) {
	t.Helper()
	var slept []time.Duration
	c, err := New(Config{
		BaseURL:        url,
		Tenant:         "t",
		RequestTimeout: 5 * time.Second,
		InitialBackoff: 10 * time.Millisecond,
		MaxBackoff:     80 * time.Millisecond,
		MaxAttempts:    5,
		Jitter:         0.2,
		Telemetry:      reg,
		Rand:           mrand.New(mrand.NewSource(1)),
		Sleep:          func(d time.Duration) { slept = append(slept, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, &slept
}

func TestRetriesUntilAccepted(t *testing.T) {
	fs := &flakyServer{failures: 2, status: http.StatusInternalServerError, seen: map[string]int{}}
	srv := httptest.NewServer(fs)
	defer srv.Close()
	reg := telemetry.New()
	c, slept := newTestClient(t, srv.URL, reg)
	if err := c.SendSegment([]byte("frame-a")); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Attempts != 3 || st.Retries != 2 {
		t.Fatalf("stats = %+v, want 3 attempts / 2 retries", st)
	}
	if len(*slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(*slept))
	}
	// Exponential: the second delay grows from the first (both jittered
	// within ±20% of 10ms and 20ms).
	if (*slept)[1] <= (*slept)[0] {
		t.Fatalf("backoff did not grow: %v", *slept)
	}
	if got := reg.Snapshot().Counters["prorace_client_retries_total"]; got != 2 {
		t.Fatalf("prorace_client_retries_total = %d", got)
	}
	if len(fs.ingested) != 1 {
		t.Fatalf("server ingested %d times, want 1", len(fs.ingested))
	}
}

func TestRetryAfterHonoured(t *testing.T) {
	fs := &flakyServer{failures: 1, status: http.StatusTooManyRequests, retryAfter: "1", seen: map[string]int{}}
	srv := httptest.NewServer(fs)
	defer srv.Close()
	reg := telemetry.New()
	c, slept := newTestClient(t, srv.URL, reg)
	if err := c.SendSegment([]byte("frame-b")); err != nil {
		t.Fatal(err)
	}
	if len(*slept) != 1 {
		t.Fatalf("slept %d times, want 1", len(*slept))
	}
	// The server said 1s; the jittered delay must track it, not the 10ms
	// backoff schedule.
	if d := (*slept)[0]; d < 800*time.Millisecond || d > 1200*time.Millisecond {
		t.Fatalf("Retry-After delay = %v, want ~1s", d)
	}
	if c.Stats().Throttled != 1 {
		t.Fatalf("throttled = %d, want 1", c.Stats().Throttled)
	}
	if got := reg.Snapshot().Counters["prorace_client_throttled_total"]; got != 1 {
		t.Fatalf("prorace_client_throttled_total = %d", got)
	}
}

func TestPermanentRejectionDoesNotRetry(t *testing.T) {
	fs := &flakyServer{failures: 99, status: http.StatusBadRequest, seen: map[string]int{}}
	srv := httptest.NewServer(fs)
	defer srv.Close()
	c, slept := newTestClient(t, srv.URL, telemetry.New())
	err := c.SendSegment([]byte("frame-c"))
	if err == nil {
		t.Fatal("400 did not fail the send")
	}
	var perm *permanentError
	if !errors.As(err, &perm) {
		t.Fatalf("error type = %T (%v), want permanentError", err, err)
	}
	if c.Stats().Attempts != 1 || len(*slept) != 0 {
		t.Fatalf("permanent rejection retried: %+v", c.Stats())
	}
}

func TestGiveUpAfterMaxAttempts(t *testing.T) {
	fs := &flakyServer{failures: 99, status: http.StatusServiceUnavailable, seen: map[string]int{}}
	srv := httptest.NewServer(fs)
	defer srv.Close()
	reg := telemetry.New()
	c, _ := newTestClient(t, srv.URL, reg)
	err := c.SendSegment([]byte("frame-d"))
	if err == nil || !strings.Contains(err.Error(), "giving up") {
		t.Fatalf("err = %v, want give-up", err)
	}
	if c.Stats().Attempts != 5 {
		t.Fatalf("attempts = %d, want MaxAttempts", c.Stats().Attempts)
	}
	if got := reg.Snapshot().Counters["prorace_client_giveups_total"]; got != 1 {
		t.Fatalf("prorace_client_giveups_total = %d", got)
	}
}

func TestTransportErrorsRetry(t *testing.T) {
	// A server that does not exist: every attempt is a transport error.
	c, slept := newTestClient(t, "http://127.0.0.1:1", telemetry.New())
	if err := c.SendSegment([]byte("x")); err == nil {
		t.Fatal("send to dead address succeeded")
	}
	if c.Stats().Attempts != 5 || len(*slept) != 4 {
		t.Fatalf("transport errors not retried: %+v", c.Stats())
	}
}

func TestSegmentKeyStableWithinRunFreshAcrossRuns(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	c1, _ := newTestClient(t, srv.URL, nil)
	c2, _ := newTestClient(t, srv.URL, nil)
	frame := []byte("the-frame")
	if c1.SegmentKey(frame) != c1.SegmentKey(frame) {
		t.Fatal("key not stable within a run")
	}
	if c1.SegmentKey(frame) == c2.SegmentKey(frame) {
		t.Fatal("two runs share a key: deliberate re-sends would be deduplicated")
	}
	if c1.SegmentKey(frame) == c1.SegmentKey([]byte("other")) {
		t.Fatal("distinct frames share a key")
	}
}

func TestSendSegmentCarriesTenantAndKey(t *testing.T) {
	var gotURL string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotURL = r.URL.String()
		w.WriteHeader(http.StatusAccepted)
	}))
	defer srv.Close()
	c, _ := newTestClient(t, srv.URL, nil)
	frame := []byte("f")
	if err := c.SendSegment(frame); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("/ingest?key=%s&tenant=t", c.SegmentKey(frame))
	if gotURL != want {
		t.Fatalf("request URL = %q, want %q", gotURL, want)
	}
}

func TestSendSegmentMintsLineage(t *testing.T) {
	var mu sync.Mutex
	var headers []string
	fail := false
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		headers = append(headers, r.Header.Get(HeaderLineage))
		failNow := fail
		fail = false
		mu.Unlock()
		if failNow {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusAccepted)
	}))
	defer srv.Close()
	c, _ := newTestClient(t, srv.URL, nil)
	if err := c.UploadProgram([]byte("image")); err != nil {
		t.Fatal(err)
	}
	if err := c.SendSegment([]byte("one")); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	fail = true
	mu.Unlock()
	if err := c.SendSegment([]byte("two")); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(headers) != 4 {
		t.Fatalf("saw %d requests, want 4 (program + seg + failed seg + retry)", len(headers))
	}
	// Program uploads carry no lineage; segments carry sequential IDs
	// scoped by the run nonce.
	if headers[0] != "" {
		t.Fatalf("program upload carried lineage %q", headers[0])
	}
	if !strings.HasSuffix(headers[1], "-seq-1") || !strings.HasSuffix(headers[2], "-seq-2") {
		t.Fatalf("segment lineage IDs = %q, %q", headers[1], headers[2])
	}
	// The retry of segment two reuses its ID — one history per segment.
	if headers[3] != headers[2] {
		t.Fatalf("retry minted a fresh lineage: %q vs %q", headers[3], headers[2])
	}
	if headers[1] == headers[2] {
		t.Fatal("distinct segments share a lineage ID")
	}
}

func TestParseRetryAfter(t *testing.T) {
	if d := parseRetryAfter("3"); d != 3*time.Second {
		t.Fatalf("seconds form = %v", d)
	}
	if d := parseRetryAfter(""); d != 0 {
		t.Fatalf("absent = %v", d)
	}
	if d := parseRetryAfter("garbage"); d != 0 {
		t.Fatalf("garbage = %v", d)
	}
	future := time.Now().Add(30 * time.Second).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(future); d < 25*time.Second || d > 30*time.Second {
		t.Fatalf("http-date form = %v", d)
	}
	past := time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(past); d != 0 {
		t.Fatalf("past date = %v", d)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Tenant: "t"}); err == nil {
		t.Fatal("missing BaseURL accepted")
	}
	if _, err := New(Config{BaseURL: "http://x"}); err == nil {
		t.Fatal("missing Tenant accepted")
	}
}
