// Package client is the producer-side ingest library for proraced: it
// ships PRSG segment frames (and program images) to a daemon over HTTP
// with the retry discipline a flaky production network needs — request
// timeouts, exponential backoff with jitter, a bounded retry budget,
// Retry-After honoured on 429/503, and idempotent resends so a retry of a
// request whose acknowledgement was lost is never double-ingested.
//
// Idempotency works by keying every segment send: the key is the FNV-1a
// checksum of the frame combined with a per-Client run nonce. Retries of
// one frame reuse the key (the daemon acknowledges without re-ingesting);
// a deliberate re-send of the same run through a fresh Client gets a
// fresh nonce and is ingested again (bumping occurrence counts), which is
// exactly the split production wants.
package client

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	mrand "math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"prorace/internal/telemetry"
)

// Config parameterises a Client. The zero value of every field is
// replaced by a production-sensible default in New.
type Config struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:7077".
	BaseURL string
	// Tenant tags every segment this client sends.
	Tenant string
	// HTTPClient overrides the transport (tests). Its Timeout is ignored;
	// RequestTimeout governs.
	HTTPClient *http.Client
	// RequestTimeout bounds each individual HTTP attempt. Default 30s.
	RequestTimeout time.Duration
	// InitialBackoff is the delay after the first failure. Default 100ms.
	InitialBackoff time.Duration
	// MaxBackoff caps the exponential growth. Default 5s.
	MaxBackoff time.Duration
	// Multiplier is the backoff growth factor. Default 2.
	Multiplier float64
	// Jitter spreads each delay uniformly over ±Jitter of itself so a
	// fleet of producers does not retry in lockstep. Default 0.2.
	Jitter float64
	// MaxAttempts bounds tries per request (first attempt included).
	// Default 10.
	MaxAttempts int
	// RetryBudget bounds the total time spent retrying one request,
	// whatever MaxAttempts says. Default 2m.
	RetryBudget time.Duration
	// Telemetry receives the prorace_client_* series (nil = disabled).
	Telemetry *telemetry.Registry
	// Rand injects determinism into jitter (tests). Default seeded from
	// crypto/rand.
	Rand *mrand.Rand
	// Sleep overrides the backoff sleep (tests). Default time.Sleep.
	Sleep func(time.Duration)
	// Logf, when set, receives one line per retry (operator visibility).
	Logf func(format string, args ...any)
}

// Stats counts what the client did, for end-of-run reporting.
type Stats struct {
	Requests  int // requests attempted at least once
	Attempts  int // HTTP attempts, retries included
	Retries   int // attempts beyond the first
	Throttled int // 429/503 responses that carried Retry-After
}

// HeaderLineage is the request header carrying the producer-minted
// segment lineage ID; the daemon persists it in the WAL record and keys
// the segment's stage-transition history on it.
const HeaderLineage = "X-Prorace-Lineage"

// Client is a retrying ingest producer. Not safe for concurrent use (a
// producer streams its segments in order).
type Client struct {
	cfg   Config
	http  *http.Client
	nonce string
	seq   uint64
	stats Stats
}

// New validates the config and builds a Client with a fresh run nonce.
func New(cfg Config) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("client: BaseURL is required")
	}
	if cfg.Tenant == "" {
		return nil, fmt.Errorf("client: Tenant is required")
	}
	cfg.BaseURL = strings.TrimRight(cfg.BaseURL, "/")
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.InitialBackoff <= 0 {
		cfg.InitialBackoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	if cfg.Multiplier < 1 {
		cfg.Multiplier = 2
	}
	if cfg.Jitter < 0 || cfg.Jitter >= 1 {
		cfg.Jitter = 0.2
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 10
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = 2 * time.Minute
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	if cfg.Rand == nil {
		var seed [8]byte
		rand.Read(seed[:])
		cfg.Rand = mrand.New(mrand.NewSource(int64(uint64(seed[0])<<56 | uint64(seed[1])<<48 |
			uint64(seed[2])<<40 | uint64(seed[3])<<32 | uint64(seed[4])<<24 |
			uint64(seed[5])<<16 | uint64(seed[6])<<8 | uint64(seed[7]))))
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	var nonce [8]byte
	rand.Read(nonce[:])
	return &Client{cfg: cfg, http: hc, nonce: hex.EncodeToString(nonce[:])}, nil
}

// Stats returns what the client has done so far.
func (c *Client) Stats() Stats { return c.stats }

// SegmentKey computes the idempotency key this client would send for a
// frame: FNV-1a of the frame, scoped by the client's run nonce.
func (c *Client) SegmentKey(frame []byte) string {
	h := fnv.New64a()
	h.Write(frame)
	return fmt.Sprintf("%s-%016x", c.nonce, h.Sum64())
}

// UploadProgram ships one PRIM program image (idempotent by nature — the
// daemon re-registers the same image harmlessly — so retries are safe).
func (c *Client) UploadProgram(image []byte) error {
	return c.post("/program", nil, "", image)
}

// SendSegment ships one PRSG frame, retrying with backoff until the
// daemon acknowledges it, the attempt limit is hit, or a permanent
// rejection (4xx other than 429) says retrying cannot help. Each segment
// is sent with a freshly minted lineage ID (nonce-scoped, sequential);
// retries of one frame reuse both the idempotency key and the lineage ID,
// so the daemon's lineage ring sees exactly one history per segment.
func (c *Client) SendSegment(frame []byte) error {
	q := url.Values{}
	q.Set("tenant", c.cfg.Tenant)
	q.Set("key", c.SegmentKey(frame))
	c.seq++
	return c.post("/ingest", q, fmt.Sprintf("%s-seq-%d", c.nonce, c.seq), frame)
}

// permanentError is a rejection retrying cannot fix (corrupt frame,
// unknown program, oversized body).
type permanentError struct{ msg string }

func (e *permanentError) Error() string { return e.msg }

// post runs the retry loop for one request.
func (c *Client) post(path string, q url.Values, lineage string, body []byte) error {
	u := c.cfg.BaseURL + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	c.stats.Requests++
	tel := c.cfg.Telemetry
	tel.Counter("prorace_client_requests_total", "Ingest-client requests issued (segments + program uploads).").Inc()
	deadline := time.Now().Add(c.cfg.RetryBudget)
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.stats.Retries++
			tel.Counter("prorace_client_retries_total", "Ingest-client attempts beyond the first.").Inc()
		}
		c.stats.Attempts++
		retryAfter, err := c.attempt(u, lineage, body)
		if err == nil {
			return nil
		}
		lastErr = err
		var perm *permanentError
		if ok := asPermanent(err, &perm); ok {
			tel.Counter("prorace_client_rejected_total", "Ingest-client requests permanently rejected (4xx).").Inc()
			return err
		}
		delay := c.backoff(attempt)
		if retryAfter > 0 {
			// The server said when to come back; believe it (still
			// jittered so a fleet does not return in lockstep).
			c.stats.Throttled++
			tel.Counter("prorace_client_throttled_total", "429/503 responses whose Retry-After was honoured.").Inc()
			delay = c.jitter(retryAfter)
		}
		if attempt == c.cfg.MaxAttempts-1 || time.Now().Add(delay).After(deadline) {
			break
		}
		if c.cfg.Logf != nil {
			c.cfg.Logf("retrying %s in %v (attempt %d/%d): %v", path, delay.Round(time.Millisecond), attempt+1, c.cfg.MaxAttempts, err)
		}
		c.cfg.Sleep(delay)
	}
	tel.Counter("prorace_client_giveups_total", "Requests abandoned after exhausting the retry budget.").Inc()
	return fmt.Errorf("client: giving up on %s after %d attempts: %w", path, c.stats.Attempts, lastErr)
}

func asPermanent(err error, target **permanentError) bool {
	p, ok := err.(*permanentError)
	if ok {
		*target = p
	}
	return ok
}

// attempt performs one HTTP POST. It returns a server-directed retry
// delay when the response carried Retry-After.
func (c *Client) attempt(u, lineage string, body []byte) (time.Duration, error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		return 0, &permanentError{msg: err.Error()}
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if lineage != "" {
		req.Header.Set(HeaderLineage, lineage)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, err // transport error or timeout: retryable
	}
	defer resp.Body.Close()
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
	switch {
	case resp.StatusCode < 300:
		return 0, nil
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
		return parseRetryAfter(resp.Header.Get("Retry-After")), fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(msg))
	case resp.StatusCode >= 500:
		return 0, fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(msg))
	default:
		return 0, &permanentError{msg: fmt.Sprintf("%s: %s", resp.Status, bytes.TrimSpace(msg))}
	}
}

// parseRetryAfter reads seconds or an HTTP date; 0 means absent/unusable.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// backoff computes the jittered exponential delay for a just-failed
// attempt (0-based).
func (c *Client) backoff(attempt int) time.Duration {
	d := float64(c.cfg.InitialBackoff) * math.Pow(c.cfg.Multiplier, float64(attempt))
	if d > float64(c.cfg.MaxBackoff) {
		d = float64(c.cfg.MaxBackoff)
	}
	return c.jitter(time.Duration(d))
}

func (c *Client) jitter(d time.Duration) time.Duration {
	if c.cfg.Jitter == 0 || d <= 0 {
		return d
	}
	f := 1 + c.cfg.Jitter*(2*c.cfg.Rand.Float64()-1)
	return time.Duration(float64(d) * f)
}
