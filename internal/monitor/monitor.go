package monitor

import (
	"crypto/rand"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"prorace/internal/bugs"
	"prorace/internal/core"
	"prorace/internal/faultinject"
	"prorace/internal/prog"
	"prorace/internal/telemetry"
	"prorace/internal/tracefmt"
	"prorace/internal/workload"
)

// Classified ingest failures. The HTTP layer maps them to status codes;
// in-process callers can errors.Is against them.
var (
	// ErrCorruptSegment reports a frame that failed PRSG decoding. The
	// tenant's degradation record absorbs it; the window is untouched.
	ErrCorruptSegment = errors.New("monitor: corrupt segment")
	// ErrQueueFull reports admission rejection: the tenant's pending queue
	// is at capacity and the segment was dropped (the producer retries).
	ErrQueueFull = errors.New("monitor: tenant queue full")
	// ErrClosed reports ingestion into a shut-down monitor.
	ErrClosed = errors.New("monitor: closed")
	// ErrUnknownProgram reports a segment naming a program the daemon
	// cannot resolve (no uploaded image, no built-in workload or bug).
	ErrUnknownProgram = errors.New("monitor: unknown program")
	// ErrDurability reports a journal append failure: the segment was NOT
	// accepted (the durability contract could not be met) and the producer
	// should retry, ideally after the operator fixes the disk.
	ErrDurability = errors.New("monitor: journal append failed")
)

// Config parameterises a Monitor.
type Config struct {
	// Window is how many most-recent segments of each tenant's stream are
	// re-analysed per round (the rolling window). Default 8.
	Window int
	// QueueDepth bounds each tenant's pending (ingested but not yet
	// analysed) segments; beyond it Ingest rejects with ErrQueueFull.
	// Default 32.
	QueueDepth int
	// Workers is the analysis worker-pool size. 0 means synchronous:
	// Ingest runs the analysis round inline before returning
	// (deterministic, used by tests and small deployments).
	Workers int
	// StorePath is the persistent report store location ("" = in memory).
	StorePath string
	// WALDir enables the write-ahead segment journal: every accepted
	// frame is journaled (fsynced per Fsync) before Ingest returns, and a
	// restarted Monitor replays the unanalyzed suffix. "" disables
	// durability (the PR-6 behaviour).
	WALDir string
	// Fsync is the journal fsync policy (zero value = FsyncAlways).
	Fsync FsyncPolicy
	// WindowMaxAge retires window segments older than this by wall clock
	// (0 = never). Active tenants retire at round start; idle tenants need
	// a periodic Sweep call.
	WindowMaxAge time.Duration
	// MaxBodyBytes bounds ingest/program HTTP bodies. Default 256 MiB.
	MaxBodyBytes int64
	// DedupKeys is how many recent idempotency keys each tenant retains
	// for duplicate-resend detection. Default 512.
	DedupKeys int
	// LineageDepth bounds each tenant's lineage ring (how many recent
	// segments' stage histories are reconstructable). Default 256.
	LineageDepth int
	// Analysis configures each window's analysis round. Telemetry and
	// MetricsAddr inside it are ignored — the monitor owns telemetry.
	Analysis core.AnalysisOptions
	// Telemetry receives the proraced_* series (nil disables).
	Telemetry *telemetry.Registry
	// Alert configures the first-seen race webhook (zero URL disables).
	Alert AlertConfig
	// Now overrides the clock (tests).
	Now func() time.Time
	// Logger receives structured operational events (store salvage, journal
	// damage, alert delivery). Defaults to a text handler on stderr.
	Logger *slog.Logger
}

// ingestSeg is one accepted segment riding through pending and window:
// the decoded trace slice, its ingest time (window-age retirement), its
// journal position (idx = journal index + 1; 0 = not journaled), and its
// lineage ID for stage-transition recording.
type ingestSeg struct {
	seg *tracefmt.Trace
	at  time.Time
	idx uint64
	lin string
}

// tenant is one producer's stream state. Lifecycle: Ingest appends decoded
// segments to pending under mu; a worker (holding the busy claim via the
// monitor's queue) drains pending into window, analyses a copy of the
// window outside mu, then records the outcome back under mu. The busy
// claim serialises analysis per tenant, so window order is ingest order.
type tenant struct {
	name string

	// lin is the tenant's bounded lineage ring. It has its own mutex and
	// never takes another lock, so it may be called while holding mu (the
	// lock order is t.mu → lin.mu, and lin.mu is always a leaf).
	lin *lineageRing

	mu      sync.Mutex
	pending []ingestSeg
	window  []ingestSeg
	program *prog.Program

	// Idempotent-resend detection: recent ingest keys, bounded FIFO.
	keys     map[string]struct{}
	keyOrder []string

	// Rolling health/degradation record, served by TenantStatus.
	segments     uint64
	bytes        uint64
	salvage      string // journal damage found at boot (sticky, unlike lastError)
	corrupt      uint64
	rejected     uint64
	queueDrops   uint64
	duplicates   uint64
	replayed     uint64
	retired      uint64
	analyses     uint64
	failures     uint64
	lastError    string
	lastAnalysis time.Time
	lastReports  int

	queued bool
}

// seenKeyLocked reports (and records) whether key was recently ingested.
// Caller holds t.mu.
func (t *tenant) seenKeyLocked(key string, cap int) bool {
	if key == "" {
		return false
	}
	if t.keys == nil {
		t.keys = map[string]struct{}{}
	}
	if _, ok := t.keys[key]; ok {
		return true
	}
	t.keys[key] = struct{}{}
	t.keyOrder = append(t.keyOrder, key)
	for len(t.keyOrder) > cap {
		delete(t.keys, t.keyOrder[0])
		t.keyOrder = t.keyOrder[1:]
	}
	return false
}

// TenantStatus is the externally visible health record of one tenant.
type TenantStatus struct {
	Tenant          string    `json:"tenant"`
	Program         string    `json:"program"`
	Segments        uint64    `json:"segments"`
	Bytes           uint64    `json:"bytes"`
	Corrupt         uint64    `json:"corrupt"`
	Rejected        uint64    `json:"rejected"`
	QueueDrops      uint64    `json:"queue_drops"`
	Duplicates      uint64    `json:"duplicates"`
	Replayed        uint64    `json:"replayed"`
	Retired         uint64    `json:"retired"`
	Analyses        uint64    `json:"analyses"`
	Failures        uint64    `json:"failures"`
	Salvage         string    `json:"journal_salvage,omitempty"`
	LastError       string    `json:"last_error,omitempty"`
	LastAnalysis    time.Time `json:"last_analysis"`
	LastReports     int       `json:"last_reports"`
	WindowSegments  int       `json:"window_segments"`
	PendingSegments int       `json:"pending_segments"`

	// Introspection additions (statusz): journal footprint, how far the
	// durable analysis cursor trails the journal head, the rolling window's
	// age bounds, and the lineage ring's lifetime accounting.
	WALBytes        int64     `json:"wal_bytes,omitempty"`
	Cursor          uint64    `json:"cursor,omitempty"`
	CursorLag       uint64    `json:"cursor_lag,omitempty"`
	WindowOldest    time.Time `json:"window_oldest,omitempty"`
	WindowNewest    time.Time `json:"window_newest,omitempty"`
	LineageMinted   uint64    `json:"lineage_minted"`
	LineageTerminal uint64    `json:"lineage_terminal"`
	LineageEvicted  uint64    `json:"lineage_evicted_open"`
	LineageHeld     int       `json:"lineage_held"`
}

// Monitor is the daemon core: per-tenant rolling-window incremental
// analysis over the segment-resumable core API, feeding a deduplicating
// persistent store, with an optional write-ahead journal making the whole
// ingest path crash-safe. All methods are safe for concurrent use.
type Monitor struct {
	cfg     Config
	store   *Store
	wal     *WAL
	tel     *telemetry.Registry
	now     func() time.Time
	log     *slog.Logger
	alerter *alerter

	// started anchors the daemon's uptime; bootID + linSeq mint lineage IDs
	// for producers that predate the X-Prorace-Lineage header.
	started time.Time
	bootID  string
	linSeq  atomic.Uint64

	mu       sync.Mutex
	tenants  map[string]*tenant
	programs map[string]*prog.Program

	// Worker-pool queue: tenants with pending work, each present at most
	// once (tenant.queued). Guarded by qmu; workers wait on qcond.
	qmu      sync.Mutex
	qcond    *sync.Cond
	queue    []*tenant
	inflight int
	closed   bool
	wg       sync.WaitGroup
}

// New builds a Monitor: it opens (salvaging if damaged) the persistent
// store and the write-ahead journal, reloads persisted program images,
// starts the worker pool, and replays every journal's unanalyzed suffix
// through the normal ingest path before returning — callers attach the
// HTTP listener only after recovery is complete.
func New(cfg Config) (*Monitor, error) {
	if cfg.Window <= 0 {
		cfg.Window = 8
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 32
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 256 << 20
	}
	if cfg.DedupKeys <= 0 {
		cfg.DedupKeys = 512
	}
	if cfg.LineageDepth <= 0 {
		cfg.LineageDepth = 256
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	cfg.Analysis.Telemetry = nil
	cfg.Analysis.MetricsAddr = ""
	store, err := OpenStore(cfg.StorePath)
	if err != nil {
		return nil, err
	}
	store.SetClock(cfg.Now)
	m := &Monitor{
		cfg:      cfg,
		store:    store,
		tel:      cfg.Telemetry,
		now:      cfg.Now,
		log:      cfg.Logger,
		started:  cfg.Now(),
		bootID:   mintBootID(),
		tenants:  map[string]*tenant{},
		programs: map[string]*prog.Program{},
	}
	m.qcond = sync.NewCond(&m.qmu)
	if cfg.Alert.URL != "" {
		m.alerter = newAlerter(cfg.Alert, m.tel, m.log, m.now)
	}
	if w := store.LoadWarning(); w != "" {
		m.log.Warn("store salvaged at boot", "detail", w)
		m.count("proraced_store_salvaged_total", "Corrupt store files set aside and restarted fresh at boot.").Inc()
	}
	if cfg.WALDir != "" {
		wal, err := OpenWAL(cfg.WALDir, cfg.Fsync, cfg.Now)
		if err != nil {
			return nil, err
		}
		m.wal = wal
		for _, raw := range wal.LoadPrograms() {
			p, err := prog.DecodeImage(raw)
			if err != nil {
				m.log.Warn("skipping corrupt persisted program image", "err", err)
				continue
			}
			m.programs[p.Name] = p
		}
	}
	m.gauge("proraced_store_reports", "Distinct races in the persistent report store.").Set(int64(store.Len()))
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	if m.wal != nil {
		m.recover()
	}
	return m, nil
}

// mintBootID draws a short random tag distinguishing this process's
// daemon-minted lineage IDs from a restarted daemon's.
func mintBootID() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "d0"
	}
	return fmt.Sprintf("d%x", b)
}

// mintLineage creates a daemon-side lineage ID for a segment whose
// producer did not send one.
func (m *Monitor) mintLineage(tenant string) string {
	return fmt.Sprintf("%s-%s-%d", m.bootID, tenant, m.linSeq.Add(1))
}

// Store exposes the monitor's report store.
func (m *Monitor) Store() *Store { return m.store }

// Started returns when the monitor was constructed (uptime anchor).
func (m *Monitor) Started() time.Time { return m.started }

// RegisterProgram makes a program image resolvable for incoming segments
// whose trace header names it (the POST /program path). With a journal
// directory configured the image is persisted too, so recovery replay can
// still resolve it after a restart.
func (m *Monitor) RegisterProgram(p *prog.Program) {
	m.mu.Lock()
	m.programs[p.Name] = p
	m.mu.Unlock()
	if m.wal != nil {
		if err := m.wal.SaveProgram(p.Name, prog.EncodeImage(p)); err != nil {
			m.log.Error("persisting program image failed", "program", p.Name, "err", err)
		}
	}
}

// resolveProgram maps a trace's program name to a built program:
// registered images first, then the built-in workload table, then the
// planted-bug table.
func (m *Monitor) resolveProgram(name string) (*prog.Program, error) {
	m.mu.Lock()
	p, ok := m.programs[name]
	m.mu.Unlock()
	if ok {
		return p, nil
	}
	if w, err := workload.ByName(name, 1); err == nil {
		p = w.Program
	} else if b, err := bugs.ByID(name); err == nil {
		p = b.Build(1).Workload.Program
	} else {
		return nil, fmt.Errorf("%w: %q", ErrUnknownProgram, name)
	}
	m.mu.Lock()
	m.programs[name] = p
	m.mu.Unlock()
	return p, nil
}

func (m *Monitor) tenantFor(name string) *tenant {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.tenants[name]
	if !ok {
		t = &tenant{name: name, lin: newLineageRing(m.cfg.LineageDepth)}
		m.tenants[name] = t
		m.gauge("proraced_tenants", "Tenants with at least one ingest attempt.").Set(int64(len(m.tenants)))
	}
	return t
}

// IngestMeta carries per-segment ingest metadata from the transport.
type IngestMeta struct {
	// Key is the idempotency key ("" = none): a resend of a recently
	// accepted key is acknowledged without re-ingesting.
	Key string
	// Lineage is the producer-minted lineage ID (X-Prorace-Lineage; "" =
	// the daemon mints one).
	Lineage string
}

// Ingest accepts one PRSG-framed segment from tenantName (no idempotency
// key — every call is treated as a distinct segment).
func (m *Monitor) Ingest(tenantName string, frame []byte) error {
	return m.IngestWith(tenantName, IngestMeta{}, frame)
}

// IngestKeyed is IngestWith with only an idempotency key.
func (m *Monitor) IngestKeyed(tenantName, key string, frame []byte) error {
	return m.IngestWith(tenantName, IngestMeta{Key: key}, frame)
}

// IngestWith accepts one PRSG-framed segment from tenantName. Decoding,
// admission, the journal append (when durability is on) and — with
// Workers == 0 — the analysis round happen before it returns; with a
// worker pool the analysis is scheduled and IngestWith returns once the
// segment is journaled and queued. Failures are tenant-scoped: a corrupt
// frame or full queue degrades this tenant's record and leaves every
// other tenant — and the daemon — untouched.
//
// Lineage: an accepted segment's ID enters the tenant's lineage ring at
// StageIngested and rides the WAL record, so the history survives a
// crash. Permanent rejections (corrupt frame, unknown program) record a
// terminal rejected lineage when the producer supplied an ID; retryable
// rejections (queue full, journal failure) record nothing, because the
// producer's retry of the same lineage ID must be mintable.
func (m *Monitor) IngestWith(tenantName string, meta IngestMeta, frame []byte) error {
	m.qmu.Lock()
	closed := m.closed
	m.qmu.Unlock()
	if closed {
		return ErrClosed
	}
	t := m.tenantFor(tenantName)
	t.mu.Lock()
	if meta.Key != "" {
		if _, dup := t.keys[meta.Key]; dup {
			t.duplicates++
			t.mu.Unlock()
			m.count("proraced_segments_duplicate_total", "Idempotent resends acknowledged without re-ingesting (producer retries).").Inc()
			return nil
		}
	}
	t.mu.Unlock()
	hdr, seg, err := tracefmt.DecodeSegment(frame)
	if err != nil {
		t.mu.Lock()
		t.corrupt++
		t.lastError = err.Error()
		t.mu.Unlock()
		m.rejectLineage(t, meta.Lineage, 0, len(frame), err)
		m.count("proraced_segments_corrupt_total", "Ingested frames that failed PRSG decoding.").Inc()
		return fmt.Errorf("%w: %v", ErrCorruptSegment, err)
	}
	if _, err := m.resolveProgram(seg.Program); err != nil {
		t.mu.Lock()
		t.rejected++
		t.lastError = err.Error()
		t.mu.Unlock()
		m.rejectLineage(t, meta.Lineage, hdr.Seq, len(frame), err)
		m.count("proraced_segments_rejected_total", "Decoded segments rejected before analysis (unknown program, session mismatch).").Inc()
		return err
	}
	now := m.now()
	lin := meta.Lineage
	if lin == "" {
		lin = m.mintLineage(tenantName)
	}
	t.mu.Lock()
	if len(t.pending) >= m.cfg.QueueDepth {
		t.queueDrops++
		t.mu.Unlock()
		m.count("proraced_queue_rejections_total", "Segments dropped at admission because the tenant's pending queue was full.").Inc()
		return fmt.Errorf("%w: tenant %q has %d pending segments", ErrQueueFull, tenantName, m.cfg.QueueDepth)
	}
	// The durability point: journal the frame (fsync per policy) while
	// still holding the admission slot, so "accepted" always means
	// "replayable". Everything after this line is recoverable — the
	// record carries the lineage ID, so replay reconstructs the history.
	var idx uint64
	if m.wal != nil {
		jidx, err := m.wal.Append(tenantName, meta.Key, lin, frame)
		if err != nil {
			t.mu.Unlock()
			m.log.Error("journal append failed", "tenant", tenantName, "err", err)
			m.count("proraced_wal_append_failures_total", "Journal appends that failed (the segment was rejected, producer retries).").Inc()
			return fmt.Errorf("%w: %v", ErrDurability, err)
		}
		idx = jidx + 1
		m.count("proraced_wal_appends_total", "Segments appended to the write-ahead journal.").Inc()
		m.count("proraced_wal_bytes_total", "Bytes appended to the write-ahead journal.").AddInt(len(frame))
	}
	if !t.lin.mint(lin, hdr.Seq, uint64(len(frame)), false, now) {
		// The producer reused a live or remembered ID (e.g. a retry whose
		// key aged out of the dedup FIFO). Keep histories separate.
		lin = m.mintLineage(tenantName)
		t.lin.mint(lin, hdr.Seq, uint64(len(frame)), false, now)
	}
	if m.wal != nil {
		t.lin.setJournal(lin, idx)
		if _, d, ok := t.lin.transition(lin, StageFsynced, m.now()); ok {
			m.hist("proraced_stage_fsync_seconds", "Time from ingest admission to the segment being journaled.").Observe(d.Seconds())
		}
	}
	t.seenKeyLocked(meta.Key, m.cfg.DedupKeys)
	t.pending = append(t.pending, ingestSeg{seg: seg, at: now, idx: idx, lin: lin})
	t.segments++
	t.bytes += seg.TotalBytes()
	t.mu.Unlock()
	// The acknowledgement is now guaranteed (journaled + admitted): the
	// lineage advances to acked, then queued as it waits in pending.
	if _, d, ok := t.lin.transition(lin, StageAcked, m.now()); ok {
		m.hist("proraced_stage_ack_seconds", "Time from journaled to acknowledgement-guaranteed.").Observe(d.Seconds())
	}
	m.count("proraced_segments_ingested_total", "Segments accepted into tenant windows.").Inc()
	m.count("proraced_segment_bytes_total", "Trace payload bytes accepted into tenant windows.").Add(seg.TotalBytes())
	// Chaos point: the segment is journaled but the producer has not been
	// acknowledged — a crash here must be covered by replay plus the
	// producer's keyed retry.
	faultinject.Crash("monitor.ingest.preack")
	t.lin.transition(lin, StageQueued, m.now())
	if m.cfg.Workers == 0 {
		m.analyzeTenant(t)
		return nil
	}
	m.schedule(t)
	return nil
}

// rejectLineage records a terminal rejected lineage for a permanently
// rejected ingest, but only when the producer supplied the ID: a 400 is
// not retried, so the terminal entry cannot wedge a future resend, and
// the producer can correlate the rejection with its own send.
func (m *Monitor) rejectLineage(t *tenant, lin string, seq uint64, bytes int, cause error) {
	if lin == "" {
		return
	}
	now := m.now()
	t.lin.mint(lin, seq, uint64(bytes), false, now)
	t.lin.transitionErr(lin, StageRejected, cause.Error(), now)
}

// recover replays every journal: segments the persisted cursor proves
// were analyzed are restored into the tenant's rolling window (no
// re-analysis, no re-observation), and the unanalyzed suffix is re-fed
// through the normal ingest path — with Workers == 0 that reproduces the
// exact round structure an uninterrupted run would have had, which is
// what makes the chaos harness's occurrence-count equivalence hold.
func (m *Monitor) recover() {
	for tenantName, sal := range m.wal.Salvage() {
		t := m.tenantFor(tenantName)
		t.mu.Lock()
		t.salvage = fmt.Sprintf("journal salvage: %d torn bytes, %d bad records", sal.TornBytes, sal.BadRecords)
		t.mu.Unlock()
		m.count("proraced_wal_torn_records_total", "Journal records dropped as torn or damaged during recovery.").AddInt(sal.BadRecords)
		m.count("proraced_wal_salvaged_bytes_total", "Journal tail bytes truncated away during recovery salvage.").AddInt(sal.TornBytes)
	}
	for _, tenantName := range m.wal.Tenants() {
		cursor := m.store.Cursor(tenantName)
		recs, _, err := m.wal.Records(tenantName, 0)
		if err != nil {
			m.log.Error("reading journal failed", "tenant", tenantName, "err", err)
			continue
		}
		if len(recs) == 0 {
			continue
		}
		m.count("proraced_recovery_tenants_total", "Tenants with journal records at boot.").Inc()
		t := m.tenantFor(tenantName)
		now := m.now()

		// Rebuild the rolling window from the analyzed prefix: the last
		// Window records the cursor has passed, filtered to the newest
		// run's identity, exactly as live eviction would have left it.
		var analyzed []WALRecord
		var suffix []WALRecord
		for _, rec := range recs {
			if rec.Index+1 <= cursor {
				analyzed = append(analyzed, rec)
			} else {
				suffix = append(suffix, rec)
			}
		}
		if len(analyzed) > m.cfg.Window {
			analyzed = analyzed[len(analyzed)-m.cfg.Window:]
		}
		t.mu.Lock()
		for _, rec := range analyzed {
			hdr, seg, err := tracefmt.DecodeSegment(rec.Frame)
			if err != nil {
				continue // bit rot in an already-analyzed record: window only degrades
			}
			t.seenKeyLocked(rec.Key, m.cfg.DedupKeys)
			// The lineage replays out of the WAL record, flagged Recovered;
			// the cursor proves it was analyzed before the crash, so the
			// reconstructed history jumps straight to its terminal stage.
			lid := m.replayLineage(t, rec, hdr.Seq, now)
			t.lin.transition(lid, StageAnalyzed, now)
			t.window = append(t.window, ingestSeg{seg: seg, at: now, idx: rec.Index + 1, lin: lid})
		}
		if n := len(t.window); n > 0 {
			newest := t.window[n-1].seg
			keep := t.window[:0]
			for _, ws := range t.window {
				if ws.seg.Program == newest.Program && ws.seg.Period == newest.Period && ws.seg.Seed == newest.Seed {
					keep = append(keep, ws)
				}
			}
			t.window = keep
		}
		restored := len(t.window)
		t.mu.Unlock()
		m.count("proraced_recovery_window_total", "Analyzed journal segments restored into rolling windows at boot.").AddInt(restored)

		// Re-ingest the unanalyzed suffix through the normal path.
		for _, rec := range suffix {
			m.replayRecord(t, rec, now)
		}
	}
}

// replayLineage re-mints a journaled record's lineage into the ring,
// flagged Recovered (falling back to a synthetic ID for pre-lineage v1
// records), and returns the ID in effect.
func (m *Monitor) replayLineage(t *tenant, rec WALRecord, seq uint64, now time.Time) string {
	lid := rec.Lineage
	if lid == "" {
		lid = fmt.Sprintf("recovered-%s-%d", t.name, rec.Index)
	}
	if !t.lin.mint(lid, seq, uint64(len(rec.Frame)), true, now) {
		lid = fmt.Sprintf("recovered-%s-%d", t.name, rec.Index)
		t.lin.mint(lid, seq, uint64(len(rec.Frame)), true, now)
	}
	t.lin.setJournal(lid, rec.Index+1)
	return lid
}

// replayRecord feeds one journaled-but-unanalyzed record back through the
// ingest path: same decode, resolution and analysis as a live ingest, but
// no re-journaling and no admission bound (the record was already
// admitted once). Damaged or unresolvable records advance the in-memory
// cursor so a poison record cannot wedge every future boot.
func (m *Monitor) replayRecord(t *tenant, rec WALRecord, now time.Time) {
	hdr, seg, err := tracefmt.DecodeSegment(rec.Frame)
	if err != nil {
		t.mu.Lock()
		t.corrupt++
		t.lastError = fmt.Sprintf("journal replay: %v", err)
		t.mu.Unlock()
		lid := m.replayLineage(t, rec, 0, now)
		t.lin.transitionErr(lid, StageRejected, fmt.Sprintf("journal replay: %v", err), now)
		m.count("proraced_recovery_corrupt_total", "Journal records whose frames failed decoding during replay.").Inc()
		m.store.SetCursor(t.name, rec.Index+1)
		return
	}
	if _, err := m.resolveProgram(seg.Program); err != nil {
		t.mu.Lock()
		t.rejected++
		t.lastError = fmt.Sprintf("journal replay: %v", err)
		t.mu.Unlock()
		lid := m.replayLineage(t, rec, hdr.Seq, now)
		t.lin.transitionErr(lid, StageRejected, fmt.Sprintf("journal replay: %v", err), now)
		m.count("proraced_segments_rejected_total", "Decoded segments rejected before analysis (unknown program, session mismatch).").Inc()
		m.store.SetCursor(t.name, rec.Index+1)
		return
	}
	lid := m.replayLineage(t, rec, hdr.Seq, now)
	t.lin.transition(lid, StageFsynced, now) // it came from the journal
	t.mu.Lock()
	t.seenKeyLocked(rec.Key, m.cfg.DedupKeys)
	t.pending = append(t.pending, ingestSeg{seg: seg, at: now, idx: rec.Index + 1, lin: lid})
	t.segments++
	t.bytes += seg.TotalBytes()
	t.replayed++
	t.mu.Unlock()
	t.lin.transition(lid, StageQueued, now)
	m.count("proraced_recovery_replayed_total", "Unanalyzed journal segments re-fed through analysis at boot.").Inc()
	if m.cfg.Workers == 0 {
		m.analyzeTenant(t)
	} else {
		m.schedule(t)
	}
}

// schedule puts t on the worker queue unless it is already there or being
// processed; the processing worker re-checks pending before releasing its
// claim, so no segment is stranded.
func (m *Monitor) schedule(t *tenant) {
	m.qmu.Lock()
	if !t.queued && !m.closed {
		t.queued = true
		m.queue = append(m.queue, t)
		m.qcond.Signal()
	}
	m.qmu.Unlock()
}

func (m *Monitor) worker() {
	defer m.wg.Done()
	for {
		m.qmu.Lock()
		for len(m.queue) == 0 && !m.closed {
			m.qcond.Wait()
		}
		if len(m.queue) == 0 && m.closed {
			m.qmu.Unlock()
			return
		}
		t := m.queue[0]
		m.queue = m.queue[1:]
		m.inflight++
		m.qmu.Unlock()

		m.analyzeTenant(t)

		m.qmu.Lock()
		m.inflight--
		t.queued = false
		// New segments may have arrived while we analysed; requeue rather
		// than strand them (Ingest's schedule saw queued == true).
		t.mu.Lock()
		again := len(t.pending) > 0
		t.mu.Unlock()
		if again && !m.closed {
			t.queued = true
			m.queue = append(m.queue, t)
			m.qcond.Signal()
		}
		if m.inflight == 0 && len(m.queue) == 0 {
			m.qcond.Broadcast()
		}
		m.qmu.Unlock()
	}
}

// retireLocked drops window segments older than WindowMaxAge. Caller
// holds t.mu; returns how many were dropped and whether that emptied a
// previously non-empty window.
func (m *Monitor) retireLocked(t *tenant, now time.Time) (dropped int, emptied bool) {
	if m.cfg.WindowMaxAge <= 0 || len(t.window) == 0 {
		return 0, false
	}
	i := 0
	for i < len(t.window) && now.Sub(t.window[i].at) > m.cfg.WindowMaxAge {
		i++
	}
	if i == 0 {
		return 0, false
	}
	for _, ws := range t.window[:i] {
		// Already-analyzed segments are terminal (no-op); one that aged out
		// before any round completed ends its lineage as retired.
		t.lin.transitionErr(ws.lin, StageRetired, "window age", now)
	}
	emptied = i == len(t.window)
	t.window = append(t.window[:0], t.window[i:]...)
	t.retired += uint64(i)
	return i, emptied
}

// noteRetirement publishes retirement counters (outside tenant locks).
func (m *Monitor) noteRetirement(dropped int, emptied bool) {
	if dropped == 0 {
		return
	}
	m.count("proraced_window_segments_expired_total", "Window segments retired by wall-clock age.").AddInt(dropped)
	if emptied {
		m.count("proraced_windows_retired_total", "Rolling windows fully retired by wall-clock age.").Inc()
	}
}

// Sweep retires expired window segments across all tenants (the periodic
// janitor for idle tenants; active tenants also retire at round start).
// It returns how many segments were dropped.
func (m *Monitor) Sweep() int {
	if m.cfg.WindowMaxAge <= 0 {
		return 0
	}
	now := m.now()
	m.mu.Lock()
	ts := make([]*tenant, 0, len(m.tenants))
	for _, t := range m.tenants {
		ts = append(ts, t)
	}
	m.mu.Unlock()
	total := 0
	for _, t := range ts {
		t.mu.Lock()
		dropped, emptied := m.retireLocked(t, now)
		t.mu.Unlock()
		m.noteRetirement(dropped, emptied)
		total += dropped
		if dropped > 0 {
			m.maybeCompact(t)
		}
	}
	return total
}

// analyzeTenant runs one analysis round: retire aged window segments,
// drain pending into the rolling window, re-analyse the window on a fresh
// session, fold reports into the store and advance the journal cursor in
// the same persist. The tenant's busy claim (worker queue) serialises
// rounds, so pending/window mutation order is ingest order.
func (m *Monitor) analyzeTenant(t *tenant) {
	roundNow := m.now()
	t.mu.Lock()
	retiredN, retiredEmpty := m.retireLocked(t, roundNow)
	// cursorAdv is the journal position this round consumes through: the
	// last drained segment's position (trimmed-away segments count as
	// consumed — they will never be analysed, by design of the window).
	var cursorAdv uint64
	if n := len(t.pending); n > 0 {
		cursorAdv = t.pending[n-1].idx
	}
	t.window = append(t.window, t.pending...)
	t.pending = nil
	if len(t.window) > m.cfg.Window {
		for _, ws := range t.window[:len(t.window)-m.cfg.Window] {
			// Trimmed away before a round could include it (terminal
			// entries no-op): consumed by design of the window, never
			// analysed — the lineage ends as retired.
			t.lin.transitionErr(ws.lin, StageRetired, "window overflow", roundNow)
		}
		t.window = t.window[len(t.window)-m.cfg.Window:]
	}
	window := make([]ingestSeg, len(t.window))
	copy(window, t.window)
	t.mu.Unlock()
	m.noteRetirement(retiredN, retiredEmpty)
	if len(window) == 0 {
		if cursorAdv > 0 {
			m.store.SetCursor(t.name, cursorAdv)
		}
		return
	}
	for _, ws := range window {
		// First round over a segment: queued → analyzing (re-analyses of
		// terminal segments are counted via Rounds after the round).
		if _, d, ok := t.lin.transition(ws.lin, StageAnalyzing, roundNow); ok {
			m.hist("proraced_stage_queue_wait_seconds", "Time a segment waited in the pending queue before its first analysis round.").Observe(d.Seconds())
		}
	}

	p, err := m.resolveProgram(window[0].seg.Program)
	if err != nil {
		m.recordFailure(t, err)
		return
	}
	a, err := core.NewAnalyzer(p, m.cfg.Analysis)
	if err != nil {
		m.recordFailure(t, err)
		return
	}
	rejected := 0
	for _, ws := range window {
		if err := a.Feed(ws.seg); err != nil {
			// A window can legitimately mix runs (the producer restarted
			// with a new seed): segments of a different run are rejected
			// by the session and recorded as tenant degradation, and the
			// stale prefix is evicted below so the window converges on
			// the newest run instead of rejecting forever.
			rejected++
			t.lin.transitionErr(ws.lin, StageRejected, err.Error(), m.now())
			m.count("proraced_segments_rejected_total", "Decoded segments rejected before analysis (unknown program, session mismatch).").Inc()
			continue
		}
	}
	if rejected > 0 {
		t.mu.Lock()
		t.rejected += uint64(rejected)
		// Keep only the suffix matching the newest segment's run identity.
		newest := window[len(window)-1].seg
		keep := t.window[:0]
		for _, ws := range t.window {
			if ws.seg.Program == newest.Program && ws.seg.Period == newest.Period && ws.seg.Seed == newest.Seed {
				keep = append(keep, ws)
			}
		}
		t.window = keep
		t.mu.Unlock()
	}
	res, err := a.Finish()
	if err != nil {
		m.recordFailure(t, err)
		return
	}
	// Chaos point: the round is computed but nothing is persisted — a
	// crash here must replay the round from the journal.
	faultinject.Crash("monitor.analyze.mid")
	fresh, repeated, serr := m.store.ObserveNewAt(t.name, window[0].seg.Program, res.Reports, cursorAdv)
	now := m.now()
	t.mu.Lock()
	t.analyses++
	t.lastAnalysis = now
	t.lastReports = len(res.Reports)
	if serr != nil {
		t.lastError = serr.Error()
	} else if rejected == 0 {
		t.lastError = ""
	}
	t.mu.Unlock()
	// Terminal lineage accounting: every window segment that was part of
	// this completed round is now analyzed; segments already terminal get a
	// round bump instead (rejected/retired ones were not part of the
	// round's results and get neither).
	for _, ws := range window {
		if ws.lin == "" {
			continue
		}
		switch t.lin.stage(ws.lin) {
		case StageAnalyzed:
			t.lin.bumpRounds(ws.lin)
		case StageRejected, StageRetired, "":
		default:
			if sinceIngest, d, ok := t.lin.transition(ws.lin, StageAnalyzed, now); ok {
				t.lin.bumpRounds(ws.lin)
				m.hist("proraced_stage_analyze_seconds", "Time a segment spent in its first analysis round.").Observe(d.Seconds())
				m.hist("proraced_ingest_to_analyzed_seconds", "End-to-end latency from ingest admission to the first completed analysis round over the segment.").Observe(sinceIngest.Seconds())
			}
		}
	}
	m.count("proraced_analyses_total", "Rolling-window analysis rounds completed.").Inc()
	m.count("proraced_reports_total", "Race reports produced by analysis rounds (pre-dedup).").AddInt(len(res.Reports))
	m.count("proraced_reports_new_total", "Distinct races first observed by this daemon.").AddInt(len(fresh))
	m.count("proraced_reports_dup_total", "Race observations deduplicated against the store.").AddInt(repeated)
	m.gauge("proraced_store_reports", "Distinct races in the persistent report store.").Set(int64(m.store.Len()))
	if m.alerter != nil && len(fresh) > 0 {
		// The newest window segment is the one whose arrival completed the
		// round that surfaced these races — its lineage goes on the alert.
		var surfaced *SegmentLineage
		if l, ok := t.lin.get(window[len(window)-1].lin); ok {
			surfaced = &l
		}
		for _, sr := range fresh {
			m.alerter.fire(AlertEvent{
				Time:        now,
				Tenant:      sr.Tenant,
				Program:     sr.Program,
				Fingerprint: sr.Fingerprint,
				FirstPC:     pcHex(sr.Report.First.PC),
				SecondPC:    pcHex(sr.Report.Second.PC),
				Occurrences: sr.Occurrences,
				Witness:     sr.Report.Witness != "",
				Lineage:     surfaced,
			})
		}
	}
	m.maybeCompact(t)
}

// maybeCompact drops the journal prefix that is both analysed (behind the
// cursor) and outside the rebuildable window, once enough of it has
// accumulated to be worth a rewrite.
func (m *Monitor) maybeCompact(t *tenant) {
	if m.wal == nil {
		return
	}
	cursor := m.store.Cursor(t.name)
	if cursor == 0 {
		return
	}
	// The oldest journal record still needed is the first window
	// segment's; with an empty window everything before the cursor is
	// droppable.
	keepFrom := cursor
	t.mu.Lock()
	for _, ws := range t.window {
		if ws.idx > 0 {
			keepFrom = ws.idx - 1
			break
		}
	}
	t.mu.Unlock()
	threshold := uint64(m.cfg.Window)
	if threshold < 8 {
		threshold = 8
	}
	j, err := m.wal.journalFor(t.name)
	if err != nil {
		return
	}
	j.mu.Lock()
	droppable := int64(keepFrom) - int64(j.base)
	j.mu.Unlock()
	if droppable < int64(threshold) {
		return
	}
	if err := m.wal.Compact(t.name, keepFrom); err != nil {
		m.log.Error("journal compaction failed", "tenant", t.name, "err", err)
		return
	}
	m.count("proraced_wal_compactions_total", "Journal compactions (analysed prefix dropped).").Inc()
}

func (m *Monitor) recordFailure(t *tenant, err error) {
	t.mu.Lock()
	t.failures++
	t.lastError = err.Error()
	t.mu.Unlock()
	m.count("proraced_analysis_failures_total", "Analysis rounds that failed (the tenant window is kept; the daemon is unaffected).").Inc()
}

// Wait blocks until every queued and in-flight analysis round has
// completed (quiescence). It does not prevent new ingests from starting
// new rounds afterwards.
func (m *Monitor) Wait() {
	m.qmu.Lock()
	for len(m.queue) > 0 || m.inflight > 0 {
		m.qcond.Wait()
	}
	m.qmu.Unlock()
}

// Close is the graceful drain: it stops accepting ingest (ErrClosed /
// HTTP 503 + Retry-After), lets every queued and in-flight analysis round
// finish, persists the store with the final journal cursors, and syncs
// and closes the journal. After Close returns, a restarted Monitor finds
// nothing to replay — no accepted segment is lost.
func (m *Monitor) Close() error {
	m.qmu.Lock()
	if m.closed {
		m.qmu.Unlock()
		return nil
	}
	for len(m.queue) > 0 || m.inflight > 0 {
		m.qcond.Wait()
	}
	m.closed = true
	m.qcond.Broadcast()
	m.qmu.Unlock()
	m.wg.Wait()
	if m.alerter != nil {
		m.alerter.close()
	}
	err := m.store.Save()
	if m.wal != nil {
		if serr := m.wal.Sync(); serr != nil && err == nil {
			err = serr
		}
		if cerr := m.wal.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// Tenants returns every tenant's status, sorted by name.
func (m *Monitor) Tenants() []TenantStatus {
	m.mu.Lock()
	names := make([]*tenant, 0, len(m.tenants))
	for _, t := range m.tenants {
		names = append(names, t)
	}
	m.mu.Unlock()
	out := make([]TenantStatus, 0, len(names))
	for _, t := range names {
		out = append(out, m.tenantStatus(t))
	}
	sortTenantStatus(out)
	return out
}

func (m *Monitor) tenantStatus(t *tenant) TenantStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := TenantStatus{
		Tenant:          t.name,
		Segments:        t.segments,
		Bytes:           t.bytes,
		Corrupt:         t.corrupt,
		Rejected:        t.rejected,
		QueueDrops:      t.queueDrops,
		Duplicates:      t.duplicates,
		Replayed:        t.replayed,
		Retired:         t.retired,
		Analyses:        t.analyses,
		Failures:        t.failures,
		Salvage:         t.salvage,
		LastError:       t.lastError,
		LastAnalysis:    t.lastAnalysis,
		LastReports:     t.lastReports,
		WindowSegments:  len(t.window),
		PendingSegments: len(t.pending),
	}
	if len(t.window) > 0 {
		st.Program = t.window[len(t.window)-1].seg.Program
		st.WindowOldest = t.window[0].at
		st.WindowNewest = t.window[len(t.window)-1].at
	} else if len(t.pending) > 0 {
		st.Program = t.pending[len(t.pending)-1].seg.Program
	}
	st.LineageMinted, st.LineageTerminal, st.LineageEvicted, st.LineageHeld = t.lin.stats()
	if m.wal != nil {
		st.WALBytes = m.wal.Size(t.name)
		st.Cursor = m.store.Cursor(t.name)
		if head := m.wal.NextIndex(t.name); head > st.Cursor {
			st.CursorLag = head - st.Cursor
		}
	}
	return st
}

// Lineages returns copies of tenantName's newest n lineage-ring entries,
// oldest of them first (n <= 0 means the whole ring).
func (m *Monitor) Lineages(tenantName string, n int) []SegmentLineage {
	m.mu.Lock()
	t, ok := m.tenants[tenantName]
	m.mu.Unlock()
	if !ok {
		return nil
	}
	return t.lin.tail(n)
}

// Lineage returns one tenant's lineage entry by ID.
func (m *Monitor) Lineage(tenantName, id string) (SegmentLineage, bool) {
	m.mu.Lock()
	t, ok := m.tenants[tenantName]
	m.mu.Unlock()
	if !ok {
		return SegmentLineage{}, false
	}
	return t.lin.get(id)
}

// OpenLineages returns every tenant's non-terminal lineage entries — the
// completeness invariant's violation set once the monitor is quiescent
// (tests assert it is empty after Close).
func (m *Monitor) OpenLineages() map[string][]SegmentLineage {
	m.mu.Lock()
	ts := make([]*tenant, 0, len(m.tenants))
	for _, t := range m.tenants {
		ts = append(ts, t)
	}
	m.mu.Unlock()
	out := map[string][]SegmentLineage{}
	for _, t := range ts {
		if open := t.lin.open(); len(open) > 0 {
			out[t.name] = open
		}
	}
	return out
}

func sortTenantStatus(ts []TenantStatus) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Tenant < ts[j].Tenant })
}

// count and gauge tolerate a nil registry (telemetry disabled).
func (m *Monitor) count(name, help string) *telemetry.Counter {
	return m.tel.Counter(name, help)
}

func (m *Monitor) gauge(name, help string) *telemetry.Gauge {
	return m.tel.Gauge(name, help)
}

func (m *Monitor) hist(name, help string) *telemetry.Histogram {
	return m.tel.Histogram(name, help, telemetry.DurationBuckets)
}
