package monitor

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"prorace/internal/bugs"
	"prorace/internal/core"
	"prorace/internal/prog"
	"prorace/internal/telemetry"
	"prorace/internal/tracefmt"
	"prorace/internal/workload"
)

// Classified ingest failures. The HTTP layer maps them to status codes;
// in-process callers can errors.Is against them.
var (
	// ErrCorruptSegment reports a frame that failed PRSG decoding. The
	// tenant's degradation record absorbs it; the window is untouched.
	ErrCorruptSegment = errors.New("monitor: corrupt segment")
	// ErrQueueFull reports admission rejection: the tenant's pending queue
	// is at capacity and the segment was dropped (the producer retries).
	ErrQueueFull = errors.New("monitor: tenant queue full")
	// ErrClosed reports ingestion into a shut-down monitor.
	ErrClosed = errors.New("monitor: closed")
	// ErrUnknownProgram reports a segment naming a program the daemon
	// cannot resolve (no uploaded image, no built-in workload or bug).
	ErrUnknownProgram = errors.New("monitor: unknown program")
)

// Config parameterises a Monitor.
type Config struct {
	// Window is how many most-recent segments of each tenant's stream are
	// re-analysed per round (the rolling window). Default 8.
	Window int
	// QueueDepth bounds each tenant's pending (ingested but not yet
	// analysed) segments; beyond it Ingest rejects with ErrQueueFull.
	// Default 32.
	QueueDepth int
	// Workers is the analysis worker-pool size. 0 means synchronous:
	// Ingest runs the analysis round inline before returning
	// (deterministic, used by tests and small deployments).
	Workers int
	// StorePath is the persistent report store location ("" = in memory).
	StorePath string
	// Analysis configures each window's analysis round. Telemetry and
	// MetricsAddr inside it are ignored — the monitor owns telemetry.
	Analysis core.AnalysisOptions
	// Telemetry receives the proraced_* series (nil disables).
	Telemetry *telemetry.Registry
	// Now overrides the clock (tests).
	Now func() time.Time
}

// tenant is one producer's stream state. Lifecycle: Ingest appends decoded
// segments to pending under mu; a worker (holding the busy claim via the
// monitor's queue) drains pending into window, analyses a copy of the
// window outside mu, then records the outcome back under mu. The busy
// claim serialises analysis per tenant, so window order is ingest order.
type tenant struct {
	name string

	mu      sync.Mutex
	pending []*tracefmt.Trace
	window  []*tracefmt.Trace
	program *prog.Program

	// Rolling health/degradation record, served by TenantStatus.
	segments     uint64
	bytes        uint64
	corrupt      uint64
	rejected     uint64
	queueDrops   uint64
	analyses     uint64
	failures     uint64
	lastError    string
	lastAnalysis time.Time
	lastReports  int

	queued bool
}

// TenantStatus is the externally visible health record of one tenant.
type TenantStatus struct {
	Tenant          string    `json:"tenant"`
	Program         string    `json:"program"`
	Segments        uint64    `json:"segments"`
	Bytes           uint64    `json:"bytes"`
	Corrupt         uint64    `json:"corrupt"`
	Rejected        uint64    `json:"rejected"`
	QueueDrops      uint64    `json:"queue_drops"`
	Analyses        uint64    `json:"analyses"`
	Failures        uint64    `json:"failures"`
	LastError       string    `json:"last_error,omitempty"`
	LastAnalysis    time.Time `json:"last_analysis"`
	LastReports     int       `json:"last_reports"`
	WindowSegments  int       `json:"window_segments"`
	PendingSegments int       `json:"pending_segments"`
}

// Monitor is the daemon core: per-tenant rolling-window incremental
// analysis over the segment-resumable core API, feeding a deduplicating
// persistent store. All methods are safe for concurrent use.
type Monitor struct {
	cfg   Config
	store *Store
	tel   *telemetry.Registry
	now   func() time.Time

	mu       sync.Mutex
	tenants  map[string]*tenant
	programs map[string]*prog.Program

	// Worker-pool queue: tenants with pending work, each present at most
	// once (tenant.queued). Guarded by qmu; workers wait on qcond.
	qmu      sync.Mutex
	qcond    *sync.Cond
	queue    []*tenant
	inflight int
	closed   bool
	wg       sync.WaitGroup
}

// New builds a Monitor, opening (and replaying) the persistent store and
// starting the worker pool.
func New(cfg Config) (*Monitor, error) {
	if cfg.Window <= 0 {
		cfg.Window = 8
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 32
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	cfg.Analysis.Telemetry = nil
	cfg.Analysis.MetricsAddr = ""
	store, err := OpenStore(cfg.StorePath)
	if err != nil {
		return nil, err
	}
	store.SetClock(cfg.Now)
	m := &Monitor{
		cfg:      cfg,
		store:    store,
		tel:      cfg.Telemetry,
		now:      cfg.Now,
		tenants:  map[string]*tenant{},
		programs: map[string]*prog.Program{},
	}
	m.qcond = sync.NewCond(&m.qmu)
	m.gauge("proraced_store_reports", "Distinct races in the persistent report store.").Set(int64(store.Len()))
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// Store exposes the monitor's report store.
func (m *Monitor) Store() *Store { return m.store }

// RegisterProgram makes a program image resolvable for incoming segments
// whose trace header names it (the POST /program path).
func (m *Monitor) RegisterProgram(p *prog.Program) {
	m.mu.Lock()
	m.programs[p.Name] = p
	m.mu.Unlock()
}

// resolveProgram maps a trace's program name to a built program:
// registered images first, then the built-in workload table, then the
// planted-bug table.
func (m *Monitor) resolveProgram(name string) (*prog.Program, error) {
	m.mu.Lock()
	p, ok := m.programs[name]
	m.mu.Unlock()
	if ok {
		return p, nil
	}
	if w, err := workload.ByName(name, 1); err == nil {
		p = w.Program
	} else if b, err := bugs.ByID(name); err == nil {
		p = b.Build(1).Workload.Program
	} else {
		return nil, fmt.Errorf("%w: %q", ErrUnknownProgram, name)
	}
	m.mu.Lock()
	m.programs[name] = p
	m.mu.Unlock()
	return p, nil
}

func (m *Monitor) tenantFor(name string) *tenant {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.tenants[name]
	if !ok {
		t = &tenant{name: name}
		m.tenants[name] = t
		m.gauge("proraced_tenants", "Tenants with at least one ingest attempt.").Set(int64(len(m.tenants)))
	}
	return t
}

// Ingest accepts one PRSG-framed segment from tenantName. Decoding,
// admission and (with Workers == 0) the analysis round happen before it
// returns; with a worker pool the analysis is scheduled and Ingest returns
// once the segment is queued. Failures are tenant-scoped: a corrupt frame
// or full queue degrades this tenant's record and leaves every other
// tenant — and the daemon — untouched.
func (m *Monitor) Ingest(tenantName string, frame []byte) error {
	m.qmu.Lock()
	closed := m.closed
	m.qmu.Unlock()
	if closed {
		return ErrClosed
	}
	t := m.tenantFor(tenantName)
	_, seg, err := tracefmt.DecodeSegment(frame)
	if err != nil {
		t.mu.Lock()
		t.corrupt++
		t.lastError = err.Error()
		t.mu.Unlock()
		m.count("proraced_segments_corrupt_total", "Ingested frames that failed PRSG decoding.").Inc()
		return fmt.Errorf("%w: %v", ErrCorruptSegment, err)
	}
	if _, err := m.resolveProgram(seg.Program); err != nil {
		t.mu.Lock()
		t.rejected++
		t.lastError = err.Error()
		t.mu.Unlock()
		m.count("proraced_segments_rejected_total", "Decoded segments rejected before analysis (unknown program, session mismatch).").Inc()
		return err
	}
	t.mu.Lock()
	if len(t.pending) >= m.cfg.QueueDepth {
		t.queueDrops++
		t.mu.Unlock()
		m.count("proraced_queue_rejections_total", "Segments dropped at admission because the tenant's pending queue was full.").Inc()
		return fmt.Errorf("%w: tenant %q has %d pending segments", ErrQueueFull, tenantName, m.cfg.QueueDepth)
	}
	t.pending = append(t.pending, seg)
	t.segments++
	t.bytes += seg.TotalBytes()
	t.mu.Unlock()
	m.count("proraced_segments_ingested_total", "Segments accepted into tenant windows.").Inc()
	m.count("proraced_segment_bytes_total", "Trace payload bytes accepted into tenant windows.").Add(seg.TotalBytes())
	if m.cfg.Workers == 0 {
		m.analyzeTenant(t)
		return nil
	}
	m.schedule(t)
	return nil
}

// schedule puts t on the worker queue unless it is already there or being
// processed; the processing worker re-checks pending before releasing its
// claim, so no segment is stranded.
func (m *Monitor) schedule(t *tenant) {
	m.qmu.Lock()
	if !t.queued && !m.closed {
		t.queued = true
		m.queue = append(m.queue, t)
		m.qcond.Signal()
	}
	m.qmu.Unlock()
}

func (m *Monitor) worker() {
	defer m.wg.Done()
	for {
		m.qmu.Lock()
		for len(m.queue) == 0 && !m.closed {
			m.qcond.Wait()
		}
		if len(m.queue) == 0 && m.closed {
			m.qmu.Unlock()
			return
		}
		t := m.queue[0]
		m.queue = m.queue[1:]
		m.inflight++
		m.qmu.Unlock()

		m.analyzeTenant(t)

		m.qmu.Lock()
		m.inflight--
		t.queued = false
		// New segments may have arrived while we analysed; requeue rather
		// than strand them (Ingest's schedule saw queued == true).
		t.mu.Lock()
		again := len(t.pending) > 0
		t.mu.Unlock()
		if again && !m.closed {
			t.queued = true
			m.queue = append(m.queue, t)
			m.qcond.Signal()
		}
		if m.inflight == 0 && len(m.queue) == 0 {
			m.qcond.Broadcast()
		}
		m.qmu.Unlock()
	}
}

// analyzeTenant runs one analysis round: drain pending into the rolling
// window, re-analyse the window on a fresh session, fold reports into the
// store. The tenant's busy claim (worker queue) serialises rounds, so
// pending/window mutation order is ingest order.
func (m *Monitor) analyzeTenant(t *tenant) {
	t.mu.Lock()
	t.window = append(t.window, t.pending...)
	t.pending = nil
	if len(t.window) > m.cfg.Window {
		t.window = t.window[len(t.window)-m.cfg.Window:]
	}
	window := append([]*tracefmt.Trace(nil), t.window...)
	t.mu.Unlock()
	if len(window) == 0 {
		return
	}

	p, err := m.resolveProgram(window[0].Program)
	if err != nil {
		m.recordFailure(t, err)
		return
	}
	a, err := core.NewAnalyzer(p, m.cfg.Analysis)
	if err != nil {
		m.recordFailure(t, err)
		return
	}
	rejected := 0
	for _, seg := range window {
		if err := a.Feed(seg); err != nil {
			// A window can legitimately mix runs (the producer restarted
			// with a new seed): segments of a different run are rejected
			// by the session and recorded as tenant degradation, and the
			// stale prefix is evicted below so the window converges on
			// the newest run instead of rejecting forever.
			rejected++
			m.count("proraced_segments_rejected_total", "Decoded segments rejected before analysis (unknown program, session mismatch).").Inc()
			continue
		}
	}
	if rejected > 0 {
		t.mu.Lock()
		t.rejected += uint64(rejected)
		// Keep only the suffix matching the newest segment's run identity.
		newest := window[len(window)-1]
		keep := t.window[:0]
		for _, seg := range t.window {
			if seg.Program == newest.Program && seg.Period == newest.Period && seg.Seed == newest.Seed {
				keep = append(keep, seg)
			}
		}
		t.window = keep
		t.mu.Unlock()
	}
	res, err := a.Finish()
	if err != nil {
		m.recordFailure(t, err)
		return
	}
	added, repeated, serr := m.store.Observe(t.name, window[0].Program, res.Reports)
	now := m.now()
	t.mu.Lock()
	t.analyses++
	t.lastAnalysis = now
	t.lastReports = len(res.Reports)
	if serr != nil {
		t.lastError = serr.Error()
	} else if rejected == 0 {
		t.lastError = ""
	}
	t.mu.Unlock()
	m.count("proraced_analyses_total", "Rolling-window analysis rounds completed.").Inc()
	m.count("proraced_reports_total", "Race reports produced by analysis rounds (pre-dedup).").AddInt(len(res.Reports))
	m.count("proraced_reports_new_total", "Distinct races first observed by this daemon.").AddInt(added)
	m.count("proraced_reports_dup_total", "Race observations deduplicated against the store.").AddInt(repeated)
	m.gauge("proraced_store_reports", "Distinct races in the persistent report store.").Set(int64(m.store.Len()))
}

func (m *Monitor) recordFailure(t *tenant, err error) {
	t.mu.Lock()
	t.failures++
	t.lastError = err.Error()
	t.mu.Unlock()
	m.count("proraced_analysis_failures_total", "Analysis rounds that failed (the tenant window is kept; the daemon is unaffected).").Inc()
}

// Wait blocks until every queued and in-flight analysis round has
// completed (quiescence). It does not prevent new ingests from starting
// new rounds afterwards.
func (m *Monitor) Wait() {
	m.qmu.Lock()
	for len(m.queue) > 0 || m.inflight > 0 {
		m.qcond.Wait()
	}
	m.qmu.Unlock()
}

// Close drains the worker pool (queued rounds finish first) and persists
// the store. Ingest after Close returns ErrClosed.
func (m *Monitor) Close() error {
	m.qmu.Lock()
	if m.closed {
		m.qmu.Unlock()
		return nil
	}
	for len(m.queue) > 0 || m.inflight > 0 {
		m.qcond.Wait()
	}
	m.closed = true
	m.qcond.Broadcast()
	m.qmu.Unlock()
	m.wg.Wait()
	return m.store.Save()
}

// Tenants returns every tenant's status, sorted by name.
func (m *Monitor) Tenants() []TenantStatus {
	m.mu.Lock()
	names := make([]*tenant, 0, len(m.tenants))
	for _, t := range m.tenants {
		names = append(names, t)
	}
	m.mu.Unlock()
	out := make([]TenantStatus, 0, len(names))
	for _, t := range names {
		out = append(out, m.tenantStatus(t))
	}
	sortTenantStatus(out)
	return out
}

func (m *Monitor) tenantStatus(t *tenant) TenantStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := TenantStatus{
		Tenant:          t.name,
		Segments:        t.segments,
		Bytes:           t.bytes,
		Corrupt:         t.corrupt,
		Rejected:        t.rejected,
		QueueDrops:      t.queueDrops,
		Analyses:        t.analyses,
		Failures:        t.failures,
		LastError:       t.lastError,
		LastAnalysis:    t.lastAnalysis,
		LastReports:     t.lastReports,
		WindowSegments:  len(t.window),
		PendingSegments: len(t.pending),
	}
	if len(t.window) > 0 {
		st.Program = t.window[len(t.window)-1].Program
	} else if len(t.pending) > 0 {
		st.Program = t.pending[len(t.pending)-1].Program
	}
	return st
}

func sortTenantStatus(ts []TenantStatus) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Tenant < ts[j].Tenant })
}

// count and gauge tolerate a nil registry (telemetry disabled).
func (m *Monitor) count(name, help string) *telemetry.Counter {
	return m.tel.Counter(name, help)
}

func (m *Monitor) gauge(name, help string) *telemetry.Gauge {
	return m.tel.Gauge(name, help)
}
