package monitor

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"prorace/internal/core"
	"prorace/internal/pmu/driver"
	"prorace/internal/prog"
	"prorace/internal/progtest"
	"prorace/internal/race"
	"prorace/internal/report"
	"prorace/internal/telemetry"
	"prorace/internal/tracefmt"
)

// oracleRun traces a small oracle-generated concurrent program and frames
// it as n PRSG segments from the given tenant — a complete producer-side
// run, ready to stream at a Monitor.
func oracleRun(t *testing.T, tenant string, n int) (*prog.Program, [][]byte) {
	t.Helper()
	p, _ := progtest.ConcurrentProgram(rand.New(rand.NewSource(7)))
	tr, err := core.TraceProgram(p, core.TraceOptions{Kind: driver.ProRace, Period: 2, Seed: 7, EnablePT: true})
	if err != nil {
		t.Fatal(err)
	}
	segs := tr.Trace.Split(n)
	frames := make([][]byte, len(segs))
	for i, seg := range segs {
		frames[i] = tracefmt.EncodeSegment(tracefmt.SegmentHeader{
			Seq:    uint64(i),
			Tenant: tenant,
			Final:  i == len(segs)-1,
		}, seg)
	}
	return p, frames
}

// syncConfig is the deterministic test configuration: no worker pool
// (rounds run inline in Ingest) and a ticking fake clock. The tick counter
// is package-global so a "restarted" monitor's clock continues where the
// previous one stopped, as a real wall clock would.
var fakeTicks = 0

func syncConfig(storePath string, reg *telemetry.Registry) Config {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	return Config{
		Window:    8,
		StorePath: storePath,
		Telemetry: reg,
		Now: func() time.Time {
			fakeTicks++
			return base.Add(time.Duration(fakeTicks) * time.Second)
		},
	}
}

// TestDaemonLifecycle is the ISSUE's lifecycle contract: ingest a run,
// snapshot the store, restart the daemon on the same store path, re-ingest
// the same run, and verify the races dedup into the same rows with bumped
// occurrence counts — not duplicate rows.
func TestDaemonLifecycle(t *testing.T) {
	dir := t.TempDir()
	store := filepath.Join(dir, "reports.json")
	p, frames := oracleRun(t, "web-1", 4)

	m, err := New(syncConfig(store, telemetry.New()))
	if err != nil {
		t.Fatal(err)
	}
	m.RegisterProgram(p)
	for _, f := range frames {
		if err := m.Ingest("web-1", f); err != nil {
			t.Fatal(err)
		}
	}
	first := m.Store().Reports()
	if len(first) == 0 {
		t.Fatal("no races stored after first run")
	}
	for _, r := range first {
		if r.Occurrences < 1 {
			t.Fatalf("report %s has occurrences %d", r.Fingerprint, r.Occurrences)
		}
		if r.Tenant != "web-1" || r.Program != p.Name {
			t.Fatalf("report attribution = (%q, %q), want (web-1, %q)", r.Tenant, r.Program, p.Name)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: a fresh monitor on the same store path must reload every
	// stored race.
	m2, err := New(syncConfig(store, telemetry.New()))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if got, want := m2.Store().Len(), len(first); got != want {
		t.Fatalf("store reload: %d reports, want %d", got, want)
	}
	m2.RegisterProgram(p)
	for _, f := range frames {
		if err := m2.Ingest("web-1", f); err != nil {
			t.Fatal(err)
		}
	}
	second := m2.Store().Reports()
	if len(second) != len(first) {
		t.Fatalf("re-ingest created rows: %d reports, want %d", len(second), len(first))
	}
	for i, r := range second {
		if r.Fingerprint != first[i].Fingerprint {
			t.Fatalf("report %d fingerprint changed across restart: %s vs %s", i, r.Fingerprint, first[i].Fingerprint)
		}
		if r.Occurrences <= first[i].Occurrences {
			t.Fatalf("report %s occurrences did not increase: %d -> %d", r.Fingerprint, first[i].Occurrences, r.Occurrences)
		}
		if !r.FirstSeen.Equal(first[i].FirstSeen) {
			t.Fatalf("report %s first-seen changed across restart", r.Fingerprint)
		}
		if !r.LastSeen.After(first[i].LastSeen) {
			t.Fatalf("report %s last-seen did not advance", r.Fingerprint)
		}
	}
}

// TestCorruptSegmentIsolation: a corrupt frame degrades its own tenant's
// record and nothing else — the other tenant's stream analyses normally
// and the daemon stays up.
func TestCorruptSegmentIsolation(t *testing.T) {
	reg := telemetry.New()
	m, err := New(syncConfig("", reg))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	p, frames := oracleRun(t, "good", 2)
	m.RegisterProgram(p)

	corrupt := append([]byte(nil), frames[0]...)
	corrupt[len(corrupt)/2] ^= 0xFF
	if err := m.Ingest("bad", corrupt); !errors.Is(err, ErrCorruptSegment) {
		t.Fatalf("corrupt ingest error = %v, want ErrCorruptSegment", err)
	}
	for _, f := range frames {
		if err := m.Ingest("good", f); err != nil {
			t.Fatal(err)
		}
	}
	if m.Store().Len() == 0 {
		t.Fatal("healthy tenant produced no reports after another tenant's corrupt segment")
	}
	var bad, good TenantStatus
	for _, st := range m.Tenants() {
		switch st.Tenant {
		case "bad":
			bad = st
		case "good":
			good = st
		}
	}
	if bad.Corrupt != 1 || bad.LastError == "" {
		t.Fatalf("bad tenant degradation not recorded: %+v", bad)
	}
	if good.Corrupt != 0 || good.Analyses == 0 || good.LastError != "" {
		t.Fatalf("good tenant affected by bad tenant: %+v", good)
	}
	if got := reg.Snapshot().Counters["proraced_segments_corrupt_total"]; got != 1 {
		t.Fatalf("proraced_segments_corrupt_total = %d, want 1", got)
	}
}

// TestQueueAdmission: with the worker pool wedged behind a slow round, a
// tenant's pending queue fills and further ingests are rejected with
// ErrQueueFull instead of buffering without bound.
func TestQueueAdmission(t *testing.T) {
	m, err := New(Config{Window: 4, QueueDepth: 2, Workers: 0, Telemetry: telemetry.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	p, frames := oracleRun(t, "t", 2)
	m.RegisterProgram(p)
	// Bypass the synchronous drain by stuffing pending directly: decode
	// the frame once and enqueue copies up to the depth.
	_, seg, err := tracefmt.DecodeSegment(frames[0])
	if err != nil {
		t.Fatal(err)
	}
	ten := m.tenantFor("t")
	ten.pending = append(ten.pending, ingestSeg{seg: seg}, ingestSeg{seg: seg})
	if err := m.Ingest("t", frames[1]); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("ingest into full queue = %v, want ErrQueueFull", err)
	}
	st := m.Tenants()[0]
	if st.QueueDrops != 1 {
		t.Fatalf("queue drops = %d, want 1", st.QueueDrops)
	}
}

// TestUnknownProgram: a segment naming an unresolvable program is rejected
// against its tenant.
func TestUnknownProgram(t *testing.T) {
	m, err := New(syncConfig("", telemetry.New()))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	tr := tracefmt.NewTrace("no-such-program", 2, 7)
	frame := tracefmt.EncodeSegment(tracefmt.SegmentHeader{}, tr)
	if err := m.Ingest("t", frame); !errors.Is(err, ErrUnknownProgram) {
		t.Fatalf("unknown-program ingest = %v, want ErrUnknownProgram", err)
	}
}

// TestWorkerPool streams two tenants' runs through an asynchronous pool
// and verifies quiescence via Wait and identical store contents to the
// synchronous path.
func TestWorkerPool(t *testing.T) {
	reg := telemetry.New()
	m, err := New(Config{Window: 8, QueueDepth: 32, Workers: 2, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	p, frames := oracleRun(t, "a", 4)
	m.RegisterProgram(p)
	for _, f := range frames {
		if err := m.Ingest("a", f); err != nil {
			t.Fatal(err)
		}
		if err := m.Ingest("b", f); err != nil {
			t.Fatal(err)
		}
	}
	m.Wait()
	if m.Store().Len() == 0 {
		t.Fatal("no reports after pooled ingestion")
	}
	// Both tenants saw the same run, so each race appears once per tenant
	// (fingerprints are tenant-scoped).
	byTenant := map[string]int{}
	for _, r := range m.Store().Reports() {
		byTenant[r.Tenant]++
	}
	if byTenant["a"] == 0 || byTenant["a"] != byTenant["b"] {
		t.Fatalf("per-tenant report counts diverge: %v", byTenant)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Ingest("a", frames[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("ingest after close = %v, want ErrClosed", err)
	}
}

// TestStoreObserveDedup exercises the store in isolation: same race twice
// is one row with two occurrences; Publish (the report.Sink face) works
// without attribution.
func TestStoreObserveDedup(t *testing.T) {
	s, err := OpenStore("")
	if err != nil {
		t.Fatal(err)
	}
	r := race.Report{
		Addr:   0x1000,
		First:  race.AccessInfo{TID: 1, PC: 0x40, Write: true, TSC: 10},
		Second: race.AccessInfo{TID: 2, PC: 0x80, Write: false, TSC: 20},
	}
	added, repeated, err := s.Observe("t", "p", []race.Report{r})
	if err != nil || added != 1 || repeated != 0 {
		t.Fatalf("first observe = (%d, %d, %v), want (1, 0, nil)", added, repeated, err)
	}
	// A later occurrence of the same PC pair at a different address and
	// time still dedups (heap addresses shift between runs).
	r2 := r
	r2.Addr = 0x2000
	r2.First.TSC, r2.Second.TSC = 100, 200
	r2.First, r2.Second = r2.Second, r2.First // unordered pair
	added, repeated, err = s.Observe("t", "p", []race.Report{r2})
	if err != nil || added != 0 || repeated != 1 {
		t.Fatalf("second observe = (%d, %d, %v), want (0, 1, nil)", added, repeated, err)
	}
	if got := s.Reports()[0].Occurrences; got != 2 {
		t.Fatalf("occurrences = %d, want 2", got)
	}
	// Different tenant: separate row.
	if added, _, _ := s.Observe("other", "p", []race.Report{r}); added != 1 {
		t.Fatal("tenant should scope fingerprints")
	}
	var sink report.Sink = s
	sink.Publish([]race.Report{r})
	if s.Len() != 3 {
		t.Fatalf("store rows = %d, want 3 (unattributed publish adds one)", s.Len())
	}
}

// TestStoreCorruptFile: a damaged store file is salvaged — the daemon
// starts fresh with the damaged original preserved next to the store and a
// warning recorded — rather than refusing to boot and leaving the fleet
// unmonitored.
func TestStoreCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reports.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenStore(path)
	if err != nil {
		t.Fatalf("corrupt store was not salvaged: %v", err)
	}
	if s.Len() != 0 {
		t.Fatalf("salvaged store has %d reports, want 0", s.Len())
	}
	if s.LoadWarning() == "" {
		t.Fatal("salvage left no load warning")
	}
	backup, err := os.ReadFile(path + ".corrupt")
	if err != nil {
		t.Fatalf("damaged original not preserved: %v", err)
	}
	if string(backup) != "{not json" {
		t.Fatalf("preserved backup altered: %q", backup)
	}
	// The fresh store persists over the old path.
	if _, _, err := s.Observe("t", "p", []race.Report{{
		First:  race.AccessInfo{TID: 1, PC: 0x40, Write: true},
		Second: race.AccessInfo{TID: 2, PC: 0x80},
	}}); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(path)
	if err != nil || s2.Len() != 1 || s2.LoadWarning() != "" {
		t.Fatalf("reopen after salvage = (%v, %d reports, warning %q)", err, s2.Len(), s2.LoadWarning())
	}
}

// TestHTTPSurface drives the daemon end to end over HTTP: program upload,
// segment ingest (including a corrupt frame and a missing tenant), report
// and tenant listing, and the co-hosted /metrics families.
func TestHTTPSurface(t *testing.T) {
	reg := telemetry.New()
	m, err := New(syncConfig("", reg))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	mux := telemetry.NewMux(reg)
	m.Attach(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	p, frames := oracleRun(t, "web-1", 3)

	post := func(path string, body []byte) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	// The program is not resolvable until uploaded.
	if resp := post("/ingest?tenant=web-1", frames[0]); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("pre-upload ingest status = %d, want 400", resp.StatusCode)
	}
	if resp := post("/program", prog.EncodeImage(p)); resp.StatusCode != http.StatusOK {
		t.Fatalf("program upload status = %d", resp.StatusCode)
	}
	for _, f := range frames {
		if resp := post("/ingest?tenant=web-1", f); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("ingest status = %d, want 202", resp.StatusCode)
		}
	}
	if resp := post("/ingest", frames[0]); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("tenantless ingest status = %d, want 400", resp.StatusCode)
	}
	corrupt := append([]byte(nil), frames[0]...)
	corrupt[10] ^= 0xFF
	if resp := post("/ingest?tenant=web-1", corrupt); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt ingest status = %d, want 400", resp.StatusCode)
	}

	var stored []*StoredReport
	getJSON(t, srv.URL+"/reports", &stored)
	if len(stored) == 0 {
		t.Fatal("GET /reports returned no races")
	}
	var tenants []TenantStatus
	getJSON(t, srv.URL+"/tenants", &tenants)
	if len(tenants) != 1 || tenants[0].Tenant != "web-1" || tenants[0].Corrupt != 1 {
		t.Fatalf("GET /tenants = %+v", tenants)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	families := 0
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, "proraced_") && !strings.HasSuffix(line, " 0") {
			families++
		}
	}
	if families < 5 {
		t.Fatalf("only %d non-zero proraced_* series on /metrics:\n%s", families, raw)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, v); err != nil {
		t.Fatalf("decoding %s: %v\n%s", url, err, raw)
	}
}
