// Package monitor is the continuous fleet-monitoring layer over the
// segment-resumable analysis API: a daemon core (Monitor) that ingests
// trace segments from many concurrently running tenants, re-analyses each
// tenant's rolling window on a worker pool, and folds the resulting race
// reports into a persistent deduplicating store. cmd/proraced wraps it in
// an HTTP listener; the package itself is transport-agnostic and fully
// testable in-process.
package monitor

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"prorace/internal/faultinject"
	"prorace/internal/race"
)

// StoredReport is one distinct race across the fleet's history: the
// defining report plus its observation record. Identity is Fingerprint —
// stable across daemon restarts, window re-analyses and re-ingests of the
// same run — so a race seen again bumps Occurrences instead of adding a
// row.
type StoredReport struct {
	// Fingerprint identifies the race: FNV-1a over (tenant, program, the
	// unordered racing PC pair, and each access's read/write kind).
	// Addresses and timestamps are deliberately excluded — heap addresses
	// shift between runs of one binary, but the racing instruction pair is
	// the race.
	Fingerprint string `json:"fingerprint"`
	// Tenant is the producing process/tenant tag the ingest layer assigned.
	Tenant string `json:"tenant"`
	// Program is the traced program's name.
	Program string `json:"program"`
	// Report is the first-observed concrete report (representative
	// addresses/TSCs; later occurrences may differ in those).
	Report race.Report `json:"report"`
	// FirstSeen and LastSeen bound the observation interval.
	FirstSeen time.Time `json:"first_seen"`
	LastSeen  time.Time `json:"last_seen"`
	// Occurrences counts how many times the race was observed (across
	// window re-analyses, runs and restarts).
	Occurrences int `json:"occurrences"`
}

// Fingerprint computes the stable identity of one report (see
// StoredReport.Fingerprint).
func Fingerprint(tenant, program string, r race.Report) string {
	a, b := r.First, r.Second
	if a.PC > b.PC {
		a, b = b, a
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s\x00%s\x00%x:%t\x00%x:%t", tenant, program, a.PC, a.Write, b.PC, b.Write)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Store is the persistent deduplicating race-report store. A Store with an
// empty path lives in memory only; otherwise every mutation batch is
// persisted as JSON via an atomic temp-file rename, so a crash leaves
// either the old or the new state, never a torn file.
//
// Store implements report.Sink: Publish records reports without
// tenant/program attribution (both empty), for callers that only have the
// generic sink shape. The daemon uses Observe, which attributes.
type Store struct {
	mu      sync.Mutex
	path    string
	reports map[string]*StoredReport
	cursors map[string]uint64
	now     func() time.Time

	// loadWarning describes a corrupt store file that load salvaged into
	// a fresh store (the damaged original is kept as path.corrupt). The
	// daemon surfaces it via log + telemetry instead of refusing to boot.
	loadWarning string
}

// storeFile is the on-disk envelope. Cursors maps each tenant to the
// journal index its analysis has durably reached (see wal.go): persisting
// it in the same atomic rename as the reports it covers is what makes
// replay effectively-once — a round's observations and its cursor advance
// land together or not at all.
type storeFile struct {
	Version int               `json:"version"`
	Reports []*StoredReport   `json:"reports"`
	Cursors map[string]uint64 `json:"cursors,omitempty"`
}

const storeVersion = 1

// OpenStore opens (creating if absent) the report store at path; an empty
// path yields a memory-only store. A corrupt or truncated store file is
// salvaged: the damaged file is preserved as path.corrupt, the store
// starts fresh, and LoadWarning reports what happened — a bad byte on
// disk degrades history, it must not keep the fleet unmonitored.
func OpenStore(path string) (*Store, error) {
	s := &Store{path: path, reports: map[string]*StoredReport{}, cursors: map[string]uint64{}, now: time.Now}
	if path == "" {
		return s, nil
	}
	// A crash between temp write and rename leaves .store-* litter behind;
	// sweep it so the directory does not accumulate orphans.
	if stale, err := filepath.Glob(filepath.Join(filepath.Dir(path), ".store-*")); err == nil {
		for _, p := range stale {
			os.Remove(p)
		}
	}
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("monitor: reading store: %w", err)
	}
	var f storeFile
	salvage := func(reason string) (*Store, error) {
		backup := path + ".corrupt"
		if err := os.Rename(path, backup); err != nil {
			return nil, fmt.Errorf("monitor: store %s is corrupt (%s) and could not be set aside: %w", path, reason, err)
		}
		s.loadWarning = fmt.Sprintf("store %s was corrupt (%s); starting fresh, damaged file kept at %s", path, reason, backup)
		return s, nil
	}
	if err := json.Unmarshal(raw, &f); err != nil {
		return salvage(err.Error())
	}
	if f.Version != storeVersion {
		return salvage(fmt.Sprintf("unsupported version %d", f.Version))
	}
	for _, r := range f.Reports {
		s.reports[r.Fingerprint] = r
	}
	for t, c := range f.Cursors {
		s.cursors[t] = c
	}
	return s, nil
}

// LoadWarning reports a salvaged-at-open condition ("" = clean load).
func (s *Store) LoadWarning() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loadWarning
}

// Cursor returns the journal index tenant's analysis has durably reached.
func (s *Store) Cursor(tenant string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cursors[tenant]
}

// SetCursor advances tenant's cursor in memory (persisted by the next
// save). Cursors never move backwards.
func (s *Store) SetCursor(tenant string, v uint64) {
	s.mu.Lock()
	if v > s.cursors[tenant] {
		s.cursors[tenant] = v
	}
	s.mu.Unlock()
}

// SetClock overrides the store's time source (tests).
func (s *Store) SetClock(now func() time.Time) {
	s.mu.Lock()
	s.now = now
	s.mu.Unlock()
}

// Observe folds one analysis round's reports into the store, attributed to
// (tenant, program). It returns how many races were new and how many were
// repeat observations, and persists the store if anything changed.
func (s *Store) Observe(tenant, program string, rs []race.Report) (added, repeated int, err error) {
	return s.ObserveAt(tenant, program, rs, 0)
}

// ObserveAt is Observe plus a cursor advance: cursor (when non-zero) is
// the journal index this round's analysis reached, recorded in the same
// atomic persist as the round's observations. A round with no reports
// advances the cursor in memory only — replaying such a round after a
// crash is idempotent (it observes nothing again), so the extra disk
// write would buy nothing.
func (s *Store) ObserveAt(tenant, program string, rs []race.Report, cursor uint64) (added, repeated int, err error) {
	fresh, repeated, err := s.ObserveNewAt(tenant, program, rs, cursor)
	return len(fresh), repeated, err
}

// ObserveNewAt is ObserveAt, additionally returning a copy of every
// first-seen report the batch introduced. The store's dedup is durable
// (the report set reloads across restarts), which makes "fresh here"
// exactly "alert-worthy": a race the daemon has never stored before, not
// one re-observed by a window re-analysis or a replay.
func (s *Store) ObserveNewAt(tenant, program string, rs []race.Report, cursor uint64) (fresh []*StoredReport, repeated int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cursor > s.cursors[tenant] {
		s.cursors[tenant] = cursor
	}
	if len(rs) == 0 {
		return nil, 0, nil
	}
	now := s.now()
	// One analysis round re-reports every race in the window, so dedup
	// within the batch: a fingerprint counts once per Observe call.
	inBatch := map[string]bool{}
	for _, r := range rs {
		fp := Fingerprint(tenant, program, r)
		if inBatch[fp] {
			continue
		}
		inBatch[fp] = true
		if have, ok := s.reports[fp]; ok {
			have.LastSeen = now
			have.Occurrences++
			// Upgrade: if an earlier occurrence had no reproduction recipe
			// and this one does, keep it with the representative report.
			if have.Report.Witness == "" && r.Witness != "" {
				have.Report.Witness = r.Witness
			}
			repeated++
			continue
		}
		sr := &StoredReport{
			Fingerprint: fp,
			Tenant:      tenant,
			Program:     program,
			Report:      r,
			FirstSeen:   now,
			LastSeen:    now,
			Occurrences: 1,
		}
		s.reports[fp] = sr
		cp := *sr
		fresh = append(fresh, &cp)
	}
	if len(fresh)+repeated == 0 {
		return nil, 0, nil
	}
	return fresh, repeated, s.saveLocked()
}

// Publish implements report.Sink: Observe without attribution.
func (s *Store) Publish(rs []race.Report) {
	s.Observe("", "", rs)
}

// Reports returns the stored races, sorted by first-seen time then
// fingerprint (stable render order).
func (s *Store) Reports() []*StoredReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*StoredReport, 0, len(s.reports))
	for _, r := range s.reports {
		cp := *r
		out = append(out, &cp)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].FirstSeen.Equal(out[j].FirstSeen) {
			return out[i].FirstSeen.Before(out[j].FirstSeen)
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out
}

// ReportsFor returns tenant's stored races, newest-first by last-seen
// time, at most n of them (n <= 0 means all). The /tenantz drill-down
// uses it to show recent reports next to the lineage ring.
func (s *Store) ReportsFor(tenant string, n int) []*StoredReport {
	s.mu.Lock()
	out := make([]*StoredReport, 0, 8)
	for _, r := range s.reports {
		if r.Tenant == tenant {
			cp := *r
			out = append(out, &cp)
		}
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].LastSeen.Equal(out[j].LastSeen) {
			return out[i].LastSeen.After(out[j].LastSeen)
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Len reports how many distinct races the store holds.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.reports)
}

// Save persists the store now (no-op for memory-only stores).
func (s *Store) Save() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.saveLocked()
}

// saveLocked writes the JSON envelope atomically and durably: the temp
// file is fsynced before the rename and the parent directory after it, so
// a machine crash leaves either the complete old state or the complete
// new state — never a torn or unlinked file. Caller holds s.mu.
func (s *Store) saveLocked() error {
	if s.path == "" {
		return nil
	}
	f := storeFile{Version: storeVersion, Reports: make([]*StoredReport, 0, len(s.reports))}
	for _, r := range s.reports {
		f.Reports = append(f.Reports, r)
	}
	sort.Slice(f.Reports, func(i, j int) bool { return f.Reports[i].Fingerprint < f.Reports[j].Fingerprint })
	if len(s.cursors) > 0 {
		f.Cursors = make(map[string]uint64, len(s.cursors))
		for t, c := range s.cursors {
			f.Cursors[t] = c
		}
	}
	raw, err := json.MarshalIndent(&f, "", " ")
	if err != nil {
		return fmt.Errorf("monitor: encoding store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(s.path), ".store-*")
	if err != nil {
		return fmt.Errorf("monitor: persisting store: %w", err)
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("monitor: persisting store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("monitor: persisting store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("monitor: persisting store: %w", err)
	}
	// Chaos point: the classic torn-update window — temp written, rename
	// pending. Recovery must replay the round because the cursor inside
	// the temp file never became the store.
	faultinject.Crash("store.rename.mid")
	if err := os.Rename(tmp.Name(), s.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("monitor: persisting store: %w", err)
	}
	syncDir(filepath.Dir(s.path))
	return nil
}
