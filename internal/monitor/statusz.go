package monitor

import (
	"fmt"
	"html/template"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"prorace/internal/telemetry"
)

// StatuszConfig is the operator-relevant slice of the daemon's Config,
// rendered on /statusz so "what is this daemon running with?" never needs
// a shell on the box.
type StatuszConfig struct {
	Window       int    `json:"window"`
	QueueDepth   int    `json:"queue_depth"`
	Workers      int    `json:"workers"`
	Fsync        string `json:"fsync"`
	Durability   bool   `json:"durability"`
	WindowMaxAge string `json:"window_max_age,omitempty"`
	LineageDepth int    `json:"lineage_depth"`
	StorePath    string `json:"store_path,omitempty"`
	AlertURL     string `json:"alert_url,omitempty"`
}

// TenantStatusz is one /statusz table row: the health record plus the
// tail of the lineage ring.
type TenantStatusz struct {
	TenantStatus
	LineageTail []SegmentLineage `json:"lineage_tail"`
}

// Statusz is the full fleet-overview document.
type Statusz struct {
	Service       string          `json:"service"`
	Version       string          `json:"version"`
	GoVersion     string          `json:"go_version"`
	PID           int             `json:"pid"`
	Started       time.Time       `json:"started"`
	UptimeSeconds float64         `json:"uptime_seconds"`
	Config        StatuszConfig   `json:"config"`
	StoreReports  int             `json:"store_reports"`
	Tenants       []TenantStatusz `json:"tenants"`
}

// Tenantz is the /tenantz drill-down: one tenant's health, its whole
// lineage ring, and its recent reports.
type Tenantz struct {
	TenantStatus
	Lineages []SegmentLineage `json:"lineages"`
	Reports  []*StoredReport  `json:"reports"`
}

// statuszLineageTail bounds the per-tenant lineage preview on the fleet
// overview (the full ring lives on /tenantz).
const statuszLineageTail = 8

// Statusz assembles the fleet-overview snapshot.
func (m *Monitor) Statusz() Statusz {
	now := m.now()
	cfg := StatuszConfig{
		Window:       m.cfg.Window,
		QueueDepth:   m.cfg.QueueDepth,
		Workers:      m.cfg.Workers,
		Fsync:        m.cfg.Fsync.Mode,
		Durability:   m.wal != nil,
		LineageDepth: m.cfg.LineageDepth,
		StorePath:    m.cfg.StorePath,
		AlertURL:     m.cfg.Alert.URL,
	}
	if cfg.Fsync == "" {
		cfg.Fsync = FsyncAlways
	}
	if m.cfg.WindowMaxAge > 0 {
		cfg.WindowMaxAge = m.cfg.WindowMaxAge.String()
	}
	s := Statusz{
		Service:       "proraced",
		Version:       telemetry.BuildVersion(),
		GoVersion:     runtime.Version(),
		PID:           os.Getpid(),
		Started:       m.started,
		UptimeSeconds: now.Sub(m.started).Seconds(),
		Config:        cfg,
		StoreReports:  m.store.Len(),
	}
	for _, ts := range m.Tenants() {
		s.Tenants = append(s.Tenants, TenantStatusz{
			TenantStatus: ts,
			LineageTail:  m.Lineages(ts.Tenant, statuszLineageTail),
		})
	}
	return s
}

// Tenantz assembles the drill-down for one tenant (ok=false: unknown).
func (m *Monitor) Tenantz(tenantName string) (Tenantz, bool) {
	m.mu.Lock()
	t, ok := m.tenants[tenantName]
	m.mu.Unlock()
	if !ok {
		return Tenantz{}, false
	}
	return Tenantz{
		TenantStatus: m.tenantStatus(t),
		Lineages:     t.lin.tail(0),
		Reports:      m.store.ReportsFor(tenantName, 20),
	}, true
}

// wantJSON: explicit ?format=json, or an Accept header that asks for JSON
// without asking for HTML (curl-with-Accept and the status subcommand).
func wantJSON(r *http.Request) bool {
	if r.URL.Query().Get("format") == "json" {
		return true
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "application/json") && !strings.Contains(accept, "text/html")
}

func (m *Monitor) handleStatusz(w http.ResponseWriter, r *http.Request) {
	s := m.Statusz()
	if wantJSON(r) {
		writeJSON(w, s)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	if err := statuszTmpl.Execute(w, s); err != nil {
		m.log.Error("rendering statusz failed", "err", err)
	}
}

func (m *Monitor) handleTenantz(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("tenant")
	if name == "" {
		http.Error(w, "missing tenant parameter", http.StatusBadRequest)
		return
	}
	tz, ok := m.Tenantz(name)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown tenant %q", name), http.StatusNotFound)
		return
	}
	if wantJSON(r) {
		writeJSON(w, tz)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	if err := tenantzTmpl.Execute(w, tz); err != nil {
		m.log.Error("rendering tenantz failed", "err", err)
	}
}

var statuszFuncs = template.FuncMap{
	"age": func(t time.Time) string {
		if t.IsZero() {
			return "—"
		}
		return time.Since(t).Round(time.Second).String()
	},
	"dur": func(secs float64) string {
		return (time.Duration(secs * float64(time.Second))).Round(time.Second).String()
	},
	"stamps": func(ls []LineageTransition) string {
		parts := make([]string, 0, len(ls))
		for _, tr := range ls {
			parts = append(parts, tr.Stage)
		}
		return strings.Join(parts, " → ")
	},
}

var statuszTmpl = template.Must(template.New("statusz").Funcs(statuszFuncs).Parse(`<!DOCTYPE html>
<html><head><title>proraced statusz</title><style>
body { font-family: monospace; margin: 2em; }
table { border-collapse: collapse; margin: 1em 0; }
th, td { border: 1px solid #999; padding: 4px 8px; text-align: left; }
th { background: #eee; }
.err { color: #a00; }
.terminal { color: #060; }
</style></head><body>
<h1>proraced</h1>
<p>version {{.Version}} · {{.GoVersion}} · pid {{.PID}} · up {{dur .UptimeSeconds}} · {{.StoreReports}} distinct races stored</p>
<h2>config</h2>
<table><tr>
<th>window</th><th>queue depth</th><th>workers</th><th>fsync</th><th>durability</th><th>window max age</th><th>lineage depth</th><th>alerting</th>
</tr><tr>
<td>{{.Config.Window}}</td><td>{{.Config.QueueDepth}}</td><td>{{.Config.Workers}}</td><td>{{.Config.Fsync}}</td><td>{{.Config.Durability}}</td><td>{{if .Config.WindowMaxAge}}{{.Config.WindowMaxAge}}{{else}}off{{end}}</td><td>{{.Config.LineageDepth}}</td><td>{{if .Config.AlertURL}}{{.Config.AlertURL}}{{else}}off{{end}}</td>
</tr></table>
<h2>tenants</h2>
{{if not .Tenants}}<p>(no tenants yet)</p>{{else}}
<table><tr>
<th>tenant</th><th>program</th><th>segments</th><th>pending</th><th>window</th><th>wal bytes</th><th>cursor lag</th><th>window oldest</th><th>analyses</th><th>last reports</th><th>lineage (minted/terminal/held)</th><th>last error</th>
</tr>
{{range .Tenants}}<tr>
<td><a href="/tenantz?tenant={{.Tenant}}">{{.Tenant}}</a></td>
<td>{{.Program}}</td><td>{{.Segments}}</td><td>{{.PendingSegments}}</td><td>{{.WindowSegments}}</td>
<td>{{.WALBytes}}</td><td>{{.CursorLag}}</td><td>{{age .WindowOldest}}</td>
<td>{{.Analyses}}</td><td>{{.LastReports}}</td>
<td>{{.LineageMinted}}/{{.LineageTerminal}}/{{.LineageHeld}}</td>
<td class="err">{{.LastError}}</td>
</tr>{{end}}
</table>
{{range .Tenants}}{{if .LineageTail}}
<h3>{{.Tenant}} — lineage tail</h3>
<table><tr><th>id</th><th>seq</th><th>stage</th><th>rounds</th><th>recovered</th><th>path</th></tr>
{{$tenant := .Tenant}}{{range .LineageTail}}<tr>
<td>{{.ID}}</td><td>{{.Seq}}</td><td class="terminal">{{.Stage}}</td><td>{{.Rounds}}</td><td>{{if .Recovered}}yes{{end}}</td><td>{{stamps .Transitions}}</td>
</tr>{{end}}</table>
{{end}}{{end}}
{{end}}
</body></html>
`))

var tenantzTmpl = template.Must(template.New("tenantz").Funcs(statuszFuncs).Parse(`<!DOCTYPE html>
<html><head><title>proraced tenantz: {{.Tenant}}</title><style>
body { font-family: monospace; margin: 2em; }
table { border-collapse: collapse; margin: 1em 0; }
th, td { border: 1px solid #999; padding: 4px 8px; text-align: left; }
th { background: #eee; }
.err { color: #a00; }
</style></head><body>
<h1>tenant {{.Tenant}}</h1>
<p><a href="/statusz">&larr; statusz</a></p>
<p>program {{.Program}} · {{.Segments}} segments ({{.Bytes}} bytes) · {{.Analyses}} analyses · {{.Failures}} failures
· {{.Replayed}} replayed · {{.Retired}} retired · {{.Duplicates}} duplicates</p>
{{if .LastError}}<p class="err">last error: {{.LastError}}</p>{{end}}
{{if .Salvage}}<p class="err">{{.Salvage}}</p>{{end}}
<h2>lineage ring ({{len .Lineages}} entries)</h2>
<table><tr><th>id</th><th>seq</th><th>journal</th><th>bytes</th><th>stage</th><th>rounds</th><th>recovered</th><th>error</th><th>transitions</th></tr>
{{range .Lineages}}<tr>
<td>{{.ID}}</td><td>{{.Seq}}</td><td>{{.JournalIndex}}</td><td>{{.Bytes}}</td><td>{{.Stage}}</td><td>{{.Rounds}}</td><td>{{if .Recovered}}yes{{end}}</td><td class="err">{{.Error}}</td>
<td>{{range $i, $tr := .Transitions}}{{if $i}} → {{end}}{{$tr.Stage}}@{{$tr.At.Format "15:04:05.000"}}{{end}}</td>
</tr>{{end}}</table>
<h2>recent reports</h2>
{{if not .Reports}}<p>(none)</p>{{else}}
<table><tr><th>fingerprint</th><th>program</th><th>occurrences</th><th>first seen</th><th>last seen</th><th>witness</th></tr>
{{range .Reports}}<tr>
<td>{{.Fingerprint}}</td><td>{{.Program}}</td><td>{{.Occurrences}}</td><td>{{.FirstSeen.Format "2006-01-02 15:04:05"}}</td><td>{{.LastSeen.Format "2006-01-02 15:04:05"}}</td><td>{{if .Report.Witness}}yes{{end}}</td>
</tr>{{end}}</table>
{{end}}
</body></html>
`))
