package monitor

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"prorace/internal/prog"
	"prorace/internal/telemetry"
)

// occurrences reduces a store to its chaos-equivalence view: fingerprint
// -> occurrence count.
func occurrences(s *Store) map[string]int {
	out := map[string]int{}
	for _, r := range s.Reports() {
		out[r.Fingerprint] = r.Occurrences
	}
	return out
}

func sameOccurrences(t *testing.T, got, want map[string]int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("report sets differ: %d vs %d fingerprints", len(got), len(want))
	}
	for fp, n := range want {
		if got[fp] != n {
			t.Fatalf("fingerprint %s: %d occurrences, want %d", fp, got[fp], n)
		}
	}
}

// durableConfig is syncConfig plus a journal.
func durableConfig(dir string) Config {
	cfg := syncConfig(filepath.Join(dir, "reports.json"), telemetry.New())
	cfg.Window = 4
	cfg.WALDir = filepath.Join(dir, "wal")
	cfg.Logger = discardLogger()
	return cfg
}

// TestRecoveryReplay is the heart of the durability contract: segments
// that were journaled and acknowledged but never analysed (the daemon
// died first) are replayed at boot through the normal ingest path, and
// the resulting store — fingerprints AND occurrence counts — is identical
// to an uninterrupted run's.
func TestRecoveryReplay(t *testing.T) {
	p, frames := oracleRun(t, "web-1", 6)

	// Uninterrupted baseline.
	base, err := New(durableConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	base.RegisterProgram(p)
	for _, f := range frames {
		if err := base.Ingest("web-1", f); err != nil {
			t.Fatal(err)
		}
	}
	want := occurrences(base.Store())
	if len(want) == 0 {
		t.Fatal("baseline produced no races")
	}
	base.Close()

	// Crashed daemon: everything reached the journal (the producer was
	// acknowledged) but nothing was ever analysed — the worst-case suffix.
	dir := t.TempDir()
	cfg := durableConfig(dir)
	w, err := OpenWAL(cfg.WALDir, FsyncPolicy{Mode: FsyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SaveProgram(p.Name, prog.EncodeImage(p)); err != nil {
		t.Fatal(err)
	}
	for i, f := range frames {
		if _, err := w.Append("web-1", fmt.Sprintf("run-%d", i), fmt.Sprintf("lin-%d", i), f); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	sameOccurrences(t, occurrences(m.Store()), want)
	st := m.Tenants()[0]
	if st.Replayed != uint64(len(frames)) {
		t.Fatalf("replayed = %d, want %d", st.Replayed, len(frames))
	}
	if got := cfg.Telemetry.Snapshot().Counters["proraced_recovery_replayed_total"]; got != uint64(len(frames)) {
		t.Fatalf("proraced_recovery_replayed_total = %d, want %d", got, len(frames))
	}
	// The replayed keys were re-learned, so a producer retry of an already
	// accepted segment still dedups after the restart.
	if err := m.IngestKeyed("web-1", "run-2", frames[2]); err != nil {
		t.Fatal(err)
	}
	if got := m.Tenants()[0].Duplicates; got != 1 {
		t.Fatalf("post-recovery resend duplicates = %d, want 1", got)
	}
	sameOccurrences(t, occurrences(m.Store()), want)
}

// TestRecoveryAfterCleanShutdown: a drained daemon leaves nothing to
// replay — the cursor covers the whole journal, the rolling window is
// rebuilt silently, and the store is untouched by the restart.
func TestRecoveryAfterCleanShutdown(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	p, frames := oracleRun(t, "web-1", 6)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.RegisterProgram(p)
	for i, f := range frames {
		if err := m.IngestKeyed("web-1", fmt.Sprintf("k%d", i), f); err != nil {
			t.Fatal(err)
		}
	}
	want := occurrences(m.Store())
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	cfg2 := durableConfig(dir)
	m2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	sameOccurrences(t, occurrences(m2.Store()), want)
	st := m2.Tenants()[0]
	if st.Replayed != 0 {
		t.Fatalf("clean shutdown still replayed %d segments", st.Replayed)
	}
	if st.WindowSegments == 0 {
		t.Fatal("rolling window not rebuilt after restart")
	}
	// The stream continues where it left off: the next segment analyses
	// against the rebuilt window, without bootstrapping from scratch.
	if err := m2.IngestKeyed("web-1", "k-next", frames[len(frames)-1]); err != nil {
		t.Fatal(err)
	}
	if got := m2.Tenants()[0].Analyses; got != 1 {
		t.Fatalf("analyses after restart = %d, want 1", got)
	}
}

// TestGracefulDrainNoLoss: Close with a live worker pool lets every
// queued round finish and persists store + cursors, so a restart finds
// zero accepted segments to replay — the SIGTERM drain contract.
func TestGracefulDrainNoLoss(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.Workers = 2
	cfg.Now = nil // real clock: concurrent workers + fake tick counter would race
	p, frames := oracleRun(t, "web-1", 6)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.RegisterProgram(p)
	for _, f := range frames {
		if err := m.Ingest("web-1", f); err != nil {
			t.Fatal(err)
		}
	}
	// No Wait: Close itself must drain the queue before persisting.
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if m.Store().Len() == 0 {
		t.Fatal("drain persisted no races")
	}
	want := occurrences(m.Store())

	cfg2 := durableConfig(dir)
	m2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if st := m2.Tenants()[0]; st.Replayed != 0 {
		t.Fatalf("drain lost segments: %d replayed at restart", st.Replayed)
	}
	sameOccurrences(t, occurrences(m2.Store()), want)
}

// TestRecoveryTornTail: a journal whose last record was torn by a crash
// boots with the tail truncated and the damage recorded as tenant
// degradation — never a failed start. The torn segment was never
// acknowledged, so losing it is correct.
func TestRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	p, frames := oracleRun(t, "web-1", 4)
	w, err := OpenWAL(cfg.WALDir, FsyncPolicy{Mode: FsyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	w.SaveProgram(p.Name, prog.EncodeImage(p))
	for _, f := range frames {
		if _, err := w.Append("web-1", "", "", f); err != nil {
			t.Fatal(err)
		}
	}
	j, _ := w.journalFor("web-1")
	// Model the crash mid-append: chop the final record in half.
	tear := int64(walRecordLen(walVersion, "", "", frames[len(frames)-1]) / 2)
	if err := j.f.Truncate(j.size - tear); err != nil {
		t.Fatal(err)
	}
	w.Close()

	m, err := New(cfg)
	if err != nil {
		t.Fatalf("torn journal failed the boot: %v", err)
	}
	defer m.Close()
	st := m.Tenants()[0]
	if st.Replayed != uint64(len(frames)-1) {
		t.Fatalf("replayed = %d, want %d (the torn record is gone)", st.Replayed, len(frames)-1)
	}
	if st.Salvage == "" {
		t.Fatal("journal salvage left no degradation record")
	}
	snap := cfg.Telemetry.Snapshot().Counters
	if snap["proraced_wal_salvaged_bytes_total"] == 0 {
		t.Fatalf("salvage telemetry missing: %v", snap)
	}
}

// TestIdempotentResend: the same key twice is acknowledged twice but
// ingested once — the producer-retry contract.
func TestIdempotentResend(t *testing.T) {
	m, err := New(syncConfig("", telemetry.New()))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	p, frames := oracleRun(t, "t", 2)
	m.RegisterProgram(p)
	if err := m.IngestKeyed("t", "abc", frames[0]); err != nil {
		t.Fatal(err)
	}
	if err := m.IngestKeyed("t", "abc", frames[0]); err != nil {
		t.Fatal(err)
	}
	st := m.Tenants()[0]
	if st.Segments != 1 || st.Duplicates != 1 {
		t.Fatalf("segments=%d duplicates=%d, want 1/1", st.Segments, st.Duplicates)
	}
	// A different key for the same bytes is a deliberate re-send: ingested.
	if err := m.IngestKeyed("t", "def", frames[0]); err != nil {
		t.Fatal(err)
	}
	if st := m.Tenants()[0]; st.Segments != 2 {
		t.Fatalf("distinct-key resend not ingested: %+v", st)
	}
}

// TestWindowRetirement: segments age out of the rolling window by wall
// clock — actively at round start, and via Sweep for idle tenants.
func TestWindowRetirement(t *testing.T) {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	now := base
	reg := telemetry.New()
	m, err := New(Config{
		Window:       8,
		WindowMaxAge: time.Minute,
		Telemetry:    reg,
		Now:          func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	p, frames := oracleRun(t, "t", 2)
	m.RegisterProgram(p)
	for _, f := range frames {
		if err := m.Ingest("t", f); err != nil {
			t.Fatal(err)
		}
		now = now.Add(time.Second)
	}
	if st := m.Tenants()[0]; st.WindowSegments != 2 {
		t.Fatalf("window = %d segments, want 2", st.WindowSegments)
	}
	// Nothing old enough yet: Sweep is a no-op.
	if dropped := m.Sweep(); dropped != 0 {
		t.Fatalf("premature Sweep dropped %d", dropped)
	}
	now = now.Add(2 * time.Minute)
	if dropped := m.Sweep(); dropped != 2 {
		t.Fatalf("Sweep dropped %d, want 2", dropped)
	}
	st := m.Tenants()[0]
	if st.WindowSegments != 0 || st.Retired != 2 {
		t.Fatalf("after sweep: %+v", st)
	}
	snap := reg.Snapshot().Counters
	if snap["proraced_window_segments_expired_total"] != 2 || snap["proraced_windows_retired_total"] != 1 {
		t.Fatalf("retirement counters = %v", snap)
	}
	// An aged window also retires at the next round: a fresh segment
	// analyses alone instead of against stale history.
	if err := m.Ingest("t", frames[0]); err != nil {
		t.Fatal(err)
	}
	if st := m.Tenants()[0]; st.WindowSegments != 1 {
		t.Fatalf("window after retirement + ingest = %d segments, want 1", st.WindowSegments)
	}
}

// TestHTTPDurabilitySurface covers the hardened HTTP edges: body size cap
// (413), Retry-After on overload responses, and the key query parameter.
func TestHTTPDurabilitySurface(t *testing.T) {
	reg := telemetry.New()
	cfg := syncConfig("", reg)
	cfg.MaxBodyBytes = 1024
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	m.Attach(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	p, frames := oracleRun(t, "web-1", 2)

	post := func(path string, body []byte) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := post("/ingest?tenant=t", make([]byte, 4096)); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status = %d, want 413", resp.StatusCode)
	}
	cfg.MaxBodyBytes = 256 << 20
	m.cfg.MaxBodyBytes = 256 << 20 // frames are larger than the tiny test cap
	if resp := post("/program", prog.EncodeImage(p)); resp.StatusCode != http.StatusOK {
		t.Fatalf("program upload status = %d", resp.StatusCode)
	}
	// Keyed ingest: both sends are acknowledged, one segment lands.
	if resp := post("/ingest?tenant=t&key=x1", frames[0]); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("keyed ingest status = %d", resp.StatusCode)
	}
	if resp := post("/ingest?tenant=t&key=x1", frames[0]); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("keyed resend status = %d", resp.StatusCode)
	}
	if st := m.Tenants()[0]; st.Segments != 1 || st.Duplicates != 1 {
		t.Fatalf("keyed resend landed twice: %+v", st)
	}
	// A draining daemon answers 503 with Retry-After so the producer
	// backs off instead of failing the stream.
	m.Close()
	resp := post("/ingest?tenant=t&key=x2", frames[1])
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("drained ingest = %d (Retry-After %q), want 503 with Retry-After",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
}
