package monitor

// The chaos harness: a real proraced core serving real HTTP in a child
// process, killed at deterministic crash points (or with SIGKILL) while a
// retrying client streams a run at it, restarted, drained, and finally
// audited — the surviving store must be indistinguishable from an
// uninterrupted run's: same race fingerprints, same occurrence counts.
//
// The daemon child is this test binary re-executed with -test.run
// selecting TestChaosDaemon and PRORACE_CHAOS_DAEMON=1 (the standard
// helper-process pattern), so the crash points compiled into the monitor
// fire in a genuinely separate process with its own page cache and file
// descriptors.

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"sync"
	"syscall"
	"testing"
	"time"

	"prorace/internal/faultinject"
	"prorace/internal/monitor/client"
	"prorace/internal/prog"
)

// TestChaosDaemon is not a test: it is the daemon body the chaos
// scenarios re-execute this binary into. It serves until SIGTERM
// (graceful drain, exit 0) or until an armed crash point kills it.
func TestChaosDaemon(t *testing.T) {
	if os.Getenv("PRORACE_CHAOS_DAEMON") != "1" {
		t.Skip("helper process for the chaos harness")
	}
	workers, _ := strconv.Atoi(os.Getenv("PRORACE_CHAOS_WORKERS"))
	m, err := New(Config{
		Window:    4,
		Workers:   workers,
		StorePath: os.Getenv("PRORACE_CHAOS_STORE"),
		WALDir:    os.Getenv("PRORACE_CHAOS_WAL"),
		Fsync:     FsyncPolicy{Mode: FsyncAlways},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos daemon:", err)
		os.Exit(1)
	}
	mux := http.NewServeMux()
	m.Attach(mux)
	// The address is fixed across restarts (the client keeps retrying one
	// base URL); the previous incarnation is dead, but give a lingering
	// socket a moment to release.
	var ln net.Listener
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err = net.Listen("tcp", os.Getenv("PRORACE_CHAOS_ADDR"))
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			fmt.Fprintln(os.Stderr, "chaos daemon listen:", err)
			os.Exit(1)
		}
		time.Sleep(50 * time.Millisecond)
	}
	srv := &http.Server{Handler: mux}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM)
	go srv.Serve(ln)
	<-sig
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
	if err := m.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "chaos daemon drain:", err)
		os.Exit(1)
	}
	// Lineage completeness gate: after a drain every minted lineage —
	// including the ones reconstructed from the journal after a crash —
	// must have reached a terminal stage. An open entry here is an orphan.
	if open := m.OpenLineages(); len(open) > 0 {
		fmt.Fprintf(os.Stderr, "chaos daemon: open lineages after drain: %+v\n", open)
		os.Exit(3)
	}
	os.Exit(0)
}

// chaosDaemon supervises the child: it restarts a crashed incarnation
// (without the crash env — the fault fires once) and records how each
// incarnation ended.
type chaosDaemon struct {
	t     *testing.T
	addr  string
	store string
	wal   string

	mu        sync.Mutex
	cmd       *exec.Cmd
	stopping  bool
	restarts  int
	crashExit bool // some incarnation died with CrashExitCode or a signal
	done      chan int
}

func startChaosDaemon(t *testing.T, dir, addr, crashSpec string, workers int) *chaosDaemon {
	d := &chaosDaemon{
		t:     t,
		addr:  addr,
		store: filepath.Join(dir, "reports.json"),
		wal:   filepath.Join(dir, "wal"),
		done:  make(chan int, 1),
	}
	d.mu.Lock()
	d.startLocked(crashSpec, workers)
	d.mu.Unlock()
	return d
}

func (d *chaosDaemon) startLocked(crashSpec string, workers int) {
	cmd := exec.Command(os.Args[0], "-test.run=^TestChaosDaemon$")
	cmd.Env = append(os.Environ(),
		"PRORACE_CHAOS_DAEMON=1",
		"PRORACE_CHAOS_ADDR="+d.addr,
		"PRORACE_CHAOS_STORE="+d.store,
		"PRORACE_CHAOS_WAL="+d.wal,
		"PRORACE_CHAOS_WORKERS="+strconv.Itoa(workers),
		faultinject.CrashEnv+"="+crashSpec,
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		d.t.Fatalf("starting chaos daemon: %v", err)
	}
	d.cmd = cmd
	go func() {
		err := cmd.Wait()
		code := 0
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		}
		d.mu.Lock()
		defer d.mu.Unlock()
		if d.stopping {
			d.done <- code
			return
		}
		// An unexpected death: record it and restart clean (no crash env).
		if code == faultinject.CrashExitCode || code == -1 {
			d.crashExit = true
		}
		d.restarts++
		d.startLocked("", workers)
	}()
}

// kill SIGKILLs the current incarnation (the supervisor restarts it).
func (d *chaosDaemon) kill() {
	d.mu.Lock()
	cmd := d.cmd
	d.mu.Unlock()
	cmd.Process.Kill()
}

// stop drains the daemon with SIGTERM and verifies a clean exit.
func (d *chaosDaemon) stop() (restarts int, crashed bool) {
	d.t.Helper()
	d.mu.Lock()
	d.stopping = true
	cmd := d.cmd
	restarts, crashed = d.restarts, d.crashExit
	d.mu.Unlock()
	cmd.Process.Signal(syscall.SIGTERM)
	select {
	case code := <-d.done:
		if code != 0 {
			d.t.Fatalf("drain exited %d, want 0", code)
		}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		d.t.Fatal("drain timed out")
	}
	return restarts, crashed
}

func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// runChaosScenario streams one traced run at a daemon that dies per
// crashSpec (or by SIGKILL before segment killAt when killAt >= 0),
// drains it, and returns the final store's fingerprint -> occurrences.
func runChaosScenario(t *testing.T, p *prog.Program, frames [][]byte, crashSpec string, killAt, workers int) map[string]int {
	t.Helper()
	dir := t.TempDir()
	d := startChaosDaemon(t, dir, freePort(t), crashSpec, workers)
	c, err := client.New(client.Config{
		BaseURL:        "http://" + d.addr,
		Tenant:         "web-1",
		RequestTimeout: 10 * time.Second,
		InitialBackoff: 25 * time.Millisecond,
		MaxBackoff:     250 * time.Millisecond,
		MaxAttempts:    60,
		RetryBudget:    time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.UploadProgram(prog.EncodeImage(p)); err != nil {
		t.Fatalf("uploading program: %v", err)
	}
	for i, f := range frames {
		if i == killAt {
			d.kill()
		}
		if err := c.SendSegment(f); err != nil {
			t.Fatalf("segment %d: %v", i, err)
		}
	}
	restarts, crashed := d.stop()
	if crashSpec != "" || killAt >= 0 {
		if restarts == 0 || !crashed {
			t.Fatalf("fault never fired (restarts=%d crashed=%v) — the scenario tested nothing", restarts, crashed)
		}
	} else if restarts != 0 {
		t.Fatalf("uninterrupted baseline restarted %d times", restarts)
	}
	s, err := OpenStore(d.store)
	if err != nil {
		t.Fatal(err)
	}
	if w := s.LoadWarning(); w != "" {
		t.Fatalf("final store needed salvage: %s", w)
	}
	return occurrences(s)
}

// TestChaosCrashRecovery is the acceptance gate: for every seeded crash
// point in the ingest/analysis/persist pipeline, kill-at-the-point +
// restart + replay must converge to the exact store an uninterrupted run
// produces — same fingerprints, same occurrence counts.
func TestChaosCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness spawns daemons; skipped in -short")
	}
	p, frames := oracleRun(t, "web-1", 6)
	baseline := runChaosScenario(t, p, frames, "", -1, 0)
	if len(baseline) == 0 {
		t.Fatal("baseline run found no races")
	}
	scenarios := []struct {
		name string
		spec string
	}{
		// Torn journal record: the segment was never acknowledged; the
		// client's keyed retry re-delivers it after restart.
		{"wal-append-mid", "wal.append.mid=3"},
		// Record written but not fsynced, ack never sent: same contract.
		{"wal-append-presync", "wal.append.presync=4"},
		// Journaled but unacknowledged: replay ingests it at boot, and the
		// client's retry of the same key dedups instead of double-counting.
		{"ingest-preack", "monitor.ingest.preack=2"},
		// Round computed, nothing persisted: replay re-runs the round.
		{"analyze-mid", "monitor.analyze.mid=3"},
		// Store temp written, rename pending: the cursor never advanced,
		// replay re-runs the round against the old store generation.
		{"store-rename-mid", "store.rename.mid=2"},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			got := runChaosScenario(t, p, frames, sc.spec, -1, 0)
			sameOccurrences(t, got, baseline)
		})
	}
}

// TestChaosSIGKILL: an unseeded hard kill mid-stream with a concurrent
// worker pool. Round structure is nondeterministic under workers, so the
// contract is the fingerprint set (no race lost, none invented), not
// occurrence counts.
func TestChaosSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness spawns daemons; skipped in -short")
	}
	p, frames := oracleRun(t, "web-1", 6)
	baseline := runChaosScenario(t, p, frames, "", -1, 0)
	got := runChaosScenario(t, p, frames, "", 3, 2)
	if len(got) != len(baseline) {
		t.Fatalf("fingerprint sets differ: %d vs %d", len(got), len(baseline))
	}
	for fp := range baseline {
		if _, ok := got[fp]; !ok {
			t.Fatalf("SIGKILL lost race %s", fp)
		}
	}
}
