package monitor

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"prorace/internal/telemetry"
)

// AlertConfig parameterises the first-seen race webhook. Deduplication is
// not configured here because it falls out of the store: only reports the
// persistent store has never held fire an alert, so one fingerprint alerts
// exactly once across window re-analyses, replays and daemon restarts.
type AlertConfig struct {
	// URL receives one JSON POST per first-seen race ("" disables alerting).
	URL string
	// RatePerMinute bounds deliveries with a token bucket (burst equals the
	// same value); alerts beyond it are dropped and counted, never queued —
	// a stale page is worse than a dropped one. Default 30.
	RatePerMinute int
	// MaxAttempts bounds delivery attempts per alert; 5xx, 429 and
	// transport errors retry with exponential backoff, other 4xx are
	// permanent. Default 4.
	MaxAttempts int
	// Backoff is the first retry delay, doubled per attempt. Default 250ms.
	Backoff time.Duration
	// Timeout bounds each HTTP attempt. Default 5s.
	Timeout time.Duration
	// Client overrides the HTTP client (tests).
	Client *http.Client
}

// AlertEvent is the webhook payload: one first-seen race with enough
// context to triage without scraping the daemon — the stable fingerprint,
// the racing PC pair, whether a deterministic witness recipe is attached,
// and the lineage of the segment whose analysis round surfaced the race.
type AlertEvent struct {
	Time        time.Time       `json:"time"`
	Tenant      string          `json:"tenant"`
	Program     string          `json:"program"`
	Fingerprint string          `json:"fingerprint"`
	FirstPC     string          `json:"first_pc"`
	SecondPC    string          `json:"second_pc"`
	Occurrences int             `json:"occurrences"`
	Witness     bool            `json:"witness"`
	Lineage     *SegmentLineage `json:"lineage,omitempty"`
}

// alerter delivers AlertEvents asynchronously: Fire is non-blocking (the
// analysis hot path never waits on a webhook), a single goroutine drains
// the queue, and Close flushes whatever is still queued so tests and the
// daemon's graceful drain observe every accepted alert delivered.
type alerter struct {
	cfg  AlertConfig
	log  *slog.Logger
	tel  *telemetry.Registry
	now  func() time.Time
	ch   chan AlertEvent
	done chan struct{}

	mu     sync.Mutex
	tokens float64
	refill time.Time
}

func newAlerter(cfg AlertConfig, tel *telemetry.Registry, log *slog.Logger, now func() time.Time) *alerter {
	if cfg.RatePerMinute <= 0 {
		cfg.RatePerMinute = 30
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 250 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: cfg.Timeout}
	}
	a := &alerter{
		cfg:    cfg,
		log:    log,
		tel:    tel,
		now:    now,
		ch:     make(chan AlertEvent, 256),
		done:   make(chan struct{}),
		tokens: float64(cfg.RatePerMinute),
		refill: now(),
	}
	go a.run()
	return a
}

// fire enqueues one alert. The token bucket is taken synchronously (so
// rate-limit decisions are deterministic under a test clock); delivery
// happens on the drain goroutine.
func (a *alerter) fire(ev AlertEvent) {
	if !a.takeToken() {
		a.tel.Counter("proraced_alerts_ratelimited_total", "First-seen race alerts dropped by the webhook rate limit.").Inc()
		a.log.Warn("alert rate-limited", "tenant", ev.Tenant, "fingerprint", ev.Fingerprint)
		return
	}
	select {
	case a.ch <- ev:
	default:
		a.tel.Counter("proraced_alerts_dropped_total", "First-seen race alerts dropped because the delivery queue was full.").Inc()
		a.log.Warn("alert queue full", "tenant", ev.Tenant, "fingerprint", ev.Fingerprint)
	}
}

func (a *alerter) takeToken() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.now()
	if d := now.Sub(a.refill); d > 0 {
		a.tokens += d.Minutes() * float64(a.cfg.RatePerMinute)
		if max := float64(a.cfg.RatePerMinute); a.tokens > max {
			a.tokens = max
		}
	}
	a.refill = now
	if a.tokens < 1 {
		return false
	}
	a.tokens--
	return true
}

// close drains the queue (delivering everything already accepted) and
// stops the goroutine.
func (a *alerter) close() {
	close(a.ch)
	<-a.done
}

func (a *alerter) run() {
	defer close(a.done)
	for ev := range a.ch {
		a.deliver(ev)
	}
}

func (a *alerter) deliver(ev AlertEvent) {
	body, err := json.Marshal(ev)
	if err != nil {
		a.log.Error("alert encode failed", "err", err)
		return
	}
	delay := a.cfg.Backoff
	for attempt := 1; ; attempt++ {
		status, err := a.post(body)
		switch {
		case err == nil && status/100 == 2:
			a.tel.Counter("proraced_alerts_sent_total", "First-seen race alerts delivered to the webhook.").Inc()
			a.log.Info("alert delivered", "tenant", ev.Tenant, "fingerprint", ev.Fingerprint, "attempts", attempt)
			return
		case err == nil && status/100 == 4 && status != 429:
			// Permanent: the receiver rejected the payload; retrying cannot
			// help and would only re-spend the rate budget.
			a.tel.Counter("proraced_alerts_failed_total", "First-seen race alerts that permanently failed delivery.").Inc()
			a.log.Warn("alert rejected by webhook", "tenant", ev.Tenant, "fingerprint", ev.Fingerprint, "status", status)
			return
		}
		if attempt >= a.cfg.MaxAttempts {
			a.tel.Counter("proraced_alerts_failed_total", "First-seen race alerts that permanently failed delivery.").Inc()
			if err != nil {
				a.log.Warn("alert delivery failed", "tenant", ev.Tenant, "fingerprint", ev.Fingerprint, "attempts", attempt, "err", err)
			} else {
				a.log.Warn("alert delivery failed", "tenant", ev.Tenant, "fingerprint", ev.Fingerprint, "attempts", attempt, "status", status)
			}
			return
		}
		a.tel.Counter("proraced_alerts_retried_total", "Alert delivery attempts retried after a retryable failure (5xx, 429, transport error).").Inc()
		time.Sleep(delay)
		delay *= 2
	}
}

func (a *alerter) post(body []byte) (int, error) {
	req, err := http.NewRequest(http.MethodPost, a.cfg.URL, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.cfg.Client.Do(req)
	if err != nil {
		return 0, err
	}
	resp.Body.Close()
	return resp.StatusCode, nil
}

// pcHex renders a program counter the way reports do.
func pcHex(pc uint64) string { return fmt.Sprintf("0x%x", pc) }
