package monitor

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"prorace/internal/telemetry"
)

// alertSink is an httptest webhook receiver: it records every payload and
// can fail the first N requests with a chosen status.
type alertSink struct {
	mu       sync.Mutex
	failures int
	status   int
	requests int
	events   []AlertEvent
}

func (s *alertSink) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.requests++
	if s.requests <= s.failures {
		http.Error(w, "induced failure", s.status)
		return
	}
	body, _ := io.ReadAll(r.Body)
	var ev AlertEvent
	if err := json.Unmarshal(body, &ev); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.events = append(s.events, ev)
	w.WriteHeader(http.StatusOK)
}

func (s *alertSink) snapshot() (int, []AlertEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.requests, append([]AlertEvent(nil), s.events...)
}

// testAlerter builds an alerter with fast retries and a deterministic
// clock (constant time — the token bucket never refills).
func testAlerter(url string, rate int, reg *telemetry.Registry) *alerter {
	at := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	return newAlerter(AlertConfig{
		URL:           url,
		RatePerMinute: rate,
		MaxAttempts:   4,
		Backoff:       time.Millisecond,
	}, reg, discardLogger(), func() time.Time { return at })
}

// TestAlertFirstSeenOnly: the store is the dedup — one webhook call per
// distinct fingerprint, however many rounds re-observe the race, and a
// restarted daemon stays silent about races its store already holds.
func TestAlertFirstSeenOnly(t *testing.T) {
	sink := &alertSink{}
	srv := httptest.NewServer(sink)
	defer srv.Close()
	dir := t.TempDir()
	p, frames := oracleRun(t, "web-1", 4)

	mkMonitor := func() *Monitor {
		cfg := syncConfig(filepath.Join(dir, "reports.json"), telemetry.New())
		cfg.Logger = discardLogger()
		cfg.Alert = AlertConfig{URL: srv.URL, Backoff: time.Millisecond}
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m.RegisterProgram(p)
		return m
	}
	m := mkMonitor()
	for _, f := range frames {
		if err := m.Ingest("web-1", f); err != nil {
			t.Fatal(err)
		}
	}
	distinct := m.Store().Len()
	if distinct == 0 {
		t.Fatal("run produced no races")
	}
	if err := m.Close(); err != nil { // close drains the delivery queue
		t.Fatal(err)
	}
	_, events := sink.snapshot()
	if len(events) != distinct {
		t.Fatalf("delivered %d alerts, want %d (one per distinct race)", len(events), distinct)
	}
	seen := map[string]bool{}
	for _, ev := range events {
		if seen[ev.Fingerprint] {
			t.Fatalf("fingerprint %s alerted twice", ev.Fingerprint)
		}
		seen[ev.Fingerprint] = true
		if ev.Tenant != "web-1" || ev.Program != p.Name || ev.Fingerprint == "" {
			t.Fatalf("alert attribution = %+v", ev)
		}
		if !strings.HasPrefix(ev.FirstPC, "0x") || !strings.HasPrefix(ev.SecondPC, "0x") {
			t.Fatalf("alert PCs = %q, %q", ev.FirstPC, ev.SecondPC)
		}
		if ev.Lineage == nil || !TerminalStage(ev.Lineage.Stage) {
			t.Fatalf("alert lineage = %+v", ev.Lineage)
		}
	}

	// Restart on the same store: re-ingesting the same run re-observes
	// every race but first-seen fires nothing.
	m2 := mkMonitor()
	for _, f := range frames {
		if err := m2.Ingest("web-1", f); err != nil {
			t.Fatal(err)
		}
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, events := sink.snapshot(); len(events) != distinct {
		t.Fatalf("restart re-alerted: %d events, want %d", len(events), distinct)
	}
}

// TestAlertRetriesOn5xx: transient webhook failures retry with backoff
// until delivery; the counters record the journey.
func TestAlertRetriesOn5xx(t *testing.T) {
	sink := &alertSink{failures: 2, status: http.StatusInternalServerError}
	srv := httptest.NewServer(sink)
	defer srv.Close()
	reg := telemetry.New()
	a := testAlerter(srv.URL, 30, reg)
	a.fire(AlertEvent{Tenant: "t", Fingerprint: "fp-1"})
	a.close()
	requests, events := sink.snapshot()
	if requests != 3 || len(events) != 1 {
		t.Fatalf("delivery = %d requests, %d events; want 3, 1", requests, len(events))
	}
	snap := reg.Snapshot()
	if snap.Counters["proraced_alerts_sent_total"] != 1 || snap.Counters["proraced_alerts_retried_total"] != 2 {
		t.Fatalf("counters = %v", snap.Counters)
	}
}

// TestAlertPermanentRejection: a non-429 4xx is final — no retry, counted
// as failed.
func TestAlertPermanentRejection(t *testing.T) {
	sink := &alertSink{failures: 99, status: http.StatusBadRequest}
	srv := httptest.NewServer(sink)
	defer srv.Close()
	reg := telemetry.New()
	a := testAlerter(srv.URL, 30, reg)
	a.fire(AlertEvent{Fingerprint: "fp-1"})
	a.close()
	if requests, _ := sink.snapshot(); requests != 1 {
		t.Fatalf("4xx retried: %d requests", requests)
	}
	snap := reg.Snapshot()
	if snap.Counters["proraced_alerts_failed_total"] != 1 || snap.Counters["proraced_alerts_sent_total"] != 0 {
		t.Fatalf("counters = %v", snap.Counters)
	}
}

// TestAlertGivesUpAfterMaxAttempts: a webhook that never recovers burns
// MaxAttempts and is dropped, not queued forever.
func TestAlertGivesUpAfterMaxAttempts(t *testing.T) {
	sink := &alertSink{failures: 99, status: http.StatusServiceUnavailable}
	srv := httptest.NewServer(sink)
	defer srv.Close()
	reg := telemetry.New()
	a := testAlerter(srv.URL, 30, reg)
	a.fire(AlertEvent{Fingerprint: "fp-1"})
	a.close()
	if requests, _ := sink.snapshot(); requests != 4 {
		t.Fatalf("attempts = %d, want MaxAttempts (4)", requests)
	}
	if got := reg.Snapshot().Counters["proraced_alerts_failed_total"]; got != 1 {
		t.Fatalf("proraced_alerts_failed_total = %d", got)
	}
}

// TestAlertRateLimit: with a frozen clock the bucket never refills, so a
// burst beyond RatePerMinute delivers exactly the budget and counts the
// rest as rate-limited.
func TestAlertRateLimit(t *testing.T) {
	sink := &alertSink{}
	srv := httptest.NewServer(sink)
	defer srv.Close()
	reg := telemetry.New()
	a := testAlerter(srv.URL, 2, reg)
	for i := 0; i < 5; i++ {
		a.fire(AlertEvent{Fingerprint: fmt.Sprintf("fp-%d", i)})
	}
	a.close()
	_, events := sink.snapshot()
	if len(events) != 2 {
		t.Fatalf("delivered %d alerts under a budget of 2", len(events))
	}
	snap := reg.Snapshot()
	if snap.Counters["proraced_alerts_ratelimited_total"] != 3 || snap.Counters["proraced_alerts_sent_total"] != 2 {
		t.Fatalf("counters = %v", snap.Counters)
	}
}

// TestAlertTokenRefill: advancing the clock refills the bucket at
// RatePerMinute, capped at the burst.
func TestAlertTokenRefill(t *testing.T) {
	at := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	a := &alerter{
		cfg:    AlertConfig{RatePerMinute: 2},
		now:    func() time.Time { return at },
		tokens: 0,
		refill: at,
	}
	if a.takeToken() {
		t.Fatal("empty bucket granted a token")
	}
	at = at.Add(30 * time.Second) // +1 token
	if !a.takeToken() || a.takeToken() {
		t.Fatal("half-minute refill should grant exactly one token")
	}
	at = at.Add(time.Hour) // cap at burst (2), not 120
	if !a.takeToken() || !a.takeToken() || a.takeToken() {
		t.Fatal("refill not capped at the burst size")
	}
}
