package monitor

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"prorace/internal/prog"
)

// maxBodyBytes bounds uploaded frame and image bodies; segments are
// deliberately small (a producer flushes every few MB), so this is far
// above any legitimate request.
const maxBodyBytes = 256 << 20

// Attach registers the daemon's HTTP surface on mux:
//
//	POST /ingest?tenant=NAME   one PRSG segment frame (body)
//	POST /program              one PRIM program image (body)
//	GET  /reports              the deduplicated race-report store (JSON)
//	GET  /tenants              per-tenant stream health (JSON)
//	GET  /healthz              liveness
//
// Pass telemetry.NewMux's mux to co-host /metrics on the same listener.
func (m *Monitor) Attach(mux *http.ServeMux) {
	mux.HandleFunc("/ingest", m.handleIngest)
	mux.HandleFunc("/program", m.handleProgram)
	mux.HandleFunc("/reports", m.handleReports)
	mux.HandleFunc("/tenants", m.handleTenants)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
}

func (m *Monitor) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	tenant := r.URL.Query().Get("tenant")
	if tenant == "" {
		http.Error(w, "missing tenant parameter", http.StatusBadRequest)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	switch err := m.Ingest(tenant, body); {
	case err == nil:
		w.WriteHeader(http.StatusAccepted)
	case errors.Is(err, ErrQueueFull):
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, ErrClosed):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		// Corrupt frame or unresolvable program: the producer's fault,
		// recorded against its tenant only.
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

func (m *Monitor) handleProgram(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	p, err := prog.DecodeImage(body)
	if err != nil {
		http.Error(w, "decoding image: "+err.Error(), http.StatusBadRequest)
		return
	}
	m.RegisterProgram(p)
	io.WriteString(w, p.Name+"\n")
}

func (m *Monitor) handleReports(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, m.store.Reports())
}

func (m *Monitor) handleTenants(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, m.Tenants())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}
