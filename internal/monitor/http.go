package monitor

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"prorace/internal/prog"
)

// HeaderLineage is the ingest request header carrying the producer-minted
// segment lineage ID (mirrored by the client package).
const HeaderLineage = "X-Prorace-Lineage"

// Attach registers the daemon's HTTP surface on mux:
//
//	POST /ingest?tenant=NAME[&key=K]   one PRSG segment frame (body); a
//	                                   non-empty key makes retries idempotent,
//	                                   X-Prorace-Lineage tags the segment's
//	                                   lineage history
//	POST /program                      one PRIM program image (body)
//	GET  /reports                      the deduplicated race-report store (JSON)
//	GET  /tenants                      per-tenant stream health (JSON)
//	GET  /statusz[?format=json]        fleet overview (HTML; JSON on request)
//	GET  /tenantz?tenant=X             one tenant's lineage ring + recent reports
//	GET  /healthz                      liveness
//
// Overload responses carry Retry-After: a 429 (tenant queue full) or 503
// (draining, or the journal cannot accept writes) tells the producer when
// to come back instead of leaving it to guess. Introspection responses
// are marked Cache-Control: no-store.
//
// Pass telemetry.NewMux's mux to co-host /metrics on the same listener.
func (m *Monitor) Attach(mux *http.ServeMux) {
	mux.HandleFunc("/ingest", m.handleIngest)
	mux.HandleFunc("/program", m.handleProgram)
	mux.HandleFunc("/reports", m.handleReports)
	mux.HandleFunc("/tenants", m.handleTenants)
	mux.HandleFunc("/statusz", m.handleStatusz)
	mux.HandleFunc("/tenantz", m.handleTenantz)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Cache-Control", "no-store")
		io.WriteString(w, "ok\n")
	})
}

// readBody reads a request body under the configured size cap, mapping an
// oversized body to 413 and anything else unreadable to 400.
func (m *Monitor) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, m.cfg.MaxBodyBytes))
	if err == nil {
		return body, true
	}
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
	} else {
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
	}
	return nil, false
}

func (m *Monitor) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	tenant := q.Get("tenant")
	if tenant == "" {
		http.Error(w, "missing tenant parameter", http.StatusBadRequest)
		return
	}
	body, ok := m.readBody(w, r)
	if !ok {
		return
	}
	meta := IngestMeta{Key: q.Get("key"), Lineage: r.Header.Get(HeaderLineage)}
	switch err := m.IngestWith(tenant, meta, body); {
	case err == nil:
		w.WriteHeader(http.StatusAccepted)
	case errors.Is(err, ErrQueueFull):
		// The queue drains at analysis speed; a short backoff is enough.
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, ErrClosed), errors.Is(err, ErrDurability):
		// Draining or the journal disk is refusing writes: retryable, but
		// give the daemon (or its replacement) a moment.
		w.Header().Set("Retry-After", "2")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		// Corrupt frame or unresolvable program: the producer's fault,
		// recorded against its tenant only.
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

func (m *Monitor) handleProgram(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, ok := m.readBody(w, r)
	if !ok {
		return
	}
	p, err := prog.DecodeImage(body)
	if err != nil {
		http.Error(w, "decoding image: "+err.Error(), http.StatusBadRequest)
		return
	}
	m.RegisterProgram(p)
	io.WriteString(w, p.Name+"\n")
}

func (m *Monitor) handleReports(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, m.store.Reports())
}

func (m *Monitor) handleTenants(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, m.Tenants())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}
