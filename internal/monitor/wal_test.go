package monitor

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"
)

func walFrames(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = bytes.Repeat([]byte{byte('a' + i)}, 20+i)
	}
	return out
}

func TestWALAppendRecordsRoundtrip(t *testing.T) {
	w, err := OpenWAL(t.TempDir(), FsyncPolicy{Mode: FsyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	frames := walFrames(3)
	for i, f := range frames {
		idx, err := w.Append("ten", "key-"+string(rune('0'+i)), "lin-"+string(rune('0'+i)), f)
		if err != nil {
			t.Fatal(err)
		}
		if idx != uint64(i) {
			t.Fatalf("append %d got index %d", i, idx)
		}
	}
	if got := w.NextIndex("ten"); got != 3 {
		t.Fatalf("NextIndex = %d, want 3", got)
	}
	recs, sal, err := w.Records("ten", 0)
	if err != nil || sal.Degraded() {
		t.Fatalf("Records = (%v, %+v)", err, sal)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	for i, r := range recs {
		if r.Index != uint64(i) || !bytes.Equal(r.Frame, frames[i]) || r.Key != "key-"+string(rune('0'+i)) || r.Lineage != "lin-"+string(rune('0'+i)) {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	// from filters by global index.
	if recs, _, _ := w.Records("ten", 2); len(recs) != 1 || recs[0].Index != 2 {
		t.Fatalf("Records(from=2) = %+v", recs)
	}
	// Unknown tenants are empty, not errors.
	if recs, _, err := w.Records("nope", 0); err != nil || len(recs) != 0 {
		t.Fatalf("unknown tenant Records = (%v, %v)", recs, err)
	}
}

func TestWALReopenContinuesIndices(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, FsyncPolicy{Mode: FsyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	frames := walFrames(2)
	for _, f := range frames {
		if _, err := w.Append("ten", "", "", f); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(dir, FsyncPolicy{Mode: FsyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := w2.Tenants(); len(got) != 1 || got[0] != "ten" {
		t.Fatalf("Tenants after reopen = %v", got)
	}
	idx, err := w2.Append("ten", "", "", []byte("third"))
	if err != nil || idx != 2 {
		t.Fatalf("append after reopen = (%d, %v), want (2, nil)", idx, err)
	}
	recs, _, err := w2.Records("ten", 0)
	if err != nil || len(recs) != 3 {
		t.Fatalf("reopen records = (%d, %v)", len(recs), err)
	}
}

func TestWALTornTailSalvage(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, FsyncPolicy{Mode: FsyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	frames := walFrames(3)
	for _, f := range frames {
		if _, err := w.Append("ten", "k", "", f); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	// Tear the last record in half, as a crash mid-append would.
	paths, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	if len(paths) != 1 {
		t.Fatalf("journal files = %v", paths)
	}
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	lastLen := walRecordLen(walVersion, "k", "", frames[2])
	torn := data[:len(data)-lastLen/2]
	if err := os.WriteFile(paths[0], torn, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(dir, FsyncPolicy{Mode: FsyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	sal := w2.Salvage()["ten"]
	if !sal.Degraded() || sal.TornBytes == 0 {
		t.Fatalf("salvage = %+v, want torn bytes", sal)
	}
	recs, _, err := w2.Records("ten", 0)
	if err != nil || len(recs) != 2 {
		t.Fatalf("salvaged records = (%d, %v), want 2 intact", len(recs), err)
	}
	// The torn tail was truncated away, so the next append lands on a
	// record boundary and the journal reads clean again.
	if idx, err := w2.Append("ten", "k2", "", frames[2]); err != nil || idx != 2 {
		t.Fatalf("append after salvage = (%d, %v)", idx, err)
	}
	recs, sal2, err := w2.Records("ten", 0)
	if err != nil || sal2.Degraded() || len(recs) != 3 {
		t.Fatalf("post-salvage journal = (%d recs, %+v, %v)", len(recs), sal2, err)
	}
}

func TestWALChecksumDamageEndsScan(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, FsyncPolicy{Mode: FsyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	frames := walFrames(3)
	for _, f := range frames {
		w.Append("ten", "", "", f)
	}
	w.Close()
	paths, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	data, _ := os.ReadFile(paths[0])
	// Flip a byte inside the second record's body.
	off := journalHeaderLen("ten") + walRecordLen(walVersion, "", "", frames[0]) + 8
	data[off] ^= 0xFF
	os.WriteFile(paths[0], data, 0o644)

	w2, err := OpenWAL(dir, FsyncPolicy{Mode: FsyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	sal := w2.Salvage()["ten"]
	if sal.BadRecords == 0 {
		t.Fatalf("salvage = %+v, want a bad record", sal)
	}
	// Only the prefix before the damage survives; later boundaries cannot
	// be trusted.
	recs, _, err := w2.Records("ten", 0)
	if err != nil || len(recs) != 1 {
		t.Fatalf("records after mid-file damage = (%d, %v), want 1", len(recs), err)
	}
}

func TestWALQuarantineBadHeader(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "deadbeefdeadbeef.wal")
	if err := os.WriteFile(bad, []byte("not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := OpenWAL(dir, FsyncPolicy{Mode: FsyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if len(w.Tenants()) != 0 {
		t.Fatalf("tenants from a quarantined file: %v", w.Tenants())
	}
	if _, err := os.Stat(bad + ".corrupt"); err != nil {
		t.Fatalf("bad journal not quarantined: %v", err)
	}
}

func TestWALCompaction(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, FsyncPolicy{Mode: FsyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	frames := walFrames(6)
	for i, f := range frames {
		w.Append("ten", "k"+string(rune('0'+i)), "l"+string(rune('0'+i)), f)
	}
	if err := w.Compact("ten", 4); err != nil {
		t.Fatal(err)
	}
	// Indices are global: the survivors keep 4 and 5.
	recs, _, err := w.Records("ten", 0)
	if err != nil || len(recs) != 2 || recs[0].Index != 4 || recs[1].Index != 5 {
		t.Fatalf("post-compact records = %+v (%v)", recs, err)
	}
	// Appends continue the global sequence.
	if idx, _ := w.Append("ten", "", "", []byte("seventh")); idx != 6 {
		t.Fatalf("append after compact = index %d, want 6", idx)
	}
	w.Close()

	// The compacted base survives reopen.
	w2, err := OpenWAL(dir, FsyncPolicy{Mode: FsyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	recs, _, err = w2.Records("ten", 0)
	if err != nil || len(recs) != 3 || recs[0].Index != 4 {
		t.Fatalf("reopen post-compact = %+v (%v)", recs, err)
	}
	if got := w2.NextIndex("ten"); got != 7 {
		t.Fatalf("NextIndex after reopen = %d, want 7", got)
	}
	// Compacting at or below base is a no-op, not an error.
	if err := w2.Compact("ten", 2); err != nil {
		t.Fatal(err)
	}
}

func TestWALFsyncInterval(t *testing.T) {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	now := base
	w, err := OpenWAL(t.TempDir(), FsyncPolicy{Mode: FsyncInterval, Interval: time.Second},
		func() time.Time { return now })
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.Append("ten", "", "", []byte("one"))
	j, _ := w.journalFor("ten")
	// Within the interval the journal stays dirty; past it, the next
	// append syncs.
	now = now.Add(500 * time.Millisecond)
	w.Append("ten", "", "", []byte("two"))
	j.mu.Lock()
	dirty := j.dirty
	j.mu.Unlock()
	if !dirty {
		t.Fatal("append inside the interval synced")
	}
	now = now.Add(2 * time.Second)
	w.Append("ten", "", "", []byte("three"))
	j.mu.Lock()
	dirty = j.dirty
	j.mu.Unlock()
	if dirty {
		t.Fatal("append past the interval did not sync")
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	cases := []struct {
		in   string
		mode string
		ival time.Duration
		bad  bool
	}{
		{"always", FsyncAlways, 0, false},
		{"", FsyncAlways, 0, false},
		{"off", FsyncOff, 0, false},
		{"interval", FsyncInterval, 100 * time.Millisecond, false},
		{"interval=250ms", FsyncInterval, 250 * time.Millisecond, false},
		{"interval=0s", "", 0, true},
		{"sometimes", "", 0, true},
	}
	for _, c := range cases {
		p, err := ParseFsyncPolicy(c.in)
		if c.bad {
			if err == nil {
				t.Errorf("ParseFsyncPolicy(%q) accepted", c.in)
			}
			continue
		}
		if err != nil || p.Mode != c.mode || p.Interval != c.ival {
			t.Errorf("ParseFsyncPolicy(%q) = (%+v, %v)", c.in, p, err)
		}
	}
}

func TestWALPrograms(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, FsyncPolicy{Mode: FsyncOff}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SaveProgram("p1", []byte("image-one")); err != nil {
		t.Fatal(err)
	}
	if err := w.SaveProgram("p1", []byte("image-one-v2")); err != nil {
		t.Fatal(err)
	}
	if err := w.SaveProgram("p2", []byte("image-two")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	w2, err := OpenWAL(dir, FsyncPolicy{Mode: FsyncOff}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	imgs := w2.LoadPrograms()
	if len(imgs) != 2 {
		t.Fatalf("loaded %d images, want 2", len(imgs))
	}
	found := map[string]bool{}
	for _, img := range imgs {
		found[string(img)] = true
	}
	if !found["image-one-v2"] || !found["image-two"] {
		t.Fatalf("loaded images = %v", found)
	}
}

// FuzzWALJournal: journal decoding is lenient by contract — arbitrary
// bytes may only yield an error or a salvaged prefix, never a panic; and
// whatever it salvages must re-encode to a journal that decodes to the
// same records with no residual damage.
func FuzzWALJournal(f *testing.F) {
	valid := encodeJournalHeader("ten", 7)
	valid = append(valid, encodeWALRecord(walVersion, "key", "lin-a", []byte("frame-bytes"))...)
	valid = append(valid, encodeWALRecord(walVersion, "", "", []byte("second"))...)
	f.Add(valid)
	f.Add(valid[:len(valid)-5])                                     // torn tail
	f.Add(encodeJournalHeader("", 0))                               // empty journal
	f.Add([]byte("PRWJ"))                                           // truncated header
	f.Add(v1Journal("ten", 3, map[string]string{"k": "old-frame"})) // v1 compat
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tenant, base, _, recs, good, sal, err := decodeJournal(data)
		if err != nil {
			return
		}
		if good > len(data) {
			t.Fatalf("consumed offset %d exceeds the %d-byte file", good, len(data))
		}
		if sal.TornBytes > len(data) {
			t.Fatalf("salvage claims %d torn bytes of a %d-byte file", sal.TornBytes, len(data))
		}
		// Round-trip: the salvaged records must survive re-encoding intact
		// (v1 inputs upgrade to v2 with empty lineage, as compaction does).
		out := encodeJournalHeader(tenant, base)
		for _, r := range recs {
			out = append(out, encodeWALRecord(walVersion, r.Key, r.Lineage, r.Frame)...)
		}
		ten2, base2, _, recs2, _, sal2, err := decodeJournal(out)
		if err != nil || sal2.Degraded() {
			t.Fatalf("re-encoded journal damaged: (%v, %+v)", err, sal2)
		}
		if ten2 != tenant || base2 != base || len(recs2) != len(recs) {
			t.Fatalf("round trip changed shape: (%q, %d, %d) vs (%q, %d, %d)",
				ten2, base2, len(recs2), tenant, base, len(recs))
		}
		for i := range recs {
			if recs2[i].Index != recs[i].Index || recs2[i].Key != recs[i].Key ||
				recs2[i].Lineage != recs[i].Lineage || !bytes.Equal(recs2[i].Frame, recs[i].Frame) {
				t.Fatalf("round trip changed record %d", i)
			}
		}
	})
}

// v1Journal hand-assembles a version-1 journal image (no lineage field in
// record bodies) — the on-disk format every pre-lineage daemon wrote.
func v1Journal(tenant string, base uint64, recs map[string]string) []byte {
	out := encodeJournalHeader(tenant, base)
	binary.LittleEndian.PutUint16(out[4:], walVersionV1)
	keys := make([]string, 0, len(recs))
	for k := range recs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, encodeWALRecord(walVersionV1, k, "", []byte(recs[k]))...)
	}
	return out
}

// TestWALV1Compat: a v1 journal (written before lineage existed) still
// reads, keeps appending v1 records so mixed-version files never occur,
// and upgrades to v2 on compaction.
func TestWALV1Compat(t *testing.T) {
	dir := t.TempDir()
	img := v1Journal("ten", 0, map[string]string{"k0": "frame-zero", "k1": "frame-one"})
	h := fnv.New64a()
	h.Write([]byte("ten"))
	path := filepath.Join(dir, fmt.Sprintf("%016x.wal", h.Sum64()))
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}

	w, err := OpenWAL(dir, FsyncPolicy{Mode: FsyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	recs, sal, err := w.Records("ten", 0)
	if err != nil || sal.Degraded() || len(recs) != 2 {
		t.Fatalf("v1 journal read = (%d recs, %+v, %v), want 2 clean", len(recs), sal, err)
	}
	for _, r := range recs {
		if r.Lineage != "" {
			t.Fatalf("v1 record %d grew a lineage %q", r.Index, r.Lineage)
		}
	}
	// Appends to a v1 journal stay v1 (the lineage is dropped, not written
	// in a format the file's version cannot carry).
	if idx, err := w.Append("ten", "k2", "lin-live", []byte("frame-two")); err != nil || idx != 2 {
		t.Fatalf("append to v1 journal = (%d, %v)", idx, err)
	}
	recs, sal, err = w.Records("ten", 0)
	if err != nil || sal.Degraded() || len(recs) != 3 {
		t.Fatalf("v1 journal after append = (%d recs, %+v, %v)", len(recs), sal, err)
	}
	if recs[2].Key != "k2" || recs[2].Lineage != "" || string(recs[2].Frame) != "frame-two" {
		t.Fatalf("appended v1 record = %+v", recs[2])
	}

	// Compaction rewrites at v2; lineage persists from then on.
	if err := w.Compact("ten", 1); err != nil {
		t.Fatal(err)
	}
	if idx, err := w.Append("ten", "k3", "lin-after", []byte("frame-three")); err != nil || idx != 3 {
		t.Fatalf("append after upgrade = (%d, %v)", idx, err)
	}
	recs, sal, err = w.Records("ten", 0)
	if err != nil || sal.Degraded() || len(recs) != 3 {
		t.Fatalf("upgraded journal = (%d recs, %+v, %v)", len(recs), sal, err)
	}
	if recs[2].Lineage != "lin-after" {
		t.Fatalf("post-upgrade record lost lineage: %+v", recs[2])
	}
	w.Close()

	// The upgraded file reopens as v2.
	w2, err := OpenWAL(dir, FsyncPolicy{Mode: FsyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	recs, sal, err = w2.Records("ten", 0)
	if err != nil || sal.Degraded() || len(recs) != 3 || recs[2].Lineage != "lin-after" {
		t.Fatalf("reopen after upgrade = (%d recs, %+v, %v)", len(recs), sal, err)
	}
}
