package monitor

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"prorace/internal/telemetry"
	"prorace/internal/tracefmt"
)

// discardLogger silences a test monitor's structured log output.
func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// TestLineageRing exercises the ring in isolation: minting, stage
// transitions, terminal immutability, bounded eviction and its accounting.
func TestLineageRing(t *testing.T) {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	r := newLineageRing(3)
	if !r.mint("a", 1, 100, false, base) {
		t.Fatal("fresh mint rejected")
	}
	if r.mint("a", 1, 100, false, base) {
		t.Fatal("duplicate mint accepted")
	}
	if _, _, ok := r.transition("a", StageAcked, base.Add(time.Second)); !ok {
		t.Fatal("transition on a live entry failed")
	}
	si, sp, ok := r.transition("a", StageAnalyzed, base.Add(3*time.Second))
	if !ok || si != 3*time.Second || sp != 2*time.Second {
		t.Fatalf("terminal transition = (%v, %v, %v), want (3s, 2s, true)", si, sp, ok)
	}
	// Terminal entries are immutable; rounds still count.
	if _, _, ok := r.transition("a", StageRetired, base.Add(4*time.Second)); ok {
		t.Fatal("transition on a terminal entry succeeded")
	}
	r.bumpRounds("a")
	e, ok := r.get("a")
	if !ok || e.Stage != StageAnalyzed || e.Rounds != 1 || len(e.Transitions) != 3 {
		t.Fatalf("entry after terminal = %+v", e)
	}
	// Returned copies are detached from the ring.
	e.Transitions[0].Stage = "mutated"
	if e2, _ := r.get("a"); e2.Transitions[0].Stage != StageIngested {
		t.Fatal("get returned a live reference")
	}

	// Eviction: "a" is terminal, "b" stays open; pushing past the depth
	// evicts them in FIFO order and counts only the open one.
	r.mint("b", 2, 1, false, base)
	r.mint("c", 3, 1, false, base)
	r.mint("d", 4, 1, false, base) // evicts a (terminal)
	r.mint("e", 5, 1, false, base) // evicts b (open)
	minted, terminal, evictedOpen, held := r.stats()
	if minted != 5 || terminal != 1 || evictedOpen != 1 || held != 3 {
		t.Fatalf("stats = (%d, %d, %d, %d), want (5, 1, 1, 3)", minted, terminal, evictedOpen, held)
	}
	if _, ok := r.get("a"); ok {
		t.Fatal("evicted entry still readable")
	}
	if tail := r.tail(2); len(tail) != 2 || tail[0].ID != "d" || tail[1].ID != "e" {
		t.Fatalf("tail(2) = %+v", tail)
	}
	if open := r.open(); len(open) != 3 {
		t.Fatalf("open = %d entries, want 3 (c, d, e)", len(open))
	}
}

// TestLineageEndToEnd drives live ingests through a synchronous monitor
// and asserts the completeness invariant: every accepted segment's
// lineage ends terminal, in pipeline order, and rejections record why.
func TestLineageEndToEnd(t *testing.T) {
	cfg := syncConfig("", nil)
	cfg.Logger = discardLogger()
	cfg.QueueDepth = 2
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	p, frames := oracleRun(t, "web-1", 4)
	m.RegisterProgram(p)
	for i, f := range frames {
		meta := IngestMeta{Lineage: fmt.Sprintf("prod-%d", i)}
		if err := m.IngestWith("web-1", meta, f); err != nil {
			t.Fatal(err)
		}
	}
	// Completeness: no open lineages once the synchronous rounds are done.
	if open := m.OpenLineages(); len(open) != 0 {
		t.Fatalf("open lineages after quiescence: %+v", open)
	}
	// Every producer ID is resolvable with an ordered ingest-to-terminal
	// history. No WAL here, so fsynced is skipped.
	wantPath := []string{StageIngested, StageAcked, StageQueued, StageAnalyzing, StageAnalyzed}
	for i := range frames {
		l, ok := m.Lineage("web-1", fmt.Sprintf("prod-%d", i))
		if !ok {
			t.Fatalf("lineage prod-%d not found", i)
		}
		if len(l.Transitions) != len(wantPath) {
			t.Fatalf("prod-%d path = %+v, want %v", i, l.Transitions, wantPath)
		}
		for j, tr := range l.Transitions {
			if tr.Stage != wantPath[j] {
				t.Fatalf("prod-%d stage %d = %s, want %s", i, j, tr.Stage, wantPath[j])
			}
			if j > 0 && tr.At.Before(l.Transitions[j-1].At) {
				t.Fatalf("prod-%d transitions out of time order: %+v", i, l.Transitions)
			}
		}
		if l.Rounds < 1 || l.Recovered {
			t.Fatalf("prod-%d = rounds %d recovered %v", i, l.Rounds, l.Recovered)
		}
	}
	// The first segment rode in every later round too.
	if l, _ := m.Lineage("web-1", "prod-0"); l.Rounds != len(frames) {
		t.Fatalf("prod-0 rounds = %d, want %d", l.Rounds, len(frames))
	}

	// A corrupt frame with a producer lineage records a terminal rejection
	// carrying the reason; without one, nothing is recorded.
	corrupt := append([]byte(nil), frames[0]...)
	corrupt[len(corrupt)/2] ^= 0xFF
	if err := m.IngestWith("web-1", IngestMeta{Lineage: "prod-bad"}, corrupt); err == nil {
		t.Fatal("corrupt frame accepted")
	}
	l, ok := m.Lineage("web-1", "prod-bad")
	if !ok || l.Stage != StageRejected || l.Error == "" {
		t.Fatalf("rejected lineage = (%+v, %v)", l, ok)
	}
	before, _, _, _ := m.tenantFor("web-1").lin.stats()
	if err := m.Ingest("web-1", corrupt); err == nil {
		t.Fatal("corrupt frame accepted")
	}
	if after, _, _, _ := m.tenantFor("web-1").lin.stats(); after != before {
		t.Fatal("lineage minted for an ID-less permanent rejection")
	}

	// Retryable rejections must leave the producer's ID mintable: wedge the
	// queue, get ErrQueueFull, then succeed with the same ID.
	ten := m.tenantFor("wedged")
	_, seg, err := tracefmt.DecodeSegment(frames[0])
	if err != nil {
		t.Fatal(err)
	}
	ten.pending = append(ten.pending, ingestSeg{seg: seg}, ingestSeg{seg: seg})
	if err := m.IngestWith("wedged", IngestMeta{Lineage: "retry-1"}, frames[0]); err == nil {
		t.Fatal("full queue accepted")
	}
	if _, ok := m.Lineage("wedged", "retry-1"); ok {
		t.Fatal("lineage recorded for a retryable rejection")
	}
	ten.pending = nil
	if err := m.IngestWith("wedged", IngestMeta{Lineage: "retry-1"}, frames[0]); err != nil {
		t.Fatal(err)
	}
	if l, ok := m.Lineage("wedged", "retry-1"); !ok || !TerminalStage(l.Stage) {
		t.Fatalf("retried lineage = (%+v, %v)", l, ok)
	}
}

// TestLineageStatusCounters: the TenantStatus lineage accounting matches
// the ring, and the latency histograms populate under the fake clock.
func TestLineageStatusCounters(t *testing.T) {
	reg := telemetry.New()
	cfg := syncConfig("", reg)
	cfg.Logger = discardLogger()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	p, frames := oracleRun(t, "web-1", 3)
	m.RegisterProgram(p)
	for _, f := range frames {
		if err := m.Ingest("web-1", f); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Tenants()[0]
	if st.LineageMinted != 3 || st.LineageTerminal != 3 || st.LineageEvicted != 0 || st.LineageHeld != 3 {
		t.Fatalf("lineage accounting = %+v", st)
	}
	if st.WindowOldest.IsZero() || st.WindowNewest.Before(st.WindowOldest) {
		t.Fatalf("window age bounds = (%v, %v)", st.WindowOldest, st.WindowNewest)
	}
	snap := reg.Snapshot()
	for _, h := range []string{
		"proraced_stage_ack_seconds",
		"proraced_stage_queue_wait_seconds",
		"proraced_stage_analyze_seconds",
		"proraced_ingest_to_analyzed_seconds",
	} {
		if snap.Histograms[h].Count != 3 {
			t.Fatalf("%s count = %d, want 3\n%+v", h, snap.Histograms[h].Count, snap.Histograms)
		}
	}
	// The fake clock ticks one second per now(): end-to-end latency is
	// strictly positive, so the sum reflects real stage gaps.
	if snap.Histograms["proraced_ingest_to_analyzed_seconds"].Sum <= 0 {
		t.Fatal("ingest-to-analyzed histogram sum not positive")
	}
}

// TestLineageRecovery: lineage IDs persisted in the WAL are reconstructed
// after a restart — the analyzed prefix jumps straight to terminal and a
// journaled-but-unanalyzed suffix replays through the pipeline — and both
// are flagged Recovered.
func TestLineageRecovery(t *testing.T) {
	dir := t.TempDir()
	p, frames := oracleRun(t, "web-1", 4)

	m, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	m.RegisterProgram(p)
	for i, f := range frames {
		if err := m.IngestWith("web-1", IngestMeta{Lineage: fmt.Sprintf("prod-%d", i)}, f); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a segment that was journaled but never analysed: append it
	// behind the crashed daemon's back (the cursor does not cover it).
	w, err := OpenWAL(filepath.Join(dir, "wal"), FsyncPolicy{Mode: FsyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append("web-1", "late-key", "prod-late", frames[len(frames)-1]); err != nil {
		t.Fatal(err)
	}
	w.Close()

	m2, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	// Everything is terminal again after recovery (the suffix replayed
	// synchronously), and histories carry the producer's IDs.
	if open := m2.OpenLineages(); len(open) != 0 {
		t.Fatalf("open lineages after recovery: %+v", open)
	}
	lin := m2.Lineages("web-1", 0)
	if len(lin) == 0 {
		t.Fatal("no lineages after recovery")
	}
	byID := map[string]SegmentLineage{}
	for _, l := range lin {
		byID[l.ID] = l
	}
	for _, id := range []string{fmt.Sprintf("prod-%d", len(frames)-1), "prod-late"} {
		l, ok := byID[id]
		if !ok {
			t.Fatalf("lineage %s not reconstructed; have %v", id, keysOf(byID))
		}
		if !l.Recovered || !TerminalStage(l.Stage) || l.JournalIndex == 0 {
			t.Fatalf("recovered lineage %s = %+v", id, l)
		}
	}
	// The replayed suffix went through the pipeline, not straight to
	// terminal: its history shows the journey.
	if l := byID["prod-late"]; l.Stage != StageAnalyzed || len(l.Transitions) < 4 {
		t.Fatalf("replayed suffix lineage = %+v", l)
	}
}

func keysOf(m map[string]SegmentLineage) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestStatuszSurface drives /statusz and /tenantz over HTTP: HTML and
// JSON rendering, cache suppression, and the drill-down's error paths.
func TestStatuszSurface(t *testing.T) {
	reg := telemetry.New()
	cfg := syncConfig("", reg)
	cfg.Logger = discardLogger()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	p, frames := oracleRun(t, "web-1", 3)
	m.RegisterProgram(p)
	for _, f := range frames {
		if err := m.Ingest("web-1", f); err != nil {
			t.Fatal(err)
		}
	}
	mux := http.NewServeMux()
	m.Attach(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// HTML overview.
	resp, err := http.Get(srv.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(resp.Header.Get("Content-Type"), "text/html") {
		t.Fatalf("statusz HTML = %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if got := resp.Header.Get("Cache-Control"); got != "no-store" {
		t.Fatalf("statusz Cache-Control = %q", got)
	}
	for _, want := range []string{"web-1", "proraced", StageAnalyzed} {
		if !strings.Contains(string(page), want) {
			t.Fatalf("statusz page missing %q:\n%s", want, page)
		}
	}

	// JSON overview: at least one tenant row whose lineage tail ends
	// terminal (the CI daemon job scrapes exactly this).
	var s Statusz
	getJSON(t, srv.URL+"/statusz?format=json", &s)
	if s.Service != "proraced" || s.GoVersion == "" || s.PID == 0 || s.UptimeSeconds < 0 {
		t.Fatalf("statusz identity = %+v", s)
	}
	if s.Config.Window != 8 || s.Config.LineageDepth != 256 {
		t.Fatalf("statusz config = %+v", s.Config)
	}
	if len(s.Tenants) != 1 || s.Tenants[0].Tenant != "web-1" {
		t.Fatalf("statusz tenants = %+v", s.Tenants)
	}
	tail := s.Tenants[0].LineageTail
	if len(tail) == 0 || !TerminalStage(tail[len(tail)-1].Stage) {
		t.Fatalf("statusz lineage tail = %+v", tail)
	}

	// The Accept header is an equally good way to ask for JSON.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/statusz", nil)
	req.Header.Set("Accept", "application/json")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	ct := resp.Header.Get("Content-Type")
	resp.Body.Close()
	if !strings.Contains(ct, "application/json") {
		t.Fatalf("Accept: application/json got Content-Type %q", ct)
	}

	// Tenant drill-down.
	var tz Tenantz
	getJSON(t, srv.URL+"/tenantz?tenant=web-1&format=json", &tz)
	if tz.Tenant != "web-1" || len(tz.Lineages) != 3 || len(tz.Reports) == 0 {
		t.Fatalf("tenantz = %d lineages, %d reports", len(tz.Lineages), len(tz.Reports))
	}
	for _, l := range tz.Lineages {
		if len(l.Transitions) == 0 || !TerminalStage(l.Stage) {
			t.Fatalf("tenantz lineage = %+v", l)
		}
	}
	resp, _ = http.Get(srv.URL + "/tenantz?tenant=web-1")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), StageAnalyzed) {
		t.Fatalf("tenantz HTML = %d:\n%s", resp.StatusCode, body)
	}
	if resp, _ = http.Get(srv.URL + "/tenantz?tenant=nope"); resp.StatusCode != 404 {
		t.Fatalf("unknown tenant = %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
	if resp, _ = http.Get(srv.URL + "/tenantz"); resp.StatusCode != 400 {
		t.Fatalf("missing tenant param = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestLineageHeaderPropagation: the client's X-Prorace-Lineage header is
// the ID the daemon's ring keys the history on.
func TestLineageHeaderPropagation(t *testing.T) {
	cfg := syncConfig("", nil)
	cfg.Logger = discardLogger()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	mux := http.NewServeMux()
	m.Attach(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	p, frames := oracleRun(t, "web-1", 2)
	m.RegisterProgram(p)

	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/ingest?tenant=web-1", strings.NewReader(string(frames[0])))
	req.Header.Set(HeaderLineage, "lin-via-header")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest = %d", resp.StatusCode)
	}
	l, ok := m.Lineage("web-1", "lin-via-header")
	if !ok || !TerminalStage(l.Stage) {
		t.Fatalf("header lineage = (%+v, %v)", l, ok)
	}

	// Without the header the daemon mints one (boot-scoped).
	resp, err = http.Post(srv.URL+"/ingest?tenant=web-1", "application/octet-stream", strings.NewReader(string(frames[1])))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	lin := m.Lineages("web-1", 1)
	if len(lin) != 1 || !strings.Contains(lin[0].ID, "-web-1-") {
		t.Fatalf("daemon-minted lineage = %+v", lin)
	}
}
