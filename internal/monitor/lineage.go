package monitor

// Segment lineage: every accepted segment carries a lineage ID (minted by
// the producing client, or by the daemon when the producer predates the
// header) and the monitor records a timestamped transition for each stage
// of the segment's life:
//
//	ingested → fsynced → acked → queued → analyzing → analyzed
//	                                                │ rejected
//	                                                │ retired
//
// analyzed, rejected and retired are terminal; a segment that reached one
// of them never transitions again (window re-analyses bump Rounds
// instead). The transitions live in a bounded per-tenant ring, so any
// recently acked segment's life — including across a crash, where the
// lineage ID is replayed out of the WAL record and the entry is flagged
// Recovered — can be reconstructed after the fact via /tenantz, and the
// completeness invariant ("every acked segment ends terminal") is
// checkable by tests and the chaos harness.

import (
	"sync"
	"time"
)

// Lineage stages, in pipeline order.
const (
	StageIngested  = "ingested"  // decoded and admitted
	StageFsynced   = "fsynced"   // journaled per the fsync policy
	StageAcked     = "acked"     // acknowledgement to the producer is guaranteed
	StageQueued    = "queued"    // waiting in the tenant's pending queue
	StageAnalyzing = "analyzing" // part of an in-flight analysis round
	StageAnalyzed  = "analyzed"  // terminal: at least one round completed over it
	StageRejected  = "rejected"  // terminal: corrupt, unresolvable or session-mismatched
	StageRetired   = "retired"   // terminal: evicted before any round completed
)

// TerminalStage reports whether stage ends a segment's lineage.
func TerminalStage(stage string) bool {
	return stage == StageAnalyzed || stage == StageRejected || stage == StageRetired
}

// LineageTransition is one timestamped stage entry.
type LineageTransition struct {
	Stage string    `json:"stage"`
	At    time.Time `json:"at"`
}

// SegmentLineage is the reconstructed life of one segment. It is plain
// data: every accessor on lineageRing returns deep copies, safe to
// serialize or retain.
type SegmentLineage struct {
	// ID is the lineage ID: producer-minted (X-Prorace-Lineage) when the
	// client sent one, daemon-minted otherwise. Persisted in the WAL
	// record, so it survives a crash.
	ID string `json:"id"`
	// Seq is the producer-assigned segment sequence number within its run.
	Seq uint64 `json:"seq"`
	// JournalIndex is idx+1 of the segment's WAL record (0 = not journaled).
	JournalIndex uint64 `json:"journal_index,omitempty"`
	// Bytes is the segment's trace payload size.
	Bytes uint64 `json:"bytes,omitempty"`
	// Recovered marks a segment that re-entered the pipeline through
	// crash-recovery replay rather than a live ingest.
	Recovered bool `json:"recovered,omitempty"`
	// Rounds counts analysis rounds that included this segment (window
	// re-analyses keep counting after the terminal analyzed transition).
	Rounds int `json:"rounds"`
	// Stage is the current (last) stage.
	Stage string `json:"stage"`
	// Error carries the rejection reason for rejected segments.
	Error string `json:"error,omitempty"`
	// Transitions is the full timestamped history, oldest first.
	Transitions []LineageTransition `json:"transitions"`
}

// clone deep-copies the entry (the ring hands out copies only).
func (l *SegmentLineage) clone() SegmentLineage {
	cp := *l
	cp.Transitions = append([]LineageTransition(nil), l.Transitions...)
	return cp
}

// lineageRing is one tenant's bounded lineage history: a FIFO of at most
// depth entries indexed by lineage ID. It has its own mutex — callers may
// hold tenant or monitor locks; the ring never takes any lock but its own.
type lineageRing struct {
	mu      sync.Mutex
	depth   int
	order   []string // insertion order, oldest first
	entries map[string]*SegmentLineage

	minted    uint64 // entries ever minted
	terminal  uint64 // entries that reached a terminal stage
	evictOpen uint64 // entries evicted from the ring before terminating
}

func newLineageRing(depth int) *lineageRing {
	if depth <= 0 {
		depth = 256
	}
	return &lineageRing{depth: depth, entries: map[string]*SegmentLineage{}}
}

// mint records a new segment entering the pipeline at StageIngested and
// returns false if the ID already exists (an idempotent resend or a replay
// of a live entry — the existing lineage is kept).
func (r *lineageRing) mint(id string, seq uint64, bytes uint64, recovered bool, now time.Time) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[id]; ok {
		return false
	}
	e := &SegmentLineage{
		ID:          id,
		Seq:         seq,
		Bytes:       bytes,
		Recovered:   recovered,
		Stage:       StageIngested,
		Transitions: []LineageTransition{{Stage: StageIngested, At: now}},
	}
	r.entries[id] = e
	r.order = append(r.order, id)
	r.minted++
	for len(r.order) > r.depth {
		old := r.order[0]
		r.order = r.order[1:]
		if ev, ok := r.entries[old]; ok {
			if !TerminalStage(ev.Stage) {
				r.evictOpen++
			}
			delete(r.entries, old)
		}
	}
	return true
}

// setJournal records the WAL position of a just-journaled segment.
func (r *lineageRing) setJournal(id string, journalIdx uint64) {
	r.mu.Lock()
	if e, ok := r.entries[id]; ok {
		e.JournalIndex = journalIdx
	}
	r.mu.Unlock()
}

// stage returns the entry's current stage ("" if unknown or evicted).
func (r *lineageRing) stage(id string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[id]; ok {
		return e.Stage
	}
	return ""
}

// transition appends a stage to the entry's history. Terminal entries are
// immutable: a transition on one is a no-op (ok=false). It returns how
// long the segment has been in flight (since ingested) and how long the
// previous stage lasted, for the latency histograms.
func (r *lineageRing) transition(id, stage string, now time.Time) (sinceIngest, sincePrev time.Duration, ok bool) {
	return r.transitionErr(id, stage, "", now)
}

// transitionErr is transition with a rejection reason attached.
func (r *lineageRing) transitionErr(id, stage, errMsg string, now time.Time) (sinceIngest, sincePrev time.Duration, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, found := r.entries[id]
	if !found || TerminalStage(e.Stage) {
		return 0, 0, false
	}
	sinceIngest = now.Sub(e.Transitions[0].At)
	sincePrev = now.Sub(e.Transitions[len(e.Transitions)-1].At)
	e.Transitions = append(e.Transitions, LineageTransition{Stage: stage, At: now})
	e.Stage = stage
	if errMsg != "" {
		e.Error = errMsg
	}
	if TerminalStage(stage) {
		r.terminal++
	}
	return sinceIngest, sincePrev, true
}

// bumpRounds counts one more analysis round over an (already terminal)
// segment.
func (r *lineageRing) bumpRounds(id string) {
	r.mu.Lock()
	if e, ok := r.entries[id]; ok {
		e.Rounds++
	}
	r.mu.Unlock()
}

// get returns a copy of one entry.
func (r *lineageRing) get(id string) (SegmentLineage, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[id]; ok {
		return e.clone(), true
	}
	return SegmentLineage{}, false
}

// tail returns copies of the newest n entries, oldest of them first
// (n <= 0 means all).
func (r *lineageRing) tail(n int) []SegmentLineage {
	r.mu.Lock()
	defer r.mu.Unlock()
	ids := r.order
	if n > 0 && len(ids) > n {
		ids = ids[len(ids)-n:]
	}
	out := make([]SegmentLineage, 0, len(ids))
	for _, id := range ids {
		if e, ok := r.entries[id]; ok {
			out = append(out, e.clone())
		}
	}
	return out
}

// open returns copies of every non-terminal entry — the completeness
// invariant's violation set after quiescence.
func (r *lineageRing) open() []SegmentLineage {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []SegmentLineage
	for _, id := range r.order {
		if e, ok := r.entries[id]; ok && !TerminalStage(e.Stage) {
			out = append(out, e.clone())
		}
	}
	return out
}

// stats returns the ring's lifetime accounting.
func (r *lineageRing) stats() (minted, terminal, evictedOpen uint64, held int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.minted, r.terminal, r.evictOpen, len(r.entries)
}
