package monitor

// The write-ahead segment journal. Ingest's durability contract is
// "accepted means survivable": every PRSG frame is appended to its
// tenant's journal — checksummed, length-prefixed, fsynced per policy —
// before the HTTP 200 goes out, so a daemon crash can lose only segments
// the producer was never told were safe (and will therefore resend). On
// restart the Monitor replays each journal's unanalyzed suffix through
// the normal ingest path; the store's cursor (persisted atomically with
// the reports it covers) marks where analysis had durably reached, which
// together with the store's stable fingerprints yields effectively-once
// report semantics across crashes.
//
// Journal file layout, little endian:
//
//	header: magic "PRWJ" | version u16 | base u64 | tenLen u16 | tenant
//	record: n u32 | body (n bytes) | check u64 (FNV-1a over body)
//	body v1: keyLen u16 | key | frame (raw PRSG bytes)
//	body v2: keyLen u16 | key | linLen u16 | lineage | frame
//
// Version 2 adds the segment's lineage ID to every record, so a restarted
// daemon reconstructs the same lineage entries (flagged Recovered) that
// the crashed incarnation was tracking. Version 1 journals remain
// readable — their records simply carry no lineage — and keep appending
// v1 records until a compaction rewrites the file as v2.
//
// base is the global index of the file's first record: indices never
// reset, so the store's cursor stays valid across compactions (a rewrite
// that drops records already analyzed and no longer needed for window
// rebuild). A torn tail — the record a crash interrupted — is salvaged
// leniently: the readable prefix is kept, the tail is truncated away and
// accounted, and the daemon boots.

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"prorace/internal/faultinject"
)

// Fsync policies for the journal.
const (
	// FsyncAlways syncs after every append, before the ingest 200: no
	// accepted segment can be lost even to a machine crash.
	FsyncAlways = "always"
	// FsyncInterval syncs at most once per interval (plus on drain): a
	// machine crash can lose up to one interval of accepted segments; a
	// plain process crash loses nothing (the OS still has the writes).
	FsyncInterval = "interval"
	// FsyncOff never syncs except on drain.
	FsyncOff = "off"
)

// FsyncPolicy says when journal appends reach stable storage.
type FsyncPolicy struct {
	Mode     string        // FsyncAlways, FsyncInterval or FsyncOff
	Interval time.Duration // used by FsyncInterval (default 100ms)
}

// ParseFsyncPolicy reads "always", "off", "interval" or "interval=DUR".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == FsyncAlways {
		return FsyncPolicy{Mode: FsyncAlways}, nil
	}
	if s == FsyncOff {
		return FsyncPolicy{Mode: FsyncOff}, nil
	}
	if s == FsyncInterval {
		return FsyncPolicy{Mode: FsyncInterval, Interval: 100 * time.Millisecond}, nil
	}
	if dv, ok := strings.CutPrefix(s, FsyncInterval+"="); ok {
		d, err := time.ParseDuration(dv)
		if err != nil || d <= 0 {
			return FsyncPolicy{}, fmt.Errorf("monitor: bad fsync interval %q", dv)
		}
		return FsyncPolicy{Mode: FsyncInterval, Interval: d}, nil
	}
	return FsyncPolicy{}, fmt.Errorf("monitor: unknown fsync policy %q (want always, interval[=dur] or off)", s)
}

const (
	walMagic     = "PRWJ"
	walVersion   = 2
	walVersionV1 = 1
)

// WALRecord is one journaled ingest: the raw frame plus the idempotency
// key and lineage ID the producer sent with it. Index is the record's
// global position in its tenant's journal (never reset by compaction).
type WALRecord struct {
	Index   uint64
	Key     string
	Lineage string
	Frame   []byte
}

// WALSalvage accounts what a lenient journal read had to give up.
type WALSalvage struct {
	// TornBytes is the size of a trailing partial record (a crash mid
	// append) that was dropped.
	TornBytes int
	// BadRecords counts records dropped for checksum or framing damage.
	BadRecords int
}

// Degraded reports whether anything was lost.
func (s WALSalvage) Degraded() bool { return s.TornBytes > 0 || s.BadRecords > 0 }

// journal is one tenant's open journal file.
type journal struct {
	mu       sync.Mutex
	path     string
	tenant   string
	f        *os.File
	version  uint16 // record encoding appended to this file
	base     uint64 // global index of the file's first record
	count    uint64 // records currently in the file
	size     int64  // current file size (append offset)
	lastSync time.Time
	dirty    bool
}

// WAL is the per-tenant journal set rooted at one directory, plus the
// persisted program-image registry (recovery must be able to resolve the
// programs the journaled segments name, so RegisterProgram images are
// stored next to the journals).
type WAL struct {
	dir    string
	policy FsyncPolicy
	now    func() time.Time

	mu       sync.Mutex
	journals map[string]*journal // tenant -> journal
	salvage  map[string]WALSalvage
}

// OpenWAL opens (creating if needed) the journal directory and leniently
// scans every existing journal: torn tails are truncated away and
// recorded per tenant, unreadable files are quarantined with a .corrupt
// suffix — a damaged journal degrades recovery, never boot.
func OpenWAL(dir string, policy FsyncPolicy, now func() time.Time) (*WAL, error) {
	if policy.Mode == "" {
		policy.Mode = FsyncAlways
	}
	if policy.Mode == FsyncInterval && policy.Interval <= 0 {
		policy.Interval = 100 * time.Millisecond
	}
	if now == nil {
		now = time.Now
	}
	if err := os.MkdirAll(filepath.Join(dir, "programs"), 0o755); err != nil {
		return nil, fmt.Errorf("monitor: creating wal dir: %w", err)
	}
	w := &WAL{
		dir:      dir,
		policy:   policy,
		now:      now,
		journals: map[string]*journal{},
		salvage:  map[string]WALSalvage{},
	}
	names, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil {
		return nil, err
	}
	for _, path := range names {
		if err := w.openExisting(path); err != nil {
			// Unreadable header: quarantine and continue booting.
			os.Rename(path, path+".corrupt")
		}
	}
	return w, nil
}

// openExisting scans one journal file, truncating a torn tail so that the
// next append starts on a record boundary.
func (w *WAL) openExisting(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	tenant, base, version, recs, good, sal, err := decodeJournal(data)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if int64(good) < int64(len(data)) {
		if err := f.Truncate(int64(good)); err != nil {
			f.Close()
			return err
		}
	}
	if _, err := f.Seek(int64(good), 0); err != nil {
		f.Close()
		return err
	}
	w.journals[tenant] = &journal{
		path:    path,
		tenant:  tenant,
		f:       f,
		version: version,
		base:    base,
		count:   uint64(len(recs)),
		size:    int64(good),
	}
	if sal.Degraded() {
		w.salvage[tenant] = sal
	}
	return nil
}

// Salvage returns per-tenant damage found while opening journals.
func (w *WAL) Salvage() map[string]WALSalvage {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make(map[string]WALSalvage, len(w.salvage))
	for k, v := range w.salvage {
		out[k] = v
	}
	return out
}

// Tenants lists tenants with a journal, sorted (deterministic recovery
// order).
func (w *WAL) Tenants() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]string, 0, len(w.journals))
	for t := range w.journals {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

func (w *WAL) journalFor(tenant string) (*journal, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if j, ok := w.journals[tenant]; ok {
		return j, nil
	}
	h := fnv.New64a()
	h.Write([]byte(tenant))
	path := filepath.Join(w.dir, fmt.Sprintf("%016x.wal", h.Sum64()))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	hdr := encodeJournalHeader(tenant, 0)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, err
	}
	j := &journal{path: path, tenant: tenant, f: f, version: walVersion, size: int64(len(hdr))}
	w.journals[tenant] = j
	return j, nil
}

// Append journals one accepted frame and returns its global index. The
// write (and, under FsyncAlways, the sync) completes before Append
// returns — this is the durability point the ingest 200 stands on.
func (w *WAL) Append(tenant, key, lineage string, frame []byte) (uint64, error) {
	j, err := w.journalFor(tenant)
	if err != nil {
		return 0, err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	rec := encodeWALRecord(j.version, key, lineage, frame)
	// Chaos point: a crash halfway through the append leaves a torn tail
	// for recovery to salvage.
	faultinject.CrashWith("wal.append.mid", func() {
		j.f.Write(rec[:len(rec)/2])
		j.f.Sync()
	})
	if _, err := j.f.Write(rec); err != nil {
		// Undo a possibly partial write so the journal stays parseable.
		j.f.Truncate(j.size)
		j.f.Seek(j.size, 0)
		return 0, fmt.Errorf("monitor: journal append: %w", err)
	}
	j.size += int64(len(rec))
	j.dirty = true
	// Chaos point: crash after the write, before the sync. Under
	// FsyncAlways the segment was never acknowledged, so the producer's
	// retry (same idempotency key) covers it.
	faultinject.Crash("wal.append.presync")
	if err := w.maybeSync(j); err != nil {
		return 0, err
	}
	idx := j.base + j.count
	j.count++
	return idx, nil
}

// maybeSync applies the fsync policy. Caller holds j.mu.
func (w *WAL) maybeSync(j *journal) error {
	switch w.policy.Mode {
	case FsyncOff:
		return nil
	case FsyncInterval:
		now := w.now()
		if now.Sub(j.lastSync) < w.policy.Interval {
			return nil
		}
		j.lastSync = now
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("monitor: journal sync: %w", err)
	}
	j.dirty = false
	return nil
}

// NextIndex returns the index the tenant's next appended record will get
// (== the number of records ever journaled for it).
func (w *WAL) NextIndex(tenant string) uint64 {
	w.mu.Lock()
	j, ok := w.journals[tenant]
	w.mu.Unlock()
	if !ok {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.base + j.count
}

// Size returns the tenant's current journal file size in bytes (0 when
// the tenant has no journal) — the /statusz per-tenant WAL bytes column.
func (w *WAL) Size(tenant string) int64 {
	w.mu.Lock()
	j, ok := w.journals[tenant]
	w.mu.Unlock()
	if !ok {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// Records reads the tenant's journal and returns every record with
// Index >= from, plus salvage accounting for any tail damage found.
func (w *WAL) Records(tenant string, from uint64) ([]WALRecord, WALSalvage, error) {
	w.mu.Lock()
	j, ok := w.journals[tenant]
	w.mu.Unlock()
	if !ok {
		return nil, WALSalvage{}, nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	data, err := os.ReadFile(j.path)
	if err != nil {
		return nil, WALSalvage{}, err
	}
	_, _, _, recs, _, sal, err := decodeJournal(data)
	if err != nil {
		return nil, sal, err
	}
	out := recs[:0]
	for _, r := range recs {
		if r.Index >= from {
			out = append(out, r)
		}
	}
	return out, sal, nil
}

// Compact rewrites the tenant's journal keeping only records with
// Index >= keepFrom — everything older is both analyzed (the store cursor
// passed it) and outside the rebuildable window. The rewrite is atomic
// (temp + rename), so a crash leaves either journal generation intact.
func (w *WAL) Compact(tenant string, keepFrom uint64) error {
	w.mu.Lock()
	j, ok := w.journals[tenant]
	w.mu.Unlock()
	if !ok {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if keepFrom <= j.base {
		return nil // nothing droppable
	}
	end := j.base + j.count
	if keepFrom > end {
		keepFrom = end
	}
	data, err := os.ReadFile(j.path)
	if err != nil {
		return err
	}
	_, _, _, recs, _, _, err := decodeJournal(data)
	if err != nil {
		return err
	}
	// Compaction re-encodes at the current version, upgrading v1 journals.
	out := encodeJournalHeader(j.tenant, keepFrom)
	kept := uint64(0)
	for _, r := range recs {
		if r.Index >= keepFrom {
			out = append(out, encodeWALRecord(walVersion, r.Key, r.Lineage, r.Frame)...)
			kept++
		}
	}
	tmp := j.path + ".tmp"
	if err := writeFileSync(tmp, out); err != nil {
		return err
	}
	if err := os.Rename(tmp, j.path); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(filepath.Dir(j.path))
	f, err := os.OpenFile(j.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Seek(int64(len(out)), 0); err != nil {
		f.Close()
		return err
	}
	j.f.Close()
	j.f = f
	j.version = walVersion
	j.base = keepFrom
	j.count = kept
	j.size = int64(len(out))
	return nil
}

// Sync flushes every dirty journal (drain path).
func (w *WAL) Sync() error {
	w.mu.Lock()
	js := make([]*journal, 0, len(w.journals))
	for _, j := range w.journals {
		js = append(js, j)
	}
	w.mu.Unlock()
	var first error
	for _, j := range js {
		j.mu.Lock()
		if j.dirty {
			if err := j.f.Sync(); err != nil && first == nil {
				first = err
			} else {
				j.dirty = false
			}
		}
		j.mu.Unlock()
	}
	return first
}

// Close syncs and closes every journal.
func (w *WAL) Close() error {
	err := w.Sync()
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, j := range w.journals {
		j.mu.Lock()
		j.f.Close()
		j.mu.Unlock()
	}
	w.journals = map[string]*journal{}
	return err
}

// SaveProgram persists one registered program image so recovery can
// resolve journaled segments after a restart (atomic write + fsync).
func (w *WAL) SaveProgram(name string, image []byte) error {
	h := fnv.New64a()
	h.Write([]byte(name))
	path := filepath.Join(w.dir, "programs", fmt.Sprintf("%016x.prim", h.Sum64()))
	if err := writeFileSync(path+".tmp", image); err != nil {
		return err
	}
	if err := os.Rename(path+".tmp", path); err != nil {
		os.Remove(path + ".tmp")
		return err
	}
	syncDir(filepath.Dir(path))
	return nil
}

// LoadPrograms returns every persisted program image.
func (w *WAL) LoadPrograms() [][]byte {
	names, _ := filepath.Glob(filepath.Join(w.dir, "programs", "*.prim"))
	sort.Strings(names)
	out := make([][]byte, 0, len(names))
	for _, path := range names {
		if raw, err := os.ReadFile(path); err == nil {
			out = append(out, raw)
		}
	}
	return out
}

// --- encoding ---

func journalHeaderLen(tenant string) int { return 4 + 2 + 8 + 2 + len(tenant) }

func encodeJournalHeader(tenant string, base uint64) []byte {
	out := make([]byte, 0, journalHeaderLen(tenant))
	out = append(out, walMagic...)
	out = binary.LittleEndian.AppendUint16(out, walVersion)
	out = binary.LittleEndian.AppendUint64(out, base)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(tenant)))
	out = append(out, tenant...)
	return out
}

func walRecordLen(version uint16, key, lineage string, frame []byte) int {
	n := 4 + 2 + len(key) + len(frame) + 8
	if version >= 2 {
		n += 2 + len(lineage)
	}
	return n
}

func encodeWALRecord(version uint16, key, lineage string, frame []byte) []byte {
	n := walRecordLen(version, key, lineage, frame) - 4 - 8
	out := make([]byte, 0, 4+n+8)
	out = binary.LittleEndian.AppendUint32(out, uint32(n))
	out = binary.LittleEndian.AppendUint16(out, uint16(len(key)))
	out = append(out, key...)
	if version >= 2 {
		out = binary.LittleEndian.AppendUint16(out, uint16(len(lineage)))
		out = append(out, lineage...)
	}
	out = append(out, frame...)
	h := fnv.New64a()
	h.Write(out[4:])
	out = binary.LittleEndian.AppendUint64(out, h.Sum64())
	return out
}

// decodeJournal leniently parses a journal image. A damaged header is a
// hard error (the file is quarantined); per-record damage ends the scan
// there, salvaging the prefix — the usual shape of a crash mid append.
// good is the byte offset of the last cleanly decoded record's end (the
// truncation point for a torn tail).
func decodeJournal(data []byte) (tenant string, base uint64, version uint16, recs []WALRecord, good int, sal WALSalvage, err error) {
	if len(data) < 4+2+8+2 || string(data[:4]) != walMagic {
		return "", 0, 0, nil, 0, sal, fmt.Errorf("monitor: not a journal (bad magic)")
	}
	version = binary.LittleEndian.Uint16(data[4:])
	if version != walVersionV1 && version != walVersion {
		return "", 0, 0, nil, 0, sal, fmt.Errorf("monitor: unsupported journal version %d", version)
	}
	base = binary.LittleEndian.Uint64(data[6:])
	tenLen := int(binary.LittleEndian.Uint16(data[14:]))
	if 16+tenLen > len(data) {
		return "", 0, 0, nil, 0, sal, fmt.Errorf("monitor: journal tenant name exceeds file")
	}
	tenant = string(data[16 : 16+tenLen])
	off := 16 + tenLen
	good = off
	idx := base
	for off < len(data) {
		rest := data[off:]
		if len(rest) < 4 {
			sal.TornBytes += len(rest)
			break
		}
		n := int(binary.LittleEndian.Uint32(rest))
		if n < 2 || 4+n+8 > len(rest) {
			sal.TornBytes += len(rest)
			break
		}
		body := rest[4 : 4+n]
		h := fnv.New64a()
		h.Write(body)
		if binary.LittleEndian.Uint64(rest[4+n:]) != h.Sum64() {
			// A checksum-damaged record also ends the scan: record
			// boundaries after it cannot be trusted.
			sal.BadRecords++
			sal.TornBytes += len(rest)
			break
		}
		keyLen := int(binary.LittleEndian.Uint16(body))
		if 2+keyLen > len(body) {
			sal.BadRecords++
			sal.TornBytes += len(rest)
			break
		}
		rec := WALRecord{Index: idx, Key: string(body[2 : 2+keyLen])}
		payload := body[2+keyLen:]
		if version >= 2 {
			if len(payload) < 2 {
				sal.BadRecords++
				sal.TornBytes += len(rest)
				break
			}
			linLen := int(binary.LittleEndian.Uint16(payload))
			if 2+linLen > len(payload) {
				sal.BadRecords++
				sal.TornBytes += len(rest)
				break
			}
			rec.Lineage = string(payload[2 : 2+linLen])
			payload = payload[2+linLen:]
		}
		rec.Frame = append([]byte(nil), payload...)
		recs = append(recs, rec)
		idx++
		off += 4 + n + 8
		good = off
	}
	return tenant, base, version, recs, good, sal, nil
}

// writeFileSync writes data and fsyncs the file before returning.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a just-renamed entry survives a machine
// crash. Best effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
