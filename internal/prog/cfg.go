package prog

import (
	"prorace/internal/isa"
)

// Block is a basic block: a maximal straight-line sequence of instructions
// with one entry (the first instruction) and one exit (the last).
type Block struct {
	// ID is the block's index in Program.Blocks().
	ID int
	// Start and End delimit the block as instruction indices [Start, End).
	Start, End int
	// Succs lists the IDs of possible successor blocks. Indirect branches
	// (JMPR, CALLR, RET) have no statically known successors here; the PT
	// trace resolves them at decode time.
	Succs []int
}

// StartAddr returns the address of the block's first instruction.
func (b Block) StartAddr() uint64 { return isa.IndexToAddr(b.Start) }

// EndAddr returns the first address past the block.
func (b Block) EndAddr() uint64 { return isa.IndexToAddr(b.End) }

// Len returns the number of instructions in the block.
func (b Block) Len() int { return b.End - b.Start }

// Contains reports whether the instruction address falls inside the block.
func (b Block) Contains(addr uint64) bool {
	idx, ok := isa.AddrToIndex(addr)
	return ok && idx >= b.Start && idx < b.End
}

// Blocks computes (and caches) the program's basic blocks.
//
// Leaders are: instruction 0, every direct branch/call target, and every
// instruction following a block-ending instruction. This is the classic
// leader algorithm; it needs no path information, matching what a static
// disassembler of the binary can do — which is all RaceZ's single-basic-
// block reconstruction has to work with.
func (p *Program) Blocks() []Block {
	if p.blocks != nil {
		return p.blocks
	}
	n := len(p.Insts)
	leader := make([]bool, n+1)
	if n > 0 {
		leader[0] = true
	}
	for k, in := range p.Insts {
		switch in.Op {
		case isa.JMP, isa.JEQ, isa.JNE, isa.JLT, isa.JLE, isa.JGT, isa.JGE, isa.CALL:
			if idx, ok := isa.AddrToIndex(uint64(in.Imm)); ok && idx < n {
				leader[idx] = true
			}
		}
		if in.EndsBlock() && k+1 < n {
			leader[k+1] = true
		}
	}
	// Function entry points are leaders too (indirect call targets).
	for _, s := range p.Symbols {
		if s.Kind == SymFunc {
			if idx, ok := isa.AddrToIndex(s.Addr); ok && idx < n {
				leader[idx] = true
			}
		}
	}

	p.blockIdx = make([]int32, n)
	var blocks []Block
	start := 0
	for k := 1; k <= n; k++ {
		if k == n || leader[k] {
			b := Block{ID: len(blocks), Start: start, End: k}
			blocks = append(blocks, b)
			for j := start; j < k; j++ {
				p.blockIdx[j] = int32(b.ID)
			}
			start = k
		}
	}

	// Successors.
	addrToBlock := func(addr uint64) (int, bool) {
		idx, ok := isa.AddrToIndex(addr)
		if !ok || idx >= n {
			return 0, false
		}
		return int(p.blockIdx[idx]), true
	}
	for bi := range blocks {
		b := &blocks[bi]
		last := p.Insts[b.End-1]
		addSucc := func(addr uint64) {
			if id, ok := addrToBlock(addr); ok {
				b.Succs = append(b.Succs, id)
			}
		}
		switch {
		case last.Op == isa.JMP:
			addSucc(uint64(last.Imm))
		case last.IsCondBranch():
			addSucc(uint64(last.Imm))
			addSucc(isa.IndexToAddr(b.End)) // fall through
		case last.Op == isa.CALL:
			addSucc(uint64(last.Imm))
		case last.IsIndirectBranch():
			// unknown statically
		case last.FallThrough() && b.End < n:
			addSucc(isa.IndexToAddr(b.End))
		}
	}
	p.blocks = blocks
	return blocks
}

// BlockContaining returns the basic block covering the instruction address.
func (p *Program) BlockContaining(addr uint64) (Block, bool) {
	idx, ok := isa.AddrToIndex(addr)
	if !ok || idx >= len(p.Insts) {
		return Block{}, false
	}
	blocks := p.Blocks()
	return blocks[p.blockIdx[idx]], true
}
