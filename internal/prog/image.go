package prog

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"prorace/internal/isa"
)

// Binary image format ("ELF-lite"). ProRace operates on program binaries —
// the offline replay engine re-executes the very image that ran — so the
// reproduction keeps a real serialised form rather than passing Go objects
// around. Layout, little endian:
//
//	magic    "PRIM" (4 bytes)
//	version  uint16
//	nameLen  uint16, name bytes
//	entry    uint64
//	textLen  uint32, text bytes (isa-encoded instructions)
//	dataLen  uint32, data bytes
//	nsyms    uint32, then per symbol:
//	    kind uint8, nameLen uint16, name bytes, addr uint64, size uint64

const (
	imageMagic   = "PRIM"
	imageVersion = 1
)

// EncodeImage serialises the program to its binary image form.
func EncodeImage(p *Program) []byte {
	var b bytes.Buffer
	b.WriteString(imageMagic)
	writeU16(&b, imageVersion)
	writeU16(&b, uint16(len(p.Name)))
	b.WriteString(p.Name)
	writeU64(&b, p.Entry)
	text := isa.EncodeProgram(p.Insts)
	writeU32(&b, uint32(len(text)))
	b.Write(text)
	writeU32(&b, uint32(len(p.Data)))
	b.Write(p.Data)
	writeU32(&b, uint32(len(p.Symbols)))
	for _, s := range p.Symbols {
		b.WriteByte(byte(s.Kind))
		writeU16(&b, uint16(len(s.Name)))
		b.WriteString(s.Name)
		writeU64(&b, s.Addr)
		writeU64(&b, s.Size)
	}
	return b.Bytes()
}

// DecodeImage parses a binary image produced by EncodeImage.
func DecodeImage(img []byte) (*Program, error) {
	r := &imgReader{buf: img}
	if string(r.bytes(4)) != imageMagic {
		return nil, fmt.Errorf("prog: bad image magic")
	}
	if v := r.u16(); v != imageVersion {
		return nil, fmt.Errorf("prog: unsupported image version %d", v)
	}
	p := &Program{}
	p.Name = string(r.bytes(int(r.u16())))
	p.Entry = r.u64()
	text := r.bytes(int(r.u32()))
	p.Data = append([]byte(nil), r.bytes(int(r.u32()))...)
	nsyms := int(r.u32())
	for k := 0; k < nsyms; k++ {
		var s Symbol
		s.Kind = SymKind(r.byte())
		s.Name = string(r.bytes(int(r.u16())))
		s.Addr = r.u64()
		s.Size = r.u64()
		p.Symbols = append(p.Symbols, s)
	}
	if r.err != nil {
		return nil, fmt.Errorf("prog: truncated image: %w", r.err)
	}
	insts, err := isa.DecodeProgram(text)
	if err != nil {
		return nil, err
	}
	p.Insts = insts
	return p, nil
}

func writeU16(b *bytes.Buffer, v uint16) {
	var t [2]byte
	binary.LittleEndian.PutUint16(t[:], v)
	b.Write(t[:])
}
func writeU32(b *bytes.Buffer, v uint32) {
	var t [4]byte
	binary.LittleEndian.PutUint32(t[:], v)
	b.Write(t[:])
}
func writeU64(b *bytes.Buffer, v uint64) {
	var t [8]byte
	binary.LittleEndian.PutUint64(t[:], v)
	b.Write(t[:])
}

type imgReader struct {
	buf []byte
	off int
	err error
}

func (r *imgReader) bytes(n int) []byte {
	if r.err != nil || r.off+n > len(r.buf) {
		if r.err == nil {
			r.err = fmt.Errorf("need %d bytes at offset %d, have %d", n, r.off, len(r.buf)-r.off)
		}
		return make([]byte, n)
	}
	out := r.buf[r.off : r.off+n]
	r.off += n
	return out
}

func (r *imgReader) byte() byte  { return r.bytes(1)[0] }
func (r *imgReader) u16() uint16 { return binary.LittleEndian.Uint16(r.bytes(2)) }
func (r *imgReader) u32() uint32 { return binary.LittleEndian.Uint32(r.bytes(4)) }
func (r *imgReader) u64() uint64 { return binary.LittleEndian.Uint64(r.bytes(8)) }
