// Package prog represents executable programs for the simulated machine:
// a text segment of ISA instructions, an initialised data segment, a symbol
// table, and function boundaries. It is the stand-in for the unmodified
// x86-64 ELF binaries ProRace traces and later re-executes offline.
//
// The package also computes basic blocks and a control-flow graph, which the
// RaceZ baseline (single-basic-block reconstruction) and the PT decoder
// both consume.
package prog

import (
	"fmt"
	"sort"

	"prorace/internal/isa"
)

// SymKind classifies a symbol.
type SymKind uint8

const (
	// SymFunc marks a function entry point in the text segment.
	SymFunc SymKind = iota
	// SymData marks a global object in the data segment.
	SymData
)

// Symbol is one entry of the program's symbol table.
type Symbol struct {
	Name string
	Addr uint64
	Size uint64
	Kind SymKind
}

// Program is a loaded executable image.
type Program struct {
	// Name identifies the program (workload name).
	Name string
	// Insts is the text segment, addressed from isa.CodeBase.
	Insts []isa.Inst
	// Data is the initial content of the data segment at isa.DataBase.
	Data []byte
	// Symbols is the symbol table, sorted by address within each kind.
	Symbols []Symbol
	// Entry is the address of the first instruction thread 0 executes.
	Entry uint64

	blocks    []Block // lazily computed basic blocks
	blockIdx  []int32 // instruction index -> block number
	funcsByAd []Symbol
}

// TextEnd returns the first address past the text segment.
func (p *Program) TextEnd() uint64 {
	return isa.CodeBase + uint64(len(p.Insts))*isa.InstSize
}

// TextRegion returns the [start, end) address range of the text segment —
// what ProRace programs into a PT address-range filter to trace only the
// main executable (paper §4.2).
func (p *Program) TextRegion() (start, end uint64) {
	return isa.CodeBase, p.TextEnd()
}

// InstAt returns the instruction at an address; ok is false if the address
// is not a valid instruction address of this program.
func (p *Program) InstAt(addr uint64) (isa.Inst, bool) {
	idx, ok := isa.AddrToIndex(addr)
	if !ok || idx >= len(p.Insts) {
		return isa.Inst{}, false
	}
	return p.Insts[idx], true
}

// MustInstAt is InstAt for addresses known to be valid; it panics otherwise.
func (p *Program) MustInstAt(addr uint64) isa.Inst {
	in, ok := p.InstAt(addr)
	if !ok {
		panic(fmt.Sprintf("prog: no instruction at %#x", addr))
	}
	return in
}

// Lookup finds a symbol by name.
func (p *Program) Lookup(name string) (Symbol, bool) {
	for _, s := range p.Symbols {
		if s.Name == name {
			return s, true
		}
	}
	return Symbol{}, false
}

// MustLookup is Lookup for symbols known to exist; it panics otherwise.
func (p *Program) MustLookup(name string) Symbol {
	s, ok := p.Lookup(name)
	if !ok {
		panic("prog: unknown symbol " + name)
	}
	return s
}

// FuncContaining returns the function symbol whose range covers addr.
func (p *Program) FuncContaining(addr uint64) (Symbol, bool) {
	if p.funcsByAd == nil {
		for _, s := range p.Symbols {
			if s.Kind == SymFunc {
				p.funcsByAd = append(p.funcsByAd, s)
			}
		}
		sort.Slice(p.funcsByAd, func(i, j int) bool { return p.funcsByAd[i].Addr < p.funcsByAd[j].Addr })
	}
	i := sort.Search(len(p.funcsByAd), func(i int) bool { return p.funcsByAd[i].Addr > addr })
	if i == 0 {
		return Symbol{}, false
	}
	f := p.funcsByAd[i-1]
	if f.Size > 0 && addr >= f.Addr+f.Size {
		return Symbol{}, false
	}
	return f, true
}

// SymbolizeAddr renders an address as "func+0xoff" when possible, for race
// reports.
func (p *Program) SymbolizeAddr(addr uint64) string {
	if f, ok := p.FuncContaining(addr); ok {
		if addr == f.Addr {
			return f.Name
		}
		return fmt.Sprintf("%s+%#x", f.Name, addr-f.Addr)
	}
	return fmt.Sprintf("%#x", addr)
}

// SymbolizeData renders a data address as "global+off" when a data symbol
// covers it.
func (p *Program) SymbolizeData(addr uint64) string {
	for _, s := range p.Symbols {
		if s.Kind == SymData && addr >= s.Addr && addr < s.Addr+s.Size {
			if addr == s.Addr {
				return s.Name
			}
			return fmt.Sprintf("%s+%d", s.Name, addr-s.Addr)
		}
	}
	return fmt.Sprintf("%#x", addr)
}

// Validate checks structural invariants: direct branch and call targets fall
// on instruction boundaries inside the text segment, the entry point is
// valid, memory-operand scales are legal, and symbols do not collide.
func (p *Program) Validate() error {
	if len(p.Insts) == 0 {
		return fmt.Errorf("prog %s: empty text segment", p.Name)
	}
	if _, ok := p.InstAt(p.Entry); !ok {
		return fmt.Errorf("prog %s: entry point %#x invalid", p.Name, p.Entry)
	}
	for k, in := range p.Insts {
		switch in.Op {
		case isa.JMP, isa.JEQ, isa.JNE, isa.JLT, isa.JLE, isa.JGT, isa.JGE, isa.CALL:
			tgt := uint64(in.Imm)
			if _, ok := p.InstAt(tgt); !ok {
				return fmt.Errorf("prog %s: instruction %d (%v) targets invalid address %#x", p.Name, k, in, tgt)
			}
		}
		if in.HasMemOperand() && in.Mode == isa.ModeBaseIndex {
			switch in.Scale {
			case 1, 2, 4, 8:
			default:
				return fmt.Errorf("prog %s: instruction %d has invalid scale %d", p.Name, k, in.Scale)
			}
		}
	}
	seen := map[string]bool{}
	for _, s := range p.Symbols {
		if seen[s.Name] {
			return fmt.Errorf("prog %s: duplicate symbol %q", p.Name, s.Name)
		}
		seen[s.Name] = true
		if s.Kind == SymFunc {
			if _, ok := p.InstAt(s.Addr); !ok {
				return fmt.Errorf("prog %s: function symbol %q at invalid address %#x", p.Name, s.Name, s.Addr)
			}
		}
	}
	return nil
}

// LoadStoreDensity returns the fraction of text-segment instructions that
// access memory. This is what determines the PEBS event rate of a workload.
func (p *Program) LoadStoreDensity() float64 {
	if len(p.Insts) == 0 {
		return 0
	}
	n := 0
	for _, in := range p.Insts {
		if in.IsMemAccess() {
			n++
		}
	}
	return float64(n) / float64(len(p.Insts))
}
