package prog

import (
	"testing"

	"prorace/internal/isa"
)

// tinyProgram builds a small two-function program by hand:
//
//	main:
//	  0: movi r0, 10
//	  1: cmpi r0, 0
//	  2: jeq  +5 (exit)
//	  3: subi r0, 1
//	  4: jmp  1
//	  5: movi r0, 0
//	  6: syscall exit
//	helper:
//	  7: load r1, 0(pc)
//	  8: ret
func tinyProgram() *Program {
	insts := []isa.Inst{
		{Op: isa.MOVI, Rd: isa.R0, Imm: 10},
		{Op: isa.CMPI, Rd: isa.R0, Imm: 0},
		{Op: isa.JEQ, Imm: int64(isa.IndexToAddr(5))},
		{Op: isa.SUBI, Rd: isa.R0, Imm: 1},
		{Op: isa.JMP, Imm: int64(isa.IndexToAddr(1))},
		{Op: isa.MOVI, Rd: isa.R0, Imm: 0},
		{Op: isa.SYSCALL, Sys: isa.SysExit},
		{Op: isa.LOAD, Rd: isa.R1, Mode: isa.ModePCRel, Disp: 0x100},
		{Op: isa.RET},
	}
	return &Program{
		Name:  "tiny",
		Insts: insts,
		Data:  make([]byte, 64),
		Entry: isa.CodeBase,
		Symbols: []Symbol{
			{Name: "main", Addr: isa.IndexToAddr(0), Size: 7 * isa.InstSize, Kind: SymFunc},
			{Name: "helper", Addr: isa.IndexToAddr(7), Size: 2 * isa.InstSize, Kind: SymFunc},
			{Name: "g", Addr: isa.DataBase, Size: 16, Kind: SymData},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := tinyProgram().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadBranch(t *testing.T) {
	p := tinyProgram()
	p.Insts[2].Imm = int64(isa.CodeBase + 3) // unaligned
	if err := p.Validate(); err == nil {
		t.Error("unaligned branch target must fail validation")
	}
	p = tinyProgram()
	p.Insts[4].Imm = int64(isa.IndexToAddr(100)) // out of range
	if err := p.Validate(); err == nil {
		t.Error("out-of-range branch target must fail validation")
	}
}

func TestValidateCatchesBadEntryAndDuplicates(t *testing.T) {
	p := tinyProgram()
	p.Entry = 0
	if err := p.Validate(); err == nil {
		t.Error("bad entry must fail")
	}
	p = tinyProgram()
	p.Symbols = append(p.Symbols, Symbol{Name: "main", Addr: isa.CodeBase, Kind: SymFunc})
	if err := p.Validate(); err == nil {
		t.Error("duplicate symbol must fail")
	}
	p = &Program{Name: "empty", Entry: isa.CodeBase}
	if err := p.Validate(); err == nil {
		t.Error("empty program must fail")
	}
}

func TestInstAt(t *testing.T) {
	p := tinyProgram()
	in, ok := p.InstAt(isa.IndexToAddr(3))
	if !ok || in.Op != isa.SUBI {
		t.Fatalf("InstAt(3) = %v, %v", in, ok)
	}
	if _, ok := p.InstAt(isa.IndexToAddr(9)); ok {
		t.Error("address past text must fail")
	}
	if _, ok := p.InstAt(isa.CodeBase + 1); ok {
		t.Error("unaligned address must fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustInstAt must panic on bad address")
		}
	}()
	p.MustInstAt(0)
}

func TestLookupAndSymbolize(t *testing.T) {
	p := tinyProgram()
	s, ok := p.Lookup("helper")
	if !ok || s.Addr != isa.IndexToAddr(7) {
		t.Fatalf("Lookup(helper) = %+v, %v", s, ok)
	}
	if _, ok := p.Lookup("nothere"); ok {
		t.Error("Lookup of a missing symbol must fail")
	}
	if got := p.SymbolizeAddr(isa.IndexToAddr(8)); got != "helper+0x20" {
		t.Errorf("SymbolizeAddr = %q", got)
	}
	if got := p.SymbolizeAddr(isa.IndexToAddr(0)); got != "main" {
		t.Errorf("SymbolizeAddr(entry) = %q", got)
	}
	if got := p.SymbolizeData(isa.DataBase + 8); got != "g+8" {
		t.Errorf("SymbolizeData = %q", got)
	}
	if got := p.SymbolizeData(isa.DataBase + 1000); got == "g" {
		t.Errorf("SymbolizeData out of symbol = %q", got)
	}
}

func TestFuncContaining(t *testing.T) {
	p := tinyProgram()
	f, ok := p.FuncContaining(isa.IndexToAddr(4))
	if !ok || f.Name != "main" {
		t.Fatalf("FuncContaining(4) = %+v, %v", f, ok)
	}
	f, ok = p.FuncContaining(isa.IndexToAddr(8))
	if !ok || f.Name != "helper" {
		t.Fatalf("FuncContaining(8) = %+v, %v", f, ok)
	}
	if _, ok := p.FuncContaining(isa.CodeBase - isa.InstSize); ok {
		t.Error("address before any function must fail")
	}
}

func TestBlocks(t *testing.T) {
	p := tinyProgram()
	blocks := p.Blocks()
	// Expected leaders: 0 (entry), 1 (branch target of 4), 3 (after jeq),
	// 5 (target of jeq / after jmp), 7 (after exit + function entry).
	wantStarts := []int{0, 1, 3, 5, 7}
	if len(blocks) != len(wantStarts) {
		t.Fatalf("got %d blocks, want %d: %+v", len(blocks), len(wantStarts), blocks)
	}
	for i, ws := range wantStarts {
		if blocks[i].Start != ws {
			t.Errorf("block %d starts at %d, want %d", i, blocks[i].Start, ws)
		}
	}
	// Conditional block (insts 1-2) has two successors: block at 5 and
	// fall-through block at 3.
	b1 := blocks[1]
	if len(b1.Succs) != 2 {
		t.Fatalf("cond block succs = %v", b1.Succs)
	}
	// Block containing inst 4 (jmp) goes to block starting at 1.
	b2 := blocks[2]
	if len(b2.Succs) != 1 || blocks[b2.Succs[0]].Start != 1 {
		t.Errorf("jmp block succs = %v", b2.Succs)
	}
	// RET block has no static successors.
	last := blocks[len(blocks)-1]
	if len(last.Succs) != 0 {
		t.Errorf("ret block must have no static successors, got %v", last.Succs)
	}
	// BlockContaining agreement.
	blk, ok := p.BlockContaining(isa.IndexToAddr(4))
	if !ok || !blk.Contains(isa.IndexToAddr(4)) || blk.Start != 3 {
		t.Errorf("BlockContaining(4) = %+v, %v", blk, ok)
	}
	if _, ok := p.BlockContaining(0); ok {
		t.Error("BlockContaining outside text must fail")
	}
	if blk.StartAddr() != isa.IndexToAddr(3) || blk.EndAddr() != isa.IndexToAddr(5) || blk.Len() != 2 {
		t.Errorf("block geometry wrong: %+v", blk)
	}
}

func TestTextRegionAndDensity(t *testing.T) {
	p := tinyProgram()
	start, end := p.TextRegion()
	if start != isa.CodeBase || end != isa.CodeBase+9*isa.InstSize {
		t.Errorf("TextRegion = %#x..%#x", start, end)
	}
	got := p.LoadStoreDensity()
	want := 1.0 / 9.0 // one LOAD among nine instructions
	if got < want-1e-9 || got > want+1e-9 {
		t.Errorf("LoadStoreDensity = %v, want %v", got, want)
	}
	if (&Program{}).LoadStoreDensity() != 0 {
		t.Error("empty program density must be 0")
	}
}

func TestImageRoundTrip(t *testing.T) {
	p := tinyProgram()
	img := EncodeImage(p)
	q, err := DecodeImage(img)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != p.Name || q.Entry != p.Entry || len(q.Insts) != len(p.Insts) ||
		len(q.Data) != len(p.Data) || len(q.Symbols) != len(p.Symbols) {
		t.Fatalf("round trip mismatch: %+v", q)
	}
	for i := range p.Insts {
		if q.Insts[i] != p.Insts[i] {
			t.Fatalf("instruction %d mismatch", i)
		}
	}
	for i := range p.Symbols {
		if q.Symbols[i] != p.Symbols[i] {
			t.Fatalf("symbol %d mismatch: %+v vs %+v", i, q.Symbols[i], p.Symbols[i])
		}
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestImageErrors(t *testing.T) {
	p := tinyProgram()
	img := EncodeImage(p)
	if _, err := DecodeImage(img[:10]); err == nil {
		t.Error("truncated image must fail")
	}
	bad := append([]byte(nil), img...)
	bad[0] = 'X'
	if _, err := DecodeImage(bad); err == nil {
		t.Error("bad magic must fail")
	}
	bad = append([]byte(nil), img...)
	bad[4] = 99 // version
	if _, err := DecodeImage(bad); err == nil {
		t.Error("bad version must fail")
	}
}
