// Package racez configures the pipeline as RaceZ (Sheng et al.), the
// PEBS-based race detector ProRace is evaluated against (paper §2, §7):
//
//   - the stock (vanilla) Linux PEBS driver, with its per-sample metadata
//     processing and kernel-to-user copying;
//   - no PT control-flow trace;
//   - reconstruction confined to each sample's static basic block, with
//     only trivial backward propagation;
//   - the same happens-before detection over the resulting trace.
package racez

import (
	"prorace/internal/core"
	"prorace/internal/machine"
	"prorace/internal/pmu/driver"
	"prorace/internal/prog"
	"prorace/internal/replay"
)

// TraceOptions returns the online configuration RaceZ uses.
func TraceOptions(period uint64, seed int64, mcfg machine.Config) core.TraceOptions {
	return core.TraceOptions{
		Kind:     driver.Vanilla,
		Period:   period,
		Seed:     seed,
		EnablePT: false,
		Machine:  mcfg,
	}
}

// AnalysisOptions returns the offline configuration RaceZ uses.
func AnalysisOptions() core.AnalysisOptions {
	return core.AnalysisOptions{Mode: replay.ModeBasicBlock}
}

// Run executes the full RaceZ pipeline on a program.
func Run(p *prog.Program, period uint64, seed int64, mcfg machine.Config) (*core.Result, error) {
	return core.Run(p, TraceOptions(period, seed, mcfg), AnalysisOptions())
}
