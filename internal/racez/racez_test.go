package racez

import (
	"testing"

	"prorace/internal/bugs"
	"prorace/internal/pmu/driver"
	"prorace/internal/replay"
	"prorace/internal/workload"
)

func TestOptionsMatchRaceZDesign(t *testing.T) {
	topts := TraceOptions(1000, 7, workload.Apache(1).Machine)
	if topts.Kind != driver.Vanilla {
		t.Error("RaceZ must use the stock driver")
	}
	if topts.EnablePT {
		t.Error("RaceZ collects no PT trace")
	}
	if topts.Period != 1000 || topts.Seed != 7 {
		t.Error("period/seed not threaded through")
	}
	aopts := AnalysisOptions()
	if aopts.Mode != replay.ModeBasicBlock {
		t.Error("RaceZ reconstruction is basic-block only")
	}
}

func TestRunProducesBasicBlockReconstruction(t *testing.T) {
	w := workload.Apache(1)
	res, err := Run(w.Program, 200, 3, w.Machine)
	if err != nil {
		t.Fatal(err)
	}
	st := res.AnalysisResult.ReplayStats
	if st.Sampled == 0 {
		t.Fatal("no samples")
	}
	if st.Forward != 0 || st.Backward != 0 {
		t.Errorf("RaceZ must not use path-guided replay: %+v", st)
	}
	// RaceZ's recovery is limited to roughly the paper's 1.3x-9.5x band.
	if r := st.RecoveryRatio(); r < 1 || r > 20 {
		t.Errorf("RaceZ recovery ratio = %.1fx, outside the plausible band", r)
	}
	if len(res.TraceResult.Trace.PT) != 0 {
		t.Error("RaceZ trace contains PT streams")
	}
}

func TestRaceZStillDetectsWithLuckySamples(t *testing.T) {
	// At a very small period RaceZ samples densely enough to catch even a
	// PC-relative bug occasionally — it is a weaker detector, not a
	// broken one.
	bug, err := bugs.ByID("pfscan")
	if err != nil {
		t.Fatal(err)
	}
	built := bug.Build(1)
	hits := 0
	for seed := int64(1); seed <= 6; seed++ {
		res, err := Run(built.Workload.Program, 10, seed, built.Workload.Machine)
		if err != nil {
			t.Fatal(err)
		}
		if built.Detected(res.AnalysisResult.Reports) {
			hits++
		}
	}
	t.Logf("RaceZ at period 10: %d/6 detections", hits)
	if hits == 0 {
		t.Log("note: zero detections at period 10 is possible but unusual")
	}
}
