// Package bugs reproduces the 12 real-world data races the paper evaluates
// detection on (Table 2, taken from the bug study of [60]). Each bug is
// planted into the matching application model with the documented
// characteristics:
//
//   - the addressing mode of the racy access — PC-relative (always
//     reconstructible from the path), register-indirect (reconstructible
//     while the register is live around a sample), or memory-indirect
//     (the pointer itself comes from memory: the hardest case);
//   - a realistic rarity: racy code runs on a gated subset of requests,
//     as real races sit on rarely exercised paths;
//   - the manifestation recorded in the paper (double free, corrupted
//     log, crash, ...), kept as metadata.
//
// Every Build records the racy instruction addresses, so the evaluation
// can check ground truth: a run detects the bug iff some reported race's
// two PCs are both racy instructions of this bug.
package bugs

import (
	"fmt"

	"prorace/internal/asm"
	"prorace/internal/isa"
	"prorace/internal/race"
	"prorace/internal/workload"
)

// AccessType is the addressing mode of the racy access (Table 2, column
// "Access Type").
type AccessType int

const (
	// MemIndirect: the racy address comes from a pointer loaded from
	// memory immediately before the access.
	MemIndirect AccessType = iota
	// RegIndirect: the racy address is base-register-relative, the base
	// living in a register with a bounded live range.
	RegIndirect
	// PCRel: the racy variable is addressed PC-relatively.
	PCRel
)

// String names the access type as the paper's table does.
func (t AccessType) String() string {
	switch t {
	case MemIndirect:
		return "memory indirect"
	case RegIndirect:
		return "register indirect"
	case PCRel:
		return "pc relative"
	}
	return "?"
}

// Bug describes one Table 2 entry.
type Bug struct {
	// ID is the paper's identifier, e.g. "apache-25520".
	ID string
	// App names the host application model.
	App string
	// Manifestation is how the bug shows up in production (Table 2).
	Manifestation string
	// Type is the racy access's addressing mode.
	Type AccessType

	spec workload.ServerSpec
	gate int64 // racy code runs when requests-remaining % gate == 0
	pad  int64 // live-range padding (memory events) after the racy store
}

// Built is a constructed bug workload with its ground truth.
type Built struct {
	Bug      Bug
	Workload workload.Workload
	// RacyPCs are the planted racy instruction addresses.
	RacyPCs map[uint64]bool
}

// Detected reports whether any race report matches the planted bug: both
// endpoints must be racy instructions of this bug.
func (bb *Built) Detected(reports []race.Report) bool {
	for _, r := range reports {
		if bb.RacyPCs[r.First.PC] && bb.RacyPCs[r.Second.PC] {
			return true
		}
	}
	return false
}

// All returns the 12 bugs of Table 2, in the paper's order.
func All() []Bug {
	return []Bug{
		{ID: "apache-25520", App: "apache", Manifestation: "double free", Type: MemIndirect,
			spec: workload.ApacheSpec(), gate: 8, pad: 160},
		{ID: "apache-21287", App: "apache", Manifestation: "corrupted log", Type: RegIndirect,
			spec: workload.ApacheSpec(), gate: 8, pad: 500},
		{ID: "apache-45605", App: "apache", Manifestation: "assertion", Type: RegIndirect,
			spec: workload.ApacheSpec(), gate: 8, pad: 500},
		{ID: "mysql-3596", App: "mysql", Manifestation: "crash", Type: MemIndirect,
			spec: workload.MySQLSpec(), gate: 4, pad: 160},
		{ID: "mysql-644", App: "mysql", Manifestation: "crash", Type: MemIndirect,
			spec: workload.MySQLSpec(), gate: 4, pad: 160},
		{ID: "mysql-791", App: "mysql", Manifestation: "missing output", Type: MemIndirect,
			spec: workload.MySQLSpec(), gate: 4, pad: 160},
		{ID: "cherokee-0.9.2", App: "cherokee", Manifestation: "corrupted log", Type: RegIndirect,
			spec: workload.CherokeeSpec(), gate: 2, pad: 500},
		{ID: "cherokee-bug326", App: "cherokee", Manifestation: "corrupted log", Type: RegIndirect,
			spec: workload.CherokeeSpec(), gate: 2, pad: 500},
		{ID: "pbzip2-0.9.4", App: "pbzip2", Manifestation: "crash", Type: MemIndirect,
			spec: workload.Pbzip2Spec(), gate: 4, pad: 160},
		{ID: "pbzip2-0.9.1", App: "pbzip2", Manifestation: "benign", Type: PCRel,
			spec: workload.Pbzip2Spec(), gate: 4},
		{ID: "pfscan", App: "pfscan", Manifestation: "infinite loop", Type: PCRel,
			spec: workload.PfscanSpec(), gate: 4},
		{ID: "aget-bug2", App: "aget", Manifestation: "wrong record in log", Type: PCRel,
			spec: workload.AgetSpec(), gate: 4},
	}
}

// ByID finds a bug.
func ByID(id string) (Bug, error) {
	for _, b := range All() {
		if b.ID == id {
			return b, nil
		}
	}
	return Bug{}, fmt.Errorf("bugs: unknown bug %q", id)
}

// Build constructs the bug's workload with the race planted.
func (b Bug) Build(scale workload.Scale) *Built {
	built := &Built{Bug: b, RacyPCs: map[uint64]bool{}}
	var racyIdx []int
	hooks := &workload.InjectHooks{}

	switch b.Type {
	case PCRel:
		// The racy variable is a global addressed PC-relatively; no
		// register state is needed to reconstruct the access, so the PT
		// path alone recovers it (the 100% rows of Table 2).
		hooks.Setup = func(bb *asm.Builder) {
			bb.Global("racyvar", 8)
		}
		hooks.PerRequest = func(w *asm.FuncBuilder) {
			w.Mov(isa.R5, isa.R11)
			w.AndI(isa.R5, b.gate-1)
			w.CmpI(isa.R5, 0)
			w.Jne("bug_skip")
			racyIdx = append(racyIdx, w.Load(isa.R1, asm.Global("racyvar", 0)))
			w.AddI(isa.R1, 1)
			racyIdx = append(racyIdx, w.Store(asm.Global("racyvar", 0), isa.R1))
			w.Label("bug_skip")
		}

	case RegIndirect:
		// The racy slot's base register is data-dependent (derived from
		// SysRand, which the offline replay cannot know) and stays live
		// through a padding window after the access: a PEBS sample inside
		// the window lets backward propagation restore it (§5.2.1).
		hooks.Setup = func(bb *asm.Builder) {
			bb.Global("racyslots", 64)
			bb.Global("padro", 8)
			f := bb.Func("bugfn")
			f.Syscall(isa.SysRand)
			f.AndI(isa.R0, 7)
			f.ShlI(isa.R0, 3)
			f.Lea(isa.R6, asm.Global("racyslots", 0))
			f.Add(isa.R6, isa.R0) // base register for the racy slot
			racyIdx = append(racyIdx, f.Load(isa.R1, asm.Base(isa.R6, 0)))
			f.AddI(isa.R1, 1)
			racyIdx = append(racyIdx, f.Store(asm.Base(isa.R6, 0), isa.R1))
			// Live-range padding: r6 is not redefined here.
			f.MovI(isa.R2, b.pad)
			f.Label("pad")
			f.Load(isa.R3, asm.Global("padro", 0))
			f.SubI(isa.R2, 1)
			f.CmpI(isa.R2, 0)
			f.Jgt("pad")
			f.Ret()
		}
		hooks.PerRequest = perRequestCall(b.gate)

	case MemIndirect:
		// The racy object's pointer is loaded from memory right before
		// the access — unavailable to forward replay (memory emulation is
		// invalidated by the workload's syscalls), and with a short live
		// range after the access: the paper's hardest case.
		hooks.Setup = func(bb *asm.Builder) {
			bb.Global("objptr", 8)
			bb.Global("padro", 8)
			f := bb.Func("bugfn")
			f.Load(isa.R6, asm.Global("objptr", 0)) // pointer from memory
			racyIdx = append(racyIdx, f.Load(isa.R1, asm.Base(isa.R6, 16)))
			f.AddI(isa.R1, 1)
			racyIdx = append(racyIdx, f.Store(asm.Base(isa.R6, 16), isa.R1))
			f.MovI(isa.R2, b.pad)
			f.Label("pad")
			f.Load(isa.R3, asm.Global("padro", 0))
			f.SubI(isa.R2, 1)
			f.CmpI(isa.R2, 0)
			f.Jgt("pad")
			f.Ret()
		}
		hooks.MainPrologue = func(m *asm.FuncBuilder) {
			m.MovI(isa.R0, 64)
			m.Syscall(isa.SysMalloc)
			m.Store(asm.Global("objptr", 0), isa.R0)
		}
		hooks.PerRequest = perRequestCall(b.gate)
	}

	spec := b.spec
	spec.Name = b.ID
	built.Workload = workload.BuildServer(spec, scale, hooks)
	for _, idx := range racyIdx {
		built.RacyPCs[isa.IndexToAddr(idx)] = true
	}
	return built
}

// perRequestCall gates a call to bugfn on the request counter in R11.
func perRequestCall(gate int64) func(w *asm.FuncBuilder) {
	return func(w *asm.FuncBuilder) {
		w.Mov(isa.R5, isa.R11)
		w.AndI(isa.R5, gate-1)
		w.CmpI(isa.R5, 0)
		w.Jne("bug_skip")
		w.Call("bugfn")
		w.Label("bug_skip")
	}
}
