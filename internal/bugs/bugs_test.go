// External test package: these tests drive the full pipeline through
// internal/core, which (via the witness layer) imports this package —
// an in-package test file would form an import cycle.
package bugs_test

import (
	"testing"

	"prorace/internal/bugs"
	"prorace/internal/core"
	"prorace/internal/pmu/driver"
	"prorace/internal/replay"
)

func TestAllBugsBuildAndValidate(t *testing.T) {
	bs := bugs.All()
	if len(bs) != 12 {
		t.Fatalf("bugs = %d, want 12 (Table 2)", len(bs))
	}
	types := map[bugs.AccessType]int{}
	for _, b := range bs {
		types[b.Type]++
		built := b.Build(1)
		if err := built.Workload.Program.Validate(); err != nil {
			t.Errorf("%s: %v", b.ID, err)
		}
		if len(built.RacyPCs) != 2 {
			t.Errorf("%s: %d racy PCs, want 2", b.ID, len(built.RacyPCs))
		}
	}
	// Table 2's composition: 6 memory-indirect, 3 register-indirect... the
	// paper has 5 mem, 4 reg, 3 pcrel.
	if types[bugs.PCRel] != 3 {
		t.Errorf("pcrel bugs = %d, want 3", types[bugs.PCRel])
	}
	if types[bugs.MemIndirect]+types[bugs.RegIndirect] != 9 {
		t.Errorf("indirect bugs = %d, want 9", types[bugs.MemIndirect]+types[bugs.RegIndirect])
	}
}

func TestByID(t *testing.T) {
	if _, err := bugs.ByID("pfscan"); err != nil {
		t.Error(err)
	}
	if _, err := bugs.ByID("nosuch"); err == nil {
		t.Error("unknown id must fail")
	}
	for _, ty := range []bugs.AccessType{bugs.MemIndirect, bugs.RegIndirect, bugs.PCRel} {
		if ty.String() == "?" {
			t.Error("access type unnamed")
		}
	}
	if bugs.AccessType(9).String() != "?" {
		t.Error("unknown access type must render ?")
	}
}

// runOnce traces and analyzes one bug run, returning whether the planted
// race was detected.
func runOnce(t *testing.T, built *bugs.Built, period uint64, seed int64, prorace bool) bool {
	t.Helper()
	var topts core.TraceOptions
	var aopts core.AnalysisOptions
	if prorace {
		topts = core.TraceOptions{Kind: driver.ProRace, Period: period, Seed: seed,
			EnablePT: true, Machine: built.Workload.Machine}
		aopts = core.AnalysisOptions{Mode: replay.ModeForwardBackward}
	} else {
		topts = core.TraceOptions{Kind: driver.Vanilla, Period: period, Seed: seed,
			Machine: built.Workload.Machine}
		aopts = core.AnalysisOptions{Mode: replay.ModeBasicBlock}
	}
	res, err := core.Run(built.Workload.Program, topts, aopts)
	if err != nil {
		t.Fatalf("%s: %v", built.Bug.ID, err)
	}
	return built.Detected(res.AnalysisResult.Reports)
}

func TestPCRelBugsAlwaysDetected(t *testing.T) {
	// The paper's Table 2: PC-relative bugs are detected in every trace at
	// every period — the path alone reconstructs the racy accesses.
	for _, id := range []string{"pfscan", "aget-bug2", "pbzip2-0.9.1"} {
		b, err := bugs.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		built := b.Build(1)
		hits := 0
		const trials = 6
		for seed := int64(1); seed <= trials; seed++ {
			if runOnce(t, built, 10000, seed, true) {
				hits++
			}
		}
		if hits < trials-1 {
			t.Errorf("%s: detected %d/%d at period 10K, want ~all", id, hits, trials)
		}
	}
}

func TestIndirectBugsDetectableAtSmallPeriod(t *testing.T) {
	// At period 100 the paper detects 11/12 bugs in nearly every trace.
	for _, id := range []string{"apache-21287", "mysql-3596"} {
		b, err := bugs.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		built := b.Build(1)
		hits := 0
		const trials = 6
		for seed := int64(1); seed <= trials; seed++ {
			if runOnce(t, built, 100, seed, true) {
				hits++
			}
		}
		if hits == 0 {
			t.Errorf("%s: never detected at period 100 over %d seeds", id, trials)
		}
		t.Logf("%s @100: %d/%d", id, hits, trials)
	}
}

func TestProRaceBeatsRaceZ(t *testing.T) {
	// Aggregate detection over a few bugs and seeds: ProRace must strictly
	// dominate the RaceZ baseline (Table 2's headline).
	ids := []string{"pfscan", "apache-21287", "mysql-3596", "cherokee-0.9.2"}
	proHits, rzHits := 0, 0
	const trials = 5
	for _, id := range ids {
		b, err := bugs.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		built := b.Build(1)
		for seed := int64(1); seed <= trials; seed++ {
			if runOnce(t, built, 1000, seed, true) {
				proHits++
			}
			if runOnce(t, built, 1000, seed, false) {
				rzHits++
			}
		}
	}
	if proHits <= rzHits {
		t.Errorf("ProRace %d/%d vs RaceZ %d/%d: no advantage", proHits, len(ids)*trials, rzHits, len(ids)*trials)
	}
	t.Logf("ProRace %d/%d, RaceZ %d/%d at period 1K", proHits, len(ids)*trials, rzHits, len(ids)*trials)
}

func TestDetectionImprovesWithSmallerPeriod(t *testing.T) {
	b, err := bugs.ByID("apache-21287")
	if err != nil {
		t.Fatal(err)
	}
	built := b.Build(1)
	count := func(period uint64) int {
		hits := 0
		for seed := int64(1); seed <= 8; seed++ {
			if runOnce(t, built, period, seed, true) {
				hits++
			}
		}
		return hits
	}
	h100, h10000 := count(100), count(10000)
	if h100 < h10000 {
		t.Errorf("detection at period 100 (%d/8) below period 10K (%d/8)", h100, h10000)
	}
	t.Logf("apache-21287: @100 %d/8, @10K %d/8", h100, h10000)
}
