package witness

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"prorace/internal/machine"
)

// sampleWitness exercises every field the format carries: comment,
// fractional float costs, an optional tracer line, and forced picks.
func sampleWitness() *Witness {
	return &Witness{
		Comment: "apache-25520: double free\nsecond comment line",
		Prog:    ProgSpec{Kind: "bug", Name: "apache-25520", Scale: 2, FP: 0x1b2c3d4e5f607182},
		Machine: machine.Config{
			Cores: 4, Seed: 7, Quantum: 61,
			NetLatencyCycles: 60000, NetCyclesPerByte: 0.35,
			FileLatencyCycles: 8000, FileCyclesPerByte: 0.0125,
			MaxCycles: 2000000000,
		},
		Tracer: &TracerSpec{Kind: "prorace", Period: 100, Seed: 7, EnablePT: true},
		Expect: Expectation{
			Addr:   0x10008,
			First:  Endpoint{TID: 2, PC: 0x100a8, Write: true, TSC: 12345},
			Second: Endpoint{TID: 3, PC: 0x100c0, Write: false, TSC: 12399},
		},
		Check:  Check{Events: 0x9a3fd0e1c2b3a495, Insts: 812345, Accesses: 400123, Decisions: 57, Misses: 1},
		Forced: []Pick{{Pos: 17, TID: 2}, {Pos: 45, TID: 0}},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for name, w := range map[string]*Witness{
		"full": sampleWitness(),
		"bare": {
			Prog:    ProgSpec{Kind: "oracle", Seed: -42, Scale: 1, FP: 1},
			Machine: machine.Config{Cores: 1, Seed: 9},
			Expect:  Expectation{Addr: 8, First: Endpoint{TID: 0, PC: 4, Write: true}, Second: Endpoint{TID: 1, PC: 4}},
		},
	} {
		data := w.Encode()
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("%s: Decode: %v\n%s", name, err, data)
		}
		if !reflect.DeepEqual(got, w) {
			t.Errorf("%s: round trip mismatch:\n got %+v\nwant %+v", name, got, w)
		}
		if again := got.Encode(); !bytes.Equal(again, data) {
			t.Errorf("%s: re-encode is not byte-identical:\n got %q\nwant %q", name, again, data)
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	valid := string(sampleWitness().Encode())
	cases := map[string]string{
		"empty":              "",
		"no trailing nl":     strings.TrimSuffix(valid, "\n"),
		"bad header":         strings.Replace(valid, "v1", "v9", 1),
		"flipped byte":       strings.Replace(valid, "insts=812345", "insts=812346", 1),
		"truncated":          valid[:len(valid)/2] + "\n",
		"no end line":        strings.Replace(valid, "end fnv", "fin fnv", 1),
		"late comment":       strings.Replace(valid, "expect ", "# sneaky\nexpect ", 1),
		"unknown prog kind":  strings.Replace(valid, "kind=bug", "kind=exe", 1),
		"unknown tracer":     strings.Replace(valid, "tracer kind=prorace", "tracer kind=perf", 1),
		"extra key":          strings.Replace(valid, "misses=1", "misses=1 bonus=2", 1),
		"missing key":        strings.Replace(valid, " misses=1", "", 1),
		"duplicate key":      strings.Replace(valid, "misses=1", "misses=1 misses=1", 1),
		"bad endpoint":       strings.Replace(valid, ":w:12345", ":x:12345", 1),
		"unsorted picks":     strings.Replace(valid, "pick 45=0", "pick 17=0", 1),
		"pick count short":   strings.Replace(valid, "forced 2", "forced 3", 1),
		"pick count long":    strings.Replace(valid, "forced 2", "forced 1", 1),
		"hostile count":      strings.Replace(valid, "forced 2", "forced 99999999", 1),
		"negative tid":       strings.Replace(valid, "pick 17=2", "pick 17=-2", 1),
		"float overflow":     strings.Replace(valid, "netpb=0.35", "netpb=0.3e999", 1),
		"trailing data":      valid + "extra\n",
		"garbage pick":       strings.Replace(valid, "pick 17=2", "pick banana", 1),
		"tracer pt not bool": strings.Replace(valid, "pt=1", "pt=5", 1),
	}
	for name, text := range cases {
		// All but the structural-prefix cases need a valid checksum so the
		// decoder reaches the field being tested; re-stamp it.
		data := []byte(text)
		if name != "empty" && name != "no trailing nl" && name != "flipped byte" &&
			name != "truncated" && name != "no end line" && name != "trailing data" {
			data = restamp(text)
		}
		if w, err := Decode(data); err == nil {
			t.Errorf("%s: Decode accepted corrupt input (got %+v)", name, w)
		}
	}
}

// restamp recomputes the end-line checksum so corruption tests exercise the
// validation behind it rather than the checksum itself.
func restamp(text string) []byte {
	i := strings.LastIndex(text, "end fnv=")
	if i < 0 {
		return []byte(text)
	}
	body := text[:i]
	return []byte(body + "end fnv=" + hex0x(fnvSum([]byte(body))) + "\n")
}

func hex0x(v uint64) string {
	const digits = "0123456789abcdef"
	if v == 0 {
		return "0x0"
	}
	var buf [16]byte
	n := 0
	for ; v > 0; v >>= 4 {
		buf[15-n] = digits[v&0xf]
		n++
	}
	return "0x" + string(buf[16-n:])
}

// FuzzWitnessDecode asserts the decoder's contract on hostile input: it
// may reject, but it must never panic, and anything it accepts must
// re-encode/re-decode to the same witness — so a corrupt file can never
// silently replay a different schedule than it claims.
func FuzzWitnessDecode(f *testing.F) {
	valid := sampleWitness().Encode()
	f.Add(valid)
	f.Add([]byte(""))
	f.Add([]byte("prorace-witness v1\n"))
	f.Add(restamp(strings.Replace(string(valid), "forced 2", "forced 0", 1)))
	f.Add(bytes.Replace(valid, []byte("insts"), []byte("XXXXX"), 1))
	f.Add(valid[:len(valid)-2])
	f.Fuzz(func(t *testing.T, data []byte) {
		w, err := Decode(data)
		if err != nil {
			return
		}
		if len(w.Forced) > maxForced {
			t.Fatalf("accepted %d forced picks (limit %d)", len(w.Forced), maxForced)
		}
		re := w.Encode()
		w2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encode of accepted input does not decode: %v\n%s", err, re)
		}
		if !reflect.DeepEqual(w, w2) {
			t.Fatalf("accepted input is not canonical:\nfirst  %+v\nsecond %+v", w, w2)
		}
	})
}
