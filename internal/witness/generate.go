package witness

import (
	"fmt"

	"prorace/internal/machine"
	"prorace/internal/prog"
	"prorace/internal/race"
)

// GenConfig bounds witness generation.
type GenConfig struct {
	// Budget caps the number of replays (machine runs) generation may
	// spend, minimization included. 0 means DefaultBudget.
	Budget int
	// SeedSearch is how many nearby scheduler seeds the bare-replay rung
	// probes when the recorded seed alone does not manifest the race.
	// 0 means DefaultSeedSearch.
	SeedSearch int
}

// DefaultBudget is the default replay budget per report.
const DefaultBudget = 48

// DefaultSeedSearch is the default nearby-seed probe count.
const DefaultSeedSearch = 6

// Outcome is the result of one witness generation attempt.
type Outcome struct {
	// Witness is the verified reproduction, nil if none was found within
	// budget (Err then says why).
	Witness *Witness
	// Rung names the generation strategy that succeeded: "seed" (bare
	// replay of a scheduler seed), "schedule" (bare replay plus a forced
	// decision prefix), or "traced" (replay with the PMU driver attached).
	Rung string
	// Replays is the number of machine runs spent.
	Replays int
	// Err describes the failure when Witness is nil.
	Err string
}

// Generate builds and verifies a witness for rep: a reproduction recipe
// that deterministically re-executes p to rep's racing PC pair.
//
// mcfg is the machine configuration of the run that produced the report
// (its Seed is the report's scheduler seed); tspec, when non-nil,
// describes the PMU driver attached during that run.
//
// Generation climbs a ladder of strategies, preferring small, driver-free
// witnesses, and verifies every candidate by actually replaying it:
//
//  1. "seed": replay bare (no driver) with the recorded seed. Driver
//     stalls perturb timing, but many races manifest regardless.
//  2. "schedule": record the decision log of the traced run, transplant
//     it into a bare replay as a forced prefix (tolerant of misses),
//     then minimize: trim every decision after the racing pair, then
//     greedy delta-debug the rest, re-verifying each step.
//  3. "seed" again, over a few nearby seeds.
//  4. "traced": fall back to replaying with the driver attached — the
//     recorded execution itself, guaranteed for any true report.
//
// The returned witness has been replay-verified end to end; its Check
// digests are those of its own verification replay.
func Generate(p *prog.Program, spec ProgSpec, mcfg machine.Config, tspec *TracerSpec, rep race.Report, gc GenConfig) *Outcome {
	if gc.Budget <= 0 {
		gc.Budget = DefaultBudget
	}
	if gc.SeedSearch <= 0 {
		gc.SeedSearch = DefaultSeedSearch
	}
	out := &Outcome{}
	pc1, pc2 := rep.First.PC, rep.Second.PC

	// Normalise the machine spec: no hooks/tracer travel in a witness.
	mcfg.Tracer = nil
	mcfg.SchedObserver = nil
	mcfg.SchedDirector = nil

	try := func(cfg machine.Config, forced []Pick, ts *TracerSpec) (*ExecResult, race.Report, bool) {
		if out.Replays >= gc.Budget {
			return nil, race.Report{}, false
		}
		out.Replays++
		res, err := Execute(p, ExecSpec{Machine: cfg, Tracer: ts, Forced: forced, KeepPCs: [2]uint64{pc1, pc2}})
		if err != nil {
			return nil, race.Report{}, false
		}
		if matched, ok := FindPairRace(res, pc1, pc2); ok {
			return res, matched, true
		}
		return nil, race.Report{}, false
	}

	finalize := func(rung string, cfg machine.Config, forced []Pick, ts *TracerSpec, res *ExecResult, matched race.Report) *Outcome {
		w := &Witness{
			Comment: fmt.Sprintf("%s: race on %#x between pc %#x and pc %#x (rung %s)",
				spec, matched.Addr, pc1, pc2, rung),
			Prog:    spec.WithFP(p),
			Machine: cfg,
			Tracer:  ts,
			Expect: Expectation{
				Addr:   matched.Addr,
				First:  Endpoint(matched.First),
				Second: Endpoint(matched.Second),
			},
			Check:  res.Check,
			Forced: forced,
		}
		out.Witness = w
		out.Rung = rung
		return out
	}

	// Rung 1: bare replay with the recorded seed.
	if res, matched, ok := try(mcfg, nil, nil); ok {
		return finalize("seed", mcfg, nil, nil, res, matched)
	}

	// Rung 2: transplant the traced run's decision log into a bare replay.
	var tracedRes *ExecResult
	var tracedMatch race.Report
	tracedOK := false
	if tspec != nil {
		tracedRes, tracedMatch, tracedOK = try(mcfg, nil, tspec)
		if tracedOK {
			forced := trimAfter(tracedRes.Decisions, tracedMatch.Second.TSC)
			if res, matched, ok := try(mcfg, forced, nil); ok {
				// bestRes always corresponds to the current picks: minimize
				// only keeps a candidate whose verification replay succeeded,
				// and that replay's result is captured here.
				bestRes, bestMatch := res, matched
				forced = minimize(forced, func(cand []Pick) bool {
					r, m, ok := try(mcfg, cand, nil)
					if ok {
						bestRes, bestMatch = r, m
					}
					return ok
				})
				return finalize("schedule", mcfg, forced, nil, bestRes, bestMatch)
			}
		}
	}

	// Rung 3: nearby scheduler seeds, bare.
	for k := 1; k <= gc.SeedSearch; k++ {
		cfg := mcfg
		cfg.Seed = mcfg.Seed + int64(k)*1000003
		if res, matched, ok := try(cfg, nil, nil); ok {
			return finalize("seed", cfg, nil, nil, res, matched)
		}
	}

	// Rung 4: traced replay — the recorded execution itself.
	if tracedOK {
		return finalize("traced", mcfg, nil, tspec, tracedRes, tracedMatch)
	}

	if out.Replays >= gc.Budget {
		out.Err = fmt.Sprintf("replay budget (%d) exhausted without a verified reproduction", gc.Budget)
	} else {
		out.Err = fmt.Sprintf("race on pair %#x/%#x did not manifest under any strategy (%d replays)", pc1, pc2, out.Replays)
	}
	return out
}

// trimAfter converts a decision log into forced picks, dropping every
// decision made after the second racing access: later decisions cannot
// affect the happens-before relation of accesses already executed.
func trimAfter(log []machine.SchedDecision, secondTSC uint64) []Pick {
	var out []Pick
	for _, d := range log {
		if secondTSC != 0 && d.TSC > secondTSC {
			break
		}
		out = append(out, Pick{Pos: d.Pos, TID: int32(d.TID)})
	}
	return out
}

// minimize greedily shrinks a forced prefix with chunked delta-debugging:
// repeatedly try dropping halving-sized chunks, keeping any drop after
// which ok (a verification replay) still reproduces the race. ok's own
// replay budget bounds the work; when the budget runs out ok returns
// false and minimization stops shrinking, which is safe — just larger.
func minimize(picks []Pick, ok func([]Pick) bool) []Pick {
	for chunk := len(picks) / 2; chunk >= 1; chunk /= 2 {
		for i := 0; i+chunk <= len(picks); {
			cand := make([]Pick, 0, len(picks)-chunk)
			cand = append(cand, picks[:i]...)
			cand = append(cand, picks[i+chunk:]...)
			if ok(cand) {
				picks = cand
			} else {
				i += chunk
			}
		}
	}
	return picks
}
