package witness

// The witness file format, tracefmt-style: versioned, line-oriented text
// with a trailing whole-file checksum, safe to check into testdata and to
// diff by eye.
//
//	prorace-witness v1
//	# apache-25520: double free (Table 2)
//	prog kind=bug name=apache-25520 scale=1 seed=0 fp=0x1b2c3d4e5f607182
//	machine cores=4 seed=7 quantum=61 netlat=60000 netpb=0.35 filelat=8000 filepb=0.01 maxcycles=2000000000
//	tracer kind=prorace period=100 seed=7 pt=1
//	expect addr=0x10008 first=2:0x100a8:w:12345 second=3:0x100c0:r:12399
//	check events=0x9a3fd0e1c2b3a495 insts=812345 accesses=400123 decisions=57 misses=0
//	forced 2
//	pick 17=2
//	pick 45=0
//	end fnv=0x7c1d2e3f40516273
//
// Lines appear in exactly this order; the tracer line is optional (absent
// for bare replays), # comment lines may only follow the header. The end
// line's fnv is the FNV-1a 64 digest of every byte before the end line
// itself. Decode is strict: unknown keys, out-of-order lines, count
// mismatches, unsorted picks and checksum failures are all errors, so a
// corrupt witness can never silently replay the wrong schedule.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"prorace/internal/machine"
)

const formatHeader = "prorace-witness v1"

// maxForced bounds the forced-decision list a decoder will accept,
// protecting against hostile counts; real minimized witnesses are tiny.
const maxForced = 1 << 20

// Encode serializes the witness into its canonical text form.
func (w *Witness) Encode() []byte {
	var b strings.Builder
	b.WriteString(formatHeader)
	b.WriteByte('\n')
	for _, line := range strings.Split(w.Comment, "\n") {
		if line != "" {
			fmt.Fprintf(&b, "# %s\n", line)
		}
	}
	fmt.Fprintf(&b, "prog kind=%s name=%s scale=%d seed=%d fp=%#x\n",
		w.Prog.Kind, w.Prog.Name, w.Prog.scale(), w.Prog.Seed, w.Prog.FP)
	m := w.Machine
	fmt.Fprintf(&b, "machine cores=%d seed=%d quantum=%d netlat=%d netpb=%s filelat=%d filepb=%s maxcycles=%d\n",
		m.Cores, m.Seed, m.Quantum, m.NetLatencyCycles, ftoa(m.NetCyclesPerByte),
		m.FileLatencyCycles, ftoa(m.FileCyclesPerByte), m.MaxCycles)
	if t := w.Tracer; t != nil {
		fmt.Fprintf(&b, "tracer kind=%s period=%d seed=%d pt=%d\n",
			t.Kind, t.Period, t.Seed, btoi(t.EnablePT))
	}
	fmt.Fprintf(&b, "expect addr=%#x first=%s second=%s\n",
		w.Expect.Addr, encodeEndpoint(w.Expect.First), encodeEndpoint(w.Expect.Second))
	fmt.Fprintf(&b, "check events=%#x insts=%d accesses=%d decisions=%d misses=%d\n",
		w.Check.Events, w.Check.Insts, w.Check.Accesses, w.Check.Decisions, w.Check.Misses)
	fmt.Fprintf(&b, "forced %d\n", len(w.Forced))
	for _, f := range w.Forced {
		fmt.Fprintf(&b, "pick %d=%d\n", f.Pos, f.TID)
	}
	sum := fnvSum([]byte(b.String()))
	fmt.Fprintf(&b, "end fnv=%#x\n", sum)
	return []byte(b.String())
}

func encodeEndpoint(e Endpoint) string {
	return fmt.Sprintf("%d:%#x:%s:%d", e.TID, e.PC, rw(e.Write), e.TSC)
}

func rw(w bool) string {
	if w {
		return "w"
	}
	return "r"
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

func ftoa(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

func fnvSum(b []byte) uint64 {
	h := uint64(fnvOffset)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

// Decode parses and validates a witness file. Every structural defect —
// bad header, bad checksum, truncation, unknown or missing keys, malformed
// numbers, count mismatches, unsorted or duplicate picks — is an error;
// Decode never panics on hostile input (FuzzWitnessDecode enforces this).
func Decode(data []byte) (*Witness, error) {
	text := string(data)
	lines := strings.Split(text, "\n")
	// Canonical files end with a trailing newline: last split element empty.
	if len(lines) < 2 {
		return nil, fmt.Errorf("witness: truncated file")
	}
	if lines[len(lines)-1] != "" {
		return nil, fmt.Errorf("witness: missing trailing newline")
	}
	lines = lines[:len(lines)-1]
	if lines[0] != formatHeader {
		return nil, fmt.Errorf("witness: bad header %q (want %q)", clip(lines[0]), formatHeader)
	}
	endLine := lines[len(lines)-1]
	if !strings.HasPrefix(endLine, "end ") {
		return nil, fmt.Errorf("witness: missing end line")
	}
	endKV, err := parseKV(strings.TrimPrefix(endLine, "end "), "fnv")
	if err != nil {
		return nil, fmt.Errorf("witness: end line: %w", err)
	}
	wantSum, err := parseU64(endKV["fnv"])
	if err != nil {
		return nil, fmt.Errorf("witness: end fnv: %w", err)
	}
	// The checksum covers every byte before the end line.
	body := text[:strings.LastIndex(text, endLine)]
	if got := fnvSum([]byte(body)); got != wantSum {
		return nil, fmt.Errorf("witness: checksum mismatch: file says %#x, content hashes to %#x", wantSum, got)
	}

	w := &Witness{}
	i := 1
	var comments []string
	for i < len(lines)-1 && strings.HasPrefix(lines[i], "#") {
		comments = append(comments, strings.TrimSpace(strings.TrimPrefix(lines[i], "#")))
		i++
	}
	w.Comment = strings.Join(comments, "\n")

	next := func(word string) (string, error) {
		if i >= len(lines)-1 {
			return "", fmt.Errorf("witness: truncated before %q line", word)
		}
		line := lines[i]
		i++
		if !strings.HasPrefix(line, word+" ") {
			return "", fmt.Errorf("witness: expected %q line, got %q", word, clip(line))
		}
		return strings.TrimPrefix(line, word+" "), nil
	}

	// prog
	rest, err := next("prog")
	if err != nil {
		return nil, err
	}
	kv, err := parseKV(rest, "kind", "name", "scale", "seed", "fp")
	if err != nil {
		return nil, fmt.Errorf("witness: prog line: %w", err)
	}
	w.Prog.Kind = kv["kind"]
	w.Prog.Name = kv["name"]
	if w.Prog.Scale, err = parseInt(kv["scale"]); err != nil {
		return nil, fmt.Errorf("witness: prog scale: %w", err)
	}
	if w.Prog.Seed, err = parseI64(kv["seed"]); err != nil {
		return nil, fmt.Errorf("witness: prog seed: %w", err)
	}
	if w.Prog.FP, err = parseU64(kv["fp"]); err != nil {
		return nil, fmt.Errorf("witness: prog fp: %w", err)
	}
	switch w.Prog.Kind {
	case "bug", "workload", "oracle":
	default:
		return nil, fmt.Errorf("witness: unknown program kind %q", w.Prog.Kind)
	}

	// machine
	if rest, err = next("machine"); err != nil {
		return nil, err
	}
	if kv, err = parseKV(rest, "cores", "seed", "quantum", "netlat", "netpb", "filelat", "filepb", "maxcycles"); err != nil {
		return nil, fmt.Errorf("witness: machine line: %w", err)
	}
	var m machine.Config
	if m.Cores, err = parseInt(kv["cores"]); err != nil {
		return nil, fmt.Errorf("witness: machine cores: %w", err)
	}
	if m.Seed, err = parseI64(kv["seed"]); err != nil {
		return nil, fmt.Errorf("witness: machine seed: %w", err)
	}
	if m.Quantum, err = parseInt(kv["quantum"]); err != nil {
		return nil, fmt.Errorf("witness: machine quantum: %w", err)
	}
	if m.NetLatencyCycles, err = parseU64(kv["netlat"]); err != nil {
		return nil, fmt.Errorf("witness: machine netlat: %w", err)
	}
	if m.NetCyclesPerByte, err = parseF64(kv["netpb"]); err != nil {
		return nil, fmt.Errorf("witness: machine netpb: %w", err)
	}
	if m.FileLatencyCycles, err = parseU64(kv["filelat"]); err != nil {
		return nil, fmt.Errorf("witness: machine filelat: %w", err)
	}
	if m.FileCyclesPerByte, err = parseF64(kv["filepb"]); err != nil {
		return nil, fmt.Errorf("witness: machine filepb: %w", err)
	}
	if m.MaxCycles, err = parseU64(kv["maxcycles"]); err != nil {
		return nil, fmt.Errorf("witness: machine maxcycles: %w", err)
	}
	w.Machine = m

	// tracer (optional)
	if i < len(lines)-1 && strings.HasPrefix(lines[i], "tracer ") {
		rest = strings.TrimPrefix(lines[i], "tracer ")
		i++
		if kv, err = parseKV(rest, "kind", "period", "seed", "pt"); err != nil {
			return nil, fmt.Errorf("witness: tracer line: %w", err)
		}
		t := &TracerSpec{Kind: kv["kind"]}
		if _, err := driverKind(t.Kind); err != nil {
			return nil, err
		}
		if t.Period, err = parseU64(kv["period"]); err != nil {
			return nil, fmt.Errorf("witness: tracer period: %w", err)
		}
		if t.Seed, err = parseI64(kv["seed"]); err != nil {
			return nil, fmt.Errorf("witness: tracer seed: %w", err)
		}
		pt, err := parseInt(kv["pt"])
		if err != nil || (pt != 0 && pt != 1) {
			return nil, fmt.Errorf("witness: tracer pt must be 0 or 1")
		}
		t.EnablePT = pt == 1
		w.Tracer = t
	}

	// expect
	if rest, err = next("expect"); err != nil {
		return nil, err
	}
	if kv, err = parseKV(rest, "addr", "first", "second"); err != nil {
		return nil, fmt.Errorf("witness: expect line: %w", err)
	}
	if w.Expect.Addr, err = parseU64(kv["addr"]); err != nil {
		return nil, fmt.Errorf("witness: expect addr: %w", err)
	}
	if w.Expect.First, err = parseEndpoint(kv["first"]); err != nil {
		return nil, fmt.Errorf("witness: expect first: %w", err)
	}
	if w.Expect.Second, err = parseEndpoint(kv["second"]); err != nil {
		return nil, fmt.Errorf("witness: expect second: %w", err)
	}

	// check
	if rest, err = next("check"); err != nil {
		return nil, err
	}
	if kv, err = parseKV(rest, "events", "insts", "accesses", "decisions", "misses"); err != nil {
		return nil, fmt.Errorf("witness: check line: %w", err)
	}
	if w.Check.Events, err = parseU64(kv["events"]); err != nil {
		return nil, fmt.Errorf("witness: check events: %w", err)
	}
	if w.Check.Insts, err = parseU64(kv["insts"]); err != nil {
		return nil, fmt.Errorf("witness: check insts: %w", err)
	}
	if w.Check.Accesses, err = parseU64(kv["accesses"]); err != nil {
		return nil, fmt.Errorf("witness: check accesses: %w", err)
	}
	if w.Check.Decisions, err = parseU64(kv["decisions"]); err != nil {
		return nil, fmt.Errorf("witness: check decisions: %w", err)
	}
	if w.Check.Misses, err = parseU64(kv["misses"]); err != nil {
		return nil, fmt.Errorf("witness: check misses: %w", err)
	}

	// forced + picks
	if rest, err = next("forced"); err != nil {
		return nil, err
	}
	n, err := parseInt(rest)
	if err != nil || n < 0 {
		return nil, fmt.Errorf("witness: forced count %q", clip(rest))
	}
	if n > maxForced {
		return nil, fmt.Errorf("witness: forced count %d exceeds limit %d", n, maxForced)
	}
	for k := 0; k < n; k++ {
		rest, err = next("pick")
		if err != nil {
			return nil, err
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return nil, fmt.Errorf("witness: pick line %q", clip(rest))
		}
		pos, err := parseU64(rest[:eq])
		if err != nil {
			return nil, fmt.Errorf("witness: pick pos: %w", err)
		}
		tid, err := parseI64(rest[eq+1:])
		if err != nil || tid < 0 || tid > 1<<30 {
			return nil, fmt.Errorf("witness: pick tid %q", clip(rest[eq+1:]))
		}
		if len(w.Forced) > 0 && pos <= w.Forced[len(w.Forced)-1].Pos {
			return nil, fmt.Errorf("witness: picks not strictly ascending at pos %d", pos)
		}
		w.Forced = append(w.Forced, Pick{Pos: pos, TID: int32(tid)})
	}
	if i != len(lines)-1 {
		return nil, fmt.Errorf("witness: %d unexpected lines before end", len(lines)-1-i)
	}
	return w, nil
}

// parseEndpoint parses "tid:pc:r|w:tsc".
func parseEndpoint(s string) (Endpoint, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 4 {
		return Endpoint{}, fmt.Errorf("endpoint %q: want tid:pc:rw:tsc", clip(s))
	}
	tid, err := parseI64(parts[0])
	if err != nil || tid < 0 || tid > 1<<30 {
		return Endpoint{}, fmt.Errorf("endpoint tid %q", clip(parts[0]))
	}
	pc, err := parseU64(parts[1])
	if err != nil {
		return Endpoint{}, fmt.Errorf("endpoint pc: %w", err)
	}
	var write bool
	switch parts[2] {
	case "r":
	case "w":
		write = true
	default:
		return Endpoint{}, fmt.Errorf("endpoint rw %q", clip(parts[2]))
	}
	tsc, err := parseU64(parts[3])
	if err != nil {
		return Endpoint{}, fmt.Errorf("endpoint tsc: %w", err)
	}
	return Endpoint{TID: int32(tid), PC: pc, Write: write, TSC: tsc}, nil
}

// parseKV splits "k=v k=v ..." requiring exactly the given keys.
func parseKV(s string, keys ...string) (map[string]string, error) {
	out := map[string]string{}
	for _, f := range strings.Fields(s) {
		eq := strings.IndexByte(f, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("malformed field %q", clip(f))
		}
		k, v := f[:eq], f[eq+1:]
		if _, dup := out[k]; dup {
			return nil, fmt.Errorf("duplicate key %q", k)
		}
		out[k] = v
	}
	for _, k := range keys {
		if _, ok := out[k]; !ok {
			return nil, fmt.Errorf("missing key %q", k)
		}
	}
	if len(out) != len(keys) {
		known := map[string]bool{}
		for _, k := range keys {
			known[k] = true
		}
		var extra []string
		for k := range out {
			if !known[k] {
				extra = append(extra, k)
			}
		}
		sort.Strings(extra)
		return nil, fmt.Errorf("unknown keys %v", extra)
	}
	return out, nil
}

func parseU64(s string) (uint64, error) {
	if v, ok := strings.CutPrefix(s, "0x"); ok {
		return strconv.ParseUint(v, 16, 64)
	}
	return strconv.ParseUint(s, 10, 64)
}

func parseI64(s string) (int64, error) { return strconv.ParseInt(s, 10, 64) }

func parseInt(s string) (int, error) {
	v, err := strconv.ParseInt(s, 10, 32)
	return int(v), err
}

func parseF64(s string) (float64, error) { return strconv.ParseFloat(s, 64) }

func clip(s string) string {
	if len(s) > 40 {
		return s[:40] + "…"
	}
	return s
}
