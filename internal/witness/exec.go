package witness

import (
	"fmt"

	"prorace/internal/machine"
	"prorace/internal/pmu/driver"
	"prorace/internal/prog"
	"prorace/internal/race"
	"prorace/internal/replay"
	"prorace/internal/synctrace"
	"prorace/internal/tracefmt"
)

// ExecSpec parameterises one deterministic (re-)execution.
type ExecSpec struct {
	// Machine is the simulator configuration; Tracer and scheduler hooks
	// are overwritten by the executor.
	Machine machine.Config
	// Tracer, when non-nil, attaches a PMU driver (its stall cycles then
	// shape the interleaving exactly as in a traced production run).
	Tracer *TracerSpec
	// Forced are decisions to impose, sorted by Pos. A forced thread that
	// is not runnable at its decision falls back to the seeded pick and
	// counts as a miss — a deterministic fallback, so even partially
	// applicable schedules replay identically.
	Forced []Pick
	// KeepPCs filters which accesses are retained in the result (the
	// racing pair's PCs); zero values retain nothing. The totals in Check
	// always count every access.
	KeepPCs [2]uint64
}

// ExecResult is everything one execution yields for witness purposes.
type ExecResult struct {
	// Decisions is the full scheduler decision log.
	Decisions []machine.SchedDecision
	// Accesses holds the retained (KeepPCs-filtered) accesses per thread.
	Accesses map[int32][]replay.Access
	// Sync is the complete synchronization log.
	Sync []tracefmt.SyncRecord
	// Check digests the run.
	Check Check
	// Stats is the machine's run summary.
	Stats machine.Stats
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func mix(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime
		x >>= 8
	}
	return h
}

// recorder is the replayer's tracer: it digests every event, collects the
// sync log, and retains the accesses at the racing PCs, delegating to the
// wrapped tracer (the PMU driver, or NopTracer for bare replays) so stall
// charging — and therefore timing — matches the witnessed run.
type recorder struct {
	inner  machine.Tracer
	sync   *synctrace.Collector
	res    *ExecResult
	keep   [2]uint64
	steps  map[int32]int
	digest uint64
	insts  uint64
	memOps uint64
}

func (r *recorder) InstRetired(ev *machine.InstEvent) uint64 {
	r.insts++
	h := mix(r.digest, uint64(uint32(ev.TID)))
	h = mix(h, ev.PC)
	h = mix(h, ev.TSC)
	if ev.IsMem {
		flag := uint64(1)
		if ev.IsStore {
			flag = 3
		}
		h = mix(h, ev.MemAddr<<2|flag)
		r.memOps++
		if ev.PC == r.keep[0] || ev.PC == r.keep[1] {
			tid := int32(ev.TID)
			r.res.Accesses[tid] = append(r.res.Accesses[tid], replay.Access{
				TID:   tid,
				PC:    ev.PC,
				Addr:  ev.MemAddr,
				Store: ev.IsStore,
				TSC:   ev.TSC,
				Step:  r.steps[tid],
			})
		}
	}
	if ev.Taken {
		h = mix(h, ev.Target)
	}
	r.digest = h
	r.steps[int32(ev.TID)]++
	return r.inner.InstRetired(ev)
}

func (r *recorder) SyscallRetired(ev *machine.SyscallEvent) uint64 {
	h := mix(r.digest, uint64(uint32(ev.TID)))
	h = mix(h, ev.PC)
	h = mix(h, ev.TSC)
	h = mix(h, uint64(ev.Sys))
	h = mix(h, ev.Ret)
	r.digest = h
	r.sync.OnSyscall(ev)
	return r.inner.SyscallRetired(ev)
}

func (r *recorder) ThreadStarted(tid machine.TID, tsc uint64) {
	r.digest = mix(mix(r.digest, uint64(uint32(tid))), tsc)
	r.sync.OnThreadStart(tid, tsc)
	r.inner.ThreadStarted(tid, tsc)
}

func (r *recorder) ThreadExited(tid machine.TID, tsc uint64) {
	r.digest = mix(mix(r.digest, uint64(uint32(tid))), tsc)
	r.sync.OnThreadExit(tid, tsc)
	r.inner.ThreadExited(tid, tsc)
}

// driverKind maps a TracerSpec kind string to the driver enum.
func driverKind(kind string) (driver.Kind, error) {
	switch kind {
	case "prorace":
		return driver.ProRace, nil
	case "vanilla":
		return driver.Vanilla, nil
	}
	return 0, fmt.Errorf("witness: unknown driver kind %q", kind)
}

// DriverKindName is the inverse of the TracerSpec kind mapping.
func DriverKindName(k driver.Kind) string {
	if k == driver.Vanilla {
		return "vanilla"
	}
	return "prorace"
}

// Execute runs p once under spec's machine configuration, optional driver
// and forced schedule, and returns the run's decision log, sync log,
// filtered accesses and digests. Execution is fully deterministic: the
// same spec replays to the same ExecResult, byte for byte.
func Execute(p *prog.Program, spec ExecSpec) (*ExecResult, error) {
	res := &ExecResult{Accesses: map[int32][]replay.Access{}}
	rec := &recorder{
		sync:   synctrace.New(),
		res:    res,
		keep:   spec.KeepPCs,
		steps:  map[int32]int{},
		digest: fnvOffset,
	}

	mcfg := spec.Machine
	mcfg.Tracer = nil
	mcfg.SchedObserver = func(d machine.SchedDecision) { res.Decisions = append(res.Decisions, d) }
	if len(spec.Forced) > 0 {
		forced := make(map[uint64]int32, len(spec.Forced))
		for _, f := range spec.Forced {
			forced[f.Pos] = f.TID
		}
		mcfg.SchedDirector = func(pos uint64, runq []machine.TID, pick int) int {
			tid, ok := forced[pos]
			if !ok {
				return pick
			}
			for i, cand := range runq {
				if int32(cand) == tid {
					return i
				}
			}
			res.Check.Misses++
			return pick
		}
	}

	mac := machine.New(p, mcfg)
	var inner machine.Tracer = machine.NopTracer{}
	var drv *driver.Driver
	if spec.Tracer != nil {
		kind, err := driverKind(spec.Tracer.Kind)
		if err != nil {
			return nil, err
		}
		drv = driver.New(mac, driver.Options{
			Kind:     kind,
			Period:   spec.Tracer.Period,
			Seed:     spec.Tracer.Seed,
			EnablePT: spec.Tracer.EnablePT,
		})
		inner = drv
	}
	rec.inner = inner
	mac.SetTracer(rec)

	st, err := mac.Run()
	if err != nil {
		return nil, fmt.Errorf("witness: replay run: %w", err)
	}
	if drv != nil {
		drv.Finish()
	}
	res.Stats = st
	res.Sync = rec.sync.Records()
	res.Check.Events = rec.digest
	res.Check.Insts = rec.insts
	res.Check.Accesses = rec.memOps
	res.Check.Decisions = uint64(len(res.Decisions))
	return res, nil
}

// FindPairRace feeds the execution's sync log and pair-filtered accesses
// through the pair-complete happens-before oracle and returns the report
// matching the (pc1, pc2) pair, if the pair raced in this execution.
//
// Filtering accesses to the two PCs is sound: happens-before clocks derive
// only from the sync log, which is complete, so the pair is unordered in
// the filtered feed exactly when it is unordered in the full one.
func FindPairRace(res *ExecResult, pc1, pc2 uint64) (race.Report, bool) {
	o := race.NewPairOracle(race.Options{TrackAllocations: true})
	race.Feed(o, res.Sync, res.Accesses)
	o.Finish()
	want := pairKey(pc1, pc2)
	for _, r := range o.Reports() {
		if r.Key() == want {
			return r, true
		}
	}
	return race.Report{}, false
}

func pairKey(a, b uint64) [2]uint64 {
	if a > b {
		a, b = b, a
	}
	return [2]uint64{a, b}
}
