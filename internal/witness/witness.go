// Package witness turns race reports into deterministic reproductions.
//
// A report from the analysis pipeline names two stack-less accesses; a
// production user needs to *see* the race happen. A Witness packages
// everything required to re-execute the simulated machine to the racing
// pair: the program's identity, the machine configuration and scheduler
// seed, optionally the attached PMU driver, and a bounded prefix of forced
// scheduler decisions (recorded through machine.Config's decision-log
// hooks). Replaying a witness re-runs the program under that exact
// schedule, recomputes the happens-before relation of the replayed
// execution with the pair-complete race.PairOracle, and asserts that the
// reported access pair occurs — same PCs, same access kinds — with no
// happens-before edge between the two accesses. The machine is
// deterministic, so a witness recorded once replays byte-identically
// forever; the Check digests pin the entire event stream, making any
// scheduler or ISA drift loud.
//
// Witnesses serialize to a versioned, checksummed text format (see
// format.go) that is safe to check into testdata and to ship alongside
// reports: internal/witness/testdata holds the golden corpus for the 12
// Table-2 bugs, and `prorace reproduce report.witness` replays one from
// the command line.
//
// The reproduction loop follows Ronsse & De Bosschere's record/replay
// RecPlay cycle (arXiv cs/0011005) and the replay-driven complete race
// detection of Guo et al. (arXiv 1107.2003), adapted to the simulator: the
// scheduler's decision stream *is* the interleaving, so a seed plus a
// forced-decision prefix is a complete reproduction recipe.
package witness

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"prorace/internal/bugs"
	"prorace/internal/isa"
	"prorace/internal/machine"
	"prorace/internal/prog"
	"prorace/internal/progtest"
	"prorace/internal/workload"
)

// FormatVersion is the current witness file format version.
const FormatVersion = 1

// Pick is one forced scheduler decision: at multi-candidate decision
// ordinal Pos, dispatch thread TID.
type Pick struct {
	Pos uint64
	TID int32
}

// TracerSpec describes a PMU driver attached during the witnessed run.
// Most witnesses replay bare (nil TracerSpec): the schedule alone
// reproduces the race without paying for tracing. A witness falls back to
// a traced replay only when the race manifests exclusively under the
// driver's stall-cycle timing.
type TracerSpec struct {
	Kind     string // "prorace" or "vanilla"
	Period   uint64
	Seed     int64
	EnablePT bool
}

// Endpoint pins one side of the expected race.
type Endpoint struct {
	TID   int32
	PC    uint64
	Write bool
	TSC   uint64
}

// Expectation is what the replay must manifest: an unordered conflicting
// access pair on Addr with exactly these endpoints.
type Expectation struct {
	Addr          uint64
	First, Second Endpoint
}

// Check digests the witnessed execution. Replays must reproduce every
// field exactly; a mismatch means the simulator, ISA or scheduler drifted
// since the witness was recorded.
type Check struct {
	// Events is the FNV-1a digest of the full event stream (every retired
	// instruction, syscall, and thread start/exit, with TSCs).
	Events uint64
	// Insts is the total retired instruction count.
	Insts uint64
	// Accesses is the total retired memory-access count.
	Accesses uint64
	// Decisions is the number of multi-candidate scheduler decisions.
	Decisions uint64
	// Misses counts forced picks whose thread was not runnable at that
	// decision (the replayer falls back to the seeded pick — still
	// deterministic, so the count reproduces exactly).
	Misses uint64
}

// Witness is a complete reproduction recipe for one race report.
type Witness struct {
	// Comment is a free-form description rendered as # lines.
	Comment string
	// Prog identifies (and fingerprints) the program to replay.
	Prog ProgSpec
	// Machine is the simulator configuration of the witnessed run. Only
	// scalar fields participate; Tracer and the scheduler hooks are the
	// replayer's to install.
	Machine machine.Config
	// Tracer, when non-nil, attaches a PMU driver during replay.
	Tracer *TracerSpec
	// Expect is the racing pair the replay must manifest.
	Expect Expectation
	// Check digests the witnessed execution for drift detection.
	Check Check
	// Forced is the minimized scheduler-decision prefix, sorted by Pos.
	Forced []Pick
}

// ProgSpec identifies a replayable program. Witness files do not embed
// program text; they name one of the repository's deterministic program
// sources and pin its content with a fingerprint.
type ProgSpec struct {
	// Kind selects the source: "bug" (internal/bugs Table-2 entry),
	// "workload" (internal/workload by name), or "oracle"
	// (progtest.ConcurrentProgram from a generator seed).
	Kind string
	// Name is the bug ID or workload name (unused for "oracle").
	Name string
	// Scale is the workload scale (bug and workload kinds; 0 means 1).
	Scale int
	// Seed is the program-generator seed ("oracle" kind only).
	Seed int64
	// FP is the program fingerprint (see Fingerprint); Build verifies it.
	FP uint64
}

// String renders the spec compactly for messages.
func (s ProgSpec) String() string {
	switch s.Kind {
	case "oracle":
		return fmt.Sprintf("oracle:seed=%d", s.Seed)
	default:
		return fmt.Sprintf("%s:%s@%d", s.Kind, s.Name, s.scale())
	}
}

func (s ProgSpec) scale() int {
	if s.Scale <= 0 {
		return 1
	}
	return s.Scale
}

// BugSpec identifies a Table-2 bug program.
func BugSpec(id string, scale int) ProgSpec {
	return ProgSpec{Kind: "bug", Name: id, Scale: scale}
}

// WorkloadSpec identifies an internal/workload program.
func WorkloadSpec(name string, scale int) ProgSpec {
	return ProgSpec{Kind: "workload", Name: name, Scale: scale}
}

// OracleSpec identifies a generated oracle program by its generator seed.
func OracleSpec(seed int64) ProgSpec {
	return ProgSpec{Kind: "oracle", Seed: seed}
}

// Build resolves the spec to its program and verifies the fingerprint
// (when set). The returned program is freshly built, so a stale spec —
// one whose source program has since changed — fails here rather than
// replaying a different program than the witness describes.
func (s ProgSpec) Build() (*prog.Program, error) {
	var p *prog.Program
	switch s.Kind {
	case "bug":
		b, err := bugs.ByID(s.Name)
		if err != nil {
			return nil, fmt.Errorf("witness: %w", err)
		}
		p = b.Build(workload.Scale(s.scale())).Workload.Program
	case "workload":
		w, err := workload.ByName(s.Name, workload.Scale(s.scale()))
		if err != nil {
			return nil, fmt.Errorf("witness: %w", err)
		}
		p = w.Program
	case "oracle":
		p, _ = progtest.ConcurrentProgram(rand.New(rand.NewSource(s.Seed)))
	default:
		return nil, fmt.Errorf("witness: unknown program kind %q", s.Kind)
	}
	if s.FP != 0 {
		if fp := Fingerprint(p); fp != s.FP {
			return nil, fmt.Errorf("witness: program %s fingerprint %#x does not match recorded %#x: the program changed since the witness was recorded", s, fp, s.FP)
		}
	}
	return p, nil
}

// WithFP returns the spec with its fingerprint pinned to p.
func (s ProgSpec) WithFP(p *prog.Program) ProgSpec {
	s.FP = Fingerprint(p)
	return s
}

// Fingerprint hashes a program's observable content: encoded text segment,
// data segment, and entry point.
func Fingerprint(p *prog.Program) uint64 {
	h := fnv.New64a()
	h.Write(isa.EncodeProgram(p.Insts))
	h.Write(p.Data)
	var eb [8]byte
	for i := 0; i < 8; i++ {
		eb[i] = byte(p.Entry >> (8 * i))
	}
	h.Write(eb[:])
	return h.Sum64()
}
