package witness

import (
	"fmt"
	"os"

	"prorace/internal/prog"
	"prorace/internal/race"
)

// ReplayOutcome reports one witness replay.
type ReplayOutcome struct {
	// OK is true when the race manifested exactly as witnessed.
	OK bool
	// Drift lists every divergence from the witnessed execution, in
	// human-readable form — empty when OK.
	Drift []string
	// Matched is the race report of the replayed execution (valid when
	// the pair manifested, even if digests drifted).
	Matched race.Report
	// Result is the replayed execution, for diagnostics.
	Result *ExecResult
}

// Diff renders the drift list as a multi-line string.
func (r *ReplayOutcome) Diff() string {
	if r.OK {
		return ""
	}
	out := ""
	for _, d := range r.Drift {
		out += "  - " + d + "\n"
	}
	return out
}

// Replay re-executes the witness against p and checks every recorded
// property: the event-stream digest and counts (any scheduler, ISA or
// timing drift), and the racing pair itself (same endpoints, no
// happens-before edge). It returns the outcome; err is non-nil only when
// the replay could not run at all.
func (w *Witness) Replay(p *prog.Program) (*ReplayOutcome, error) {
	if w.Prog.FP != 0 {
		if fp := Fingerprint(p); fp != w.Prog.FP {
			return nil, fmt.Errorf("witness: program fingerprint %#x does not match recorded %#x", fp, w.Prog.FP)
		}
	}
	res, err := Execute(p, ExecSpec{
		Machine: w.Machine,
		Tracer:  w.Tracer,
		Forced:  w.Forced,
		KeepPCs: [2]uint64{w.Expect.First.PC, w.Expect.Second.PC},
	})
	if err != nil {
		return nil, err
	}
	out := &ReplayOutcome{Result: res}

	matched, raced := FindPairRace(res, w.Expect.First.PC, w.Expect.Second.PC)
	if !raced {
		out.Drift = append(out.Drift, fmt.Sprintf(
			"racing pair pc %#x / pc %#x did not manifest: no unordered conflicting accesses in the replayed execution",
			w.Expect.First.PC, w.Expect.Second.PC))
	} else {
		out.Matched = matched
		if matched.Addr != w.Expect.Addr {
			out.Drift = append(out.Drift, fmt.Sprintf(
				"race address: replay %#x, witness %#x", matched.Addr, w.Expect.Addr))
		}
		if got, want := Endpoint(matched.First), w.Expect.First; got != want {
			out.Drift = append(out.Drift, endpointDiff("first access", got, want))
		}
		if got, want := Endpoint(matched.Second), w.Expect.Second; got != want {
			out.Drift = append(out.Drift, endpointDiff("second access", got, want))
		}
	}

	if res.Check.Events != w.Check.Events {
		out.Drift = append(out.Drift, fmt.Sprintf(
			"event-stream digest: replay %#x, witness %#x (scheduler or ISA drift)",
			res.Check.Events, w.Check.Events))
	}
	if res.Check.Insts != w.Check.Insts {
		out.Drift = append(out.Drift, fmt.Sprintf(
			"retired instructions: replay %d, witness %d", res.Check.Insts, w.Check.Insts))
	}
	if res.Check.Accesses != w.Check.Accesses {
		out.Drift = append(out.Drift, fmt.Sprintf(
			"memory accesses: replay %d, witness %d", res.Check.Accesses, w.Check.Accesses))
	}
	if res.Check.Decisions != w.Check.Decisions {
		out.Drift = append(out.Drift, fmt.Sprintf(
			"scheduler decisions: replay %d, witness %d", res.Check.Decisions, w.Check.Decisions))
	}
	if res.Check.Misses != w.Check.Misses {
		out.Drift = append(out.Drift, fmt.Sprintf(
			"forced-pick misses: replay %d, witness %d", res.Check.Misses, w.Check.Misses))
	}
	out.OK = len(out.Drift) == 0
	return out, nil
}

func endpointDiff(what string, got, want Endpoint) string {
	return fmt.Sprintf("%s: replay T%d %s@%#x tsc=%d, witness T%d %s@%#x tsc=%d",
		what,
		got.TID, rwWord(got.Write), got.PC, got.TSC,
		want.TID, rwWord(want.Write), want.PC, want.TSC)
}

func rwWord(w bool) string {
	if w {
		return "write"
	}
	return "read"
}

// ReplayResolved rebuilds the witness's program from its ProgSpec
// (verifying the fingerprint) and replays.
func (w *Witness) ReplayResolved() (*ReplayOutcome, error) {
	p, err := w.Prog.Build()
	if err != nil {
		return nil, err
	}
	return w.Replay(p)
}

// ReadFile loads and decodes a witness file.
func ReadFile(path string) (*Witness, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("witness: %w", err)
	}
	w, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("witness: %s: %w", path, err)
	}
	return w, nil
}

// WriteFile encodes the witness to path.
func (w *Witness) WriteFile(path string) error {
	return os.WriteFile(path, w.Encode(), 0o644)
}
