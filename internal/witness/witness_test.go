package witness

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"prorace/internal/bugs"
	"prorace/internal/machine"
	"prorace/internal/prog"
	"prorace/internal/progtest"
	"prorace/internal/race"
	"prorace/internal/replay"
	"prorace/internal/synctrace"
)

func TestFingerprintPinsProgramContent(t *testing.T) {
	p1, _ := progtest.ConcurrentProgram(rand.New(rand.NewSource(1)))
	p2, _ := progtest.ConcurrentProgram(rand.New(rand.NewSource(1)))
	if Fingerprint(p1) != Fingerprint(p2) {
		t.Fatal("same generator seed must fingerprint identically")
	}
	p3, _ := progtest.ConcurrentProgram(rand.New(rand.NewSource(2)))
	if Fingerprint(p1) == Fingerprint(p3) {
		t.Fatal("different programs must fingerprint differently")
	}
}

func TestProgSpecBuildVerifiesFingerprint(t *testing.T) {
	spec := BugSpec("apache-25520", 1)
	p, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	pinned := spec.WithFP(p)
	if _, err := pinned.Build(); err != nil {
		t.Fatalf("pinned spec must rebuild: %v", err)
	}
	pinned.FP ^= 1
	if _, err := pinned.Build(); err == nil {
		t.Fatal("stale fingerprint must fail the build, not replay a different program")
	}
	if _, err := (ProgSpec{Kind: "elf", Name: "x"}).Build(); err == nil {
		t.Fatal("unknown program kind must error")
	}
}

// allCollector retains every memory access plus the sync log, for tests
// that need to discover racing pairs rather than check a known one.
type allCollector struct {
	machine.NopTracer
	sync  *synctrace.Collector
	acc   map[int32][]replay.Access
	steps map[int32]int
}

func newAllCollector() *allCollector {
	return &allCollector{sync: synctrace.New(), acc: map[int32][]replay.Access{}, steps: map[int32]int{}}
}

func (c *allCollector) InstRetired(ev *machine.InstEvent) uint64 {
	tid := int32(ev.TID)
	if ev.IsMem {
		c.acc[tid] = append(c.acc[tid], replay.Access{
			TID: tid, PC: ev.PC, Addr: ev.MemAddr, Store: ev.IsStore, TSC: ev.TSC, Step: c.steps[tid],
		})
	}
	c.steps[tid]++
	return 0
}

func (c *allCollector) SyscallRetired(ev *machine.SyscallEvent) uint64 {
	c.sync.OnSyscall(ev)
	return 0
}

func (c *allCollector) ThreadStarted(tid machine.TID, tsc uint64) { c.sync.OnThreadStart(tid, tsc) }
func (c *allCollector) ThreadExited(tid machine.TID, tsc uint64)  { c.sync.OnThreadExit(tid, tsc) }

// allRaces runs p bare under cfg and returns every race the pair-complete
// oracle finds.
func allRaces(t *testing.T, p *prog.Program, cfg machine.Config) []race.Report {
	t.Helper()
	col := newAllCollector()
	cfg.Tracer = nil
	mac := machine.New(p, cfg)
	mac.SetTracer(col)
	if _, err := mac.Run(); err != nil {
		t.Fatalf("machine run: %v", err)
	}
	o := race.NewPairOracle(race.Options{TrackAllocations: true})
	race.Feed(o, col.sync.Records(), col.acc)
	o.Finish()
	return o.Reports()
}

func TestExecuteIsDeterministic(t *testing.T) {
	p, _ := progtest.ConcurrentProgram(rand.New(rand.NewSource(3)))
	spec := ExecSpec{Machine: machine.Config{Cores: 2, Seed: 5}}
	r1, err := Execute(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Execute(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Check != r2.Check {
		t.Fatalf("same spec must replay byte-identically:\n%+v\n%+v", r1.Check, r2.Check)
	}
	if !reflect.DeepEqual(r1.Decisions, r2.Decisions) {
		t.Fatal("decision logs differ between identical executions")
	}
}

func TestExecuteForcedOwnLogIsIdentity(t *testing.T) {
	p, _ := progtest.ConcurrentProgram(rand.New(rand.NewSource(4)))
	spec := ExecSpec{Machine: machine.Config{Cores: 1, Seed: 2}}
	base, err := Execute(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Decisions) == 0 {
		t.Skip("program produced no multi-candidate decisions")
	}
	forced := make([]Pick, len(base.Decisions))
	for i, d := range base.Decisions {
		forced[i] = Pick{Pos: d.Pos, TID: int32(d.TID)}
	}
	re, err := Execute(p, ExecSpec{Machine: spec.Machine, Forced: forced})
	if err != nil {
		t.Fatal(err)
	}
	if re.Check != base.Check {
		t.Fatalf("forcing a run's own decision log must be the identity:\nbase %+v\n  re %+v", base.Check, re.Check)
	}
	if re.Check.Misses != 0 {
		t.Fatalf("identity replay counted %d misses", re.Check.Misses)
	}
}

func TestExecuteForcedMissesAreDeterministic(t *testing.T) {
	p, _ := progtest.ConcurrentProgram(rand.New(rand.NewSource(4)))
	// TID 30000 never runs, so every forced pick misses and falls back to
	// the seeded choice — the run must equal the unforced one, with the
	// misses counted.
	bogus := []Pick{{Pos: 0, TID: 30000}, {Pos: 1, TID: 30000}}
	spec := ExecSpec{Machine: machine.Config{Cores: 1, Seed: 2}}
	base, err := Execute(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	if base.Check.Decisions < 2 {
		t.Skip("program produced too few decisions")
	}
	re, err := Execute(p, ExecSpec{Machine: spec.Machine, Forced: bogus})
	if err != nil {
		t.Fatal(err)
	}
	if re.Check.Misses != 2 {
		t.Fatalf("want 2 misses, got %d", re.Check.Misses)
	}
	if re.Check.Events != base.Check.Events {
		t.Fatal("missed picks must fall back to the seeded schedule")
	}
	re2, err := Execute(p, ExecSpec{Machine: spec.Machine, Forced: bogus})
	if err != nil {
		t.Fatal(err)
	}
	if re.Check != re2.Check {
		t.Fatal("forced replay with misses is not deterministic")
	}
}

func TestTrimAfter(t *testing.T) {
	log := []machine.SchedDecision{
		{Pos: 0, TID: 1, TSC: 100},
		{Pos: 1, TID: 2, TSC: 200},
		{Pos: 2, TID: 1, TSC: 300},
	}
	got := trimAfter(log, 200)
	want := []Pick{{Pos: 0, TID: 1}, {Pos: 1, TID: 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("trimAfter(200) = %v, want %v", got, want)
	}
	if got := trimAfter(log, 0); len(got) != 3 {
		t.Fatalf("trimAfter(0) must keep everything, got %v", got)
	}
}

func TestMinimizeDeltaDebug(t *testing.T) {
	picks := make([]Pick, 16)
	for i := range picks {
		picks[i] = Pick{Pos: uint64(i), TID: int32(i % 3)}
	}
	// Only picks at Pos 3 and 11 matter.
	need := func(cand []Pick) bool {
		has := map[uint64]bool{}
		for _, p := range cand {
			has[p.Pos] = true
		}
		return has[3] && has[11]
	}
	min := minimize(picks, need)
	if len(min) != 2 || min[0].Pos != 3 || min[1].Pos != 11 {
		t.Fatalf("minimize kept %v, want exactly pos 3 and 11", min)
	}
	// A verifier that always fails (budget exhausted) must leave the input
	// intact — larger is safe, wrong would not be.
	same := minimize(picks, func([]Pick) bool { return false })
	if !reflect.DeepEqual(same, picks) {
		t.Fatal("minimize shrank despite every verification failing")
	}
}

func TestGenerateRecordReplayRoundTrip(t *testing.T) {
	built := mustBug(t, "apache-25520")
	p := built.Workload.Program
	mcfg := built.Workload.Machine
	mcfg.Seed = 1
	tspec := &TracerSpec{Kind: "prorace", Period: 100, Seed: 1, EnablePT: true}

	// Discover the planted race with the ground-truth oracle, then witness
	// that report.
	var rep race.Report
	found := false
	for _, r := range allRaces(t, p, mcfg) {
		if built.RacyPCs[r.First.PC] && built.RacyPCs[r.Second.PC] {
			rep, found = r, true
			break
		}
	}
	if !found {
		t.Fatal("planted race not found by the ground-truth oracle")
	}

	out := Generate(p, BugSpec(built.Bug.ID, 1), mcfg, tspec, rep, GenConfig{})
	if out.Witness == nil {
		t.Fatalf("no witness generated: %s (%d replays)", out.Err, out.Replays)
	}

	// Serialize, reload, and replay twice: both must succeed with
	// byte-identical event streams.
	data := out.Witness.Encode()
	w, err := Decode(data)
	if err != nil {
		t.Fatalf("decode own encoding: %v", err)
	}
	r1, err := w.ReplayResolved()
	if err != nil {
		t.Fatal(err)
	}
	if !r1.OK {
		t.Fatalf("replay drifted:\n%s", r1.Diff())
	}
	r2, err := w.ReplayResolved()
	if err != nil {
		t.Fatal(err)
	}
	if !r2.OK {
		t.Fatalf("second replay drifted:\n%s", r2.Diff())
	}
	if r1.Result.Check != r2.Result.Check {
		t.Fatalf("replays are not byte-identical:\n%+v\n%+v", r1.Result.Check, r2.Result.Check)
	}
	if !bytes.Equal(w.Encode(), data) {
		t.Fatal("witness encoding is not stable")
	}
}

func TestReplayDetectsDrift(t *testing.T) {
	built := mustBug(t, "apache-25520")
	p := built.Workload.Program
	mcfg := built.Workload.Machine
	mcfg.Seed = 1
	var rep race.Report
	found := false
	for _, r := range allRaces(t, p, mcfg) {
		if built.RacyPCs[r.First.PC] && built.RacyPCs[r.Second.PC] {
			rep, found = r, true
			break
		}
	}
	if !found {
		t.Fatal("planted race not found")
	}
	out := Generate(p, BugSpec(built.Bug.ID, 1), mcfg, nil, rep, GenConfig{})
	if out.Witness == nil {
		t.Fatalf("no witness: %s", out.Err)
	}

	// A tampered expectation must fail the replay with a readable diff,
	// not succeed silently.
	tampered := *out.Witness
	tampered.Expect.Addr ^= 0x1000
	res, err := tampered.Replay(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("replay accepted a tampered race address")
	}
	if res.Diff() == "" {
		t.Fatal("failed replay must explain itself")
	}

	// A tampered digest likewise.
	tampered = *out.Witness
	tampered.Check.Events ^= 1
	if res, err = tampered.Replay(p); err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("replay accepted a tampered event digest")
	}

	// The wrong program is an error (fingerprint), not a drifted replay.
	other, _ := progtest.ConcurrentProgram(rand.New(rand.NewSource(9)))
	if _, err := out.Witness.Replay(other); err == nil {
		t.Fatal("replaying against a different program must error on the fingerprint")
	}
}

// TestGenerateSeedSearchRung drives generation into rung 3: the report
// comes from a nearby seed, so the recorded seed's bare replay cannot
// manifest it, and generation must find the seed that does.
func TestGenerateSeedSearchRung(t *testing.T) {
	base := machine.Config{Cores: 1, Seed: 1}
	for genSeed := int64(1); genSeed <= 40; genSeed++ {
		p, _ := progtest.ConcurrentProgram(rand.New(rand.NewSource(genSeed)))
		baseSet := map[[2]uint64]bool{}
		for _, r := range allRaces(t, p, base) {
			baseSet[r.Key()] = true
		}
		near := base
		near.Seed = base.Seed + 1000003
		for _, r := range allRaces(t, p, near) {
			if baseSet[r.Key()] {
				continue
			}
			// This pair races at the nearby seed only.
			out := Generate(p, OracleSpec(genSeed), base, nil, r, GenConfig{})
			if out.Witness == nil {
				// The pair-specific filtered verification can legitimately
				// disagree with the full-feed discovery for pairs whose PCs
				// also touch other addresses; keep searching.
				continue
			}
			if out.Witness.Machine.Seed == base.Seed {
				t.Fatalf("rung ladder claims seed %d manifests a pair absent from that seed's race set", base.Seed)
			}
			ro, err := out.Witness.Replay(p)
			if err != nil {
				t.Fatal(err)
			}
			if !ro.OK {
				t.Fatalf("seed-search witness drifted:\n%s", ro.Diff())
			}
			t.Logf("genSeed %d: rung %q at machine seed %d after %d replays", genSeed, out.Rung, out.Witness.Machine.Seed, out.Replays)
			return
		}
	}
	t.Fatal("no seed-search candidate found in 40 generator seeds")
}

func mustBug(t *testing.T, id string) *bugs.Built {
	t.Helper()
	b, err := bugs.ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	return b.Build(1)
}
