package vc

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestInternDedupAndCanonicalForm(t *testing.T) {
	in := NewInterner()
	a := in.Intern([]uint64{1, 2, 3})
	b := in.Intern([]uint64{1, 2, 3, 0, 0}) // trailing zeros trim to the same vector
	if a != b {
		t.Fatalf("equal vectors interned to distinct refs %d, %d", a, b)
	}
	if in.Refs(a) != 2 {
		t.Errorf("refs = %d, want 2", in.Refs(a))
	}
	if in.Live() != 1 || in.Hits() != 1 || in.Misses() != 1 {
		t.Errorf("live/hits/misses = %d/%d/%d, want 1/1/1", in.Live(), in.Hits(), in.Misses())
	}
	c := in.Intern([]uint64{1, 2, 4})
	if c == a {
		t.Error("distinct vectors shared a ref")
	}
	if got := in.Clocks(a); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("Clocks(a) = %v", got)
	}
	if in.At(a, 1) != 2 || in.At(a, 99) != 0 || in.At(NilRef, 0) != 0 {
		t.Error("At wrong")
	}
	if in.Len(a) != 3 || in.Len(NilRef) != 0 {
		t.Error("Len wrong")
	}
}

func TestInternCallerSliceNotRetained(t *testing.T) {
	in := NewInterner()
	buf := []uint64{7, 8}
	r := in.Intern(buf)
	buf[0] = 999 // caller mutates its slice after interning
	if in.At(r, 0) != 7 {
		t.Error("interned vector aliased the caller's slice")
	}
}

func TestInternReleaseRecyclesRegion(t *testing.T) {
	in := NewInterner()
	r := in.Intern([]uint64{5, 6, 7})
	in.Retain(r)
	in.Release(r) // refs 2 → 1: still live
	if in.Live() != 1 {
		t.Fatal("released-but-referenced vector must stay live")
	}
	in.Release(r) // last ref: entry + region recycled
	if in.Live() != 0 {
		t.Fatal("fully released vector must not stay live")
	}
	// A same-size-class vector must reuse the retired entry and region.
	r2 := in.Intern([]uint64{9, 9, 9})
	if r2 != r {
		t.Errorf("recycled insert got ref %d, want reuse of %d", r2, r)
	}
	if in.Reuses() != 1 {
		t.Errorf("reuses = %d, want 1", in.Reuses())
	}
	if got := in.Clocks(r2); got[0] != 9 || got[2] != 9 {
		t.Errorf("recycled region contents = %v", got)
	}
}

func TestInternDoubleReleasePanics(t *testing.T) {
	in := NewInterner()
	r := in.Intern([]uint64{1})
	in.Release(r)
	defer func() {
		if recover() == nil {
			t.Error("double release must panic")
		}
	}()
	in.Release(r)
}

func TestInternWithSet(t *testing.T) {
	in := NewInterner()
	r := in.Intern([]uint64{1, 2})
	var scratch []uint64
	// Update within range.
	r2, scratch := in.WithSet(r, 1, 5, scratch)
	if in.At(r2, 0) != 1 || in.At(r2, 1) != 5 {
		t.Errorf("WithSet contents wrong: %v", in.Clocks(r2))
	}
	if in.Refs(r) != 1 {
		t.Error("WithSet must not release its input")
	}
	// Update beyond range grows; intermediate entries are zero.
	r3, scratch := in.WithSet(r2, 4, 9, scratch)
	if in.Len(r3) != 5 || in.At(r3, 2) != 0 || in.At(r3, 4) != 9 {
		t.Errorf("WithSet growth wrong: %v", in.Clocks(r3))
	}
	// Setting a trailing entry to zero re-canonicalises.
	r4, _ := in.WithSet(r3, 4, 0, scratch)
	if in.Len(r4) != 2 {
		t.Errorf("WithSet(…, 0) canonical len = %d, want 2", in.Len(r4))
	}
	// NilRef input builds from the empty vector.
	r5, _ := in.WithSet(NilRef, 2, 3, nil)
	if in.Len(r5) != 3 || in.At(r5, 2) != 3 {
		t.Errorf("WithSet from NilRef wrong: %v", in.Clocks(r5))
	}
}

func TestInternWithSetWarmLoopAllocFree(t *testing.T) {
	in := NewInterner()
	// Warm up: cycle a two-state update loop so both vectors exist and the
	// scratch buffer is sized.
	r := in.Intern([]uint64{1, 1})
	var scratch []uint64
	clockA, clockB := uint64(2), uint64(1)
	step := func() {
		nr, s := in.WithSet(r, 1, clockA, scratch)
		in.Release(r)
		r, scratch = nr, s
		clockA, clockB = clockB, clockA
	}
	step()
	step()
	if allocs := testing.AllocsPerRun(200, step); allocs > 0 {
		t.Errorf("warm WithSet/Release cycle cost %.1f allocs, want 0", allocs)
	}
}

func TestInternRehashKeepsFreeListsDead(t *testing.T) {
	// Force rehash with retired entries present: dead entries must not be
	// re-linked into buckets (they would corrupt lookups when recycled).
	in := NewInterner()
	var dead []Ref
	for i := 0; i < 40; i++ {
		dead = append(dead, in.Intern([]uint64{uint64(i + 1), 77}))
	}
	for _, r := range dead {
		in.Release(r)
	}
	// Push live population past the rehash threshold.
	var live []Ref
	for i := 0; i < 200; i++ {
		live = append(live, in.Intern([]uint64{uint64(i + 1), 88}))
	}
	for i, r := range live {
		if got := in.At(r, 0); got != uint64(i+1) {
			t.Fatalf("post-rehash lookup corrupted: entry %d = %d", i, got)
		}
	}
	// Every dead entry's recycled use must still dedup correctly.
	x := in.Intern([]uint64{12345, 77})
	y := in.Intern([]uint64{12345, 77})
	if x != y {
		t.Error("dedup broken after rehash with free lists populated")
	}
}

func TestInternRandomizedAgainstMap(t *testing.T) {
	// Differential check: the interner must behave like a map from
	// canonical vector content to a refcount.
	rng := rand.New(rand.NewSource(42))
	in := NewInterner()
	type held struct {
		r   Ref
		key string
	}
	var refs []held
	counts := map[string]int{}
	key := func(clocks []uint64) string { return fmt.Sprint(trim(clocks)) }
	for step := 0; step < 5000; step++ {
		if len(refs) > 0 && rng.Intn(2) == 0 {
			i := rng.Intn(len(refs))
			h := refs[i]
			in.Release(h.r)
			counts[h.key]--
			if counts[h.key] == 0 {
				delete(counts, h.key)
			}
			refs[i] = refs[len(refs)-1]
			refs = refs[:len(refs)-1]
			continue
		}
		clocks := make([]uint64, rng.Intn(8))
		for i := range clocks {
			clocks[i] = uint64(rng.Intn(4))
		}
		r := in.Intern(clocks)
		k := key(clocks)
		counts[k]++
		refs = append(refs, held{r, k})
		if got := key(in.Clocks(r)); got != k {
			t.Fatalf("step %d: contents %s, want %s", step, got, k)
		}
		if int(in.Refs(r)) != counts[k] {
			t.Fatalf("step %d: refs(%s) = %d, want %d", step, k, in.Refs(r), counts[k])
		}
	}
	if in.Live() != len(counts) {
		t.Fatalf("live = %d, want %d distinct held vectors", in.Live(), len(counts))
	}
	for _, h := range refs {
		if got := key(in.Clocks(h.r)); got != h.key {
			t.Fatalf("final contents of %d = %s, want %s", h.r, got, h.key)
		}
	}
}

func TestInternBytesBounded(t *testing.T) {
	// Churning one variable through many read states must recycle regions,
	// not grow the arena without bound.
	in := NewInterner()
	r := in.Intern([]uint64{1, 1})
	var scratch []uint64
	for i := 0; i < 100000; i++ {
		nr, s := in.WithSet(r, TID(i%4), uint64(i%1000+1), scratch)
		in.Release(r)
		r, scratch = nr, s
	}
	if in.Live() > 4 {
		t.Errorf("live = %d after churn, want a handful", in.Live())
	}
	if b := in.Bytes(); b > 1<<22 {
		t.Errorf("pool footprint %d bytes after churn, want region recycling to bound it", b)
	}
}
