package vc

import "fmt"

// This file implements the stackdepot-style vector-clock interner the
// memory-lean shadow state is built on. FastTrack inflates a variable's
// read state to a full vector clock only when reads are concurrent, but at
// millions of variables even the rare shared-read case dominates memory:
// each inflated variable used to carry its own *VC (header + backing
// slice) plus two map[int32]uint64 provenance tables. In real traces the
// *contents* of those vectors are massively redundant — every element of
// an array scanned by the same reader threads ends up with the same read
// vector — so an immutable, deduplicating pool stores each distinct vector
// once and hands variables a 4-byte handle. The technique is the related
// repo's claimed ~64× saving; llvm's StackDepot and TSan's clock pools use
// the same shape.
//
// Vectors are canonical (trailing zeros trimmed), immutable once interned,
// reference-counted, and stored in append-only uint64 slabs. Releasing the
// last reference recycles both the entry and its slab region through
// power-of-two size-class free lists, so churn (a hot variable's read
// vector stepping through many states) reuses a bounded set of regions
// instead of growing the arena. An Interner is single-owner: the detector
// goroutine that owns the shadow table owns its interner; no locking.

// Ref is a handle to an interned vector clock. The zero Ref is "no
// vector" and is never returned by Intern.
type Ref uint32

// NilRef is the zero handle.
const NilRef Ref = 0

// internSlabWords is the allocation unit of the slab arena. 64K words =
// 512KiB per slab; vectors never span slabs.
const internSlabWords = 1 << 16

// internEntry is the header of one interned vector.
type internEntry struct {
	hash uint64
	off  uint32 // start of the vector's region in slab `slab`
	slab uint32
	n    uint32 // live length (trailing zeros trimmed)
	cap  uint32 // region capacity (power of two)
	refs int32
	next Ref // hash-bucket chain when live; free-list chain when dead
}

// Interner is an immutable, deduplicating, reference-counted vector-clock
// pool. The zero value is not ready; use NewInterner.
type Interner struct {
	entries []internEntry // entries[0] is a sentinel so Ref 0 stays nil
	slabs   [][]uint64
	buckets []Ref // hash table, power-of-two, chained through entry.next
	mask    uint32
	live    int // live entries (distinct vectors currently referenced)

	// freeEntries chains dead entries by region size class (log2 cap), so
	// a released vector's slab region is reused by the next vector that
	// fits the class.
	freeEntries [33]Ref

	// Stats: dedup hits vs fresh allocations, and retired regions reused.
	hits   uint64
	misses uint64
	reuses uint64
}

// NewInterner returns an empty pool.
func NewInterner() *Interner {
	return &Interner{
		entries: make([]internEntry, 1, 64), // entries[0] = sentinel
		buckets: make([]Ref, 64),
		mask:    63,
	}
}

// hashClocks is FNV-1a over the canonical (trimmed) vector words.
func hashClocks(clocks []uint64) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range clocks {
		for i := 0; i < 64; i += 8 {
			h ^= (c >> i) & 0xff
			h *= 1099511628211
		}
	}
	// Mix in the length so [0 1] and [0 1 0...]-style prefixes (already
	// impossible post-trim, but cheap insurance) and the empty vector get
	// distinct buckets.
	h ^= uint64(len(clocks))
	h *= 1099511628211
	return h
}

// trim returns clocks with trailing zeros removed — the canonical form all
// interned vectors use (Get beyond Len is implicitly zero).
func trim(clocks []uint64) []uint64 {
	n := len(clocks)
	for n > 0 && clocks[n-1] == 0 {
		n--
	}
	return clocks[:n]
}

// sizeClass returns the power-of-two capacity (and its log2) covering n
// words. n = 0 shares class 0 with n = 1.
func sizeClass(n uint32) (cap uint32, class int) {
	cap = 1
	for cap < n {
		cap <<= 1
		class++
	}
	return cap, class
}

// InternVC interns v's current contents (see Intern).
func (in *Interner) InternVC(v *VC) Ref { return in.Intern(v.clocks) }

// Intern returns the handle of the canonical copy of clocks, retaining one
// reference: an existing entry's refcount is bumped, or the vector is
// copied into slab storage. The caller's slice is never retained.
func (in *Interner) Intern(clocks []uint64) Ref {
	clocks = trim(clocks)
	h := hashClocks(clocks)
	b := uint32(h) & in.mask
	for r := in.buckets[b]; r != NilRef; r = in.entries[r].next {
		e := &in.entries[r]
		if e.hash != h || int(e.n) != len(clocks) {
			continue
		}
		if in.equal(e, clocks) {
			e.refs++
			in.hits++
			return r
		}
	}
	in.misses++
	return in.insert(h, b, clocks)
}

func (in *Interner) equal(e *internEntry, clocks []uint64) bool {
	region := in.slabs[e.slab][e.off : e.off+e.n]
	for i, c := range region {
		if clocks[i] != c {
			return false
		}
	}
	return true
}

// insert stores a fresh vector, reusing a retired entry + region of the
// right size class when one is free.
func (in *Interner) insert(h uint64, b uint32, clocks []uint64) Ref {
	capWords, class := sizeClass(uint32(len(clocks)))
	var r Ref
	if fr := in.freeEntries[class]; fr != NilRef {
		// Reuse a dead entry and its region.
		in.freeEntries[class] = in.entries[fr].next
		r = fr
		in.reuses++
	} else {
		off, slab := in.alloc(capWords)
		in.entries = append(in.entries, internEntry{off: off, slab: slab, cap: capWords})
		r = Ref(len(in.entries) - 1)
	}
	e := &in.entries[r]
	e.hash = h
	e.n = uint32(len(clocks))
	e.refs = 1
	region := in.slabs[e.slab][e.off : e.off+e.cap]
	copy(region, clocks)
	clear(region[len(clocks):])
	e.next = in.buckets[b]
	in.buckets[b] = r
	in.live++
	if in.live > len(in.buckets)*3/4 {
		in.rehash()
	}
	return r
}

// alloc carves capWords from the current slab, opening a new slab when the
// tail is too small (the remainder is abandoned; with power-of-two sizes
// ≤ slab size the waste is bounded by one max-size region per slab).
func (in *Interner) alloc(capWords uint32) (off, slab uint32) {
	if capWords > internSlabWords {
		// A vector larger than a slab gets a dedicated slab of its size.
		in.slabs = append(in.slabs, make([]uint64, capWords))
		return 0, uint32(len(in.slabs) - 1)
	}
	if len(in.slabs) == 0 {
		in.slabs = append(in.slabs, make([]uint64, 0, internSlabWords))
	}
	cur := len(in.slabs) - 1
	tail := in.slabs[cur]
	if len(tail)+int(capWords) > cap(tail) {
		in.slabs = append(in.slabs, make([]uint64, 0, internSlabWords))
		cur++
		tail = in.slabs[cur]
	}
	off = uint32(len(tail))
	in.slabs[cur] = tail[:len(tail)+int(capWords)]
	return off, uint32(cur)
}

func (in *Interner) rehash() {
	nb := make([]Ref, len(in.buckets)*2)
	mask := uint32(len(nb) - 1)
	// Re-chain every live entry. Dead entries live on the free lists and
	// must not be re-linked, so walk the old buckets, not the entry slice.
	for _, head := range in.buckets {
		for r := head; r != NilRef; {
			e := &in.entries[r]
			next := e.next
			b := uint32(e.hash) & mask
			e.next = nb[b]
			nb[b] = r
			r = next
		}
	}
	in.buckets, in.mask = nb, mask
}

// Retain adds a reference to r. NilRef is a no-op.
func (in *Interner) Retain(r Ref) {
	if r == NilRef {
		return
	}
	in.entries[r].refs++
}

// Release drops a reference to r; the last release unlinks the vector and
// recycles its entry and slab region. NilRef is a no-op.
func (in *Interner) Release(r Ref) {
	if r == NilRef {
		return
	}
	e := &in.entries[r]
	e.refs--
	if e.refs > 0 {
		return
	}
	if e.refs < 0 {
		panic(fmt.Sprintf("vc: Release of dead interned vector %d", r))
	}
	// Unlink from the hash chain.
	b := uint32(e.hash) & in.mask
	p := &in.buckets[b]
	for *p != r {
		p = &in.entries[*p].next
	}
	*p = e.next
	_, class := sizeClass(e.cap)
	e.next = in.freeEntries[class]
	in.freeEntries[class] = r
	in.live--
}

// At returns thread t's clock in the interned vector (0 beyond its
// length, and for NilRef).
func (in *Interner) At(r Ref, t TID) uint64 {
	if r == NilRef {
		return 0
	}
	e := &in.entries[r]
	if uint32(t) >= e.n || t < 0 {
		return 0
	}
	return in.slabs[e.slab][e.off+uint32(t)]
}

// Clocks returns the canonical (trailing-zero-trimmed) contents of r as a
// read-only view into slab storage. The view is valid until r is released;
// callers must not mutate or retain it. NilRef yields nil.
func (in *Interner) Clocks(r Ref) []uint64 {
	if r == NilRef {
		return nil
	}
	e := &in.entries[r]
	return in.slabs[e.slab][e.off : e.off+e.n]
}

// Refs returns r's reference count (0 for NilRef) — test and telemetry
// visibility into sharing.
func (in *Interner) Refs(r Ref) int32 {
	if r == NilRef {
		return 0
	}
	return in.entries[r].refs
}

// WithSet interns the vector equal to r with thread t's entry set to c,
// retaining the result; r itself is unchanged and its reference is NOT
// released (callers that replace r must Release it themselves). scratch is
// reused as the build buffer and returned for the next call, so a steady
// update loop allocates nothing once warm.
func (in *Interner) WithSet(r Ref, t TID, c uint64, scratch []uint64) (Ref, []uint64) {
	cur := in.Clocks(r)
	n := len(cur)
	if int(t)+1 > n {
		n = int(t) + 1
	}
	if cap(scratch) < n {
		scratch = make([]uint64, n)
	}
	scratch = scratch[:n]
	copy(scratch, cur)
	clear(scratch[len(cur):])
	scratch[t] = c
	return in.Intern(scratch), scratch
}

// Len returns the canonical length of r (0 for NilRef).
func (in *Interner) Len(r Ref) int {
	if r == NilRef {
		return 0
	}
	return int(in.entries[r].n)
}

// Live returns the number of distinct vectors currently referenced.
func (in *Interner) Live() int { return in.live }

// Bytes returns the pool's resident slab + header + bucket footprint in
// bytes (capacity, not just live content — what the process actually
// holds).
func (in *Interner) Bytes() uint64 {
	var slabBytes uint64
	for _, s := range in.slabs {
		slabBytes += uint64(cap(s)) * 8
	}
	const entrySize = 32 // internEntry: 8+4+4+4+4+4+4
	return slabBytes + uint64(cap(in.entries))*entrySize + uint64(len(in.buckets))*4
}

// Hits, Misses and Reuses expose the dedup effectiveness counters: Hits
// counts Interns served by an existing vector, Misses fresh insertions,
// Reuses insertions that recycled a released region.
func (in *Interner) Hits() uint64   { return in.hits }
func (in *Interner) Misses() uint64 { return in.misses }
func (in *Interner) Reuses() uint64 { return in.reuses }
