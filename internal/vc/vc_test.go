package vc

import (
	"testing"
	"testing/quick"
)

func TestEpochPacking(t *testing.T) {
	e := MakeEpoch(5, 1234567)
	if e.TID() != 5 || e.Clock() != 1234567 {
		t.Errorf("epoch round trip: tid %d clock %d", e.TID(), e.Clock())
	}
	if NoEpoch.TID() != 0 || NoEpoch.Clock() != 0 {
		t.Error("NoEpoch must be 0@0")
	}
	if e.String() != "1234567@5" {
		t.Errorf("epoch string = %q", e.String())
	}
}

func TestEpochLEQ(t *testing.T) {
	v := New()
	v.Set(3, 10)
	if !MakeEpoch(3, 10).LEQ(v) || !MakeEpoch(3, 5).LEQ(v) {
		t.Error("epoch within clock must be LEQ")
	}
	if MakeEpoch(3, 11).LEQ(v) {
		t.Error("epoch beyond clock must not be LEQ")
	}
	if MakeEpoch(7, 1).LEQ(v) {
		t.Error("epoch of unseen thread with nonzero clock must not be LEQ")
	}
}

func TestTickSetGet(t *testing.T) {
	v := New()
	if v.Get(9) != 0 {
		t.Error("unset clock must be 0")
	}
	if v.Tick(2) != 1 || v.Tick(2) != 2 {
		t.Error("tick must increment")
	}
	v.Set(0, 7)
	if v.Get(0) != 7 || v.Get(2) != 2 {
		t.Error("set/get wrong")
	}
}

func TestJoinIsPointwiseMax(t *testing.T) {
	a, b := New(), New()
	a.Set(0, 5)
	a.Set(1, 1)
	b.Set(1, 9)
	b.Set(2, 3)
	a.Join(b)
	for i, want := range []uint64{5, 9, 3} {
		if a.Get(TID(i)) != want {
			t.Errorf("joined[%d] = %d, want %d", i, a.Get(TID(i)), want)
		}
	}
	// b unchanged.
	if b.Get(0) != 0 || b.Get(1) != 9 {
		t.Error("join mutated its argument")
	}
}

func TestCopyAssignIndependence(t *testing.T) {
	a := New()
	a.Set(1, 4)
	c := a.Copy()
	a.Tick(1)
	if c.Get(1) != 4 {
		t.Error("copy not independent")
	}
	d := New()
	d.Set(0, 99)
	d.Assign(c)
	if d.Get(0) != 0 || d.Get(1) != 4 {
		t.Errorf("assign wrong: %v", d)
	}
}

func TestVCLEQ(t *testing.T) {
	a, b := New(), New()
	a.Set(0, 1)
	b.Set(0, 2)
	b.Set(1, 1)
	if !a.LEQ(b) {
		t.Error("a must be LEQ b")
	}
	if b.LEQ(a) {
		t.Error("b must not be LEQ a")
	}
	if !New().LEQ(a) {
		t.Error("bottom must be LEQ everything")
	}
}

func TestEpochOfAndString(t *testing.T) {
	v := New()
	v.Set(2, 8)
	if e := v.EpochOf(2); e.TID() != 2 || e.Clock() != 8 {
		t.Error("EpochOf wrong")
	}
	if v.String() != "[0 0 8]" {
		t.Errorf("String = %q", v.String())
	}
}

// Property: join is commutative and idempotent in effect.
func TestQuickJoinProperties(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a1, b1 := New(), New()
		for i, x := range xs {
			a1.Set(TID(i), uint64(x))
		}
		for i, y := range ys {
			b1.Set(TID(i), uint64(y))
		}
		a2, b2 := b1.Copy(), a1.Copy()
		a1.Join(b1) // a ⊔ b
		a2.Join(b2) // b ⊔ a
		n := len(xs)
		if len(ys) > n {
			n = len(ys)
		}
		for i := 0; i < n; i++ {
			if a1.Get(TID(i)) != a2.Get(TID(i)) {
				return false
			}
		}
		// Idempotent: joining again changes nothing.
		before := a1.String()
		a1.Join(b1)
		return a1.String() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMakeEpochRejectsOutOfRangeTID(t *testing.T) {
	// The 16-bit TID field used to truncate silently: TID 65536 aliased
	// TID 0's clock, TID -1 scrambled the whole word. Both must panic now.
	for _, tid := range []TID{MaxTID + 1, -1, 1 << 20} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MakeEpoch(%d, 1) must panic", tid)
				}
			}()
			MakeEpoch(tid, 1)
		}()
	}
	// Boundary TIDs round-trip exactly.
	for _, tid := range []TID{0, 1, MaxTID} {
		if e := MakeEpoch(tid, 7); e.TID() != tid || e.Clock() != 7 {
			t.Errorf("MakeEpoch(%d, 7) round trip: got %d@%d", tid, e.Clock(), e.TID())
		}
	}
}

func TestEpochClockSaturates(t *testing.T) {
	// A clock beyond 48 bits must saturate at MaxClock, not wrap into the
	// TID field or alias a small clock.
	e := MakeEpoch(3, MaxClock+5)
	if e.Clock() != MaxClock {
		t.Errorf("clock = %d, want saturation at %d", e.Clock(), MaxClock)
	}
	if e.TID() != 3 {
		t.Errorf("saturating clock corrupted TID: got %d", e.TID())
	}
	// Saturation is monotone: the saturated epoch still orders correctly
	// against any representable vector entry.
	v := New()
	v.Set(3, MaxClock)
	if !e.LEQ(v) {
		t.Error("saturated epoch must be LEQ a vector at MaxClock")
	}
	v.Set(3, MaxClock-1)
	if e.LEQ(v) {
		t.Error("saturated epoch must not be LEQ a smaller clock")
	}
	if MakeEpoch(2, MaxClock).Clock() != MaxClock {
		t.Error("MaxClock itself must be representable")
	}
}

func TestGrowSingleAppend(t *testing.T) {
	// grow used to append one zero per iteration — O(n) appends and about
	// a dozen reallocations for one Set of a high TID. A single Set must
	// cost at most the backing array plus the append-make temporary (the
	// temporary only materialises under -race, which disables the
	// append(s, make(...)...) optimisation).
	v := New()
	allocs := testing.AllocsPerRun(100, func() {
		v.clocks = nil
		v.Set(4095, 1)
	})
	if allocs > 2 {
		t.Errorf("Set(4095) cost %.1f allocs, want ≤ 2", allocs)
	}
	// Correctness at the boundary: only the target entry is nonzero.
	v = New()
	v.Set(1000, 9)
	if v.Len() != 1001 || v.Get(1000) != 9 || v.Get(999) != 0 {
		t.Errorf("grow result wrong: len %d", v.Len())
	}
}

func TestGrowZeroesReexposedCapacity(t *testing.T) {
	// Assign shrinks len without clearing the backing array; growing back
	// into that region must see zeros, not stale clocks.
	v := New()
	v.Set(10, 42) // len 11
	small := New()
	small.Set(0, 1)
	v.Assign(small) // len 1, stale 42 at index 10 in spare capacity
	v.Set(20, 5)    // re-extends through index 10
	if got := v.Get(10); got != 0 {
		t.Errorf("re-exposed entry = %d, want 0 (stale clock leaked)", got)
	}
}
