// Package vc provides the vector clocks and epochs used by the FastTrack
// happens-before race detector (Flanagan & Freund, PLDI 2009), which
// ProRace runs over its extended memory trace (paper §4.3, §3).
//
// An Epoch c@t is a scalar clock value paired with the thread that owns it;
// FastTrack's insight is that most variables' access histories are totally
// ordered and representable by a single epoch instead of a full vector.
package vc

import (
	"fmt"
	"strings"
)

// TID indexes threads in clocks. Kept as int32 to match the trace format.
type TID = int32

// Epoch packs a thread ID and a clock value: the high 16 bits hold the
// thread, the low 48 bits the clock.
type Epoch uint64

// NoEpoch is the zero epoch: clock 0 of thread 0, FastTrack's ⊥e.
const NoEpoch Epoch = 0

const clockBits = 48
const clockMask = (1 << clockBits) - 1

// MakeEpoch builds c@t.
func MakeEpoch(t TID, c uint64) Epoch {
	return Epoch(uint64(uint16(t))<<clockBits | (c & clockMask))
}

// TID returns the owning thread.
func (e Epoch) TID() TID { return TID(uint64(e) >> clockBits) }

// Clock returns the scalar clock.
func (e Epoch) Clock() uint64 { return uint64(e) & clockMask }

// LEQ reports e ≤ v: the epoch's clock does not exceed the vector's entry
// for the epoch's thread. This is FastTrack's O(1) happens-before test.
func (e Epoch) LEQ(v *VC) bool { return e.Clock() <= v.Get(e.TID()) }

// String renders c@t.
func (e Epoch) String() string { return fmt.Sprintf("%d@%d", e.Clock(), e.TID()) }

// VC is a grow-on-demand vector clock.
type VC struct {
	clocks []uint64
}

// New returns an empty vector clock (all zeros).
func New() *VC { return &VC{} }

// Get returns the clock of thread t.
func (v *VC) Get(t TID) uint64 {
	if int(t) < len(v.clocks) {
		return v.clocks[t]
	}
	return 0
}

// Set assigns the clock of thread t.
func (v *VC) Set(t TID, c uint64) {
	v.grow(int(t) + 1)
	v.clocks[t] = c
}

// Tick increments thread t's own entry and returns the new value.
func (v *VC) Tick(t TID) uint64 {
	v.grow(int(t) + 1)
	v.clocks[t]++
	return v.clocks[t]
}

func (v *VC) grow(n int) {
	for len(v.clocks) < n {
		v.clocks = append(v.clocks, 0)
	}
}

// Join merges other into v (pointwise max) — the release/acquire edge.
func (v *VC) Join(other *VC) {
	v.grow(len(other.clocks))
	for i, c := range other.clocks {
		if c > v.clocks[i] {
			v.clocks[i] = c
		}
	}
}

// Copy returns an independent copy.
func (v *VC) Copy() *VC {
	return &VC{clocks: append([]uint64(nil), v.clocks...)}
}

// Assign overwrites v with other's contents.
func (v *VC) Assign(other *VC) {
	v.clocks = append(v.clocks[:0], other.clocks...)
}

// LEQ reports whether v happens-before-or-equals other pointwise.
func (v *VC) LEQ(other *VC) bool {
	for i, c := range v.clocks {
		if c > other.Get(TID(i)) {
			return false
		}
	}
	return true
}

// EpochOf returns thread t's current epoch in v.
func (v *VC) EpochOf(t TID) Epoch { return MakeEpoch(t, v.Get(t)) }

// String renders the vector, e.g. "[3 0 7]".
func (v *VC) String() string {
	parts := make([]string, len(v.clocks))
	for i, c := range v.clocks {
		parts[i] = fmt.Sprintf("%d", c)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
