// Package vc provides the vector clocks and epochs used by the FastTrack
// happens-before race detector (Flanagan & Freund, PLDI 2009), which
// ProRace runs over its extended memory trace (paper §4.3, §3).
//
// An Epoch c@t is a scalar clock value paired with the thread that owns it;
// FastTrack's insight is that most variables' access histories are totally
// ordered and representable by a single epoch instead of a full vector.
package vc

import (
	"fmt"
	"strings"
)

// TID indexes threads in clocks. Kept as int32 to match the trace format.
type TID = int32

// Epoch packs a thread ID and a clock value: the high 16 bits hold the
// thread, the low 48 bits the clock.
type Epoch uint64

// NoEpoch is the zero epoch: clock 0 of thread 0, FastTrack's ⊥e.
const NoEpoch Epoch = 0

const clockBits = 48
const clockMask = (1 << clockBits) - 1

// MaxTID is the largest thread ID an Epoch can carry: the packing gives the
// thread the high 16 bits. The analysis layer screens trace TIDs far below
// this (core.sanitizeTrace), so a larger value here is an invariant
// violation, never expected data.
const MaxTID TID = 1<<16 - 1

// MaxClock is the largest clock value an Epoch can carry (48 bits). Clocks
// at or beyond it saturate rather than alias a smaller value.
const MaxClock uint64 = clockMask

// TIDInRange reports whether t fits the Epoch packing.
func TIDInRange(t TID) bool { return t >= 0 && t <= MaxTID }

// MakeEpoch builds c@t. Thread IDs outside [0, MaxTID] would silently alias
// another thread's clock through the 16-bit packing — a soundness hole that
// once truncated int32 TIDs through uint16 — so they panic instead; callers
// obtain TIDs from sanitized traces, which bound them far below MaxTID.
// Clock values beyond the 48-bit field saturate at MaxClock (monotone, so a
// saturated epoch still orders correctly against any live clock) instead of
// wrapping into a smaller clock.
func MakeEpoch(t TID, c uint64) Epoch {
	if !TIDInRange(t) {
		panic(fmt.Sprintf("vc: thread id %d outside the Epoch packing range [0, %d]", t, MaxTID))
	}
	if c > clockMask {
		c = clockMask
	}
	return Epoch(uint64(t)<<clockBits | c)
}

// TID returns the owning thread.
func (e Epoch) TID() TID { return TID(uint64(e) >> clockBits) }

// Clock returns the scalar clock.
func (e Epoch) Clock() uint64 { return uint64(e) & clockMask }

// LEQ reports e ≤ v: the epoch's clock does not exceed the vector's entry
// for the epoch's thread. This is FastTrack's O(1) happens-before test.
func (e Epoch) LEQ(v *VC) bool { return e.Clock() <= v.Get(e.TID()) }

// String renders c@t.
func (e Epoch) String() string { return fmt.Sprintf("%d@%d", e.Clock(), e.TID()) }

// VC is a grow-on-demand vector clock.
type VC struct {
	clocks []uint64
}

// New returns an empty vector clock (all zeros).
func New() *VC { return &VC{} }

// Get returns the clock of thread t.
func (v *VC) Get(t TID) uint64 {
	if int(t) < len(v.clocks) {
		return v.clocks[t]
	}
	return 0
}

// Set assigns the clock of thread t.
func (v *VC) Set(t TID, c uint64) {
	v.grow(int(t) + 1)
	v.clocks[t] = c
}

// Tick increments thread t's own entry and returns the new value.
func (v *VC) Tick(t TID) uint64 {
	v.grow(int(t) + 1)
	v.clocks[t]++
	return v.clocks[t]
}

func (v *VC) grow(n int) {
	if n <= len(v.clocks) {
		return
	}
	if n <= cap(v.clocks) {
		// Assign can shrink len below a previously used region; zero what
		// re-extending exposes.
		old := len(v.clocks)
		v.clocks = v.clocks[:n]
		clear(v.clocks[old:])
		return
	}
	// One append reserves the full target (plus append's usual headroom)
	// instead of re-appending element by element.
	v.clocks = append(v.clocks, make([]uint64, n-len(v.clocks))...)
}

// Join merges other into v (pointwise max) — the release/acquire edge.
func (v *VC) Join(other *VC) {
	v.grow(len(other.clocks))
	for i, c := range other.clocks {
		if c > v.clocks[i] {
			v.clocks[i] = c
		}
	}
}

// Copy returns an independent copy.
func (v *VC) Copy() *VC {
	return &VC{clocks: append([]uint64(nil), v.clocks...)}
}

// Assign overwrites v with other's contents.
func (v *VC) Assign(other *VC) {
	v.clocks = append(v.clocks[:0], other.clocks...)
}

// LEQ reports whether v happens-before-or-equals other pointwise.
func (v *VC) LEQ(other *VC) bool {
	for i, c := range v.clocks {
		if c > other.Get(TID(i)) {
			return false
		}
	}
	return true
}

// Len returns the number of tracked thread entries; entries at or beyond
// Len are implicitly zero.
func (v *VC) Len() int { return len(v.clocks) }

// EpochOf returns thread t's current epoch in v.
func (v *VC) EpochOf(t TID) Epoch { return MakeEpoch(t, v.Get(t)) }

// String renders the vector, e.g. "[3 0 7]".
func (v *VC) String() string {
	parts := make([]string, len(v.clocks))
	for i, c := range v.clocks {
		parts[i] = fmt.Sprintf("%d", c)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
