package synthesis

import (
	"sync"
	"sync/atomic"

	"prorace/internal/prog"
)

// Cache memoizes per-trace synthesis results — the decoded PT paths with
// their pinned samples, sync records and TSC anchors — keyed by program
// identity, trace content fingerprint and synthesis options. Decode and
// synthesis are the expensive front of the offline pipeline (the paper's
// Figure 12 puts decode at a third of the analysis cost), and they are
// pure: the same (program, trace bytes, options) always synthesises the
// same ThreadTraces. Re-analyses of one trace — §5.1 regeneration rounds,
// worker/shard sweeps, repeated experiments — therefore reuse the first
// decode instead of repeating it.
//
// Entries are shared: a cached ThreadTrace map must be treated as
// immutable by every consumer. The replay and detection stages already
// honour that (they only read Path/Samples/Sync and call EstimateTSC,
// which is a binary search over prebuilt anchors), so a hit can be handed
// to concurrent analyses safely.
//
// The cache is a small LRU bounded by entry count, not bytes: decoded
// paths dwarf every other per-entry cost, and the workloads that benefit
// re-analyse a handful of traces, not thousands.
type Cache struct {
	mu      sync.Mutex
	cap     int
	entries map[CacheKey]*cacheEntry
	// use orders entries for LRU eviction; the newest use is the largest.
	tick uint64

	hits   atomic.Uint64
	misses atomic.Uint64
}

// CacheKey identifies one synthesis result. Prog is compared by pointer:
// workload programs are built once and shared, and a false miss merely
// costs a re-decode.
type CacheKey struct {
	Prog        *prog.Program
	Fingerprint uint64
	Opts        Options
}

type cacheEntry struct {
	tts  map[int32]*ThreadTrace
	used uint64
}

// DefaultCacheCapacity bounds the shared default cache used by the
// analysis pipeline.
const DefaultCacheCapacity = 4

// NewCache returns a cache bounded to capacity entries (minimum 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{cap: capacity, entries: map[CacheKey]*cacheEntry{}}
}

// Get returns the cached synthesis for key, if present. The returned map
// and its ThreadTraces are shared and must not be mutated.
func (c *Cache) Get(key CacheKey) (map[int32]*ThreadTrace, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.tick++
	e.used = c.tick
	c.hits.Add(1)
	return e.tts, true
}

// Put stores a synthesis result, evicting the least recently used entry
// when full. Callers hand over ownership: the map must not be mutated
// after Put.
func (c *Cache) Put(key CacheKey, tts map[int32]*ThreadTrace) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.tick++
		e.tts, e.used = tts, c.tick
		return
	}
	for len(c.entries) >= c.cap {
		var oldest CacheKey
		var oldestUse uint64
		first := true
		for k, e := range c.entries {
			if first || e.used < oldestUse {
				oldest, oldestUse, first = k, e.used, false
			}
		}
		delete(c.entries, oldest)
	}
	c.tick++
	c.entries[key] = &cacheEntry{tts: tts, used: c.tick}
}

// Len returns the number of cached traces.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Hits and Misses report lookup counters, for tests and diagnostics.
func (c *Cache) Hits() uint64   { return c.hits.Load() }
func (c *Cache) Misses() uint64 { return c.misses.Load() }
