package synthesis

import (
	"testing"

	"prorace/internal/asm"
	"prorace/internal/isa"
	"prorace/internal/machine"
	"prorace/internal/pmu/driver"
	"prorace/internal/prog"
	"prorace/internal/tracefmt"
)

// syncHeavyProgram: two workers increment a locked counter; main also
// mallocs and frees.
func syncHeavyProgram() *prog.Program {
	b := asm.New("synth")
	b.Global("lk", 8)
	b.Global("counter", 8)
	m := b.Func("main")
	m.MovI(isa.R0, 128)
	m.Syscall(isa.SysMalloc)
	m.Mov(isa.R9, isa.R0)
	for i := int64(0); i < 2; i++ {
		m.MovI(isa.R4, i)
		m.SpawnThread("worker", isa.R4)
		m.Mov(isa.Reg(10+i), isa.R0)
	}
	for i := int64(0); i < 2; i++ {
		m.Join(isa.Reg(10 + i))
	}
	m.Mov(isa.R0, isa.R9)
	m.Syscall(isa.SysFree)
	m.Exit(0)
	w := b.Func("worker")
	w.MovI(isa.R3, 25)
	w.Label("loop")
	w.Lock("lk")
	w.Load(isa.R1, asm.Global("counter", 0))
	w.AddI(isa.R1, 1)
	w.Store(asm.Global("counter", 0), isa.R1)
	w.Unlock("lk")
	w.SubI(isa.R3, 1)
	w.CmpI(isa.R3, 0)
	w.Jgt("loop")
	w.Exit(0)
	return mustBuild(b)
}

func synthesize(t *testing.T, p *prog.Program, period uint64, seed int64) (map[int32]*ThreadTrace, *tracefmt.Trace) {
	t.Helper()
	mac := machine.New(p, machine.Config{Seed: seed})
	d := driver.New(mac, driver.Options{Kind: driver.ProRace, Period: period, Seed: seed, EnablePT: true})
	mac.SetTracer(d)
	if _, err := mac.Run(); err != nil {
		t.Fatal(err)
	}
	tr := d.Finish()
	tts, err := Synthesize(p, tr)
	if err != nil {
		t.Fatal(err)
	}
	return tts, tr
}

func TestSamplesPinnedExactly(t *testing.T) {
	p := syncHeavyProgram()
	tts, tr := synthesize(t, p, 13, 5)
	total, pinned := 0, 0
	for tid, tt := range tts {
		total += len(tr.PEBS[tid])
		pinned += len(tt.Samples)
		for _, s := range tt.Samples {
			if tt.Path.PCs[s.StepIndex] != s.Rec.IP {
				t.Fatalf("tid %d: sample pinned to step %d whose pc %#x != sample IP %#x",
					tid, s.StepIndex, tt.Path.PCs[s.StepIndex], s.Rec.IP)
			}
			in := p.MustInstAt(s.Rec.IP)
			if !in.IsMemAccess() {
				t.Fatalf("pinned sample at non-memory instruction %v", in)
			}
		}
		// Samples ascend by step index.
		for i := 1; i < len(tt.Samples); i++ {
			if tt.Samples[i].StepIndex < tt.Samples[i-1].StepIndex {
				t.Fatal("samples not ordered by step index")
			}
		}
	}
	if total == 0 {
		t.Fatal("no samples collected")
	}
	if pinned != total {
		t.Errorf("pinned %d of %d samples; expected all with PMI markers", pinned, total)
	}
}

func TestSyncRecordsZipWithPath(t *testing.T) {
	p := syncHeavyProgram()
	tts, _ := synthesize(t, p, 1000, 6)
	for tid, tt := range tts {
		for _, ss := range tt.Sync {
			switch ss.Rec.Kind {
			case tracefmt.SyncThreadBegin, tracefmt.SyncThreadExit:
				if ss.StepIndex != -1 {
					t.Errorf("tid %d: lifecycle record pinned to a step", tid)
				}
				continue
			}
			if ss.StepIndex < 0 {
				t.Errorf("tid %d: %v record not pinned", tid, ss.Rec.Kind)
				continue
			}
			in := p.MustInstAt(tt.Path.PCs[ss.StepIndex])
			if in.Op != isa.SYSCALL {
				t.Errorf("tid %d: %v pinned to non-syscall %v", tid, ss.Rec.Kind, in)
			}
			k, ok := syncKindOf(in.Sys)
			if !ok || k != ss.Rec.Kind {
				t.Errorf("tid %d: record kind %v pinned to syscall %v", tid, ss.Rec.Kind, in.Sys)
			}
		}
	}
	// Worker threads must have lock/unlock pairs pinned.
	w := tts[1]
	locks := 0
	for _, ss := range w.Sync {
		if ss.Rec.Kind == tracefmt.SyncLock && ss.StepIndex >= 0 {
			locks++
		}
	}
	if locks != 25 {
		t.Errorf("worker pinned %d lock records, want 25", locks)
	}
}

func TestEstimateTSCMonotoneAndAnchored(t *testing.T) {
	p := syncHeavyProgram()
	tts, _ := synthesize(t, p, 13, 7)
	tt := tts[1]
	if len(tt.Samples) < 2 {
		t.Skip("need at least two samples")
	}
	// At an anchor, the estimate equals the anchor TSC.
	s0 := tt.Samples[0]
	if got := tt.EstimateTSC(s0.StepIndex); got != s0.Rec.TSC {
		t.Errorf("estimate at sample step = %d, want %d", got, s0.Rec.TSC)
	}
	// Estimates are monotone over steps.
	last := uint64(0)
	for step := 0; step < tt.Path.Len(); step += 7 {
		est := tt.EstimateTSC(step)
		if est < last {
			t.Fatalf("TSC estimate decreased at step %d: %d < %d", step, est, last)
		}
		last = est
	}
}

func TestEstimateTSCNoAnchors(t *testing.T) {
	tt := &ThreadTrace{}
	if tt.EstimateTSC(5) != 0 {
		t.Error("no anchors must yield 0")
	}
}

func TestSynthesizeWithoutPT(t *testing.T) {
	// A vanilla (RaceZ-style) trace has no PT streams: synthesis must
	// still succeed, with all samples unpinned.
	p := syncHeavyProgram()
	mac := machine.New(p, machine.Config{Seed: 8})
	d := driver.New(mac, driver.Options{Kind: driver.Vanilla, Period: 50, Seed: 8, EnablePT: false})
	mac.SetTracer(d)
	if _, err := mac.Run(); err != nil {
		t.Fatal(err)
	}
	tr := d.Finish()
	tts, err := Synthesize(p, tr)
	if err != nil {
		t.Fatal(err)
	}
	unpinned, pinned := 0, 0
	for _, tt := range tts {
		unpinned += len(tt.UnpinnedSamples)
		pinned += len(tt.Samples)
	}
	if pinned != 0 {
		t.Errorf("pinned %d samples without PT", pinned)
	}
	if unpinned == 0 {
		t.Error("expected unpinned samples from the PEBS-only trace")
	}
}

// mustBuild finalises a test program; the inputs are static, so a build
// error means the test itself is broken.
func mustBuild(b *asm.Builder) *prog.Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
