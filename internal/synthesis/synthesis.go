// Package synthesis implements the offline "Decode & Synthesis" stage of
// the paper's Figure 1: it combines the PEBS sample stream, the decoded PT
// path, and the synchronization log of each thread into one
// time-synchronised view, using the shared invariant TSC (paper §4.2-4.3).
//
// Concretely it:
//
//   - pins every PEBS sample to its exact step index on the decoded path,
//     using the PMI-synchronised TSC markers the driver injected;
//   - pins every synchronization record to its SYSCALL step on the path
//     (both are in program order, so they zip);
//   - builds a per-thread piecewise-linear TSC estimate over step indices,
//     anchored at samples, markers and sync records, so reconstructed
//     accesses can be given approximate timestamps for reporting.
package synthesis

import (
	"fmt"
	"sort"

	"prorace/internal/isa"
	"prorace/internal/prog"
	"prorace/internal/ptdecode"
	"prorace/internal/tracefmt"
)

// Sample is a PEBS record pinned onto the decoded path.
type Sample struct {
	Rec tracefmt.PEBSRecord
	// StepIndex is the position of the sampled instruction on the path.
	StepIndex int
}

// SyncStep is a synchronization record pinned onto the decoded path.
type SyncStep struct {
	Rec tracefmt.SyncRecord
	// StepIndex is the position of the SYSCALL instruction on the path;
	// -1 for records with no path step (thread begin/exit).
	StepIndex int
}

// ThreadTrace is one thread's synthesised view.
type ThreadTrace struct {
	TID  int32
	Path *ptdecode.Path
	// Samples are the pinned PEBS records, ascending by StepIndex.
	Samples []Sample
	// Sync are the thread's synchronization records, pinned where
	// possible, in TSC order.
	Sync []SyncStep
	// UnpinnedSamples counts PEBS records that could not be located on the
	// path (decoder truncation, marker loss); they are still usable as
	// bare samples.
	UnpinnedSamples []tracefmt.PEBSRecord

	anchors []anchor // for TSC estimation, ascending StepIndex
}

// Anchors reports how many TSC anchors the synthesis built for this
// thread — the prorace_synthesis_anchors_total telemetry series.
func (tt *ThreadTrace) Anchors() int { return len(tt.anchors) }

type anchor struct {
	step int
	tsc  uint64
}

// syncKindOf maps a syscall on the path to the sync-record kind it logs,
// mirroring internal/synctrace. ok is false for untraced syscalls.
func syncKindOf(s isa.Sys) (tracefmt.SyncKind, bool) {
	switch s {
	case isa.SysLock:
		return tracefmt.SyncLock, true
	case isa.SysUnlock:
		return tracefmt.SyncUnlock, true
	case isa.SysCondWait:
		return tracefmt.SyncCondWait, true
	case isa.SysCondSignal:
		return tracefmt.SyncCondSignal, true
	case isa.SysCondBroadcast:
		return tracefmt.SyncCondBroadcast, true
	case isa.SysBarrier:
		return tracefmt.SyncBarrier, true
	case isa.SysThreadCreate:
		return tracefmt.SyncThreadCreate, true
	case isa.SysThreadJoin:
		return tracefmt.SyncThreadJoin, true
	case isa.SysMalloc:
		return tracefmt.SyncMalloc, true
	case isa.SysFree:
		return tracefmt.SyncFree, true
	}
	return 0, false
}

// Options configures synthesis.
type Options struct {
	// Lenient decodes PT streams with gap recovery (ptdecode.Options
	// Lenient) instead of failing the thread at the first corrupt packet.
	Lenient bool
	// MaxSteps bounds each thread's decode (0 means the decoder default).
	MaxSteps int
}

// Synthesize combines a trace's components per thread.
func Synthesize(p *prog.Program, tr *tracefmt.Trace) (map[int32]*ThreadTrace, error) {
	return SynthesizeWith(p, tr, Options{})
}

// SynthesizeWith is Synthesize with explicit options.
func SynthesizeWith(p *prog.Program, tr *tracefmt.Trace, opts Options) (map[int32]*ThreadTrace, error) {
	out := map[int32]*ThreadTrace{}
	for _, tid := range tr.TIDs() {
		tt, err := SynthesizeThreadWith(p, tr, tid, opts)
		if err != nil {
			return nil, err
		}
		out[tid] = tt
	}
	return out, nil
}

// SynthesizeThread synthesises one thread's view: decode its PT stream,
// pin its samples and sync records, build TSC anchors. Threads are
// independent, so callers may run this concurrently per thread — the
// parallelisation opportunity §7.6 describes.
func SynthesizeThread(p *prog.Program, tr *tracefmt.Trace, tid int32) (*ThreadTrace, error) {
	return SynthesizeThreadWith(p, tr, tid, Options{})
}

// SynthesizeThreadWith is SynthesizeThread with explicit options.
func SynthesizeThreadWith(p *prog.Program, tr *tracefmt.Trace, tid int32, opts Options) (*ThreadTrace, error) {
	tt := &ThreadTrace{TID: tid}
	if stream, ok := tr.PT[tid]; ok {
		path, err := ptdecode.DecodeWith(p, tid, stream, ptdecode.Options{
			MaxSteps: opts.MaxSteps, Lenient: opts.Lenient,
		})
		if err != nil {
			return nil, fmt.Errorf("synthesis: tid %d: %w", tid, err)
		}
		tt.Path = path
	} else {
		tt.Path = &ptdecode.Path{TID: tid}
	}
	var syncRecs []tracefmt.SyncRecord
	for _, rec := range tr.Sync {
		if rec.TID == tid {
			syncRecs = append(syncRecs, rec)
		}
	}
	pinSamples(p, tt, tr.PEBS[tid])
	pinSync(p, tt, syncRecs)
	buildAnchors(tt)
	return tt, nil
}

// pinSamples locates each PEBS record on the path via its marker.
func pinSamples(p *prog.Program, tt *ThreadTrace, recs []tracefmt.PEBSRecord) {
	markers := tt.Path.Markers
	mi := 0
	for _, rec := range recs {
		// Markers and samples are both in TSC order; advance to the first
		// marker at this TSC.
		for mi < len(markers) && markers[mi].TSC < rec.TSC {
			mi++
		}
		pinned := false
		for j := mi; j < len(markers) && markers[j].TSC == rec.TSC; j++ {
			if idx, ok := scanBack(p, tt.Path, markers[j].StepIndex, rec.IP); ok {
				tt.Samples = append(tt.Samples, Sample{Rec: rec, StepIndex: idx})
				pinned = true
				break
			}
		}
		if !pinned {
			tt.UnpinnedSamples = append(tt.UnpinnedSamples, rec)
		}
	}
	sort.SliceStable(tt.Samples, func(i, j int) bool {
		return tt.Samples[i].StepIndex < tt.Samples[j].StepIndex
	})
}

// scanBack searches the straight-line run ending at stepIndex for the
// sampled IP. Within a run each PC occurs at most once, so the result is
// exact.
func scanBack(p *prog.Program, path *ptdecode.Path, stepIndex int, ip uint64) (int, bool) {
	hi := stepIndex - 1
	if hi >= len(path.PCs) {
		hi = len(path.PCs) - 1
	}
	for i := hi; i >= 0; i-- {
		if path.PCs[i] == ip {
			return i, true
		}
		if i < hi {
			in, ok := p.InstAt(path.PCs[i])
			if !ok || in.IsBranch() {
				break
			}
		}
	}
	return 0, false
}

// pinSync zips the thread's sync records with the path's traced syscall
// steps (both are in program order).
func pinSync(p *prog.Program, tt *ThreadTrace, recs []tracefmt.SyncRecord) {
	// Collect path indices of sync syscalls with their kinds.
	type pathSys struct {
		idx  int
		kind tracefmt.SyncKind
	}
	var steps []pathSys
	for i, pc := range tt.Path.PCs {
		in, ok := p.InstAt(pc)
		if !ok || in.Op != isa.SYSCALL {
			continue
		}
		if k, traced := syncKindOf(in.Sys); traced {
			steps = append(steps, pathSys{idx: i, kind: k})
		}
	}
	si := 0
	for _, rec := range recs {
		ss := SyncStep{Rec: rec, StepIndex: -1}
		switch rec.Kind {
		case tracefmt.SyncThreadBegin, tracefmt.SyncThreadExit:
			// No syscall step.
		default:
			if si < len(steps) && steps[si].kind == rec.Kind {
				ss.StepIndex = steps[si].idx
				si++
			}
		}
		tt.Sync = append(tt.Sync, ss)
	}
}

// buildAnchors collects (step, tsc) anchor points for TSC estimation.
//
// Pinned samples and sync records are exact: both the step and the TSC
// belong to the same retired instruction, so within a thread they are
// automatically monotone (path order is time order). PMI markers are not:
// a marker carries the TSC of the *sampled* instruction but sits at the
// *PMI delivery* step a few instructions later (skid), so when a sync
// syscall retires inside the skid window the marker claims an earlier TSC
// at a later step. Such an anchor would let EstimateTSC place an access
// before the thread's own preceding release and invert the merge order, so
// markers are admitted only when consistent with the exact anchors around
// them.
func buildAnchors(tt *ThreadTrace) {
	var exact []anchor
	for _, s := range tt.Samples {
		exact = append(exact, anchor{step: s.StepIndex, tsc: s.Rec.TSC})
	}
	for _, s := range tt.Sync {
		if s.StepIndex >= 0 {
			exact = append(exact, anchor{step: s.StepIndex, tsc: s.Rec.TSC})
		}
	}
	sort.Slice(exact, func(i, j int) bool {
		if exact[i].step != exact[j].step {
			return exact[i].step < exact[j].step
		}
		return exact[i].tsc < exact[j].tsc
	})
	tt.anchors = exact
	for _, m := range tt.Path.Markers {
		cand := anchor{step: m.StepIndex, tsc: m.TSC}
		if markerConsistent(exact, cand) {
			tt.anchors = append(tt.anchors, cand)
		}
	}
	sort.Slice(tt.anchors, func(i, j int) bool {
		if tt.anchors[i].step != tt.anchors[j].step {
			return tt.anchors[i].step < tt.anchors[j].step
		}
		return tt.anchors[i].tsc < tt.anchors[j].tsc
	})
}

// markerConsistent reports whether a marker anchor fits monotonically
// between the exact anchors bracketing its step.
func markerConsistent(exact []anchor, cand anchor) bool {
	i := sort.Search(len(exact), func(k int) bool { return exact[k].step >= cand.step })
	if i > 0 && exact[i-1].tsc > cand.tsc {
		return false
	}
	if i < len(exact) && cand.tsc > exact[i].tsc {
		return false
	}
	return true
}

// EstimateTSC returns an approximate TSC for a path step, interpolating
// between the nearest anchors. Reconstructed (unsampled) accesses get their
// report timestamps from this.
func (tt *ThreadTrace) EstimateTSC(step int) uint64 {
	a := tt.anchors
	if len(a) == 0 {
		return 0
	}
	i := sort.Search(len(a), func(k int) bool { return a[k].step >= step })
	switch {
	case i == 0:
		d := a[0].step - step
		if uint64(d) > a[0].tsc {
			return 0
		}
		return a[0].tsc - uint64(d)
	case i == len(a):
		return a[len(a)-1].tsc + uint64(step-a[len(a)-1].step)
	default:
		lo, hi := a[i-1], a[i]
		if hi.step == lo.step || hi.tsc <= lo.tsc {
			return lo.tsc
		}
		frac := float64(step-lo.step) / float64(hi.step-lo.step)
		return lo.tsc + uint64(frac*float64(hi.tsc-lo.tsc))
	}
}
