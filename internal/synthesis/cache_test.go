package synthesis

import (
	"fmt"
	"testing"
)

func cacheKey(fp uint64) CacheKey {
	return CacheKey{Fingerprint: fp, Opts: Options{Lenient: true}}
}

func TestCacheGetPutIdentity(t *testing.T) {
	c := NewCache(2)
	tts := map[int32]*ThreadTrace{1: {TID: 1}, 2: {TID: 2}}
	key := cacheKey(42)

	if _, ok := c.Get(key); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put(key, tts)
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("stored entry missed")
	}
	// The cached entry must be the same shared object, not a copy: hits
	// hand out the original synthesis result.
	if len(got) != 2 || got[1] != tts[1] || got[2] != tts[2] {
		t.Fatal("hit returned a different object than was stored")
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("counters: hits=%d misses=%d, want 1/1", c.Hits(), c.Misses())
	}
}

func TestCacheKeyDiscriminates(t *testing.T) {
	c := NewCache(4)
	c.Put(cacheKey(1), map[int32]*ThreadTrace{})
	if _, ok := c.Get(cacheKey(2)); ok {
		t.Error("different fingerprint must miss")
	}
	other := CacheKey{Fingerprint: 1, Opts: Options{Lenient: true, MaxSteps: 10}}
	if _, ok := c.Get(other); ok {
		t.Error("different options must miss")
	}
	if _, ok := c.Get(cacheKey(1)); !ok {
		t.Error("original key must still hit")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	for fp := uint64(1); fp <= 2; fp++ {
		c.Put(cacheKey(fp), map[int32]*ThreadTrace{})
	}
	// Touch 1 so 2 becomes the least recently used.
	if _, ok := c.Get(cacheKey(1)); !ok {
		t.Fatal("warm entry missed")
	}
	c.Put(cacheKey(3), map[int32]*ThreadTrace{})
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if _, ok := c.Get(cacheKey(2)); ok {
		t.Error("LRU entry 2 should have been evicted")
	}
	if _, ok := c.Get(cacheKey(1)); !ok {
		t.Error("recently used entry 1 was evicted")
	}
	if _, ok := c.Get(cacheKey(3)); !ok {
		t.Error("newest entry 3 missing")
	}
}

func TestCacheCapacityClamp(t *testing.T) {
	c := NewCache(0)
	for fp := uint64(1); fp <= 3; fp++ {
		c.Put(cacheKey(fp), map[int32]*ThreadTrace{})
	}
	if c.Len() != 1 {
		t.Fatalf("capacity 0 must clamp to 1, Len = %d", c.Len())
	}
}

func TestCachePutReplacesInPlace(t *testing.T) {
	c := NewCache(1)
	a := map[int32]*ThreadTrace{1: {TID: 1}}
	b := map[int32]*ThreadTrace{2: {TID: 2}}
	c.Put(cacheKey(7), a)
	c.Put(cacheKey(7), b)
	got, ok := c.Get(cacheKey(7))
	if !ok || got[2] != b[2] {
		t.Fatal("re-Put must replace the stored entry")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache(4)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		g := g
		go func() {
			for i := 0; i < 200; i++ {
				fp := uint64(g%4 + 1)
				c.Put(cacheKey(fp), map[int32]*ThreadTrace{int32(g): {TID: int32(g)}})
				if got, ok := c.Get(cacheKey(fp)); ok && len(got) != 1 {
					done <- fmt.Errorf("goroutine %d: corrupt entry", g)
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
