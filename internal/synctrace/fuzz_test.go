package synctrace

import (
	"encoding/binary"
	"testing"

	"prorace/internal/tracefmt"
)

// recordsFromBytes derives a bounded sync log from fuzz input: 11 bytes per
// record (tid, kind, tsc, addr/aux nibbles) so the fuzzer can reach every
// kind, including out-of-range ones.
func recordsFromBytes(data []byte) []tracefmt.SyncRecord {
	const per = 11
	n := len(data) / per
	if n > 200 {
		n = 200
	}
	recs := make([]tracefmt.SyncRecord, 0, n)
	for i := 0; i < n; i++ {
		b := data[i*per:]
		recs = append(recs, tracefmt.SyncRecord{
			TID:  int32(b[0] % 8),
			Kind: tracefmt.SyncKind(b[1]),
			TSC:  uint64(binary.LittleEndian.Uint16(b[2:])),
			Addr: uint64(b[4]) << 4,
			Aux:  uint64(b[5]) << 4,
			PC:   uint64(binary.LittleEndian.Uint32(b[6:])),
		})
	}
	return recs
}

// FuzzSyncLog checks that the gap analyzer accepts any record sequence —
// arbitrary kinds, unpaired operations, time regressions — without
// panicking, and that its report stays self-consistent.
func FuzzSyncLog(f *testing.F) {
	f.Add([]byte{})
	// A well-formed lock pair and create/join as structured seeds.
	clean := []byte{
		1, byte(tracefmt.SyncThreadBegin), 1, 0, 0, 0, 0, 0, 0, 0, 0,
		1, byte(tracefmt.SyncLock), 2, 0, 1, 0, 0, 0, 0, 0, 0,
		1, byte(tracefmt.SyncUnlock), 3, 0, 1, 0, 0, 0, 0, 0, 0,
	}
	f.Add(clean)
	f.Add([]byte{2, byte(tracefmt.SyncUnlock), 9, 0, 1, 0, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		recs := recordsFromBytes(data)
		g := AnalyzeLog(recs)
		if g == nil {
			t.Fatal("AnalyzeLog returned nil")
		}
		if g.Anomalies() == 0 && g.String() != "sync log consistent" {
			t.Fatalf("zero anomalies but String() = %q", g.String())
		}
		if g.Anomalies() > 0 && len(g.Threads) == 0 {
			t.Fatalf("%d anomalies attributed to no thread", g.Anomalies())
		}
	})
}
