// Package synctrace implements ProRace's synchronization tracing (paper
// §4.3): the simulation's equivalent of interposing on pthread and malloc
// through LD_PRELOAD. It converts the machine's syscall events into
// TSC-stamped synchronization records for the offline happens-before
// analysis, including malloc/free so the detector can distinguish objects
// that reuse an address (§4.3's false-positive scenario).
package synctrace

import (
	"prorace/internal/isa"
	"prorace/internal/machine"
	"prorace/internal/tracefmt"
)

// Collector accumulates the synchronization log of one run.
type Collector struct {
	records []tracefmt.SyncRecord
}

// New returns an empty collector.
func New() *Collector { return &Collector{} }

// OnSyscall records the event if it is a synchronization or allocation
// operation, returning whether it was recorded.
func (c *Collector) OnSyscall(ev *machine.SyscallEvent) bool {
	var kind tracefmt.SyncKind
	var addr, aux uint64
	switch ev.Sys {
	case isa.SysLock:
		kind, addr = tracefmt.SyncLock, ev.Arg0
	case isa.SysUnlock:
		kind, addr = tracefmt.SyncUnlock, ev.Arg0
	case isa.SysCondWait:
		kind, addr, aux = tracefmt.SyncCondWait, ev.Arg0, ev.Arg1
	case isa.SysCondSignal:
		kind, addr = tracefmt.SyncCondSignal, ev.Arg0
	case isa.SysCondBroadcast:
		kind, addr = tracefmt.SyncCondBroadcast, ev.Arg0
	case isa.SysBarrier:
		kind, addr, aux = tracefmt.SyncBarrier, ev.Arg0, ev.Arg1
	case isa.SysThreadCreate:
		kind, addr = tracefmt.SyncThreadCreate, ev.Ret
	case isa.SysThreadJoin:
		kind, addr = tracefmt.SyncThreadJoin, ev.Arg0
	case isa.SysMalloc:
		kind, addr, aux = tracefmt.SyncMalloc, ev.Ret, ev.Arg0
	case isa.SysFree:
		kind, addr = tracefmt.SyncFree, ev.Arg0
	case isa.SysCondWake:
		kind, addr, aux = tracefmt.SyncCondWake, ev.Arg0, ev.Arg1
	case isa.SysBarrierWake:
		kind, addr = tracefmt.SyncBarrierWake, ev.Arg0
	default:
		return false
	}
	c.records = append(c.records, tracefmt.SyncRecord{
		TID:  int32(ev.TID),
		Kind: kind,
		TSC:  ev.TSC,
		PC:   ev.PC,
		Addr: addr,
		Aux:  aux,
	})
	return true
}

// OnThreadStart records a thread's first event; the happens-before
// analysis pairs it with the parent's SyncThreadCreate.
func (c *Collector) OnThreadStart(tid machine.TID, tsc uint64) {
	c.records = append(c.records, tracefmt.SyncRecord{
		TID: int32(tid), Kind: tracefmt.SyncThreadBegin, TSC: tsc,
	})
}

// OnThreadExit records a thread's last event; the happens-before analysis
// pairs it with a later SyncThreadJoin.
func (c *Collector) OnThreadExit(tid machine.TID, tsc uint64) {
	c.records = append(c.records, tracefmt.SyncRecord{
		TID: int32(tid), Kind: tracefmt.SyncThreadExit, TSC: tsc,
	})
}

// Records returns the accumulated log.
func (c *Collector) Records() []tracefmt.SyncRecord { return c.records }

// Len returns the number of records.
func (c *Collector) Len() int { return len(c.records) }
