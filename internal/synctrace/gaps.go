package synctrace

import (
	"fmt"
	"sort"

	"prorace/internal/tracefmt"
)

// Offline gap analysis. The happens-before detector already degrades
// soundly when synchronization records are lost: a missing record can only
// remove an edge, and removing edges makes the detector report a superset
// of races — no real race is hidden, some reports become false positives.
// What the detector cannot do is tell the analyst that this widening
// happened. AnalyzeLog inspects a (possibly gappy) log for the per-thread
// invariants every complete log satisfies, so the analysis result can
// carry "this log is missing records; treat new reports with suspicion"
// alongside the races.

// GapReport summarises the synchronization-log anomalies that indicate
// dropped records.
type GapReport struct {
	// UnpairedReleases counts unlocks (and condition waits, which release
	// their mutex) by a thread that did not observably hold the lock — the
	// signature of a dropped Lock record.
	UnpairedReleases int
	// OrphanBegins counts thread-begin records with no creating thread's
	// Create record anywhere in the log. The root thread is exempt.
	OrphanBegins int
	// OrphanJoins counts joins of threads that never logged an exit — a
	// dropped Exit record removes a join edge.
	OrphanJoins int
	// TSCRegressions counts records whose timestamp precedes the same
	// thread's previous record — reordering or corruption, not drops, but
	// equally a reason to distrust derived edges.
	TSCRegressions int
	// Threads lists the thread IDs with at least one anomaly, ascending.
	Threads []int32
}

// Anomalies returns the total anomaly count.
func (g *GapReport) Anomalies() int {
	return g.UnpairedReleases + g.OrphanBegins + g.OrphanJoins + g.TSCRegressions
}

// String renders a one-line summary.
func (g *GapReport) String() string {
	if g.Anomalies() == 0 {
		return "sync log consistent"
	}
	return fmt.Sprintf("sync log anomalies: %d unpaired releases, %d orphan begins, %d orphan joins, %d TSC regressions across %d threads",
		g.UnpairedReleases, g.OrphanBegins, g.OrphanJoins, g.TSCRegressions, len(g.Threads))
}

// AnalyzeLog checks a synchronization log for the invariants a complete
// log satisfies, returning the anomalies found. A clean log yields zero
// anomalies; every anomaly is evidence that records were dropped and that
// the happens-before relation derived from the log is conservatively
// widened (missing edges, so possibly extra race reports — never missed
// ones).
func AnalyzeLog(recs []tracefmt.SyncRecord) *GapReport {
	g := &GapReport{}
	affected := map[int32]bool{}
	mark := func(tid int32) { affected[tid] = true }

	// First pass: lifecycle facts usable independent of log order, so a
	// join checked against a later-positioned exit is not a false anomaly.
	created := map[uint64]bool{}
	exited := map[int32]bool{}
	for i := range recs {
		switch recs[i].Kind {
		case tracefmt.SyncThreadCreate:
			created[recs[i].Addr] = true
		case tracefmt.SyncThreadExit:
			exited[recs[i].TID] = true
		}
	}

	held := map[int32]map[uint64]int{}
	lastTSC := map[int32]uint64{}
	rootSeen := false
	for i := range recs {
		r := recs[i]
		if prev, ok := lastTSC[r.TID]; ok && r.TSC < prev {
			g.TSCRegressions++
			mark(r.TID)
		}
		lastTSC[r.TID] = r.TSC

		hs := held[r.TID]
		if hs == nil {
			hs = map[uint64]int{}
			held[r.TID] = hs
		}
		switch r.Kind {
		case tracefmt.SyncLock:
			hs[r.Addr]++
		case tracefmt.SyncUnlock:
			if hs[r.Addr] == 0 {
				g.UnpairedReleases++
				mark(r.TID)
			} else {
				hs[r.Addr]--
			}
		case tracefmt.SyncCondWait:
			// Waiting releases the mutex carried in Aux.
			if hs[r.Aux] == 0 {
				g.UnpairedReleases++
				mark(r.TID)
			} else {
				hs[r.Aux]--
			}
		case tracefmt.SyncCondWake:
			// Waking reacquires the mutex carried in Aux.
			hs[r.Aux]++
		case tracefmt.SyncThreadBegin:
			if !created[uint64(r.TID)] {
				if rootSeen {
					g.OrphanBegins++
					mark(r.TID)
				} else {
					rootSeen = true // the root thread has no creator
				}
			}
		case tracefmt.SyncThreadJoin:
			if !exited[int32(r.Addr)] {
				g.OrphanJoins++
				mark(r.TID)
			}
		}
	}

	g.Threads = make([]int32, 0, len(affected))
	for tid := range affected {
		g.Threads = append(g.Threads, tid)
	}
	sort.Slice(g.Threads, func(i, j int) bool { return g.Threads[i] < g.Threads[j] })
	return g
}
