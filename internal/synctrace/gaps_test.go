package synctrace_test

import (
	"strings"
	"testing"

	"prorace/internal/core"
	"prorace/internal/pmu/driver"
	"prorace/internal/synctrace"
	"prorace/internal/tracefmt"
	"prorace/internal/workload"
)

// rec abbreviates sync-record construction.
func rec(tid int32, kind tracefmt.SyncKind, addr, aux, tsc uint64) tracefmt.SyncRecord {
	return tracefmt.SyncRecord{TID: tid, Kind: kind, Addr: addr, Aux: aux, TSC: tsc}
}

func TestAnalyzeLogCleanWorkloads(t *testing.T) {
	// The invariant checks must hold on every real, complete log: a false
	// anomaly on a clean trace would poison Degradation reporting. Trace a
	// lock-heavy and a create/join-heavy workload and demand zero findings.
	for _, name := range []string{"pfscan", "memcached", "blackscholes"} {
		w, err := workload.ByName(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := core.TraceProgram(w.Program, core.TraceOptions{
			Kind: driver.ProRace, EnablePT: true, Period: 1000, Seed: 1, Machine: w.Machine,
		})
		if err != nil {
			t.Fatal(err)
		}
		g := synctrace.AnalyzeLog(tr.Trace.Sync)
		if g.Anomalies() != 0 {
			t.Errorf("%s: clean log reported anomalies: %s", name, g)
		}
		if g.String() != "sync log consistent" {
			t.Errorf("%s: String() = %q", name, g.String())
		}
	}
}

func TestAnalyzeLogUnpairedRelease(t *testing.T) {
	g := synctrace.AnalyzeLog([]tracefmt.SyncRecord{
		rec(1, tracefmt.SyncThreadBegin, 0, 0, 1),
		rec(1, tracefmt.SyncUnlock, 0x100, 0, 2), // lock record dropped
	})
	if g.UnpairedReleases != 1 || g.Anomalies() != 1 {
		t.Fatalf("got %+v, want 1 unpaired release", g)
	}
	if len(g.Threads) != 1 || g.Threads[0] != 1 {
		t.Fatalf("threads = %v, want [1]", g.Threads)
	}
}

func TestAnalyzeLogCondWaitReleasesMutex(t *testing.T) {
	// A CondWait releases its mutex (Aux): waiting without an observed
	// Lock is an anomaly; with the Lock present it is not.
	clean := []tracefmt.SyncRecord{
		rec(1, tracefmt.SyncLock, 0x200, 0, 1),
		rec(1, tracefmt.SyncCondWait, 0x300, 0x200, 2),
	}
	if g := synctrace.AnalyzeLog(clean); g.Anomalies() != 0 {
		t.Fatalf("clean wait flagged: %+v", g)
	}
	gappy := []tracefmt.SyncRecord{
		rec(1, tracefmt.SyncCondWait, 0x300, 0x200, 2),
	}
	if g := synctrace.AnalyzeLog(gappy); g.UnpairedReleases != 1 {
		t.Fatalf("dropped lock before wait not flagged: %+v", g)
	}
	// The wake-side re-acquire means a wait can be followed by an unlock
	// without a second explicit Lock record.
	wake := []tracefmt.SyncRecord{
		rec(1, tracefmt.SyncLock, 0x200, 0, 1),
		rec(1, tracefmt.SyncCondWait, 0x300, 0x200, 2),
		rec(1, tracefmt.SyncCondWake, 0x300, 0x200, 3),
		rec(1, tracefmt.SyncUnlock, 0x200, 0, 4),
	}
	if g := synctrace.AnalyzeLog(wake); g.Anomalies() != 0 {
		t.Fatalf("wait/wake/unlock sequence flagged: %+v", g)
	}
}

func TestAnalyzeLogOrphanBeginAndJoin(t *testing.T) {
	g := synctrace.AnalyzeLog([]tracefmt.SyncRecord{
		rec(1, tracefmt.SyncThreadBegin, 0, 0, 1), // root: exempt
		rec(2, tracefmt.SyncThreadBegin, 0, 0, 5), // create record dropped
		rec(1, tracefmt.SyncThreadJoin, 3, 0, 9),  // tid 3 never logged exit
	})
	if g.OrphanBegins != 1 || g.OrphanJoins != 1 {
		t.Fatalf("got %+v, want 1 orphan begin + 1 orphan join", g)
	}
	if !strings.Contains(g.String(), "orphan") {
		t.Errorf("String() = %q", g.String())
	}
}

func TestAnalyzeLogCompleteCreateJoin(t *testing.T) {
	// Order independence: the join may precede the exit in log order (TSC
	// ties); only a missing record is an anomaly.
	g := synctrace.AnalyzeLog([]tracefmt.SyncRecord{
		rec(1, tracefmt.SyncThreadBegin, 0, 0, 1),
		rec(1, tracefmt.SyncThreadCreate, 2, 0, 2),
		rec(1, tracefmt.SyncThreadJoin, 2, 0, 3),
		rec(2, tracefmt.SyncThreadBegin, 0, 0, 3),
		rec(2, tracefmt.SyncThreadExit, 0, 0, 4),
	})
	if g.Anomalies() != 0 {
		t.Fatalf("complete create/join flagged: %+v", g)
	}
}

func TestAnalyzeLogTSCRegression(t *testing.T) {
	g := synctrace.AnalyzeLog([]tracefmt.SyncRecord{
		rec(1, tracefmt.SyncLock, 0x100, 0, 10),
		rec(1, tracefmt.SyncUnlock, 0x100, 0, 5), // time went backwards
	})
	if g.TSCRegressions != 1 {
		t.Fatalf("got %+v, want 1 TSC regression", g)
	}
}

func TestAnalyzeLogDroppedRecordsDetected(t *testing.T) {
	// Drop records from a real log at a rate that guarantees lock-pair
	// damage; the analyzer must notice.
	w, err := workload.ByName("pfscan", 1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := core.TraceProgram(w.Program, core.TraceOptions{
		Kind: driver.ProRace, EnablePT: true, Period: 1000, Seed: 1, Machine: w.Machine,
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := tr.Trace.Sync
	var locks int
	kept := make([]tracefmt.SyncRecord, 0, len(recs))
	for _, r := range recs {
		// Drop every second Lock record, keep everything else.
		if r.Kind == tracefmt.SyncLock {
			locks++
			if locks%2 == 0 {
				continue
			}
		}
		kept = append(kept, r)
	}
	if locks < 4 {
		t.Skip("workload produced too few lock records to damage")
	}
	g := synctrace.AnalyzeLog(kept)
	if g.UnpairedReleases == 0 {
		t.Fatalf("dropped %d lock records but no unpaired releases: %+v", locks/2, g)
	}
}
