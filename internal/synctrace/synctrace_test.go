package synctrace

import (
	"testing"

	"prorace/internal/isa"
	"prorace/internal/machine"
	"prorace/internal/tracefmt"
)

func TestSyscallMapping(t *testing.T) {
	c := New()
	cases := []struct {
		ev       machine.SyscallEvent
		kind     tracefmt.SyncKind
		addr     uint64
		aux      uint64
		recorded bool
	}{
		{machine.SyscallEvent{Sys: isa.SysLock, Arg0: 0x100}, tracefmt.SyncLock, 0x100, 0, true},
		{machine.SyscallEvent{Sys: isa.SysUnlock, Arg0: 0x100}, tracefmt.SyncUnlock, 0x100, 0, true},
		{machine.SyscallEvent{Sys: isa.SysCondWait, Arg0: 0x200, Arg1: 0x100}, tracefmt.SyncCondWait, 0x200, 0x100, true},
		{machine.SyscallEvent{Sys: isa.SysCondSignal, Arg0: 0x200}, tracefmt.SyncCondSignal, 0x200, 0, true},
		{machine.SyscallEvent{Sys: isa.SysCondBroadcast, Arg0: 0x200}, tracefmt.SyncCondBroadcast, 0x200, 0, true},
		{machine.SyscallEvent{Sys: isa.SysBarrier, Arg0: 0x300, Arg1: 4}, tracefmt.SyncBarrier, 0x300, 4, true},
		{machine.SyscallEvent{Sys: isa.SysThreadCreate, Ret: 3}, tracefmt.SyncThreadCreate, 3, 0, true},
		{machine.SyscallEvent{Sys: isa.SysThreadJoin, Arg0: 3}, tracefmt.SyncThreadJoin, 3, 0, true},
		{machine.SyscallEvent{Sys: isa.SysMalloc, Arg0: 64, Ret: 0x10000000}, tracefmt.SyncMalloc, 0x10000000, 64, true},
		{machine.SyscallEvent{Sys: isa.SysFree, Arg0: 0x10000000}, tracefmt.SyncFree, 0x10000000, 0, true},
		{machine.SyscallEvent{Sys: isa.SysNetIO, Arg0: 100}, 0, 0, 0, false},
		{machine.SyscallEvent{Sys: isa.SysTSC}, 0, 0, 0, false},
	}
	want := 0
	for _, cse := range cases {
		got := c.OnSyscall(&cse.ev)
		if got != cse.recorded {
			t.Errorf("%v: recorded = %v, want %v", cse.ev.Sys, got, cse.recorded)
		}
		if !cse.recorded {
			continue
		}
		r := c.Records()[want]
		want++
		if r.Kind != cse.kind || r.Addr != cse.addr || r.Aux != cse.aux {
			t.Errorf("%v: record = %+v", cse.ev.Sys, r)
		}
	}
	if c.Len() != want {
		t.Errorf("len = %d, want %d", c.Len(), want)
	}
}

func TestThreadLifecycleRecords(t *testing.T) {
	c := New()
	c.OnThreadStart(2, 100)
	c.OnThreadExit(2, 900)
	recs := c.Records()
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].Kind != tracefmt.SyncThreadBegin || recs[0].TID != 2 || recs[0].TSC != 100 {
		t.Errorf("begin record = %+v", recs[0])
	}
	if recs[1].Kind != tracefmt.SyncThreadExit || recs[1].TSC != 900 {
		t.Errorf("exit record = %+v", recs[1])
	}
}
