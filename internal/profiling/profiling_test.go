package profiling

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestRegisterWiresAllFlags(t *testing.T) {
	var f Flags
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f.Register(fs)
	if err := fs.Parse([]string{"-cpuprofile", "cpu.out", "-memprofile", "mem.out", "-trace", "trace.out"}); err != nil {
		t.Fatalf("parse: %v", err)
	}
	if f.CPU != "cpu.out" || f.Mem != "mem.out" || f.Trace != "trace.out" {
		t.Fatalf("flags not wired: %+v", f)
	}
}

func TestStartCreatesProfiles(t *testing.T) {
	dir := t.TempDir()
	f := Flags{
		CPU:   filepath.Join(dir, "cpu.out"),
		Mem:   filepath.Join(dir, "mem.out"),
		Trace: filepath.Join(dir, "trace.out"),
	}
	stop, err := f.Start()
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	// Burn a little CPU and heap so the collectors have something to record.
	sink := 0
	buf := make([]byte, 1<<20)
	for i := range buf {
		sink += int(buf[i]) + i
	}
	_ = sink
	stop()

	for _, path := range []string{f.CPU, f.Mem, f.Trace} {
		st, err := os.Stat(path)
		if err != nil {
			t.Errorf("profile %s missing: %v", path, err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", path)
		}
	}
}

func TestStartNoFlagsIsNoop(t *testing.T) {
	var f Flags
	stop, err := f.Start()
	if err != nil {
		t.Fatalf("start with no flags: %v", err)
	}
	stop() // must not panic or create files
}

func TestStartUncreatableCPUPathFails(t *testing.T) {
	f := Flags{CPU: filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.out")}
	if _, err := f.Start(); err == nil {
		t.Fatal("expected error for uncreatable cpuprofile path")
	}
}

func TestStartUncreatableTracePathStopsCPU(t *testing.T) {
	dir := t.TempDir()
	f := Flags{
		CPU:   filepath.Join(dir, "cpu.out"),
		Trace: filepath.Join(dir, "no", "such", "dir", "trace.out"),
	}
	if _, err := f.Start(); err == nil {
		t.Fatal("expected error for uncreatable trace path")
	}
	// The failed Start must have released the CPU profiler: a fresh Start
	// with a valid configuration must succeed.
	f2 := Flags{CPU: filepath.Join(dir, "cpu2.out")}
	stop, err := f2.Start()
	if err != nil {
		t.Fatalf("cpu profiler left running after failed Start: %v", err)
	}
	stop()
}
