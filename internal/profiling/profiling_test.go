package profiling

import (
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestRegisterWiresAllFlags(t *testing.T) {
	var f Flags
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f.Register(fs)
	if err := fs.Parse([]string{"-cpuprofile", "cpu.out", "-memprofile", "mem.out", "-trace", "trace.out",
		"-blockprofile", "block.out", "-mutexprofile", "mutex.out"}); err != nil {
		t.Fatalf("parse: %v", err)
	}
	if f.CPU != "cpu.out" || f.Mem != "mem.out" || f.Trace != "trace.out" {
		t.Fatalf("flags not wired: %+v", f)
	}
	if f.Block != "block.out" || f.Mutex != "mutex.out" {
		t.Fatalf("block/mutex flags not wired: %+v", f)
	}
}

func TestStartCreatesProfiles(t *testing.T) {
	dir := t.TempDir()
	f := Flags{
		CPU:   filepath.Join(dir, "cpu.out"),
		Mem:   filepath.Join(dir, "mem.out"),
		Trace: filepath.Join(dir, "trace.out"),
	}
	stop, err := f.Start()
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	// Burn a little CPU and heap so the collectors have something to record.
	sink := 0
	buf := make([]byte, 1<<20)
	for i := range buf {
		sink += int(buf[i]) + i
	}
	_ = sink
	stop()

	for _, path := range []string{f.CPU, f.Mem, f.Trace} {
		st, err := os.Stat(path)
		if err != nil {
			t.Errorf("profile %s missing: %v", path, err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", path)
		}
	}
}

func TestStartNoFlagsIsNoop(t *testing.T) {
	var f Flags
	stop, err := f.Start()
	if err != nil {
		t.Fatalf("start with no flags: %v", err)
	}
	stop() // must not panic or create files
}

// TestBlockAndMutexProfiles: Start must enable the runtime collectors (they
// are off by default) and stop must write the profiles and disable the
// collectors again.
func TestBlockAndMutexProfiles(t *testing.T) {
	dir := t.TempDir()
	f := Flags{
		Block: filepath.Join(dir, "block.out"),
		Mutex: filepath.Join(dir, "mutex.out"),
	}
	stop, err := f.Start()
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	// Generate real contention for both collectors: a mutex two goroutines
	// fight over, and a channel receive that blocks.
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				mu.Lock()
				time.Sleep(50 * time.Microsecond)
				mu.Unlock()
			}
		}()
	}
	ch := make(chan struct{})
	go func() { time.Sleep(5 * time.Millisecond); close(ch) }()
	<-ch
	wg.Wait()
	stop()

	for _, path := range []string{f.Block, f.Mutex} {
		st, err := os.Stat(path)
		if err != nil {
			t.Errorf("profile %s missing: %v", path, err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", path)
		}
	}
	// stop must have turned the collectors back off.
	if runtime.SetMutexProfileFraction(-1) != 0 {
		t.Error("mutex profiling left enabled after stop")
	}
}

// TestAttachPprof serves the live pprof handlers off a plain mux.
func TestAttachPprof(t *testing.T) {
	mux := http.NewServeMux()
	AttachPprof(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap", "/debug/pprof/cmdline"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
	}
}

func TestStartUncreatableCPUPathFails(t *testing.T) {
	f := Flags{CPU: filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.out")}
	if _, err := f.Start(); err == nil {
		t.Fatal("expected error for uncreatable cpuprofile path")
	}
}

func TestStartUncreatableTracePathStopsCPU(t *testing.T) {
	dir := t.TempDir()
	f := Flags{
		CPU:   filepath.Join(dir, "cpu.out"),
		Trace: filepath.Join(dir, "no", "such", "dir", "trace.out"),
	}
	if _, err := f.Start(); err == nil {
		t.Fatal("expected error for uncreatable trace path")
	}
	// The failed Start must have released the CPU profiler: a fresh Start
	// with a valid configuration must succeed.
	f2 := Flags{CPU: filepath.Join(dir, "cpu2.out")}
	stop, err := f2.Start()
	if err != nil {
		t.Fatalf("cpu profiler left running after failed Start: %v", err)
	}
	stop()
}
