// Package profiling wires the standard Go profilers into the command-line
// tools: CPU profile, heap profile, blocking/mutex-contention profiles,
// and runtime execution trace. Commands register the flags on their flag
// set and bracket main with Start — the profiles are written where
// `go tool pprof` / `go tool trace` expect them. AttachPprof additionally
// exposes the live net/http/pprof handlers for telemetry servers.
package profiling

import (
	"flag"
	"fmt"
	"net/http"
	nhpprof "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Flags holds the profile destinations; empty means off.
type Flags struct {
	CPU   string
	Mem   string
	Trace string
	// Block and Mutex are written on stop from the goroutine-blocking and
	// mutex-contention profiles; enabling them sets
	// runtime.SetBlockProfileRate(BlockRate) and
	// runtime.SetMutexProfileFraction(MutexFraction) for the process
	// lifetime, which is how shard contention becomes visible in pprof.
	Block string
	Mutex string
	// BlockRate is the nanoseconds-blocked sampling threshold passed to
	// runtime.SetBlockProfileRate when Block is set; 0 means 1 (sample
	// every blocking event).
	BlockRate int
	// MutexFraction is the sampling fraction passed to
	// runtime.SetMutexProfileFraction when Mutex is set; 0 means 1.
	MutexFraction int
}

// Register installs -cpuprofile, -memprofile, -blockprofile, -mutexprofile
// and -trace on fs.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.CPU, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.Mem, "memprofile", "", "write a heap profile to this file on exit")
	fs.StringVar(&f.Block, "blockprofile", "", "write a goroutine blocking profile to this file on exit")
	fs.StringVar(&f.Mutex, "mutexprofile", "", "write a mutex contention profile to this file on exit")
	fs.StringVar(&f.Trace, "trace", "", "write a runtime execution trace to this file")
}

// Start begins the requested collectors. The returned stop function must
// run before the process exits (defer it right after a successful Start);
// it flushes the heap/block/mutex profiles and closes the CPU profile and
// trace. Failures to write a profile are reported on stderr, never fatal:
// the command's real work has already succeeded by then.
func (f *Flags) Start() (stop func(), err error) {
	var cpuFile, traceFile *os.File
	if f.CPU != "" {
		cpuFile, err = os.Create(f.CPU)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
	}
	if f.Trace != "" {
		traceFile, err = os.Create(f.Trace)
		if err != nil {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			return nil, fmt.Errorf("-trace: %w", err)
		}
		if err := trace.Start(traceFile); err != nil {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			traceFile.Close()
			return nil, fmt.Errorf("-trace: %w", err)
		}
	}
	if f.Block != "" {
		rate := f.BlockRate
		if rate <= 0 {
			rate = 1
		}
		runtime.SetBlockProfileRate(rate)
	}
	if f.Mutex != "" {
		frac := f.MutexFraction
		if frac <= 0 {
			frac = 1
		}
		runtime.SetMutexProfileFraction(frac)
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			}
		}
		if traceFile != nil {
			trace.Stop()
			if err := traceFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "trace:", err)
			}
		}
		if f.Mem != "" {
			writeLookup("memprofile", f.Mem, "allocs", true)
		}
		if f.Block != "" {
			writeLookup("blockprofile", f.Block, "block", false)
			runtime.SetBlockProfileRate(0)
		}
		if f.Mutex != "" {
			writeLookup("mutexprofile", f.Mutex, "mutex", false)
			runtime.SetMutexProfileFraction(0)
		}
	}, nil
}

// writeLookup dumps a named runtime profile to path, reporting failures on
// stderr.
func writeLookup(flagName, path, profile string, gcFirst bool) {
	out, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, flagName+":", err)
		return
	}
	defer out.Close()
	if gcFirst {
		runtime.GC() // materialise the final live set
	}
	p := pprof.Lookup(profile)
	if p == nil {
		fmt.Fprintf(os.Stderr, "%s: unknown profile %q\n", flagName, profile)
		return
	}
	if err := p.WriteTo(out, 0); err != nil {
		fmt.Fprintln(os.Stderr, flagName+":", err)
	}
}

// AttachPprof registers the live net/http/pprof handlers under
// /debug/pprof/ on mux, the same endpoints net/http/pprof installs on the
// default mux. Telemetry servers reuse this so a -metrics-addr listener
// also serves CPU/heap/block/mutex profiles of the running analysis.
func AttachPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", nhpprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", nhpprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", nhpprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", nhpprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", nhpprof.Trace)
}
