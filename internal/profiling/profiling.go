// Package profiling wires the standard Go profilers into the command-line
// tools: CPU profile, heap profile, and runtime execution trace. Commands
// register the three flags on their flag set and bracket main with Start —
// the profiles are written where `go tool pprof` / `go tool trace` expect
// them.
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Flags holds the profile destinations; empty means off.
type Flags struct {
	CPU   string
	Mem   string
	Trace string
}

// Register installs -cpuprofile, -memprofile and -trace on fs.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.CPU, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.Mem, "memprofile", "", "write a heap profile to this file on exit")
	fs.StringVar(&f.Trace, "trace", "", "write a runtime execution trace to this file")
}

// Start begins the requested collectors. The returned stop function must
// run before the process exits (defer it right after a successful Start);
// it flushes the heap profile and closes the CPU profile and trace.
// Failures to write a profile are reported on stderr, never fatal: the
// command's real work has already succeeded by then.
func (f *Flags) Start() (stop func(), err error) {
	var cpuFile, traceFile *os.File
	if f.CPU != "" {
		cpuFile, err = os.Create(f.CPU)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
	}
	if f.Trace != "" {
		traceFile, err = os.Create(f.Trace)
		if err != nil {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			return nil, fmt.Errorf("-trace: %w", err)
		}
		if err := trace.Start(traceFile); err != nil {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			traceFile.Close()
			return nil, fmt.Errorf("-trace: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			}
		}
		if traceFile != nil {
			trace.Stop()
			if err := traceFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "trace:", err)
			}
		}
		if f.Mem != "" {
			out, err := os.Create(f.Mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer out.Close()
			runtime.GC() // materialise the final live set
			if err := pprof.Lookup("allocs").WriteTo(out, 0); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}, nil
}
