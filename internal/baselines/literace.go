package baselines

import (
	"prorace/internal/isa"
	"prorace/internal/machine"
	"prorace/internal/race"
	"prorace/internal/replay"
	"prorace/internal/synctrace"
)

// LiteRace cost model (cycles). The instrumented binary pays a check on
// every memory access; tracked accesses pay full vector-clock analysis.
// Calibrated so a CPU-bound workload lands near the paper's quoted 1.47x
// average slowdown while I/O-bound servers stay at a few percent.
const (
	lrCheckCost    = 2   // inlined "is this burst sampled?" check, every access
	lrAnalysisCost = 45  // metadata + vector clock work per tracked access
	lrSyncCost     = 35  // instrumented synchronization operation
	lrBurstCap     = 500 // accesses tracked per burst before it is cut off
)

// literace implements the adaptive cold-region burst sampler: each
// function starts fully sampled; its sampling rate decays as it proves
// hot, bottoming out at 0.1% — LiteRace's hypothesis that races in mature
// code hide in rarely exercised regions.
type literace struct {
	sync  *synctrace.Collector
	rng   uint64            // xorshift state
	execs map[uint64]uint64 // function entry -> executions
	// burst state per thread: sampled depth of the current call chain and
	// accesses tracked in the current burst.
	inBurst  map[machine.TID]int
	burstLen map[machine.TID]int
	depth    map[machine.TID]int
	accesses map[int32][]replay.Access
	sampled  int
}

func newLiteRace(opts Options) *literace {
	return &literace{
		sync:     synctrace.New(),
		rng:      uint64(opts.Seed)*2654435761 + 1,
		execs:    map[uint64]uint64{},
		inBurst:  map[machine.TID]int{},
		burstLen: map[machine.TID]int{},
		depth:    map[machine.TID]int{},
		accesses: map[int32][]replay.Access{},
	}
}

func (l *literace) rand() uint64 {
	l.rng ^= l.rng << 13
	l.rng ^= l.rng >> 7
	l.rng ^= l.rng << 17
	return l.rng
}

// rateFor returns the sampling rate of a function given its execution
// count: 100% for the first 10 executions, then decaying as 10/n with a
// 0.1% floor.
func rateFor(execs uint64) float64 {
	if execs <= 10 {
		return 1.0
	}
	r := 10.0 / float64(execs)
	if r < 0.001 {
		return 0.001
	}
	return r
}

// InstRetired implements machine.Tracer.
func (l *literace) InstRetired(ev *machine.InstEvent) uint64 {
	var stall uint64
	switch ev.Inst.Op {
	case isa.CALL, isa.CALLR:
		l.depth[ev.TID]++
		entry := ev.Target
		l.execs[entry]++
		// A burst begins when a function entry draws a sample and no
		// enclosing burst is active.
		if l.inBurst[ev.TID] == 0 {
			rate := rateFor(l.execs[entry])
			if float64(l.rand()%1_000_000) < rate*1_000_000 {
				l.inBurst[ev.TID] = l.depth[ev.TID]
				l.burstLen[ev.TID] = 0
			}
		}
	case isa.RET:
		if l.inBurst[ev.TID] == l.depth[ev.TID] {
			l.inBurst[ev.TID] = 0
		}
		if l.depth[ev.TID] > 0 {
			l.depth[ev.TID]--
		}
	}
	if ev.IsMem {
		stall += lrCheckCost
		if l.inBurst[ev.TID] != 0 {
			stall += lrAnalysisCost
			l.accesses[int32(ev.TID)] = append(l.accesses[int32(ev.TID)], accessFromEvent(ev))
			l.sampled++
			// Bound burst length, as LiteRace bounds its sampling unit:
			// a burst inside a long-running loop is cut off.
			l.burstLen[ev.TID]++
			if l.burstLen[ev.TID] >= lrBurstCap {
				l.inBurst[ev.TID] = 0
			}
		}
	}
	return stall
}

// SyscallRetired implements machine.Tracer.
func (l *literace) SyscallRetired(ev *machine.SyscallEvent) uint64 {
	if l.sync.OnSyscall(ev) {
		return lrSyncCost
	}
	return 0
}

// ThreadStarted implements machine.Tracer.
func (l *literace) ThreadStarted(tid machine.TID, tsc uint64) { l.sync.OnThreadStart(tid, tsc) }

// ThreadExited implements machine.Tracer.
func (l *literace) ThreadExited(tid machine.TID, tsc uint64) { l.sync.OnThreadExit(tid, tsc) }

func (l *literace) finish() ([]race.Report, int) {
	return hbDetect(l.sync, l.accesses), l.sampled
}
