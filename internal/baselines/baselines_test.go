package baselines

import (
	"testing"

	"prorace/internal/asm"
	"prorace/internal/bugs"
	"prorace/internal/isa"
	"prorace/internal/machine"
	"prorace/internal/prog"
	"prorace/internal/workload"
)

func TestKindNames(t *testing.T) {
	if LiteRace.String() != "literace" || Pacer.String() != "pacer" ||
		DataCollider.String() != "datacollider" || Kind(9).String() != "baseline?" {
		t.Error("names wrong")
	}
}

func TestLiteRaceOverheadBands(t *testing.T) {
	// CPU-bound: substantial slowdown from per-access instrumentation
	// (paper: 1.47x average, up to 2.1x).
	cpu := workload.PARSEC(1)[0]
	res, err := Run(cpu.Program, cpu.Machine, Options{Kind: LiteRace, Seed: 3, MeasureOverhead: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Overhead < 0.15 || res.Overhead > 3 {
		t.Errorf("LiteRace CPU-bound overhead = %.1f%%, outside the instrumentation band", res.Overhead*100)
	}
	if res.SampledAccesses == 0 {
		t.Error("cold-region sampler tracked nothing")
	}
	// Network-bound apache: a few percent (paper: 2-4%).
	web := workload.Apache(1)
	res2, err := Run(web.Program, web.Machine, Options{Kind: LiteRace, Seed: 3, MeasureOverhead: true})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Overhead > 0.10 {
		t.Errorf("LiteRace apache overhead = %.1f%%, paper reports 2-4%%", res2.Overhead*100)
	}
	t.Logf("LiteRace: cpu %.0f%%, apache %.1f%%", res.Overhead*100, res2.Overhead*100)
}

func TestLiteRaceColdRegionBias(t *testing.T) {
	// The sampler must track a *decreasing fraction* of a hot function's
	// executions: with thousands of calls, sampled accesses stay well
	// below total accesses.
	cpu := workload.PARSEC(1)[0]
	res, err := Run(cpu.Program, cpu.Machine, Options{Kind: LiteRace, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := cpu.Machine
	cfg.Seed = 5
	total := 0
	{
		// Count total memory accesses via an untraced run's stats.
		m := newCountingRun(t, cpu, 5)
		total = int(m)
	}
	if res.SampledAccesses >= total/2 {
		t.Errorf("sampled %d of %d accesses: hot code not throttled", res.SampledAccesses, total)
	}
}

func newCountingRun(t *testing.T, w workload.Workload, seed int64) uint64 {
	t.Helper()
	res, err := Run(w.Program, w.Machine, Options{Kind: Pacer, PacerRate: 1.0, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return uint64(res.SampledAccesses) // rate 1.0 tracks everything
}

func TestPacerRateProportionality(t *testing.T) {
	cpu := workload.PARSEC(1)[0]
	at := func(rate float64) int {
		res, err := Run(cpu.Program, cpu.Machine, Options{Kind: Pacer, PacerRate: rate, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return res.SampledAccesses
	}
	n3, n30 := at(0.03), at(0.30)
	if n30 < n3*4 {
		t.Errorf("sampling not roughly proportional to rate: %d at 3%% vs %d at 30%%", n3, n30)
	}
}

func TestPacerOverheadNearPaper(t *testing.T) {
	// Pacer's non-sampling instrumentation taxes every access, so its
	// overhead tracks access density: use the stream-heavy kernel
	// (streamcluster), the closest to the Java heap-access density the
	// paper's 1.86x-at-3% figure was measured on.
	cpu := workload.PARSEC(1)[9]
	if cpu.Name != "streamcluster" {
		t.Fatal("workload order changed")
	}
	res, err := Run(cpu.Program, cpu.Machine, Options{Kind: Pacer, Seed: 3, MeasureOverhead: true})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 1.86x at the 3% rate; accept a broad band around it.
	if res.Overhead < 0.3 || res.Overhead > 2.5 {
		t.Errorf("Pacer overhead at 3%% = %.0f%%, paper quotes ~86%%", res.Overhead*100)
	}
	t.Logf("Pacer @3%%: %.0f%%", res.Overhead*100)
}

func TestPacerDetectsWithFullRate(t *testing.T) {
	bug, err := bugs.ByID("pfscan")
	if err != nil {
		t.Fatal(err)
	}
	built := bug.Build(1)
	res, err := Run(built.Workload.Program, built.Workload.Machine,
		Options{Kind: Pacer, PacerRate: 1.0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !built.Detected(res.Reports) {
		t.Error("full-rate Pacer must see the race")
	}
}

func TestDataColliderLowOverhead(t *testing.T) {
	cpu := workload.PARSEC(1)[0]
	res, err := Run(cpu.Program, cpu.Machine, Options{Kind: DataCollider, Seed: 3, MeasureOverhead: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Overhead > 0.25 {
		t.Errorf("DataCollider overhead = %.1f%%, should be low", res.Overhead*100)
	}
	if res.SampledAccesses == 0 {
		t.Error("no samples taken")
	}
}

func TestDataColliderCatchesOverlappingRace(t *testing.T) {
	// A tight unlocked shared counter hammered by four threads: with a
	// small sampling period and a long delay, a conflicting access lands
	// in some window.
	b := buildHotRace()
	hits := 0
	for seed := int64(1); seed <= 5; seed++ {
		res, err := Run(b, workloadMachine(), Options{
			Kind: DataCollider, Seed: seed, DCSamplePeriod: 50, DCDelayCycles: 5000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Reports) > 0 {
			hits++
		}
	}
	if hits == 0 {
		t.Error("DataCollider never caught a hot race in 5 runs")
	}
	t.Logf("DataCollider: %d/5 runs caught the hot race", hits)
}

func TestDataColliderWatchpointLimit(t *testing.T) {
	// With an extreme sampling rate the four debug registers saturate:
	// samples get wasted rather than queued.
	b := buildHotRace()
	res, err := Run(b, workloadMachine(), Options{
		Kind: DataCollider, Seed: 1, DCSamplePeriod: 2, DCDelayCycles: 100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The run completes (no unbounded watchpoint growth) and sampling far
	// exceeds the four concurrently armable watchpoints.
	if res.SampledAccesses <= maxWatchpoints {
		t.Errorf("sampled %d", res.SampledAccesses)
	}
}

// buildHotRace: four threads hammer one unlocked counter.
func buildHotRace() *prog.Program {
	b := asm.New("hotrace")
	b.Global("x", 8)
	b.Global("tids", 32)
	m := b.Func("main")
	for i := int64(0); i < 4; i++ {
		m.MovI(isa.R4, i)
		m.SpawnThread("w", isa.R4)
		m.Store(asm.Global("tids", i*8), isa.R0)
	}
	for i := int64(0); i < 4; i++ {
		m.Load(isa.R0, asm.Global("tids", i*8))
		m.Syscall(isa.SysThreadJoin)
	}
	m.Exit(0)
	w := b.Func("w")
	w.MovI(isa.R3, 2000)
	w.Label("l")
	w.Load(isa.R1, asm.Global("x", 0))
	w.AddI(isa.R1, 1)
	w.Store(asm.Global("x", 0), isa.R1)
	w.SubI(isa.R3, 1)
	w.CmpI(isa.R3, 0)
	w.Jgt("l")
	w.Exit(0)
	return mustBuild(b)
}

func workloadMachine() machine.Config { return machine.Config{Cores: 4} }

// mustBuild finalises a test program; the inputs are static, so a build
// error means the test itself is broken.
func mustBuild(b *asm.Builder) *prog.Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
