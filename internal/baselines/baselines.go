// Package baselines implements the three prior sampling detectors the
// paper positions ProRace against in §2, so the comparison that motivates
// the work can be reproduced quantitatively:
//
//   - LiteRace (Marino et al., PLDI 2009): static instrumentation with an
//     adaptive cold-region sampler — every memory access pays an
//     instrumentation check; bursts of accesses in rarely executed
//     functions are fully tracked. The paper quotes 1.47x average
//     slowdown (2-4% on apache) and coverage limited to sampled accesses.
//   - Pacer (Bond et al., PLDI 2010): global random sampling at rate r;
//     detection probability is proportional to r, and the paper quotes
//     1.86x slowdown at r = 3%.
//   - DataCollider (Erickson et al., OSDI 2010): no instrumentation —
//     sampled accesses arm one of at most four hardware watchpoints and
//     delay the thread; a trap during the delay is a conflicting access
//     caught in the act. Very low overhead, but coverage limited to
//     sampled accesses whose races physically overlap the delay window.
//
// Each baseline is a machine.Tracer over the same simulated machine as the
// ProRace pipeline, so overhead numbers are directly comparable, and each
// yields race reports through its own detection model.
package baselines

import (
	"fmt"

	"prorace/internal/machine"
	"prorace/internal/prog"
	"prorace/internal/race"
	"prorace/internal/replay"
	"prorace/internal/synctrace"
	"prorace/internal/tracefmt"
)

// Kind selects a baseline detector.
type Kind int

const (
	// LiteRace is the adaptive cold-region instrumentation sampler.
	LiteRace Kind = iota
	// Pacer is the global random sampler.
	Pacer
	// DataCollider is the watchpoint-and-delay sampler.
	DataCollider
)

// String names the baseline.
func (k Kind) String() string {
	switch k {
	case LiteRace:
		return "literace"
	case Pacer:
		return "pacer"
	case DataCollider:
		return "datacollider"
	}
	return "baseline?"
}

// Options configures a baseline run.
type Options struct {
	Kind Kind
	// Seed drives the machine scheduler and the samplers.
	Seed int64
	// PacerRate is Pacer's sampling rate (default 0.03, the paper's
	// quoted configuration).
	PacerRate float64
	// DCSamplePeriod is DataCollider's memory events between watchpoint
	// arms per thread (default 20000).
	DCSamplePeriod uint64
	// DCDelayCycles is DataCollider's delay window (default 20000 cycles
	// = 5µs at 4 GHz).
	DCDelayCycles uint64
	// MeasureOverhead additionally runs an untraced baseline.
	MeasureOverhead bool
}

func (o *Options) setDefaults() {
	if o.PacerRate == 0 {
		o.PacerRate = 0.03
	}
	if o.DCSamplePeriod == 0 {
		o.DCSamplePeriod = 20000
	}
	if o.DCDelayCycles == 0 {
		o.DCDelayCycles = 20000
	}
}

// Result is a baseline run's outcome.
type Result struct {
	// Overhead is traced/untraced - 1 (0 when not measured).
	Overhead float64
	// SampledAccesses counts accesses the detector actually examined.
	SampledAccesses int
	// Reports are the detected races.
	Reports []race.Report
}

// tracerWithResult is the contract each baseline tracer satisfies.
type tracerWithResult interface {
	machine.Tracer
	// finish produces the detection result after the run.
	finish() ([]race.Report, int)
}

// Run executes a program under the selected baseline detector.
func Run(p *prog.Program, mcfg machine.Config, opts Options) (*Result, error) {
	opts.setDefaults()
	res := &Result{}

	if opts.MeasureOverhead {
		cfg := mcfg
		cfg.Seed = opts.Seed
		cfg.Tracer = nil
		base := machine.New(p, cfg)
		bst, err := base.Run()
		if err != nil {
			return nil, fmt.Errorf("baselines: baseline run: %w", err)
		}
		cfgT := mcfg
		cfgT.Seed = opts.Seed
		cfgT.Tracer = nil
		mac := machine.New(p, cfgT)
		tracer := newTracer(opts)
		mac.SetTracer(tracer)
		tst, err := mac.Run()
		if err != nil {
			return nil, fmt.Errorf("baselines: traced run: %w", err)
		}
		res.Overhead = float64(tst.Cycles)/float64(bst.Cycles) - 1
		res.Reports, res.SampledAccesses = tracer.finish()
		return res, nil
	}

	cfg := mcfg
	cfg.Seed = opts.Seed
	cfg.Tracer = nil
	mac := machine.New(p, cfg)
	tracer := newTracer(opts)
	mac.SetTracer(tracer)
	if _, err := mac.Run(); err != nil {
		return nil, fmt.Errorf("baselines: traced run: %w", err)
	}
	res.Reports, res.SampledAccesses = tracer.finish()
	return res, nil
}

func newTracer(opts Options) tracerWithResult {
	switch opts.Kind {
	case Pacer:
		return newPacer(opts)
	case DataCollider:
		return newDataCollider(opts)
	default:
		return newLiteRace(opts)
	}
}

// hbDetect runs FastTrack over sampled accesses plus the full sync log —
// what the instrumentation-based samplers (LiteRace, Pacer) do online.
func hbDetect(sync *synctrace.Collector, accesses map[int32][]replay.Access) []race.Report {
	det := race.Detect(sync.Records(), accesses, race.Options{TrackAllocations: true})
	return det.Reports()
}

// accessFromEvent converts a machine event to a replay.Access for the
// detector.
func accessFromEvent(ev *machine.InstEvent) replay.Access {
	return replay.Access{
		TID:    int32(ev.TID),
		PC:     ev.PC,
		Addr:   ev.MemAddr,
		Store:  ev.IsStore,
		TSC:    ev.TSC,
		Step:   -1,
		Origin: replay.OriginSampled,
	}
}

var _ = tracefmt.SyncRecord{} // tracefmt is used by sibling files
