package baselines

import (
	"prorace/internal/machine"
	"prorace/internal/race"
)

// maxWatchpoints is the x86 debug-register limit the paper highlights as
// DataCollider's hardware restriction (§2): at most four memory locations
// monitored concurrently.
const maxWatchpoints = 4

// dcArmCost is the cost of programming a debug register and fielding its
// trap.
const dcArmCost = 800

// watchpoint is one armed data breakpoint.
type watchpoint struct {
	addr    uint64
	owner   machine.TID
	ownerPC uint64
	write   bool
	expires uint64
}

// datacollider samples memory accesses with per-thread periods; each
// sample arms a watchpoint on the accessed address and delays the thread.
// A conflicting access from another thread during the delay is a race
// caught red-handed — no happens-before analysis, no false positives, but
// coverage limited to samples whose races physically overlap the window.
type datacollider struct {
	period uint64
	delay  uint64
	rng    uint64
	// per-thread countdown to the next sample
	remaining map[machine.TID]uint64
	watch     []watchpoint
	reports   []race.Report
	seen      map[[2]uint64]bool
	sampled   int
}

func newDataCollider(opts Options) *datacollider {
	return &datacollider{
		period:    opts.DCSamplePeriod,
		delay:     opts.DCDelayCycles,
		rng:       uint64(opts.Seed)*0x9E3779B97F4A7C15 + 1,
		remaining: map[machine.TID]uint64{},
		seen:      map[[2]uint64]bool{},
	}
}

func (d *datacollider) rand() uint64 {
	d.rng ^= d.rng << 13
	d.rng ^= d.rng >> 7
	d.rng ^= d.rng << 17
	return d.rng
}

// InstRetired implements machine.Tracer.
func (d *datacollider) InstRetired(ev *machine.InstEvent) uint64 {
	if !ev.IsMem {
		return 0
	}

	// Check active watchpoints: a hit from another thread during the
	// window is a detected race (the trap DataCollider waits for).
	for i := 0; i < len(d.watch); i++ {
		w := &d.watch[i]
		if ev.TSC >= w.expires {
			d.watch = append(d.watch[:i], d.watch[i+1:]...)
			i--
			continue
		}
		if w.addr == ev.MemAddr && ev.TID != w.owner && (w.write || ev.IsStore) {
			r := race.Report{
				Addr:   ev.MemAddr,
				First:  race.AccessInfo{TID: int32(w.owner), PC: w.ownerPC, Write: w.write},
				Second: race.AccessInfo{TID: int32(ev.TID), PC: ev.PC, Write: ev.IsStore, TSC: ev.TSC},
			}
			if !d.seen[r.Key()] {
				d.seen[r.Key()] = true
				d.reports = append(d.reports, r)
			}
			// The trap fires; the watchpoint is consumed.
			d.watch = append(d.watch[:i], d.watch[i+1:]...)
			i--
		}
	}

	// Sampling countdown for this thread.
	rem, ok := d.remaining[ev.TID]
	if !ok {
		rem = 1 + d.rand()%d.period // randomised initial phase
	}
	if rem > 1 {
		d.remaining[ev.TID] = rem - 1
		return 0
	}
	d.remaining[ev.TID] = d.period

	d.sampled++
	if len(d.watch) >= maxWatchpoints {
		// All four debug registers busy: the sample is wasted — the
		// hardware restriction the paper calls out.
		return 0
	}
	d.watch = append(d.watch, watchpoint{
		addr:    ev.MemAddr,
		owner:   ev.TID,
		ownerPC: ev.PC,
		write:   ev.IsStore,
		expires: ev.TSC + d.delay,
	})
	// The sampling thread pauses for the delay window, hoping a
	// conflicting access lands on the watchpoint meanwhile.
	return dcArmCost + d.delay
}

// SyscallRetired implements machine.Tracer.
func (d *datacollider) SyscallRetired(*machine.SyscallEvent) uint64 { return 0 }

// ThreadStarted implements machine.Tracer.
func (d *datacollider) ThreadStarted(machine.TID, uint64) {}

// ThreadExited implements machine.Tracer.
func (d *datacollider) ThreadExited(machine.TID, uint64) {}

func (d *datacollider) finish() ([]race.Report, int) {
	return d.reports, d.sampled
}
