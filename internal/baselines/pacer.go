package baselines

import (
	"prorace/internal/machine"
	"prorace/internal/race"
	"prorace/internal/replay"
	"prorace/internal/synctrace"
)

// Pacer cost model. Pacer's insight is making the non-sampling phase
// cheap, but its instrumentation still executes on every access; during
// sampling periods every access pays full vector-clock work. Calibrated so
// a CPU-bound workload at the 3% rate lands near the paper's quoted 1.86x.
const (
	pacerOffCost   = 4     // non-sampling-phase instrumentation, every access
	pacerOnCost    = 45    // full tracking during a sampling period
	pacerSyncCost  = 35    // instrumented synchronization operation
	pacerWindowCyc = 20000 // sampling-period granularity in cycles
)

// pacer samples globally random windows at the configured rate; detection
// probability is roughly proportional to the rate (Bond et al.).
type pacer struct {
	rate     float64
	rng      uint64
	sync     *synctrace.Collector
	winEnd   uint64
	winOn    bool
	accesses map[int32][]replay.Access
	sampled  int
}

func newPacer(opts Options) *pacer {
	return &pacer{
		rate:     opts.PacerRate,
		rng:      uint64(opts.Seed)*6364136223846793005 + 1442695040888963407,
		sync:     synctrace.New(),
		accesses: map[int32][]replay.Access{},
	}
}

func (p *pacer) rand() uint64 {
	p.rng ^= p.rng << 13
	p.rng ^= p.rng >> 7
	p.rng ^= p.rng << 17
	return p.rng
}

// InstRetired implements machine.Tracer.
func (p *pacer) InstRetired(ev *machine.InstEvent) uint64 {
	if !ev.IsMem {
		return 0
	}
	if ev.TSC >= p.winEnd {
		p.winEnd = ev.TSC + pacerWindowCyc
		p.winOn = float64(p.rand()%1_000_000) < p.rate*1_000_000
	}
	if p.winOn {
		p.accesses[int32(ev.TID)] = append(p.accesses[int32(ev.TID)], accessFromEvent(ev))
		p.sampled++
		return pacerOnCost
	}
	return pacerOffCost
}

// SyscallRetired implements machine.Tracer.
func (p *pacer) SyscallRetired(ev *machine.SyscallEvent) uint64 {
	if p.sync.OnSyscall(ev) {
		return pacerSyncCost
	}
	return 0
}

// ThreadStarted implements machine.Tracer.
func (p *pacer) ThreadStarted(tid machine.TID, tsc uint64) { p.sync.OnThreadStart(tid, tsc) }

// ThreadExited implements machine.Tracer.
func (p *pacer) ThreadExited(tid machine.TID, tsc uint64) { p.sync.OnThreadExit(tid, tsc) }

func (p *pacer) finish() ([]race.Report, int) {
	return hbDetect(p.sync, p.accesses), p.sampled
}
