// Package pebs simulates Intel's Precise Event Based Sampling as ProRace
// uses it (paper §4.1): counting retired load/store events per thread,
// capturing {IP, data address, TSC, full register file} every k-th event
// into a Debug Store (DS) buffer, and raising an interrupt when the buffer
// is nearly full.
//
// Two throttling behaviours of the real kernel/hardware stack are modelled
// because the paper's results depend on them:
//
//   - a minimum spacing between *stored* samples: when samples arrive
//     faster than the kernel can bank them, records are discarded even
//     though the sampling work was done. This is why the paper's Figure 8
//     shows a *smaller* trace at period 10 than at period 100.
//   - a handler-time throttle: when too large a fraction of recent cycles
//     went to sampling work, the counter is suspended until the window
//     ends, bounding worst-case slowdown (the 50x / 7.5x plateaus of
//     Figure 10).
package pebs

import (
	"math/rand"

	"prorace/internal/machine"
	"prorace/internal/tracefmt"
)

// Config parameterises the sampling unit.
type Config struct {
	// Period is the number of retired load/store events between samples.
	Period uint64
	// RandomFirstPeriod staggers each thread's first sample uniformly in
	// [1, Period] — the ProRace driver's sampling-diversity feature
	// (paper §4.1.2). The vanilla driver starts every thread at Period.
	RandomFirstPeriod bool
	// Seed drives the random first period.
	Seed int64
	// DSBufferRecords is the DS-area capacity in records before an
	// interrupt fires (default: 64 KB / record size).
	DSBufferRecords int
	// MinStoreSpacingCycles is the minimum TSC distance between two stored
	// samples of one thread; closer samples are dropped (default 900).
	MinStoreSpacingCycles uint64
	// ThrottleWindowCycles and MaxBusyFrac define the handler-time
	// throttle: within each window, once sampling-work cycles exceed
	// MaxBusyFrac*window, sampling is suspended until the window ends.
	ThrottleWindowCycles uint64
	MaxBusyFrac          float64
}

func (c *Config) setDefaults() {
	if c.Period == 0 {
		c.Period = 10000
	}
	if c.DSBufferRecords == 0 {
		c.DSBufferRecords = 64 * 1024 / tracefmt.PEBSRecordSize
	}
	if c.MinStoreSpacingCycles == 0 {
		c.MinStoreSpacingCycles = 900
	}
	if c.ThrottleWindowCycles == 0 {
		c.ThrottleWindowCycles = 2_000_000
	}
	if c.MaxBusyFrac == 0 {
		c.MaxBusyFrac = 0.9
	}
}

type threadState struct {
	remaining   uint64 // events until next sample
	buf         []tracefmt.PEBSRecord
	hasStored   bool
	lastStore   uint64 // TSC of last stored sample
	winStart    uint64
	busyInWin   uint64
	throttledTo uint64
}

// Unit is the per-run sampling state across all threads.
type Unit struct {
	cfg     Config
	rng     *rand.Rand
	threads map[int32]*threadState
	// Dropped counts samples discarded by the store-spacing rule.
	Dropped uint64
	// Throttled counts events skipped while the counter was suspended by
	// the handler-time throttle.
	Throttled uint64
}

// New creates a sampling unit.
func New(cfg Config) *Unit {
	cfg.setDefaults()
	return &Unit{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		threads: map[int32]*threadState{},
	}
}

// Period returns the configured sampling period.
func (u *Unit) Period() uint64 { return u.cfg.Period }

func (u *Unit) state(tid int32) *threadState {
	ts := u.threads[tid]
	if ts == nil {
		first := u.cfg.Period
		if u.cfg.RandomFirstPeriod {
			first = 1 + uint64(u.rng.Int63n(int64(u.cfg.Period)))
		}
		ts = &threadState{remaining: first}
		u.threads[tid] = ts
	}
	return ts
}

// Result describes what happened for one counted event.
type Result struct {
	// Sampled is true if this event hit the sampling period.
	Sampled bool
	// Stored is true if the record was banked into the DS buffer
	// (false when dropped by the store-spacing rule).
	Stored bool
	// Interrupt is true when the DS buffer filled and must be drained:
	// the caller (the driver) collects Drain() and pays the handler cost.
	Interrupt bool
}

// OnMemEvent counts one retired load/store. If the period expires it
// captures a record from the event. The caller charges costs according to
// the Result and its driver model, and reports those costs back via
// AddBusyCycles so the throttle sees them.
func (u *Unit) OnMemEvent(ev *machine.InstEvent) Result {
	ts := u.state(int32(ev.TID))

	// Handler-time throttle: while suspended the counter does not tick.
	if ev.TSC < ts.throttledTo {
		u.Throttled++
		return Result{}
	}
	if ev.TSC-ts.winStart >= u.cfg.ThrottleWindowCycles {
		ts.winStart = ev.TSC
		ts.busyInWin = 0
	}

	ts.remaining--
	if ts.remaining > 0 {
		return Result{}
	}
	ts.remaining = u.cfg.Period

	res := Result{Sampled: true}
	if ts.hasStored && ev.TSC-ts.lastStore < u.cfg.MinStoreSpacingCycles {
		u.Dropped++
		return res
	}
	rec := tracefmt.PEBSRecord{
		TID:   int32(ev.TID),
		Core:  int32(ev.Core),
		TSC:   ev.TSC,
		IP:    ev.PC,
		Addr:  ev.MemAddr,
		Store: ev.IsStore,
		Regs:  *ev.Regs, // hardware snapshot: copy, not alias
	}
	ts.buf = append(ts.buf, rec)
	ts.hasStored = true
	ts.lastStore = ev.TSC
	res.Stored = true
	if len(ts.buf) >= u.cfg.DSBufferRecords {
		res.Interrupt = true
	}
	return res
}

// AddBusyCycles reports sampling-work cycles (assist, handler, copy) spent
// on behalf of a thread, feeding the handler-time throttle.
func (u *Unit) AddBusyCycles(tid int32, tsc uint64, cycles uint64) {
	ts := u.state(tid)
	ts.busyInWin += cycles
	if float64(ts.busyInWin) > u.cfg.MaxBusyFrac*float64(u.cfg.ThrottleWindowCycles) {
		ts.throttledTo = ts.winStart + u.cfg.ThrottleWindowCycles
		if ts.throttledTo <= tsc {
			ts.throttledTo = tsc + u.cfg.ThrottleWindowCycles/4
		}
	}
}

// Drain removes and returns the thread's DS buffer contents (the interrupt
// handler's job).
func (u *Unit) Drain(tid int32) []tracefmt.PEBSRecord {
	ts := u.state(tid)
	out := ts.buf
	ts.buf = nil
	return out
}

// DrainAll returns every thread's outstanding records (end of run).
func (u *Unit) DrainAll() map[int32][]tracefmt.PEBSRecord {
	out := map[int32][]tracefmt.PEBSRecord{}
	for tid, ts := range u.threads {
		if len(ts.buf) > 0 {
			out[tid] = ts.buf
			ts.buf = nil
		}
	}
	return out
}
