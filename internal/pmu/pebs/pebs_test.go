package pebs

import (
	"testing"

	"prorace/internal/isa"
	"prorace/internal/machine"
)

func memEvent(tid int32, tsc uint64, addr uint64) *machine.InstEvent {
	regs := &[isa.NumRegs]uint64{1, 2, 3}
	return &machine.InstEvent{
		TID: machine.TID(tid), TSC: tsc, PC: isa.CodeBase, MemAddr: addr,
		IsMem: true, Regs: regs,
	}
}

func TestSamplingPeriodExact(t *testing.T) {
	u := New(Config{Period: 10, MinStoreSpacingCycles: 1})
	samples := 0
	for i := 0; i < 100; i++ {
		res := u.OnMemEvent(memEvent(0, uint64(i*100), uint64(i)))
		if res.Sampled {
			samples++
			if (i+1)%10 != 0 {
				t.Fatalf("sampled at event %d with period 10", i)
			}
		}
	}
	if samples != 10 {
		t.Errorf("samples = %d, want 10", samples)
	}
	recs := u.Drain(0)
	if len(recs) != 10 {
		t.Fatalf("drained %d records", len(recs))
	}
	// Records must carry the register snapshot and data address.
	if recs[0].Regs[0] != 1 || recs[0].Regs[2] != 3 {
		t.Error("register snapshot missing")
	}
	if recs[3].Addr != 39 {
		t.Errorf("4th sample addr = %d, want 39", recs[3].Addr)
	}
}

func TestRandomFirstPeriodDiversity(t *testing.T) {
	u := New(Config{Period: 1000, RandomFirstPeriod: true, Seed: 7, MinStoreSpacingCycles: 1})
	// Drive 64 threads one event each; their first-sample positions should
	// differ. Count how many sample on event k for k in 1..1000.
	firsts := map[int32]int{}
	for tid := int32(0); tid < 16; tid++ {
		for i := 0; i < 1000; i++ {
			if u.OnMemEvent(memEvent(tid, uint64(i*10), 0)).Sampled {
				firsts[tid] = i
				break
			}
		}
	}
	distinct := map[int]bool{}
	for _, v := range firsts {
		distinct[v] = true
	}
	if len(distinct) < 8 {
		t.Errorf("first-sample positions not diverse: %v", firsts)
	}
	// Without randomisation, every thread samples at event Period-1.
	u2 := New(Config{Period: 100, MinStoreSpacingCycles: 1})
	for tid := int32(0); tid < 4; tid++ {
		for i := 0; i < 100; i++ {
			s := u2.OnMemEvent(memEvent(tid, uint64(i*10), 0)).Sampled
			if s != (i == 99) {
				t.Fatalf("tid %d sampled at %d", tid, i)
			}
		}
	}
}

func TestStoreSpacingDrops(t *testing.T) {
	u := New(Config{Period: 1, MinStoreSpacingCycles: 100})
	stored := 0
	for i := 0; i < 50; i++ {
		res := u.OnMemEvent(memEvent(0, uint64(i*10), 0)) // 10 cycles apart
		if !res.Sampled {
			t.Fatalf("period 1 must sample every event")
		}
		if res.Stored {
			stored++
		}
	}
	if u.Dropped == 0 {
		t.Fatal("no drops despite 10-cycle spacing with 100-cycle minimum")
	}
	if stored+int(u.Dropped) != 50 {
		t.Errorf("stored %d + dropped %d != 50", stored, u.Dropped)
	}
	if stored > 6 {
		t.Errorf("stored %d, want ~5 (one per 100 cycles)", stored)
	}
}

func TestThrottleSuspendsCounting(t *testing.T) {
	u := New(Config{Period: 1, MinStoreSpacingCycles: 1,
		ThrottleWindowCycles: 10_000, MaxBusyFrac: 0.5})
	// Report enormous busy time: the next events must be skipped.
	u.OnMemEvent(memEvent(0, 100, 0))
	u.AddBusyCycles(0, 100, 9_000) // 90% of window
	res := u.OnMemEvent(memEvent(0, 200, 0))
	if res.Sampled {
		t.Fatal("event sampled while throttled")
	}
	if u.Throttled == 0 {
		t.Fatal("throttled counter not incremented")
	}
	// After the window passes, sampling resumes.
	res = u.OnMemEvent(memEvent(0, 20_001, 0))
	if !res.Sampled {
		t.Fatal("sampling did not resume after throttle window")
	}
}

func TestInterruptAtBufferFull(t *testing.T) {
	u := New(Config{Period: 1, DSBufferRecords: 5, MinStoreSpacingCycles: 1})
	interrupts := 0
	for i := 0; i < 23; i++ {
		res := u.OnMemEvent(memEvent(0, uint64(i*1000), 0))
		if res.Interrupt {
			interrupts++
			got := u.Drain(0)
			if len(got) != 5 {
				t.Fatalf("drain returned %d records", len(got))
			}
		}
	}
	if interrupts != 4 {
		t.Errorf("interrupts = %d, want 4", interrupts)
	}
	rest := u.DrainAll()
	if len(rest[0]) != 3 {
		t.Errorf("leftover records = %d, want 3", len(rest[0]))
	}
	// DrainAll empties.
	if len(u.DrainAll()) != 0 {
		t.Error("second DrainAll must be empty")
	}
}

func TestDefaults(t *testing.T) {
	u := New(Config{})
	if u.Period() != 10000 {
		t.Errorf("default period = %d", u.Period())
	}
	if u.cfg.DSBufferRecords <= 0 || u.cfg.MinStoreSpacingCycles == 0 ||
		u.cfg.ThrottleWindowCycles == 0 || u.cfg.MaxBusyFrac == 0 {
		t.Errorf("defaults not applied: %+v", u.cfg)
	}
}
