// Package pt simulates Intel Processor Trace as ProRace configures it
// (paper §4.2): lossless control-flow recording per thread, compressed in
// hardware, with up to four instruction-address range filters so only the
// code regions of interest (the main executable) are traced.
//
// Conditional branches append taken/not-taken bits, grouped six to a TNT
// packet; repeated groups are run-length encoded (standing in for the very
// high compression real PT achieves on loops, which is what keeps PT under
// ~1% of the total trace volume in the paper's §7.3). Indirect branches
// (JMPR, CALLR, RET) emit TIP packets with the resolved target, since no
// static analysis can recover them. TSC packets are interleaved
// periodically so the offline stage can time-align PT against PEBS and the
// synchronization log.
package pt

import (
	"prorace/internal/isa"
	"prorace/internal/machine"
	"prorace/internal/tracefmt"
)

// Range is an instruction-address filter range [Start, End).
type Range struct {
	Start, End uint64
}

// Contains reports whether addr falls in the range.
func (r Range) Contains(addr uint64) bool { return addr >= r.Start && addr < r.End }

// MaxFilterRanges is the hardware limit on address filters (four on the
// paper's Skylake, §4.2).
const MaxFilterRanges = 4

// Config parameterises the PT unit.
type Config struct {
	// Filters restricts tracing to branches whose source address falls in
	// one of the ranges. Empty means trace everything. At most
	// MaxFilterRanges entries.
	Filters []Range
	// TSCIntervalCycles is how often a TSC packet is interleaved into each
	// thread's stream (default 50000 cycles).
	TSCIntervalCycles uint64
	// PSBIntervalCycles is how often a PSB sync-point packet is emitted
	// (default 50000 cycles). A corruption-tolerant decoder that loses the
	// stream scans forward to the next PSB and resumes there, so this
	// interval bounds how much path is lost to one damaged region — the
	// role real PT's periodic PSB+ packets play for its decoder.
	PSBIntervalCycles uint64
}

type threadStream struct {
	buf []byte

	// pending TNT bits not yet forming a full group
	bits  uint8
	nbits uint8

	// run-length state over full 6-bit groups, with sparse exceptions
	runPattern uint8
	runCount   uint32
	runExc     []tracefmt.TNTException
	runActive  bool

	// callStack supports RET compression: a return whose target matches
	// the tracked call stack is recorded as a single taken bit, as real
	// Intel PT does.
	callStack []uint64

	lastTSC    uint64
	tscEmitted bool
	lastPSB    uint64
	flushedLen int // bytes already flushed to the perf tool
}

// Unit is the per-run PT state across all threads.
type Unit struct {
	cfg     Config
	threads map[int32]*threadStream
	// Branches counts branch events seen (post-filter).
	Branches uint64
}

// New creates a PT unit.
func New(cfg Config) *Unit {
	if cfg.TSCIntervalCycles == 0 {
		cfg.TSCIntervalCycles = 50000
	}
	if cfg.PSBIntervalCycles == 0 {
		cfg.PSBIntervalCycles = 50000
	}
	if len(cfg.Filters) > MaxFilterRanges {
		cfg.Filters = cfg.Filters[:MaxFilterRanges]
	}
	return &Unit{cfg: cfg, threads: map[int32]*threadStream{}}
}

func (u *Unit) stream(tid int32) *threadStream {
	s := u.threads[tid]
	if s == nil {
		s = &threadStream{}
		u.threads[tid] = s
	}
	return s
}

func (u *Unit) inFilter(addr uint64) bool {
	if len(u.cfg.Filters) == 0 {
		return true
	}
	for _, r := range u.cfg.Filters {
		if r.Contains(addr) {
			return true
		}
	}
	return false
}

// OnBranch records one retired branch instruction. It returns the number
// of stream bytes appended (hardware bandwidth accounting).
func (u *Unit) OnBranch(ev *machine.InstEvent) int {
	if !u.inFilter(ev.PC) {
		return 0
	}
	s := u.stream(int32(ev.TID))
	before := len(s.buf)

	if !s.tscEmitted || ev.TSC-s.lastTSC >= u.cfg.TSCIntervalCycles {
		s.flushRuns()
		s.buf = tracefmt.AppendTSC(s.buf, ev.TSC)
		s.lastTSC = ev.TSC
		s.tscEmitted = true
	}

	in := ev.Inst
	// Periodic sync point, anchored only at packet-consuming instructions
	// (conditional branch, indirect call/jump, return) so a resyncing
	// decoder that resumes at the anchor pc consumes exactly this event's
	// packet next. The call stack resets with the PSB: returns for frames
	// pushed before it fall back to uncompressed TIP packets, which a
	// fresh post-resync decode handles without the lost stack.
	if ev.TSC-s.lastPSB >= u.cfg.PSBIntervalCycles &&
		(in.IsCondBranch() || in.Op == isa.CALLR || in.Op == isa.RET || in.IsIndirectBranch()) {
		s.flushRuns()
		s.buf = tracefmt.AppendPSB(s.buf, ev.PC)
		s.callStack = s.callStack[:0]
		s.lastPSB = ev.TSC
	}
	switch {
	case in.IsCondBranch():
		u.Branches++
		s.pushBit(ev.Taken)
	case in.Op == isa.CALL, in.Op == isa.CALLR:
		// Track the return address for RET compression. Direct calls need
		// no packet (statically known targets); indirect calls emit TIP.
		s.callStack = append(s.callStack, ev.PC+isa.InstSize)
		if in.Op == isa.CALLR {
			u.Branches++
			s.flushRuns()
			s.buf = tracefmt.AppendTIP(s.buf, ev.Target)
		}
	case in.Op == isa.RET:
		u.Branches++
		if n := len(s.callStack); n > 0 && s.callStack[n-1] == ev.Target {
			// Compressed return: a single taken bit (real PT's RET
			// compression).
			s.callStack = s.callStack[:n-1]
			s.pushBit(true)
		} else {
			s.callStack = s.callStack[:0]
			s.flushRuns()
			s.buf = tracefmt.AppendTIP(s.buf, ev.Target)
		}
	case in.IsIndirectBranch():
		u.Branches++
		// Order matters: pending outcomes precede the indirect target.
		s.flushRuns()
		s.buf = tracefmt.AppendTIP(s.buf, ev.Target)
	default:
		// Direct JMP: statically known, no packet (as in real PT).
	}
	return len(s.buf) - before
}

// pushBit adds one conditional outcome, forming groups of six.
func (s *threadStream) pushBit(taken bool) {
	if taken {
		s.bits |= 1 << s.nbits
	}
	s.nbits++
	if s.nbits < tracefmt.TNTBitsPerPacket {
		return
	}
	group := s.bits
	s.bits, s.nbits = 0, 0
	if !s.runActive {
		s.runPattern, s.runCount, s.runActive = group, 1, true
		return
	}
	if group == s.runPattern {
		s.runCount++
		return
	}
	// A deviating group may be absorbed as an exception when the run is
	// long relative to its exception count — keeping almost-periodic
	// branch behaviour (a check that fails every k-th iteration) in one
	// packet.
	if len(s.runExc) < tracefmt.MaxTNTExceptions &&
		s.runCount+1 >= 4*uint32(len(s.runExc)+1) {
		s.runExc = append(s.runExc, tracefmt.TNTException{Index: s.runCount, Bits: group})
		s.runCount++
		return
	}
	s.emitRun()
	s.runPattern, s.runCount, s.runActive = group, 1, true
}

// emitRun writes the pending full-group run, if any.
func (s *threadStream) emitRun() {
	if !s.runActive {
		return
	}
	switch {
	case len(s.runExc) > 0:
		// The exception list is bounded by MaxTNTExceptions at insertion,
		// so the append cannot fail; if it ever did, the run is dropped —
		// a lossy stream, never a crashed tracer.
		if out, err := tracefmt.AppendTNTRepEx(s.buf, s.runPattern, s.runCount, s.runExc); err == nil {
			s.buf = out
		}
	case s.runCount == 1:
		s.buf = tracefmt.AppendTNT6(s.buf, s.runPattern)
	default:
		s.buf = tracefmt.AppendTNTRep(s.buf, s.runPattern, s.runCount)
	}
	s.runActive = false
	s.runCount = 0
	s.runExc = nil
}

// flushRuns writes pending runs and any partial TNT group, preserving
// branch order before a TIP or TSC packet.
func (s *threadStream) flushRuns() {
	s.emitRun()
	if s.nbits > 0 {
		// nbits is 1..5 here, so the append cannot fail; on an impossible
		// failure the partial group is dropped rather than panicking.
		if out, err := tracefmt.AppendTNT(s.buf, s.bits, s.nbits); err == nil {
			s.buf = out
		}
		s.bits, s.nbits = 0, 0
	}
}

// Begin records a thread's tracing start: a TSC packet followed by a TIP
// carrying the start address — the equivalent of real PT's TIP.PGE packet
// on entering a filter region. The decoder uses it to anchor the walk.
func (u *Unit) Begin(tid int32, pc, tsc uint64) {
	s := u.stream(tid)
	s.buf = tracefmt.AppendTSC(s.buf, tsc)
	s.lastTSC = tsc
	s.tscEmitted = true
	s.lastPSB = tsc // the anchor TIP below serves as the first sync point
	s.buf = tracefmt.AppendTIP(s.buf, pc)
}

// Mark injects a TSC packet at the current stream position. The driver
// calls it from the PEBS interrupt path at every stored sample, so the
// offline decoder can place the sample exactly on the decoded path: all
// branch outcomes retired before the sample precede the marker in the
// stream. This is the simulation's equivalent of PEBS and PT sharing one
// timestamp domain (paper §4.2).
func (u *Unit) Mark(tid int32, tsc uint64) {
	s := u.stream(tid)
	s.flushRuns()
	s.buf = tracefmt.AppendTSC(s.buf, tsc)
	s.lastTSC = tsc
	s.tscEmitted = true
}

// Finish flushes every thread's pending state and terminates the streams,
// returning them keyed by thread.
func (u *Unit) Finish() map[int32][]byte {
	out := map[int32][]byte{}
	for tid, s := range u.threads {
		s.flushRuns()
		s.buf = tracefmt.AppendEnd(s.buf)
		out[tid] = s.buf
	}
	return out
}

// PendingBytes returns unflushed stream bytes for a thread, advancing the
// flush cursor. The driver uses it to account PT buffer flushes to the
// file bus.
func (u *Unit) PendingBytes(tid int32) int {
	s := u.stream(tid)
	n := len(s.buf) - s.flushedLen
	s.flushedLen = len(s.buf)
	return n
}

// TotalBytes returns the current total stream volume across threads.
func (u *Unit) TotalBytes() int {
	n := 0
	for _, s := range u.threads {
		n += len(s.buf)
	}
	return n
}
