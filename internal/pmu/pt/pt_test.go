package pt

import (
	"testing"

	"prorace/internal/isa"
	"prorace/internal/machine"
	"prorace/internal/tracefmt"
)

func condEvent(tid int32, pc uint64, taken bool, tsc uint64) *machine.InstEvent {
	return &machine.InstEvent{
		TID: machine.TID(tid), PC: pc, TSC: tsc, Taken: taken,
		Inst: isa.Inst{Op: isa.JNE, Imm: int64(pc)},
	}
}

func retEvent(tid int32, pc, target, tsc uint64) *machine.InstEvent {
	return &machine.InstEvent{
		TID: machine.TID(tid), PC: pc, TSC: tsc, Target: target,
		Inst: isa.Inst{Op: isa.RET},
	}
}

// decodeOutcomes decodes a stream back into the flat sequence of branch
// outcomes and TIP targets, ignoring timestamps.
func decodeOutcomes(t *testing.T, stream []byte) (bits []bool, tips []uint64) {
	t.Helper()
	r := tracefmt.NewPTReader(stream)
	for {
		pkt, done, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			return
		}
		switch pkt.Kind {
		case tracefmt.PktTNT, tracefmt.PktTNT6:
			for i := uint8(0); i < pkt.NBits; i++ {
				bits = append(bits, pkt.Bits&(1<<i) != 0)
			}
		case tracefmt.PktTNTRep:
			for rep := uint32(0); rep < pkt.Count; rep++ {
				for i := uint8(0); i < pkt.NBits; i++ {
					bits = append(bits, pkt.Bits&(1<<i) != 0)
				}
			}
		case tracefmt.PktTNTRepEx:
			ei := 0
			for rep := uint32(0); rep < pkt.Count; rep++ {
				group := pkt.Bits
				if ei < len(pkt.Exceptions) && pkt.Exceptions[ei].Index == rep {
					group = pkt.Exceptions[ei].Bits
					ei++
				}
				for i := uint8(0); i < tracefmt.TNTBitsPerPacket; i++ {
					bits = append(bits, group&(1<<i) != 0)
				}
			}
		case tracefmt.PktTIP:
			tips = append(tips, pkt.Target)
		}
	}
}

func TestTNTRoundTripWithRLE(t *testing.T) {
	u := New(Config{})
	// A repeating pattern: 6000 branches alternating T,T,F — the same
	// 6-bit group 1000 times — must RLE-compress massively.
	var want []bool
	pat := []bool{true, true, false, true, true, false}
	for k := 0; k < 1000; k++ {
		for _, b := range pat {
			u.OnBranch(condEvent(0, isa.CodeBase, b, uint64(k)))
			want = append(want, b)
		}
	}
	streams := u.Finish()
	got, _ := decodeOutcomes(t, streams[0])
	if len(got) != len(want) {
		t.Fatalf("decoded %d outcomes, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("outcome %d = %v, want %v", i, got[i], want[i])
		}
	}
	// Compression: 6000 bits in far fewer bytes than 1 per branch.
	if len(streams[0]) > 200 {
		t.Errorf("stream is %d bytes for 6000 repeated branches; RLE not effective", len(streams[0]))
	}
}

func TestIrregularPatternDecodes(t *testing.T) {
	u := New(Config{})
	var want []bool
	// Pseudo-irregular outcomes, not a multiple of 6.
	for i := 0; i < 1003; i++ {
		b := (i*i)%7 < 3
		u.OnBranch(condEvent(0, isa.CodeBase, b, uint64(i)))
		want = append(want, b)
	}
	got, _ := decodeOutcomes(t, u.Finish()[0])
	if len(got) != len(want) {
		t.Fatalf("decoded %d outcomes, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("outcome %d mismatch", i)
		}
	}
}

func TestTIPOrderingPreserved(t *testing.T) {
	u := New(Config{})
	// Two conditional outcomes, then a RET, then three more outcomes: the
	// partial TNT group must be flushed before the TIP packet.
	u.OnBranch(condEvent(0, isa.CodeBase, true, 1))
	u.OnBranch(condEvent(0, isa.CodeBase, false, 2))
	u.OnBranch(retEvent(0, isa.CodeBase, 0x400200, 3))
	u.OnBranch(condEvent(0, isa.CodeBase, true, 4))
	stream := u.Finish()[0]

	r := tracefmt.NewPTReader(stream)
	var kinds []tracefmt.PTPacketKind
	for {
		pkt, done, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		kinds = append(kinds, pkt.Kind)
	}
	// Expect: TSC, TNT(2 bits), TIP, TNT(1 bit).
	want := []tracefmt.PTPacketKind{tracefmt.PktTSC, tracefmt.PktTNT, tracefmt.PktTIP, tracefmt.PktTNT}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("packet %d kind = %v, want %v", i, kinds[i], want[i])
		}
	}
	bits, tips := decodeOutcomes(t, stream)
	if len(bits) != 3 || bits[0] != true || bits[1] != false || bits[2] != true {
		t.Errorf("bits = %v", bits)
	}
	if len(tips) != 1 || tips[0] != 0x400200 {
		t.Errorf("tips = %v", tips)
	}
}

func TestAddressFilters(t *testing.T) {
	u := New(Config{Filters: []Range{{Start: 0x1000, End: 0x2000}}})
	u.OnBranch(condEvent(0, 0x1500, true, 1)) // inside
	u.OnBranch(condEvent(0, 0x3000, true, 2)) // outside: dropped
	u.OnBranch(condEvent(0, 0x1fff, false, 3))
	if u.Branches != 2 {
		t.Errorf("branches = %d, want 2", u.Branches)
	}
	bits, _ := decodeOutcomes(t, u.Finish()[0])
	if len(bits) != 2 {
		t.Errorf("bits = %v, want 2 outcomes", bits)
	}
	// More than four filters are truncated, as in hardware.
	many := New(Config{Filters: []Range{{}, {}, {}, {}, {}, {}}})
	if len(many.cfg.Filters) != MaxFilterRanges {
		t.Errorf("filters = %d, want %d", len(many.cfg.Filters), MaxFilterRanges)
	}
}

func TestTSCPacketsPeriodic(t *testing.T) {
	u := New(Config{TSCIntervalCycles: 100})
	for i := 0; i < 50; i++ {
		u.OnBranch(condEvent(0, isa.CodeBase, true, uint64(i*10)))
	}
	stream := u.Finish()[0]
	r := tracefmt.NewPTReader(stream)
	tscs := 0
	for {
		pkt, done, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		if pkt.Kind == tracefmt.PktTSC {
			tscs++
		}
	}
	// 500 cycles at one packet per 100 → about 5 (plus the initial one).
	if tscs < 4 || tscs > 7 {
		t.Errorf("TSC packets = %d, want ~5", tscs)
	}
}

func TestPendingBytesAccounting(t *testing.T) {
	u := New(Config{})
	u.OnBranch(retEvent(0, isa.CodeBase, 0x400100, 1))
	n1 := u.PendingBytes(0)
	if n1 == 0 {
		t.Fatal("no pending bytes after TIP")
	}
	if n2 := u.PendingBytes(0); n2 != 0 {
		t.Fatalf("pending bytes not consumed: %d", n2)
	}
	u.OnBranch(retEvent(0, isa.CodeBase, 0x400100, 2))
	if n3 := u.PendingBytes(0); n3 == 0 {
		t.Fatal("new bytes not reported")
	}
	if u.TotalBytes() == 0 {
		t.Error("TotalBytes must reflect the stream")
	}
}

func TestMultipleThreadsSeparateStreams(t *testing.T) {
	u := New(Config{})
	u.OnBranch(condEvent(1, isa.CodeBase, true, 1))
	u.OnBranch(condEvent(2, isa.CodeBase, false, 1))
	streams := u.Finish()
	if len(streams) != 2 {
		t.Fatalf("streams = %d", len(streams))
	}
	b1, _ := decodeOutcomes(t, streams[1])
	b2, _ := decodeOutcomes(t, streams[2])
	if len(b1) != 1 || b1[0] != true || len(b2) != 1 || b2[0] != false {
		t.Errorf("per-thread outcomes wrong: %v %v", b1, b2)
	}
}

func TestRetCompression(t *testing.T) {
	u := New(Config{})
	// CALL pushes the return address; a matching RET becomes one taken
	// bit instead of a 9-byte TIP (real PT's RET compression).
	call := &machine.InstEvent{TID: 0, PC: 0x400000, TSC: 1, Target: 0x400100,
		Inst: isa.Inst{Op: isa.CALL, Imm: 0x400100}}
	u.OnBranch(call)
	ret := retEvent(0, 0x400140, 0x400000+isa.InstSize, 2)
	u.OnBranch(ret)
	stream := u.Finish()[0]
	bits, tips := decodeOutcomes(t, stream)
	if len(tips) != 0 {
		t.Fatalf("compressed return emitted a TIP: %v", tips)
	}
	if len(bits) != 1 || !bits[0] {
		t.Fatalf("compressed return bit = %v", bits)
	}

	// A return that does NOT match the tracked stack emits a TIP.
	u2 := New(Config{})
	u2.OnBranch(call)
	u2.OnBranch(retEvent(0, 0x400140, 0xDEAD00, 2))
	_, tips2 := decodeOutcomes(t, u2.Finish()[0])
	if len(tips2) != 1 || tips2[0] != 0xDEAD00 {
		t.Fatalf("mismatched return must TIP: %v", tips2)
	}
}

func TestIndirectCallEmitsTIP(t *testing.T) {
	u := New(Config{})
	u.OnBranch(&machine.InstEvent{TID: 0, PC: 0x400000, TSC: 1, Target: 0x400200,
		Inst: isa.Inst{Op: isa.CALLR, Rs: isa.R1}})
	_, tips := decodeOutcomes(t, u.Finish()[0])
	if len(tips) != 1 || tips[0] != 0x400200 {
		t.Fatalf("indirect call tips = %v", tips)
	}
}

func TestExceptionRunsRoundTrip(t *testing.T) {
	u := New(Config{})
	// A mostly-constant pattern with a deviation every 5 groups (30
	// branches): T,T,T,T,T,F on iteration multiples.
	var want []bool
	for i := 0; i < 1200; i++ {
		b := true
		if i%30 == 17 {
			b = false
		}
		u.OnBranch(condEvent(0, isa.CodeBase, b, uint64(i)))
		want = append(want, b)
	}
	stream := u.Finish()[0]
	got, _ := decodeOutcomes(t, stream)
	if len(got) != len(want) {
		t.Fatalf("decoded %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bit %d mismatch", i)
		}
	}
	// The exception encoding must beat one packet per group.
	if len(stream) > 500 {
		t.Errorf("stream %d bytes for 1200 near-periodic branches", len(stream))
	}
}

func TestMarkFlushesAndTimestamps(t *testing.T) {
	u := New(Config{})
	u.OnBranch(condEvent(0, isa.CodeBase, true, 5))
	u.Mark(0, 123456)
	u.OnBranch(condEvent(0, isa.CodeBase, false, 10))
	stream := u.Finish()[0]
	r := tracefmt.NewPTReader(stream)
	sawMark := false
	for {
		pkt, done, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		if pkt.Kind == tracefmt.PktTSC && pkt.TSC == 123456 {
			sawMark = true
		}
	}
	if !sawMark {
		t.Error("mark timestamp missing from stream")
	}
	bits, _ := decodeOutcomes(t, stream)
	if len(bits) != 2 || !bits[0] || bits[1] {
		t.Errorf("bits around mark = %v", bits)
	}
}

func TestBeginAnchorsStream(t *testing.T) {
	u := New(Config{})
	u.Begin(3, 0x400040, 99)
	stream := u.Finish()[3]
	r := tracefmt.NewPTReader(stream)
	p1, _, _ := r.Next()
	p2, _, _ := r.Next()
	if p1.Kind != tracefmt.PktTSC || p1.TSC != 99 {
		t.Errorf("first packet = %+v", p1)
	}
	if p2.Kind != tracefmt.PktTIP || p2.Target != 0x400040 {
		t.Errorf("anchor = %+v", p2)
	}
}
