// Package driver implements the two PEBS driver stacks the paper compares
// (Figure 10):
//
//   - Vanilla — the stock Linux perf path of the paper's Figure 2: per
//     sample, the interrupt handler synthesises metadata (wall-clock time,
//     size, period) and copies the record from the DS area into a second
//     ring buffer shared with the user-land perf tool, which processes and
//     writes it out. The perf tool polls continuously.
//   - ProRace — the paper's redesigned driver (§4.1.2, Figure 3): a single
//     aux ring buffer handed to PEBS one 64 KB segment at a time; on
//     interrupt the handler merely swaps segments (no copy, no metadata),
//     and the perf tool dumps raw segments to the trace file. The first
//     sampling period is randomised per thread for sampling diversity.
//
// The driver implements machine.Tracer: every cost in the model is charged
// as stall cycles on the core that incurred it, so the difference between
// the two drivers is directly measurable as run slowdown — the same
// methodology as the paper's evaluation.
package driver

import (
	"prorace/internal/machine"
	"prorace/internal/pmu/pebs"
	"prorace/internal/pmu/pt"
	"prorace/internal/synctrace"
	"prorace/internal/telemetry"
	"prorace/internal/tracefmt"
)

// Kind selects the driver model.
type Kind int

const (
	// Vanilla is the stock Linux PEBS driver path.
	Vanilla Kind = iota
	// ProRace is the paper's redesigned driver.
	ProRace
)

// String names the kind.
func (k Kind) String() string {
	if k == Vanilla {
		return "vanilla"
	}
	return "prorace"
}

// Costs is the cycle-cost model of one driver stack. Defaults (see
// DefaultCosts) were calibrated so the five sampling periods of the paper
// land in its overhead bands; see DESIGN.md §6.
type Costs struct {
	// PEBSAssist is the hardware cost of capturing one record into the DS
	// area (microcode assist), paid for every sample, stored or dropped.
	PEBSAssist uint64
	// PerSampleKernel is the kernel handler's per-record processing cost
	// (metadata synthesis in the vanilla driver; zero for ProRace).
	PerSampleKernel uint64
	// CopyPerByte is the kernel-to-user copy cost per record byte
	// (vanilla only; ProRace's single-buffer design eliminates it).
	CopyPerByte float64
	// InterruptEntry is the fixed PMI entry/exit cost per DS drain.
	InterruptEntry uint64
	// SegmentSwap is the ProRace handler's aux-buffer segment swap cost
	// per interrupt.
	SegmentSwap uint64
	// PerfCPUPerByte is the user-land perf tool's CPU cost per trace byte
	// (event processing and writev for vanilla; raw dump for ProRace).
	PerfCPUPerByte float64
	// PollIntervalCycles / PollCost model the perf tool's periodic ring
	// buffer polling per thread.
	PollIntervalCycles uint64
	PollCost           uint64
	// PTPerByte is the bandwidth-induced cost per PT stream byte.
	PTPerByte float64
	// SyncShim is the LD_PRELOAD interposition cost per traced
	// synchronization call.
	SyncShim uint64
	// MaxBusyFrac bounds the fraction of a throttle window spent on
	// sampling work before the kernel suspends the counter; it determines
	// each driver's worst-case slowdown plateau.
	MaxBusyFrac float64
}

// DefaultCosts returns the calibrated cost model for a driver kind.
func DefaultCosts(k Kind) Costs {
	if k == Vanilla {
		return Costs{
			PEBSAssist:         600,
			PerSampleKernel:    4000,
			CopyPerByte:        1.0,
			InterruptEntry:     1500,
			SegmentSwap:        0,
			PerfCPUPerByte:     0.5,
			PollIntervalCycles: 20_000,
			PollCost:           9_600,
			PTPerByte:          0.15,
			SyncShim:           25,
			MaxBusyFrac:        0.98,
		}
	}
	return Costs{
		PEBSAssist:         600,
		PerSampleKernel:    0,
		CopyPerByte:        0,
		InterruptEntry:     1200,
		SegmentSwap:        300,
		PerfCPUPerByte:     0.03,
		PollIntervalCycles: 20_000,
		PollCost:           800,
		PTPerByte:          0.15,
		SyncShim:           25,
		MaxBusyFrac:        0.875,
	}
}

// Options configures a driver instance.
type Options struct {
	// Kind selects vanilla or ProRace behaviour.
	Kind Kind
	// Period is the PEBS sampling period.
	Period uint64
	// Seed randomises the first sampling period (ProRace only).
	Seed int64
	// EnablePT turns on control-flow tracing (ProRace always runs with PT;
	// the RaceZ baseline runs without).
	EnablePT bool
	// Filters are the PT address filters; when empty and EnablePT is set,
	// the driver installs one filter over the program's text region.
	Filters []pt.Range
	// Costs overrides the cost model; nil selects DefaultCosts(Kind).
	Costs *Costs
	// DisableRandomFirstPeriod turns off the ProRace driver's per-thread
	// sampling-phase randomisation (§4.1.2) — the ablation showing its
	// contribution to detection diversity.
	DisableRandomFirstPeriod bool
	// PSBIntervalCycles overrides how often the PT unit emits sync-point
	// packets (0 selects the unit's default). Robustness tests lower it to
	// get PSB-dense streams whose corruption-recovery behaviour they can
	// observe.
	PSBIntervalCycles uint64
	// DSBufferRecords overrides the DS-area capacity in records (0 selects
	// the unit's 64 KB default). Tests shrink it to force frequent
	// interrupt-driven segment swaps.
	DSBufferRecords int
	// Telemetry receives the driver's prorace_driver_* counters, published
	// once in Finish so the hot tracing path stays untouched. Nil disables
	// publication.
	Telemetry *telemetry.Registry
}

// Driver is the online tracing stack attached to one machine run.
type Driver struct {
	m     *machine.Machine
	kind  Kind
	costs Costs

	pebs *pebs.Unit
	pt   *pt.Unit
	sync *synctrace.Collector

	trace *tracefmt.Trace

	nextPoll    uint64
	pollDebt    uint64
	pollCharged map[int32]bool
	ptFraction  map[int32]float64 // accumulated fractional PT cost
	ptBegun     map[int32]bool    // threads whose PT stream has its anchor

	tel        *telemetry.Registry
	interrupts uint64 // DS drains with records: ring wraps / segment swaps
}

// New builds a driver for the machine. Attach it with m.SetTracer before
// calling m.Run.
func New(m *machine.Machine, opts Options) *Driver {
	costs := DefaultCosts(opts.Kind)
	if opts.Costs != nil {
		costs = *opts.Costs
	}
	d := &Driver{
		m:     m,
		kind:  opts.Kind,
		costs: costs,
		pebs: pebs.New(pebs.Config{
			Period:            opts.Period,
			RandomFirstPeriod: opts.Kind == ProRace && !opts.DisableRandomFirstPeriod,
			Seed:              opts.Seed,
			MaxBusyFrac:       costs.MaxBusyFrac,
			DSBufferRecords:   opts.DSBufferRecords,
		}),
		sync:        synctrace.New(),
		trace:       tracefmt.NewTrace(m.Program().Name, opts.Period, opts.Seed),
		pollCharged: map[int32]bool{},
		ptFraction:  map[int32]float64{},
		ptBegun:     map[int32]bool{},
		tel:         opts.Telemetry,
	}
	if opts.EnablePT {
		filters := opts.Filters
		if len(filters) == 0 {
			start, end := m.Program().TextRegion()
			filters = []pt.Range{{Start: start, End: end}}
		}
		d.pt = pt.New(pt.Config{Filters: filters, PSBIntervalCycles: opts.PSBIntervalCycles})
	}
	return d
}

// InstRetired implements machine.Tracer.
func (d *Driver) InstRetired(ev *machine.InstEvent) uint64 {
	var stall uint64
	tid := int32(ev.TID)

	// Perf tool polling: one poller process per machine. When a core is
	// idle the poll runs there for free; on a saturated machine it steals
	// cycles from the application — which is why CPU-bound workloads pay
	// a fixed tracing tax that I/O-bound ones do not. The stolen cycles
	// are spread over distinct running threads (the scheduler would not
	// victimise one core).
	if ev.TSC >= d.nextPoll {
		if d.nextPoll != 0 && !d.m.HasIdleCore() {
			d.pollDebt = d.costs.PollCost
			for t := range d.pollCharged {
				delete(d.pollCharged, t)
			}
		}
		if d.nextPoll != 0 && d.pt != nil {
			// Flush accumulated PT bytes to the trace file in one batched
			// write: occupies the file bus but is asynchronous.
			total := 0
			for t := range d.ptBegun {
				total += d.pt.PendingBytes(t)
			}
			if total > 0 {
				d.m.OccupyFileBus(uint64(total))
			}
		}
		d.nextPoll = ev.TSC + d.costs.PollIntervalCycles
	}
	if d.pollDebt > 0 && !d.pollCharged[tid] {
		chunk := d.costs.PollCost / uint64(d.m.Cores())
		if chunk == 0 || chunk > d.pollDebt {
			chunk = d.pollDebt
		}
		stall += chunk
		d.pollDebt -= chunk
		d.pollCharged[tid] = true
	}

	// PT control-flow tracing.
	if d.pt != nil {
		if !d.ptBegun[tid] {
			// TIP.PGE equivalent: anchor the stream at the thread's first
			// traced instruction.
			d.pt.Begin(tid, ev.PC, ev.TSC)
			d.ptBegun[tid] = true
		}
		if ev.Inst.IsBranch() {
			n := d.pt.OnBranch(ev)
			if n > 0 {
				f := d.ptFraction[tid] + float64(n)*d.costs.PTPerByte
				if whole := uint64(f); whole > 0 {
					stall += whole
					f -= float64(whole)
				}
				d.ptFraction[tid] = f
			}
		}
	}

	// PEBS sampling.
	if ev.IsMem {
		res := d.pebs.OnMemEvent(ev)
		if res.Sampled {
			cost := d.costs.PEBSAssist + d.costs.PerSampleKernel
			if d.costs.CopyPerByte > 0 {
				cost += uint64(d.costs.CopyPerByte * float64(tracefmt.PEBSRecordSize+tracefmt.VanillaMetadataSize))
			}
			stall += cost
			d.pebs.AddBusyCycles(tid, ev.TSC, cost)
		}
		if res.Stored && d.pt != nil {
			// PMI-synchronised marker: lets the offline decoder pin this
			// sample onto the decoded path.
			d.pt.Mark(tid, ev.TSC)
		}
		if res.Interrupt {
			stall += d.handleInterrupt(tid, ev.TSC)
		}
	}
	return stall
}

// handleInterrupt drains the DS buffer into the trace and returns the
// handler + perf tool cost.
func (d *Driver) handleInterrupt(tid int32, tsc uint64) uint64 {
	recs := d.pebs.Drain(tid)
	if len(recs) == 0 {
		return 0
	}
	d.interrupts++
	d.trace.PEBS[tid] = append(d.trace.PEBS[tid], recs...)

	bytes := uint64(len(recs)) * tracefmt.PEBSRecordSize
	cost := d.costs.InterruptEntry + d.costs.SegmentSwap
	cost += uint64(d.costs.PerfCPUPerByte * float64(bytes))
	d.m.OccupyFileBus(bytes)
	d.pebs.AddBusyCycles(tid, tsc, cost)
	return cost
}

// SyscallRetired implements machine.Tracer.
func (d *Driver) SyscallRetired(ev *machine.SyscallEvent) uint64 {
	if d.sync.OnSyscall(ev) {
		return d.costs.SyncShim
	}
	return 0
}

// ThreadStarted implements machine.Tracer.
func (d *Driver) ThreadStarted(tid machine.TID, tsc uint64) {
	d.sync.OnThreadStart(tid, tsc)
}

// ThreadExited implements machine.Tracer.
func (d *Driver) ThreadExited(tid machine.TID, tsc uint64) {
	d.sync.OnThreadExit(tid, tsc)
}

// Finish drains all outstanding buffers and returns the completed trace.
// Call it after machine.Run returns.
func (d *Driver) Finish() *tracefmt.Trace {
	for tid, recs := range d.pebs.DrainAll() {
		d.trace.PEBS[tid] = append(d.trace.PEBS[tid], recs...)
	}
	if d.pt != nil {
		for tid, stream := range d.pt.Finish() {
			d.trace.PT[tid] = stream
		}
	}
	d.trace.Sync = d.sync.Records()
	d.trace.WallCycles = d.m.Now()
	d.trace.DroppedSamples = d.pebs.Dropped
	d.publish()
	return d.trace
}

// publish folds the completed trace's counters into the telemetry
// registry: one batch of Adds per traced run, nothing on the per-event
// path. Stored+dropped equals samples emitted, and every emitted sample
// implies one counter rearm — the period_resets series.
func (d *Driver) publish() {
	if d.tel == nil {
		return
	}
	var stored, ptBytes uint64
	for _, recs := range d.trace.PEBS {
		stored += uint64(len(recs))
	}
	for _, stream := range d.trace.PT {
		ptBytes += uint64(len(stream))
	}
	tel := d.tel
	tel.Counter("prorace_driver_traces_total", "Completed online tracing runs.").Inc()
	tel.Counter("prorace_driver_samples_emitted_total", "PEBS samples captured by the counter (stored + dropped).").Add(stored + d.pebs.Dropped)
	tel.Counter("prorace_driver_samples_stored_total", "PEBS records written to the trace file.").Add(stored)
	tel.Counter("prorace_driver_samples_dropped_total", "PEBS records lost to the store-spacing rule.").Add(d.pebs.Dropped)
	tel.Counter("prorace_driver_period_resets_total", "PEBS counter rearms after a period expiry.").Add(stored + d.pebs.Dropped)
	tel.Counter("prorace_driver_ring_wraps_total", "DS-buffer drains (vanilla ring copies / ProRace segment swaps).").Add(d.interrupts)
	tel.Counter("prorace_driver_throttled_events_total", "Memory events skipped while the counter was throttle-suspended.").Add(d.pebs.Throttled)
	tel.Counter("prorace_driver_pt_bytes_total", "Intel PT stream bytes collected.").Add(ptBytes)
	tel.Counter("prorace_driver_sync_records_total", "Synchronization shim records collected.").Add(uint64(len(d.trace.Sync)))
	tel.Histogram("prorace_trace_bytes", "Per-run collected trace size in bytes (PEBS + PT).", telemetry.SizeBuckets).Observe(float64(stored*tracefmt.PEBSRecordSize + ptBytes))
}

// DroppedSamples reports PEBS records lost to the store-spacing rule.
func (d *Driver) DroppedSamples() uint64 { return d.pebs.Dropped }

// ThrottledEvents reports events skipped while the counter was suspended.
func (d *Driver) ThrottledEvents() uint64 { return d.pebs.Throttled }
