package driver

import (
	"testing"

	"prorace/internal/asm"
	"prorace/internal/isa"
	"prorace/internal/machine"
	"prorace/internal/prog"
	"prorace/internal/tracefmt"
)

// cpuBoundProgram: four threads hammer per-thread arrays with loads/stores
// and branches — a miniature PARSEC-like kernel.
func cpuBoundProgram(iters int64) *prog.Program {
	b := asm.New("cpu")
	b.Global("arrays", 4*1024)
	m := b.Func("main")
	for i := int64(0); i < 4; i++ {
		m.MovI(isa.R4, i)
		m.SpawnThread("worker", isa.R4)
		m.Mov(isa.Reg(8+i), isa.R0)
	}
	for i := int64(0); i < 4; i++ {
		m.Join(isa.Reg(8 + i))
	}
	m.Exit(0)
	w := b.Func("worker")
	w.Mov(isa.R7, isa.R0) // index
	w.MulI(isa.R7, 1024)  // my array offset
	w.Lea(isa.R6, asm.Global("arrays", 0))
	w.Add(isa.R6, isa.R7) // base pointer
	w.MovI(isa.R3, iters)
	w.MovI(isa.R2, 0) // element index
	w.Label("loop")
	w.Load(isa.R1, asm.BaseIndex(isa.R6, isa.R2, 8, 0))
	w.AddI(isa.R1, 3)
	w.Store(asm.BaseIndex(isa.R6, isa.R2, 8, 0), isa.R1)
	w.AddI(isa.R2, 1)
	w.AndI(isa.R2, 127)
	w.SubI(isa.R3, 1)
	w.CmpI(isa.R3, 0)
	w.Jgt("loop")
	w.Exit(0)
	return mustBuild(b)
}

// runTraced executes the program with the given driver options and returns
// overhead relative to an untraced run plus the trace.
func runTraced(t *testing.T, p *prog.Program, opts Options) (float64, *tracefmt.Trace) {
	t.Helper()
	base := machine.New(p, machine.Config{Seed: 11})
	bst, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	mac := machine.New(p, machine.Config{Seed: 11})
	d := New(mac, opts)
	mac.SetTracer(d)
	tst, err := mac.Run()
	if err != nil {
		t.Fatal(err)
	}
	tr := d.Finish()
	return float64(tst.Cycles)/float64(bst.Cycles) - 1, tr
}

func TestProRaceDriverEndToEnd(t *testing.T) {
	p := cpuBoundProgram(20000)
	overhead, tr := runTraced(t, p, Options{Kind: ProRace, Period: 1000, Seed: 3, EnablePT: true})
	if tr.SampleCount() == 0 {
		t.Fatal("no PEBS samples")
	}
	if len(tr.PT) == 0 {
		t.Fatal("no PT streams")
	}
	if len(tr.Sync) == 0 {
		t.Fatal("no sync records")
	}
	// Sample IPs must be loads/stores of the program; registers captured.
	for tid, recs := range tr.PEBS {
		for _, r := range recs {
			in, ok := p.InstAt(r.IP)
			if !ok || !in.IsMemAccess() {
				t.Fatalf("tid %d: sample IP %#x is not a memory access", tid, r.IP)
			}
			if r.TSC == 0 && r.IP == 0 {
				t.Fatal("empty record")
			}
		}
	}
	// CPU-bound at period 1000 should land in single-digit-percent
	// overhead with the ProRace driver (paper: 13% geomean).
	if overhead <= 0 || overhead > 0.6 {
		t.Errorf("ProRace overhead at period 1K = %.1f%%, expected a few percent", overhead*100)
	}
	if tr.WallCycles == 0 || tr.Period != 1000 {
		t.Errorf("trace metadata: %+v", tr)
	}
}

func TestVanillaCostlierThanProRace(t *testing.T) {
	p := cpuBoundProgram(20000)
	for _, period := range []uint64{100, 1000, 10000} {
		ovhV, _ := runTraced(t, p, Options{Kind: Vanilla, Period: period, Seed: 3})
		ovhP, _ := runTraced(t, p, Options{Kind: ProRace, Period: period, Seed: 3, EnablePT: true})
		if ovhV <= ovhP {
			t.Errorf("period %d: vanilla %.1f%% <= prorace %.1f%%", period, ovhV*100, ovhP*100)
		}
		t.Logf("period %d: vanilla %.1f%% prorace %.1f%%", period, ovhV*100, ovhP*100)
	}
}

func TestOverheadGrowsAsPeriodShrinks(t *testing.T) {
	p := cpuBoundProgram(20000)
	var last float64 = -1
	for _, period := range []uint64{10000, 1000, 100} {
		ovh, _ := runTraced(t, p, Options{Kind: ProRace, Period: period, Seed: 3, EnablePT: true})
		if ovh < last {
			t.Errorf("overhead shrank from %.2f to %.2f as period dropped to %d", last, ovh, period)
		}
		last = ovh
	}
}

func TestThrottleBoundsWorstCase(t *testing.T) {
	p := cpuBoundProgram(30000)
	ovh, _ := runTraced(t, p, Options{Kind: ProRace, Period: 10, Seed: 3, EnablePT: true})
	// MaxBusyFrac 0.875 bounds slowdown near 1/(1-0.875) = 8x.
	if ovh > 9.5 {
		t.Errorf("period-10 overhead = %.1fx, throttle did not bound it", ovh)
	}
	if ovh < 2 {
		t.Errorf("period-10 overhead = %.1fx, implausibly low", ovh)
	}
}

func TestSampleDropsAtTinyPeriod(t *testing.T) {
	p := cpuBoundProgram(20000)
	_, tr10 := runTraced(t, p, Options{Kind: ProRace, Period: 10, Seed: 3, EnablePT: true})
	if tr10.DroppedSamples == 0 {
		t.Error("period 10 produced no drops; the Figure 8 inversion cannot occur")
	}
}

func TestTraceSizeScalesWithPeriod(t *testing.T) {
	p := cpuBoundProgram(20000)
	_, trBig := runTraced(t, p, Options{Kind: ProRace, Period: 10000, Seed: 3, EnablePT: true})
	_, trSmall := runTraced(t, p, Options{Kind: ProRace, Period: 1000, Seed: 3, EnablePT: true})
	if trSmall.SampleCount() <= trBig.SampleCount() {
		t.Errorf("period 1K samples (%d) not more than period 10K (%d)",
			trSmall.SampleCount(), trBig.SampleCount())
	}
	// PEBS must dominate PT in volume (paper §7.3: ~99%).
	pebsB, ptB, _ := trSmall.Sizes()
	if pebsB < ptB {
		t.Errorf("PT (%d B) larger than PEBS (%d B); compression model broken", ptB, pebsB)
	}
}

func TestVanillaHasNoRandomFirstPeriod(t *testing.T) {
	// With the vanilla driver, two threads doing identical work sample at
	// identical event offsets. We verify via the driver's construction:
	// ProRace sets RandomFirstPeriod, vanilla does not — observable as
	// different first-sample IPs across seeds for ProRace.
	p := cpuBoundProgram(5000)
	_, tr1 := runTraced(t, p, Options{Kind: ProRace, Period: 997, Seed: 1, EnablePT: true})
	_, tr2 := runTraced(t, p, Options{Kind: ProRace, Period: 997, Seed: 2, EnablePT: true})
	firstIP := func(tr *tracefmt.Trace) []uint64 {
		var out []uint64
		for _, tid := range tr.TIDs() {
			if recs := tr.PEBS[int32(tid)]; len(recs) > 0 {
				out = append(out, recs[0].IP)
			}
		}
		return out
	}
	a, b := firstIP(tr1), firstIP(tr2)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Log("warning: two seeds produced identical first samples (possible but unlikely)")
	}
}

func TestKindString(t *testing.T) {
	if Vanilla.String() != "vanilla" || ProRace.String() != "prorace" {
		t.Error("kind names wrong")
	}
}

func TestCustomCosts(t *testing.T) {
	p := cpuBoundProgram(3000)
	free := DefaultCosts(ProRace)
	free.PEBSAssist = 0
	free.PollCost = 0
	free.SyncShim = 0
	free.PTPerByte = 0
	free.InterruptEntry = 0
	free.SegmentSwap = 0
	free.PerfCPUPerByte = 0
	ovh, tr := runTraced(t, p, Options{Kind: ProRace, Period: 1000, Seed: 3, Costs: &free})
	if ovh > 0.001 {
		t.Errorf("zero-cost model still shows %.2f%% overhead", ovh*100)
	}
	if tr.SampleCount() == 0 {
		t.Error("zero-cost model must still sample")
	}
}

// mustBuild finalises a test program; the inputs are static, so a build
// error means the test itself is broken.
func mustBuild(b *asm.Builder) *prog.Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// TestSegmentSwapChargedPerDrain isolates the ProRace handler's segment-swap
// cost: with every other cost zeroed and a tiny DS buffer, raising
// SegmentSwap must raise the traced run's cycle count — proof the handler
// actually swaps segments on each interrupt-driven drain.
func TestSegmentSwapChargedPerDrain(t *testing.T) {
	p := cpuBoundProgram(3000)
	free := DefaultCosts(ProRace)
	free.PEBSAssist = 0
	free.PollCost = 0
	free.SyncShim = 0
	free.PTPerByte = 0
	free.InterruptEntry = 0
	free.SegmentSwap = 0
	free.PerfCPUPerByte = 0
	base, btr := runTraced(t, p, Options{Kind: ProRace, Period: 200, Seed: 3, Costs: &free, DSBufferRecords: 8})

	swap := free
	swap.SegmentSwap = 50_000
	costly, ctr := runTraced(t, p, Options{Kind: ProRace, Period: 200, Seed: 3, Costs: &swap, DSBufferRecords: 8})

	if btr.SampleCount() == 0 || ctr.SampleCount() == 0 {
		t.Fatalf("runs must sample: base %d, swap %d records", btr.SampleCount(), ctr.SampleCount())
	}
	if costly <= base {
		t.Errorf("segment-swap cost not charged: overhead %.4f with 50k-cycle swaps vs %.4f with free swaps", costly, base)
	}
}

// TestTinyDSBufferLosesNoSamples: interrupt-driven drains plus the final
// Finish drain must deliver every stored record, in per-thread TSC order,
// no matter how small the segment is.
func TestTinyDSBufferLosesNoSamples(t *testing.T) {
	p := cpuBoundProgram(3000)
	_, tr := runTraced(t, p, Options{Kind: ProRace, Period: 200, Seed: 3, DSBufferRecords: 4})
	total := 0
	for tid, recs := range tr.PEBS {
		total += len(recs)
		for i := 1; i < len(recs); i++ {
			if recs[i].TSC < recs[i-1].TSC {
				t.Fatalf("tid %d: records out of TSC order at %d (%d < %d)", tid, i, recs[i].TSC, recs[i-1].TSC)
			}
		}
	}
	if total == 0 {
		t.Fatal("no records stored")
	}
	if total != tr.SampleCount() {
		t.Errorf("drains lost records: %d in trace, SampleCount %d", total, tr.SampleCount())
	}
}
