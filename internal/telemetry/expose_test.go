package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestServe starts a real listener on an ephemeral port and scrapes every
// endpoint the mux serves.
func TestServe(t *testing.T) {
	r := New()
	r.Counter("prorace_test_total", "Test counter.").Add(42)
	sp := r.StartSpan("stage")
	sp.End()

	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Registry() != r {
		t.Fatal("Registry() mismatch")
	}

	get := func(path string) (string, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		// The registry-backed endpoints must suppress caching (the pprof
		// handlers are the stdlib's and set their own headers).
		if !strings.HasPrefix(path, "/debug/pprof") {
			if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
				t.Errorf("GET %s: Cache-Control = %q, want no-store", path, cc)
			}
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body), resp.Header.Get("Content-Type")
	}

	metrics, ctype := get("/metrics")
	if !strings.Contains(metrics, "prorace_test_total 42") {
		t.Errorf("/metrics missing counter:\n%s", metrics)
	}
	if !strings.Contains(ctype, "version=0.0.4") || !strings.Contains(ctype, "charset=utf-8") {
		t.Errorf("/metrics content type = %q", ctype)
	}
	// Every scrape refreshes the uptime gauge.
	if !strings.Contains(metrics, "prorace_uptime_seconds") {
		t.Errorf("/metrics missing uptime gauge:\n%s", metrics)
	}

	vars, _ := get("/debug/vars")
	var snap Snapshot
	if err := json.Unmarshal([]byte(vars), &snap); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if snap.Counters["prorace_test_total"] != 42 {
		t.Errorf("/debug/vars counter = %d", snap.Counters["prorace_test_total"])
	}

	timeline, _ := get("/timeline")
	var doc map[string]any
	if err := json.Unmarshal([]byte(timeline), &doc); err != nil {
		t.Fatalf("/timeline not JSON: %v", err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Error("/timeline missing traceEvents")
	}

	if body, _ := get("/debug/pprof/"); !strings.Contains(body, "profile") {
		t.Errorf("/debug/pprof/ index looks wrong:\n%.200s", body)
	}
}

// TestRegisterBuildInfo: the conventional build-metadata gauge renders as
// a constant 1 carrying service, version and Go toolchain labels.
func TestRegisterBuildInfo(t *testing.T) {
	r := New()
	RegisterBuildInfo(r, "proraced")
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `prorace_build_info{service="proraced"`) {
		t.Fatalf("build-info gauge missing service label:\n%s", out)
	}
	for _, want := range []string{`version=`, `goversion="go`} {
		if !strings.Contains(out, want) {
			t.Fatalf("build-info gauge missing %s label:\n%s", want, out)
		}
	}
	// The rendered family name strips the labels (Prometheus grouping).
	if !strings.Contains(out, "# TYPE prorace_build_info gauge") {
		t.Fatalf("build-info family header wrong:\n%s", out)
	}
	snap := r.Snapshot()
	for name, v := range snap.Gauges {
		if strings.HasPrefix(name, "prorace_build_info") && v != 1 {
			t.Fatalf("build-info gauge = %d, want constant 1", v)
		}
	}
}

// TestEnsureServer reuses one listener per address.
func TestEnsureServer(t *testing.T) {
	r := New()
	s1, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	addr := s1.Addr()
	serversMu.Lock()
	servers[addr] = s1
	serversMu.Unlock()
	defer func() {
		serversMu.Lock()
		delete(servers, addr)
		serversMu.Unlock()
	}()
	s2, err := EnsureServer(addr, r)
	if err != nil {
		t.Fatal(err)
	}
	if s2 != s1 {
		t.Fatal("EnsureServer must reuse the existing server for an address")
	}
}

// TestEnsureServerCloseDeregisters is the regression test for the stale
// registration bug: Close left the server in the process-wide map, so
// reusing its -metrics-addr returned a dead listener. Registration and
// Close are now atomic — after Close, EnsureServer for the same address
// must hand out a fresh, live server.
func TestEnsureServerCloseDeregisters(t *testing.T) {
	r := New()
	const addr = "127.0.0.1:0"
	s1, err := EnsureServer(addr, r)
	if err != nil {
		t.Fatal(err)
	}
	again, err := EnsureServer(addr, r)
	if err != nil {
		t.Fatal(err)
	}
	if again != s1 {
		s1.Close()
		again.Close()
		t.Fatal("EnsureServer must reuse the live server for an address")
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := EnsureServer(addr, r)
	if err != nil {
		t.Fatalf("EnsureServer after Close: %v", err)
	}
	defer s2.Close()
	if s2 == s1 {
		t.Fatal("EnsureServer returned the closed server for a reused address")
	}
	resp, err := http.Get("http://" + s2.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("replacement server not serving: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replacement server /metrics: %s", resp.Status)
	}

	// Closing the replacement must deregister it too (no stale entry).
	s2.Close()
	serversMu.Lock()
	_, stale := servers[addr]
	serversMu.Unlock()
	if stale {
		t.Fatal("closed server still registered")
	}
}
