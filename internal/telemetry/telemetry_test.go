package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety exercises every method on nil handles — the disabled-
// telemetry configuration every hot path runs with.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x", "", DepthBuckets)
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must hand out nil metrics, got %v %v %v", c, g, h)
	}
	c.Inc()
	c.Add(3)
	c.AddInt(5)
	g.Set(1)
	g.Add(-1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if err := h.Merge(h); err != nil {
		t.Fatalf("nil merge: %v", err)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || c.Name() != "" {
		t.Fatal("nil metrics must read as zero")
	}
	s := r.Snapshot()
	if s != nil {
		t.Fatalf("nil registry snapshot = %v, want nil", s)
	}
	if s.Counter("x") != 0 {
		t.Fatal("nil snapshot Counter must be 0")
	}
	sp := r.StartSpan("x")
	sp.End()
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil WritePrometheus = %q, %v", buf.String(), err)
	}
	buf.Reset()
	if err := r.WriteJSON(&buf); err != nil || strings.TrimSpace(buf.String()) != "{}" {
		t.Fatalf("nil WriteJSON = %q, %v", buf.String(), err)
	}
}

// TestHistogramBuckets pins the le bucket semantics: an observation lands
// in the first bucket whose upper bound is >= the value, boundary values
// inclusive, and overflow in the +Inf bucket.
func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("h", "", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 4, 5, 100} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["h"]
	// 0.5 and 1 → le=1; 1.5 and 2 → le=2; 4 → le=4; 5 and 100 → +Inf.
	want := []uint64{2, 2, 1, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 7 {
		t.Errorf("count = %d, want 7", s.Count)
	}
	if s.Sum != 0.5+1+1.5+2+4+5+100 {
		t.Errorf("sum = %g", s.Sum)
	}
	if len(s.Bounds) != 3 || len(s.Counts) != 4 {
		t.Errorf("snapshot shape: %d bounds, %d counts", len(s.Bounds), len(s.Counts))
	}
}

// TestHistogramUnsortedBounds: bounds are sorted at creation, so callers
// may pass them in any order.
func TestHistogramUnsortedBounds(t *testing.T) {
	r := New()
	h := r.Histogram("h", "", []float64{4, 1, 2})
	h.Observe(1.5)
	s := r.Snapshot().Histograms["h"]
	if s.Bounds[0] != 1 || s.Bounds[1] != 2 || s.Bounds[2] != 4 {
		t.Fatalf("bounds not sorted: %v", s.Bounds)
	}
	if s.Counts[1] != 1 {
		t.Fatalf("1.5 should land in le=2, counts %v", s.Counts)
	}
}

func TestHistogramMerge(t *testing.T) {
	r := New()
	a := r.Histogram("a", "", []float64{1, 10})
	b := r.Histogram("b", "", []float64{1, 10})
	a.Observe(0.5)
	a.Observe(5)
	b.Observe(5)
	b.Observe(50)
	if err := a.Merge(b); err != nil {
		t.Fatalf("merge: %v", err)
	}
	s := r.Snapshot().Histograms["a"]
	if got := s.Counts; got[0] != 1 || got[1] != 2 || got[2] != 1 {
		t.Errorf("merged counts = %v, want [1 2 1]", got)
	}
	if s.Count != 4 || s.Sum != 60.5 {
		t.Errorf("merged count/sum = %d/%g, want 4/60.5", s.Count, s.Sum)
	}

	// Mismatched bucket layouts must refuse to merge, not corrupt.
	short := r.Histogram("short", "", []float64{1})
	if err := a.Merge(short); err == nil {
		t.Error("merging mismatched bucket counts must error")
	}
	shifted := r.Histogram("shifted", "", []float64{2, 10})
	if err := a.Merge(shifted); err == nil {
		t.Error("merging mismatched bucket bounds must error")
	}
	if got := r.Snapshot().Histograms["a"].Count; got != 4 {
		t.Errorf("failed merges must leave the target untouched, count = %d", got)
	}
}

// TestConcurrentCounters hammers one registry from many goroutines; run
// under -race this also proves the handles are safe to share.
func TestConcurrentCounters(t *testing.T) {
	r := New()
	const goroutines, perG = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Resolve handles inside the goroutine: create-on-first-use
			// must also be concurrency-safe.
			c := r.Counter("c", "")
			h := r.Histogram("h", "", DepthBuckets)
			ga := r.Gauge("g", "")
			for i := 0; i < perG; i++ {
				c.Inc()
				ga.Add(1)
				h.Observe(float64(i % 16))
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.Counters["c"]; got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := s.Gauges["g"]; got != goroutines*perG {
		t.Errorf("gauge = %d, want %d", got, goroutines*perG)
	}
	if got := s.Histograms["h"].Count; got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
}

// TestPrometheusGolden pins the text exposition format: sorted families,
// one HELP/TYPE per family, labelled series merged under their family,
// cumulative histogram buckets with +Inf, _sum and _count.
func TestPrometheusGolden(t *testing.T) {
	r := New()
	r.Counter("prorace_b_total", "Counts b.").Add(3)
	r.Counter(Label("prorace_shard_total", "shard", 0), "Per-shard events.").Add(10)
	r.Counter(Label("prorace_shard_total", "shard", 1), "Per-shard events.").Add(20)
	r.Gauge("prorace_a_gauge", "Gauges a.").Set(-7)
	h := r.Histogram("prorace_lat_seconds", "Latency.", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(99)

	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	const want = `# HELP prorace_a_gauge Gauges a.
# TYPE prorace_a_gauge gauge
prorace_a_gauge -7
# HELP prorace_b_total Counts b.
# TYPE prorace_b_total counter
prorace_b_total 3
# HELP prorace_lat_seconds Latency.
# TYPE prorace_lat_seconds histogram
prorace_lat_seconds_bucket{le="1"} 1
prorace_lat_seconds_bucket{le="2"} 2
prorace_lat_seconds_bucket{le="+Inf"} 3
prorace_lat_seconds_sum 101
prorace_lat_seconds_count 3
# HELP prorace_shard_total Per-shard events.
# TYPE prorace_shard_total counter
prorace_shard_total{shard="0"} 10
prorace_shard_total{shard="1"} 20
`
	if got := buf.String(); got != want {
		t.Errorf("Prometheus output mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestLabel(t *testing.T) {
	if got := Label("x_total", "shard", 3); got != `x_total{shard="3"}` {
		t.Errorf("Label = %s", got)
	}
	if got := withLabel(`x{shard="3"}`, "le", "1"); got != `x{shard="3",le="1"}` {
		t.Errorf("withLabel = %s", got)
	}
	if got := familyOf(`x_total{shard="3"}`); got != "x_total" {
		t.Errorf("familyOf = %s", got)
	}
}

// TestTimelineStructure validates the chrome://tracing artifact: complete
// trace-event objects with the X phase, microsecond timestamps, and span
// tracks mapped to tids.
func TestTimelineStructure(t *testing.T) {
	r := New()
	outer := r.StartSpan("analyze")
	inner := r.StartSpanTrack("reconstruct t3", 4)
	time.Sleep(time.Millisecond)
	inner.End()
	outer.End()

	var buf strings.Builder
	if err := r.WriteTimeline(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &doc); err != nil {
		t.Fatalf("timeline is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(doc.TraceEvents))
	}
	byName := map[string]int{}
	for i, e := range doc.TraceEvents {
		byName[e.Name] = i
		if e.Ph != "X" {
			t.Errorf("event %q ph = %q, want X", e.Name, e.Ph)
		}
		if e.Dur <= 0 && e.Name == "reconstruct t3" {
			t.Errorf("event %q dur = %v, want > 0", e.Name, e.Dur)
		}
	}
	an, ok := byName["analyze"]
	rec, ok2 := byName["reconstruct t3"]
	if !ok || !ok2 {
		t.Fatalf("missing events: %v", byName)
	}
	if doc.TraceEvents[an].Tid != 0 || doc.TraceEvents[rec].Tid != 4 {
		t.Errorf("tracks: analyze tid %d (want 0), reconstruct tid %d (want 4)",
			doc.TraceEvents[an].Tid, doc.TraceEvents[rec].Tid)
	}
	if doc.TraceEvents[an].Dur < doc.TraceEvents[rec].Dur {
		t.Error("outer span should not be shorter than the inner one")
	}
}

// TestCounterReuse: the registry hands back the same handle for a name, so
// independently resolved handles accumulate into one series.
func TestCounterReuse(t *testing.T) {
	r := New()
	r.Counter("c", "").Add(2)
	r.Counter("c", "ignored later help").Add(3)
	if got := r.Snapshot().Counter("c"); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c", "").Name() != "c" {
		t.Fatal("Name mismatch")
	}
}

// TestAddInt ignores non-positive deltas (result-struct ints).
func TestAddInt(t *testing.T) {
	r := New()
	c := r.Counter("c", "")
	c.AddInt(-5)
	c.AddInt(0)
	c.AddInt(7)
	if c.Value() != 7 {
		t.Fatalf("value = %d, want 7", c.Value())
	}
}

// TestDefaultRegistry covers the process-wide fallback the cmds install.
func TestDefaultRegistry(t *testing.T) {
	old := Default()
	defer SetDefault(old)
	SetDefault(nil)
	if Default() != nil {
		t.Fatal("expected no default registry")
	}
	r1 := EnableDefault()
	if r1 == nil || Default() != r1 {
		t.Fatal("EnableDefault must install a registry")
	}
	if r2 := EnableDefault(); r2 != r1 {
		t.Fatal("EnableDefault must reuse the installed registry")
	}
}
