package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"prorace/internal/profiling"
)

// familyOf strips the label part of a rendered metric name:
// `x_total{shard="3"}` → `x_total`.
func familyOf(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// withLabel merges an extra label into a rendered name:
// withLabel(`x`, `le`, `1`) → `x{le="1"}`;
// withLabel(`x{shard="3"}`, `le`, `1`) → `x{shard="3",le="1"}`.
func withLabel(name, key, value string) string {
	if strings.HasSuffix(name, "}") {
		return fmt.Sprintf("%s,%s=%q}", name[:len(name)-1], key, value)
	}
	return fmt.Sprintf("%s{%s=%q}", name, key, value)
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus renders every metric in Prometheus text exposition
// format (version 0.0.4), sorted by name so the output is stable. A nil
// registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	type entry struct {
		name string
		typ  string
		help string
		emit func(io.Writer) error
	}
	r.mu.Lock()
	entries := make([]entry, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		c := c
		entries = append(entries, entry{name, "counter", c.help, func(w io.Writer) error {
			_, err := fmt.Fprintf(w, "%s %d\n", c.name, c.Value())
			return err
		}})
	}
	for name, g := range r.gauges {
		g := g
		entries = append(entries, entry{name, "gauge", g.help, func(w io.Writer) error {
			_, err := fmt.Fprintf(w, "%s %d\n", g.name, g.Value())
			return err
		}})
	}
	for name, h := range r.hists {
		h := h
		entries = append(entries, entry{name, "histogram", h.help, func(w io.Writer) error {
			var cum uint64
			for i, b := range h.bounds {
				cum += h.counts[i].Load()
				if _, err := fmt.Fprintf(w, "%s %d\n", withLabel(h.name+"_bucket", "le", formatFloat(b)), cum); err != nil {
					return err
				}
			}
			cum += h.counts[len(h.bounds)].Load()
			if _, err := fmt.Fprintf(w, "%s %d\n", withLabel(h.name+"_bucket", "le", "+Inf"), cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum %s\n", h.name, formatFloat(h.Sum())); err != nil {
				return err
			}
			_, err := fmt.Fprintf(w, "%s_count %d\n", h.name, h.Count())
			return err
		}})
	}
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	lastFamily := ""
	for _, e := range entries {
		if fam := familyOf(e.name); fam != lastFamily {
			lastFamily = fam
			if e.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam, e.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, e.typ); err != nil {
				return err
			}
		}
		if err := e.emit(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the registry's snapshot as indented expvar-style JSON
// (the /debug/vars payload). A nil registry writes an empty object.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r.Snapshot())
}

// processStart anchors the prorace_uptime_seconds gauge.
var processStart = time.Now()

// touchUptime refreshes the uptime gauge so every scrape sees a current
// value (a gauge is a stored int; there is no read hook to compute it).
func touchUptime(reg *Registry) {
	reg.Gauge("prorace_uptime_seconds", "Seconds since the process started.").
		Set(int64(time.Since(processStart).Seconds()))
}

// BuildVersion reports the module version baked into the binary by the go
// toolchain ("devel" for plain `go build` trees).
func BuildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "devel"
}

// RegisterBuildInfo publishes the conventional build-metadata gauge: a
// constant 1 carrying the service name, module version and Go toolchain
// version as labels, so a fleet dashboard can group scrape targets by
// binary.
func RegisterBuildInfo(reg *Registry, service string) {
	name := fmt.Sprintf(`prorace_build_info{service=%q,version=%q,goversion=%q}`,
		service, BuildVersion(), runtime.Version())
	reg.Gauge(name, "Build metadata: constant 1, labelled with the service, module version and Go version.").Set(1)
}

// NewMux returns the telemetry HTTP handler set: /metrics (Prometheus
// text), /debug/vars (expvar-style JSON snapshot), /timeline
// (chrome://tracing trace events), and /debug/pprof/* via
// internal/profiling. Introspection responses are marked
// Cache-Control: no-store — a cached scrape is a lie about the present.
func NewMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		touchUptime(reg)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Header().Set("Cache-Control", "no-store")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		touchUptime(reg)
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Header().Set("Cache-Control", "no-store")
		reg.WriteJSON(w)
	})
	mux.HandleFunc("/timeline", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Header().Set("Cache-Control", "no-store")
		reg.WriteTimeline(w)
	})
	profiling.AttachPprof(mux)
	return mux
}

// Server is a live telemetry HTTP listener.
type Server struct {
	reg *Registry
	ln  net.Listener
	srv *http.Server

	// key is the EnsureServer registration address ("" for servers started
	// directly via Serve); closed marks the server shut down. Both are
	// guarded by serversMu so registration, lookup and Close are atomic
	// with respect to each other — Close deregisters the address in the
	// same critical section that marks the server dead, so a reused addr
	// can never observe (and hand out) a stale closed server.
	key    string
	closed bool
}

// Serve starts a telemetry HTTP server on addr (host:port; port 0 picks a
// free port) and returns once the listener is accepting.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{reg: reg, ln: ln, srv: &http.Server{Handler: NewMux(reg), ReadHeaderTimeout: 5 * time.Second}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the listener's resolved address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Registry returns the registry the server scrapes.
func (s *Server) Registry() *Registry { return s.reg }

// Close shuts the listener down. A server handed out by EnsureServer is
// deregistered in the same step, so the next EnsureServer call for its
// address starts a fresh listener instead of returning the dead one.
func (s *Server) Close() error {
	serversMu.Lock()
	s.closed = true
	if s.key != "" {
		if servers[s.key] == s {
			delete(servers, s.key)
		}
		s.key = ""
	}
	serversMu.Unlock()
	return s.srv.Close()
}

var (
	serversMu sync.Mutex
	servers   = make(map[string]*Server)
)

// EnsureServer starts (or reuses) the process-wide telemetry server for
// addr. The first call for an address creates the listener bound to reg;
// subsequent calls with the same addr return the existing server, so
// library entry points can call this unconditionally per analysis.
// Registration is atomic with respect to Close: closing a server removes
// its registration in the same serversMu critical section, so a reused
// addr always yields a live listener.
func EnsureServer(addr string, reg *Registry) (*Server, error) {
	serversMu.Lock()
	defer serversMu.Unlock()
	if s, ok := servers[addr]; ok && !s.closed {
		return s, nil
	}
	s, err := Serve(addr, reg)
	if err != nil {
		return nil, err
	}
	s.key = addr
	servers[addr] = s
	return s, nil
}
