package telemetry

import (
	"encoding/json"
	"io"
	"os"
	"time"
)

// SpanEvent is one completed stage span: a named interval on a track.
// Start is relative to the registry's epoch, so a snapshot's spans are
// directly comparable and render on a shared timeline. Track groups spans
// into lanes (0 = the pipeline's top-level stages; per-thread work uses
// 1+TID, per-shard work uses 1+shard).
type SpanEvent struct {
	Name  string        `json:"name"`
	Track int           `json:"track"`
	Start time.Duration `json:"start"`
	Dur   time.Duration `json:"dur"`
}

// Span is an in-flight stage span; End completes it and appends it to the
// registry's span log. A nil Span (from a nil registry) is a no-op.
type Span struct {
	r     *Registry
	name  string
	track int
	t0    time.Time
}

// StartSpan opens a span on track 0. Returns nil (a no-op span) on a nil
// registry — the only allocation happens when telemetry is enabled.
func (r *Registry) StartSpan(name string) *Span { return r.StartSpanTrack(name, 0) }

// StartSpanTrack opens a span on an explicit track lane.
func (r *Registry) StartSpanTrack(name string, track int) *Span {
	if r == nil {
		return nil
	}
	return &Span{r: r, name: name, track: track, t0: time.Now()}
}

// End completes the span.
func (s *Span) End() {
	if s == nil {
		return
	}
	ev := SpanEvent{
		Name:  s.name,
		Track: s.track,
		Start: s.t0.Sub(s.r.epoch),
		Dur:   time.Since(s.t0),
	}
	s.r.spanMu.Lock()
	s.r.spans = append(s.r.spans, ev)
	s.r.spanMu.Unlock()
}

// traceEvent is one chrome://tracing "complete" event (ph="X"); ts and dur
// are microseconds.
type traceEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
	TS   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
}

// timelineFile is the trace-event container format chrome://tracing and
// https://ui.perfetto.dev load directly.
type timelineFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTimeline renders the completed spans as a chrome://tracing
// trace-event JSON document. Tracks map to tids, so top-level stages and
// per-thread/per-shard work appear as separate lanes.
func (r *Registry) WriteTimeline(w io.Writer) error {
	var spans []SpanEvent
	if r != nil {
		r.spanMu.Lock()
		spans = append(spans, r.spans...)
		r.spanMu.Unlock()
	}
	tf := timelineFile{TraceEvents: make([]traceEvent, 0, len(spans)), DisplayTimeUnit: "ms"}
	for _, ev := range spans {
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: ev.Name,
			Cat:  "pipeline",
			Ph:   "X",
			PID:  1,
			TID:  ev.Track,
			TS:   float64(ev.Start) / float64(time.Microsecond),
			Dur:  float64(ev.Dur) / float64(time.Microsecond),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(tf)
}

// WriteTimelineFile writes the timeline artifact to path.
func (r *Registry) WriteTimelineFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteTimeline(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
