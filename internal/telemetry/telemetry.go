// Package telemetry is the pipeline's zero-dependency metrics layer:
// atomic counters, gauges and bucketed histograms collected in a named
// Registry, plus lightweight stage spans (span.go) that render as a
// chrome://tracing timeline. The Registry is exposed three ways — the
// Snapshot API merged into core.AnalysisResult.Telemetry, the Prometheus
// text / expvar-style JSON endpoints of Serve (expose.go), and the
// -timeline trace-event artifact.
//
// # Design rules
//
// Every method on every metric type and on the Registry itself is nil-safe:
// calling Add, Observe, StartSpan... on a nil receiver is a no-op. Hot
// paths therefore resolve their metric handles once (at engine or detector
// construction) and call through possibly-nil pointers unconditionally —
// with telemetry disabled the handles are nil and the instrumented paths
// allocate nothing and branch on a single nil check (guarded by the
// AllocsPerRun tests in internal/replay and internal/race).
//
// Counter values derived from the pipeline are deterministic wherever the
// pipeline is: for a given (program, seed) the prorace_driver_*,
// prorace_ptdecode_*, prorace_synthesis_*, prorace_replay_* and
// prorace_detect_*_total series are reproducible bit-for-bit across
// Workers/DetectShards/path-cache configurations. Span durations and the
// prorace_detect_queue_depth histogram measure wall-clock scheduling and
// are inherently non-deterministic.
//
// # Mapping from the scattered result counters
//
// The pre-telemetry result structs remain the source of truth and are not
// deprecated; the registry folds them into one scrapeable namespace:
//
//   - replay.Stats{Sampled, Forward, Backward, BasicBlock, PathSteps,
//     MemSteps, InvalidHits} → prorace_replay_accesses_sampled_total,
//     _forward_total, _backward_total, _bb_total, prorace_replay_path_steps_total,
//     _mem_steps_total, _invalid_hits_total; Stats.Iterations (per-thread
//     fixed-point rounds) → the prorace_replay_iterations histogram.
//   - core.AnalysisResult.DecodeCacheHit → prorace_synthesis_cache_hits_total /
//     prorace_synthesis_cache_misses_total (one increment per analysis).
//   - tracefmt.SalvageInfo{Truncated, TornBytes, DroppedPEBS, DroppedSync,
//     DroppedPTBytes} → prorace_trace_salvage_truncated_total,
//     _torn_bytes_total, _dropped_pebs_total, _dropped_sync_total,
//     _dropped_pt_bytes_total, plus prorace_trace_salvage_runs_total per
//     degraded decode (published by cmd/prorace, which owns container
//     decoding).
//   - core.Degradation{ThreadErrors, DroppedThreads, CorruptPTPackets,
//     DecodeGaps, PTBytesSkipped, UnpinnedSamples, SyncAnomalies,
//     GapAdjacentRaces, InvalidTIDDrops} → prorace_analysis_thread_errors_total,
//     _dropped_threads_total, prorace_ptdecode_corrupt_packets_total,
//     _psb_resyncs_total, _gap_bytes_total, prorace_synthesis_samples_unpinned_total,
//     prorace_analysis_sync_anomalies_total, _gap_adjacent_reports_total,
//     _invalid_tid_drops_total.
//
// The full metric-name catalogue lives in DESIGN.md §12.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// unusable; obtain counters from a Registry. All methods are no-ops on a
// nil receiver.
type Counter struct {
	v    atomic.Uint64
	name string
	help string
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// AddInt adds n if it is positive (result-struct fields are ints).
func (c *Counter) AddInt(n int) {
	if c != nil && n > 0 {
		c.v.Add(uint64(n))
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Name returns the registered metric name ("" on nil).
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Gauge is an atomic instantaneous value. All methods are no-ops on a nil
// receiver.
type Gauge struct {
	v    atomic.Int64
	name string
	help string
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-boundary bucketed distribution: observation i lands
// in the first bucket whose upper bound satisfies v <= bound (Prometheus
// "le" semantics), with an implicit +Inf overflow bucket. All methods are
// no-ops on a nil receiver.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, exclusive of +Inf
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
	name    string
	help    string
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Merge adds o's per-bucket counts, total count and sum into h. The two
// histograms must share identical bucket boundaries.
func (h *Histogram) Merge(o *Histogram) error {
	if h == nil || o == nil {
		return nil
	}
	if len(h.bounds) != len(o.bounds) {
		return fmt.Errorf("telemetry: merging histograms with %d vs %d buckets", len(h.bounds), len(o.bounds))
	}
	for i, b := range h.bounds {
		if o.bounds[i] != b {
			return fmt.Errorf("telemetry: merging histograms with mismatched bucket %d (%g vs %g)", i, b, o.bounds[i])
		}
	}
	var sum float64
	for i := range o.counts {
		h.counts[i].Add(o.counts[i].Load())
	}
	h.count.Add(o.count.Load())
	sum = math.Float64frombits(o.sumBits.Load())
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + sum)
		if h.sumBits.CompareAndSwap(old, next) {
			return nil
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Default bucket sets. Deliberately small: histograms here summarise whole
// analyses, not per-request latencies.
var (
	// DurationBuckets covers stage latencies from 100µs to ~100s.
	DurationBuckets = []float64{1e-4, 1e-3, 1e-2, 0.1, 0.5, 1, 5, 10, 30, 100}
	// SizeBuckets covers byte sizes from 1KiB to 1GiB, ×8 per step.
	SizeBuckets = []float64{1 << 10, 1 << 13, 1 << 16, 1 << 19, 1 << 22, 1 << 25, 1 << 28, 1 << 30}
	// DepthBuckets covers small queue depths and iteration counts.
	DepthBuckets = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128}
)

// Registry is a named collection of metrics plus a span log. The zero
// value is not usable; call New. A nil *Registry is a valid "telemetry
// disabled" handle: every method returns a zero value or nil metric whose
// own methods are no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	epoch  time.Time
	spanMu sync.Mutex
	spans  []SpanEvent
}

// New returns an empty registry whose span clock starts now.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		epoch:    time.Now(),
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name, help: help}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on
// a nil registry.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name, help: help}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds (ascending; +Inf is implicit) on first use. Later calls
// return the existing histogram regardless of bounds. Returns nil on a nil
// registry.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	h := &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1), name: name, help: help}
	r.hists[name] = h
	return h
}

// Label renders a single-label metric name, e.g.
// Label("prorace_detect_shard_events_total", "shard", 3) →
// `prorace_detect_shard_events_total{shard="3"}`. The registry keys
// labelled series by the rendered name, so each label value is its own
// metric handle.
func Label(name, key string, value int) string {
	return fmt.Sprintf("%s{%s=%q}", name, key, fmt.Sprint(value))
}

// HistogramSnapshot is the frozen state of one histogram.
type HistogramSnapshot struct {
	// Bounds are the finite bucket upper bounds; Counts has one extra
	// trailing entry for the +Inf bucket. Counts are per-bucket, not
	// cumulative.
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
}

// Snapshot is a point-in-time copy of a registry: every counter, gauge and
// histogram value plus the completed stage spans. It is plain data — safe
// to retain, compare and serialise after the analysis that produced it.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Spans      []SpanEvent                  `json:"spans,omitempty"`
}

// Snapshot freezes the registry's current state. Returns nil on a nil
// registry (the disabled-telemetry AnalysisResult carries a nil snapshot).
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	s := &Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	r.mu.Lock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]uint64, len(h.counts)),
			Sum:    h.Sum(),
			Count:  h.Count(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[name] = hs
	}
	r.mu.Unlock()
	r.spanMu.Lock()
	s.Spans = append([]SpanEvent(nil), r.spans...)
	r.spanMu.Unlock()
	return s
}

// Counter returns the snapshotted value of a counter (0 if absent or nil).
func (s *Snapshot) Counter(name string) uint64 {
	if s == nil {
		return 0
	}
	return s.Counters[name]
}

// process-wide default registry, installed by the cmds' -metrics-addr /
// -timeline flags (or EnableDefault). core falls back to it when the
// per-call options carry no registry, so telemetry reaches pipeline runs
// made by code that predates the option (the experiments harness, the
// oracle). Default() is one atomic load; when nothing installed it, the
// whole pipeline sees nil handles and pays nothing.
var defaultReg atomic.Pointer[Registry]

// Default returns the process-wide registry, or nil when none has been
// installed.
func Default() *Registry { return defaultReg.Load() }

// SetDefault installs r as the process-wide registry (nil uninstalls).
func SetDefault(r *Registry) { defaultReg.Store(r) }

// EnableDefault installs and returns a process-wide registry, reusing the
// current one if already installed.
func EnableDefault() *Registry {
	for {
		if r := defaultReg.Load(); r != nil {
			return r
		}
		r := New()
		if defaultReg.CompareAndSwap(nil, r) {
			return r
		}
	}
}
