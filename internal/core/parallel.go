package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"prorace/internal/prog"
	"prorace/internal/race"
	"prorace/internal/replay"
	"prorace/internal/synthesis"
	"prorace/internal/tracefmt"
)

// AnalyzeParallel is Analyze with the PT decoding and trace reconstruction
// fanned out across worker goroutines, one thread-trace at a time — the
// parallelisation §7.6 points out: "PT records are independent of each
// other, and the forward-and-backward replay can also be performed region
// by region, making it suitable for using multiple analysis machines."
// Detection remains sequential (FastTrack consumes one merged stream).
//
// workers <= 0 selects GOMAXPROCS. Results are identical to Analyze up to
// the §5.1 regeneration pass, which AnalyzeParallel also applies.
func AnalyzeParallel(p *progT, tr *tracefmt.Trace, opts AnalysisOptions, workers int) (*AnalysisResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	res := &AnalysisResult{}

	// Pre-warm the program's lazily built indexes (basic blocks, function
	// table) so concurrent readers never race on their initialisation.
	p.Blocks()
	p.FuncContaining(p.Entry)

	t0 := time.Now()
	tts, err := synthesizeParallel(p, tr, workers)
	if err != nil {
		return nil, fmt.Errorf("core: parallel synthesis: %w", err)
	}
	res.DecodeTime = time.Since(t0)

	t1 := time.Now()
	engine := replay.NewEngine(p, replay.Config{Mode: opts.Mode})
	if opts.DisableMemoryEmulation {
		engine = engine.DisableMemoryEmulation()
	}
	accesses, rstats := reconstructParallel(engine, tts, workers)
	res.ReconstructTime = time.Since(t1)
	res.ReplayStats = rstats

	t2 := time.Now()
	ropts := race.Options{TrackAllocations: !opts.DisableAllocationTracking, MaxReports: opts.MaxReports}
	det := race.Detect(tr.Sync, accesses, ropts)
	res.DetectTime = time.Since(t2)

	if !opts.DisableRaceFeedback && opts.Mode != replay.ModeBasicBlock &&
		!opts.DisableMemoryEmulation && len(det.RacyAddrs) > 0 {
		t1b := time.Now()
		engine2 := replay.NewEngine(p, replay.Config{Mode: opts.Mode, InvalidAddrs: det.RacyAddrs})
		accesses2, rstats2 := reconstructParallel(engine2, tts, workers)
		res.ReconstructTime += time.Since(t1b)
		if rstats2.InvalidHits > 0 {
			t2b := time.Now()
			det = race.Detect(tr.Sync, accesses2, ropts)
			res.DetectTime += time.Since(t2b)
			res.ReplayStats = rstats2
			accesses = accesses2
			res.Regenerated = true
		}
	}

	res.Accesses = accesses
	res.Reports = det.Reports()
	return res, nil
}

// progT keeps the signatures above readable.
type progT = prog.Program

// synthesizeParallel decodes and pins each thread concurrently.
func synthesizeParallel(p *progT, tr *tracefmt.Trace, workers int) (map[int32]*synthesis.ThreadTrace, error) {
	tids := tr.TIDs()
	type result struct {
		tid int32
		tt  *synthesis.ThreadTrace
		err error
	}
	work := make(chan int32, len(tids))
	results := make(chan result, len(tids))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tid := range work {
				tt, err := synthesis.SynthesizeThread(p, tr, tid)
				results <- result{tid: tid, tt: tt, err: err}
			}
		}()
	}
	for _, tid := range tids {
		work <- tid
	}
	close(work)
	wg.Wait()
	close(results)

	out := map[int32]*synthesis.ThreadTrace{}
	for r := range results {
		if r.err != nil {
			return nil, r.err
		}
		out[r.tid] = r.tt
	}
	return out, nil
}

// reconstructParallel runs the replay engine over thread traces
// concurrently and merges stats as ReconstructAll does.
func reconstructParallel(engine *replay.Engine, tts map[int32]*synthesis.ThreadTrace, workers int) (map[int32][]replay.Access, replay.Stats) {
	type result struct {
		tid int32
		acc []replay.Access
		st  replay.Stats
	}
	work := make(chan int32, len(tts))
	results := make(chan result, len(tts))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tid := range work {
				acc, st := engine.ReconstructThread(tts[tid])
				results <- result{tid: tid, acc: acc, st: st}
			}
		}()
	}
	for tid := range tts {
		work <- tid
	}
	close(work)
	wg.Wait()
	close(results)

	out := map[int32][]replay.Access{}
	var agg replay.Stats
	for r := range results {
		out[r.tid] = r.acc
		agg.Sampled += r.st.Sampled
		agg.Forward += r.st.Forward
		agg.Backward += r.st.Backward
		agg.BasicBlock += r.st.BasicBlock
		agg.PathSteps += r.st.PathSteps
		agg.MemSteps += r.st.MemSteps
		agg.InvalidHits += r.st.InvalidHits
		if r.st.Iterations > agg.Iterations {
			agg.Iterations = r.st.Iterations
		}
	}
	return out, agg
}
