package core

import (
	"strconv"
	"sync"
	"time"

	"prorace/internal/prog"
	"prorace/internal/race"
	"prorace/internal/replay"
	"prorace/internal/synthesis"
	"prorace/internal/telemetry"
	"prorace/internal/tracefmt"
)

// synthesizeParallel decodes and pins each thread concurrently, with the
// same per-thread error isolation as the sequential pass: a failing or
// panicking thread is dropped in lenient mode (recorded in deg) and aborts
// in strict mode.
func synthesizeParallel(p *prog.Program, tr *tracefmt.Trace, workers int, sopts synthesis.Options, strict bool, retries int, deg *Degradation) (map[int32]*synthesis.ThreadTrace, error) {
	tids := tr.TIDs()
	type result struct {
		tid  int32
		tt   *synthesis.ThreadTrace
		terr *ThreadError
	}
	work := make(chan int32, len(tids))
	results := make(chan result, len(tids))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tid := range work {
				var tt *synthesis.ThreadTrace
				te := runWithRetry(tid, "synthesis", retries, func() error {
					var err error
					tt, err = synthesis.SynthesizeThreadWith(p, tr, tid, sopts)
					return err
				})
				results <- result{tid: tid, tt: tt, terr: te}
			}
		}()
	}
	for _, tid := range tids {
		work <- tid
	}
	close(work)
	wg.Wait()
	close(results)

	out := map[int32]*synthesis.ThreadTrace{}
	var terrs []*ThreadError
	for r := range results {
		if r.terr != nil {
			terrs = append(terrs, r.terr)
			continue
		}
		out[r.tid] = r.tt
	}
	if err := absorbThreadErrors(terrs, strict, deg); err != nil {
		return nil, err
	}
	return out, nil
}

// streamPass runs one reconstruct-and-detect pass with the replay work
// fanned out across a worker pool and each thread's events streamed into
// the detector as the thread completes, instead of materialising the full
// access map before detection starts. Events travel in fixed-size pooled
// batches (race.EventChunkSize) that the merger recycles as it consumes
// them, so the streaming layer's allocation cost is a handful of chunks
// rather than one event slice per thread. The merged event order — and
// therefore the race report list — is identical to the sequential pass.
//
// Returned timings: the reconstruction stage's wall clock, and the
// detection tail that ran on after the last thread was reconstructed (the
// two stages overlap; their sum is the pass's elapsed time).
func streamPass(engine *replay.Engine, tts map[int32]*synthesis.ThreadTrace, syncRecs []tracefmt.SyncRecord, workers, shards int, ropts race.Options, retries int) (map[int32][]replay.Access, replay.Stats, race.ReportSink, time.Duration, time.Duration, []*ThreadError) {
	start := time.Now()
	syncByTID := race.SyncByTID(syncRecs)

	// One stream per thread seen in either the sync log or the PT/PEBS
	// synthesis — threads with sync records but no samples still carry
	// happens-before edges.
	tidSet := map[int32]bool{}
	for tid := range tts {
		tidSet[tid] = true
	}
	for tid := range syncByTID {
		tidSet[tid] = true
	}
	send := map[int32]chan []race.Event{}
	streams := map[int32]<-chan []race.Event{}
	for tid := range tidSet {
		ch := make(chan []race.Event, 4)
		send[tid] = ch
		streams[tid] = ch
	}

	// emit hands one thread's events to the merger in pooled fixed-size
	// batches. It runs on a dedicated goroutine per thread so a full
	// channel never stalls a reconstruction worker (the merger consumes
	// nothing until every live stream has produced its head).
	emit := func(tid int32, accs []replay.Access) {
		race.StreamThread(send[tid], syncByTID[tid], accs)
	}

	// Detection: the merger pulls the k-way-merged event order from the
	// per-thread streams and drives the (possibly sharded) detector,
	// recycling each consumed chunk back into the pool.
	sink := newReportSink(shards, ropts)
	detDone := make(chan struct{})
	go func() {
		defer close(detDone)
		race.FeedStreamsPooled(sink, streams)
		sink.Finish()
	}()

	// Sync-only threads stream straight away.
	for tid := range tidSet {
		if _, ok := tts[tid]; !ok {
			go emit(tid, nil)
		}
	}

	// Reconstruction worker pool. Each thread's reconstruction runs
	// guarded: a panic or transient failure becomes a ThreadError, and the
	// thread's stream is still emitted (sync-only) so the k-way merger
	// never blocks on a channel a dead worker would have closed.
	work := make(chan int32, len(tts))
	var (
		mu    sync.Mutex
		out   = map[int32][]replay.Access{}
		agg   replay.Stats
		terrs []*ThreadError
	)
	// Per-thread reconstruction lanes in the timeline (track 1+tid so
	// thread lanes never collide with the top-level stage track 0). The
	// guard keeps the hot loop allocation-free when telemetry is off: no
	// name string is built for a nil registry.
	tel := ropts.Telemetry
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tid := range work {
				tid := tid
				var sp *telemetry.Span
				if tel != nil {
					sp = tel.StartSpanTrack("reconstruct t"+strconv.Itoa(int(tid)), 1+int(tid))
				}
				var acc []replay.Access
				var st replay.Stats
				te := runWithRetry(tid, "reconstruct", retries, func() error {
					acc, st = engine.ReconstructThread(tts[tid])
					return nil
				})
				sp.End()
				if te != nil {
					mu.Lock()
					terrs = append(terrs, te)
					mu.Unlock()
					// The thread's reconstructed accesses are lost, but its
					// sync records still carry happens-before edges.
					go emit(tid, nil)
					continue
				}
				mu.Lock()
				out[tid] = acc
				agg.Merge(st)
				mu.Unlock()
				go emit(tid, acc)
			}
		}()
	}
	for tid := range tts {
		work <- tid
	}
	close(work)

	wg.Wait()
	reconTime := time.Since(start)
	<-detDone
	detectTail := time.Since(start) - reconTime
	return out, agg, sink, reconTime, detectTail, terrs
}
