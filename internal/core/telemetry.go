package core

import (
	"prorace/internal/synthesis"
	"prorace/internal/telemetry"
)

// resolveTelemetry picks the registry an entry point runs with: the one
// named in the options, else the process-wide default (installed by the
// cmds' -metrics-addr/-timeline flags — one atomic load, nil when
// telemetry is off). A MetricsAddr additionally guarantees a live HTTP
// listener, creating and installing a default registry if the options
// carried none; a listen failure is surfaced because the caller explicitly
// asked to be scrapeable.
func resolveTelemetry(reg *telemetry.Registry, addr string) (*telemetry.Registry, error) {
	if reg == nil {
		reg = telemetry.Default()
	}
	if addr != "" {
		if reg == nil {
			reg = telemetry.EnableDefault()
		}
		if _, err := telemetry.EnsureServer(addr, reg); err != nil {
			return nil, err
		}
	}
	return reg, nil
}

// publishSynthesis folds the decode + synthesis outcome into the registry.
// The per-path counters are published only for a fresh synthesis: a path
// cache hit performed no decode work, so it increments only the hit
// counter — keeping every series an honest account of work done while
// staying deterministic for a fixed cache configuration.
func publishSynthesis(tel *telemetry.Registry, tts map[int32]*synthesis.ThreadTrace, cacheHit bool) {
	if tel == nil {
		return
	}
	if cacheHit {
		tel.Counter("prorace_synthesis_cache_hits_total", "Analyses whose decode + synthesis was served by the decoded-path cache (AnalysisResult.DecodeCacheHit).").Inc()
		return
	}
	tel.Counter("prorace_synthesis_cache_misses_total", "Analyses that ran a fresh PT decode + synthesis.").Inc()
	var packets, resyncs, gapBytes, corrupt, steps, anchors, pinned, unpinned int
	for _, tt := range tts {
		if tt.Path != nil {
			packets += tt.Path.Packets
			resyncs += tt.Path.Resyncs
			gapBytes += tt.Path.SkippedBytes()
			corrupt += tt.Path.CorruptPackets
			steps += tt.Path.Len()
		}
		anchors += tt.Anchors()
		pinned += len(tt.Samples)
		unpinned += len(tt.UnpinnedSamples)
	}
	tel.Counter("prorace_ptdecode_packets_total", "Well-formed PT packets consumed by decoding.").AddInt(packets)
	tel.Counter("prorace_ptdecode_psb_resyncs_total", "Decoder recoveries that re-anchored at a PSB sync point (Degradation.DecodeGaps companion).").AddInt(resyncs)
	tel.Counter("prorace_ptdecode_gap_bytes_total", "PT stream bytes lost to decode gaps (Degradation.PTBytesSkipped).").AddInt(gapBytes)
	tel.Counter("prorace_ptdecode_corrupt_packets_total", "Malformed packets and sync mismatches hit by decoding (Degradation.CorruptPTPackets).").AddInt(corrupt)
	tel.Counter("prorace_ptdecode_steps_total", "Instructions on decoded paths.").AddInt(steps)
	tel.Counter("prorace_synthesis_anchors_total", "TSC anchors built for timestamp estimation.").AddInt(anchors)
	tel.Counter("prorace_synthesis_samples_pinned_total", "PEBS samples pinned onto decoded paths.").AddInt(pinned)
	tel.Counter("prorace_synthesis_samples_unpinned_total", "PEBS samples usable only as bare samples (Degradation.UnpinnedSamples).").AddInt(unpinned)
}

// publishAnalysis folds one completed analysis into the registry:
// degradation/retry accounting, §5.1 regeneration, report volume, and the
// per-stage latency histograms behind the Figure 12 timings.
func publishAnalysis(tel *telemetry.Registry, res *AnalysisResult) {
	if tel == nil {
		return
	}
	deg := &res.Degradation
	tel.Counter("prorace_analysis_runs_total", "Completed offline analyses.").Inc()
	if deg.Degraded() {
		tel.Counter("prorace_analysis_degraded_runs_total", "Analyses that gave something up (Degradation.Degraded).").Inc()
	}
	if res.Regenerated {
		tel.Counter("prorace_analysis_regenerations_total", "Analyses re-run by the §5.1 racy-address feedback loop (AnalysisResult.Regenerated).").Inc()
	}
	tel.Counter("prorace_analysis_thread_errors_total", "Isolated per-thread stage failures (Degradation.ThreadErrors).").AddInt(len(deg.ThreadErrors))
	tel.Counter("prorace_analysis_dropped_threads_total", "Threads dropped after exhausting retries (Degradation.DroppedThreads).").AddInt(len(deg.DroppedThreads))
	retries := 0
	for _, te := range deg.ThreadErrors {
		retries += te.Retries
	}
	tel.Counter("prorace_analysis_thread_retries_total", "Retry attempts recorded on failing threads (ThreadError.Retries).").AddInt(retries)
	tel.Counter("prorace_analysis_invalid_tid_drops_total", "Records discarded by trace sanitisation (Degradation.InvalidTIDDrops).").AddInt(deg.InvalidTIDDrops)
	tel.Counter("prorace_analysis_sync_anomalies_total", "Sync-log invariant violations (Degradation.SyncAnomalies).").AddInt(deg.SyncAnomalies)
	tel.Counter("prorace_analysis_gap_adjacent_reports_total", "Reports flagged as touching a degraded thread (Degradation.GapAdjacentRaces).").AddInt(deg.GapAdjacentRaces)
	tel.Counter("prorace_detect_reports_total", "Deduplicated race reports emitted.").AddInt(len(res.Reports))
	tel.Counter("prorace_analysis_racy_addrs_total", "Distinct racy addresses found (AnalysisResult.RacyAddrs).").AddInt(len(res.RacyAddrs))
	tel.Histogram("prorace_analysis_decode_seconds", "Decode + synthesis stage latency per analysis.", telemetry.DurationBuckets).ObserveDuration(res.DecodeTime)
	tel.Histogram("prorace_analysis_reconstruct_seconds", "Reconstruction stage latency per analysis.", telemetry.DurationBuckets).ObserveDuration(res.ReconstructTime)
	tel.Histogram("prorace_analysis_detect_seconds", "Detection stage latency per analysis.", telemetry.DurationBuckets).ObserveDuration(res.DetectTime)
}
